package repro_test

import (
	"testing"

	"repro"
)

// The facade tests double as compile-time checks that the public API stays
// wired to the internal implementation.

func TestQuickstartFlow(t *testing.T) {
	m := repro.NewMachineA()
	m.Configure(repro.TunedConfig(8))
	recs := repro.MovingCluster(20000, 1000, 1)
	out := repro.Aggregate(m, repro.AggregationSpec{
		Records:     recs,
		Cardinality: 1000,
		Holistic:    true,
	})
	distinct := map[uint64]bool{}
	for _, r := range recs {
		distinct[r.Key] = true
	}
	if out.Groups != len(distinct) {
		t.Errorf("groups = %d, want %d distinct keys", out.Groups, len(distinct))
	}
	if m.Seconds(out.Result.WallCycles) <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestTunedBeatsDefaultHeadline(t *testing.T) {
	// The repository's headline claim, via the public API only.
	recs := repro.MovingCluster(120000, 15000, 1)
	run := func(cfg repro.RunConfig) float64 {
		m := repro.NewMachineA()
		m.Configure(cfg)
		return repro.Aggregate(m, repro.AggregationSpec{
			Records: recs, Cardinality: 15000, Holistic: true,
		}).Result.WallCycles
	}
	def := run(repro.DefaultConfig(16))
	tuned := run(repro.TunedConfig(16))
	if s := repro.Speedup(def, tuned); s <= 0.1 {
		t.Errorf("tuned config speedup = %v, want > 10%%", s)
	}
}

func TestJoinsAgree(t *testing.T) {
	tables := repro.JoinData(2000, 8, 3)
	m1 := repro.NewMachineB()
	m1.Configure(repro.TunedConfig(8))
	hj := repro.HashJoin(m1, repro.JoinSpec{Tables: tables})
	m2 := repro.NewMachineB()
	m2.Configure(repro.TunedConfig(8))
	ij := repro.IndexJoin(m2, repro.ART, tables)
	if hj.Checksum != ij.Checksum || hj.Matches != ij.Matches {
		t.Errorf("join results disagree: (%d,%d) vs (%d,%d)",
			hj.Matches, hj.Checksum, ij.Matches, ij.Checksum)
	}
}

func TestAdvisorFacade(t *testing.T) {
	rec := repro.Advise(repro.Traits{
		MemoryBandwidthBound: true,
		SuperuserAccess:      true,
		AllocationHeavy:      true,
	})
	if rec.Allocator != "tbbmalloc" || rec.Placement != repro.PlaceSparse {
		t.Errorf("unexpected recommendation: %+v", rec)
	}
	cfg := rec.Apply(16)
	if cfg.Policy != repro.Interleave {
		t.Errorf("policy = %v, want Interleave", cfg.Policy)
	}
}

func TestParameterSpace(t *testing.T) {
	s := repro.Space()
	if len(s.Workloads) != 5 || len(s.Allocators) != 7 {
		t.Errorf("parameter space wrong: %+v", s)
	}
}

func TestTPCHFacade(t *testing.T) {
	db := repro.GenerateTPCH(0.001, 1)
	h := repro.NewTPCHHarness(repro.SpecB(), repro.EngineByName("Quickstep"),
		repro.TunedConfig(8), db, 1)
	wall, res := h.Measure(6)
	if wall <= 0 || res.Query != 6 {
		t.Errorf("harness measure: wall=%v query=%d", wall, res.Query)
	}
}
