// Benchmarks regenerating every table and figure of the paper's evaluation
// section (see DESIGN.md section 5 for the experiment index). Each
// benchmark runs its experiment driver once per b.N iteration and logs the
// paper-style series; `go test -bench=. -benchmem` therefore reproduces
// the whole evaluation at the REPRO_SCALE dataset scale (tiny, small or
// default; default env value is "small").
//
// Run a single figure with e.g.:
//
//	go test -bench=BenchmarkFig5a -benchtime=1x
package repro_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/numaop"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/tpch"
	"repro/internal/vmm"
)

// benchScale selects the dataset scale from REPRO_SCALE.
func benchScale() experiments.Scale {
	switch strings.ToLower(os.Getenv("REPRO_SCALE")) {
	case "tiny":
		return experiments.Tiny
	case "default", "full":
		return experiments.Default
	default:
		return experiments.Small
	}
}

// logTables renders tables into the benchmark log on the final iteration.
func logTables(b *testing.B, i int, tables ...*report.Table) {
	b.Helper()
	if i != b.N-1 {
		return
	}
	var sb strings.Builder
	for _, t := range tables {
		t.Render(&sb)
	}
	b.Log("\n" + sb.String())
}

func BenchmarkFig2_AllocatorMicrobench(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.RenderTime(), r.RenderOverhead())
	}
}

func BenchmarkFig3_AffinityVariance(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkTable3_PlacementProfile(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig4_SparseVsDense(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig5a_AutoNUMA(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render(), r.RenderLAR())
	}
}

func BenchmarkFig5c_THP(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5c(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig5d_Machines(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5d(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig6_W1_Allocators(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6W1(s, "A")
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig6_W2_Allocators(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6W2(s, "A")
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig6_W3_Allocators(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6W3(s, "A")
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig6j_Distributions(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6j(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig7_INLJ_Indexes(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		var tabs []*report.Table
		var grids []experiments.Fig7Result
		for _, k := range index.Kinds() {
			r, err := experiments.Fig7(s, k)
			if err != nil {
				b.Fatal(err)
			}
			tabs = append(tabs, r.Render())
			grids = append(grids, r)
		}
		tabs = append(tabs, experiments.Fig7eFromGrids(grids).Render())
		logTables(b, i, tabs...)
	}
}

func BenchmarkFig8_TPCH(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig9_TPCHAllocators(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkFig10_Advisor(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.Render())
	}
}

func BenchmarkTable2_MachineSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTables(b, i, experiments.Table2())
	}
}

// BenchmarkServe exercises the open-loop serving experiment: arrival
// generation, the mixed-kernel service drain, the G/G/c queueing overlay
// and the p999 tail attribution. Like BenchmarkAccessPathFig2Cal it
// ignores REPRO_SCALE (fixed Tiny serving stream) so bench-gate runs are
// comparable across hosts and baselines.
func BenchmarkServe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Serve(experiments.Tiny, experiments.ServeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, r.RenderSummary(), r.RenderRegret())
	}
}

// BenchmarkOrchestratorOverhead measures the placement orchestrator's
// fixed cost: the adapt experiment's Machine A steady cell with the
// daemon attached (on) and without (off). The workload has a static
// optimum, so the attached orchestrator observes and plans every tick but
// never acts — the on/off ratio the bench gate tracks is pure overhead.
// Fixed partition size (ignores REPRO_SCALE) so gate runs are comparable.
func BenchmarkOrchestratorOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.AdaptOverheadProbe(mode.on); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeSpans measures request-span collection cost: the serving
// experiment's fixed Tiny stream with span assembly off and on. Span
// collection is observation-only (the simulated output is bit-identical
// either way — see TestServeSpansObservationOnly), so the on/off ratio
// the bench gate tracks as spans_overhead_vs_off is pure harness-side
// bookkeeping and must stay near 1. Fixed scale (ignores REPRO_SCALE) so
// gate runs are comparable.
func BenchmarkServeSpans(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			experiments.SetCellSpans(mode.on)
			defer experiments.SetCellSpans(false)
			for i := 0; i < b.N; i++ {
				r, err := experiments.Serve(experiments.Tiny, experiments.ServeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if mode.on && len(r.Spans) == 0 {
					b.Fatal("span collection on but no spans assembled")
				}
			}
		})
	}
}

// BenchmarkAccessPathFig2Cal is the end-to-end probe the CI bench gate
// tracks alongside the internal/machine BenchmarkAccessPath suite: the
// Figure 2 allocator microbenchmark at cal scale, whose runtime is
// dominated by the simulator's memory-access path. Unlike the figure
// benchmarks above, it ignores REPRO_SCALE so gate runs are comparable.
func BenchmarkAccessPathFig2Cal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(experiments.Cal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPSMJoin compares the NUMA-aware MPSM sort-merge join against
// the flowchart-tuned hash join on identical fixed tables (Machine B).
// MPSM runs with the knobs that support it (Sparse + first touch +
// tbbmalloc, daemons off — Interleave would scatter the chunks it
// deliberately localizes); the hash join runs under TunedConfig. The
// bench gate tracks mpsm_vs_hashjoin, the ns/op ratio of the two
// sub-benchmarks, which is machine-independent because both operators
// exercise the same simulator access path. Fixed scale (ignores
// REPRO_SCALE) so gate runs are comparable.
func BenchmarkMPSMJoin(b *testing.B) {
	tables := datagen.CachedJoin(experiments.Cal.JoinR, datagen.DefaultJoinRatio, 17)
	spec := query.JoinSpec{Tables: tables}
	b.Run("hashjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := machine.NewB()
			m.Configure(machine.TunedConfig(m.Spec.HardwareThreads()))
			if out := query.HashJoin(m, spec); out.Matches == 0 {
				b.Fatal("hash join found no matches")
			}
		}
	})
	b.Run("mpsm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := machine.NewB()
			cfg := machine.TunedConfig(m.Spec.HardwareThreads())
			cfg.Policy = vmm.FirstTouch
			m.Configure(cfg)
			if out := numaop.MPSMJoin(m, spec); out.Matches == 0 {
				b.Fatal("MPSM join found no matches")
			}
		}
	})
}

// BenchmarkChunkedScan measures the TPC-H Q1 lineitem scan (Quickstep
// profile, Machine B, identical knobs) with single-region vs per-node
// chunked storage. The gate tracks chunked_scan_vs_single, the ns/op
// ratio of the sub-benchmarks; the load phase happens once outside the
// timed loop. Fixed scale (ignores REPRO_SCALE) so gate runs are
// comparable.
func BenchmarkChunkedScan(b *testing.B) {
	db := tpch.GenerateCached(experiments.Cal.TPCHSF, 41)
	for _, mode := range []struct {
		name    string
		chunked bool
	}{{"single", false}, {"chunked", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := machine.NewB()
			cfg := machine.TunedConfig(m.Spec.HardwareThreads())
			cfg.Policy = vmm.FirstTouch
			m.Configure(cfg)
			e := tpch.NewEngineStorage(tpch.ProfileByName("Quickstep"), m, db,
				tpch.StorageOptions{Chunked: mode.chunked})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := e.RunQuery(1); r.Check == 0 {
					b.Fatal("Q1 returned a zero checksum")
				}
			}
		})
	}
}
