#!/usr/bin/env python3
"""Truncate a JSONL artifact mid-record, simulating a killed writer.

Usage: truncate_midrecord.py file.jsonl [fraction]

Cuts the file at `fraction` (default 0.6) of its actual size, adjusted to
never land exactly on a record boundary: if the cut would fall right after
a newline, it advances one byte into the next record. This replaces a
hard-coded byte offset, which silently stopped cutting mid-record whenever
record sizes drifted.
"""
import sys


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: truncate_midrecord.py file.jsonl [fraction]")
    path = sys.argv[1]
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6
    if not 0 < fraction < 1:
        sys.exit("fraction must be in (0, 1)")
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < 2:
        sys.exit(f"{path} too small to cut mid-record")
    cut = max(1, int(len(data) * fraction))
    if data[cut - 1] == ord("\n"):
        cut += 1  # step past the boundary so the cut lands mid-record
    cut = min(cut, len(data) - 1)
    with open(path, "wb") as f:
        f.write(data[:cut])
    print(f"truncated {path} to {cut} of {len(data)} bytes")


if __name__ == "__main__":
    main()
