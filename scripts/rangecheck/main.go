// Command rangecheck flags `for ... range` statements over map values in
// the simulation-path packages. Go randomizes map iteration order, so a
// map range on any path that charges cycles, allocates, or emits records
// is a determinism bug waiting to happen — the simulator promises
// byte-identical output for a fixed seed at any -parallel setting.
//
// Sites that have been audited (iteration order provably cannot reach an
// observable output, e.g. keys are collected and sorted before use) are
// opted out with a comment on the range line or the line above:
//
//	//rangecheck:ok <why the order cannot leak>
//
// Usage: go run ./scripts/rangecheck [package dirs...]
// With no args it checks the default simulation-path packages. Exits
// nonzero if any unaudited map range is found. Stdlib-only by design:
// the module has no dependencies and this tool must not add one.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs are the packages whose hot paths feed measured results.
var defaultDirs = []string{
	"./internal/machine",
	"./internal/query",
	"./internal/tpch",
	"./internal/numaop",
	"./internal/experiments",
}

const modulePath = "repro"

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	im := newSourceImporter(root)
	var findings []string
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			fatal(err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fatal(fmt.Errorf("rangecheck: %s is outside the module", dir))
		}
		path := modulePath + "/" + filepath.ToSlash(rel)
		f, err := im.check(path)
		if err != nil {
			fatal(fmt.Errorf("rangecheck: %s: %v", dir, err))
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rangecheck: %d unaudited map range(s); add //rangecheck:ok <reason> after auditing\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("rangecheck: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// sourceImporter type-checks module packages from source, recursively.
// Standard-library imports go through the stdlib source importer; a
// stdlib package that fails to import degrades to an empty placeholder
// (type checking stays tolerant — see the Error hook in check).
type sourceImporter struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*types.Package
}

func newSourceImporter(root string) *sourceImporter {
	fset := token.NewFileSet()
	return &sourceImporter{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
}

func (im *sourceImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		if _, err := im.check(path); err != nil {
			return nil, err
		}
		return im.pkgs[path], nil
	}
	pkg, err := im.std.Import(path)
	if err != nil {
		// Tolerate: the placeholder keeps checking going; expressions
		// depending on it stay untyped and are reported as unresolved.
		pkg = types.NewPackage(path, filepath.Base(path))
		pkg.MarkComplete()
	}
	im.pkgs[path] = pkg
	return pkg, nil
}

// check type-checks one module package and scans it for unaudited map
// ranges, returning the findings.
func (im *sourceImporter) check(path string) ([]string, error) {
	if _, ok := im.pkgs[path]; ok {
		return nil, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(strings.TrimPrefix(path, modulePath+"/")))
	files, err := parseDir(im.fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{
		Importer: im,
		Error:    func(error) {}, // tolerant: placeholders above cause benign errors
	}
	pkg, _ := conf.Check(path, im.fset, files, info)
	if pkg == nil {
		return nil, fmt.Errorf("type-checking %s produced no package", path)
	}
	im.pkgs[path] = pkg

	var findings []string
	for _, f := range files {
		ok := auditedLines(im.fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, isRange := n.(*ast.RangeStmt)
			if !isRange {
				return true
			}
			pos := im.fset.Position(rs.Pos())
			if ok[pos.Line] || ok[pos.Line-1] {
				return true
			}
			tv := info.TypeOf(rs.X)
			if tv == nil {
				fmt.Fprintf(os.Stderr, "rangecheck: warning: %s:%d: range expression did not resolve\n",
					relPath(im.root, pos.Filename), pos.Line)
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); isMap {
				findings = append(findings, fmt.Sprintf("%s:%d: range over map %s",
					relPath(im.root, pos.Filename), pos.Line, types.TypeString(tv, nil)))
			}
			return true
		})
	}
	return findings, nil
}

func relPath(root, p string) string {
	if rel, err := filepath.Rel(root, p); err == nil {
		return filepath.ToSlash(rel)
	}
	return p
}

// parseDir parses every non-test .go file in dir, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// auditedLines returns the lines carrying a rangecheck:ok opt-out.
func auditedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "rangecheck:ok") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
