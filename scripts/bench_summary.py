#!/usr/bin/env python3
"""Summarize a numabench/tpchbench JSONL results file per experiment.

Usage: bench_summary.py results.jsonl > BENCH.json

Emits one JSON object: for every experiment in the file, the record
count, the total host wall time (seconds, summed over its cells' host_ns
— the only nondeterministic field), and the total simulated wall cycles.
CI regenerates this as BENCH_ci.json; the committed BENCH_pr3.json is
one run of it on the PR's fig2+profile cal-scale sweep.
"""
import json
import sys


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: bench_summary.py results.jsonl")
    per = {}
    with open(sys.argv[1]) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            e = per.setdefault(rec["experiment"], {
                "records": 0,
                "host_seconds": 0.0,
                "sim_wall_cycles": 0.0,
            })
            e["records"] += 1
            e["host_seconds"] += rec["host_ns"] / 1e9
            e["sim_wall_cycles"] += rec["wall_cycles"]
    for e in per.values():
        e["host_seconds"] = round(e["host_seconds"], 3)
    out = {
        "schema": "repro/bench-summary/v1",
        "experiments": {k: per[k] for k in sorted(per)},
    }
    json.dump(out, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
