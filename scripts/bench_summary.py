#!/usr/bin/env python3
"""Summarize numabench/tpchbench/numatune JSONL results files.

Usage: bench_summary.py results.jsonl [more.jsonl ...] > BENCH.json

Accepts two record layouts, distinguished by each record's schema field:

- repro/bench/v1+v2 (numabench/tpchbench grid cells): grouped per
  experiment as record count, total host wall time (seconds, summed over
  host_ns — the only nondeterministic field), and total simulated cycles.
- repro/tune/v1 (numatune campaign trials): grouped per campaign as
  trials run, simulated-cycle budget spent, and the best full-fraction
  configuration found. Campaign records carry no host_ns by design.
  Latency campaigns (objective=p99_latency, the WS workload) additionally
  report the objective: their wall_cycles hold p99 cycles, not wall time.

Serving cells (the serve experiment's latency records, recognized by a
p999 key in extra) additionally summarize per cell: latency percentiles,
SLO attainment and throughput, under a top-level "serving" key.

Adaptive placement cells (the adapt experiment's records, recognized by
ops + thread_moves keys in extra) summarize per cell: accesses completed,
local access ratio and the orchestrator's actions, under a top-level
"adaptive" key.

Span files (repro/spans/v1, written by -spans) summarize per cell under a
top-level "spans" key: span counts by kind, total and mean service
cycles, and the in-window kind/initiator event totals the blame join
cuts by.

CI regenerates this as BENCH_ci.json; the committed BENCH_pr4.json is one
run over the PR's cal-scale fig2+profile sweep plus an sha tuning
campaign.
"""
import json
import sys


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: bench_summary.py results.jsonl [more.jsonl ...]")
    experiments = {}
    campaigns = {}
    serving = {}
    adaptive = {}
    spans = {}
    for path in sys.argv[1:]:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("schema") == "repro/spans/v1":
                    cell = rec.get("cell") or "(unlabeled)"
                    s = spans.setdefault(cell, {
                        "spans": 0,
                        "by_kind": {},
                        "service_cycles": 0.0,
                        "events": {},
                    })
                    s["spans"] += 1
                    kind = rec.get("kind", "?")
                    s["by_kind"][kind] = s["by_kind"].get(kind, 0) + 1
                    if kind == "service":
                        s["service_cycles"] += rec["end"] - rec["start"]
                        for k, n in (rec.get("events") or {}).items():
                            s["events"][k] = s["events"].get(k, 0) + n
                    continue
                if rec.get("schema") == "repro/tune/v1":
                    c = campaigns.setdefault(rec["campaign"], {
                        "trials": 0,
                        "sim_cycles_spent": 0.0,
                        "best_config": None,
                        "best_cycles": None,
                    })
                    c["trials"] += 1
                    c["sim_cycles_spent"] += rec["wall_cycles"]
                    if rec.get("objective"):
                        c["objective"] = rec["objective"]
                    if rec.get("frac", 1) == 1 and (
                            c["best_cycles"] is None
                            or rec["wall_cycles"] < c["best_cycles"]):
                        c["best_cycles"] = rec["wall_cycles"]
                        c["best_config"] = rec["key"]
                else:
                    e = experiments.setdefault(rec["experiment"], {
                        "records": 0,
                        "host_seconds": 0.0,
                        "sim_wall_cycles": 0.0,
                    })
                    e["records"] += 1
                    e["host_seconds"] += rec["host_ns"] / 1e9
                    e["sim_wall_cycles"] += rec["wall_cycles"]
                    extra = rec.get("extra") or {}
                    if "p999" in extra:
                        cell = f'{rec["experiment"]}/{rec["cell"]}'
                        serving[cell] = {
                            "requests": extra.get("requests"),
                            "mean_latency": extra.get("mean_latency"),
                            "p50": extra.get("p50"),
                            "p99": extra.get("p99"),
                            "p999": extra.get("p999"),
                            "throughput_per_bcycles": extra.get("rpbc"),
                            "slo_attainment": {
                                k[len("slo_"):]: v for k, v in sorted(extra.items())
                                if k.startswith("slo_")
                            },
                        }
                    if "ops" in extra and "thread_moves" in extra:
                        cell = f'{rec["experiment"]}/{rec["cell"]}'
                        adaptive[cell] = {
                            "ops": extra.get("ops"),
                            "lar": extra.get("lar"),
                            "orchestrator_ticks": extra.get("ticks"),
                            "thread_moves": extra.get("thread_moves"),
                            "page_moves": extra.get("page_moves"),
                            "reweights": extra.get("reweights"),
                        }
    for e in experiments.values():
        e["host_seconds"] = round(e["host_seconds"], 3)
    for s in spans.values():
        n = s["by_kind"].get("service", 0)
        s["mean_service_cycles"] = round(s["service_cycles"] / n, 1) if n else None
        if not s["events"]:
            del s["events"]
    out = {
        "schema": "repro/bench-summary/v2",
        "experiments": {k: experiments[k] for k in sorted(experiments)},
    }
    if campaigns:
        out["campaigns"] = {k: campaigns[k] for k in sorted(campaigns)}
    if serving:
        out["serving"] = {k: serving[k] for k in sorted(serving)}
    if adaptive:
        out["adaptive"] = {k: adaptive[k] for k in sorted(adaptive)}
    if spans:
        out["spans"] = {k: spans[k] for k in sorted(spans)}
    json.dump(out, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
