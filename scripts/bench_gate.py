#!/usr/bin/env python3
"""Benchmark-regression gate for the simulator's memory-access fast path.

Parses `go test -bench BenchmarkAccessPath` output and gates on performance
RATIOS (batched vs scalar, hook overheads, and the fig2-cal probe normalized
by the scalar path), not raw ns/op: ratios are stable across host CPUs, so a
baseline committed from one machine remains meaningful on CI runners.
Absolute ns/op numbers are carried along as informational context only.

Usage:
  bench_gate.py baseline bench_out.txt [--fig2-seconds S] > BENCH_pr5.json
      Parse a bench run into a committed baseline. The fig2-cal probe is
      taken from BenchmarkAccessPathFig2Cal in the bench output when
      present; --fig2-seconds overrides it.

  bench_gate.py compare BENCH_pr5.json bench_out.txt [--fig2-seconds S]
      [--threshold 0.10] [--out comparison.json]
      Compare a fresh bench run against the baseline. Exits 1 if any gated
      ratio moved more than threshold (relative), printing a table either
      way and writing the comparison (for the CI artifact) when --out is
      given.

Gated ratios (each "X_vs_scalar" is ns/op of X over ns/op of scalar/plain):
  batched_vs_scalar, strided_vs_scalar, writerun_vs_scalar — the fast path
  must stay fast relative to the scalar walk;
  traced_overhead_{scalar,batched}, profiled_overhead_{scalar,batched} —
  observation hooks must stay hoisted out of the inner loop;
  fig2_cal_vs_scalar — end-to-end probe: fig2-cal wall seconds divided by
  scalar ns/op, i.e. the experiment's cost in equivalent scalar accesses;
  serve_vs_scalar — end-to-end probe of the open-loop serving experiment
  (fixed Tiny stream), normalized the same way. Present only when the
  bench output includes BenchmarkServe;
  adapt_overhead_vs_off — the placement orchestrator's fixed cost: the
  adapt steady cell with the daemon attached over the same cell without
  it. Present only when the bench output includes
  BenchmarkOrchestratorOverhead;
  spans_overhead_vs_off — request-span collection cost: the serving
  experiment's fixed Tiny stream with span assembly on over the same
  stream with it off. Span collection is observation-only in simulated
  time, so this ratio is pure harness bookkeeping. Present only when the
  bench output includes BenchmarkServeSpans;
  mpsm_vs_hashjoin — the NUMA-aware MPSM sort-merge join over the
  flowchart-tuned hash join on identical fixed tables: both sides run
  the same simulator access path, so the ratio transfers across host
  CPUs. Present only when the bench output includes BenchmarkMPSMJoin;
  chunked_scan_vs_single — the TPC-H Q1 scan on per-node chunked storage
  over the same scan on a single region, identical knobs. Present only
  when the bench output includes BenchmarkChunkedScan;
  machine_parallel_vs_serial — the round engine's worker-pool overhead:
  RunParallel with four workers pinned to one host core (par4gomax1)
  over the inline serial path on the same fixed workload. Pinning
  GOMAXPROCS to 1 makes the ratio pure scheduling overhead, independent
  of the runner's core count. Present only when the bench output
  includes BenchmarkMachineParallel.
"""
import argparse
import json
import re
import sys

BENCH_LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op")


def parse_bench(path):
    """Return {bench name: ns/op} from `go test -bench` output.

    With -count N the same benchmark appears N times; the minimum is kept
    (the least-perturbed measurement), which keeps the near-1.0 overhead
    ratios from tripping the gate on scheduler noise.
    """
    out = {}
    with open(path) as f:
        for line in f:
            m = BENCH_LINE.match(line.strip())
            if m:
                name, ns = m.group(1), float(m.group(2))
                out[name] = min(out.get(name, ns), ns)
    if not out:
        sys.exit(f"bench_gate: no benchmark lines found in {path}")
    return out


def ratios(ns, fig2_seconds):
    """Derive the gated ratios from raw ns/op numbers."""
    def get(name):
        key = "BenchmarkAccessPath/" + name
        if key not in ns:
            sys.exit(f"bench_gate: missing {key} in bench output")
        return ns[key]

    if fig2_seconds is None and "BenchmarkAccessPathFig2Cal" in ns:
        fig2_seconds = ns["BenchmarkAccessPathFig2Cal"] / 1e9
    scalar = get("scalar/plain")
    r = {
        "batched_vs_scalar": get("batched/plain") / scalar,
        "strided_vs_scalar": get("strided/plain") / scalar,
        "traced_overhead_scalar": get("scalar/traced") / scalar,
        "traced_overhead_batched": get("batched/traced") / get("batched/plain"),
        "profiled_overhead_scalar": get("scalar/profiled") / scalar,
        "profiled_overhead_batched": get("batched/profiled") / get("batched/plain"),
    }
    if "BenchmarkAccessPathWriteRun" in ns:
        r["writerun_vs_scalar"] = ns["BenchmarkAccessPathWriteRun"] / scalar
    if "BenchmarkServe" in ns:
        # The serving probe runs a fixed Tiny stream, so its ns/op over the
        # scalar path is a machine-independent end-to-end serving cost.
        r["serve_vs_scalar"] = ns["BenchmarkServe"] / scalar
    on = ns.get("BenchmarkOrchestratorOverhead/on")
    off = ns.get("BenchmarkOrchestratorOverhead/off")
    if on is not None and off is not None:
        # Same workload with and without the orchestrator attached: the
        # ratio is the daemon's observation-and-planning overhead and must
        # stay near 1.
        r["adapt_overhead_vs_off"] = on / off
    son = ns.get("BenchmarkServeSpans/on")
    soff = ns.get("BenchmarkServeSpans/off")
    if son is not None and soff is not None:
        # Same serving stream with and without span assembly: simulated
        # time is bit-identical either way, so the ratio is the harness's
        # span-bookkeeping cost and must stay bounded.
        r["spans_overhead_vs_off"] = son / soff
    hj = ns.get("BenchmarkMPSMJoin/hashjoin")
    mp = ns.get("BenchmarkMPSMJoin/mpsm")
    if hj is not None and mp is not None:
        # NUMA-aware sort-merge join vs the tuned hash join on identical
        # fixed tables: a regression to either operator's simulated-work
        # shape moves this ratio.
        r["mpsm_vs_hashjoin"] = mp / hj
    ser = ns.get("BenchmarkMachineParallel/serial")
    pg1 = ns.get("BenchmarkMachineParallel/par4gomax1")
    if ser is not None and pg1 is not None:
        # Four quantum workers pinned to one host core vs the inline
        # serial path: the worker pool's pure dispatch/merge overhead,
        # which must stay near 1 regardless of the runner's core count.
        r["machine_parallel_vs_serial"] = pg1 / ser
    ss = ns.get("BenchmarkChunkedScan/single")
    cs = ns.get("BenchmarkChunkedScan/chunked")
    if ss is not None and cs is not None:
        # Per-node chunked storage vs single-region for the same scan:
        # chunked must keep its batched, extent-resolved access pattern.
        r["chunked_scan_vs_single"] = cs / ss
    if fig2_seconds is not None:
        # Seconds -> ns, over ns per scalar access: the probe's cost in
        # units of "scalar accesses", which transfers across machines.
        r["fig2_cal_vs_scalar"] = fig2_seconds * 1e9 / scalar
    return {k: round(v, 4) for k, v in sorted(r.items())}


def cmd_baseline(args):
    ns = parse_bench(args.bench_out)
    doc = {
        "schema": "repro/bench-gate/v1",
        "gated_ratios": ratios(ns, args.fig2_seconds),
        "info_ns_per_op": {k: ns[k] for k in sorted(ns)},
    }
    if args.fig2_seconds is not None:
        doc["info_fig2_cal_seconds"] = args.fig2_seconds
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def cmd_compare(args):
    with open(args.baseline) as f:
        base = json.load(f)
    if base.get("schema") != "repro/bench-gate/v1":
        sys.exit(f"bench_gate: {args.baseline} is not a bench-gate baseline")
    ns = parse_bench(args.bench_out)
    cur = ratios(ns, args.fig2_seconds)
    baseline = base["gated_ratios"]

    rows = []
    failed = []
    for key in sorted(baseline):
        if key not in cur:
            # A probe present in the baseline but not supplied now (e.g. no
            # --fig2-seconds) is skipped, not failed: partial local runs of
            # the gate stay useful.
            rows.append((key, baseline[key], None, None, "skip"))
            continue
        b, c = baseline[key], cur[key]
        delta = c / b - 1
        status = "ok" if abs(delta) <= args.threshold else "FAIL"
        if status == "FAIL":
            failed.append(key)
        rows.append((key, b, c, delta, status))
    for key in sorted(set(cur) - set(baseline)):
        rows.append((key, None, cur[key], None, "new"))

    width = max(len(r[0]) for r in rows)
    print(f"{'ratio':<{width}}  {'baseline':>9}  {'current':>9}  {'delta':>7}  status")
    for key, b, c, delta, status in rows:
        bs = f"{b:9.4f}" if b is not None else "        -"
        cs = f"{c:9.4f}" if c is not None else "        -"
        ds = f"{delta:+6.1%}" if delta is not None else "      -"
        print(f"{key:<{width}}  {bs}  {cs}  {ds}  {status}")

    if args.out:
        doc = {
            "schema": "repro/bench-gate-compare/v1",
            "threshold": args.threshold,
            "baseline_ratios": baseline,
            "current_ratios": cur,
            "current_ns_per_op": {k: ns[k] for k in sorted(ns)},
            "failed": failed,
        }
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")

    if failed:
        print(f"\nbench_gate: FAIL — {len(failed)} ratio(s) moved more than "
              f"{args.threshold:.0%}: {', '.join(failed)}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_gate: ok — all gated ratios within {args.threshold:.0%}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    b = sub.add_parser("baseline", help="emit a baseline JSON from bench output")
    b.add_argument("bench_out")
    b.add_argument("--fig2-seconds", type=float, default=None)
    b.set_defaults(func=cmd_baseline)

    c = sub.add_parser("compare", help="gate bench output against a baseline")
    c.add_argument("baseline")
    c.add_argument("bench_out")
    c.add_argument("--fig2-seconds", type=float, default=None)
    c.add_argument("--threshold", type=float, default=0.10)
    c.add_argument("--out", default=None)
    c.set_defaults(func=cmd_compare)

    args = ap.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
