// Quickstart: build the paper's Machine A, run the holistic aggregation
// workload (W1) under the out-of-the-box OS configuration and under the
// paper's tuned configuration, and print the speedup — the headline
// experiment of the reproduction in ~30 lines.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		records     = 300_000
		cardinality = 40_000
		threads     = 16
	)
	dataset := repro.MovingCluster(records, cardinality, 1)
	run := func(label string, cfg repro.RunConfig) float64 {
		m := repro.NewMachineA()
		m.Configure(cfg)
		out := repro.Aggregate(m, repro.AggregationSpec{
			Records:     dataset,
			Cardinality: cardinality,
			Holistic:    true,
		})
		fmt.Printf("%-22s %8.3f billion cycles  (%d groups, LAR %.2f)\n",
			label, out.Result.WallCycles/1e9, out.Groups, out.Result.Counters.LAR())
		return out.Result.WallCycles
	}

	def := run("OS default:", repro.DefaultConfig(threads))
	tuned := run("tuned (Figure 10):", repro.TunedConfig(threads))
	fmt.Printf("\nlatency reduction: %.1f%%\n", repro.Speedup(def, tuned)*100)
}
