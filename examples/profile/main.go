// Profile: run the holistic aggregation workload (W1) on Machine A under
// the OS default and under the paper's tuned configuration with cycle
// attribution on, and see where the time went — a percentage-stacked
// component breakdown, numastat-style node access matrices, and a folded
// stack file loadable in speedscope (https://speedscope.app) or
// flamegraph.pl.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	const (
		records     = 300_000
		cardinality = 40_000
		threads     = 16
	)

	run := func(name string, cfg repro.RunConfig) (*repro.CycleProfile, float64) {
		m := repro.NewMachineA()
		m.Configure(cfg)
		// Attribution is observation-only: wall cycles are bit-identical
		// with profiling on or off, so profiled runs are still comparable
		// against unprofiled ones.
		m.Observe(repro.ObserveOptions{Profile: true})
		out := repro.Aggregate(m, repro.AggregationSpec{
			Records:     repro.MovingCluster(records, cardinality, 1),
			Cardinality: cardinality,
			Holistic:    true,
		})
		fmt.Printf("%-8s %.3f billion cycles\n", name, out.Result.WallCycles/1e9)
		return m.Profile(), out.Result.WallCycles
	}

	defProf, defWall := run("default", repro.DefaultConfig(threads))
	tunProf, tunWall := run("tuned", repro.TunedConfig(threads))
	fmt.Printf("tuned is %.1f%% faster\n\n", 100*(defWall-tunWall)/defWall)

	// Where did the cycles go? One column per configuration, one row per
	// component bucket, percentage-stacked.
	repro.BreakdownTable("W1 cycle breakdown (% of attributed cycles)",
		repro.BreakdownColumn{Name: "default", Profile: defProf},
		repro.BreakdownColumn{Name: "tuned", Profile: tunProf},
	).Render(os.Stdout)
	fmt.Println()

	// Who accessed whose memory? Rows are the accessing node, columns the
	// home node of the line — the simulator's numastat.
	repro.NodeMatrixTable("Node access matrix: default", defProf).Render(os.Stdout)
	fmt.Println()
	repro.NodeMatrixTable("Node access matrix: tuned", tunProf).Render(os.Stdout)

	// Per-thread flame graph input: root;thread N;component <cycles>.
	f, err := os.Create("profile.folded")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := repro.FoldedStacks(f,
		repro.FoldedProfile{Name: "default", Profile: defProf},
		repro.FoldedProfile{Name: "tuned", Profile: tunProf},
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nwrote profile.folded (import into https://speedscope.app)")
}
