// Index nested-loop join (W4): build each of the four in-memory indexes
// (ART, Masstree, B+tree, Skip List) over the primary table and probe it
// with the 16x foreign table, comparing build and join times and the
// effect of the memory allocator — the paper's Figure 7.
package main

import (
	"fmt"

	"repro"
)

func main() {
	tables := repro.JoinData(30_000, 16, 17)
	fmt.Printf("join dataset: |R| = %d, |S| = %d\n\n", len(tables.R), len(tables.S))

	kinds := []repro.IndexKind{repro.ART, repro.Masstree, repro.BTree, repro.SkipList}

	fmt.Println("Build and join times at the tuned configuration (billion cycles):")
	fmt.Printf("  %-10s %10s %10s %10s\n", "index", "build", "join", "total")
	for _, kind := range kinds {
		m := repro.NewMachineA()
		m.Configure(repro.TunedConfig(16))
		out := repro.IndexJoin(m, kind, tables)
		fmt.Printf("  %-10s %10.3f %10.3f %10.3f\n", kind,
			out.BuildCycles/1e9, out.ProbeCycles/1e9,
			(out.BuildCycles+out.ProbeCycles)/1e9)
	}

	fmt.Println("\nART join time by allocator (it requests the widest size-class mix):")
	for _, a := range []string{"ptmalloc", "jemalloc", "Hoard", "tbbmalloc"} {
		m := repro.NewMachineA()
		cfg := repro.TunedConfig(16)
		cfg.Allocator = a
		m.Configure(cfg)
		out := repro.IndexJoin(m, repro.ART, tables)
		fmt.Printf("  %-10s %10.3f billion cycles (%d matches)\n",
			a, out.ProbeCycles/1e9, out.Matches)
	}
}
