// Trace: attach a cycle-stamped event recorder to Machine A, run the
// holistic aggregation workload (W1) with the AutoNUMA and THP daemons
// on, and inspect what the simulator did — event counts and cost
// histograms on stdout, plus a Chrome trace-event file loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	const (
		records     = 300_000
		cardinality = 40_000
		threads     = 16
	)

	m := repro.NewMachineA()
	cfg := repro.DefaultConfig(threads) // daemons on: the eventful config
	m.Configure(cfg)

	// A recorder captures every simulator event: thread migrations, page
	// faults and migrations, hugepage collapses and splits, AutoNUMA scan
	// passes, allocator lock-contention stalls, coherence transfers.
	// Machines without a sink skip all of this at zero cost. One Observe
	// call attaches the sink and periodic counter snapshots together.
	rec := repro.NewTraceRecorder()
	m.Observe(repro.ObserveOptions{Sink: rec, SnapEvery: 100_000})

	out := repro.Aggregate(m, repro.AggregationSpec{
		Records:     repro.MovingCluster(records, cardinality, 1),
		Cardinality: cardinality,
		Holistic:    true,
	})
	fmt.Printf("W1 on Machine A: %.3f billion cycles, %d events, %d snapshots\n\n",
		out.Result.WallCycles/1e9, rec.Len(), len(m.Snapshots()))

	// Aggregate views: events per kind, and a cost histogram.
	repro.TraceSummary(rec.Events).Render(os.Stdout)
	fmt.Println()
	repro.TraceCostHistogram(rec.Events).Render(os.Stdout)

	// Full timeline for Perfetto: one process per machine, one track per
	// simulated thread (track 0 carries the kernel daemons).
	f, err := os.Create("trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := repro.ChromeTrace(f, repro.TraceProcess{
		Name:    m.Spec.Name,
		FreqGHz: m.Spec.FreqGHz,
		Events:  rec.Events,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nwrote trace.json (load in Perfetto or chrome://tracing)")
}
