// Advisor: use the paper's Figure 10 decision flowchart programmatically.
// Three practitioner scenarios are run through the advisor and each
// recommendation is validated by measuring the recommended configuration
// against the OS default on the simulated Machine C.
package main

import (
	"fmt"

	"repro"
)

func main() {
	scenarios := []struct {
		name   string
		traits repro.Traits
	}{
		{
			"analytics cluster (root, bandwidth-bound, join-heavy)",
			repro.Traits{MemoryBandwidthBound: true, SuperuserAccess: true, AllocationHeavy: true},
		},
		{
			"shared host (no root, memory-constrained ETL)",
			repro.Traits{AllocationHeavy: true, FreeMemoryConstrained: true},
		},
		{
			"cache-friendly scan service (already pinned)",
			repro.Traits{ThreadPlacementManaged: true},
		},
	}
	for _, sc := range scenarios {
		rec := repro.Advise(sc.traits)
		fmt.Printf("%s:\n", sc.name)
		fmt.Printf("  -> %s placement, %s policy, allocator %s, AutoNUMA off=%v, THP off=%v\n",
			rec.Placement, rec.Policy, rec.Allocator, rec.DisableAutoNUMA, rec.DisableTHP)
		for _, why := range rec.Rationale {
			fmt.Printf("     . %s\n", why)
		}
		fmt.Println()
	}

	// Validate the first recommendation end to end on Machine C (64 HW
	// threads), using the W1 aggregation workload.
	rec := repro.Advise(scenarios[0].traits)
	recs := repro.MovingCluster(200_000, 25_000, 3)
	measure := func(cfg repro.RunConfig) float64 {
		m := repro.NewMachineC()
		m.Configure(cfg)
		return repro.Aggregate(m, repro.AggregationSpec{
			Records: recs, Cardinality: 25_000, Holistic: true,
		}).Result.WallCycles
	}
	threads := repro.SpecC().HardwareThreads()
	def := measure(repro.DefaultConfig(threads))
	adv := measure(rec.Apply(threads))
	fmt.Printf("validation on Machine C (%d threads):\n", threads)
	fmt.Printf("  OS default  %8.3f billion cycles\n", def/1e9)
	fmt.Printf("  advised     %8.3f billion cycles  (%.1f%% faster)\n",
		adv/1e9, repro.Speedup(def, adv)*100)
}
