// TPC-H tuning (W5): run a selection of TPC-H queries on two very
// different simulated engines — MonetDB (columnar, fully parallel,
// materializing) and MySQL (row store, single-threaded queries) — under
// the OS default and the paper's tuned configuration, reproducing the
// Figure 8 observation that engine architecture decides how much the same
// OS-level tuning helps.
package main

import (
	"fmt"

	"repro"
)

func main() {
	db := repro.GenerateTPCH(0.002, 41)
	fmt.Printf("TPC-H SF 0.002: %d lineitems, %d orders, %d customers\n\n",
		len(db.Lineitems), len(db.Orders), len(db.Customers))

	queries := []int{1, 5, 6, 18}
	spec := repro.SpecA()

	for _, engine := range []string{"MonetDB", "MySQL"} {
		prof := repro.EngineByName(engine)
		defCfg := repro.DefaultConfig(spec.HardwareThreads())
		defCfg.Seed = 9
		tuned := repro.TunedConfig(spec.HardwareThreads())
		tuned.Policy = repro.FirstTouch // the paper's W5 tuning keeps First Touch

		defH := repro.NewTPCHHarness(spec, prof, defCfg, db, 2)
		tunedH := repro.NewTPCHHarness(spec, prof, tuned, db, 2)

		fmt.Printf("%s:\n", engine)
		for _, q := range queries {
			d, _ := defH.Measure(q)
			u, res := tunedH.Measure(q)
			fmt.Printf("  Q%-2d  default %8.3fB  tuned %8.3fB  (%.1f%% faster, check %d)\n",
				q, d/1e9, u/1e9, repro.Speedup(d, u)*100, res.Check)
		}
		fmt.Println()
	}
}
