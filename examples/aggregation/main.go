// Aggregation tuning: sweep memory placement policies and allocators for
// the two aggregation workloads (W1 holistic MEDIAN, W2 distributive
// COUNT) on Machine A, showing the paper's Figure 5/6 story: the holistic
// query is allocation-heavy and gains from both knobs, while the
// distributive query gains almost entirely from Interleave.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		records     = 200_000
		cardinality = 30_000
	)
	dataset := repro.Zipfian(records, cardinality, 0.5, 7)

	run := func(holistic bool, policy repro.Policy, allocator string) float64 {
		m := repro.NewMachineA()
		cfg := repro.TunedConfig(16)
		cfg.Policy = policy
		cfg.Allocator = allocator
		m.Configure(cfg)
		out := repro.Aggregate(m, repro.AggregationSpec{
			Records:     dataset,
			Cardinality: cardinality,
			Holistic:    holistic,
		})
		return out.Result.WallCycles / 1e9
	}

	for _, w := range []struct {
		name     string
		holistic bool
	}{
		{"W1 holistic (MEDIAN)", true},
		{"W2 distributive (COUNT)", false},
	} {
		fmt.Printf("\n%s on Machine A, 16 threads (billion cycles):\n", w.name)
		fmt.Printf("  %-12s %12s %12s\n", "allocator", "First Touch", "Interleave")
		for _, a := range []string{"ptmalloc", "jemalloc", "tbbmalloc"} {
			ft := run(w.holistic, repro.FirstTouch, a)
			il := run(w.holistic, repro.Interleave, a)
			fmt.Printf("  %-12s %12.3f %12.3f\n", a, ft, il)
		}
	}
	fmt.Println("\nNote how W2's columns differ far more than its rows:")
	fmt.Println("placement, not the allocator, is what moves a distributive aggregate.")
}
