// Command numabench regenerates the paper's tables and figures on the NUMA
// simulator. Each experiment id maps to one artifact of the evaluation
// section; see DESIGN.md section 5 for the index.
//
// Usage:
//
//	numabench -experiment fig5a -scale small
//	numabench -experiment fig2,fig3,fig4 -scale tiny
//	numabench -experiment all -scale default -csv
//	numabench -experiment all -scale cal -parallel 4
//	numabench -experiment fig2 -scale tiny -json results.jsonl
//	numabench -experiment fig5a -scale tiny -trace trace.json
//	numabench -validate results.jsonl
//	numabench -list
//
// -json appends one JSONL record per grid cell (schema repro/bench/v1;
// see internal/experiments.SchemaVersion). -trace additionally records
// every simulator event — thread migrations, page faults and migrations,
// hugepage collapses and splits, AutoNUMA scans, allocator stalls,
// coherence transfers — and writes a Chrome trace-event file loadable in
// Perfetto. Both are byte-identical for a fixed seed at any -parallel
// setting, except the host_ns field of JSONL records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func scales() map[string]experiments.Scale {
	return map[string]experiments.Scale{
		"tiny":    experiments.Tiny,
		"small":   experiments.Small,
		"cal":     experiments.Cal,
		"default": experiments.Default,
	}
}

func main() {
	var (
		exp       = flag.String("experiment", "", "comma-separated experiment ids (see -list) or 'all'")
		scale     = flag.String("scale", "small", "dataset scale: tiny, small, cal or default")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list      = flag.Bool("list", false, "list experiments (id, artifact, title) and exit")
		showTime  = flag.Bool("time", true, "print per-experiment elapsed wall time")
		parallel  = flag.Int("parallel", 1, "grid worker count (0 = GOMAXPROCS); output is identical to -parallel 1")
		progress  = flag.Bool("progress", false, "report grid cell progress on stderr")
		jsonPath  = flag.String("json", "", "append one JSONL record per grid cell to this file")
		tracePath = flag.String("trace", "", "record per-cell event traces and write a Chrome trace-event file")
		validate  = flag.String("validate", "", "validate a JSONL results file against the schema and exit")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(1)
		}
		recs, err := experiments.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %s: %v\n", *validate, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d records, schema %s\n", *validate, len(recs), experiments.SchemaVersion)
		return
	}

	if *list {
		for _, d := range experiments.Descriptors() {
			fmt.Printf("%-12s %-18s %s\n", d.Id, d.Artifact, d.Title)
		}
		return
	}
	s, ok := scales()[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "numabench: unknown scale %q (tiny, small, cal, default)\n", *scale)
		os.Exit(2)
	}
	var todo []string
	switch *exp {
	case "":
		fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
		os.Exit(2)
	case "all":
		todo = experiments.Ids()
	default:
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, err := experiments.Lookup(id); err != nil {
				fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
				os.Exit(2)
			}
			todo = append(todo, id)
		}
		if len(todo) == 0 {
			fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
			os.Exit(2)
		}
	}

	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.OpenFile(*jsonPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		jsonFile = f
	}
	if *tracePath != "" {
		experiments.SetCellTracing(true)
	}
	var traced []report.TraceProcess

	for _, id := range todo {
		r := core.Runner{Workers: *parallel}
		if *progress {
			r.Progress = core.ProgressWriter(os.Stderr, id, 0)
		}
		experiments.SetRunner(r)
		d, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		res, err := d.Run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, tab := range res.Tables {
			if *csv {
				tab.RenderCSV(os.Stdout)
			} else {
				tab.Render(os.Stdout)
			}
			fmt.Println()
		}
		if jsonFile != nil {
			if err := experiments.WriteJSONL(jsonFile, res.Records); err != nil {
				fmt.Fprintf(os.Stderr, "numabench: %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
		}
		if *tracePath != "" {
			for i := range res.Records {
				rec := &res.Records[i]
				if ev := rec.TraceEvents(); len(ev) > 0 {
					traced = append(traced, report.TraceProcess{
						Name:    res.Id + "/" + rec.Cell,
						FreqGHz: rec.FreqGHz,
						Events:  ev,
					})
				}
			}
		}
		if *showTime {
			fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(1)
		}
		if err := report.ChromeTrace(f, traced...); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "numabench: %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
	}
}
