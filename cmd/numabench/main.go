// Command numabench regenerates the paper's tables and figures on the NUMA
// simulator. Each experiment id maps to one artifact of the evaluation
// section; see DESIGN.md section 5 for the index.
//
// Usage:
//
//	numabench -experiment fig5a -scale small
//	numabench -experiment all -scale default -csv
//	numabench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/report"
)

func scales() map[string]experiments.Scale {
	return map[string]experiments.Scale{
		"tiny":    experiments.Tiny,
		"small":   experiments.Small,
		"cal":     experiments.Cal,
		"default": experiments.Default,
	}
}

// tables returns the renderables an experiment id produces.
type runner func(s experiments.Scale) []*report.Table

func runners() map[string]runner {
	return map[string]runner{
		"fig2": func(s experiments.Scale) []*report.Table {
			r := experiments.Fig2(s)
			return []*report.Table{r.RenderTime(), r.RenderOverhead()}
		},
		"fig3": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig3(s).Render()}
		},
		"table2": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Table2()}
		},
		"table3": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Table3(s).Render()}
		},
		"fig4": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig4(s).Render()}
		},
		"fig5a": func(s experiments.Scale) []*report.Table {
			r := experiments.Fig5a(s)
			return []*report.Table{r.Render(), r.RenderLAR()}
		},
		"fig5c": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig5c(s).Render()}
		},
		"fig5d": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig5d(s).Render()}
		},
		"fig6w1": func(s experiments.Scale) []*report.Table {
			var ts []*report.Table
			for _, mc := range []string{"A", "B", "C"} {
				ts = append(ts, experiments.Fig6W1(s, mc).Render())
			}
			return ts
		},
		"fig6w2": func(s experiments.Scale) []*report.Table {
			var ts []*report.Table
			for _, mc := range []string{"A", "B", "C"} {
				ts = append(ts, experiments.Fig6W2(s, mc).Render())
			}
			return ts
		},
		"fig6w3": func(s experiments.Scale) []*report.Table {
			var ts []*report.Table
			for _, mc := range []string{"A", "B", "C"} {
				ts = append(ts, experiments.Fig6W3(s, mc).Render())
			}
			return ts
		},
		"fig6j": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig6j(s).Render()}
		},
		"fig7": func(s experiments.Scale) []*report.Table {
			var ts []*report.Table
			for _, k := range index.Kinds() {
				ts = append(ts, experiments.Fig7(s, k).Render())
			}
			ts = append(ts, experiments.Fig7e(s).Render())
			return ts
		},
		"fig8": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig8(s).Render()}
		},
		"fig9": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig9(s).Render()}
		},
		"fig10": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Fig10(s).Render()}
		},
		"ablation": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.Ablate(s).Render()}
		},
		"preferred": func(s experiments.Scale) []*report.Table {
			return []*report.Table{experiments.PolicySensitivity(s).Render()}
		},
	}
}

func main() {
	var (
		exp      = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		scale    = flag.String("scale", "small", "dataset scale: tiny, small, cal or default")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		showTime = flag.Bool("time", true, "print per-experiment elapsed wall time")
	)
	flag.Parse()

	ids := make([]string, 0, len(runners()))
	for id := range runners() {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	s, ok := scales()[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "numabench: unknown scale %q (tiny, small, cal, default)\n", *scale)
		os.Exit(2)
	}
	var todo []string
	switch *exp {
	case "":
		fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
		os.Exit(2)
	case "all":
		todo = ids
	default:
		if _, ok := runners()[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "numabench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		todo = []string{*exp}
	}
	for _, id := range todo {
		start := time.Now()
		tables := runners()[id](s)
		for _, tab := range tables {
			if *csv {
				tab.RenderCSV(os.Stdout)
			} else {
				tab.Render(os.Stdout)
			}
			fmt.Println()
		}
		if *showTime {
			fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
		}
	}
}
