// Command numabench regenerates the paper's tables and figures on the NUMA
// simulator. Each experiment id maps to one artifact of the evaluation
// section; see DESIGN.md section 5 for the index.
//
// Usage:
//
//	numabench -experiment fig5a -scale small
//	numabench -experiment fig2,fig3,fig4 -scale tiny
//	numabench -experiment all -scale default -csv
//	numabench -experiment all -scale cal -parallel 4
//	numabench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func scales() map[string]experiments.Scale {
	return map[string]experiments.Scale{
		"tiny":    experiments.Tiny,
		"small":   experiments.Small,
		"cal":     experiments.Cal,
		"default": experiments.Default,
	}
}

func main() {
	var (
		exp      = flag.String("experiment", "", "comma-separated experiment ids (see -list) or 'all'")
		scale    = flag.String("scale", "small", "dataset scale: tiny, small, cal or default")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		showTime = flag.Bool("time", true, "print per-experiment elapsed wall time")
		parallel = flag.Int("parallel", 1, "grid worker count (0 = GOMAXPROCS); output is identical to -parallel 1")
		progress = flag.Bool("progress", false, "report grid cell progress on stderr")
	)
	flag.Parse()

	ids := experiments.Ids()
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	s, ok := scales()[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "numabench: unknown scale %q (tiny, small, cal, default)\n", *scale)
		os.Exit(2)
	}
	var todo []string
	switch *exp {
	case "":
		fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
		os.Exit(2)
	case "all":
		todo = ids
	default:
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, err := experiments.Lookup(id); err != nil {
				fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
				os.Exit(2)
			}
			todo = append(todo, id)
		}
		if len(todo) == 0 {
			fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
			os.Exit(2)
		}
	}
	for _, id := range todo {
		r := core.Runner{Workers: *parallel}
		if *progress {
			r.Progress = core.ProgressWriter(os.Stderr, id, 0)
		}
		experiments.SetRunner(r)
		driver, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := driver(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, tab := range tables {
			if *csv {
				tab.RenderCSV(os.Stdout)
			} else {
				tab.Render(os.Stdout)
			}
			fmt.Println()
		}
		if *showTime {
			fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
		}
	}
}
