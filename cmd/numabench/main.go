// Command numabench regenerates the paper's tables and figures on the NUMA
// simulator. Each experiment id maps to one artifact of the evaluation
// section; see DESIGN.md section 5 for the index.
//
// Usage:
//
//	numabench -experiment fig5a -scale small
//	numabench -experiment fig2,fig3,fig4 -scale tiny
//	numabench -experiment all -scale default -csv
//	numabench -experiment all -scale cal -parallel 4
//	numabench -experiment fig2 -scale tiny -json results.jsonl
//	numabench -experiment fig5a -scale tiny -trace trace.json
//	numabench -experiment profile -scale cal -breakdown -folded profile.folded
//	numabench -experiment serve -scale cal -serve-requests 2000 -serve-util 0.8
//	numabench -experiment serve -scale cal -spans spans.jsonl
//	numabench -experiment serve-adapt -scale cal -adapt-period 2e6
//	numabench -experiment numaware -scale cal
//	numabench -validate results.jsonl
//	numabench -validate spans.jsonl
//	numabench -list
//
// -json appends one JSONL record per grid cell (schema repro/bench/v2;
// see internal/experiments.SchemaVersion — the validator also accepts v1
// files written before the profiler existed). -trace additionally records
// every simulator event — thread migrations, page faults and migrations,
// hugepage collapses and splits, AutoNUMA scans, allocator stalls,
// coherence transfers — and writes a Chrome trace-event file loadable in
// Perfetto, with counter tracks from the periodic snapshots. -breakdown
// attaches the cycle-attribution profiler to every grid cell and prints
// each experiment's percentage-stacked component breakdown; -folded
// writes the same attribution as folded stacks (open in speedscope:
// Import > pick the file). -spans collects request-level spans from the
// serving experiments (session → request → queue-wait/service/phase,
// each with its profile-bucket and counter window) and writes them as
// repro/spans/v1 JSONL; -validate recognizes span files by their schema
// line. Span collection is observation-only: the measured results are
// bit-identical with it on or off. All of these are byte-identical for a
// fixed seed at any -parallel setting, except the host_ns field of JSONL
// records. -cpuprofile/-memprofile capture host pprof profiles of the
// simulator itself.
//
// Some experiments take extra knobs, carried as typed options through
// the registry (experiments.Options; -list shows which experiment reads
// which flags). The serve experiment takes -serve-requests (arrival
// stream length) and -serve-util (offered utilization, default 0.7 of
// the calibrated per-worker service capacity); the adapt experiment
// takes -adapt-period (orchestrator tick cadence in simulated cycles)
// and -adapt-budget (migration-cost budget fraction).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func scales() map[string]experiments.Scale {
	return map[string]experiments.Scale{
		"tiny":    experiments.Tiny,
		"small":   experiments.Small,
		"cal":     experiments.Cal,
		"default": experiments.Default,
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		exp        = flag.String("experiment", "", "comma-separated experiment ids (see -list) or 'all'")
		scale      = flag.String("scale", "small", "dataset scale: tiny, small, cal or default")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list       = flag.Bool("list", false, "list experiments (id, artifact, title) and exit")
		showTime   = flag.Bool("time", true, "print per-experiment elapsed wall time")
		parallel   = flag.Int("parallel", 1, "grid worker count (0 = GOMAXPROCS); output is identical to -parallel 1")
		progress   = flag.Bool("progress", false, "report grid cell progress on stderr")
		breakdown  = flag.Bool("breakdown", false, "attach the cycle profiler and print per-experiment component breakdowns")
		foldedPath = flag.String("folded", "", "attach the cycle profiler and write folded stacks (speedscope-loadable) to this file")
		serveReqs  = flag.Int("serve-requests", 0, "serve experiment: arrival stream length (0 = the scale's default)")
		serveUtil  = flag.Float64("serve-util", 0, "serve experiment: offered utilization the arrival rate targets (0 = 0.7)")
		adaptPer   = flag.Float64("adapt-period", 0, "adapt experiment: orchestrator tick period in simulated cycles (0 = default)")
		adaptBud   = flag.Float64("adapt-budget", 0, "adapt experiment: migration-cost budget fraction (0 = default)")
	)
	var shared cli.Flags
	shared.Register(flag.CommandLine)
	flag.Parse()
	shared.ApplyMachineFlags()

	if done, err := shared.HandleValidate(os.Stdout); done {
		if err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, d := range experiments.Descriptors() {
			opts := ""
			if len(d.Options) > 0 {
				opts = " [-" + strings.Join(d.Options, " -") + "]"
			}
			fmt.Printf("%-12s %-18s %s%s\n", d.Id, d.Artifact, d.Title, opts)
		}
		return
	}
	s, ok := scales()[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "numabench: unknown scale %q (tiny, small, cal, default)\n", *scale)
		os.Exit(2)
	}
	var todo []string
	switch *exp {
	case "":
		fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
		os.Exit(2)
	case "all":
		todo = experiments.Ids()
	default:
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, err := experiments.Lookup(id); err != nil {
				fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
				os.Exit(2)
			}
			todo = append(todo, id)
		}
		if len(todo) == 0 {
			fmt.Fprintln(os.Stderr, "numabench: -experiment required (or -list)")
			os.Exit(2)
		}
	}

	stopProfiles, err := shared.StartHostProfiles()
	if err != nil {
		fatal(err)
	}

	var jsonFile *os.File
	if shared.JSON != "" {
		f, err := os.OpenFile(shared.JSON, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonFile = f
	}
	if shared.Trace != "" {
		experiments.SetCellTracing(true)
	}
	if shared.Spans != "" {
		experiments.SetCellSpans(true)
	}
	if *breakdown || *foldedPath != "" {
		experiments.SetCellProfiling(true)
	}
	opts := experiments.Options{
		Serve: experiments.ServeOptions{Requests: *serveReqs, Util: *serveUtil},
		Adapt: experiments.AdaptOptions{Period: *adaptPer, BudgetFrac: *adaptBud},
	}
	var traced []report.TraceProcess
	var folded []report.FoldedProfile

	for _, id := range todo {
		r := core.Runner{Workers: *parallel}
		if *progress {
			r.Progress = core.ProgressWriter(os.Stderr, id, 0)
		}
		experiments.SetRunner(r)
		d, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		res, err := d.Run(s, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		tables := res.Tables
		if *breakdown {
			if cols := breakdownColumns(res); len(cols) > 0 {
				tables = append(tables, report.BreakdownTable(
					id+": cycle breakdown (% of attributed cycles)", cols...))
			}
		}
		for _, tab := range tables {
			if *csv {
				tab.RenderCSV(os.Stdout)
			} else {
				tab.Render(os.Stdout)
			}
			fmt.Println()
		}
		if jsonFile != nil {
			if err := experiments.WriteJSONL(jsonFile, res.Records); err != nil {
				fatal(fmt.Errorf("%s: %w", shared.JSON, err))
			}
		}
		if shared.Trace != "" {
			traced = append(traced, cli.RecordTraces(res)...)
		}
		if shared.Spans != "" && len(res.Spans) > 0 {
			if err := cli.WriteSpans(shared.Spans, res.Spans); err != nil {
				fatal(fmt.Errorf("%s: %w", shared.Spans, err))
			}
		}
		if *foldedPath != "" {
			folded = append(folded, cli.RecordFolded(res)...)
		}
		if *showTime {
			fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "[%s: %s]\n", id, cli.CacheSummary())
		}
	}

	if shared.Trace != "" {
		if err := cli.WriteChromeTrace(shared.Trace, traced); err != nil {
			fatal(fmt.Errorf("%s: %w", shared.Trace, err))
		}
	}
	if *foldedPath != "" {
		if err := cli.WriteFolded(*foldedPath, folded); err != nil {
			fatal(fmt.Errorf("%s: %w", *foldedPath, err))
		}
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

// breakdownColumns builds one breakdown column per profiled grid cell of
// an experiment result.
func breakdownColumns(res *experiments.Result) []report.BreakdownColumn {
	var cols []report.BreakdownColumn
	for i := range res.Records {
		rec := &res.Records[i]
		if rec.Profile == nil {
			continue
		}
		cols = append(cols, report.BreakdownColumn{Name: rec.Cell, Profile: rec.Profile})
	}
	return cols
}
