// Command numatune runs tuning campaigns over the NUMA knob space
// (thread placement x memory policy x allocator x AutoNUMA x THP) on the
// simulator. Three strategies are available: an exhaustive grid, greedy
// coordinate descent from the OS default, and successive halving, which
// races the whole space at a small dataset fraction and promotes
// survivors toward full size. Campaigns are budgeted in simulated cycles
// and parallelize with -parallel while every artifact stays
// byte-identical to a serial run.
//
// Usage:
//
//	numatune -strategy sha -workload W1 -machine A -scale cal
//	numatune -strategy grid -workload W3 -machine C -freeze thp=off -parallel 4
//	numatune -strategy sha -scale cal -budget 50 -json campaign.jsonl -progress
//	numatune -strategy sha -scale cal -json campaign.jsonl -resume
//	numatune -validate campaign.jsonl
//
// -json writes one repro/tune/v1 record per trial (see
// internal/tune.SchemaVersion), flushed after every scheduling wave so a
// killed campaign leaves a usable checkpoint. -resume loads that file,
// re-runs only the missing trials, and rewrites it — the resumed artifact
// is byte-identical to an uninterrupted run. Unlike repro/bench/v2 there
// is no host_ns field: every byte is deterministic for a fixed spec.
//
// -workload WS tunes the open-loop serving mix for p99 latency instead of
// wall cycles: records carry objective=p99_latency and wall_cycles holds
// the trial's p99 in cycles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/tune"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "numatune: %v\n", err)
	os.Exit(1)
}

func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "numatune: %s\n", msg)
	os.Exit(2)
}

func main() {
	var (
		strategy = flag.String("strategy", "sha", "campaign strategy: grid, descent or sha")
		workload = flag.String("workload", "W1", "workload id: W1, W3, or WS (open-loop serving, minimizes p99 latency)")
		mc       = flag.String("machine", "A", "simulated machine: A-C (paper presets), D (8-node chiplet) or E (16-node mesh)")
		scale    = flag.String("scale", "cal", "dataset scale: tiny, small, cal or default")
		threads  = flag.Int("threads", 0, "worker threads per trial (0 = the machine's hardware threads)")
		seed     = flag.Uint64("seed", 1, "RNG seed for every trial")
		budget   = flag.Float64("budget", 0, "simulated-cycle budget in billions (0 = unbounded)")
		eta      = flag.Int("eta", 0, "successive-halving elimination factor (0 = default 4)")
		rungs    = flag.Int("rungs", 0, "successive-halving rung count (0 = default 3)")
		wave     = flag.Int("wave", 0, "trials per scheduling wave (0 = default 16)")
		freeze   = flag.String("freeze", "", "freeze axes to single values, e.g. placement=Sparse,thp=off")
		top      = flag.Int("top", 10, "configurations to print in the ranking")
		parallel = flag.Int("parallel", 1, "trial worker count (0 = GOMAXPROCS); output is identical to -parallel 1")
		progress = flag.Bool("progress", false, "report campaign progress and cache reuse on stderr after every wave")
		resume   = flag.Bool("resume", false, "resume from the -json checkpoint: re-run only missing trials, rewrite the file")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	var shared cli.Flags
	shared.RegisterNoTrace(flag.CommandLine)
	flag.Parse()
	shared.ApplyMachineFlags()

	if shared.Validate != "" {
		n, err := cli.ValidateTuneJSONL(shared.Validate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d records, schema %s\n", shared.Validate, n, tune.SchemaVersion)
		return
	}

	scales := map[string]experiments.Scale{
		"tiny":    experiments.Tiny,
		"small":   experiments.Small,
		"cal":     experiments.Cal,
		"default": experiments.Default,
	}
	s, ok := scales[*scale]
	if !ok {
		usageErr(fmt.Sprintf("unknown scale %q (tiny, small, cal, default)", *scale))
	}

	space := tune.DefaultSpace()
	if *freeze != "" {
		var err error
		space, err = tune.ParseFreezes(space, *freeze)
		if err != nil {
			usageErr(err.Error())
		}
	}

	spec := tune.Spec{
		Strategy: strings.ToLower(*strategy),
		Space:    space,
		Workload: strings.ToUpper(*workload),
		Machine:  strings.ToUpper(*mc),
		Threads:  *threads,
		Seed:     *seed,
		Size:     experiments.TuneSize(s),
		Budget:   *budget * 1e9,
		Eta:      *eta,
		Rungs:    *rungs,
		Wave:     *wave,
	}

	stopProfiles, err := shared.StartHostProfiles()
	if err != nil {
		fatal(err)
	}

	// -resume loads the checkpoint before the sink truncates the file;
	// the campaign replays reused trials in schedule order, so the
	// rewritten artifact is byte-identical to an uninterrupted run.
	var prior []tune.Record
	if *resume {
		if shared.JSON == "" {
			usageErr("-resume requires -json (the checkpoint to resume from)")
		}
		prior, err = tune.LoadCheckpoint(shared.JSON)
		if err != nil {
			fatal(err)
		}
	}
	var sink tune.SinkFunc
	if shared.JSON != "" {
		f, err := os.OpenFile(shared.JSON, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = func(recs []tune.Record) error { return tune.WriteJSONL(f, recs) }
	}
	var prog tune.ProgressFunc
	if *progress {
		start := time.Now()
		prog = func(trials, reused int, spent float64) {
			fmt.Fprintf(os.Stderr, "[%s] trials=%d reused=%d spent=%.3fb cycles, %s (%.1fs)\n",
				spec.ID(), trials, reused, spent/1e9, cli.CacheSummary(), time.Since(start).Seconds())
		}
	}

	res, err := tune.Run(spec, core.Runner{Workers: *parallel}, prior, sink, prog)
	if err != nil {
		fatal(err)
	}

	render := func(t *report.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	render(report.TopConfigsTable(
		fmt.Sprintf("Top configurations, %s on Machine %s (%s)", res.Spec.Workload, res.Spec.Machine, res.Spec.Strategy),
		tune.TopConfigs(res.Records), *top, tune.DefaultCycles(res.Records)))
	if res.Spec.Strategy == tune.StrategyGrid {
		render(report.KnobMarginalsTable(
			fmt.Sprintf("Per-knob marginals, %s on Machine %s", res.Spec.Workload, res.Spec.Machine),
			tune.Marginals(res.Spec.Space, res.Records)))
	}

	fmt.Printf("campaign %s: %d trials (%d reused from checkpoint), spent %.3f billion simulated cycles\n",
		res.Spec.ID(), len(res.Records), res.Reused, res.CyclesSpent/1e9)
	if res.Exhausted {
		fmt.Println("budget exhausted before the schedule completed")
	}
	if res.Best != nil {
		fmt.Printf("best: %s  %.3fb cycles  LAR %.3f\n",
			res.Best.Key, res.Best.WallCycles/1e9, res.Best.LAR)
	}
	if row, err := tune.Regret(res); err == nil {
		fmt.Printf("flowchart advice: %s  %.3fb cycles  regret %+.1f%% vs campaign optimum\n",
			row.AdvisedKey, row.AdvisedCycles/1e9, row.Regret()*100)
	} else if res.Best != nil {
		fmt.Printf("flowchart advice not measured by this campaign's schedule (%v)\n", err)
	}

	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}
