// Command tpchbench runs the W5 TPC-H workload on the simulated database
// engines: all 22 queries (or a selection) under the OS default and the
// paper's tuned configuration, reporting per-query latency reductions
// (Figure 8), or a single engine's latencies per allocator (Figure 9
// style).
//
// Independent harness runs (one per engine profile and configuration, or
// one per allocator) are dispatched through the core worker pool; results
// are identical for any -parallel setting because each harness owns its
// machine and engine state.
//
// Usage:
//
//	tpchbench -sf 0.005                       # Figure 8 on all engines
//	tpchbench -sf 0.005 -parallel 4           # same tables, less wall time
//	tpchbench -sf 0.005 -engine MonetDB -q 5,18 -allocators
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/tpch"
	"repro/internal/vmm"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	engine := flag.String("engine", "", "restrict to one engine profile")
	queriesFlag := flag.String("q", "", "comma-separated query numbers (default: all 22)")
	allocators := flag.Bool("allocators", false, "sweep allocators instead of default-vs-tuned (needs -engine)")
	warm := flag.Int("warm", 2, "warm runs per query")
	seed := flag.Uint64("seed", 41, "dataset seed")
	parallel := flag.Int("parallel", 1, "harness worker count (0 = GOMAXPROCS); output is identical to -parallel 1")
	progress := flag.Bool("progress", false, "report harness progress on stderr")
	flag.Parse()

	queries, err := parseQueries(*queriesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(2)
	}
	runner := core.Runner{Workers: *parallel}
	if *progress {
		runner.Progress = core.ProgressWriter(os.Stderr, "tpchbench", 0)
	}
	db := tpch.Generate(*sf, *seed)
	fmt.Fprintf(os.Stderr, "generated TPC-H SF %v: %d lineitems, %d orders\n",
		*sf, len(db.Lineitems), len(db.Orders))

	if *allocators {
		if *engine == "" {
			fmt.Fprintln(os.Stderr, "tpchbench: -allocators requires -engine")
			os.Exit(2)
		}
		if err := sweepAllocators(runner, db, *engine, queries, *warm); err != nil {
			fmt.Fprintln(os.Stderr, "tpchbench:", err)
			os.Exit(1)
		}
		return
	}

	profiles := tpch.Profiles()
	if *engine != "" {
		profiles = []tpch.Profile{tpch.ProfileByName(*engine)}
	}
	tab := &report.Table{Title: "TPC-H latency reduction, tuned vs default (Machine A)"}
	tab.Header = []string{"query"}
	for _, p := range profiles {
		tab.Header = append(tab.Header, p.Name)
	}
	spec := machine.SpecA()
	// One cell per (profile, config): a harness caches engine state across
	// queries, so the harness run is the unit of parallelism.
	const configs = 2 // 0 = OS default, 1 = tuned
	walls, err := core.Collect(runner, len(profiles)*configs, func(i int) ([]float64, error) {
		p := profiles[i/configs]
		var cfg machine.RunConfig
		if i%configs == 0 {
			cfg = machine.DefaultConfig(spec.HardwareThreads())
			cfg.Seed = 9
		} else {
			cfg = machine.RunConfig{
				Threads:   spec.HardwareThreads(),
				Placement: machine.PlaceSparse,
				Policy:    vmm.FirstTouch,
				Allocator: "tbbmalloc",
				Seed:      1,
				THP:       p.Name == "DBMSx",
			}
		}
		h := tpch.NewHarness(spec, p, cfg, db, *warm)
		out := make([]float64, 0, len(queries))
		for _, q := range queries {
			w, _ := h.Measure(q)
			out = append(out, w)
		}
		return out, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(1)
	}
	for qi, q := range queries {
		cells := []interface{}{"Q" + strconv.Itoa(q)}
		for pi := range profiles {
			d := walls[pi*configs][qi]
			u := walls[pi*configs+1][qi]
			cells = append(cells, report.Pct((d-u)/d))
		}
		tab.AddRow(cells...)
	}
	tab.Render(os.Stdout)
}

func sweepAllocators(runner core.Runner, db *tpch.DB, engine string, queries []int, warm int) error {
	prof := tpch.ProfileByName(engine)
	spec := machine.SpecA()
	tab := &report.Table{Title: engine + " query latency by allocator (billion cycles)"}
	tab.Header = []string{"allocator"}
	for _, q := range queries {
		tab.Header = append(tab.Header, "Q"+strconv.Itoa(q))
	}
	names := alloc.WorkloadNames()
	walls, err := core.Collect(runner, len(names), func(i int) ([]float64, error) {
		cfg := machine.RunConfig{
			Threads:   spec.HardwareThreads(),
			Placement: machine.PlaceSparse,
			Policy:    vmm.FirstTouch,
			Allocator: names[i],
			Seed:      1,
		}
		h := tpch.NewHarness(spec, prof, cfg, db, warm)
		out := make([]float64, 0, len(queries))
		for _, q := range queries {
			w, _ := h.Measure(q)
			out = append(out, w)
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		cells := []interface{}{name}
		for qi := range queries {
			cells = append(cells, report.Billions(walls[i][qi]))
		}
		tab.AddRow(cells...)
	}
	tab.Render(os.Stdout)
	return nil
}

func parseQueries(s string) ([]int, error) {
	if s == "" {
		qs := make([]int, tpch.NumQueries)
		for i := range qs {
			qs[i] = i + 1
		}
		return qs, nil
	}
	var qs []int
	for _, part := range strings.Split(s, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || q < 1 || q > tpch.NumQueries {
			return nil, fmt.Errorf("bad query number %q", part)
		}
		qs = append(qs, q)
	}
	return qs, nil
}
