// Command tpchbench runs the W5 TPC-H workload on the simulated database
// engines: all 22 queries (or a selection) under the OS default and the
// paper's tuned configuration, reporting per-query latency reductions
// (Figure 8), or a single engine's latencies per allocator (Figure 9
// style).
//
// Usage:
//
//	tpchbench -sf 0.005                       # Figure 8 on all engines
//	tpchbench -sf 0.005 -engine MonetDB -q 5,18 -allocators
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/tpch"
	"repro/internal/vmm"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	engine := flag.String("engine", "", "restrict to one engine profile")
	queriesFlag := flag.String("q", "", "comma-separated query numbers (default: all 22)")
	allocators := flag.Bool("allocators", false, "sweep allocators instead of default-vs-tuned (needs -engine)")
	warm := flag.Int("warm", 2, "warm runs per query")
	seed := flag.Uint64("seed", 41, "dataset seed")
	flag.Parse()

	queries, err := parseQueries(*queriesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(2)
	}
	db := tpch.Generate(*sf, *seed)
	fmt.Fprintf(os.Stderr, "generated TPC-H SF %v: %d lineitems, %d orders\n",
		*sf, len(db.Lineitems), len(db.Orders))

	if *allocators {
		if *engine == "" {
			fmt.Fprintln(os.Stderr, "tpchbench: -allocators requires -engine")
			os.Exit(2)
		}
		sweepAllocators(db, *engine, queries, *warm)
		return
	}

	profiles := tpch.Profiles()
	if *engine != "" {
		profiles = []tpch.Profile{tpch.ProfileByName(*engine)}
	}
	tab := &report.Table{Title: "TPC-H latency reduction, tuned vs default (Machine A)"}
	tab.Header = []string{"query"}
	for _, p := range profiles {
		tab.Header = append(tab.Header, p.Name)
	}
	spec := machine.SpecA()
	results := map[string]map[int]float64{}
	for _, p := range profiles {
		defCfg := machine.DefaultConfig(spec.HardwareThreads())
		defCfg.Seed = 9
		tuned := machine.RunConfig{
			Threads:   spec.HardwareThreads(),
			Placement: machine.PlaceSparse,
			Policy:    vmm.FirstTouch,
			Allocator: "tbbmalloc",
			Seed:      1,
			THP:       p.Name == "DBMSx",
		}
		defH := tpch.NewHarness(spec, p, defCfg, db, *warm)
		tunedH := tpch.NewHarness(spec, p, tuned, db, *warm)
		results[p.Name] = map[int]float64{}
		for _, q := range queries {
			d, _ := defH.Measure(q)
			u, _ := tunedH.Measure(q)
			results[p.Name][q] = (d - u) / d
		}
	}
	for _, q := range queries {
		cells := []interface{}{"Q" + strconv.Itoa(q)}
		for _, p := range profiles {
			cells = append(cells, report.Pct(results[p.Name][q]))
		}
		tab.AddRow(cells...)
	}
	tab.Render(os.Stdout)
}

func sweepAllocators(db *tpch.DB, engine string, queries []int, warm int) {
	prof := tpch.ProfileByName(engine)
	spec := machine.SpecA()
	tab := &report.Table{Title: engine + " query latency by allocator (billion cycles)"}
	tab.Header = []string{"allocator"}
	for _, q := range queries {
		tab.Header = append(tab.Header, "Q"+strconv.Itoa(q))
	}
	for _, name := range alloc.WorkloadNames() {
		cfg := machine.RunConfig{
			Threads:   spec.HardwareThreads(),
			Placement: machine.PlaceSparse,
			Policy:    vmm.FirstTouch,
			Allocator: name,
			Seed:      1,
		}
		h := tpch.NewHarness(spec, prof, cfg, db, warm)
		cells := []interface{}{name}
		for _, q := range queries {
			wall, _ := h.Measure(q)
			cells = append(cells, report.Billions(wall))
		}
		tab.AddRow(cells...)
	}
	tab.Render(os.Stdout)
}

func parseQueries(s string) ([]int, error) {
	if s == "" {
		qs := make([]int, tpch.NumQueries)
		for i := range qs {
			qs[i] = i + 1
		}
		return qs, nil
	}
	var qs []int
	for _, part := range strings.Split(s, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || q < 1 || q > tpch.NumQueries {
			return nil, fmt.Errorf("bad query number %q", part)
		}
		qs = append(qs, q)
	}
	return qs, nil
}
