// Command tpchbench runs the W5 TPC-H workload on the simulated database
// engines: all 22 queries (or a selection) under the OS default and the
// paper's tuned configuration, reporting per-query latency reductions
// (Figure 8), or a single engine's latencies per allocator (Figure 9
// style).
//
// Independent harness runs (one per engine profile and configuration, or
// one per allocator) are dispatched through the core worker pool; results
// are identical for any -parallel setting because each harness owns its
// machine and engine state.
//
// Usage:
//
//	tpchbench -sf 0.005                       # Figure 8 on all engines
//	tpchbench -sf 0.005 -parallel 4           # same tables, less wall time
//	tpchbench -sf 0.005 -engine MonetDB -q 5,18 -allocators
//	tpchbench -sf 0.005 -chunked              # per-node chunked column storage
//	tpchbench -sf 0.005 -json results.jsonl   # one record per harness run
//	tpchbench -sf 0.005 -trace trace.json     # Chrome trace per harness
//	tpchbench -validate results.jsonl
//
// The output flags are shared with numabench (same names, same formats;
// see internal/cli): -json appends one structured record per harness run
// (schema repro/bench/v2, validate with either command's -validate),
// -trace writes a Chrome trace-event file with one process per harness
// run (records carry a storage label when -chunked is set), -spans writes one request+service span per measured query (schema
// repro/spans/v1, observation-only — walls are bit-identical with it on
// or off), and -cpuprofile/-memprofile capture host pprof profiles.
// Per-query wall cycles land in the record's extra map as q1..q22.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hash/fnv"

	"repro/internal/alloc"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/span"
	"repro/internal/tpch"
	"repro/internal/vmm"
	"repro/internal/xrand"
)

// harnessRecord builds the JSONL record for one completed harness run.
// The harness machine is read after all queries, so counters cover the
// whole run; wall is the sum of the measured query walls.
func harnessRecord(start time.Time, cell string, labels map[string]string,
	h *tpch.Harness, cfg machine.RunConfig, queries []int, walls []float64) experiments.Record {
	m := h.Engine.M
	wall := 0.0
	extra := make(map[string]float64, len(queries))
	for i, q := range queries {
		wall += walls[i]
		extra["q"+strconv.Itoa(q)] = walls[i]
	}
	return experiments.Record{
		Schema:     experiments.SchemaVersion,
		Experiment: "tpchbench",
		Cell:       cell,
		Labels:     labels,
		Machine:    m.Spec.Name,
		Config: experiments.CellConfig{
			Threads:       cfg.Threads,
			Placement:     cfg.Placement.String(),
			Policy:        cfg.Policy.String(),
			PreferredNode: int(cfg.PreferredNode),
			Allocator:     cfg.Allocator,
			AutoNUMA:      cfg.AutoNUMA,
			THP:           cfg.THP,
			Seed:          cfg.Seed,
		},
		Seed:       cfg.Seed,
		WallCycles: wall,
		FreqGHz:    m.Spec.FreqGHz,
		Counters:   m.Counters(),
		Extra:      extra,
		HostNS:     time.Since(start).Nanoseconds(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchbench:", err)
	os.Exit(1)
}

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	engine := flag.String("engine", "", "restrict to one engine profile")
	queriesFlag := flag.String("q", "", "comma-separated query numbers (default: all 22)")
	allocators := flag.Bool("allocators", false, "sweep allocators instead of default-vs-tuned (needs -engine)")
	warm := flag.Int("warm", 2, "warm runs per query")
	chunked := flag.Bool("chunked", false, "per-node chunked column storage (internal/numaop) instead of single-region")
	seed := flag.Uint64("seed", 41, "dataset seed")
	parallel := flag.Int("parallel", 1, "harness worker count (0 = GOMAXPROCS); output is identical to -parallel 1")
	progress := flag.Bool("progress", false, "report harness progress on stderr")
	var shared cli.Flags
	shared.Register(flag.CommandLine)
	flag.Parse()

	if done, err := shared.HandleValidate(os.Stdout); done {
		if err != nil {
			fatal(err)
		}
		return
	}

	queries, err := parseQueries(*queriesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(2)
	}
	stopProfiles, err := shared.StartHostProfiles()
	if err != nil {
		fatal(err)
	}
	runner := core.Runner{Workers: *parallel}
	if *progress {
		runner.Progress = core.ProgressWriter(os.Stderr, "tpchbench", 0)
	}
	db := tpch.Generate(*sf, *seed)
	fmt.Fprintf(os.Stderr, "generated TPC-H SF %v: %d lineitems, %d orders\n",
		*sf, len(db.Lineitems), len(db.Orders))

	if *allocators {
		if *engine == "" {
			fmt.Fprintln(os.Stderr, "tpchbench: -allocators requires -engine")
			os.Exit(2)
		}
		if err := sweepAllocators(runner, db, *engine, queries, *warm, storage(*chunked), shared); err != nil {
			fatal(err)
		}
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		return
	}

	profiles := tpch.Profiles()
	if *engine != "" {
		profiles = []tpch.Profile{tpch.ProfileByName(*engine)}
	}
	tab := &report.Table{Title: "TPC-H latency reduction, tuned vs default (Machine A)"}
	tab.Header = []string{"query"}
	for _, p := range profiles {
		tab.Header = append(tab.Header, p.Name)
	}
	spec := machine.SpecA()
	// One cell per (profile, config): a harness caches engine state across
	// queries, so the harness run is the unit of parallelism.
	const configs = 2 // 0 = OS default, 1 = tuned
	cells, err := core.Collect(runner, len(profiles)*configs, func(i int) (harnessCell, error) {
		start := time.Now()
		p := profiles[i/configs]
		var cfg machine.RunConfig
		which := "tuned"
		if i%configs == 0 {
			cfg = machine.DefaultConfig(spec.HardwareThreads())
			cfg.Seed = 9
			which = "default"
		} else {
			cfg = machine.RunConfig{
				Threads:   spec.HardwareThreads(),
				Placement: machine.PlaceSparse,
				Policy:    vmm.FirstTouch,
				Allocator: "tbbmalloc",
				Seed:      1,
				THP:       p.Name == "DBMSx",
			}
		}
		return runHarness(start, spec, p, cfg, db, *warm, queries, storage(*chunked),
			p.Name+"/"+which, map[string]string{"engine": p.Name, "config": which},
			shared.Trace != "", shared.Spans != "")
	})
	if err != nil {
		fatal(err)
	}
	for qi, q := range queries {
		row := []any{"Q" + strconv.Itoa(q)}
		for pi := range profiles {
			d := cells[pi*configs].walls[qi]
			u := cells[pi*configs+1].walls[qi]
			row = append(row, report.Pct((d-u)/d))
		}
		tab.AddRow(row...)
	}
	tab.Render(os.Stdout)
	if err := writeOutputs(shared, cells); err != nil {
		fatal(err)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

// harnessCell is one completed harness run: per-query walls, its JSONL
// record, (when -trace is on) its Chrome trace process, and (when -spans
// is on) its per-query request spans.
type harnessCell struct {
	walls  []float64
	rec    experiments.Record
	tp     report.TraceProcess
	traced bool
	spans  []span.Span
}

// cellLabel hashes a cell name to a span-id derivation label, so every
// harness cell draws its ids from a distinct stream of the same seed.
func cellLabel(cell string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(cell))
	return h.Sum64()
}

// storage maps the -chunked flag to engine storage options.
func storage(chunked bool) tpch.StorageOptions {
	return tpch.StorageOptions{Chunked: chunked}
}

// runHarness executes one harness configuration over the query list,
// optionally tracing its machine and assembling per-query spans.
func runHarness(start time.Time, spec machine.Spec, p tpch.Profile, cfg machine.RunConfig,
	db *tpch.DB, warm int, queries []int, opts tpch.StorageOptions, cell string, labels map[string]string,
	tracing, spansOn bool) (harnessCell, error) {
	h := tpch.NewHarnessStorage(spec, p, cfg, db, warm, opts)
	if opts.Chunked {
		labels["storage"] = "chunked"
	}
	if tracing {
		cli.AttachTrace(h.Engine.M)
	}
	var tel *machine.Telemetry
	var base *xrand.Rand
	if spansOn {
		// Spans imply profiling (bucket windows); observation-only, so the
		// measured walls are bit-identical with spans on or off.
		tel = h.Engine.M.Observe(machine.ObserveOptions{Spans: true})
		base = xrand.New(cfg.Seed).Derive(cellLabel(cell))
	}
	var c harnessCell
	out := make([]float64, 0, len(queries))
	for qi, q := range queries {
		var c0 float64
		var b0 []float64
		if spansOn {
			c0 = tel.Clock()
			b0 = tel.Profile().Totals()
		}
		w, _ := h.Measure(q)
		out = append(out, w)
		if spansOn {
			// One request span per query on the machine's global clock; the
			// window covers the cold run plus the warm runs. The service
			// child carries the window's bucket delta and the last warm
			// run's counters (RunQuery rescopes counters per run) — TPC-H
			// queries run on every hardware thread, so Thread is -1 and the
			// buckets aggregate all threads.
			c1 := tel.Clock()
			name := "q" + strconv.Itoa(q)
			r := base.Derive(uint64(qi))
			reqID := span.ID(r)
			c.spans = append(c.spans, span.Span{
				Cell: cell, ID: reqID, Kind: span.KindRequest, Name: name,
				Seq: qi, Thread: -1, Start: c0, End: c1,
			}, span.Span{
				Cell: cell, ID: span.ID(r), Parent: reqID, Kind: span.KindService,
				Name: name, Seq: qi, Thread: -1, Start: c0, End: c1,
				GStart:   c0,
				GEnd:     c1,
				Buckets:  span.BucketMap(span.BucketDelta(b0, tel.Profile().Totals())),
				Counters: span.CounterMap(tel.Counters()),
			})
		}
	}
	c.walls = out
	c.rec = harnessRecord(start, cell, labels, h, cfg, queries, out)
	if tracing {
		c.tp, c.traced = cli.TraceOf(cell, h.Engine.M)
	}
	return c, nil
}

// writeOutputs appends the cells' records to -json and writes the -trace
// file, in cell index order so output is parallelism-independent.
func writeOutputs(shared cli.Flags, cells []harnessCell) error {
	if shared.JSON != "" {
		recs := make([]experiments.Record, len(cells))
		for i := range cells {
			recs[i] = cells[i].rec
		}
		if err := cli.AppendJSONL(shared.JSON, recs); err != nil {
			return err
		}
	}
	if shared.Trace != "" {
		var procs []report.TraceProcess
		for i := range cells {
			if cells[i].traced {
				procs = append(procs, cells[i].tp)
			}
		}
		if err := cli.WriteChromeTrace(shared.Trace, procs); err != nil {
			return err
		}
	}
	if shared.Spans != "" {
		var spans []span.Span
		for i := range cells {
			spans = append(spans, cells[i].spans...)
		}
		if err := cli.WriteSpans(shared.Spans, spans); err != nil {
			return err
		}
	}
	return nil
}

func sweepAllocators(runner core.Runner, db *tpch.DB, engine string, queries []int, warm int, opts tpch.StorageOptions, shared cli.Flags) error {
	prof := tpch.ProfileByName(engine)
	spec := machine.SpecA()
	tab := &report.Table{Title: engine + " query latency by allocator (billion cycles)"}
	tab.Header = []string{"allocator"}
	for _, q := range queries {
		tab.Header = append(tab.Header, "Q"+strconv.Itoa(q))
	}
	names := alloc.WorkloadNames()
	cells, err := core.Collect(runner, len(names), func(i int) (harnessCell, error) {
		start := time.Now()
		cfg := machine.RunConfig{
			Threads:   spec.HardwareThreads(),
			Placement: machine.PlaceSparse,
			Policy:    vmm.FirstTouch,
			Allocator: names[i],
			Seed:      1,
		}
		return runHarness(start, spec, prof, cfg, db, warm, queries, opts,
			prof.Name+"/"+names[i], map[string]string{"engine": prof.Name, "allocator": names[i]},
			shared.Trace != "", shared.Spans != "")
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		row := []any{name}
		for qi := range queries {
			row = append(row, report.Billions(cells[i].walls[qi]))
		}
		tab.AddRow(row...)
	}
	tab.Render(os.Stdout)
	return writeOutputs(shared, cells)
}

func parseQueries(s string) ([]int, error) {
	if s == "" {
		qs := make([]int, tpch.NumQueries)
		for i := range qs {
			qs[i] = i + 1
		}
		return qs, nil
	}
	var qs []int
	for _, part := range strings.Split(s, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || q < 1 || q > tpch.NumQueries {
			return nil, fmt.Errorf("bad query number %q", part)
		}
		qs = append(qs, q)
	}
	return qs, nil
}
