// Command advisor is the paper's Figure 10 decision flowchart as a CLI: it
// takes the workload's traits as flags and prints a recommended
// configuration with the reasoning for each choice. Optionally it
// validates the advice by running the W1 aggregation kernel under both the
// OS default and the recommendation on a simulated machine.
//
// Usage:
//
//	advisor -bandwidth-bound -superuser -alloc-heavy
//	advisor -alloc-heavy -mem-constrained -validate -machine A
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/query"
)

func main() {
	var tr core.Traits
	flag.BoolVar(&tr.ThreadPlacementManaged, "placement-managed", false,
		"the application already pins its threads")
	flag.BoolVar(&tr.MemoryBandwidthBound, "bandwidth-bound", false,
		"the workload is memory-bandwidth bound")
	flag.BoolVar(&tr.SuperuserAccess, "superuser", false,
		"kernel switches (AutoNUMA, THP) can be changed")
	flag.BoolVar(&tr.MemoryPlacementDefined, "placement-defined", false,
		"the application already sets a memory placement policy")
	flag.BoolVar(&tr.AllocationHeavy, "alloc-heavy", false,
		"the workload allocates and frees intensively")
	flag.BoolVar(&tr.FreeMemoryConstrained, "mem-constrained", false,
		"free memory headroom is tight")
	validate := flag.Bool("validate", false,
		"run W1 under the OS default and the recommendation to verify the speedup")
	mc := flag.String("machine", "A", "machine for -validate: A, B or C")
	flag.Parse()

	rec := core.Advise(tr)
	fmt.Println("Recommended configuration:")
	fmt.Printf("  thread placement:  %s\n", rec.Placement)
	fmt.Printf("  memory placement:  %s\n", rec.Policy)
	fmt.Printf("  AutoNUMA:          %s\n", onOff(!rec.DisableAutoNUMA))
	fmt.Printf("  THP:               %s\n", onOff(!rec.DisableTHP))
	fmt.Printf("  allocator:         %s\n", rec.Allocator)
	fmt.Println("Reasoning:")
	for _, r := range rec.Rationale {
		fmt.Printf("  - %s\n", r)
	}

	if !*validate {
		return
	}
	spec, err := specFor(*mc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(2)
	}
	fmt.Printf("\nValidating on %s (W1 aggregation kernel)...\n", spec.Name)
	run := func(cfg machine.RunConfig) float64 {
		m := machine.New(spec)
		m.Configure(cfg)
		recs := datagen.MovingCluster(300_000, 40_000, 11)
		out := query.Aggregate(m, query.AggregationSpec{Records: recs, Cardinality: 40_000, Holistic: true})
		return out.Result.WallCycles
	}
	threads := spec.HardwareThreads()
	def := run(machine.DefaultConfig(threads))
	adv := run(rec.Apply(threads))
	fmt.Printf("  OS default:   %.3f billion cycles\n", def/1e9)
	fmt.Printf("  recommended:  %.3f billion cycles\n", adv/1e9)
	fmt.Printf("  latency reduction: %.1f%%\n", core.Speedup(def, adv)*100)
}

func onOff(b bool) string {
	if b {
		return "on (default)"
	}
	return "off"
}

func specFor(mc string) (machine.Spec, error) {
	switch mc {
	case "A", "a":
		return machine.SpecA(), nil
	case "B", "b":
		return machine.SpecB(), nil
	case "C", "c":
		return machine.SpecC(), nil
	}
	return machine.Spec{}, fmt.Errorf("unknown machine %q", mc)
}
