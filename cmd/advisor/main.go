// Command advisor is the paper's Figure 10 decision flowchart as a CLI: it
// takes the workload's traits as flags and prints a recommended
// configuration with the reasoning for each choice. Optionally it
// validates the advice by running a workload kernel under both the OS
// default and the recommendation on a simulated machine, through the same
// trial path the numatune campaigns use — advisor and tuner cannot
// disagree on methodology.
//
// Usage:
//
//	advisor -bandwidth-bound -superuser -alloc-heavy
//	advisor -alloc-heavy -mem-constrained -validate -machine A
//	advisor -superuser -alloc-heavy -validate -workload W3 -machine C -scale cal
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/tune"
)

func main() {
	var tr core.Traits
	flag.BoolVar(&tr.ThreadPlacementManaged, "placement-managed", false,
		"the application already pins its threads")
	flag.BoolVar(&tr.MemoryBandwidthBound, "bandwidth-bound", false,
		"the workload is memory-bandwidth bound")
	flag.BoolVar(&tr.SuperuserAccess, "superuser", false,
		"kernel switches (AutoNUMA, THP) can be changed")
	flag.BoolVar(&tr.MemoryPlacementDefined, "placement-defined", false,
		"the application already sets a memory placement policy")
	flag.BoolVar(&tr.AllocationHeavy, "alloc-heavy", false,
		"the workload allocates and frees intensively")
	flag.BoolVar(&tr.FreeMemoryConstrained, "mem-constrained", false,
		"free memory headroom is tight")
	validate := flag.Bool("validate", false,
		"run the workload under the OS default and the recommendation to verify the speedup")
	mc := flag.String("machine", "A", "machine for -validate: A, B or C")
	workload := flag.String("workload", "W1", "workload for -validate: W1 or W3")
	scale := flag.String("scale", "cal", "dataset scale for -validate: tiny, small, cal or default")
	flag.Parse()

	rec := core.Advise(tr)
	fmt.Println("Recommended configuration:")
	fmt.Printf("  thread placement:  %s\n", rec.Placement)
	fmt.Printf("  memory placement:  %s\n", rec.Policy)
	fmt.Printf("  AutoNUMA:          %s\n", onOff(!rec.DisableAutoNUMA))
	fmt.Printf("  THP:               %s\n", onOff(!rec.DisableTHP))
	fmt.Printf("  allocator:         %s\n", rec.Allocator)
	fmt.Println("Reasoning:")
	for _, r := range rec.Rationale {
		fmt.Printf("  - %s\n", r)
	}

	if !*validate {
		return
	}
	scales := map[string]experiments.Scale{
		"tiny":    experiments.Tiny,
		"small":   experiments.Small,
		"cal":     experiments.Cal,
		"default": experiments.Default,
	}
	s, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "advisor: unknown scale %q (tiny, small, cal, default)\n", *scale)
		os.Exit(2)
	}
	wl, err := tune.WorkloadByID(strings.ToUpper(*workload))
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(2)
	}
	m, err := tune.MachineFor(strings.ToUpper(*mc))
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(2)
	}

	fmt.Printf("\nValidating on %s (%s: %s)...\n", m.Spec.Name, wl.ID, wl.Name)
	run := func(p tune.Point) float64 {
		out, err := tune.RunTrial(tune.TrialKey{
			Workload: wl.ID,
			Machine:  strings.ToUpper(*mc),
			Point:    p,
			Seed:     1,
			Size:     experiments.TuneSize(s),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "advisor:", err)
			os.Exit(1)
		}
		return out.Cycles
	}
	def := run(tune.DefaultPoint())
	adv := run(tune.FromRecommendation(rec))
	fmt.Printf("  OS default:   %.3f billion cycles\n", def/1e9)
	fmt.Printf("  recommended:  %.3f billion cycles\n", adv/1e9)
	fmt.Printf("  latency reduction: %.1f%%\n", core.Speedup(def, adv)*100)
}

func onOff(b bool) string {
	if b {
		return "on (default)"
	}
	return "off"
}
