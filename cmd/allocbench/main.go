// Command allocbench runs the Section III-A8 memory allocator
// microbenchmark (Figure 2): multi-threaded allocate/write and
// read/deallocate churn with size classes drawn inversely proportional to
// their size, sweeping thread counts and reporting execution time and
// memory consumption overhead per allocator.
//
// Usage:
//
//	allocbench -ops 60000
//	allocbench -ops 20000 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	ops := flag.Int("ops", 20000, "operations per thread")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()
	if *ops <= 0 {
		fmt.Fprintln(os.Stderr, "allocbench: -ops must be positive")
		os.Exit(2)
	}
	s := experiments.Small
	s.MicrobenchOps = *ops
	r, err := experiments.Fig2(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocbench:", err)
		os.Exit(1)
	}
	if *csv {
		r.RenderTime().RenderCSV(os.Stdout)
		fmt.Println()
		r.RenderOverhead().RenderCSV(os.Stdout)
	} else {
		r.RenderTime().Render(os.Stdout)
		fmt.Println()
		r.RenderOverhead().Render(os.Stdout)
	}
}
