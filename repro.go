// Package repro is a faithful, simulator-backed reproduction of
// "The Art of Efficient In-memory Query Processing on NUMA Systems: a
// Systematic Approach" (Memarzia, Ray, Bhavsar — ICDE 2020).
//
// It provides:
//
//   - a deterministic NUMA hardware simulator (topologies, caches, TLBs,
//     placement policies, AutoNUMA and THP kernel daemons, OS scheduler
//     behaviour) with presets for the paper's three machines;
//   - behavioural models of seven dynamic memory allocators;
//   - the paper's five workloads: holistic and distributive aggregation,
//     hash join, index nested-loop join over four in-memory indexes, and
//     TPC-H on five database-engine profiles;
//   - the systematic-tuning methodology itself: the Table IV parameter
//     space, experiment drivers for every figure and table, and the
//     Figure 10 decision flowchart as an executable advisor.
//
// This package is a facade: it re-exports the library's primary types and
// constructors so applications need a single import. The implementation
// lives under internal/ (see DESIGN.md for the system inventory).
//
// Quick start:
//
//	m := repro.NewMachineA()
//	m.Configure(repro.TunedConfig(16))
//	out := repro.Aggregate(m, repro.AggregationSpec{
//	    Records:     repro.MovingCluster(100000, 10000, 1),
//	    Cardinality: 10000,
//	    Holistic:    true,
//	})
//	fmt.Println(m.Seconds(out.Result.WallCycles))
package repro

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/span"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/vmm"
)

// Machine simulation types.
type (
	// Machine is a simulated NUMA system.
	Machine = machine.Machine
	// Spec is a machine's hardware description (Table II).
	Spec = machine.Spec
	// Thread is a simulated worker thread handed to workload bodies.
	Thread = machine.Thread
	// RunConfig is one point of the paper's parameter space (Table IV).
	RunConfig = machine.RunConfig
	// Result is a completed run: wall cycles plus the perf-counter profile.
	Result = machine.Result
	// Counters is the simulated perf-counter profile (Table III).
	Counters = machine.Counters
	// Placement is the thread placement strategy (None/Sparse/Dense).
	Placement = machine.Placement
	// Policy is the memory placement policy (numactl equivalents).
	Policy = vmm.Policy
)

// Thread placement strategies.
const (
	PlaceNone   = machine.PlaceNone
	PlaceSparse = machine.PlaceSparse
	PlaceDense  = machine.PlaceDense
)

// Memory placement policies.
const (
	FirstTouch = vmm.FirstTouch
	Interleave = vmm.Interleave
	Localalloc = vmm.Localalloc
	Preferred  = vmm.Preferred
)

// Machine constructors for the paper's three evaluation systems.
var (
	NewMachineA = machine.NewA
	NewMachineB = machine.NewB
	NewMachineC = machine.NewC
	NewMachine  = machine.New
	SpecA       = machine.SpecA
	SpecB       = machine.SpecB
	SpecC       = machine.SpecC
)

// DefaultConfig returns the out-of-the-box OS configuration (the paper's
// baseline); TunedConfig the paper's recommended configuration.
var (
	DefaultConfig = machine.DefaultConfig
	TunedConfig   = machine.TunedConfig
)

// Workload types and runners.
type (
	// Record is a key/value tuple of the synthetic datasets.
	Record = datagen.Record
	// Distribution names an aggregation dataset distribution.
	Distribution = datagen.Distribution
	// AggregationSpec describes a W1/W2 aggregation run.
	AggregationSpec = query.AggregationSpec
	// JoinSpec describes a W3 hash join run.
	JoinSpec = query.JoinSpec
	// JoinTables is the 1:16 decision-support join dataset.
	JoinTables = datagen.JoinTables
	// Outcome reports a workload execution.
	Outcome = query.Outcome
	// JoinOutcome adds the build/probe phase split.
	JoinOutcome = query.JoinOutcome
	// IndexKind names one of the four W4 indexes.
	IndexKind = index.Kind
)

// Dataset generators (Section IV-B).
var (
	MovingCluster = datagen.MovingCluster
	Sequential    = datagen.Sequential
	Zipfian       = datagen.Zipfian
	JoinData      = datagen.Join
)

// Workload executors (W1-W4).
var (
	Aggregate = query.Aggregate
	HashJoin  = query.HashJoin
	IndexJoin = query.IndexJoin
)

// The four in-memory indexes of W4.
const (
	ART      = index.ARTKind
	Masstree = index.MasstreeKind
	BTree    = index.BTreeKind
	SkipList = index.SkipListKind
)

// Tuning methodology (the paper's contribution).
type (
	// Traits describes a workload to the decision flowchart.
	Traits = core.Traits
	// Recommendation is the flowchart's output configuration.
	Recommendation = core.Recommendation
)

// Advise walks the Figure 10 decision flowchart; Space enumerates the
// Table IV parameter space; Speedup computes relative latency reduction.
var (
	Advise  = core.Advise
	Space   = core.Space
	Speedup = core.Speedup
)

// TPC-H (W5).
type (
	// TPCHDB is a generated TPC-H database.
	TPCHDB = tpch.DB
	// EngineProfile models one of the five database systems.
	EngineProfile = tpch.Profile
	// TPCHHarness measures warm query latencies the way the paper does.
	TPCHHarness = tpch.Harness
	// QueryResult is one TPC-H query execution.
	QueryResult = tpch.QueryResult
)

// TPC-H constructors.
var (
	GenerateTPCH   = tpch.Generate
	EngineProfiles = tpch.Profiles
	EngineByName   = tpch.ProfileByName
	NewTPCHHarness = tpch.NewHarness
)

// Event tracing. Attach a TraceRecorder to a Machine with SetTrace and
// every simulator event — thread migrations, page faults and migrations,
// hugepage collapses and splits, AutoNUMA scan passes, allocator
// lock-contention stalls, coherence transfers — is recorded with its
// simulated cycle timestamp. A nil sink costs nothing. See
// examples/trace for an end-to-end walkthrough.
type (
	// TraceEvent is one cycle-stamped simulator event.
	TraceEvent = trace.Event
	// TraceKind enumerates the event types.
	TraceKind = trace.Kind
	// TraceSink receives events as they happen.
	TraceSink = trace.Sink
	// TraceRecorder is the standard in-memory sink.
	TraceRecorder = trace.Recorder
	// MachineSnapshot is one periodic counter sample (see
	// Machine.StartSnapshots).
	MachineSnapshot = machine.Snapshot
	// TraceProcess groups one machine's events for Chrome trace export.
	TraceProcess = report.TraceProcess
)

// NewTraceRecorder builds an in-memory event sink; TraceKinds lists every
// event type.
var (
	NewTraceRecorder = trace.NewRecorder
	TraceKinds       = trace.Kinds
)

// Unified observability and actuation. Machine.Observe(ObserveOptions)
// configures tracing, cycle attribution, periodic counter snapshots and
// counter rescoping in one call and returns a read-only Telemetry view —
// it replaces the SetTrace/SetProfiling/StartSnapshots/ResetCounters
// setter dance (those setters remain as deprecated wrappers). Telemetry
// and Actuator are the two seams a placement daemon programs against; see
// Machine.SetDaemon.
type (
	// ObserveOptions selects what a Machine records.
	ObserveOptions = machine.ObserveOptions
	// Telemetry is a read-only view over a machine's live instrumentation.
	Telemetry = machine.Telemetry
	// Actuator is the placement-control surface handed to daemons.
	Actuator = machine.Actuator
	// HotPage is one sampled page from Telemetry.HotPages.
	HotPage = machine.HotPage
)

// The adaptive placement orchestrator (see internal/orchestrator): an
// online feedback daemon that migrates threads and pages and reweights
// the interleave rotor from live telemetry, gated by hysteresis and a
// migration-cost budget.
type (
	// Orchestrator is the adaptive placement daemon.
	Orchestrator = orchestrator.Orchestrator
	// OrchestratorConfig tunes its feedback loop.
	OrchestratorConfig = orchestrator.Config
	// OrchestratorStats counts its actions.
	OrchestratorStats = orchestrator.Stats
)

// NewOrchestrator builds an orchestrator; attach it to a machine with
// Attach. DefaultOrchestratorConfig is the adapt experiment's tuning.
var (
	NewOrchestrator           = orchestrator.New
	DefaultOrchestratorConfig = orchestrator.DefaultConfig
)

// ChromeTrace writes events as a Chrome trace-event JSON file (loadable
// in Perfetto or chrome://tracing); TraceSummary and TraceCostHistogram
// aggregate an event stream into report tables.
var (
	ChromeTrace        = report.ChromeTrace
	TraceSummary       = report.TraceSummary
	TraceCostHistogram = report.TraceCostHistogram
)

// Experiment drivers and the structured results pipeline.
type (
	// Experiment describes one registered experiment: id, title, the
	// paper artifact it reproduces, and its driver (call Run).
	Experiment = experiments.Descriptor
	// ExperimentResult is a driver's unified output: rendered tables plus
	// one BenchRecord per grid cell.
	ExperimentResult = experiments.Result
	// BenchRecord is one grid cell's structured result, serializable as
	// JSONL under schema repro/bench/v2 (the strict reader also accepts
	// v1 files written before cycle attribution existed).
	BenchRecord = experiments.Record
	// Scale sizes an experiment's datasets.
	Scale = experiments.Scale
	// Table is a rendered result table (text, CSV or JSON).
	Table = report.Table
)

// Experiment registry access and the JSONL results sink.
var (
	// Experiments lists every registered experiment sorted by id.
	Experiments = experiments.Descriptors
	// ExperimentByID resolves an experiment id ("fig5a", ...).
	ExperimentByID = experiments.Lookup
	// WriteJSONL and ReadJSONL serialize bench records; ReadJSONL
	// validates the schema strictly.
	WriteJSONL = experiments.WriteJSONL
	ReadJSONL  = experiments.ReadJSONL
)

// Experiment scales, smallest to largest.
var (
	ScaleTiny    = experiments.Tiny
	ScaleSmall   = experiments.Small
	ScaleCal     = experiments.Cal
	ScaleDefault = experiments.Default
)

// Cycle attribution. Turn it on with Machine.SetProfiling(true) and every
// charged cycle is tagged with a component bucket — compute, cache hits,
// DRAM by hop distance, page-table walks, fault service, kernel daemons,
// allocator work and lock stalls, thread and page migration, TLB
// shootdowns, timesharing — accumulated per thread and per NUMA node
// alongside an N×N node access matrix. Attribution is observation-only:
// the simulated timing is bit-identical with it on or off, and a nil
// profiler costs one pointer check per charge. See examples/profile.
type (
	// CycleProfile is a machine's accumulated attribution: per-thread and
	// per-node bucket breakdowns plus the node access matrix.
	CycleProfile = machine.Profile
	// CycleBucket names one attribution component.
	CycleBucket = machine.Bucket
	// ThreadBreakdown is one thread's per-bucket cycles.
	ThreadBreakdown = machine.ThreadBreakdown
	// NodeBreakdown is one NUMA node's per-bucket cycles.
	NodeBreakdown = machine.NodeBreakdown
	// BreakdownColumn pairs a name with a profile for BreakdownTable.
	BreakdownColumn = report.BreakdownColumn
	// FoldedProfile pairs a name with a profile for FoldedStacks.
	FoldedProfile = report.FoldedProfile
)

// CycleBuckets lists every attribution bucket in rendering order.
var CycleBuckets = machine.Buckets

// Breakdown rendering and export: BreakdownTable renders a
// percentage-stacked component comparison, NodeMatrixTable a numastat-style
// access matrix, and FoldedStacks writes profiles in folded-stack format
// (speedscope- and flamegraph-loadable). SetCellProfiling attaches the
// profiler to every experiment grid cell, filling each BenchRecord's
// breakdown and profile fields.
var (
	BreakdownTable   = report.BreakdownTable
	NodeMatrixTable  = report.NodeMatrixTable
	FoldedStacks     = report.FoldedStacks
	SetCellProfiling = experiments.SetCellProfiling
)

// Request-level spans. Machines observed with ObserveOptions{Spans: true}
// mark themselves for harness-side span assembly: the serving harness and
// the TPC-H CLI build a deterministic hierarchy (session → request →
// queue-wait/service/operator phase) from telemetry windows, each span
// carrying its cycle-bucket delta and counter window. Collection is
// observation-only — simulated results are bit-identical with spans on or
// off — and the JSONL encoding (schema repro/spans/v1) round-trips through
// a strict reader. SpanBlame joins a tail cohort of spans against the
// migration-family cycles inside their service windows, splitting each
// mechanism's cycles across the initiators that drove it.
type (
	// Span is one node of the request hierarchy.
	Span = span.Span
	// SpanBlameRow is one (mechanism, initiator) attribution row.
	SpanBlameRow = span.BlameRow
)

// The span JSONL schema and the hierarchy levels (Span.Kind values).
const (
	SpanSchema = span.Schema

	SpanSession   = span.KindSession
	SpanRequest   = span.KindRequest
	SpanQueueWait = span.KindQueueWait
	SpanService   = span.KindService
	SpanPhase     = span.KindPhase
)

// Span serialization and tail attribution. SetCellSpans attaches span
// collection to every subsequent experiment grid cell that serves
// requests, filling each ExperimentResult's Spans field.
var (
	WriteSpansJSONL = span.WriteJSONL
	ReadSpansJSONL  = span.ReadJSONL
	SpanBlame       = span.Blame
	SetCellSpans    = experiments.SetCellSpans
)

// Event initiators. Every TraceEvent carries the mechanism that caused
// it — a demand access, the OS load balancer, the AutoNUMA or khugepaged
// daemon, the adaptive orchestrator, or allocator internals — so event
// streams can be cut by cause as well as by kind.
type (
	// TraceInitiator identifies what caused an event.
	TraceInitiator = trace.Initiator
)

// The initiator values, and the orchestrator's own journal event kinds.
const (
	InitDemand       = trace.InitDemand
	InitOS           = trace.InitOS
	InitAutoNUMA     = trace.InitAutoNUMA
	InitKhugepaged   = trace.InitKhugepaged
	InitOrchestrator = trace.InitOrchestrator
	InitAlloc        = trace.InitAlloc

	OrchDecision = trace.OrchDecision
	OrchReweight = trace.OrchReweight
)

// TraceInitiators lists every initiator in emission-stable order.
var TraceInitiators = trace.Initiators

// The orchestrator's decision journal: one structured record per tick
// (telemetry digest, per-thread rule verdicts, actions with modeled cost,
// budget bank balance), read back with Orchestrator.Journal and rendered
// by DecisionsTable.
type (
	// OrchestratorDecision is one tick's journal record.
	OrchestratorDecision = orchestrator.Decision
	// OrchestratorAction is one planned action with its modeled cost.
	OrchestratorAction = orchestrator.Action
	// OrchestratorThreadEval is one thread's rule evaluation in a tick.
	OrchestratorThreadEval = orchestrator.ThreadEval
	// DecisionsCell pairs a cell label with a journal for DecisionsTable.
	DecisionsCell = report.DecisionsCell
	// BlameCell pairs a cell label with blame rows for BlameTable.
	BlameCell = report.BlameCell
)

// DecisionsTable renders decision journals as a report table; BlameTable
// renders span blame attributions.
var (
	DecisionsTable = report.DecisionsTable
	BlameTable     = report.BlameTable
)

// The orchestrator-under-serving experiment: serving machines A/B/C under
// bursty arrivals, static versus adaptive placement, reporting the p999
// delta attributable to online migration plus the span-based blame join
// and the decision journal.
type (
	// ServeAdaptResult is the experiment's output grid.
	ServeAdaptResult = experiments.ServeAdaptResult
	// ServeAdaptCell is one (machine, static|adaptive) cell.
	ServeAdaptCell = experiments.ServeAdaptCell
)

// ServeAdapt runs the orchestrator-under-serving experiment.
var ServeAdapt = experiments.ServeAdapt
