package core

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes independent grid cells on a bounded worker pool. Every
// cell builds its own fully isolated state (a fresh machine, fresh derived
// RNG streams), so cells may run in any order on any worker; results are
// always collected by cell index, which keeps output byte-identical to a
// serial run. The zero value runs on GOMAXPROCS workers.
type Runner struct {
	// Workers bounds the number of concurrently executing cells. Zero or
	// negative means runtime.GOMAXPROCS(0); one is a serial run.
	Workers int
	// Progress, when non-nil, is called after each cell completes with the
	// number of finished cells, the total, and the elapsed wall time since
	// the grid started. Calls are serialized by the runner.
	Progress ProgressFunc
}

// ProgressFunc observes grid progress; see Runner.Progress.
type ProgressFunc func(done, total int, elapsed time.Duration)

// Serial is a single-worker Runner: cells run one at a time in index order.
var Serial = Runner{Workers: 1}

// workers resolves the effective worker count for n cells.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CellError reports the failure of one grid cell: the cell's index and
// label, the underlying error, and — when the cell panicked — the captured
// stack trace. Panics inside cells are recovered and converted to
// CellErrors so one malformed cell fails the grid cleanly instead of
// crashing the whole process mid-sweep.
type CellError struct {
	Index int
	Label string
	Err   error
	Stack []byte // non-nil when the cell panicked
}

// Error implements error.
func (e *CellError) Error() string {
	name := e.Label
	if name == "" {
		name = fmt.Sprintf("cell %d", e.Index)
	} else {
		name = fmt.Sprintf("cell %d (%s)", e.Index, e.Label)
	}
	if e.Stack != nil {
		return fmt.Sprintf("core: %s panicked: %v", name, e.Err)
	}
	return fmt.Sprintf("core: %s: %v", name, e.Err)
}

// Unwrap exposes the underlying error.
func (e *CellError) Unwrap() error { return e.Err }

// Do runs fn(i) for every i in [0, n) on the runner's worker pool. Panics
// in fn are recovered into CellErrors. The returned error is nil when
// every cell succeeded, otherwise the cell errors joined in index order
// (deterministic regardless of completion order).
func (r Runner) Do(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := r.workers(n)
	start := time.Now()

	var (
		next int64 = -1
		mu   sync.Mutex
		errs []*CellError
		done int
		wg   sync.WaitGroup
	)
	finish := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			var ce *CellError
			if !errors.As(err, &ce) {
				ce = &CellError{Index: -1, Err: err}
			}
			errs = append(errs, ce)
		}
		done++
		if r.Progress != nil {
			r.Progress(done, n, time.Since(start))
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				finish(runCell(i, fn))
			}
		}()
	}
	wg.Wait()

	if len(errs) == 0 {
		return nil
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Index < errs[j].Index })
	joined := make([]error, len(errs))
	for i, e := range errs {
		joined[i] = e
	}
	return errors.Join(joined...)
}

// runCell executes one cell, converting a panic into a *CellError.
func runCell(i int, fn func(i int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &CellError{
				Index: i,
				Err:   fmt.Errorf("panic: %v", p),
				Stack: debug.Stack(),
			}
		}
	}()
	if e := fn(i); e != nil {
		var ce *CellError
		if errors.As(e, &ce) {
			return e
		}
		return &CellError{Index: i, Err: e}
	}
	return nil
}

// Collect runs fn for every cell index and gathers the results in index
// order, independent of which worker finished first. On any cell failure
// it returns nil results and the joined cell errors.
func Collect[T any](r Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := r.Do(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
