package core_test

// The flowchart's recommendations must stay inside the tuner's
// configuration space: every knob value core.Advise can emit has to be a
// value the campaigns enumerate, or the flowchart-regret comparison could
// recommend something the tuner never measures. The sweep lives in an
// external test package because internal/tune imports internal/core.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tune"
)

func TestAdviseCoversTraitSpace(t *testing.T) {
	space := tune.DefaultSpace()
	for bits := 0; bits < 64; bits++ {
		tr := core.Traits{
			ThreadPlacementManaged: bits&1 != 0,
			MemoryBandwidthBound:   bits&2 != 0,
			SuperuserAccess:        bits&4 != 0,
			MemoryPlacementDefined: bits&8 != 0,
			AllocationHeavy:        bits&16 != 0,
			FreeMemoryConstrained:  bits&32 != 0,
		}
		rec := core.Advise(tr)
		p := tune.FromRecommendation(rec)
		if !space.Contains(p) {
			t.Errorf("traits %+v: recommendation %s is outside the tuner's space", tr, p.Key())
		}
		if len(rec.Rationale) == 0 {
			t.Errorf("traits %+v: recommendation has no rationale", tr)
		}
		for i, r := range rec.Rationale {
			if r == "" {
				t.Errorf("traits %+v: rationale %d is empty", tr, i)
			}
		}
		if rec.Allocator == "" {
			t.Errorf("traits %+v: no allocator recommended", tr)
		}
	}
}

func TestWorkloadTraitsKnown(t *testing.T) {
	for _, id := range tune.WorkloadIDs() {
		tr, err := core.WorkloadTraits(id)
		if err != nil {
			t.Fatalf("workload %s: %v", id, err)
		}
		if !tune.DefaultSpace().Contains(tune.FromRecommendation(core.Advise(tr))) {
			t.Errorf("workload %s: advised configuration outside the tuner's space", id)
		}
	}
	if _, err := core.WorkloadTraits("W9"); err == nil {
		t.Error("unknown workload accepted")
	}
}
