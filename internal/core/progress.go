package core

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressWriter returns a ProgressFunc that reports grid progress to w as
// a single self-overwriting line: cells done/total, throughput, and an ETA
// extrapolated from the mean cell time so far. Updates are throttled to
// one every interval (100ms when interval <= 0) except the final cell,
// which always prints and terminates the line. Safe for the runner's
// serialized calls; the returned func keeps its own state, so build a
// fresh one per grid.
func ProgressWriter(w io.Writer, label string, interval time.Duration) ProgressFunc {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	var (
		mu   sync.Mutex
		last time.Time
	)
	return func(done, total int, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		final := done >= total
		if !final && now.Sub(last) < interval {
			return
		}
		last = now
		eta := time.Duration(0)
		if done > 0 {
			eta = time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		}
		fmt.Fprintf(w, "\r[%s] %d/%d cells, %.1fs elapsed, ETA %.1fs",
			label, done, total, elapsed.Seconds(), eta.Seconds())
		if final {
			fmt.Fprintln(w)
		}
	}
}
