package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
)

func TestCollectOrderedRegardlessOfWorkers(t *testing.T) {
	square := func(i int) (int, error) { return i * i, nil }
	want, err := Collect(Serial, 100, square)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16, 1000} {
		got, err := Collect(Runner{Workers: workers}, 100, square)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	var cur, peak int64
	err := Runner{Workers: 3}.Do(64, func(i int) error {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > 3 {
		t.Errorf("observed %d concurrent cells, want <= 3", got)
	}
}

func TestDoRecoversPanics(t *testing.T) {
	err := Runner{Workers: 4}.Do(10, func(i int) error {
		if i == 7 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking cell")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not unwrap to *CellError", err)
	}
	if ce.Index != 7 || ce.Stack == nil {
		t.Errorf("CellError = index %d, stack %v bytes; want index 7 with a stack", ce.Index, len(ce.Stack))
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error %q should carry the panic value", err)
	}
}

func TestDoJoinsErrorsInIndexOrder(t *testing.T) {
	fail := map[int]bool{2: true, 5: true, 8: true}
	run := func(workers int) string {
		err := Runner{Workers: workers}.Do(10, func(i int) error {
			if fail[i] {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected errors")
		}
		return err.Error()
	}
	serial := run(1)
	for i := 0; i < 5; i++ {
		if got := run(4); got != serial {
			t.Fatalf("error aggregation not deterministic:\nserial: %s\nparallel: %s", serial, got)
		}
	}
}

func TestDoProgressReachesTotal(t *testing.T) {
	var calls, lastDone int64
	err := Runner{Workers: 4, Progress: func(done, total int, elapsed time.Duration) {
		atomic.AddInt64(&calls, 1)
		atomic.StoreInt64(&lastDone, int64(done))
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
	}}.Do(20, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 || lastDone != 20 {
		t.Errorf("progress called %d times, last done %d; want 20/20", calls, lastDone)
	}
}

func TestProgressWriterFinalLine(t *testing.T) {
	var sb strings.Builder
	p := ProgressWriter(&sb, "fig2", time.Hour) // throttle everything but the final cell
	p(1, 3, time.Second)
	p(2, 3, 2*time.Second)
	p(3, 3, 3*time.Second)
	out := sb.String()
	if !strings.Contains(out, "[fig2] 3/3 cells") {
		t.Errorf("final progress line missing: %q", out)
	}
	if strings.Contains(out, "2/3") {
		t.Errorf("throttled update should have been suppressed: %q", out)
	}
}

func TestRunGridParallelMatchesSerial(t *testing.T) {
	labels := make([]string, 12)
	cfgs := make([]machine.RunConfig, 12)
	for i := range cfgs {
		labels[i] = fmt.Sprintf("cell%d", i)
		cfgs[i] = machine.TunedConfig(i + 1)
	}
	run := func(cfg machine.RunConfig) machine.Result {
		m := machine.NewA()
		m.Configure(cfg)
		res := m.Run(cfg.Threads, func(t *machine.Thread) {
			a := t.Malloc(1 << 16)
			t.Write(a, 1<<16)
			t.Read(a, 1<<16)
			t.Free(a, 1<<16)
		})
		return res
	}
	serial, err := RunGrid(Serial, labels, cfgs, run)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGrid(Runner{Workers: 4}, labels, cfgs, run)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Label != par[i].Label || serial[i].Cycles() != par[i].Cycles() {
			t.Errorf("cell %d: serial (%s, %v) != parallel (%s, %v)",
				i, serial[i].Label, serial[i].Cycles(), par[i].Label, par[i].Cycles())
		}
	}
	if serial[0].Wall <= 0 {
		t.Error("per-cell wall time should be recorded")
	}
}
