package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/vmm"
)

func TestSpaceCoversTableIV(t *testing.T) {
	s := Space()
	if len(s.Workloads) != 5 {
		t.Errorf("workloads = %d, want 5", len(s.Workloads))
	}
	if len(s.Placements) != 3 {
		t.Errorf("placements = %d, want 3 (None/Sparse/Dense)", len(s.Placements))
	}
	if len(s.Policies) != 4 {
		t.Errorf("policies = %d, want 4", len(s.Policies))
	}
	if len(s.Allocators) != 7 {
		t.Errorf("allocators = %d, want 7", len(s.Allocators))
	}
	if len(s.DatabaseSystems) != 5 {
		t.Errorf("database systems = %d, want 5", len(s.DatabaseSystems))
	}
	if len(s.Machines) != 3 {
		t.Errorf("machines = %d, want 3", len(s.Machines))
	}
}

func TestAdviseBandwidthBound(t *testing.T) {
	rec := Advise(Traits{
		MemoryBandwidthBound: true,
		SuperuserAccess:      true,
		AllocationHeavy:      true,
	})
	if rec.Placement != machine.PlaceSparse {
		t.Error("bandwidth-bound workloads get Sparse placement")
	}
	if !rec.DisableAutoNUMA || !rec.DisableTHP {
		t.Error("superuser access means disabling AutoNUMA and THP")
	}
	if rec.Policy != vmm.Interleave {
		t.Error("undefined placement means Interleave")
	}
	if rec.Allocator != "tbbmalloc" {
		t.Errorf("allocation-heavy unconstrained means tbbmalloc, got %s", rec.Allocator)
	}
	if len(rec.Rationale) == 0 {
		t.Error("recommendation must explain itself")
	}
}

func TestAdviseDenseWhenNotBandwidthBound(t *testing.T) {
	rec := Advise(Traits{})
	if rec.Placement != machine.PlaceDense {
		t.Error("cache-bound workloads get Dense placement")
	}
	if rec.DisableAutoNUMA || rec.DisableTHP {
		t.Error("without superuser access the kernel switches stay put")
	}
}

func TestAdviseMemoryConstrained(t *testing.T) {
	rec := Advise(Traits{AllocationHeavy: true, FreeMemoryConstrained: true})
	if rec.Allocator != "jemalloc" {
		t.Errorf("constrained memory means jemalloc, got %s", rec.Allocator)
	}
}

func TestAdviseRespectsExistingPolicy(t *testing.T) {
	rec := Advise(Traits{MemoryPlacementDefined: true})
	if rec.Policy != vmm.FirstTouch {
		t.Error("a defined placement policy must not be overridden")
	}
}

func TestApply(t *testing.T) {
	cfg := Advise(Traits{MemoryBandwidthBound: true, SuperuserAccess: true, AllocationHeavy: true}).Apply(16)
	if cfg.Threads != 16 || cfg.AutoNUMA || cfg.THP {
		t.Errorf("applied config wrong: %+v", cfg)
	}
	if cfg.Allocator != "tbbmalloc" || cfg.Placement != machine.PlaceSparse {
		t.Errorf("applied config wrong: %+v", cfg)
	}
}

func TestAdvisedBeatsDefaultOnW1(t *testing.T) {
	// The flowchart's whole point: its recommendation should beat the OS
	// default on the paper's flagship workload. Use a tiny W1-like kernel.
	runW1 := func(cfg machine.RunConfig) float64 {
		m := machine.NewA()
		m.Configure(cfg)
		var base uint64
		m.Run(1, func(t *machine.Thread) {
			base = t.Malloc(4 << 20)
			for off := uint64(0); off < 4<<20; off += 64 {
				t.Write(base+off, 8)
			}
		})
		res := m.Run(cfg.Threads, func(t *machine.Thread) {
			for i := 0; i < 4000; i++ {
				off := (t.RNG().Uint64n(4 << 20)) &^ 63
				t.Read(base+off, 8)
				a := t.Malloc(64)
				t.Write(a, 64)
				if i%3 == 0 {
					t.Free(a, 64)
				}
			}
		})
		return res.WallCycles
	}
	tuned := Advise(Traits{MemoryBandwidthBound: true, SuperuserAccess: true, AllocationHeavy: true}).Apply(16)
	def := machine.DefaultConfig(16)
	// The default includes OS-scheduler randomness; take the median-ish of
	// three seeds to avoid rewarding a lucky draw.
	var defWalls []float64
	for s := uint64(1); s <= 3; s++ {
		d := def
		d.Seed = s
		defWalls = append(defWalls, runW1(d))
	}
	defWall := defWalls[0]
	for _, w := range defWalls[1:] {
		if w < defWall {
			defWall = w // even the default's best run should lose
		}
	}
	tunedWall := runW1(tuned)
	if tunedWall >= defWall {
		t.Errorf("advised config (%v) should beat the OS default (best of 3: %v)", tunedWall, defWall)
	}
}

func TestGrid(t *testing.T) {
	cfgs := []machine.RunConfig{machine.DefaultConfig(2), machine.TunedConfig(2)}
	ms, err := Grid([]string{"default", "tuned"}, cfgs, func(cfg machine.RunConfig) machine.Result {
		return machine.Result{WallCycles: float64(cfg.Threads)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Label != "default" || ms[1].Cycles() != 2 {
		t.Errorf("grid output wrong: %+v", ms)
	}
}

func TestGridErrorsOnMismatch(t *testing.T) {
	if _, err := Grid([]string{"a"}, nil, nil); err == nil {
		t.Fatal("expected an error for a label/config length mismatch")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 5); s != 0.5 {
		t.Errorf("Speedup(10,5) = %v, want 0.5", s)
	}
	if s := Speedup(0, 5); s != 0 {
		t.Errorf("Speedup(0,5) = %v, want 0", s)
	}
	if s := Speedup(5, 10); s != -1 {
		t.Errorf("Speedup(5,10) = %v, want -1", s)
	}
}
