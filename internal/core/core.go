// Package core implements the paper's primary contribution: the systematic
// tuning methodology. It defines the experiment parameter space of
// Table IV, a grid runner that sweeps workloads across configurations, and
// the Figure 10 decision flowchart as an executable Advisor that turns
// workload traits into a recommended configuration with the paper's
// rationale attached.
package core

import (
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/vmm"
)

// ParameterSpace enumerates Table IV: every tunable axis and its values,
// with the system default first.
type ParameterSpace struct {
	Workloads       []string
	Placements      []machine.Placement
	Policies        []vmm.Policy
	Allocators      []string
	Distributions   []datagen.Distribution
	DatabaseSystems []string
	OSSwitches      []string
	Machines        []string
}

// Space returns the paper's full parameter space.
func Space() ParameterSpace {
	return ParameterSpace{
		Workloads: []string{
			"W1 Holistic Aggregation", "W2 Distributive Aggregation",
			"W3 Hash Join", "W4 Index Nested Loop Join", "W5 TPC-H",
		},
		Placements:      []machine.Placement{machine.PlaceNone, machine.PlaceSparse, machine.PlaceDense},
		Policies:        vmm.Policies(),
		Allocators:      alloc.Names(),
		Distributions:   datagen.Distributions(),
		DatabaseSystems: []string{"MonetDB", "PostgreSQL", "MySQL", "DBMSx", "Quickstep"},
		OSSwitches:      []string{"AutoNUMA on/off", "Transparent Hugepages on/off"},
		Machines:        []string{"Machine A", "Machine B", "Machine C"},
	}
}

// Traits describes a workload and environment to the Advisor, mirroring
// the decision points of Figure 10.
type Traits struct {
	// ThreadPlacementManaged: the application already pins its threads.
	ThreadPlacementManaged bool
	// MemoryBandwidthBound: the workload saturates memory bandwidth
	// before it saturates cores.
	MemoryBandwidthBound bool
	// SuperuserAccess: kernel switches (AutoNUMA, THP) can be changed.
	SuperuserAccess bool
	// MemoryPlacementDefined: the application already sets a placement
	// policy (numactl or mbind).
	MemoryPlacementDefined bool
	// AllocationHeavy: the workload allocates and frees intensively
	// during execution (W1/W3-like rather than W2/W4-like).
	AllocationHeavy bool
	// FreeMemoryConstrained: memory headroom is tight, so allocator
	// footprint matters.
	FreeMemoryConstrained bool
}

// WorkloadTraits returns the canonical Figure 10 classification of the
// simulated workloads: how the paper's flowchart sees W1 (holistic
// aggregation: streaming scans saturate memory bandwidth and the
// hash-table build allocates heavily) and W3 (hash join: random probes
// are latency- rather than bandwidth-bound, but the build side is
// allocation-heavy). Both assume the reproduction's environment —
// superuser access, no pre-existing thread or memory placement.
func WorkloadTraits(workload string) (Traits, error) {
	switch workload {
	case "W1":
		return Traits{MemoryBandwidthBound: true, SuperuserAccess: true, AllocationHeavy: true}, nil
	case "W3":
		return Traits{SuperuserAccess: true, AllocationHeavy: true}, nil
	case "WS":
		// The open-loop serving mix: its cycle budget is dominated by the
		// aggregation windows (bandwidth-bound streaming scans) and the
		// join kernels allocate per request, so the flowchart sees it as
		// W1-like. The serve experiment's regret table tests whether this
		// throughput-derived advice also minimizes p999 latency.
		return Traits{MemoryBandwidthBound: true, SuperuserAccess: true, AllocationHeavy: true}, nil
	}
	return Traits{}, fmt.Errorf("core: no canonical traits for workload %q", workload)
}

// Recommendation is the flowchart's output: a configuration plus the
// reasoning for each choice.
type Recommendation struct {
	Placement       machine.Placement
	Policy          vmm.Policy
	DisableAutoNUMA bool
	DisableTHP      bool
	Allocator       string
	Rationale       []string
}

// Advise walks the Figure 10 flowchart.
func Advise(tr Traits) Recommendation {
	rec := Recommendation{Policy: vmm.FirstTouch, Allocator: "ptmalloc"}
	if !tr.ThreadPlacementManaged {
		if tr.MemoryBandwidthBound {
			rec.Placement = machine.PlaceSparse
			rec.Rationale = append(rec.Rationale,
				"thread placement unmanaged and bandwidth-bound: affinitize with the Sparse strategy to use every memory controller")
		} else {
			rec.Placement = machine.PlaceDense
			rec.Rationale = append(rec.Rationale,
				"thread placement unmanaged and not bandwidth-bound: affinitize with the Dense strategy to share caches and minimize remote distance")
		}
	} else {
		rec.Placement = machine.PlaceSparse
		rec.Rationale = append(rec.Rationale, "thread placement already managed by the application")
	}
	if tr.SuperuserAccess {
		rec.DisableAutoNUMA = true
		rec.DisableTHP = true
		rec.Rationale = append(rec.Rationale,
			"superuser access: disable AutoNUMA and Transparent Hugepages, whose overheads dominate for analytics")
	} else {
		rec.Rationale = append(rec.Rationale,
			"no superuser access: kernel switches stay default; compensate with memory placement")
	}
	if !tr.MemoryPlacementDefined {
		rec.Policy = vmm.Interleave
		rec.Rationale = append(rec.Rationale,
			"no placement policy defined: Interleave spreads pages over all controllers and mostly offsets AutoNUMA/THP costs")
	}
	if tr.AllocationHeavy {
		if tr.FreeMemoryConstrained {
			rec.Allocator = "jemalloc"
			rec.Rationale = append(rec.Rationale,
				"allocation-heavy with constrained memory: preload jemalloc (low footprint, good scalability)")
		} else {
			rec.Allocator = "tbbmalloc"
			rec.Rationale = append(rec.Rationale,
				"allocation-heavy: preload tbbmalloc (best scalability; footprint is an accepted trade)")
		}
	} else {
		rec.Rationale = append(rec.Rationale,
			"not allocation-heavy: the default allocator is acceptable, though evaluating alternatives is still recommended")
	}
	return rec
}

// Apply turns a recommendation into a run configuration for n threads.
func (r Recommendation) Apply(n int) machine.RunConfig {
	return machine.RunConfig{
		Threads:   n,
		Placement: r.Placement,
		Policy:    r.Policy,
		Allocator: r.Allocator,
		AutoNUMA:  !r.DisableAutoNUMA,
		THP:       !r.DisableTHP,
		Seed:      1,
	}
}

// Measurement is one grid cell: a configuration and its measured wall
// cycles plus counters, together with the host wall time the cell took to
// simulate (not a simulated quantity; useful for harness profiling).
type Measurement struct {
	Label  string
	Config machine.RunConfig
	Result machine.Result
	Wall   time.Duration
}

// Cycles returns the measured wall cycles.
func (m Measurement) Cycles() float64 { return m.Result.WallCycles }

// RunGrid sweeps a workload over configurations on the given runner's
// worker pool. The workload closure builds a fresh machine per cell (cold
// runs, as the paper measures W1-W4), so cells are independent and may run
// concurrently; measurements come back ordered by cell index either way.
// A label/config length mismatch or a panicking cell is reported as an
// error rather than crashing the sweep.
func RunGrid(r Runner, labels []string, cfgs []machine.RunConfig, run func(cfg machine.RunConfig) machine.Result) ([]Measurement, error) {
	if len(labels) != len(cfgs) {
		return nil, fmt.Errorf("core: %d labels for %d configs", len(labels), len(cfgs))
	}
	return Collect(r, len(cfgs), func(i int) (Measurement, error) {
		start := time.Now()
		res := run(cfgs[i])
		return Measurement{Label: labels[i], Config: cfgs[i], Result: res, Wall: time.Since(start)}, nil
	})
}

// Grid is RunGrid on a serial runner: cells execute one at a time in index
// order.
func Grid(labels []string, cfgs []machine.RunConfig, run func(cfg machine.RunConfig) machine.Result) ([]Measurement, error) {
	return RunGrid(Serial, labels, cfgs, run)
}

// Speedup returns the relative latency reduction of b versus a, as the
// paper reports it: (a-b)/a, positive when b is faster.
func Speedup(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}
