// Package tune searches the paper's application-agnostic knob space —
// thread placement x memory policy x allocator x AutoNUMA x THP — on the
// simulator. A Space enumerates the candidate configurations (with
// per-axis freezing), a Campaign races them under one of three pluggable
// strategies (exhaustive grid, greedy coordinate descent, successive
// halving budgeted by simulated cycles), and every trial is written as a
// deterministic JSONL record under the repro/tune/v1 schema so a killed
// campaign can resume from its artifact and re-run only missing trials.
//
// Campaigns dispatch their trial waves through core.Runner, so they are
// parallel yet byte-identical to a serial run; and they execute workloads
// through the same RunTrial helper cmd/advisor validates with, so the
// flowchart's advice and the campaign optimum are measured identically.
package tune

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vmm"
)

// Point is one candidate configuration: a single combination of the five
// application-agnostic knobs of Table IV. The workload-specific axes
// (thread count, dataset, machine) live on the campaign, not the point.
type Point struct {
	Placement machine.Placement
	Policy    vmm.Policy
	Allocator string
	AutoNUMA  bool
	THP       bool
}

// Key returns the point's canonical identity string, used for record
// lookup on resume and for every rendered table.
func (p Point) Key() string {
	return p.Placement.String() + "/" + p.Policy.String() + "/" + p.Allocator +
		"/numa=" + onOff(p.AutoNUMA) + "/thp=" + onOff(p.THP)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// Config realizes the point as a run configuration for n threads. The
// Preferred policy targets node 0, as the paper's Preferred runs do.
func (p Point) Config(threads int, seed uint64) machine.RunConfig {
	return machine.RunConfig{
		Threads:   threads,
		Placement: p.Placement,
		Policy:    p.Policy,
		Allocator: p.Allocator,
		AutoNUMA:  p.AutoNUMA,
		THP:       p.THP,
		Seed:      seed,
	}
}

// DefaultPoint is the OS out-of-the-box configuration (the first value of
// every axis of DefaultSpace): unmanaged threads, first-touch placement,
// ptmalloc, AutoNUMA and THP on. Coordinate descent starts here.
func DefaultPoint() Point {
	return Point{
		Placement: machine.PlaceNone,
		Policy:    vmm.FirstTouch,
		Allocator: "ptmalloc",
		AutoNUMA:  true,
		THP:       true,
	}
}

// FromRecommendation converts the Figure 10 flowchart's output into a
// tuner point, so advice can be looked up inside campaign results.
func FromRecommendation(r core.Recommendation) Point {
	return Point{
		Placement: r.Placement,
		Policy:    r.Policy,
		Allocator: r.Allocator,
		AutoNUMA:  !r.DisableAutoNUMA,
		THP:       !r.DisableTHP,
	}
}

// Space is the candidate set of a campaign: the values still open on each
// axis. The zero value is empty; start from DefaultSpace and freeze axes
// down. Axis value order is significant — enumeration order breaks ties
// deterministically, and the first value of every axis is the OS default.
type Space struct {
	Placements []machine.Placement
	Policies   []vmm.Policy
	Allocators []string
	AutoNUMA   []bool
	THP        []bool
}

// DefaultSpace returns the full application-agnostic knob space the paper
// sweeps: 3 placements x 4 policies x 5 workload allocators x AutoNUMA
// on/off x THP on/off = 240 points. The allocator list is the paper's
// workload set (mcmalloc and supermalloc are dropped after the
// microbenchmark, as in Figure 6).
func DefaultSpace() Space {
	return Space{
		Placements: []machine.Placement{machine.PlaceNone, machine.PlaceSparse, machine.PlaceDense},
		Policies:   vmm.Policies(),
		Allocators: alloc.WorkloadNames(),
		AutoNUMA:   []bool{true, false},
		THP:        []bool{true, false},
	}
}

// Size returns the number of points the space enumerates.
func (s Space) Size() int {
	return len(s.Placements) * len(s.Policies) * len(s.Allocators) * len(s.AutoNUMA) * len(s.THP)
}

// Points enumerates every candidate in deterministic order: placement
// outermost, then policy, allocator, AutoNUMA, THP.
func (s Space) Points() []Point {
	pts := make([]Point, 0, s.Size())
	for _, pl := range s.Placements {
		for _, po := range s.Policies {
			for _, al := range s.Allocators {
				for _, an := range s.AutoNUMA {
					for _, th := range s.THP {
						pts = append(pts, Point{pl, po, al, an, th})
					}
				}
			}
		}
	}
	return pts
}

// Contains reports whether p is a member of the space.
func (s Space) Contains(p Point) bool {
	return containsPlacement(s.Placements, p.Placement) &&
		containsPolicy(s.Policies, p.Policy) &&
		containsString(s.Allocators, p.Allocator) &&
		containsBool(s.AutoNUMA, p.AutoNUMA) &&
		containsBool(s.THP, p.THP)
}

func containsPlacement(vs []machine.Placement, v machine.Placement) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func containsPolicy(vs []vmm.Policy, v vmm.Policy) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func containsString(vs []string, v string) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func containsBool(vs []bool, v bool) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// AxisNames lists the freezable axes in enumeration order.
func AxisNames() []string {
	return []string{"placement", "policy", "allocator", "autonuma", "thp"}
}

// Freeze pins one axis to a single value, shrinking the space. Axis names
// are those of AxisNames; values are the rendered names ("Sparse",
// "Interleave", "tbbmalloc") or on/off for the boolean axes. The value
// must be a member of the axis' current candidate list.
func (s Space) Freeze(axis, value string) (Space, error) {
	switch strings.ToLower(axis) {
	case "placement":
		for _, pl := range s.Placements {
			if strings.EqualFold(pl.String(), value) {
				s.Placements = []machine.Placement{pl}
				return s, nil
			}
		}
	case "policy":
		for _, po := range s.Policies {
			if strings.EqualFold(po.String(), value) {
				s.Policies = []vmm.Policy{po}
				return s, nil
			}
		}
	case "allocator":
		for _, al := range s.Allocators {
			if strings.EqualFold(al, value) {
				s.Allocators = []string{al}
				return s, nil
			}
		}
	case "autonuma":
		b, err := parseOnOff(value)
		if err != nil {
			return s, fmt.Errorf("tune: freeze autonuma: %w", err)
		}
		if !containsBool(s.AutoNUMA, b) {
			break
		}
		s.AutoNUMA = []bool{b}
		return s, nil
	case "thp":
		b, err := parseOnOff(value)
		if err != nil {
			return s, fmt.Errorf("tune: freeze thp: %w", err)
		}
		if !containsBool(s.THP, b) {
			break
		}
		s.THP = []bool{b}
		return s, nil
	default:
		return s, fmt.Errorf("tune: unknown axis %q (want one of %s)",
			axis, strings.Join(AxisNames(), ", "))
	}
	return s, fmt.Errorf("tune: axis %s has no candidate value %q", strings.ToLower(axis), value)
}

// ParseFreezes applies a comma-separated axis=value freeze specification,
// e.g. "placement=Sparse,thp=off".
func ParseFreezes(s Space, spec string) (Space, error) {
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		axis, value, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("tune: malformed freeze %q (want axis=value)", part)
		}
		var err error
		s, err = s.Freeze(strings.TrimSpace(axis), strings.TrimSpace(value))
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseOnOff(v string) (bool, error) {
	switch strings.ToLower(v) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad value %q (want on or off)", v)
}

// Axis is one knob with its open values rendered as strings, plus an
// accessor reading a point's value on that axis — the shape the marginal
// analysis consumes.
type Axis struct {
	Name   string
	Values []string
	Of     func(Point) string
}

// Axes returns the space's axes in enumeration order.
func (s Space) Axes() []Axis {
	placements := make([]string, len(s.Placements))
	for i, v := range s.Placements {
		placements[i] = v.String()
	}
	policies := make([]string, len(s.Policies))
	for i, v := range s.Policies {
		policies[i] = v.String()
	}
	onOffs := func(vs []bool) []string {
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = onOff(v)
		}
		return out
	}
	return []Axis{
		{Name: "placement", Values: placements, Of: func(p Point) string { return p.Placement.String() }},
		{Name: "policy", Values: policies, Of: func(p Point) string { return p.Policy.String() }},
		{Name: "allocator", Values: append([]string(nil), s.Allocators...), Of: func(p Point) string { return p.Allocator }},
		{Name: "autonuma", Values: onOffs(s.AutoNUMA), Of: func(p Point) string { return onOff(p.AutoNUMA) }},
		{Name: "thp", Values: onOffs(s.THP), Of: func(p Point) string { return onOff(p.THP) }},
	}
}

// parsePoint reconstructs a Point from its serialized string fields,
// validating every name — the inverse of the record encoding, used when
// resuming a campaign from its JSONL.
func parsePoint(placement, policy, allocator, autonuma, thp string) (Point, error) {
	var p Point
	switch placement {
	case machine.PlaceNone.String():
		p.Placement = machine.PlaceNone
	case machine.PlaceSparse.String():
		p.Placement = machine.PlaceSparse
	case machine.PlaceDense.String():
		p.Placement = machine.PlaceDense
	default:
		return p, fmt.Errorf("tune: unknown placement %q", placement)
	}
	found := false
	for _, po := range vmm.Policies() {
		if po.String() == policy {
			p.Policy, found = po, true
			break
		}
	}
	if !found {
		return p, fmt.Errorf("tune: unknown policy %q", policy)
	}
	if !containsString(alloc.Names(), allocator) {
		return p, fmt.Errorf("tune: unknown allocator %q", allocator)
	}
	p.Allocator = allocator
	an, err := parseOnOff(autonuma)
	if err != nil {
		return p, fmt.Errorf("tune: autonuma: %w", err)
	}
	th, err := parseOnOff(thp)
	if err != nil {
		return p, fmt.Errorf("tune: thp: %w", err)
	}
	p.AutoNUMA, p.THP = an, th
	return p, nil
}

// sortedKeys is a small helper for deterministic map iteration.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
