package tune

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Strategy names. Every strategy is deterministic: for a fixed Spec the
// trial schedule, every measurement, and therefore every output byte are
// identical across worker counts and across kill/resume cycles.
const (
	// StrategyGrid exhaustively measures every point of the space.
	StrategyGrid = "grid"
	// StrategyDescent starts at the OS default and greedily walks one
	// axis at a time to a local optimum (usually global in this space —
	// the knobs interact weakly).
	StrategyDescent = "descent"
	// StrategySHA is successive halving: it races every point at a small
	// dataset fraction and promotes the best 1/eta of the field to the
	// next, larger rung, spending a fraction of the grid's simulated
	// cycles to find a near-optimal configuration at full size.
	StrategySHA = "sha"
)

// Strategies lists the campaign strategies.
func Strategies() []string { return []string{StrategyGrid, StrategyDescent, StrategySHA} }

// descentMaxPasses bounds coordinate descent: each pass sweeps every
// axis, and the walk stops at the first pass with no improvement.
const descentMaxPasses = 8

// Spec describes one campaign. Zero values get defaults from Normalize.
type Spec struct {
	Strategy string
	Space    Space
	Workload string // "W1", "W3" or "WS"
	Machine  string // "A", "B" or "C"
	Threads  int    // 0 = the machine's hardware threads
	Seed     uint64 // trial RNG seed; 0 = 1
	Size     Size
	// Budget bounds the campaign's total simulated cycles; 0 = unlimited.
	// It is checked between waves (never mid-wave), and reused checkpoint
	// trials count toward it, so budget decisions replay identically on
	// resume.
	Budget float64
	// Eta is the successive-halving reduction factor (default 4): rung r
	// keeps the best ceil(n/eta) configs and multiplies the dataset
	// fraction by eta.
	Eta int
	// Rungs is the successive-halving rung count (default 3): fractions
	// eta^-(Rungs-1) ... 1/eta, 1.
	Rungs int
	// Wave is the trial batch width (default 16). Waves bound both the
	// runner's concurrency and the budget-check granularity; the width is
	// part of the schedule, so changing it changes trial order (but not
	// any measurement).
	Wave int
}

// Normalize validates the spec and fills defaults, resolving Threads
// against the target machine. Campaign and the CLI both call it; it is
// idempotent.
func (sp Spec) Normalize() (Spec, error) {
	switch sp.Strategy {
	case StrategyGrid, StrategyDescent, StrategySHA:
	default:
		return sp, fmt.Errorf("tune: unknown strategy %q (have grid, descent, sha)", sp.Strategy)
	}
	if _, err := WorkloadByID(sp.Workload); err != nil {
		return sp, err
	}
	m, err := MachineFor(sp.Machine)
	if err != nil {
		return sp, err
	}
	if sp.Threads <= 0 {
		sp.Threads = m.Spec.HardwareThreads()
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Eta <= 1 {
		sp.Eta = 4
	}
	if sp.Rungs <= 0 {
		sp.Rungs = 3
	}
	if sp.Wave <= 0 {
		sp.Wave = 16
	}
	if sp.Space.Size() == 0 {
		return sp, fmt.Errorf("tune: empty configuration space")
	}
	if sp.Size.AggRecords <= 0 || sp.Size.AggCardinality <= 0 || sp.Size.JoinR <= 0 {
		return sp, fmt.Errorf("tune: workload size not set: %+v", sp.Size)
	}
	return sp, nil
}

// ID returns the campaign identity stamped into every record:
// strategy/workload/machine.
func (sp Spec) ID() string { return sp.Strategy + "/" + sp.Workload + "/" + sp.Machine }

// ProgressFunc observes a campaign after every wave: trials completed so
// far (including reused checkpoint trials), how many of those were
// reused, and the simulated cycles spent. Calls are serialized.
type ProgressFunc func(trials, reused int, spentCycles float64)

// SinkFunc receives each wave's records in schedule order, exactly once
// per record — the checkpoint flush. A nil sink keeps records in memory
// only.
type SinkFunc func(recs []Record) error

// Result is a completed (or budget-exhausted) campaign.
type Result struct {
	Spec    Spec
	Records []Record // every trial in schedule order
	// Best is the cheapest full-fraction trial, nil if the budget ran out
	// before any full-fraction trial completed.
	Best *Record
	// NewTrials and Reused partition the trial count: simulated this run
	// versus recovered from the checkpoint.
	NewTrials int
	Reused    int
	// CyclesSpent is the campaign's simulated budget consumption: the sum
	// of wall cycles over all trials, reused ones included.
	CyclesSpent float64
	// Exhausted reports the campaign stopped on its cycle budget rather
	// than completing its schedule.
	Exhausted bool
}

// BestFull returns the cheapest trial among records at frac == 1, ties
// broken by schedule order. Nil when no full-fraction trial exists.
func BestFull(recs []Record) *Record {
	var best *Record
	for i := range recs {
		r := &recs[i]
		if r.Frac != 1 {
			continue
		}
		if best == nil || r.WallCycles < best.WallCycles {
			best = r
		}
	}
	return best
}

// campaign is the in-flight state shared by the strategies.
type campaign struct {
	spec      Spec
	objective string // the workload's objective label, "" for wall cycles
	runner    core.Runner
	prior     map[TrialKey]Record
	byKey     map[TrialKey]Record // trials already in this campaign's schedule
	records   []Record
	spent     float64
	reused    int
	newRuns   int
	sink      SinkFunc
	progress  ProgressFunc
}

// Run executes a campaign. prior is the checkpoint to resume from
// (records whose trial keys match scheduled trials substitute for
// re-running them; mismatching records are ignored). sink, when non-nil,
// is flushed after every wave so a kill loses at most one wave. The
// returned records are the full schedule — on resume, byte-identical to
// an uninterrupted run.
func Run(spec Spec, runner core.Runner, prior []Record, sink SinkFunc, progress ProgressFunc) (*Result, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	wl, err := WorkloadByID(spec.Workload)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		spec:      spec,
		objective: wl.Objective,
		runner:    runner,
		prior:     make(map[TrialKey]Record, len(prior)),
		byKey:     make(map[TrialKey]Record),
		sink:      sink,
		progress:  progress,
	}
	for _, r := range prior {
		k, err := r.trialKey()
		if err != nil {
			continue // unparseable prior records cannot match a scheduled trial
		}
		c.prior[k] = r
	}

	var serr error
	switch spec.Strategy {
	case StrategyGrid:
		serr = c.grid()
	case StrategyDescent:
		serr = c.descent()
	case StrategySHA:
		serr = c.sha()
	}
	if serr != nil && serr != errBudget {
		return nil, serr
	}
	return &Result{
		Spec:        spec,
		Records:     c.records,
		Best:        BestFull(c.records),
		NewTrials:   c.newRuns,
		Reused:      c.reused,
		CyclesSpent: c.spent,
		Exhausted:   serr == errBudget,
	}, nil
}

// errBudget is the internal stop signal raised when the cycle budget is
// exhausted between waves.
var errBudget = fmt.Errorf("tune: simulated-cycle budget exhausted")

// key builds the trial identity for a point at a dataset fraction.
func (c *campaign) key(p Point, frac float64) TrialKey {
	return TrialKey{
		Workload: c.spec.Workload,
		Machine:  c.spec.Machine,
		Point:    p,
		Threads:  c.spec.Threads,
		Seed:     c.spec.Seed,
		Size:     c.spec.Size.Scaled(frac),
	}
}

// measure evaluates every point at the given fraction, in waves of
// spec.Wave trials. Results come back aligned with points. Trials already
// in this campaign's schedule are not re-recorded; trials found in the
// checkpoint are adopted without simulating. Between waves the cycle
// budget is checked; on exhaustion measure returns errBudget and the
// partial schedule stands.
func (c *campaign) measure(points []Point, frac float64, rung int) ([]TrialResult, error) {
	out := make([]TrialResult, len(points))
	for wave := 0; wave < len(points); wave += c.spec.Wave {
		if c.spec.Budget > 0 && c.spent >= c.spec.Budget {
			return out, errBudget
		}
		end := wave + c.spec.Wave
		if end > len(points) {
			end = len(points)
		}

		// Partition the wave: trials this campaign already measured are
		// answered from byKey; the rest are scheduled now, in wave order.
		type job struct {
			at  int // index into points
			key TrialKey
		}
		var jobs []job
		for i := wave; i < end; i++ {
			k := c.key(points[i], frac)
			if rec, ok := c.byKey[k]; ok {
				out[i] = rec.result()
				continue
			}
			jobs = append(jobs, job{at: i, key: k})
		}

		// Simulate the missing trials on the worker pool. Checkpointed
		// trials skip the simulator but still join the schedule.
		type cell struct {
			rec    Record
			reused bool
		}
		cells, err := core.Collect(c.runner, len(jobs), func(j int) (cell, error) {
			k := jobs[j].key
			if prior, ok := c.prior[k]; ok {
				return cell{rec: prior, reused: true}, nil
			}
			res, err := RunTrial(k)
			if err != nil {
				return cell{}, err
			}
			return cell{rec: Record{
				Schema:     SchemaVersion,
				Workload:   k.Workload,
				Machine:    k.Machine,
				Key:        k.Point.Key(),
				Point:      pointJSON(k.Point),
				Threads:    k.Threads,
				Seed:       k.Seed,
				Size:       SizeJSON{k.Size.AggRecords, k.Size.AggCardinality, k.Size.JoinR},
				WallCycles: res.Cycles,
				LAR:        res.LAR,
				Counters:   res.Counters,
				Breakdown:  res.Breakdown,
			}}, nil
		})
		if err != nil {
			return out, err
		}

		// Commit the wave in schedule order. Campaign-level metadata is
		// restamped even on reused records, so a checkpoint written by a
		// different strategy (or an older schedule) still replays to the
		// current campaign's exact bytes.
		flushFrom := len(c.records)
		for j, cl := range cells {
			rec := cl.rec
			rec.Schema = SchemaVersion
			rec.Campaign = c.spec.ID()
			rec.Strategy = c.spec.Strategy
			rec.Objective = c.objective
			rec.Trial = len(c.records)
			rec.Rung = rung
			rec.Frac = frac
			c.records = append(c.records, rec)
			c.byKey[jobs[j].key] = rec
			out[jobs[j].at] = rec.result()
			c.spent += rec.WallCycles
			if cl.reused {
				c.reused++
			} else {
				c.newRuns++
			}
		}
		if c.sink != nil && flushFrom < len(c.records) {
			if err := c.sink(c.records[flushFrom:]); err != nil {
				return out, err
			}
		}
		if c.progress != nil {
			c.progress(len(c.records), c.reused, c.spent)
		}
	}
	return out, nil
}

// grid measures every point of the space at full size.
func (c *campaign) grid() error {
	_, err := c.measure(c.spec.Space.Points(), 1, 0)
	return err
}

// descent starts at the OS default (the first value of every open axis)
// and repeatedly sweeps the axes in order, moving to the best value on
// each axis, until a full pass improves nothing.
func (c *campaign) descent() error {
	s := c.spec.Space
	cur := Point{
		Placement: s.Placements[0],
		Policy:    s.Policies[0],
		Allocator: s.Allocators[0],
		AutoNUMA:  s.AutoNUMA[0],
		THP:       s.THP[0],
	}
	res, err := c.measure([]Point{cur}, 1, 0)
	if err != nil {
		return err
	}
	curCycles := res[0].Cycles

	for pass := 0; pass < descentMaxPasses; pass++ {
		improved := false
		for axis := 0; axis < 5; axis++ {
			cands := axisCandidates(s, cur, axis)
			if len(cands) < 2 {
				continue
			}
			vals, err := c.measure(cands, 1, 0)
			if err != nil {
				return err
			}
			// Move only on a strict improvement; ties keep the current
			// value (earlier candidates win among equals by the < test
			// running in candidate order).
			for i, v := range vals {
				if v.Cycles < curCycles {
					cur, curCycles = cands[i], v.Cycles
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return nil
}

// axisCandidates returns cur varied over every open value of one axis
// (current value included, in axis order).
func axisCandidates(s Space, cur Point, axis int) []Point {
	var cands []Point
	switch axis {
	case 0:
		for _, v := range s.Placements {
			p := cur
			p.Placement = v
			cands = append(cands, p)
		}
	case 1:
		for _, v := range s.Policies {
			p := cur
			p.Policy = v
			cands = append(cands, p)
		}
	case 2:
		for _, v := range s.Allocators {
			p := cur
			p.Allocator = v
			cands = append(cands, p)
		}
	case 3:
		for _, v := range s.AutoNUMA {
			p := cur
			p.AutoNUMA = v
			cands = append(cands, p)
		}
	case 4:
		for _, v := range s.THP {
			p := cur
			p.THP = v
			cands = append(cands, p)
		}
	}
	return cands
}

// shaSlack is the successive-halving promotion tolerance: a rung score is
// a fractional-dataset *estimate* of the full-size cost, so configs within
// this relative distance of the cutoff score are promoted too rather than
// cut by tie-break luck. Small-fraction rungs cluster heavily (whole knob
// quads tie exactly), which makes the hard rank boundary arbitrary
// precisely when estimates are least trustworthy.
const shaSlack = 0.02

// sha runs successive halving: rung r races the surviving points at
// dataset fraction eta^(r-Rungs+1) and promotes the cheapest ceil(n/eta)
// to the next rung (plus near-ties within shaSlack of the cutoff); the
// final rung runs at full size.
func (c *campaign) sha() error {
	type ranked struct {
		point Point
		order int // enumeration index, the deterministic tie-break
	}
	pts := c.spec.Space.Points()
	survivors := make([]ranked, len(pts))
	for i, p := range pts {
		survivors[i] = ranked{point: p, order: i}
	}
	R := c.spec.Rungs
	for r := 0; r < R; r++ {
		frac := math.Pow(float64(c.spec.Eta), float64(r-R+1))
		cands := make([]Point, len(survivors))
		for i, s := range survivors {
			cands[i] = s.point
		}
		vals, err := c.measure(cands, frac, r)
		if err != nil {
			return err
		}
		if r == R-1 {
			break
		}
		// Rank this rung and keep the best ceil(n/eta).
		type scored struct {
			ranked
			cycles float64
		}
		sc := make([]scored, len(survivors))
		for i, s := range survivors {
			sc[i] = scored{ranked: s, cycles: vals[i].Cycles}
		}
		insertionSort(sc, func(a, b scored) bool {
			if a.cycles != b.cycles {
				return a.cycles < b.cycles
			}
			return a.order < b.order
		})
		keep := (len(sc) + c.spec.Eta - 1) / c.spec.Eta
		if keep < 1 {
			keep = 1
		}
		cutoff := sc[keep-1].cycles * (1 + shaSlack)
		for keep < len(sc) && sc[keep].cycles <= cutoff {
			keep++
		}
		survivors = survivors[:0]
		for _, s := range sc[:keep] {
			survivors = append(survivors, s.ranked)
		}
	}
	return nil
}

// insertionSort is a tiny stable sort; survivor lists are small and the
// comparator is total, but keeping the sort local documents that rung
// ranking is part of the deterministic schedule.
func insertionSort[T any](xs []T, less func(a, b T) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
