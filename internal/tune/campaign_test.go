package tune

import (
	"testing"

	"repro/internal/core"
)

// frozenSpace is a 24-point subspace (placements x policies x thp) used
// where exhaustive comparisons must stay cheap.
func frozenSpace(t *testing.T) Space {
	t.Helper()
	s, err := ParseFreezes(DefaultSpace(), "allocator=tbbmalloc,autonuma=off")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGridMatchesBruteForce(t *testing.T) {
	space := frozenSpace(t)
	spec := Spec{Strategy: StrategyGrid, Space: space, Workload: "W1", Machine: "A", Size: tinySize}
	res, err := Run(spec, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != space.Size() {
		t.Fatalf("grid ran %d trials over a %d-point space", len(res.Records), space.Size())
	}
	if res.Best == nil {
		t.Fatal("grid campaign has no best")
	}

	// Brute force through the same trial path must agree exactly.
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	bestCycles := -1.0
	bestKey := ""
	for _, p := range space.Points() {
		out, err := RunTrial(TrialKey{
			Workload: "W1", Machine: "A", Point: p,
			Threads: norm.Threads, Seed: norm.Seed, Size: tinySize,
		})
		if err != nil {
			t.Fatal(err)
		}
		if bestCycles < 0 || out.Cycles < bestCycles {
			bestCycles, bestKey = out.Cycles, p.Key()
		}
	}
	if res.Best.Key != bestKey || res.Best.WallCycles != bestCycles {
		t.Errorf("grid best %s (%.0f), brute force %s (%.0f)",
			res.Best.Key, res.Best.WallCycles, bestKey, bestCycles)
	}
}

func TestDescentImprovesOnDefault(t *testing.T) {
	res, err := Run(Spec{
		Strategy: StrategyDescent, Space: DefaultSpace(),
		Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Records) == 0 {
		t.Fatal("descent produced nothing")
	}
	// Trial 0 is the OS default; the walk must never end above it.
	if res.Records[0].Key != DefaultPoint().Key() {
		t.Fatalf("descent started at %s, want the OS default", res.Records[0].Key)
	}
	if res.Best.WallCycles > res.Records[0].WallCycles {
		t.Errorf("descent best %.0f is worse than its default start %.0f",
			res.Best.WallCycles, res.Records[0].WallCycles)
	}
	// The walk never evaluates a point twice.
	seen := map[string]bool{}
	for _, r := range res.Records {
		if seen[r.Key] {
			t.Errorf("descent re-recorded %s", r.Key)
		}
		seen[r.Key] = true
	}
	// Greedy search must spend far less than the 240-point grid would.
	if len(res.Records) >= DefaultSpace().Size()/2 {
		t.Errorf("descent ran %d trials, expected a small fraction of %d",
			len(res.Records), DefaultSpace().Size())
	}
}

func TestSHANearOptimalAtFractionalSpend(t *testing.T) {
	grid, err := Run(Spec{
		Strategy: StrategyGrid, Space: DefaultSpace(),
		Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sha, err := Run(Spec{
		Strategy: StrategySHA, Space: DefaultSpace(),
		Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sha.Best == nil {
		t.Fatal("sha campaign has no full-size best")
	}
	// Rungs must escalate fraction up to exactly 1.
	fracs := map[int]float64{}
	for _, r := range sha.Records {
		fracs[r.Rung] = r.Frac
	}
	if len(fracs) != 3 || fracs[2] != 1 || !(fracs[0] < fracs[1] && fracs[1] < fracs[2]) {
		t.Errorf("sha rung fractions %v, want 3 escalating rungs ending at 1", fracs)
	}
	// The acceptance bar (at cal in EXPERIMENTS.md, checked here at tiny):
	// within 5% of the exhaustive optimum for under 30% of its simulated
	// cycles.
	if sha.Best.WallCycles > grid.Best.WallCycles*1.05 {
		t.Errorf("sha best %.0f not within 5%% of grid best %.0f",
			sha.Best.WallCycles, grid.Best.WallCycles)
	}
	if sha.CyclesSpent > 0.30*grid.CyclesSpent {
		t.Errorf("sha spent %.0f cycles, more than 30%% of grid's %.0f",
			sha.CyclesSpent, grid.CyclesSpent)
	}
}

func TestBudgetStopsCampaign(t *testing.T) {
	space := frozenSpace(t)
	full, err := Run(Spec{
		Strategy: StrategyGrid, Space: space, Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.CyclesSpent / 4
	cut, err := Run(Spec{
		Strategy: StrategyGrid, Space: space, Workload: "W1", Machine: "A",
		Size: tinySize, Budget: budget, Wave: 4,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Exhausted {
		t.Error("budgeted campaign did not report exhaustion")
	}
	if len(cut.Records) >= len(full.Records) {
		t.Errorf("budgeted campaign ran %d of %d trials", len(cut.Records), len(full.Records))
	}
	// The budget is checked between waves, so overshoot is at most one wave.
	if cut.CyclesSpent >= full.CyclesSpent {
		t.Errorf("budgeted campaign spent %.0f of the full %.0f", cut.CyclesSpent, full.CyclesSpent)
	}
}

func TestRegretOnGrid(t *testing.T) {
	res, err := Run(Spec{
		Strategy: StrategyGrid, Space: DefaultSpace(),
		Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Regret(res)
	if err != nil {
		t.Fatal(err)
	}
	if row.Machine != "A" || row.Workload != "W1" {
		t.Errorf("regret cell identity %s/%s", row.Machine, row.Workload)
	}
	if row.Regret() < 0 {
		t.Errorf("regret %.4f negative: the grid best is not the optimum", row.Regret())
	}
	if row.BestKey != res.Best.Key || row.BestCycles != res.Best.WallCycles {
		t.Errorf("regret row best %s (%.0f) != campaign best %s (%.0f)",
			row.BestKey, row.BestCycles, res.Best.Key, res.Best.WallCycles)
	}

	// Analysis surfaces built from the same records.
	top := TopConfigs(res.Records)
	if len(top) != len(res.Records) {
		t.Fatalf("TopConfigs dropped rows: %d of %d", len(top), len(res.Records))
	}
	if top[0].Key != res.Best.Key {
		t.Errorf("top-1 %s != best %s", top[0].Key, res.Best.Key)
	}
	if dc := DefaultCycles(res.Records); dc <= 0 {
		t.Error("grid never measured the OS default")
	}
	marg := Marginals(res.Spec.Space, res.Records)
	if len(marg) != 3+4+5+2+2 {
		t.Errorf("marginals rows %d, want one per axis value (16)", len(marg))
	}
	perAxisTrials := map[string]int{}
	for _, m := range marg {
		perAxisTrials[m.Axis] += m.Trials
	}
	for axis, n := range perAxisTrials {
		if n != len(res.Records) {
			t.Errorf("axis %s marginals cover %d trials, want %d", axis, n, len(res.Records))
		}
	}
}

func TestRegretFallbackOnAdaptiveStrategies(t *testing.T) {
	// Freeze the space so the advised configuration is excluded, forcing
	// the fallback measurement path.
	s, err := ParseFreezes(DefaultSpace(), "allocator=ptmalloc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Spec{
		Strategy: StrategyDescent, Space: s, Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Regret(res); err == nil {
		t.Fatal("Regret found an advised config the space excludes")
	}
	row, err := RegretWithFallback(res)
	if err != nil {
		t.Fatal(err)
	}
	if row.AdvisedCycles <= 0 || row.BestCycles <= 0 {
		t.Errorf("fallback regret row not measured: %+v", row)
	}
}

func TestCampaignsByID(t *testing.T) {
	res := descentResult(t)
	groups := CampaignsByID(res.Records)
	if len(groups) != 1 {
		t.Fatalf("%d campaign groups, want 1", len(groups))
	}
	rs, ok := groups["descent/W1/A"]
	if !ok || len(rs) != len(res.Records) {
		t.Fatalf("group descent/W1/A missing or incomplete: %v", ok)
	}
	for i := range rs {
		if rs[i].Trial != i {
			t.Fatalf("group not in trial order at %d", i)
		}
	}
}
