package tune

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/machine"
)

// SchemaVersion identifies the campaign record layout. Bump it when a
// field changes meaning; the strict reader rejects other schemas.
//
// One Record is one trial of one campaign, serialized as a single JSON
// object per line:
//
//	schema      string  always "repro/tune/v1"
//	campaign    string  campaign id: strategy/workload/machine
//	strategy    string  "grid", "descent" or "sha"
//	trial       number  schedule index within the campaign, 0-based
//	rung        number  successive-halving rung, 0 elsewhere
//	frac        number  dataset fraction of this trial (1 = full size)
//	workload    string  workload id ("W1", "W3", "WS")
//	machine     string  simulated machine letter ("A", "B", "C")
//	objective   string  what wall_cycles holds when not wall time: WS
//	                    campaigns record "p99_latency" (cycles); omitted
//	                    for the throughput workloads, so their artifacts
//	                    are byte-identical to pre-objective ones
//	key         string  the point's canonical identity (Point.Key)
//	point       object  the knob values: placement, policy, allocator,
//	                    autonuma, thp (strings; booleans as on/off)
//	threads     number  worker thread count of the trial
//	seed        number  the trial's RNG seed
//	size        object  workload sizing after the fraction was applied:
//	                    agg_records, agg_cardinality, join_r
//	wall_cycles number  the trial's measured objective: simulated wall
//	                    time in cycles, or the objective's value when the
//	                    objective field is present
//	lar         number  local access ratio of the measured phase
//	counters    object  the perf-counter profile (see machine.Counters)
//	breakdown   object  cycle attribution, bucket name -> cycles
//
// Unlike repro/bench/v2 there is no host_ns field: every byte of a
// campaign artifact is deterministic for a fixed spec, which is what lets
// the resume test demand bit-identical files.
const SchemaVersion = "repro/tune/v1"

// PointJSON is a Point flattened to strings for the JSONL schema.
type PointJSON struct {
	Placement string `json:"placement"`
	Policy    string `json:"policy"`
	Allocator string `json:"allocator"`
	AutoNUMA  string `json:"autonuma"`
	THP       string `json:"thp"`
}

func pointJSON(p Point) PointJSON {
	return PointJSON{
		Placement: p.Placement.String(),
		Policy:    p.Policy.String(),
		Allocator: p.Allocator,
		AutoNUMA:  onOff(p.AutoNUMA),
		THP:       onOff(p.THP),
	}
}

// SizeJSON is a Size in the JSONL schema's field names.
type SizeJSON struct {
	AggRecords     int `json:"agg_records"`
	AggCardinality int `json:"agg_cardinality"`
	JoinR          int `json:"join_r"`
}

// Record is one completed trial; see SchemaVersion for the serialized
// layout. Every field is deterministic for a fixed campaign spec.
type Record struct {
	Schema     string             `json:"schema"`
	Campaign   string             `json:"campaign"`
	Strategy   string             `json:"strategy"`
	Trial      int                `json:"trial"`
	Rung       int                `json:"rung"`
	Frac       float64            `json:"frac"`
	Workload   string             `json:"workload"`
	Machine    string             `json:"machine"`
	Objective  string             `json:"objective,omitempty"`
	Key        string             `json:"key"`
	Point      PointJSON          `json:"point"`
	Threads    int                `json:"threads"`
	Seed       uint64             `json:"seed"`
	Size       SizeJSON           `json:"size"`
	WallCycles float64            `json:"wall_cycles"`
	LAR        float64            `json:"lar"`
	Counters   machine.Counters   `json:"counters"`
	Breakdown  map[string]float64 `json:"breakdown,omitempty"`
}

// trialKey reconstructs the trial identity a record measured, validating
// the serialized point. This is the resume path: a loaded record
// substitutes for re-running the trial with this key.
func (r Record) trialKey() (TrialKey, error) {
	p, err := parsePoint(r.Point.Placement, r.Point.Policy, r.Point.Allocator,
		r.Point.AutoNUMA, r.Point.THP)
	if err != nil {
		return TrialKey{}, err
	}
	return TrialKey{
		Workload: r.Workload,
		Machine:  r.Machine,
		Point:    p,
		Threads:  r.Threads,
		Seed:     r.Seed,
		Size:     Size{r.Size.AggRecords, r.Size.AggCardinality, r.Size.JoinR},
	}, nil
}

// result extracts the measurement a record carries.
func (r Record) result() TrialResult {
	return TrialResult{
		Cycles:    r.WallCycles,
		LAR:       r.LAR,
		Counters:  r.Counters,
		Breakdown: r.Breakdown,
	}
}

// WriteJSONL appends one JSON object per record to w, newline-delimited,
// in input order. Missing Schema fields are stamped with SchemaVersion.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		r := recs[i]
		if r.Schema == "" {
			r.Schema = SchemaVersion
		}
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses newline-delimited campaign records, rejecting unknown
// fields, wrong schemas, and records missing their campaign or point
// identity — the strict complement of WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		rec, err := parseRecord(b)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

func parseRecord(b []byte) (Record, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return Record{}, err
	}
	if rec.Schema != SchemaVersion {
		return Record{}, fmt.Errorf("schema %q, want %q", rec.Schema, SchemaVersion)
	}
	if rec.Campaign == "" || rec.Key == "" {
		return Record{}, fmt.Errorf("record missing campaign or point key")
	}
	if _, err := rec.trialKey(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// LoadCheckpoint reads a campaign artifact for resumption. Unlike the
// strict reader it tolerates exactly one trailing malformed line with no
// newline terminator — the footprint of a campaign killed mid-write — by
// dropping it. A missing file is an empty checkpoint, not an error.
func LoadCheckpoint(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []Record
	lines := bytes.Split(data, []byte("\n"))
	for i, b := range lines {
		b = bytes.TrimSpace(b)
		if len(b) == 0 {
			continue
		}
		rec, perr := parseRecord(b)
		if perr != nil {
			// A partial final line (kill mid-write leaves no trailing
			// newline) is recoverable; anything else is corruption.
			if i == len(lines)-1 && !bytes.HasSuffix(data, []byte("\n")) {
				break
			}
			return nil, fmt.Errorf("%s: line %d: %w", path, i+1, perr)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
