package tune

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vmm"
)

// tinySize mirrors experiments.Tiny's workload dimensions so unit tests
// finish in milliseconds and share memoized datasets with the driver
// tests.
var tinySize = Size{AggRecords: 8_000, AggCardinality: 400, JoinR: 1_500}

func TestDefaultSpaceEnumeration(t *testing.T) {
	s := DefaultSpace()
	if got, want := s.Size(), 3*4*5*2*2; got != want {
		t.Fatalf("space size %d, want %d", got, want)
	}
	pts := s.Points()
	if len(pts) != s.Size() {
		t.Fatalf("Points() returned %d, Size() says %d", len(pts), s.Size())
	}
	seen := map[string]bool{}
	for _, p := range pts {
		k := p.Key()
		if seen[k] {
			t.Fatalf("duplicate point key %s", k)
		}
		seen[k] = true
		if !s.Contains(p) {
			t.Fatalf("space does not contain its own point %s", k)
		}
	}
	if pts[0] != DefaultPoint() {
		t.Errorf("first enumerated point %s is not the OS default %s",
			pts[0].Key(), DefaultPoint().Key())
	}
}

func TestFreeze(t *testing.T) {
	s, err := DefaultSpace().Freeze("placement", "Sparse")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Size(), 4*5*2*2; got != want {
		t.Fatalf("after freezing placement: size %d, want %d", got, want)
	}
	s, err = ParseFreezes(s, "thp=off, allocator=tbbmalloc")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Size(), 4*2; got != want {
		t.Fatalf("after freezing thp+allocator: size %d, want %d", got, want)
	}
	for _, p := range s.Points() {
		if p.Placement != machine.PlaceSparse || p.THP || p.Allocator != "tbbmalloc" {
			t.Fatalf("frozen space leaked point %s", p.Key())
		}
	}
	if _, err := DefaultSpace().Freeze("color", "red"); err == nil {
		t.Error("unknown axis accepted")
	}
	if _, err := DefaultSpace().Freeze("allocator", "nftmalloc"); err == nil {
		t.Error("unknown allocator value accepted")
	}
	if _, err := DefaultSpace().Freeze("autonuma", "maybe"); err == nil {
		t.Error("non-boolean autonuma value accepted")
	}
	if _, err := ParseFreezes(DefaultSpace(), "placement"); err == nil {
		t.Error("malformed freeze accepted")
	}
	// Freezing to a value an earlier freeze removed must fail.
	s2, _ := DefaultSpace().Freeze("policy", "Interleave")
	if _, err := s2.Freeze("policy", "First Touch"); err == nil {
		t.Error("freeze to an excluded value accepted")
	}
}

func TestPointKeyAndParseRoundTrip(t *testing.T) {
	for _, p := range DefaultSpace().Points() {
		j := pointJSON(p)
		back, err := parsePoint(j.Placement, j.Policy, j.Allocator, j.AutoNUMA, j.THP)
		if err != nil {
			t.Fatalf("%s: %v", p.Key(), err)
		}
		if back != p {
			t.Fatalf("round-trip %s -> %s", p.Key(), back.Key())
		}
	}
	if _, err := parsePoint("Sideways", "Interleave", "ptmalloc", "on", "on"); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestFromRecommendation(t *testing.T) {
	tr, err := core.WorkloadTraits("W1")
	if err != nil {
		t.Fatal(err)
	}
	p := FromRecommendation(core.Advise(tr))
	if !DefaultSpace().Contains(p) {
		t.Fatalf("advised point %s outside the default space", p.Key())
	}
	if p.Placement != machine.PlaceSparse || p.Policy != vmm.Interleave ||
		p.Allocator != "tbbmalloc" || p.AutoNUMA || p.THP {
		t.Fatalf("unexpected advised point for W1 traits: %s", p.Key())
	}
}

func TestScaled(t *testing.T) {
	z := Size{AggRecords: 1000, AggCardinality: 100, JoinR: 64}
	if z.Scaled(1) != z || z.Scaled(2) != z {
		t.Error("frac >= 1 must be the identity")
	}
	q := z.Scaled(0.25)
	if q != (Size{250, 25, 16}) {
		t.Errorf("Scaled(0.25) = %+v", q)
	}
	tinyFrac := z.Scaled(1e-6)
	if tinyFrac.AggRecords < 1 || tinyFrac.AggCardinality < 1 || tinyFrac.JoinR < 1 {
		t.Errorf("Scaled floor violated: %+v", tinyFrac)
	}
}

func TestWorkloadAndMachineLookup(t *testing.T) {
	if _, err := WorkloadByID("W7"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := MachineFor("Z"); err == nil {
		t.Error("unknown machine accepted")
	}
	if got := WorkloadIDs(); len(got) != 3 || got[0] != "W1" || got[1] != "W3" || got[2] != "WS" {
		t.Errorf("WorkloadIDs() = %v", got)
	}
	if ws, err := WorkloadByID("WS"); err != nil || ws.Objective != "p99_latency" {
		t.Errorf("WS = %+v, %v; want p99_latency objective", ws, err)
	}
	for _, id := range WorkloadIDs() {
		if _, err := core.WorkloadTraits(id); err != nil {
			t.Errorf("workload %s has no canonical traits: %v", id, err)
		}
	}
}

func TestSpecNormalize(t *testing.T) {
	sp, err := Spec{Strategy: "sha", Workload: "W1", Machine: "A", Space: DefaultSpace(), Size: tinySize}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Threads <= 0 || sp.Seed == 0 || sp.Eta != 4 || sp.Rungs != 3 || sp.Wave != 16 {
		t.Errorf("defaults not filled: %+v", sp)
	}
	if sp.ID() != "sha/W1/A" {
		t.Errorf("ID() = %q", sp.ID())
	}
	bad := []Spec{
		{Strategy: "annealing", Workload: "W1", Machine: "A", Space: DefaultSpace(), Size: tinySize},
		{Strategy: "grid", Workload: "W9", Machine: "A", Space: DefaultSpace(), Size: tinySize},
		{Strategy: "grid", Workload: "W1", Machine: "Q", Space: DefaultSpace(), Size: tinySize},
		{Strategy: "grid", Workload: "W1", Machine: "A", Space: Space{}, Size: tinySize},
		{Strategy: "grid", Workload: "W1", Machine: "A", Space: DefaultSpace()},
	}
	for i, b := range bad {
		if _, err := b.Normalize(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// descentResult memoizes one cheap campaign shared by the record tests.
func descentResult(t *testing.T) *Result {
	t.Helper()
	res, err := Run(Spec{
		Strategy: StrategyDescent, Space: DefaultSpace(),
		Workload: "W1", Machine: "A", Size: tinySize,
	}, core.Serial, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRecordJSONLRoundTrip(t *testing.T) {
	res := descentResult(t)
	if len(res.Records) == 0 {
		t.Fatal("campaign produced no records")
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Records) {
		t.Fatalf("round-trip: %d records, want %d", len(got), len(res.Records))
	}
	for i := range got {
		if got[i].Key != res.Records[i].Key || got[i].WallCycles != res.Records[i].WallCycles ||
			got[i].Trial != res.Records[i].Trial || got[i].Campaign != res.Records[i].Campaign {
			t.Fatalf("record %d drifted through the round-trip:\n%+v\n%+v", i, got[i], res.Records[i])
		}
	}
	// Re-serializing the parsed records must reproduce the bytes.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSONL bytes not stable under a parse/serialize cycle")
	}
}

func TestReadJSONLStrict(t *testing.T) {
	res := descentResult(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res.Records[:1]); err != nil {
		t.Fatal(err)
	}
	line := buf.String()

	if _, err := ReadJSONL(strings.NewReader(strings.Replace(line, "repro/tune/v1", "repro/tune/v0", 1))); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(strings.Replace(line, `"schema"`, `"mystery_field":1,"schema"`, 1))); err == nil {
		t.Error("unknown field accepted")
	}
	// Descent's first trial is the OS default, so its placement is "None".
	if _, err := ReadJSONL(strings.NewReader(strings.Replace(line, `"placement":"None"`, `"placement":"Diagonal"`, 1))); err == nil {
		t.Error("unparseable point accepted")
	}
}

func TestLoadCheckpoint(t *testing.T) {
	res := descentResult(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.jsonl")

	if recs, err := LoadCheckpoint(filepath.Join(dir, "missing.jsonl")); err != nil || recs != nil {
		t.Fatalf("missing checkpoint: recs=%v err=%v", recs, err)
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// A checkpoint killed mid-write: complete lines plus a torn tail.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1
	torn := append(append([]byte{}, full[:cut]...), full[cut:cut+20]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != len(res.Records)-1 {
		t.Fatalf("torn checkpoint: %d records, want %d", len(recs), len(res.Records)-1)
	}

	// Corruption anywhere else must be reported.
	bad := bytes.Replace(full, []byte("repro/tune/v1"), []byte("repro/tune/v9"), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt interior line tolerated")
	}
}
