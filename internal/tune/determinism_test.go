package tune

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

// The ISSUE acceptance bar: a campaign at fixed seed and budget must be
// byte-identical whether it runs serially, on a parallel runner, or
// killed and resumed from a checkpoint prefix. These tests exercise all
// three paths for every strategy on an allocator-frozen 48-point space.

func detSpace(t *testing.T) Space {
	t.Helper()
	s, err := ParseFreezes(DefaultSpace(), "allocator=tbbmalloc,autonuma=on")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3*4*2 {
		t.Fatalf("determinism subspace has %d points", s.Size())
	}
	return s
}

func campaignBytes(t *testing.T, strategy string, runner core.Runner, prior []Record) ([]byte, *Result) {
	t.Helper()
	res, err := Run(Spec{
		Strategy: strategy, Space: detSpace(t),
		Workload: "W1", Machine: "A", Size: tinySize, Wave: 8,
	}, runner, prior, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestCampaignSerialParallelResumeIdentical(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run(strategy, func(t *testing.T) {
			serial, base := campaignBytes(t, strategy, core.Serial, nil)
			if len(base.Records) == 0 {
				t.Fatal("campaign produced no records")
			}

			par, parRes := campaignBytes(t, strategy, core.Runner{Workers: 4}, nil)
			if !bytes.Equal(serial, par) {
				t.Error("parallel-4 JSONL differs from serial")
			}
			if parRes.NewTrials != base.NewTrials || parRes.CyclesSpent != base.CyclesSpent {
				t.Errorf("parallel accounting drifted: %d/%.0f vs %d/%.0f",
					parRes.NewTrials, parRes.CyclesSpent, base.NewTrials, base.CyclesSpent)
			}

			// Kill-and-resume: adopt the first 60% of the records as a
			// checkpoint, rerun, and demand the same bytes while only the
			// missing suffix is executed.
			cut := len(base.Records) * 6 / 10
			if cut == 0 {
				cut = 1
			}
			prior := append([]Record{}, base.Records[:cut]...)
			resumed, resRes := campaignBytes(t, strategy, core.Serial, prior)
			if !bytes.Equal(serial, resumed) {
				t.Error("kill-and-resume JSONL differs from serial")
			}
			if resRes.Reused != cut {
				t.Errorf("resume reused %d trials, want %d", resRes.Reused, cut)
			}
			if resRes.NewTrials != len(base.Records)-cut {
				t.Errorf("resume ran %d new trials, want %d", resRes.NewTrials, len(base.Records)-cut)
			}

			// A complete checkpoint replays the whole campaign without a
			// single new simulation.
			replayed, repRes := campaignBytes(t, strategy, core.Serial, base.Records)
			if !bytes.Equal(serial, replayed) {
				t.Error("full-checkpoint replay JSONL differs from serial")
			}
			if repRes.NewTrials != 0 {
				t.Errorf("full replay still ran %d trials", repRes.NewTrials)
			}
			if repRes.CyclesSpent != base.CyclesSpent {
				t.Errorf("full replay spent %.0f cycles, want %.0f (budget replay broken)",
					repRes.CyclesSpent, base.CyclesSpent)
			}
		})
	}
}

func TestCrossStrategyCheckpointReuse(t *testing.T) {
	// A grid checkpoint covers every full-size point, so descent over the
	// same cell should adopt all of its measurements and re-run nothing.
	_, grid := campaignBytes(t, StrategyGrid, core.Serial, nil)
	serial, base := campaignBytes(t, StrategyDescent, core.Serial, nil)
	reused, res := campaignBytes(t, StrategyDescent, core.Serial, grid.Records)
	if !bytes.Equal(serial, reused) {
		t.Error("descent over a grid checkpoint drifted from the fresh run")
	}
	if res.NewTrials != 0 || res.Reused != len(base.Records) {
		t.Errorf("descent reused %d and ran %d over a full grid checkpoint", res.Reused, res.NewTrials)
	}
	for i := range res.Records {
		if res.Records[i].Strategy != StrategyDescent || res.Records[i].Campaign != "descent/W1/A" {
			t.Fatalf("record %d kept the donor campaign's metadata: %s/%s",
				i, res.Records[i].Campaign, res.Records[i].Strategy)
		}
	}
}

func TestSinkStreamsScheduleOrder(t *testing.T) {
	var streamed []Record
	flushes := 0
	sink := func(recs []Record) error {
		flushes++
		streamed = append(streamed, recs...)
		return nil
	}
	res, err := Run(Spec{
		Strategy: StrategySHA, Space: detSpace(t),
		Workload: "W1", Machine: "A", Size: tinySize, Wave: 8,
	}, core.Serial, nil, sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flushes < 2 {
		t.Errorf("sink flushed %d times, expected per-wave streaming", flushes)
	}
	if len(streamed) != len(res.Records) {
		t.Fatalf("sink saw %d records, campaign has %d", len(streamed), len(res.Records))
	}
	for i := range streamed {
		if streamed[i].Trial != i || streamed[i].Key != res.Records[i].Key {
			t.Fatalf("sink stream out of schedule order at %d", i)
		}
	}
}

func TestSinkErrorAborts(t *testing.T) {
	boom := fmt.Errorf("disk full")
	_, err := Run(Spec{
		Strategy: StrategyGrid, Space: detSpace(t),
		Workload: "W1", Machine: "A", Size: tinySize, Wave: 8,
	}, core.Serial, nil, func([]Record) error { return boom }, nil)
	if err == nil {
		t.Fatal("sink failure swallowed")
	}
}

func TestProgressReporting(t *testing.T) {
	var calls int
	var lastTrials, lastReused int
	var lastSpent float64
	progress := func(trials, reused int, spent float64) {
		calls++
		lastTrials, lastReused, lastSpent = trials, reused, spent
	}
	res, err := Run(Spec{
		Strategy: StrategyGrid, Space: detSpace(t),
		Workload: "W1", Machine: "A", Size: tinySize, Wave: 8,
	}, core.Serial, nil, nil, progress)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never reported")
	}
	if lastTrials != len(res.Records) || lastReused != res.Reused || lastSpent != res.CyclesSpent {
		t.Errorf("final progress (%d, %d, %.0f) != result (%d, %d, %.0f)",
			lastTrials, lastReused, lastSpent, len(res.Records), res.Reused, res.CyclesSpent)
	}
}
