package tune

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
)

// This file turns campaign records into the reported surfaces: top-k
// configuration rankings, per-knob marginal gains, and the Figure 10
// flowchart-regret cells.

// TopConfigs ranks the full-fraction trials by cycles ascending (ties by
// schedule order) as report rows.
func TopConfigs(recs []Record) []report.ConfigRank {
	var idx []int
	for i := range recs {
		if recs[i].Frac == 1 {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return recs[idx[a]].WallCycles < recs[idx[b]].WallCycles
	})
	rows := make([]report.ConfigRank, len(idx))
	for i, j := range idx {
		rows[i] = report.ConfigRank{
			Key:    recs[j].Key,
			Cycles: recs[j].WallCycles,
			LAR:    recs[j].LAR,
		}
	}
	return rows
}

// DefaultCycles returns the OS-default point's full-fraction measurement
// from the records, 0 when the campaign never measured it.
func DefaultCycles(recs []Record) float64 {
	key := DefaultPoint().Key()
	for i := range recs {
		if recs[i].Frac == 1 && recs[i].Key == key {
			return recs[i].WallCycles
		}
	}
	return 0
}

// Marginals aggregates the full-fraction trials per axis value: the mean
// and best cycles over every configuration sharing that value. Meaningful
// on exhaustive-grid results, where each value is averaged over the same
// number of configurations; rows follow the space's axis and value order.
func Marginals(space Space, recs []Record) []report.KnobMarginal {
	type acc struct {
		sum  float64
		best float64
		n    int
	}
	var rows []report.KnobMarginal
	for _, axis := range space.Axes() {
		byValue := make(map[string]*acc, len(axis.Values))
		for i := range recs {
			if recs[i].Frac != 1 {
				continue
			}
			k, err := recs[i].trialKey()
			if err != nil {
				continue
			}
			v := axis.Of(k.Point)
			a := byValue[v]
			if a == nil {
				a = &acc{best: recs[i].WallCycles}
				byValue[v] = a
			}
			a.sum += recs[i].WallCycles
			if recs[i].WallCycles < a.best {
				a.best = recs[i].WallCycles
			}
			a.n++
		}
		for _, v := range axis.Values {
			a := byValue[v]
			if a == nil || a.n == 0 {
				continue
			}
			rows = append(rows, report.KnobMarginal{
				Axis:   axis.Name,
				Value:  v,
				Mean:   a.sum / float64(a.n),
				Best:   a.best,
				Trials: a.n,
			})
		}
	}
	return rows
}

// Regret compares the Figure 10 flowchart's advice for the campaign's
// workload against the campaign optimum. The advised point's measurement
// is looked up among the campaign's full-fraction trials — grid campaigns
// always contain it (the advisor only recommends members of the space);
// for adaptive strategies it may be absent, which is reported as an
// error rather than measured out-of-band.
func Regret(res *Result) (report.RegretRow, error) {
	tr, err := core.WorkloadTraits(res.Spec.Workload)
	if err != nil {
		return report.RegretRow{}, err
	}
	advised := FromRecommendation(core.Advise(tr))
	if res.Best == nil {
		return report.RegretRow{}, fmt.Errorf("tune: campaign %s has no full-size trials", res.Spec.ID())
	}
	key := advised.Key()
	for i := range res.Records {
		r := &res.Records[i]
		if r.Frac == 1 && r.Key == key {
			return report.RegretRow{
				Machine:       res.Spec.Machine,
				Workload:      res.Spec.Workload,
				AdvisedKey:    key,
				AdvisedCycles: r.WallCycles,
				BestKey:       res.Best.Key,
				BestCycles:    res.Best.WallCycles,
			}, nil
		}
	}
	return report.RegretRow{}, fmt.Errorf("tune: campaign %s never measured the advised configuration %s at full size",
		res.Spec.ID(), key)
}

// RegretWithFallback is Regret for adaptive strategies: when the
// campaign's schedule never reached the advised configuration at full
// size (successive halving may eliminate it early), the advised point is
// measured directly through the same RunTrial path — out of schedule and
// budget, but methodologically identical.
func RegretWithFallback(res *Result) (report.RegretRow, error) {
	row, err := Regret(res)
	if err == nil || res.Best == nil {
		return row, err
	}
	tr, terr := core.WorkloadTraits(res.Spec.Workload)
	if terr != nil {
		return report.RegretRow{}, terr
	}
	advised := FromRecommendation(core.Advise(tr))
	out, terr := RunTrial(TrialKey{
		Workload: res.Spec.Workload,
		Machine:  res.Spec.Machine,
		Point:    advised,
		Threads:  res.Spec.Threads,
		Seed:     res.Spec.Seed,
		Size:     res.Spec.Size,
	})
	if terr != nil {
		return report.RegretRow{}, terr
	}
	return report.RegretRow{
		Machine:       res.Spec.Machine,
		Workload:      res.Spec.Workload,
		AdvisedKey:    advised.Key(),
		AdvisedCycles: out.Cycles,
		BestKey:       res.Best.Key,
		BestCycles:    res.Best.WallCycles,
	}, nil
}

// CampaignsByID groups loaded records per campaign id in sorted order,
// preserving trial order within each — the shape the summary tooling
// consumes.
func CampaignsByID(recs []Record) map[string][]Record {
	m := make(map[string][]Record)
	for _, r := range recs {
		m[r.Campaign] = append(m[r.Campaign], r)
	}
	for _, id := range sortedKeys(m) {
		rs := m[id]
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].Trial < rs[b].Trial })
		m[id] = rs
	}
	return m
}
