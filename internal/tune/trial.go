package tune

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/query"
	"repro/internal/serve"
)

// Size scales a campaign's workloads. It deliberately mirrors the
// workload-relevant fields of experiments.Scale (which converts via
// experiments.TuneSize), so tuner trials and figure grids run identical
// kernels on identical datasets — and share the memoized builds.
type Size struct {
	AggRecords     int // W1 dataset rows
	AggCardinality int // W1 group-by cardinality
	JoinR          int // W3 build rows (probe side is 16x)
}

// Scaled shrinks the size to the given fraction of its rows, used by the
// successive-halving rungs. Every dimension scales together so cache and
// cardinality ratios are preserved; frac >= 1 returns the size unchanged
// (bit-for-bit, so full-fraction trials are comparable across strategies).
func (z Size) Scaled(frac float64) Size {
	if frac >= 1 {
		return z
	}
	scale := func(n int) int {
		v := int(float64(n) * frac)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Size{
		AggRecords:     scale(z.AggRecords),
		AggCardinality: scale(z.AggCardinality),
		JoinR:          scale(z.JoinR),
	}
}

// Workload is one tunable kernel: the simulated workload a campaign (or
// the advisor's -validate) races configurations on. Run executes the
// kernel on a configured machine and returns its wall cycles; dataset
// generation is memoized, so only the measured phase varies per trial.
type Workload struct {
	// ID is the paper's workload id, e.g. "W1".
	ID string
	// Name is the paper's workload title.
	Name string
	// Objective names what Run returns when it is not wall cycles (the
	// default, ""): "p99_latency" for the serving workload. Campaigns
	// minimize whatever Run returns either way; the label is stamped into
	// records so artifacts say what was optimized.
	Objective string
	// Run executes the kernel and returns the measured objective (wall
	// cycles unless Objective says otherwise).
	Run func(m *machine.Machine, z Size) float64
}

// Workloads lists the tunable kernels in paper order. W1 and W3 are the
// two the paper carries through the full knob space (W2/W4 are variants
// with the same axes); they use the same dataset seeds as the figure
// drivers, so campaigns reuse the memoized datasets. WS extends the set
// beyond the paper with the open-loop serving mix, tuned for p99 latency.
func Workloads() []Workload {
	return []Workload{
		{
			ID: "W1", Name: "Holistic Aggregation",
			Run: func(m *machine.Machine, z Size) float64 {
				recs := datagen.CachedGenerate(datagen.MovingClusterDist, z.AggRecords, z.AggCardinality, 11)
				out := query.Aggregate(m, query.AggregationSpec{
					Records:     recs,
					Cardinality: z.AggCardinality,
					Holistic:    true,
				})
				return out.Result.WallCycles
			},
		},
		{
			ID: "W3", Name: "Hash Join",
			Run: func(m *machine.Machine, z Size) float64 {
				tables := datagen.CachedJoin(z.JoinR, datagen.DefaultJoinRatio, 17)
				out := query.HashJoin(m, query.JoinSpec{Tables: tables})
				return out.Result.WallCycles
			},
		},
		{
			// WS is the open-loop serving mix: the campaign minimizes its
			// p99 latency instead of wall cycles, probing whether the
			// flowchart's throughput-derived advice holds for tails. The
			// arrival rate and SLOs are anchored to a calibrated
			// default-config service time, so every point of a sweep faces
			// the identical offered load.
			ID: "WS", Name: "Open-loop Serving Mix", Objective: "p99_latency",
			Run: func(m *machine.Machine, z Size) float64 {
				return serve.TuneObjective(m, z.AggRecords, z.AggCardinality, z.JoinR)
			},
		},
	}
}

// WorkloadByID resolves a workload id ("W1", "W3", "WS").
func WorkloadByID(id string) (Workload, error) {
	for _, w := range Workloads() {
		if w.ID == id {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("tune: unknown workload %q (have W1, W3, WS)", id)
}

// WorkloadIDs lists the tunable workload ids.
func WorkloadIDs() []string {
	ws := Workloads()
	ids := make([]string, len(ws))
	for i, w := range ws {
		ids[i] = w.ID
	}
	return ids
}

// MachineFor builds a fresh simulated machine by letter: the paper's A, B
// and C, or the large-topology extensions D (chiplet) and E (grid mesh).
func MachineFor(letter string) (*machine.Machine, error) {
	switch letter {
	case "A", "a":
		return machine.NewA(), nil
	case "B", "b":
		return machine.NewB(), nil
	case "C", "c":
		return machine.NewC(), nil
	case "D", "d":
		return machine.NewD(), nil
	case "E", "e":
		return machine.NewE(), nil
	}
	return nil, fmt.Errorf("tune: unknown machine %q (have A, B, C, D, E)", letter)
}

// TrialKey is the identity of one measurement: everything that determines
// its outcome. Identical keys produce identical results (the simulator is
// deterministic), which is what makes checkpoint/resume sound — a record
// found under a trial's key substitutes for re-running it.
type TrialKey struct {
	Workload string
	Machine  string
	Point    Point
	Threads  int
	Seed     uint64
	Size     Size
}

// TrialResult is one measurement: the simulated wall cycles plus the
// derived metrics each record carries.
type TrialResult struct {
	Cycles    float64
	LAR       float64
	Counters  machine.Counters
	Breakdown map[string]float64
}

// RunTrial executes one trial on a fresh machine with cycle attribution
// on (observation-only: profiled runs are bit-identical to unprofiled
// ones). This is the single measurement path shared by campaigns and the
// advisor's -validate, so the flowchart and the tuner cannot disagree on
// methodology.
func RunTrial(k TrialKey) (TrialResult, error) {
	wl, err := WorkloadByID(k.Workload)
	if err != nil {
		return TrialResult{}, err
	}
	m, err := MachineFor(k.Machine)
	if err != nil {
		return TrialResult{}, err
	}
	threads := k.Threads
	if threads <= 0 {
		threads = m.Spec.HardwareThreads()
	}
	m.Observe(machine.ObserveOptions{Profile: true})
	m.Configure(k.Point.Config(threads, k.Seed))
	cycles := wl.Run(m, k.Size)
	res := TrialResult{
		Cycles:   cycles,
		Counters: m.Counters(),
	}
	res.LAR = res.Counters.LAR()
	if p := m.Profile(); p != nil {
		res.Breakdown = p.TotalsByName()
	}
	return res, nil
}
