package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/tpch"
)

// renderAll runs a driver and flattens its tables into one byte stream.
func renderAll(t *testing.T, id string, s Scale) string {
	t.Helper()
	d, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	tabs, err := d(s)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tab := range tabs {
		tab.Render(&sb)
		tab.RenderCSV(&sb)
	}
	return sb.String()
}

// resetCaches clears the dataset memo tables so each configuration's run
// exercises its own cache fills.
func resetCaches() {
	datagen.ResetCache()
	tpch.ResetGenCache()
}

// TestDriversDeterministicUnderParallelism is the tentpole guarantee:
// every registered experiment renders byte-identical tables whether its
// grid cells run serially, on four workers, or on four workers twice.
func TestDriversDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every driver three times")
	}
	defer SetRunner(core.Runner{})
	for _, id := range Ids() {
		id := id
		t.Run(id, func(t *testing.T) {
			resetCaches()
			SetRunner(core.Runner{Workers: 1})
			serial := renderAll(t, id, Tiny)

			resetCaches()
			SetRunner(core.Runner{Workers: 4})
			par := renderAll(t, id, Tiny)
			if par != serial {
				t.Fatalf("%s: parallel-4 output differs from serial\nserial:\n%s\nparallel:\n%s",
					id, serial, par)
			}

			// Second parallel run without a cache reset: memoized datasets
			// must not perturb results either.
			SetRunner(core.Runner{Workers: 4})
			again := renderAll(t, id, Tiny)
			if again != par {
				t.Fatalf("%s: two parallel-4 runs differ", id)
			}
		})
	}
}

// TestRegistryCoversRenderables pins the registry's table counts so a
// driver that silently drops a table is caught.
func TestRegistryCoversRenderables(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	want := map[string]int{
		"fig2":      2, // time + overhead
		"fig5a":     2, // cycles + LAR
		"fig6w1":    3, // machines A, B, C
		"fig6w2":    3,
		"fig6w3":    3,
		"fig7":      5, // 4 index kinds + scalability
		"table2":    1,
		"ablation":  1,
		"preferred": 1,
	}
	for id, n := range want {
		d, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tabs, err := d(Tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs) != n {
			t.Errorf("%s: got %d tables, want %d", id, len(tabs), n)
		}
		for i, tab := range tabs {
			if tab == nil {
				t.Errorf("%s: table %d is nil", id, i)
			}
		}
	}
}

// TestLookupUnknown verifies id validation surfaces as an error, not a
// panic, so numabench can exit cleanly on typos.
func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if len(Ids()) != len(registry) {
		t.Fatal("Ids() must list every registered experiment")
	}
}
