package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/report"
	"repro/internal/tpch"
)

// renderAll runs a driver and flattens its tables into one byte stream.
func renderAll(t *testing.T, id string, s Scale) string {
	t.Helper()
	d, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(s, Options{})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tab := range res.Tables {
		tab.Render(&sb)
		tab.RenderCSV(&sb)
	}
	return sb.String()
}

// resetCaches clears the dataset memo tables so each configuration's run
// exercises its own cache fills.
func resetCaches() {
	datagen.ResetCache()
	tpch.ResetGenCache()
}

// TestDriversDeterministicUnderParallelism is the tentpole guarantee:
// every registered experiment renders byte-identical tables whether its
// grid cells run serially, on four workers, or on four workers twice.
func TestDriversDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every driver three times")
	}
	defer SetRunner(core.Runner{})
	for _, id := range Ids() {
		id := id
		t.Run(id, func(t *testing.T) {
			resetCaches()
			SetRunner(core.Runner{Workers: 1})
			serial := renderAll(t, id, Tiny)

			resetCaches()
			SetRunner(core.Runner{Workers: 4})
			par := renderAll(t, id, Tiny)
			if par != serial {
				t.Fatalf("%s: parallel-4 output differs from serial\nserial:\n%s\nparallel:\n%s",
					id, serial, par)
			}

			// Second parallel run without a cache reset: memoized datasets
			// must not perturb results either.
			SetRunner(core.Runner{Workers: 4})
			again := renderAll(t, id, Tiny)
			if again != par {
				t.Fatalf("%s: two parallel-4 runs differ", id)
			}
		})
	}
}

// traceArtifacts runs fig5a with cell tracing on and returns the Chrome
// trace export plus the JSONL stream with host_ns normalized to zero —
// every byte that should be reproducible.
func traceArtifacts(t *testing.T) (chrome, jsonl []byte) {
	t.Helper()
	resetCaches()
	d, err := Lookup("fig5a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var procs []report.TraceProcess
	for i := range res.Records {
		rec := &res.Records[i]
		ev := rec.TraceEvents()
		if len(ev) == 0 {
			t.Fatalf("cell %s recorded no events under SetCellTracing", rec.Cell)
		}
		procs = append(procs, report.TraceProcess{
			Name: res.Id + "/" + rec.Cell, FreqGHz: rec.FreqGHz, Events: ev,
		})
		rec.HostNS = 0 // the one nondeterministic field
	}
	var cb, jb bytes.Buffer
	if err := report.ChromeTrace(&cb, procs...); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jb, res.Records); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestTraceDeterministicUnderParallelism extends the byte-identity
// guarantee to the new artifacts: the Chrome trace export and the JSONL
// records (host_ns normalized) must not depend on the worker count.
func TestTraceDeterministicUnderParallelism(t *testing.T) {
	SetCellTracing(true)
	defer SetCellTracing(false)
	defer SetRunner(core.Runner{})

	SetRunner(core.Runner{Workers: 1})
	chromeSerial, jsonlSerial := traceArtifacts(t)
	if len(chromeSerial) == 0 || len(jsonlSerial) == 0 {
		t.Fatal("empty trace artifacts")
	}

	SetRunner(core.Runner{Workers: 4})
	chromePar, jsonlPar := traceArtifacts(t)
	if !bytes.Equal(chromeSerial, chromePar) {
		t.Error("Chrome trace differs between serial and parallel-4 runs")
	}
	if !bytes.Equal(jsonlSerial, jsonlPar) {
		t.Error("JSONL records differ between serial and parallel-4 runs")
	}

	SetRunner(core.Runner{Workers: 4})
	chromeAgain, jsonlAgain := traceArtifacts(t)
	if !bytes.Equal(chromePar, chromeAgain) {
		t.Error("Chrome trace differs between two parallel-4 runs")
	}
	if !bytes.Equal(jsonlPar, jsonlAgain) {
		t.Error("JSONL records differ between two parallel-4 runs")
	}
}

// profileArtifacts runs the profile driver and returns its JSONL stream
// (host_ns normalized) and folded-stack export — the acceptance artifacts
// that must not depend on the worker count.
func profileArtifacts(t *testing.T) (jsonl, folded []byte) {
	t.Helper()
	resetCaches()
	d, err := Lookup("profile")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var folds []report.FoldedProfile
	for i := range res.Records {
		rec := &res.Records[i]
		if rec.Profile == nil || len(rec.Breakdown) == 0 {
			t.Fatalf("cell %s has no cycle attribution", rec.Cell)
		}
		folds = append(folds, report.FoldedProfile{
			Name: res.Id + "/" + rec.Cell, Profile: rec.Profile,
		})
		rec.HostNS = 0 // the one nondeterministic field
	}
	var jb, fb bytes.Buffer
	if err := WriteJSONL(&jb, res.Records); err != nil {
		t.Fatal(err)
	}
	if err := report.FoldedStacks(&fb, folds...); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), fb.Bytes()
}

// TestProfileDeterministicUnderParallelism extends byte-identity to the
// profiler's artifacts: the profile experiment's JSONL records (host_ns
// normalized) and folded-stack export must match across serial, four
// workers, and a repeated parallel run.
func TestProfileDeterministicUnderParallelism(t *testing.T) {
	defer SetRunner(core.Runner{})

	SetRunner(core.Runner{Workers: 1})
	jsonlSerial, foldedSerial := profileArtifacts(t)
	if len(jsonlSerial) == 0 || len(foldedSerial) == 0 {
		t.Fatal("empty profile artifacts")
	}

	SetRunner(core.Runner{Workers: 4})
	jsonlPar, foldedPar := profileArtifacts(t)
	if !bytes.Equal(jsonlSerial, jsonlPar) {
		t.Error("profile JSONL differs between serial and parallel-4 runs")
	}
	if !bytes.Equal(foldedSerial, foldedPar) {
		t.Error("folded stacks differ between serial and parallel-4 runs")
	}

	SetRunner(core.Runner{Workers: 4})
	jsonlAgain, foldedAgain := profileArtifacts(t)
	if !bytes.Equal(jsonlPar, jsonlAgain) {
		t.Error("profile JSONL differs between two parallel-4 runs")
	}
	if !bytes.Equal(foldedPar, foldedAgain) {
		t.Error("folded stacks differ between two parallel-4 runs")
	}
}

// serveArtifacts runs the serve driver and returns its JSONL stream
// (host_ns normalized) plus the rendered latency tables — every byte the
// acceptance criteria require to be reproducible.
func serveArtifacts(t *testing.T) (jsonl []byte, tables string) {
	t.Helper()
	resetCaches()
	d, err := Lookup("serve")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		res.Records[i].HostNS = 0 // the one nondeterministic field
	}
	var jb bytes.Buffer
	if err := WriteJSONL(&jb, res.Records); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range res.Tables {
		tab.Render(&sb)
		tab.RenderCSV(&sb)
	}
	return jb.Bytes(), sb.String()
}

// TestServeDeterministicUnderParallelism extends the byte-identity
// guarantee to the serving artifacts: the serve experiment's JSONL records
// (host_ns normalized) and its latency/SLO/tail tables must match across
// serial, four workers, and a repeated parallel run.
func TestServeDeterministicUnderParallelism(t *testing.T) {
	defer SetRunner(core.Runner{})

	SetRunner(core.Runner{Workers: 1})
	jsonlSerial, tablesSerial := serveArtifacts(t)
	if len(jsonlSerial) == 0 || len(tablesSerial) == 0 {
		t.Fatal("empty serve artifacts")
	}

	SetRunner(core.Runner{Workers: 4})
	jsonlPar, tablesPar := serveArtifacts(t)
	if !bytes.Equal(jsonlSerial, jsonlPar) {
		t.Error("serve JSONL differs between serial and parallel-4 runs")
	}
	if tablesSerial != tablesPar {
		t.Error("serve tables differ between serial and parallel-4 runs")
	}

	SetRunner(core.Runner{Workers: 4})
	jsonlAgain, tablesAgain := serveArtifacts(t)
	if !bytes.Equal(jsonlPar, jsonlAgain) {
		t.Error("serve JSONL differs between two parallel-4 runs")
	}
	if tablesPar != tablesAgain {
		t.Error("serve tables differ between two parallel-4 runs")
	}
}

// TestServeAttributesTail pins the tentpole's attribution requirement:
// a Tiny serve run must attribute its p999 requests to profile buckets
// and report the campaign's regret row.
func TestServeAttributesTail(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	resetCaches()
	r, err := Serve(Tiny, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("got %d serving cells, want 4", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Out.Metrics.Requests == 0 {
			t.Errorf("%s: no measured requests", c.Name)
		}
		if len(c.Out.Tail.Buckets) == 0 {
			t.Errorf("%s: p999 tail not attributed to any profile bucket", c.Name)
		}
		if c.Out.Tail.Count == 0 {
			t.Errorf("%s: empty p999 tail set", c.Name)
		}
	}
	if r.Regret.AdvisedKey == "" || r.Regret.BestKey == "" || r.Regret.BestP99 <= 0 {
		t.Errorf("regret row incomplete: %+v", r.Regret)
	}
	if r.Regret.Objective != "p99_latency" {
		t.Errorf("regret objective %q", r.Regret.Objective)
	}
	// The campaign's records must carry the objective label so artifacts
	// say what was optimized.
	labeled := false
	for _, rec := range r.Records {
		if rec.Labels["objective"] == "p99_latency" {
			labeled = true
			break
		}
	}
	if !labeled {
		t.Error("no campaign record carries the objective label")
	}
}

// TestReadJSONLAcceptsV1 pins backward compatibility: records written
// under the v1 schema (no breakdown/profile fields) still validate.
func TestReadJSONLAcceptsV1(t *testing.T) {
	v1 := `{"schema":"repro/bench/v1","experiment":"fig2","cell":"c1",` +
		`"config":{"threads":1,"placement":"Sparse","policy":"FirstTouch",` +
		`"preferred_node":0,"allocator":"ptmalloc","autonuma":false,"thp":false,"seed":1},` +
		`"seed":1,"wall_cycles":100,"counters":{"thread_migrations":0,"cache_accesses":0,` +
		`"cache_misses":0,"tlb_misses":0,"local_accesses":0,"remote_accesses":0,` +
		`"minor_faults":0,"page_migrations":0,"huge_promotions":0,"huge_splits":0},"host_ns":5}` + "\n"
	recs, err := ReadJSONL(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Schema != SchemaV1 {
		t.Fatalf("unexpected parse: %+v", recs)
	}
	bad := strings.ReplaceAll(v1, "repro/bench/v1", "repro/bench/v0")
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// TestJSONLRoundTrip pushes real records through the writer and the
// strict reader: the round-trip must preserve every serialized field.
func TestJSONLRoundTrip(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	resetCaches()
	d, err := Lookup("fig3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("fig3 produced no records")
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Records) {
		t.Fatalf("round-trip: got %d records, want %d", len(got), len(res.Records))
	}
	for i := range got {
		want := res.Records[i]
		if got[i].Schema != SchemaVersion {
			t.Errorf("record %d: schema %q", i, got[i].Schema)
		}
		if got[i].Experiment != want.Experiment || got[i].Cell != want.Cell {
			t.Errorf("record %d: identity %s/%s, want %s/%s",
				i, got[i].Experiment, got[i].Cell, want.Experiment, want.Cell)
		}
		if got[i].WallCycles != want.WallCycles {
			t.Errorf("record %d: wall %v, want %v", i, got[i].WallCycles, want.WallCycles)
		}
		if got[i].Config != want.Config {
			t.Errorf("record %d: config %+v, want %+v", i, got[i].Config, want.Config)
		}
	}
}

// TestRecordsCoverCells checks a sample of drivers emit one record per
// grid cell with the experiment id stamped.
func TestRecordsCoverCells(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	want := map[string]int{
		"fig2":         35, // 7 allocators x 5 thread counts
		"fig5a":        8,  // 4 policies x {on, off}
		"fig5b-series": 4,  // 4 policies
		"table3":       2,
		"profile":      3,  // default, pinned, tuned
		"adapt":        30, // 3 machines x 2 workloads x 5 configs
		"serve-adapt":  6,  // 3 machines x {static, adaptive}
	}
	for id, n := range want {
		resetCaches()
		d, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(Tiny, Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Records) != n {
			t.Errorf("%s: got %d records, want %d", id, len(res.Records), n)
		}
		seen := map[string]bool{}
		for _, rec := range res.Records {
			if rec.Experiment != id {
				t.Errorf("%s: record %q stamped experiment %q", id, rec.Cell, rec.Experiment)
			}
			if rec.Cell == "" {
				t.Errorf("%s: record with empty cell name", id)
			}
			if seen[rec.Cell] {
				t.Errorf("%s: duplicate cell name %q", id, rec.Cell)
			}
			seen[rec.Cell] = true
			if rec.WallCycles <= 0 {
				t.Errorf("%s/%s: wall cycles %v", id, rec.Cell, rec.WallCycles)
			}
		}
	}
}

// TestRegistryCoversRenderables pins the registry's table counts so a
// driver that silently drops a table is caught.
func TestRegistryCoversRenderables(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	want := map[string]int{
		"fig2":         2, // time + overhead
		"fig5a":        2, // cycles + LAR
		"fig5b-series": 1,
		"fig6w1":       3, // machines A, B, C
		"fig6w2":       3,
		"fig6w3":       3,
		"fig7":         5, // 4 index kinds + scalability
		"table2":       1,
		"ablation":     1,
		"preferred":    1,
		"profile":      5, // Table III extended + breakdown + 3 matrices
		"tune":         4, // strategies + top-k + marginals + regret
		"serve":        4, // summary + histogram + tail attribution + regret
		"adapt":        2, // throughput comparison + orchestrator actions
		"serve-adapt":  3, // p999 delta + blame + decision journal
	}
	for id, n := range want {
		d, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(Tiny, Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) != n {
			t.Errorf("%s: got %d tables, want %d", id, len(res.Tables), n)
		}
		for i, tab := range res.Tables {
			if tab == nil {
				t.Errorf("%s: table %d is nil", id, i)
			}
		}
		if res.Id != id {
			t.Errorf("result id %q, want %q", res.Id, id)
		}
	}
}

// TestDescriptors checks the typed registry listing is complete and
// carries metadata for every entry.
func TestDescriptors(t *testing.T) {
	ds := Descriptors()
	if len(ds) != len(Ids()) {
		t.Fatalf("Descriptors() returned %d entries, want %d", len(ds), len(Ids()))
	}
	for _, d := range ds {
		if d.Id == "" || d.Title == "" || d.Artifact == "" || d.DefaultScale == "" {
			t.Errorf("descriptor %+v has empty metadata", d)
		}
	}
}

// TestLookupUnknown verifies id validation surfaces as an error, not a
// panic, so numabench can exit cleanly on typos.
func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if len(Ids()) != len(registry) {
		t.Fatal("Ids() must list every registered experiment")
	}
}
