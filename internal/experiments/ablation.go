package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/vmm"
)

// Ablations isolate the simulator's design choices, showing how much each
// modelled mechanism contributes to the headline result (W1 on Machine A,
// OS default vs tuned). They answer "would a simpler simulator have
// reproduced the paper?" — the reproducibility analogue of an ablation
// study.
type AblationResult struct {
	Names   []string
	Default []float64 // OS-default configuration wall cycles
	Tuned   []float64 // tuned configuration wall cycles
	Gain    []float64 // (default-tuned)/default under the ablation
	Records []Record
}

// ablation is one modified machine construction.
type ablation struct {
	name  string
	tweak func(m *machine.Machine)
}

// Ablate runs the headline W1 experiment under each ablation of the cost
// model.
func Ablate(s Scale) (AblationResult, error) {
	cases := []ablation{
		{"full model", func(m *machine.Machine) {}},
		{"no controller contention", func(m *machine.Machine) {
			m.P.ControllerCoeff = 0
		}},
		{"no interconnect sharing", func(m *machine.Machine) {
			m.P.LinkCoeff = 0
		}},
		{"no coherence transfers", func(m *machine.Machine) {
			m.P.CoherenceCycles = 0
		}},
		{"free AutoNUMA (no scan tax, free migrations)", func(m *machine.Machine) {
			m.P.AutoNUMASampleCost = 0
			m.P.AutoNUMAHintFault = 0
			m.P.AutoNUMAPageCost = 0
			m.P.AutoNUMAShootdown = 0
		}},
		{"free THP (no churn, splits or promote cost)", func(m *machine.Machine) {
			m.P.THPChurnCycles = 0
			m.P.THPSplitCost = 0
			m.P.THPPromoteCost = 0
		}},
		{"free thread migration", func(m *machine.Machine) {
			m.P.MigrationCycles = 0
		}},
	}
	configs := 2 // 0 = OS default, 1 = tuned
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, len(cases)*configs, func(i int) (cell, error) {
		start := startCell()
		c := cases[i/configs]
		var cfg machine.RunConfig
		which := "tuned"
		if i%configs == 0 {
			cfg = machine.DefaultConfig(16)
			cfg.Seed = 9
			which = "default"
		} else {
			cfg = machine.TunedConfig(16)
		}
		m := machineFor("A")
		c.tweak(m)
		m.Configure(cfg)
		w := runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		return cell{w, finishCell(start, c.name+"/"+which,
			map[string]string{"variant": c.name, "config": which}, m, w)}, nil
	})
	if err != nil {
		return AblationResult{}, err
	}
	var out AblationResult
	for _, c := range cells {
		out.Records = append(out.Records, c.rec)
	}
	for i, c := range cases {
		d, u := cells[i*configs].cycles, cells[i*configs+1].cycles
		out.Names = append(out.Names, c.name)
		out.Default = append(out.Default, d)
		out.Tuned = append(out.Tuned, u)
		out.Gain = append(out.Gain, (d-u)/d)
	}
	return out, nil
}

// Render renders the ablation table.
func (r AblationResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Ablation: contribution of each modelled mechanism to the W1 default-vs-tuned gain (Machine A)",
		Header: []string{"model variant", "default", "tuned", "gain"},
	}
	for i, n := range r.Names {
		t.AddRow(n, report.Billions(r.Default[i]), report.Billions(r.Tuned[i]), report.Pct(r.Gain[i]))
	}
	return t
}

// PolicySensitivity sweeps the Preferred policy's target node, showing the
// cost asymmetry the topology induces (Machine A's twisted ladder gives
// corner nodes worse average distance than central ones). This extends the
// paper's policy set with a question it raises but does not answer: does
// it matter *which* node Preferred picks?
type PolicySensitivityResult struct {
	Nodes   []int
	Cycles  []float64
	Records []Record
}

// PolicySensitivity measures W1 under Preferred for every target node.
func PolicySensitivity(s Scale) (PolicySensitivityResult, error) {
	var out PolicySensitivityResult
	nodes := machineFor("A").Spec.Topo.Nodes()
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, nodes, func(n int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Policy = vmm.Preferred
		cfg.PreferredNode = topology.NodeID(n)
		m.Configure(cfg)
		w := runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		return cell{w, finishCell(start, "node"+strconv.Itoa(n),
			map[string]string{"preferred_node": strconv.Itoa(n)}, m, w)}, nil
	})
	if err != nil {
		return PolicySensitivityResult{}, err
	}
	for n, c := range cells {
		out.Nodes = append(out.Nodes, n)
		out.Cycles = append(out.Cycles, c.cycles)
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders the sensitivity table.
func (r PolicySensitivityResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Extension: Preferred-policy target-node sensitivity, W1, Machine A",
		Header: []string{"preferred node", "billion cycles"},
	}
	for i, n := range r.Nodes {
		t.AddRow(n, report.Billions(r.Cycles[i]))
	}
	return t
}
