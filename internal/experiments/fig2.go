package experiments

import (
	"strconv"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
)

// Fig2Threads are the thread counts of the microbenchmark sweep.
var Fig2Threads = []int{1, 2, 4, 8, 16}

// Fig2Result holds the allocator microbenchmark outputs: execution time
// (Figure 2a) and memory consumption overhead, RSS over peak requested
// (Figure 2b), per allocator and thread count on Machine A.
type Fig2Result struct {
	Threads  []int
	Seconds  map[string][]float64
	Overhead map[string][]float64
	Records  []Record
}

// Fig2 runs the multi-threaded allocator microbenchmark: each thread
// performs s.MicrobenchOps operations — allocate-and-write or
// read-and-free — with allocation sizes distributed inversely proportional
// to the size class, as in Section III-A8. The allocator x thread-count
// cells are independent (each builds a fresh Machine A) and dispatch
// through the grid runner's worker pool.
func Fig2(s Scale) (Fig2Result, error) {
	names := alloc.Names()
	type cell struct {
		secs, over float64
		rec        Record
	}
	cells, err := core.Collect(runner, len(names)*len(Fig2Threads), func(i int) (cell, error) {
		name := names[i/len(Fig2Threads)]
		threads := Fig2Threads[i%len(Fig2Threads)]
		secs, over, rec := microbench(name, threads, s.MicrobenchOps)
		return cell{secs, over, rec}, nil
	})
	if err != nil {
		return Fig2Result{}, err
	}
	out := Fig2Result{
		Threads:  Fig2Threads,
		Seconds:  map[string][]float64{},
		Overhead: map[string][]float64{},
	}
	for i, c := range cells {
		name := names[i/len(Fig2Threads)]
		out.Seconds[name] = append(out.Seconds[name], c.secs)
		out.Overhead[name] = append(out.Overhead[name], c.over)
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// microbenchSizes returns the allocation-size menu with weights inversely
// proportional to the class size (smaller allocations more frequent).
func microbenchSizes() (sizes []uint64, cum []float64) {
	for s := uint64(64); s <= 16384; s *= 2 {
		sizes = append(sizes, s)
	}
	total := 0.0
	for _, s := range sizes {
		total += 1.0 / float64(s)
		cum = append(cum, total)
	}
	for i := range cum {
		cum[i] /= total
	}
	return sizes, cum
}

func microbench(allocName string, threads, ops int) (seconds, overhead float64, rec Record) {
	start := startCell()
	m := machineFor("A")
	cfg := baseConfig(threads)
	cfg.Allocator = allocName
	m.Configure(cfg)
	sizes, cum := microbenchSizes()
	maxLive := ops / 8
	if maxLive > 4096 {
		maxLive = 4096
	}
	if maxLive < 64 {
		maxLive = 64
	}
	res := m.Run(threads, func(t *machine.Thread) {
		type obj struct{ addr, size uint64 }
		// FIFO free list as a head-indexed slice with periodic compaction:
		// re-slicing the front (live = live[1:]) strands the backing array,
		// which then grows O(ops) under append instead of O(maxLive).
		var live []obj
		head := 0
		r := t.RNG()
		for i := 0; i < ops; i++ {
			if len(live)-head < maxLive && (len(live) == head || r.Bernoulli(0.6)) {
				u := r.Float64()
				k := 0
				for k < len(cum)-1 && u > cum[k] {
					k++
				}
				size := sizes[k]
				addr := t.Malloc(size)
				t.Write(addr, size)
				live = append(live, obj{addr, size})
			} else {
				o := live[head]
				head++
				if head >= maxLive { // live-count <= maxLive, so len(live) <= 2*maxLive here
					live = append(live[:0], live[head:]...)
					head = 0
				}
				t.Read(o.addr, o.size)
				t.Free(o.addr, o.size)
			}
		}
		for _, o := range live[head:] {
			t.Free(o.addr, o.size)
		}
	})
	st := m.Alloc.Stats()
	overhead = 1
	if st.PeakLiveBytes > 0 {
		overhead = float64(res.RSSBytes) / float64(st.PeakLiveBytes)
		if overhead < 1 {
			overhead = 1 // purged below peak: report as no overhead
		}
	}
	seconds = m.Seconds(res.WallCycles)
	rec = finishCell(start, allocName+"/"+strconv.Itoa(threads)+"T",
		map[string]string{"allocator": allocName, "threads": strconv.Itoa(threads)},
		m, res.WallCycles)
	rec.Extra = map[string]float64{
		"seconds":          seconds,
		"mem_overhead":     overhead,
		"lock_wait_cycles": st.LockWaitCycles,
	}
	return seconds, overhead, rec
}

// RenderTime renders Figure 2a as a table (allocator x threads,
// milliseconds — simulator scale makes paper-scale seconds sub-unit).
func (r Fig2Result) RenderTime() *report.Table {
	t := &report.Table{Title: "Fig 2a: allocator microbenchmark, execution time (ms), Machine A"}
	t.Header = append([]string{"allocator"}, threadHeaders(r.Threads)...)
	for _, name := range alloc.Names() {
		cells := []any{name}
		for _, v := range r.Seconds[name] {
			cells = append(cells, v*1000)
		}
		t.AddRow(cells...)
	}
	return t
}

// RenderOverhead renders Figure 2b (used/requested ratio).
func (r Fig2Result) RenderOverhead() *report.Table {
	t := &report.Table{Title: "Fig 2b: allocator memory overhead (used/requested), Machine A"}
	t.Header = append([]string{"allocator"}, threadHeaders(r.Threads)...)
	for _, name := range alloc.Names() {
		cells := []any{name}
		for _, v := range r.Overhead[name] {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	return t
}

func threadHeaders(threads []int) []string {
	h := make([]string, len(threads))
	for i, n := range threads {
		h[i] = strconv.Itoa(n) + "T"
	}
	return h
}
