package experiments

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/report"
)

// Driver runs one experiment id at a scale with typed options and
// returns its unified result: the rendered tables plus one structured
// record per grid cell. Drivers report malformed sweeps and panicking
// grid cells as errors instead of crashing the run.
type Driver func(s Scale, o Options) (*Result, error)

// Descriptor is one registry entry: the experiment's identity and
// metadata plus its driver. Obtain descriptors with Lookup or
// Descriptors; execute with Run.
type Descriptor struct {
	// Id is the registry key, e.g. "fig5a".
	Id string
	// Title is a one-line description of what the experiment measures.
	Title string
	// Artifact names the paper artifact reproduced, e.g. "Figure 5a/5b".
	Artifact string
	// DefaultScale is the scale EXPERIMENTS.md regenerates the artifact
	// at ("cal" unless noted).
	DefaultScale string
	// Options names the Options knobs this driver reads (empty for
	// experiments without any); numabench -list prints them.
	Options []string

	run Driver
}

// Run executes the experiment with the given options, stamping the result
// and every record with the experiment id. A zero Options runs every
// knob at its default (deprecated SetServeOptions values still apply as
// the fallback for callers that have not migrated).
func (d Descriptor) Run(s Scale, o Options) (*Result, error) {
	if o.Serve == (ServeOptions{}) {
		o.Serve = serveOpts
	}
	r, err := d.run(s, o)
	if err != nil {
		return nil, err
	}
	r.Id = d.Id
	for i := range r.Records {
		r.Records[i].Experiment = d.Id
	}
	return r, nil
}

// registry maps experiment ids to descriptors. Built once at package
// initialization; treat as read-only.
var registry = buildRegistry()

func buildRegistry() map[string]Descriptor {
	ds := []Descriptor{
		{
			Id: "fig2", Title: "Allocator microbenchmark: time and memory overhead",
			Artifact: "Figure 2a/2b", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig2(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.RenderTime(), r.RenderOverhead()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig3", Title: "OS scheduler variance vs Sparse affinity, consecutive W1 runs",
			Artifact: "Figure 3", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig3(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "table2", Title: "Simulated machine specifications",
			Artifact: "Table II", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				return &Result{Tables: []*report.Table{Table2()}}, nil
			},
		},
		{
			Id: "table3", Title: "Perf-counter profile, default vs Sparse placement",
			Artifact: "Table III", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Table3(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig4", Title: "Sparse vs Dense thread affinity across datasets",
			Artifact: "Figure 4", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig4(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig5a", Title: "AutoNUMA effect on runtime and locality by placement policy",
			Artifact: "Figure 5a/5b", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig5a(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render(), r.RenderLAR()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig5b-series", Title: "Local access ratio over time from counter snapshots",
			Artifact: "Figure 5b (time series)", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig5bSeries(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig5c", Title: "THP impact per memory allocator",
			Artifact: "Figure 5c", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig5c(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig5d", Title: "Combined AutoNUMA+THP effect across machines",
			Artifact: "Figure 5d", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig5d(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		machineSweep("fig6w1", "W1 holistic aggregation, allocator x policy grids", "Figure 6a-6c", Fig6W1),
		machineSweep("fig6w2", "W2 distributive aggregation, allocator x policy grids", "Figure 6d-6f", Fig6W2),
		machineSweep("fig6w3", "W3 hash join, allocator x policy grids", "Figure 6g-6i", Fig6W3),
		{
			Id: "fig6j", Title: "W1 by dataset distribution and allocator",
			Artifact: "Figure 6j", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig6j(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig7", Title: "Index nested-loop join grids and best-config phase split",
			Artifact: "Figure 7a-7e", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				// Render the four grids and derive Figure 7e from them
				// instead of re-running every sweep: deterministic cells
				// make the two byte-identical, at half the wall time.
				out := &Result{}
				var grids []Fig7Result
				for _, k := range index.Kinds() {
					r, err := Fig7(s, k)
					if err != nil {
						return nil, err
					}
					out.Tables = append(out.Tables, r.Render())
					out.Records = append(out.Records, r.Records...)
					grids = append(grids, r)
				}
				out.Tables = append(out.Tables, Fig7eFromGrids(grids).Render())
				return out, nil
			},
		},
		{
			Id: "fig8", Title: "TPC-H latency reduction, tuned vs default, five engines",
			Artifact: "Figure 8", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig8(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig9", Title: "TPC-H Q5/Q18 latency by allocator, MonetDB",
			Artifact: "Figure 9", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig9(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "fig10", Title: "Decision-flowchart validation against the measured optimum",
			Artifact: "Figure 10", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Fig10(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "profile", Title: "Cycle attribution: component breakdown and node matrices, default vs pinned vs tuned",
			Artifact: "Table III (extended)", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Profile(s)
				if err != nil {
					return nil, err
				}
				tables := []*report.Table{r.RenderTable3Extended(), r.RenderBreakdown()}
				tables = append(tables, r.RenderMatrices()...)
				return &Result{Tables: tables, Records: r.Records}, nil
			},
		},
		{
			Id: "tune", Title: "Configuration-space tuning campaigns and flowchart regret",
			Artifact: "Figure 10 (extended)", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Tune(s)
				if err != nil {
					return nil, err
				}
				tables := []*report.Table{r.RenderStrategies(), r.RenderTop(),
					r.RenderMarginals(), r.RenderRegret()}
				return &Result{Tables: tables, Records: r.Records}, nil
			},
		},
		{
			Id: "bigtopo", Title: "Flowchart regret on large topologies (chiplet D, grid-mesh E)",
			Artifact: "extension", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := BigTopo(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.RenderRegret()}, Records: r.Records}, nil
			},
		},
		{
			Id: "serve", Title: "Open-loop serving: tail latency, SLO attainment and p999 attribution",
			Artifact: "extension", DefaultScale: "cal",
			Options: []string{"serve-requests", "serve-util"},
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Serve(s, o.Serve)
				if err != nil {
					return nil, err
				}
				tables := []*report.Table{r.RenderSummary(), r.RenderHistogram(),
					r.RenderTail(), r.RenderRegret()}
				return &Result{Tables: tables, Records: r.Records, Spans: r.Spans}, nil
			},
		},
		{
			Id: "serve-adapt", Title: "Orchestrator under serving: p999 delta, decision journal and span blame",
			Artifact: "extension", DefaultScale: "cal",
			Options: []string{"serve-requests", "serve-util", "adapt-period", "adapt-budget"},
			run: func(s Scale, o Options) (*Result, error) {
				r, err := ServeAdapt(s, o)
				if err != nil {
					return nil, err
				}
				return &Result{
					Tables:  []*report.Table{r.RenderP999(), r.RenderBlame(), r.RenderDecisions()},
					Records: r.Records,
					Spans:   r.Spans,
				}, nil
			},
		},
		{
			Id: "adapt", Title: "Online adaptive placement vs OS default and the static tune optimum",
			Artifact: "extension", DefaultScale: "cal",
			Options: []string{"adapt-period", "adapt-budget"},
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Adapt(s, o.Adapt)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render(), r.RenderActions()}, Records: r.Records}, nil
			},
		},
		{
			Id: "numaware", Title: "NUMA-aware operators (MPSM join, chunked storage) vs the agnostic flowchart",
			Artifact: "extension", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Numaware(s)
				if err != nil {
					return nil, err
				}
				return &Result{
					Tables:  []*report.Table{r.RenderJoin(), r.RenderStorage(), r.RenderVerdict()},
					Records: r.Records,
				}, nil
			},
		},
		{
			Id: "ablation", Title: "Cost-model ablations of the headline default-vs-tuned gain",
			Artifact: "extension", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := Ablate(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
		{
			Id: "preferred", Title: "Preferred-policy target-node sensitivity",
			Artifact: "extension", DefaultScale: "cal",
			run: func(s Scale, o Options) (*Result, error) {
				r, err := PolicySensitivity(s)
				if err != nil {
					return nil, err
				}
				return &Result{Tables: []*report.Table{r.Render()}, Records: r.Records}, nil
			},
		},
	}
	m := make(map[string]Descriptor, len(ds))
	for _, d := range ds {
		if _, dup := m[d.Id]; dup {
			panic("experiments: duplicate registry id " + d.Id)
		}
		m[d.Id] = d
	}
	return m
}

// machineSweep adapts the per-machine Figure 6 drivers into a Descriptor
// that renders the grid for Machines A, B and C.
func machineSweep(id, title, artifact string, fn func(s Scale, mc string) (Fig6Result, error)) Descriptor {
	return Descriptor{
		Id: id, Title: title, Artifact: artifact, DefaultScale: "cal",
		run: func(s Scale, o Options) (*Result, error) {
			out := &Result{}
			for _, mc := range []string{"A", "B", "C"} {
				r, err := fn(s, mc)
				if err != nil {
					return nil, err
				}
				out.Tables = append(out.Tables, r.Render())
				out.Records = append(out.Records, r.Records...)
			}
			return out, nil
		},
	}
}

// Ids returns every experiment id in sorted order.
func Ids() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry { //rangecheck:ok keys sorted immediately below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Descriptors returns every registry entry sorted by id.
func Descriptors() []Descriptor {
	ds := make([]Descriptor, 0, len(registry))
	for _, id := range Ids() {
		ds = append(ds, registry[id])
	}
	return ds
}

// Lookup resolves an experiment id to its descriptor.
func Lookup(id string) (Descriptor, error) {
	d, ok := registry[id]
	if !ok {
		return Descriptor{}, fmt.Errorf("unknown experiment %q", id)
	}
	return d, nil
}
