package experiments

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/report"
)

// Driver runs one experiment id at a scale and returns its rendered
// tables. Drivers report malformed sweeps and panicking grid cells as
// errors instead of crashing the run.
type Driver func(s Scale) ([]*report.Table, error)

// registry maps experiment ids to drivers. Built once at package
// initialization; treat as read-only.
var registry = map[string]Driver{
	"fig2": func(s Scale) ([]*report.Table, error) {
		r, err := Fig2(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.RenderTime(), r.RenderOverhead()}, nil
	},
	"fig3": func(s Scale) ([]*report.Table, error) {
		r, err := Fig3(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"table2": func(s Scale) ([]*report.Table, error) {
		return []*report.Table{Table2()}, nil
	},
	"table3": func(s Scale) ([]*report.Table, error) {
		r, err := Table3(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig4": func(s Scale) ([]*report.Table, error) {
		r, err := Fig4(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig5a": func(s Scale) ([]*report.Table, error) {
		r, err := Fig5a(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render(), r.RenderLAR()}, nil
	},
	"fig5c": func(s Scale) ([]*report.Table, error) {
		r, err := Fig5c(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig5d": func(s Scale) ([]*report.Table, error) {
		r, err := Fig5d(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig6w1": machineSweep(Fig6W1),
	"fig6w2": machineSweep(Fig6W2),
	"fig6w3": machineSweep(Fig6W3),
	"fig6j": func(s Scale) ([]*report.Table, error) {
		r, err := Fig6j(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig7": func(s Scale) ([]*report.Table, error) {
		// Render the four grids and derive Figure 7e from them instead of
		// re-running every sweep: deterministic cells make the two
		// byte-identical, at half the wall time.
		var ts []*report.Table
		var grids []Fig7Result
		for _, k := range index.Kinds() {
			r, err := Fig7(s, k)
			if err != nil {
				return nil, err
			}
			ts = append(ts, r.Render())
			grids = append(grids, r)
		}
		return append(ts, Fig7eFromGrids(grids).Render()), nil
	},
	"fig8": func(s Scale) ([]*report.Table, error) {
		r, err := Fig8(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig9": func(s Scale) ([]*report.Table, error) {
		r, err := Fig9(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"fig10": func(s Scale) ([]*report.Table, error) {
		r, err := Fig10(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"ablation": func(s Scale) ([]*report.Table, error) {
		r, err := Ablate(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
	"preferred": func(s Scale) ([]*report.Table, error) {
		r, err := PolicySensitivity(s)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Render()}, nil
	},
}

// machineSweep adapts the per-machine Figure 6 drivers into a Driver that
// renders the grid for Machines A, B and C.
func machineSweep(fn func(s Scale, mc string) (Fig6Result, error)) Driver {
	return func(s Scale) ([]*report.Table, error) {
		var ts []*report.Table
		for _, mc := range []string{"A", "B", "C"} {
			r, err := fn(s, mc)
			if err != nil {
				return nil, err
			}
			ts = append(ts, r.Render())
		}
		return ts, nil
	}
}

// Ids returns every experiment id in sorted order.
func Ids() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup resolves an experiment id to its driver.
func Lookup(id string) (Driver, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	return d, nil
}
