package experiments

import "testing"

func TestNumawareShape(t *testing.T) {
	r, err := Numaware(Tiny)
	if err != nil {
		t.Fatal(err)
	}

	// All 9 join cells present, with measured time and the same answer.
	if len(r.Records) != 9+6 {
		t.Fatalf("got %d records, want 15", len(r.Records))
	}
	base := r.Join["A"]["agnostic-tuned"]
	if base.Matches == 0 {
		t.Fatal("agnostic-tuned found no matches")
	}
	for _, mc := range numawareMachines {
		for _, v := range numawareVariants {
			c, ok := r.Join[mc][v]
			if !ok {
				t.Fatalf("missing join cell %s/%s", mc, v)
			}
			if c.Wall <= 0 {
				t.Errorf("join %s/%s charged no time", mc, v)
			}
			// MPSM provably equal to HashJoin (the driver also enforces
			// this and errors out, but assert directly too).
			if c.Matches != base.Matches || c.Checksum != base.Checksum {
				t.Errorf("join %s/%s answer (%d, %d) != agnostic (%d, %d)",
					mc, v, c.Matches, c.Checksum, base.Matches, base.Checksum)
			}
			if sum := c.Build + c.Probe; sum < c.Wall*0.999 || sum > c.Wall*1.001 {
				t.Errorf("join %s/%s phase split %v does not account for wall %v", mc, v, sum, c.Wall)
			}
		}
	}

	// Chunked storage must drop the remote-DRAM cycle share vs the
	// single region on at least 2 of 3 machines (the acceptance gate).
	drops := 0
	for _, mc := range numawareMachines {
		s, okS := r.Storage[mc]["single"]
		c, okC := r.Storage[mc]["chunked"]
		if !okS || !okC {
			t.Fatalf("missing storage cells for machine %s", mc)
		}
		if s.Wall <= 0 || c.Wall <= 0 {
			t.Errorf("storage %s charged no time", mc)
		}
		if c.RemoteSh < s.RemoteSh {
			drops++
		}
		t.Logf("machine %s: remote share single %.3f chunked %.3f", mc, s.RemoteSh, c.RemoteSh)
	}
	if drops < 2 {
		t.Errorf("chunked storage dropped remote share on only %d of 3 machines", drops)
	}

	// Tables render without panicking and carry the expected shapes.
	if got := len(r.RenderJoin().Rows); got != 9 {
		t.Errorf("join table has %d rows, want 9", got)
	}
	if got := len(r.RenderStorage().Rows); got != 3 {
		t.Errorf("storage table has %d rows, want 3", got)
	}
	if got := len(r.RenderVerdict().Rows); got != 3 {
		t.Errorf("verdict table has %d rows, want 3", got)
	}
}
