package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
)

// Fig3Result holds Figure 3: relative runtimes of consecutive
// unaffinitized W1 runs against the affinitized (Sparse) runtime.
type Fig3Result struct {
	SparseCycles float64
	Relative     []float64 // one per run; >= 1 means slower than Sparse
	Records      []Record
}

// Fig3 runs W1 once under Sparse affinity, then s.Fig3Runs times under the
// OS scheduler (each run draws a fresh migration behaviour), reporting
// runtimes relative to the affinitized run. Cell 0 is the Sparse baseline;
// the unaffinitized runs follow, each a fresh machine with its own seed.
func Fig3(s Scale) (Fig3Result, error) {
	mkMachine := func(place machine.Placement, seed uint64) *machine.Machine {
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Placement = place
		cfg.Seed = seed
		m.Configure(cfg)
		return m
	}
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, 1+s.Fig3Runs, func(i int) (cell, error) {
		start := startCell()
		var m *machine.Machine
		name := "sparse"
		if i == 0 {
			m = mkMachine(machine.PlaceSparse, 1)
		} else {
			m = mkMachine(machine.PlaceNone, uint64(100+i-1))
			name = "run" + strconv.Itoa(i)
		}
		w := runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		return cell{w, finishCell(start, name,
			map[string]string{"placement": m.Config().Placement.String(), "run": strconv.Itoa(i)},
			m, w)}, nil
	})
	if err != nil {
		return Fig3Result{}, err
	}
	out := Fig3Result{SparseCycles: cells[0].cycles}
	for _, c := range cells {
		out.Records = append(out.Records, c.rec)
	}
	for _, c := range cells[1:] {
		out.Relative = append(out.Relative, c.cycles/out.SparseCycles)
	}
	return out, nil
}

// Render renders Figure 3.
func (r Fig3Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 3: OS scheduler vs Sparse affinity, consecutive W1 runs, Machine A",
		Header: []string{"run", "relative runtime (no affinity / Sparse)"},
	}
	for i, rel := range r.Relative {
		t.AddRow(strconv.Itoa(i+1), rel)
	}
	return t
}

// Table3Result holds Table III: the perf-counter profile of W1 under the
// default OS scheduler versus Sparse pinning.
type Table3Result struct {
	Default  machine.Counters
	Modified machine.Counters
	Records  []Record
}

// Table3 profiles W1 on Machine A under the OS scheduler (a
// migration-heavy draw, as the paper's default exhibited) and under the
// Sparse policy.
func Table3(s Scale) (Table3Result, error) {
	placements := []machine.Placement{machine.PlaceNone, machine.PlaceSparse}
	names := []string{"default", "modified"}
	type cell struct {
		counters machine.Counters
		rec      Record
	}
	cells, err := core.Collect(runner, len(placements), func(i int) (cell, error) {
		start := startCell()
		place := placements[i]
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Placement = place
		cfg.AutoNUMA = place == machine.PlaceNone // OS default keeps balancing on
		cfg.Seed = 104                            // a representative noisy draw
		m.Configure(cfg)
		res := runW1(m, s, datagen.MovingClusterDist).Result
		return cell{res.Counters, finishCell(start, names[i],
			map[string]string{"placement": place.String()}, m, res.WallCycles)}, nil
	})
	if err != nil {
		return Table3Result{}, err
	}
	return Table3Result{
		Default:  cells[0].counters,
		Modified: cells[1].counters,
		Records:  []Record{cells[0].rec, cells[1].rec},
	}, nil
}

// Render renders Table III with percent changes.
func (r Table3Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Table III: profiling thread placement, W1 Machine A (default vs Sparse)",
		Header: []string{"metric", "default", "modified", "change"},
	}
	row := func(name string, a, b uint64) {
		change := "n/a"
		if a > 0 {
			change = report.Pct(float64(int64(b)-int64(a)) / float64(a))
		}
		t.AddRow(name, a, b, change)
	}
	row("thread migrations", r.Default.ThreadMigrations, r.Modified.ThreadMigrations)
	row("cache misses", r.Default.CacheMisses, r.Modified.CacheMisses)
	row("local memory accesses", r.Default.LocalAccesses, r.Modified.LocalAccesses)
	row("remote memory accesses", r.Default.RemoteAccesses, r.Modified.RemoteAccesses)
	t.AddRow("local access ratio",
		r.Default.LAR(), r.Modified.LAR(),
		report.Pct((r.Modified.LAR()-r.Default.LAR())/r.Default.LAR()))
	return t
}

// Fig4Threads are the worker counts swept in Figure 4.
var Fig4Threads = []int{2, 4, 8, 16}

// Fig4Result holds Figure 4: Dense vs Sparse runtimes per dataset and
// thread count on Machine A.
type Fig4Result struct {
	Datasets []datagen.Distribution
	Threads  []int
	// Cycles[dist][i] for Threads[i], per placement.
	Dense   map[datagen.Distribution][]float64
	Sparse  map[datagen.Distribution][]float64
	Records []Record
}

// Fig4 compares the Sparse and Dense affinitization strategies on W1
// across datasets and thread counts.
func Fig4(s Scale) (Fig4Result, error) {
	out := Fig4Result{
		Datasets: datagen.Distributions(),
		Threads:  Fig4Threads,
		Dense:    map[datagen.Distribution][]float64{},
		Sparse:   map[datagen.Distribution][]float64{},
	}
	places := []machine.Placement{machine.PlaceDense, machine.PlaceSparse}
	nCells := len(out.Datasets) * len(Fig4Threads) * len(places)
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, nCells, func(i int) (cell, error) {
		start := startCell()
		dist := out.Datasets[i/(len(Fig4Threads)*len(places))]
		threads := Fig4Threads[i/len(places)%len(Fig4Threads)]
		place := places[i%len(places)]
		m := machineFor("A")
		cfg := baseConfig(threads)
		cfg.Placement = place
		m.Configure(cfg)
		w := runW1(m, s, dist).Result.WallCycles
		return cell{w, finishCell(start,
			string(dist)+"/"+strconv.Itoa(threads)+"T/"+place.String(),
			map[string]string{
				"dataset":   string(dist),
				"threads":   strconv.Itoa(threads),
				"placement": place.String(),
			}, m, w)}, nil
	})
	if err != nil {
		return Fig4Result{}, err
	}
	for i, c := range cells {
		dist := out.Datasets[i/(len(Fig4Threads)*len(places))]
		if places[i%len(places)] == machine.PlaceDense {
			out.Dense[dist] = append(out.Dense[dist], c.cycles)
		} else {
			out.Sparse[dist] = append(out.Sparse[dist], c.cycles)
		}
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders Figure 4.
func (r Fig4Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 4: Sparse vs Dense thread affinity, W1, Machine A (billion cycles)",
		Header: []string{"dataset", "threads", "Dense", "Sparse"},
	}
	for _, dist := range r.Datasets {
		for i, threads := range r.Threads {
			t.AddRow(string(dist), threads,
				report.Billions(r.Dense[dist][i]),
				report.Billions(r.Sparse[dist][i]))
		}
	}
	return t
}
