package experiments

import (
	"strconv"

	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
)

// Fig3Result holds Figure 3: relative runtimes of consecutive
// unaffinitized W1 runs against the affinitized (Sparse) runtime.
type Fig3Result struct {
	SparseCycles float64
	Relative     []float64 // one per run; >= 1 means slower than Sparse
}

// Fig3 runs W1 once under Sparse affinity, then s.Fig3Runs times under the
// OS scheduler (each run draws a fresh migration behaviour), reporting
// runtimes relative to the affinitized run.
func Fig3(s Scale) Fig3Result {
	mkMachine := func(place machine.Placement, seed uint64) *machine.Machine {
		m := machine.NewA()
		cfg := baseConfig(16)
		cfg.Placement = place
		cfg.Seed = seed
		m.Configure(cfg)
		return m
	}
	sparse := runW1(mkMachine(machine.PlaceSparse, 1), s, datagen.MovingClusterDist)
	out := Fig3Result{SparseCycles: sparse.Result.WallCycles}
	for run := 0; run < s.Fig3Runs; run++ {
		res := runW1(mkMachine(machine.PlaceNone, uint64(100+run)), s, datagen.MovingClusterDist)
		out.Relative = append(out.Relative, res.Result.WallCycles/out.SparseCycles)
	}
	return out
}

// Render renders Figure 3.
func (r Fig3Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 3: OS scheduler vs Sparse affinity, consecutive W1 runs, Machine A",
		Header: []string{"run", "relative runtime (no affinity / Sparse)"},
	}
	for i, rel := range r.Relative {
		t.AddRow(strconv.Itoa(i+1), rel)
	}
	return t
}

// Table3Result holds Table III: the perf-counter profile of W1 under the
// default OS scheduler versus Sparse pinning.
type Table3Result struct {
	Default  machine.Counters
	Modified machine.Counters
}

// Table3 profiles W1 on Machine A under the OS scheduler (a
// migration-heavy draw, as the paper's default exhibited) and under the
// Sparse policy.
func Table3(s Scale) Table3Result {
	profile := func(place machine.Placement) machine.Counters {
		m := machine.NewA()
		cfg := baseConfig(16)
		cfg.Placement = place
		cfg.AutoNUMA = place == machine.PlaceNone // OS default keeps balancing on
		cfg.Seed = 104                            // a representative noisy draw
		m.Configure(cfg)
		out := runW1(m, s, datagen.MovingClusterDist)
		return out.Result.Counters
	}
	return Table3Result{
		Default:  profile(machine.PlaceNone),
		Modified: profile(machine.PlaceSparse),
	}
}

// Render renders Table III with percent changes.
func (r Table3Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Table III: profiling thread placement, W1 Machine A (default vs Sparse)",
		Header: []string{"metric", "default", "modified", "change"},
	}
	row := func(name string, a, b uint64) {
		change := "n/a"
		if a > 0 {
			change = report.Pct(float64(int64(b)-int64(a)) / float64(a))
		}
		t.AddRow(name, a, b, change)
	}
	row("thread migrations", r.Default.ThreadMigrations, r.Modified.ThreadMigrations)
	row("cache misses", r.Default.CacheMisses, r.Modified.CacheMisses)
	row("local memory accesses", r.Default.LocalAccesses, r.Modified.LocalAccesses)
	row("remote memory accesses", r.Default.RemoteAccesses, r.Modified.RemoteAccesses)
	t.AddRow("local access ratio",
		r.Default.LAR(), r.Modified.LAR(),
		report.Pct((r.Modified.LAR()-r.Default.LAR())/r.Default.LAR()))
	return t
}

// Fig4Threads are the worker counts swept in Figure 4.
var Fig4Threads = []int{2, 4, 8, 16}

// Fig4Result holds Figure 4: Dense vs Sparse runtimes per dataset and
// thread count on Machine A.
type Fig4Result struct {
	Datasets []datagen.Distribution
	Threads  []int
	// Cycles[dist][i] for Threads[i], per placement.
	Dense  map[datagen.Distribution][]float64
	Sparse map[datagen.Distribution][]float64
}

// Fig4 compares the Sparse and Dense affinitization strategies on W1
// across datasets and thread counts.
func Fig4(s Scale) Fig4Result {
	out := Fig4Result{
		Datasets: datagen.Distributions(),
		Threads:  Fig4Threads,
		Dense:    map[datagen.Distribution][]float64{},
		Sparse:   map[datagen.Distribution][]float64{},
	}
	for _, dist := range out.Datasets {
		for _, threads := range Fig4Threads {
			for _, place := range []machine.Placement{machine.PlaceDense, machine.PlaceSparse} {
				m := machine.NewA()
				cfg := baseConfig(threads)
				cfg.Placement = place
				m.Configure(cfg)
				res := runW1(m, s, dist)
				if place == machine.PlaceDense {
					out.Dense[dist] = append(out.Dense[dist], res.Result.WallCycles)
				} else {
					out.Sparse[dist] = append(out.Sparse[dist], res.Result.WallCycles)
				}
			}
		}
	}
	return out
}

// Render renders Figure 4.
func (r Fig4Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 4: Sparse vs Dense thread affinity, W1, Machine A (billion cycles)",
		Header: []string{"dataset", "threads", "Dense", "Sparse"},
	}
	for _, dist := range r.Datasets {
		for i, threads := range r.Threads {
			t.AddRow(string(dist), threads,
				report.Billions(r.Dense[dist][i]),
				report.Billions(r.Sparse[dist][i]))
		}
	}
	return t
}
