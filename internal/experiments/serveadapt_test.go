package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/span"
)

// serveAdaptArtifacts runs the serve-adapt driver and returns its JSONL
// records (host_ns normalized), its rendered tables (p999 delta, blame,
// decision journal) and the span JSONL stream — every byte the
// acceptance criteria require to be reproducible.
func serveAdaptArtifacts(t *testing.T) (jsonl []byte, tables string, spans []byte) {
	t.Helper()
	resetCaches()
	d, err := Lookup("serve-adapt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		res.Records[i].HostNS = 0 // the one nondeterministic field
	}
	var jb bytes.Buffer
	if err := WriteJSONL(&jb, res.Records); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range res.Tables {
		tab.Render(&sb)
		tab.RenderCSV(&sb)
	}
	var pb bytes.Buffer
	if err := span.WriteJSONL(&pb, res.Spans); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), sb.String(), pb.Bytes()
}

// TestServeAdaptDeterministicUnderParallelism extends the byte-identity
// guarantee to the orchestrator-under-serving artifacts: records, the
// three rendered tables and the span JSONL must match across serial,
// four workers, and a repeated parallel run.
func TestServeAdaptDeterministicUnderParallelism(t *testing.T) {
	defer SetRunner(core.Runner{})

	SetRunner(core.Runner{Workers: 1})
	jsonlSerial, tablesSerial, spansSerial := serveAdaptArtifacts(t)
	if len(jsonlSerial) == 0 || len(tablesSerial) == 0 || len(spansSerial) == 0 {
		t.Fatal("empty serve-adapt artifacts")
	}

	SetRunner(core.Runner{Workers: 4})
	jsonlPar, tablesPar, spansPar := serveAdaptArtifacts(t)
	if !bytes.Equal(jsonlSerial, jsonlPar) {
		t.Error("serve-adapt JSONL differs between serial and parallel-4 runs")
	}
	if tablesSerial != tablesPar {
		t.Error("serve-adapt tables differ between serial and parallel-4 runs")
	}
	if !bytes.Equal(spansSerial, spansPar) {
		t.Error("serve-adapt span JSONL differs between serial and parallel-4 runs")
	}

	SetRunner(core.Runner{Workers: 4})
	jsonlAgain, tablesAgain, spansAgain := serveAdaptArtifacts(t)
	if !bytes.Equal(jsonlPar, jsonlAgain) {
		t.Error("serve-adapt JSONL differs between two parallel-4 runs")
	}
	if tablesPar != tablesAgain {
		t.Error("serve-adapt tables differ between two parallel-4 runs")
	}
	if !bytes.Equal(spansPar, spansAgain) {
		t.Error("serve-adapt span JSONL differs between two parallel-4 runs")
	}
}

// TestServeSpansObservationOnly is the tentpole's no-perturbation
// guarantee at the experiment seam: the serve driver must emit
// byte-identical records and tables whether span collection is on or
// off — spans are assembled purely from telemetry reads and never touch
// the simulation.
func TestServeSpansObservationOnly(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	defer SetCellSpans(false)

	SetCellSpans(false)
	jsonlOff, tablesOff := serveArtifacts(t)

	SetCellSpans(true)
	jsonlOn, tablesOn := serveArtifacts(t)

	if !bytes.Equal(jsonlOff, jsonlOn) {
		t.Error("serve JSONL differs with spans on vs off — span collection perturbed the run")
	}
	if tablesOff != tablesOn {
		t.Error("serve tables differ with spans on vs off — span collection perturbed the run")
	}
}

// TestServeAdaptSpansWellFormed pins the span stream's structure: every
// cell contributes spans, every span validates under the strict reader,
// and every request span has queue-wait and service children whose IDs
// resolve.
func TestServeAdaptSpansWellFormed(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	resetCaches()
	r, err := ServeAdapt(Tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("got %d serve-adapt cells, want 6", len(r.Cells))
	}
	var buf bytes.Buffer
	if err := span.WriteJSONL(&buf, r.Spans); err != nil {
		t.Fatal(err)
	}
	back, err := span.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("span stream rejected by strict reader: %v", err)
	}
	if len(back) != len(r.Spans) {
		t.Fatalf("round-trip: got %d spans, want %d", len(back), len(r.Spans))
	}
	byCell := map[string]int{}
	byID := map[uint64]span.Span{}
	for _, s := range r.Spans {
		byCell[s.Cell]++
		byID[s.ID] = s
	}
	if len(byCell) != 6 {
		t.Fatalf("spans cover %d cells, want 6: %v", len(byCell), byCell)
	}
	var requests, withService int
	for _, s := range r.Spans {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; !ok {
				t.Fatalf("span %x has dangling parent %x", s.ID, s.Parent)
			}
		}
		if s.Kind == span.KindRequest {
			requests++
		}
		if s.Kind == span.KindService {
			withService++
			if byID[s.Parent].Kind != span.KindRequest {
				t.Fatalf("service span %x parented to %v", s.ID, byID[s.Parent].Kind)
			}
		}
	}
	if requests == 0 || withService != requests {
		t.Fatalf("span tree incomplete: %d requests, %d service spans", requests, withService)
	}
}
