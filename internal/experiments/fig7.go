package experiments

import (
	"repro/internal/alloc"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/vmm"
)

// Fig7Result holds Figures 7a-7d: join time of the index nested-loop join
// (W4) for one index kind across allocators and placement policies on
// Machine A.
type Fig7Result struct {
	Kind       index.Kind
	Allocators []string
	Policies   []vmm.Policy
	JoinCycles [][]float64 // [allocator][policy]
	// BestBuild/BestJoin track the fastest configuration's phase split for
	// Figure 7e.
	BestBuild float64
	BestJoin  float64
	BestAlloc string
}

// Fig7 sweeps one index kind over allocators x policies (W4, Machine A).
func Fig7(s Scale, kind index.Kind) Fig7Result {
	out := Fig7Result{
		Kind:       kind,
		Allocators: alloc.WorkloadNames(),
		Policies:   fig6Policies,
	}
	tables := datagen.Join(s.JoinR, datagen.DefaultJoinRatio, 17)
	bestTotal := 0.0
	for _, name := range out.Allocators {
		var row []float64
		for _, pol := range out.Policies {
			m := machineFor("A")
			cfg := baseConfig(16)
			cfg.Allocator = name
			cfg.Policy = pol
			m.Configure(cfg)
			res := query.IndexJoin(m, kind, tables)
			row = append(row, res.ProbeCycles)
			total := res.BuildCycles + res.ProbeCycles
			if bestTotal == 0 || total < bestTotal {
				bestTotal = total
				out.BestBuild = res.BuildCycles
				out.BestJoin = res.ProbeCycles
				out.BestAlloc = name
			}
		}
		out.JoinCycles = append(out.JoinCycles, row)
	}
	return out
}

// Render renders one Figure 7 grid (join times).
func (r Fig7Result) Render() *report.Table {
	t := &report.Table{Title: "Fig 7: " + string(r.Kind) + " index, W4 join times, Machine A (billion cycles)"}
	t.Header = []string{"allocator"}
	for _, p := range r.Policies {
		t.Header = append(t.Header, p.String())
	}
	for i, name := range r.Allocators {
		cells := []interface{}{name}
		for _, v := range r.JoinCycles[i] {
			cells = append(cells, report.Billions(v))
		}
		t.AddRow(cells...)
	}
	return t
}

// BestJoinCell returns the fastest join time in the grid.
func (r Fig7Result) BestJoinCell() float64 {
	best := r.JoinCycles[0][0]
	for _, row := range r.JoinCycles {
		for _, v := range row {
			if v < best {
				best = v
			}
		}
	}
	return best
}

// Fig7eResult holds Figure 7e: each index's build and join time at its
// fastest configuration.
type Fig7eResult struct {
	Kinds []index.Kind
	Build []float64
	Join  []float64
	Alloc []string
}

// Fig7e summarizes the four Fig7 grids into build/join at best config.
func Fig7e(s Scale) Fig7eResult {
	var out Fig7eResult
	for _, kind := range index.Kinds() {
		g := Fig7(s, kind)
		out.Kinds = append(out.Kinds, kind)
		out.Build = append(out.Build, g.BestBuild)
		out.Join = append(out.Join, g.BestJoin)
		out.Alloc = append(out.Alloc, g.BestAlloc)
	}
	return out
}

// Render renders Figure 7e.
func (r Fig7eResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 7e: index build and join times at best configuration, Machine A (billion cycles)",
		Header: []string{"index", "build", "join", "best allocator"},
	}
	for i, k := range r.Kinds {
		t.AddRow(string(k), report.Billions(r.Build[i]), report.Billions(r.Join[i]), r.Alloc[i])
	}
	return t
}
