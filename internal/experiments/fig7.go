package experiments

import (
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/vmm"
)

// Fig7Result holds Figures 7a-7d: join time of the index nested-loop join
// (W4) for one index kind across allocators and placement policies on
// Machine A.
type Fig7Result struct {
	Kind       index.Kind
	Allocators []string
	Policies   []vmm.Policy
	JoinCycles [][]float64 // [allocator][policy]
	// BestBuild/BestJoin track the fastest configuration's phase split for
	// Figure 7e.
	BestBuild float64
	BestJoin  float64
	BestAlloc string
	Records   []Record
}

// Fig7 sweeps one index kind over allocators x policies (W4, Machine A).
func Fig7(s Scale, kind index.Kind) (Fig7Result, error) {
	out := Fig7Result{
		Kind:       kind,
		Allocators: alloc.WorkloadNames(),
		Policies:   fig6Policies,
	}
	tables := datagen.CachedJoin(s.JoinR, datagen.DefaultJoinRatio, 17)
	type cell struct {
		build, probe float64
		rec          Record
	}
	cells, err := core.Collect(runner, len(out.Allocators)*len(out.Policies), func(i int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Allocator = out.Allocators[i/len(out.Policies)]
		cfg.Policy = out.Policies[i%len(out.Policies)]
		m.Configure(cfg)
		res := query.IndexJoin(m, kind, tables)
		rec := finishCell(start, string(kind)+"/"+cfg.Allocator+"/"+cfg.Policy.String(),
			map[string]string{
				"index":     string(kind),
				"allocator": cfg.Allocator,
				"policy":    cfg.Policy.String(),
			}, m, res.Result.WallCycles)
		rec.Extra = map[string]float64{
			"build_cycles": res.BuildCycles,
			"probe_cycles": res.ProbeCycles,
		}
		return cell{res.BuildCycles, res.ProbeCycles, rec}, nil
	})
	if err != nil {
		return Fig7Result{}, err
	}
	// Best-cell selection walks the cells in sweep order (first win on
	// ties), matching the serial implementation exactly.
	bestTotal := 0.0
	for i, c := range cells {
		if i%len(out.Policies) == 0 {
			out.JoinCycles = append(out.JoinCycles, nil)
		}
		row := len(out.JoinCycles) - 1
		out.JoinCycles[row] = append(out.JoinCycles[row], c.probe)
		out.Records = append(out.Records, c.rec)
		total := c.build + c.probe
		if bestTotal == 0 || total < bestTotal {
			bestTotal = total
			out.BestBuild = c.build
			out.BestJoin = c.probe
			out.BestAlloc = out.Allocators[i/len(out.Policies)]
		}
	}
	return out, nil
}

// Render renders one Figure 7 grid (join times).
func (r Fig7Result) Render() *report.Table {
	t := &report.Table{Title: "Fig 7: " + string(r.Kind) + " index, W4 join times, Machine A (billion cycles)"}
	t.Header = []string{"allocator"}
	for _, p := range r.Policies {
		t.Header = append(t.Header, p.String())
	}
	for i, name := range r.Allocators {
		cells := []any{name}
		for _, v := range r.JoinCycles[i] {
			cells = append(cells, report.Billions(v))
		}
		t.AddRow(cells...)
	}
	return t
}

// BestJoinCell returns the fastest join time in the grid.
func (r Fig7Result) BestJoinCell() float64 {
	best := r.JoinCycles[0][0]
	for _, row := range r.JoinCycles {
		for _, v := range row {
			if v < best {
				best = v
			}
		}
	}
	return best
}

// Fig7eResult holds Figure 7e: each index's build and join time at its
// fastest configuration.
type Fig7eResult struct {
	Kinds []index.Kind
	Build []float64
	Join  []float64
	Alloc []string
}

// Fig7e summarizes the four Fig7 grids into build/join at best config.
// Each Fig7 grid already fans its cells out on the worker pool.
func Fig7e(s Scale) (Fig7eResult, error) {
	var grids []Fig7Result
	for _, kind := range index.Kinds() {
		g, err := Fig7(s, kind)
		if err != nil {
			return Fig7eResult{}, err
		}
		grids = append(grids, g)
	}
	return Fig7eFromGrids(grids), nil
}

// Fig7eFromGrids builds Figure 7e from already-computed Fig7 grids,
// letting callers that render both skip re-running every sweep (the grids
// are deterministic, so the result is identical to Fig7e).
func Fig7eFromGrids(grids []Fig7Result) Fig7eResult {
	var out Fig7eResult
	for _, g := range grids {
		out.Kinds = append(out.Kinds, g.Kind)
		out.Build = append(out.Build, g.BestBuild)
		out.Join = append(out.Join, g.BestJoin)
		out.Alloc = append(out.Alloc, g.BestAlloc)
	}
	return out
}

// Render renders Figure 7e.
func (r Fig7eResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 7e: index build and join times at best configuration, Machine A (billion cycles)",
		Header: []string{"index", "build", "join", "best allocator"},
	}
	for i, k := range r.Kinds {
		t.AddRow(string(k), report.Billions(r.Build[i]), report.Billions(r.Join[i]), r.Alloc[i])
	}
	return t
}
