package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/vmm"
)

// The adapt experiment (an extension beyond the paper) asks the question
// the static tuning methodology cannot: what happens when the workload's
// placement affinity changes mid-run? A multi-phase driver cycles each
// worker through point-lookup, scan and join phases over partitioned
// data; in the "phased" variant the partition each worker touches rotates
// every phase, so no static placement stays local. The experiment
// compares the OS default, a family of static placements (their best is
// the static tune optimum), and the static baseline with the online
// orchestrator attached, on every machine preset.
//
// Phases are bounded in simulated cycles, not iterations: every
// configuration gets the same cycle budget per phase and the score is the
// number of accesses completed (ops). A configuration that keeps accesses
// local completes more of them per cycle.

// adaptWorkloads are the two access schedules: "steady" keeps each worker
// on its own partition (a static optimum exists); "phased" rotates the
// target partition every phase (only adaptation can track it).
var adaptWorkloads = []string{"steady", "phased"}

// adaptConfigs names the configuration family; "default" is the OS
// out-of-the-box setup, "adaptive" is the static baseline plus the
// orchestrator, and the rest are the static candidates whose best is the
// static tune optimum.
var adaptConfigs = []string{"default", "firsttouch", "interleave", "autonuma", "adaptive"}

// adaptPhases is the phase schedule length: two rounds of
// lookup -> scan -> join.
const adaptPhases = 6

// adaptPhaseCost sizes a phase's per-thread cycle budget as a multiple of
// the partition's line count, so phases scale with the partition.
const adaptPhaseCost = 90

// AdaptCell is one machine x workload x config measurement.
type AdaptCell struct {
	Machine  string
	Workload string
	Config   string
	Wall     float64
	Ops      float64 // accesses completed across all workers
	LAR      float64
	Stats    orchestrator.Stats // zero unless Config == "adaptive"
}

// AdaptResult holds the adaptive placement experiment.
type AdaptResult struct {
	Cells   []AdaptCell
	Records []Record
}

// adaptMachines lists the machine presets the experiment sweeps.
var adaptMachines = []string{"A", "B", "C"}

// adaptConfigFor builds the RunConfig for a named configuration. workers
// is one per node, so Sparse pins exactly one worker per node and a
// migrated thread always finds a free context.
func adaptConfigFor(name string, workers int) machine.RunConfig {
	switch name {
	case "default":
		return machine.DefaultConfig(workers)
	case "interleave":
		cfg := baseConfig(workers)
		cfg.Policy = vmm.Interleave
		return cfg
	case "autonuma":
		cfg := baseConfig(workers)
		cfg.AutoNUMA = true
		return cfg
	default: // "firsttouch" and the "adaptive" baseline
		return baseConfig(workers)
	}
}

// adaptRunCell loads the partitions and runs the phase schedule under one
// configuration, returning the measured cell and its record.
func adaptRunCell(s Scale, letter, workload, config string, o AdaptOptions) (AdaptCell, Record) {
	start := startCell()
	m := machineFor(letter)
	workers := m.Spec.Topo.Nodes()
	cfg := adaptConfigFor(config, workers)
	m.Configure(cfg)

	partBytes := uint64(s.AdaptPartKB) << 10
	partLines := int(partBytes / 64)

	// Load: every worker first-touches its own partition with one write
	// per page. Under Sparse + FirstTouch partition w lands on node w;
	// under the OS default it lands wherever the scheduler put the worker.
	// One touch per page (not per line) keeps the load Run's wall far
	// below the phase Run's: the machine clock is a monotonic maximum
	// across Runs, so a load that outlasted the phases would leave the
	// placement daemon no window to fire in.
	bases := make([]uint64, workers)
	m.RunParallel(workers, func(t *machine.Thread) {
		w := t.ID()
		bases[w] = t.Malloc(partBytes)
		for p := uint64(0); p < partBytes; p += vmm.PageSize {
			t.Write(bases[w]+p, 8)
		}
	})
	m.ResetCounters()

	var orch *orchestrator.Orchestrator
	if config == "adaptive" {
		oc := orchestrator.DefaultConfig()
		if o.Period > 0 {
			oc.Period = o.Period
		}
		if o.BudgetFrac > 0 {
			oc.BudgetFrac = o.BudgetFrac
		}
		orch = orchestrator.New(oc)
		orch.Attach(m)
		defer orch.Detach()
	}

	rot := 0
	if workload == "phased" {
		rot = 1
	}
	phaseCycles := float64(partLines) * adaptPhaseCost
	ops := make([]uint64, workers)
	// adaptBody confines cross-worker interaction to the simulated memory
	// API (bases is read-only during the phases; ops slots are per-worker),
	// so the phase run is host-parallel safe.
	res := m.RunParallel(workers, adaptBody(bases, partLines, phaseCycles, rot, ops))

	cell := AdaptCell{
		Machine:  m.Spec.Name,
		Workload: workload,
		Config:   config,
		Wall:     res.WallCycles,
		LAR:      res.Counters.LAR(),
	}
	for _, n := range ops {
		cell.Ops += float64(n)
	}
	if orch != nil {
		cell.Stats = orch.Stats()
	}

	name := letter + "/" + workload + "/" + config
	rec := finishCell(start, name,
		map[string]string{"machine": letter, "workload": workload, "config": config},
		m, res.WallCycles)
	rec.Extra = map[string]float64{
		"ops":          cell.Ops,
		"lar":          cell.LAR,
		"ticks":        float64(cell.Stats.Ticks),
		"thread_moves": float64(cell.Stats.ThreadMoves),
		"page_moves":   float64(cell.Stats.PageMoves),
		"reweights":    float64(cell.Stats.Reweights),
	}
	return cell, rec
}

// adaptBody is the multi-phase worker: adaptPhases phases, each bounded
// by a per-thread cycle budget, cycling point-lookup -> scan -> join.
// Phase k targets partition (w + k*rot) mod W; rot 0 is the steady
// schedule, rot 1 rotates the target every phase. ops[w] receives worker
// w's completed access count (safe: the scheduler runs one thread at a
// time and each worker only writes its own slot).
func adaptBody(bases []uint64, partLines int, phaseCycles float64, rot int, ops []uint64) func(*machine.Thread) {
	return func(t *machine.Thread) {
		w := t.ID()
		workers := len(bases)
		own := bases[w]
		rng := t.RNG().Derive(97)
		var n uint64
		for k := 0; k < adaptPhases; k++ {
			target := bases[(w+k*rot)%workers]
			end := t.Cycles() + phaseCycles
			switch k % 3 {
			case 0: // point lookups: random 8-byte reads in the target
				for t.Cycles() < end {
					for i := 0; i < 64; i++ {
						t.Read(target+rng.Uint64n(uint64(partLines))*64, 8)
					}
					n += 64
				}
			case 1: // scan: sequential chunks over the target, wrapping
				off := 0
				for t.Cycles() < end {
					chunk := 256
					if off+chunk > partLines {
						chunk = partLines - off
					}
					t.ReadRun(target+uint64(off)*64, 64, chunk)
					n += uint64(chunk)
					off += chunk
					if off >= partLines {
						off = 0
					}
				}
			case 2: // join: sequential build side (own) + random probes (target)
				off := 0
				for t.Cycles() < end {
					for i := 0; i < 32; i++ {
						t.Read(own+uint64(off)*64, 8)
						t.Read(target+rng.Uint64n(uint64(partLines))*64, 8)
						off++
						if off >= partLines {
							off = 0
						}
					}
					n += 64
				}
			}
		}
		ops[w] = n
	}
}

// AdaptOverheadProbe runs the Machine A steady cell with or without the
// orchestrator attached, at a fixed partition size so runs are comparable
// across hosts and scales. The bench gate tracks on/off as a ratio: on
// the steady workload the orchestrator decides "do nothing" every tick,
// so the ratio is its pure observation-and-planning overhead.
func AdaptOverheadProbe(on bool) error {
	config := "firsttouch"
	if on {
		config = "adaptive"
	}
	_, _ = adaptRunCell(Scale{AdaptPartKB: Cal.AdaptPartKB}, "A", "steady", config, AdaptOptions{})
	return nil
}

// Adapt runs the adaptive placement experiment at a scale.
func Adapt(s Scale, o AdaptOptions) (AdaptResult, error) {
	type idx struct{ mc, wl, cf int }
	var grid []idx
	for mi := range adaptMachines {
		for wi := range adaptWorkloads {
			for ci := range adaptConfigs {
				grid = append(grid, idx{mi, wi, ci})
			}
		}
	}
	type cell struct {
		c   AdaptCell
		rec Record
	}
	cells, err := core.Collect(runner, len(grid), func(i int) (cell, error) {
		g := grid[i]
		c, rec := adaptRunCell(s, adaptMachines[g.mc], adaptWorkloads[g.wl], adaptConfigs[g.cf], o)
		return cell{c, rec}, nil
	})
	if err != nil {
		return AdaptResult{}, err
	}
	out := AdaptResult{}
	for _, c := range cells {
		out.Cells = append(out.Cells, c.c)
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// staticBest returns the best (highest-ops) static configuration for one
// machine x workload group: the static tune optimum the orchestrator is
// judged against. "default" and "adaptive" are excluded.
func (r AdaptResult) staticBest(mc, wl string) (AdaptCell, bool) {
	var best AdaptCell
	found := false
	for _, c := range r.Cells {
		if c.Machine != mc || c.Workload != wl || c.Config == "default" || c.Config == "adaptive" {
			continue
		}
		if !found || c.Ops > best.Ops {
			best, found = c, true
		}
	}
	return best, found
}

// find returns the cell for one machine x workload x config.
func (r AdaptResult) find(mc, wl, cf string) (AdaptCell, bool) {
	for _, c := range r.Cells {
		if c.Machine == mc && c.Workload == wl && c.Config == cf {
			return c, true
		}
	}
	return AdaptCell{}, false
}

// machines returns the distinct machine names in grid order.
func (r AdaptResult) machines() []string {
	var out []string
	for _, c := range r.Cells {
		seen := false
		for _, m := range out {
			if m == c.Machine {
				seen = true
			}
		}
		if !seen {
			out = append(out, c.Machine)
		}
	}
	return out
}

// Render renders the throughput comparison: ops completed per
// configuration with the adaptive-vs-static-optimum ratio.
func (r AdaptResult) Render() *report.Table {
	t := &report.Table{
		Title: "Adaptive placement: accesses completed under a fixed cycle budget (millions; higher is better)",
		Header: []string{"machine", "workload", "default", "firsttouch", "interleave",
			"autonuma", "adaptive", "vs static best"},
	}
	for _, mc := range r.machines() {
		for _, wl := range adaptWorkloads {
			row := []any{mc, wl}
			for _, cf := range []string{"default", "firsttouch", "interleave", "autonuma", "adaptive"} {
				c, ok := r.find(mc, wl, cf)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, c.Ops/1e6)
			}
			ratio := "-"
			if ad, ok := r.find(mc, wl, "adaptive"); ok {
				if best, ok := r.staticBest(mc, wl); ok && best.Ops > 0 {
					ratio = fmt.Sprintf("%+.1f%%", 100*(ad.Ops-best.Ops)/best.Ops)
				}
			}
			row = append(row, ratio)
			t.AddRow(row...)
		}
	}
	return t
}

// RenderActions renders what the orchestrator did per adaptive cell: the
// phase-change story (thread and page migrations, reweights) next to the
// locality it recovered.
func (r AdaptResult) RenderActions() *report.Table {
	t := &report.Table{
		Title:  "Adaptive placement: orchestrator actions and recovered locality",
		Header: []string{"machine", "workload", "ticks", "thread moves", "page moves", "reweights", "LAR adaptive", "LAR static best"},
	}
	for _, mc := range r.machines() {
		for _, wl := range adaptWorkloads {
			ad, ok := r.find(mc, wl, "adaptive")
			if !ok {
				continue
			}
			bestLAR := "-"
			if best, ok := r.staticBest(mc, wl); ok {
				bestLAR = fmt.Sprintf("%.3f", best.LAR)
			}
			t.AddRow(mc, wl, ad.Stats.Ticks, ad.Stats.ThreadMoves,
				ad.Stats.PageMoves, ad.Stats.Reweights,
				fmt.Sprintf("%.3f", ad.LAR), bestLAR)
		}
	}
	return t
}
