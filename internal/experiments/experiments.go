// Package experiments contains one driver per table and figure of the
// paper's evaluation section. Each driver builds the machines, datasets
// and configurations the paper used, runs the workload grid on the
// simulator, and returns a typed result that renders as the same rows or
// series the paper reports. See DESIGN.md section 5 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured shapes.
package experiments

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/query"
	"repro/internal/vmm"
)

// runner executes every driver's grid cells. Each cell builds a fresh,
// fully isolated machine and derives its RNG streams from the cell's own
// seed, so cells can run concurrently in any order while results stay
// byte-identical to a serial run (assembly is always by cell index). The
// default uses GOMAXPROCS workers; SetRunner overrides it (e.g. the
// numabench -parallel flag, or core.Serial for a serial run).
var runner = core.Runner{}

// SetRunner replaces the worker pool used by all drivers. Not safe to call
// concurrently with a running driver; set it up front.
func SetRunner(r core.Runner) { runner = r }

// Scale sizes every experiment. Tests use Tiny; the benchmark harness uses
// Default, which is about 1/50 of the paper's datasets (cache ratios are
// preserved; see DESIGN.md).
type Scale struct {
	AggRecords     int     // W1/W2 dataset rows (paper: 100M)
	AggCardinality int     // group-by cardinality (paper: 1M)
	JoinR          int     // W3/W4 build rows (paper: 16M; S is 16x)
	MicrobenchOps  int     // allocator microbenchmark ops per thread (paper: 100M)
	TPCHSF         float64 // TPC-H scale factor (paper: 20)
	WarmRuns       int     // W5 warm runs per query (paper: 5)
	Fig3Runs       int     // consecutive runs in Figure 3 (paper: 10)
	ServeRequests  int     // open-loop serving stream length (extension)
	AdaptPartKB    int     // adapt experiment per-worker partition KiB (extension)
}

// Tiny is for unit tests: everything finishes in milliseconds.
var Tiny = Scale{
	AggRecords:     8_000,
	AggCardinality: 400,
	JoinR:          1_500,
	MicrobenchOps:  2_000,
	TPCHSF:         0.001,
	WarmRuns:       1,
	Fig3Runs:       4,
	ServeRequests:  240,
	AdaptPartKB:    64,
}

// Small runs each driver in a few seconds; used by quick benchmarks.
var Small = Scale{
	AggRecords:     120_000,
	AggCardinality: 8_000,
	JoinR:          20_000,
	MicrobenchOps:  20_000,
	TPCHSF:         0.004,
	WarmRuns:       2,
	Fig3Runs:       10,
	ServeRequests:  1_200,
	AdaptPartKB:    512,
}

// Cal is the reproduction scale used for EXPERIMENTS.md: large enough
// that working sets exceed Machine A's per-node LLC (so every NUMA effect
// is visible) while a full `numabench -experiment all` run stays in
// minutes. The shape tests in experiments_test.go validate the paper's
// claims at this scale.
var Cal = Scale{
	AggRecords:     300_000,
	AggCardinality: 40_000,
	JoinR:          40_000,
	MicrobenchOps:  8_000,
	TPCHSF:         0.005,
	WarmRuns:       2,
	Fig3Runs:       10,
	ServeRequests:  4_000,
	AdaptPartKB:    4_096,
}

// Default is the full simulator scale used for EXPERIMENTS.md.
var Default = Scale{
	AggRecords:     1_200_000,
	AggCardinality: 150_000,
	JoinR:          120_000,
	MicrobenchOps:  60_000,
	TPCHSF:         0.01,
	WarmRuns:       2,
	Fig3Runs:       10,
	ServeRequests:  8_000,
	AdaptPartKB:    8_192,
}

// machineFor builds a fresh machine by letter (A-E). When cell
// tracing is on it attaches an event recorder and periodic counter
// snapshots, so every grid cell's record carries its event stream.
func machineFor(letter string) *machine.Machine {
	var m *machine.Machine
	switch letter {
	case "A":
		m = machine.NewA()
	case "B":
		m = machine.NewB()
	case "C":
		m = machine.NewC()
	case "D":
		m = machine.NewD()
	case "E":
		m = machine.NewE()
	default:
		panic("experiments: unknown machine " + letter)
	}
	var o machine.ObserveOptions
	if cellTracing {
		o.Trace = true
		o.SnapEvery = cellSnapEvery
	}
	o.Profile = cellProfiling
	m.Observe(o)
	return m
}

// baseConfig is the paper's measurement baseline for W1-W4 once placement
// is under test: Sparse affinity, kernel daemons off unless an experiment
// turns them on.
func baseConfig(threads int) machine.RunConfig {
	return machine.RunConfig{
		Threads:   threads,
		Placement: machine.PlaceSparse,
		Policy:    vmm.FirstTouch,
		Allocator: "ptmalloc",
		AutoNUMA:  false,
		THP:       false,
		Seed:      1,
	}
}

// runW1 executes the holistic aggregation workload on a fresh machine.
// The dataset is memoized: identical (dist, size, seed) requests across
// grid cells share one read-only build.
func runW1(m *machine.Machine, s Scale, dist datagen.Distribution) query.Outcome {
	recs := datagen.CachedGenerate(dist, s.AggRecords, s.AggCardinality, 11)
	return query.Aggregate(m, query.AggregationSpec{
		Records:     recs,
		Cardinality: s.AggCardinality,
		Holistic:    true,
	})
}

// runW2 executes the distributive aggregation workload (Zipf e=0.5, as
// Generate builds for ZipfDist).
func runW2(m *machine.Machine, s Scale) query.Outcome {
	recs := datagen.CachedGenerate(datagen.ZipfDist, s.AggRecords, s.AggCardinality, 13)
	return query.Aggregate(m, query.AggregationSpec{
		Records:     recs,
		Cardinality: s.AggCardinality,
		Holistic:    false,
	})
}

// runW3 executes the hash join workload.
func runW3(m *machine.Machine, s Scale) query.JoinOutcome {
	return query.HashJoin(m, query.JoinSpec{Tables: datagen.CachedJoin(s.JoinR, datagen.DefaultJoinRatio, 17)})
}
