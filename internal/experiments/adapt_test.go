package experiments

import (
	"testing"

	"repro/internal/core"
)

// adaptTestScale sizes the partition past Machine A's per-node LLC so the
// phase schedule generates sustained DRAM traffic; everything else stays
// at Tiny since the adapt driver does not touch the figure datasets.
var adaptTestScale = Scale{AdaptPartKB: Cal.AdaptPartKB}

// runAdaptColumn measures the Machine A column: the static family plus
// the adaptive configuration for one workload, returning ops by config.
func runAdaptColumn(t *testing.T, workload string) map[string]AdaptCell {
	t.Helper()
	out := map[string]AdaptCell{}
	for _, cf := range []string{"firsttouch", "interleave", "autonuma", "adaptive"} {
		c, _ := adaptRunCell(adaptTestScale, "A", workload, cf, AdaptOptions{})
		out[cf] = c
	}
	return out
}

func adaptStaticBestOf(cells map[string]AdaptCell) AdaptCell {
	best := cells["firsttouch"]
	for _, cf := range []string{"interleave", "autonuma"} {
		if cells[cf].Ops > best.Ops {
			best = cells[cf]
		}
	}
	return best
}

// TestAdaptBeatsStaticOnPhased pins the tentpole claim: when the workload
// rotates its target partition every phase, the orchestrator beats the
// best static placement, because no static placement can stay local.
func TestAdaptBeatsStaticOnPhased(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	cells := runAdaptColumn(t, "phased")
	best := adaptStaticBestOf(cells)
	ad := cells["adaptive"]
	if ad.Ops <= best.Ops*1.05 {
		t.Fatalf("adaptive %v ops vs static best %v (%s): want >5%% ahead",
			ad.Ops, best.Ops, best.Config)
	}
	if ad.LAR <= best.LAR {
		t.Errorf("adaptive LAR %.3f did not beat static best %.3f", ad.LAR, best.LAR)
	}
	if ad.Stats.ThreadMoves == 0 && ad.Stats.PageMoves == 0 {
		t.Error("adaptive win recorded no migrations; stats not wired?")
	}
}

// TestAdaptMatchesStaticOnSteady pins the hysteresis claim: when a static
// optimum exists, the orchestrator must not churn — no thread moves, and
// throughput within 5% of the best static configuration.
func TestAdaptMatchesStaticOnSteady(t *testing.T) {
	SetRunner(core.Runner{Workers: 0})
	defer SetRunner(core.Runner{})
	cells := runAdaptColumn(t, "steady")
	best := adaptStaticBestOf(cells)
	ad := cells["adaptive"]
	if ad.Ops < best.Ops*0.95 {
		t.Fatalf("adaptive %v ops vs static best %v (%s): lost more than 5%%",
			ad.Ops, best.Ops, best.Config)
	}
	if ad.Stats.ThreadMoves != 0 {
		t.Errorf("steady workload provoked %d thread moves; hysteresis broken", ad.Stats.ThreadMoves)
	}
}
