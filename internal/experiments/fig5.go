package experiments

import (
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/report"
	"repro/internal/vmm"
)

// fig5Policies are the placement policies swept in Figure 5a/5b.
var fig5Policies = []vmm.Policy{vmm.FirstTouch, vmm.Interleave, vmm.Localalloc, vmm.Preferred}

// Fig5aResult holds Figures 5a and 5b: W1 runtime and local access ratio
// per memory placement policy with AutoNUMA on and off, Machine A.
type Fig5aResult struct {
	Policies []vmm.Policy
	// Indexed by policy position; On = AutoNUMA enabled.
	OnCycles  []float64
	OffCycles []float64
	OnLAR     []float64
	OffLAR    []float64
	Records   []Record
}

// Fig5a sweeps placement policy x AutoNUMA for W1 on Machine A.
func Fig5a(s Scale) (Fig5aResult, error) {
	out := Fig5aResult{Policies: fig5Policies}
	type cell struct {
		cycles, lar float64
		rec         Record
	}
	autos := []bool{true, false}
	cells, err := core.Collect(runner, len(fig5Policies)*len(autos), func(i int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Policy = fig5Policies[i/len(autos)]
		cfg.AutoNUMA = autos[i%len(autos)]
		m.Configure(cfg)
		res := runW1(m, s, datagen.MovingClusterDist)
		auto := "off"
		if cfg.AutoNUMA {
			auto = "on"
		}
		rec := finishCell(start, cfg.Policy.String()+"/auto="+auto,
			map[string]string{"policy": cfg.Policy.String(), "autonuma": auto},
			m, res.Result.WallCycles)
		rec.Extra = map[string]float64{"lar": res.Result.Counters.LAR()}
		return cell{res.Result.WallCycles, res.Result.Counters.LAR(), rec}, nil
	})
	if err != nil {
		return Fig5aResult{}, err
	}
	for i, c := range cells {
		if autos[i%len(autos)] {
			out.OnCycles = append(out.OnCycles, c.cycles)
			out.OnLAR = append(out.OnLAR, c.lar)
		} else {
			out.OffCycles = append(out.OffCycles, c.cycles)
			out.OffLAR = append(out.OffLAR, c.lar)
		}
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders Figure 5a (runtime).
func (r Fig5aResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5a: AutoNUMA effect on W1 runtime by placement policy, Machine A (billion cycles)",
		Header: []string{"policy", "AutoNUMA on", "AutoNUMA off"},
	}
	for i, p := range r.Policies {
		t.AddRow(p.String(), report.Billions(r.OnCycles[i]), report.Billions(r.OffCycles[i]))
	}
	return t
}

// RenderLAR renders Figure 5b (local access ratio).
func (r Fig5aResult) RenderLAR() *report.Table {
	t := &report.Table{
		Title:  "Fig 5b: AutoNUMA effect on local access ratio, W1, Machine A",
		Header: []string{"policy", "LAR on", "LAR off"},
	}
	for i, p := range r.Policies {
		t.AddRow(p.String(), r.OnLAR[i], r.OffLAR[i])
	}
	return t
}

// Fig5cResult holds Figure 5c: W1 runtime per allocator with THP off/on.
type Fig5cResult struct {
	Allocators []string
	Off        []float64
	On         []float64
	Records    []Record
}

// Fig5c sweeps allocator x THP for W1 on Machine A (First Touch, AutoNUMA
// off, as the paper isolates the hugepage mechanism).
func Fig5c(s Scale) (Fig5cResult, error) {
	out := Fig5cResult{Allocators: alloc.WorkloadNames()}
	thps := []bool{false, true}
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, len(out.Allocators)*len(thps), func(i int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Allocator = out.Allocators[i/len(thps)]
		cfg.THP = thps[i%len(thps)]
		m.Configure(cfg)
		w := runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		thp := "off"
		if cfg.THP {
			thp = "on"
		}
		return cell{w, finishCell(start, cfg.Allocator+"/thp="+thp,
			map[string]string{"allocator": cfg.Allocator, "thp": thp}, m, w)}, nil
	})
	if err != nil {
		return Fig5cResult{}, err
	}
	for i, c := range cells {
		if thps[i%len(thps)] {
			out.On = append(out.On, c.cycles)
		} else {
			out.Off = append(out.Off, c.cycles)
		}
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders Figure 5c.
func (r Fig5cResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5c: impact of THP on memory allocators, W1, Machine A (billion cycles)",
		Header: []string{"allocator", "THP off", "THP on"},
	}
	for i, a := range r.Allocators {
		t.AddRow(a, report.Billions(r.Off[i]), report.Billions(r.On[i]))
	}
	return t
}

// Fig5dResult holds Figure 5d: the combined effect of AutoNUMA+THP and
// placement policy across the three machines.
type Fig5dResult struct {
	Machines []string
	Policies []vmm.Policy
	// Cycles[machine][policy index], daemons on and off.
	On      map[string][]float64
	Off     map[string][]float64
	Records []Record
}

// Fig5d sweeps {First Touch, Interleave, Localalloc} x {daemons on, off}
// x {A, B, C} for W1.
func Fig5d(s Scale) (Fig5dResult, error) {
	out := Fig5dResult{
		Machines: []string{"A", "B", "C"},
		Policies: []vmm.Policy{vmm.FirstTouch, vmm.Interleave, vmm.Localalloc},
		On:       map[string][]float64{},
		Off:      map[string][]float64{},
	}
	daemonsStates := []bool{true, false}
	per := len(out.Policies) * len(daemonsStates)
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, len(out.Machines)*per, func(i int) (cell, error) {
		start := startCell()
		mc := out.Machines[i/per]
		m := machineFor(mc)
		cfg := baseConfig(m.Spec.HardwareThreads())
		cfg.Policy = out.Policies[i/len(daemonsStates)%len(out.Policies)]
		daemons := daemonsStates[i%len(daemonsStates)]
		cfg.AutoNUMA = daemons
		cfg.THP = daemons
		m.Configure(cfg)
		w := runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		state := "off"
		if daemons {
			state = "on"
		}
		return cell{w, finishCell(start, mc+"/"+cfg.Policy.String()+"/daemons="+state,
			map[string]string{
				"machine": mc,
				"policy":  cfg.Policy.String(),
				"daemons": state,
			}, m, w)}, nil
	})
	if err != nil {
		return Fig5dResult{}, err
	}
	for i, c := range cells {
		mc := out.Machines[i/per]
		if daemonsStates[i%len(daemonsStates)] {
			out.On[mc] = append(out.On[mc], c.cycles)
		} else {
			out.Off[mc] = append(out.Off[mc], c.cycles)
		}
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders Figure 5d.
func (r Fig5dResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5d: combined AutoNUMA+THP effect by placement policy and machine, W1 (billion cycles)",
		Header: []string{"machine", "policy", "daemons on", "daemons off"},
	}
	for _, mc := range r.Machines {
		for i, pol := range r.Policies {
			t.AddRow("Machine "+mc, pol.String(),
				report.Billions(r.On[mc][i]), report.Billions(r.Off[mc][i]))
		}
	}
	return t
}
