package experiments

import (
	"repro/internal/alloc"
	"repro/internal/datagen"
	"repro/internal/report"
	"repro/internal/vmm"
)

// fig5Policies are the placement policies swept in Figure 5a/5b.
var fig5Policies = []vmm.Policy{vmm.FirstTouch, vmm.Interleave, vmm.Localalloc, vmm.Preferred}

// Fig5aResult holds Figures 5a and 5b: W1 runtime and local access ratio
// per memory placement policy with AutoNUMA on and off, Machine A.
type Fig5aResult struct {
	Policies []vmm.Policy
	// Indexed by policy position; On = AutoNUMA enabled.
	OnCycles  []float64
	OffCycles []float64
	OnLAR     []float64
	OffLAR    []float64
}

// Fig5a sweeps placement policy x AutoNUMA for W1 on Machine A.
func Fig5a(s Scale) Fig5aResult {
	out := Fig5aResult{Policies: fig5Policies}
	for _, pol := range fig5Policies {
		for _, auto := range []bool{true, false} {
			m := machineFor("A")
			cfg := baseConfig(16)
			cfg.Policy = pol
			cfg.AutoNUMA = auto
			m.Configure(cfg)
			res := runW1(m, s, datagen.MovingClusterDist)
			if auto {
				out.OnCycles = append(out.OnCycles, res.Result.WallCycles)
				out.OnLAR = append(out.OnLAR, res.Result.Counters.LAR())
			} else {
				out.OffCycles = append(out.OffCycles, res.Result.WallCycles)
				out.OffLAR = append(out.OffLAR, res.Result.Counters.LAR())
			}
		}
	}
	return out
}

// Render renders Figure 5a (runtime).
func (r Fig5aResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5a: AutoNUMA effect on W1 runtime by placement policy, Machine A (billion cycles)",
		Header: []string{"policy", "AutoNUMA on", "AutoNUMA off"},
	}
	for i, p := range r.Policies {
		t.AddRow(p.String(), report.Billions(r.OnCycles[i]), report.Billions(r.OffCycles[i]))
	}
	return t
}

// RenderLAR renders Figure 5b (local access ratio).
func (r Fig5aResult) RenderLAR() *report.Table {
	t := &report.Table{
		Title:  "Fig 5b: AutoNUMA effect on local access ratio, W1, Machine A",
		Header: []string{"policy", "LAR on", "LAR off"},
	}
	for i, p := range r.Policies {
		t.AddRow(p.String(), r.OnLAR[i], r.OffLAR[i])
	}
	return t
}

// Fig5cResult holds Figure 5c: W1 runtime per allocator with THP off/on.
type Fig5cResult struct {
	Allocators []string
	Off        []float64
	On         []float64
}

// Fig5c sweeps allocator x THP for W1 on Machine A (First Touch, AutoNUMA
// off, as the paper isolates the hugepage mechanism).
func Fig5c(s Scale) Fig5cResult {
	out := Fig5cResult{Allocators: alloc.WorkloadNames()}
	for _, name := range out.Allocators {
		for _, thp := range []bool{false, true} {
			m := machineFor("A")
			cfg := baseConfig(16)
			cfg.Allocator = name
			cfg.THP = thp
			m.Configure(cfg)
			res := runW1(m, s, datagen.MovingClusterDist)
			if thp {
				out.On = append(out.On, res.Result.WallCycles)
			} else {
				out.Off = append(out.Off, res.Result.WallCycles)
			}
		}
	}
	return out
}

// Render renders Figure 5c.
func (r Fig5cResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5c: impact of THP on memory allocators, W1, Machine A (billion cycles)",
		Header: []string{"allocator", "THP off", "THP on"},
	}
	for i, a := range r.Allocators {
		t.AddRow(a, report.Billions(r.Off[i]), report.Billions(r.On[i]))
	}
	return t
}

// Fig5dResult holds Figure 5d: the combined effect of AutoNUMA+THP and
// placement policy across the three machines.
type Fig5dResult struct {
	Machines []string
	Policies []vmm.Policy
	// Cycles[machine][policy index], daemons on and off.
	On  map[string][]float64
	Off map[string][]float64
}

// Fig5d sweeps {First Touch, Interleave, Localalloc} x {daemons on, off}
// x {A, B, C} for W1.
func Fig5d(s Scale) Fig5dResult {
	out := Fig5dResult{
		Machines: []string{"A", "B", "C"},
		Policies: []vmm.Policy{vmm.FirstTouch, vmm.Interleave, vmm.Localalloc},
		On:       map[string][]float64{},
		Off:      map[string][]float64{},
	}
	for _, mc := range out.Machines {
		for _, pol := range out.Policies {
			for _, daemons := range []bool{true, false} {
				m := machineFor(mc)
				cfg := baseConfig(m.Spec.HardwareThreads())
				cfg.Policy = pol
				cfg.AutoNUMA = daemons
				cfg.THP = daemons
				m.Configure(cfg)
				res := runW1(m, s, datagen.MovingClusterDist)
				if daemons {
					out.On[mc] = append(out.On[mc], res.Result.WallCycles)
				} else {
					out.Off[mc] = append(out.Off[mc], res.Result.WallCycles)
				}
			}
		}
	}
	return out
}

// Render renders Figure 5d.
func (r Fig5dResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5d: combined AutoNUMA+THP effect by placement policy and machine, W1 (billion cycles)",
		Header: []string{"machine", "policy", "daemons on", "daemons off"},
	}
	for _, mc := range r.Machines {
		for i, pol := range r.Policies {
			t.AddRow("Machine "+mc, pol.String(),
				report.Billions(r.On[mc][i]), report.Billions(r.Off[mc][i]))
		}
	}
	return t
}
