package experiments

// Options carries per-experiment knobs through Descriptor.Run, typed per
// experiment family. The zero value means "all defaults". Drivers that
// take no options ignore it; the ones that do declare the knobs they read
// in Descriptor.Options (numabench -list prints them), so the option
// surface is discoverable instead of a global-setter side channel.
type Options struct {
	// Serve configures the open-loop serving experiment.
	Serve ServeOptions
	// Adapt configures the adaptive placement experiment.
	Adapt AdaptOptions
}

// AdaptOptions are the adapt experiment's overrides; zero values defer to
// the orchestrator's defaults.
type AdaptOptions struct {
	// Period overrides the orchestrator tick cadence in simulated cycles.
	Period float64
	// BudgetFrac overrides the migration-cost budget fraction.
	BudgetFrac float64
}
