package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/span"
	"repro/internal/trace"
)

// SchemaVersion identifies the JSONL record layout below. Bump it when a
// field changes meaning; readers reject records from other schemas.
//
// One Record is one grid cell of one experiment, serialized as a single
// JSON object per line:
//
//	schema      string  always "repro/bench/v1"
//	experiment  string  registry id, e.g. "fig5a"
//	cell        string  cell name, unique within the experiment
//	labels      object  cell coordinates, e.g. {"policy": "Interleave"}
//	machine     string  simulated machine name ("Machine A", ...)
//	config      object  the full RunConfig the cell ran under:
//	                    threads, placement, policy, preferred_node,
//	                    allocator, autonuma, thp, seed
//	seed        number  the cell's RNG seed (same as config.seed)
//	wall_cycles number  simulated wall time of the cell, cycles
//	freq_ghz    number  machine clock, to convert cycles to seconds
//	counters    object  the perf-counter profile (see machine.Counters)
//	extra       object  driver-specific scalar outputs (e.g. "lar")
//	snapshots   array   periodic counter samples, when enabled
//	breakdown   object  v2: machine-wide cycle attribution, component
//	                    bucket name -> total cycles, when cell profiling
//	                    was on (see machine.Bucket)
//	profile     object  v2: the full cycle-attribution profile — per-thread
//	                    and per-node bucket breakdowns plus the N×N node
//	                    access matrix (see machine.Profile)
//	host_ns     number  real time the cell took on the host, nanoseconds.
//	                    The ONLY nondeterministic field: normalize to 0
//	                    before diffing runs.
const SchemaVersion = "repro/bench/v2"

// SchemaV1 is the previous record layout: identical to v2 minus the
// breakdown and profile fields. The strict reader accepts both, so files
// written before the profiler keep validating.
const SchemaV1 = "repro/bench/v1"

// CellConfig is machine.RunConfig flattened to strings for the JSONL
// schema, so records stay readable without this package's enum values.
type CellConfig struct {
	Threads       int    `json:"threads"`
	Placement     string `json:"placement"`
	Policy        string `json:"policy"`
	PreferredNode int    `json:"preferred_node"`
	Allocator     string `json:"allocator"`
	AutoNUMA      bool   `json:"autonuma"`
	THP           bool   `json:"thp"`
	Seed          uint64 `json:"seed"`
}

func configOf(cfg machine.RunConfig) CellConfig {
	return CellConfig{
		Threads:       cfg.Threads,
		Placement:     cfg.Placement.String(),
		Policy:        cfg.Policy.String(),
		PreferredNode: int(cfg.PreferredNode),
		Allocator:     cfg.Allocator,
		AutoNUMA:      cfg.AutoNUMA,
		THP:           cfg.THP,
		Seed:          cfg.Seed,
	}
}

// Record is the structured result of one grid cell; see SchemaVersion for
// the serialized layout. All fields except HostNS are deterministic for a
// fixed seed and scale.
type Record struct {
	Schema     string             `json:"schema"`
	Experiment string             `json:"experiment"`
	Cell       string             `json:"cell"`
	Labels     map[string]string  `json:"labels,omitempty"`
	Machine    string             `json:"machine,omitempty"`
	Config     CellConfig         `json:"config"`
	Seed       uint64             `json:"seed"`
	WallCycles float64            `json:"wall_cycles"`
	FreqGHz    float64            `json:"freq_ghz,omitempty"`
	Counters   machine.Counters   `json:"counters"`
	Extra      map[string]float64 `json:"extra,omitempty"`
	Snapshots  []machine.Snapshot `json:"snapshots,omitempty"`
	Breakdown  map[string]float64 `json:"breakdown,omitempty"`
	Profile    *machine.Profile   `json:"profile,omitempty"`
	HostNS     int64              `json:"host_ns"`

	// rec is the cell's event recorder when cell tracing was on; exposed
	// through TraceEvents and deliberately kept out of the JSON encoding
	// (traces are exported separately, in Chrome trace-event format).
	rec *trace.Recorder
}

// TraceEvents returns the cell's recorded event stream, nil unless
// SetCellTracing(true) was active when the cell ran.
func (r *Record) TraceEvents() []trace.Event {
	if r.rec == nil {
		return nil
	}
	return r.rec.Events
}

// Result is what every experiment driver returns: the rendered tables the
// paper shows, plus one structured Record per grid cell for the JSONL
// sink. Id is stamped by Descriptor.Run. Spans carries the request-level
// span trees of serving cells (schema repro/spans/v1, each span's Cell
// stamped with its grid cell), populated by the serve family when span
// collection is on.
type Result struct {
	Id      string
	Tables  []*report.Table
	Records []Record
	Spans   []span.Span
}

// cellTracing attaches a trace.Recorder and periodic counter snapshots to
// every machine built by machineFor. Set it up front (like SetRunner);
// not safe to toggle while a driver runs.
var cellTracing bool

// SetCellTracing toggles per-cell event tracing and counter snapshots for
// all subsequent driver runs (the numabench -trace flag). Off by default:
// untraced cells run with a nil sink and pay nothing.
func SetCellTracing(on bool) { cellTracing = on }

// cellProfiling attaches the cycle-attribution profiler to every machine
// built by machineFor, filling each record's breakdown and profile fields.
// Same contract as cellTracing: set up front, don't toggle mid-driver.
var cellProfiling bool

// SetCellProfiling toggles per-cell cycle attribution for all subsequent
// driver runs (the numabench -breakdown / -folded flags). Off by default:
// unprofiled cells pay one nil check per hook.
func SetCellProfiling(on bool) { cellProfiling = on }

// cellSpans marks serving machines for request-span collection, filling
// Result.Spans on the serve-family drivers. Same contract as cellTracing:
// set up front, don't toggle mid-driver.
var cellSpans bool

// SetCellSpans toggles request-span collection for all subsequent
// serve-family driver runs (the numabench -spans flag). Span assembly is
// observation-only: every simulated output is bit-identical on or off.
func SetCellSpans(on bool) { cellSpans = on }

// stampSpans labels a serving outcome's spans with their grid cell and
// appends them to dst.
func stampSpans(dst []span.Span, cell string, spans []span.Span) []span.Span {
	for _, s := range spans {
		s.Cell = cell
		dst = append(dst, s)
	}
	return dst
}

// cellSnapEvery is the snapshot cadence for traced cells and the Fig 5b
// time series, in simulated cycles. Long runs stay bounded because the
// machine thins the series (drops every other sample, doubles cadence)
// once it hits its cap.
const cellSnapEvery = 1e5

// startCell marks the host-time start of a grid cell. Host time is the
// one nondeterministic record field; everything else derives from the
// simulation.
func startCell() time.Time { return time.Now() }

// finishCell builds the structured record for a completed cell: the full
// configuration, counters, trace recorder and snapshot series are read
// off the machine; wall is the cell's simulated wall time.
func finishCell(start time.Time, cell string, labels map[string]string, m *machine.Machine, wall float64) Record {
	cfg := m.Config()
	r := Record{
		Schema:     SchemaVersion,
		Cell:       cell,
		Labels:     labels,
		Machine:    m.Spec.Name,
		Config:     configOf(cfg),
		Seed:       cfg.Seed,
		WallCycles: wall,
		FreqGHz:    m.Spec.FreqGHz,
		Counters:   m.Counters(),
		Snapshots:  m.Snapshots(),
		HostNS:     time.Since(start).Nanoseconds(),
	}
	if rec, ok := m.Trace().(*trace.Recorder); ok {
		r.rec = rec
	}
	if p := m.Profile(); p != nil {
		r.Profile = p
		r.Breakdown = p.TotalsByName()
	}
	return r
}

// WriteJSONL appends one JSON object per record to w, newline-delimited.
// Missing Schema fields are stamped with SchemaVersion. Output order is
// input order; for a fixed seed everything but host_ns is deterministic.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		r := recs[i]
		if r.Schema == "" {
			r.Schema = SchemaVersion
		}
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses newline-delimited records, rejecting unknown fields,
// wrong schemas, and records with no experiment or cell id — the strict
// complement of WriteJSONL, so a round-trip validates the schema.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Schema != SchemaVersion && rec.Schema != SchemaV1 {
			return nil, fmt.Errorf("line %d: schema %q, want %q or %q",
				line, rec.Schema, SchemaVersion, SchemaV1)
		}
		if rec.Experiment == "" || rec.Cell == "" {
			return nil, fmt.Errorf("line %d: record missing experiment or cell id", line)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
