package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/report"
	"repro/internal/tune"
)

// TuneSize maps a Scale onto the tuning subsystem's workload sizing, so
// numatune and the registry driver agree with the figure drivers on
// dataset dimensions (and share their memoized builds).
func TuneSize(s Scale) tune.Size {
	return tune.Size{
		AggRecords:     s.AggRecords,
		AggCardinality: s.AggCardinality,
		JoinR:          s.JoinR,
	}
}

// tuneRegretCells are the machine x workload cells of the flowchart-regret
// table beyond W1/A (which the exhaustive grid campaign covers).
var tuneRegretCells = [][2]string{
	{"A", "W3"}, {"B", "W1"}, {"B", "W3"}, {"C", "W1"}, {"C", "W3"},
}

// TuneResult is the tuning-campaign experiment: the three strategies
// raced on W1/Machine A (the exhaustive grid doubles as ground truth),
// plus successive-halving campaigns on the remaining machine x workload
// cells for the flowchart-regret validation.
type TuneResult struct {
	Grid    *tune.Result // exhaustive grid, W1/A — the true optimum
	Descent *tune.Result // greedy coordinate descent, W1/A
	SHA     *tune.Result // successive halving, W1/A

	RegretRows []report.RegretRow // A/B/C x W1/W3, machine-major order
	Records    []Record
}

// Tune runs the tuning-campaign experiment at a scale. Every campaign
// dispatches its trials through the shared runner, so the cells
// parallelize like any other driver while artifacts stay byte-identical.
func Tune(s Scale) (TuneResult, error) {
	size := TuneSize(s)
	var out TuneResult
	run := func(strategy, wl, mc string) (*tune.Result, error) {
		res, err := tune.Run(tune.Spec{
			Strategy: strategy, Space: tune.DefaultSpace(),
			Workload: wl, Machine: mc, Size: size,
		}, runner, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		recs, err := tuneRecords(res)
		if err != nil {
			return nil, err
		}
		out.Records = append(out.Records, recs...)
		return res, nil
	}

	var err error
	if out.Grid, err = run(tune.StrategyGrid, "W1", "A"); err != nil {
		return out, err
	}
	if out.Descent, err = run(tune.StrategyDescent, "W1", "A"); err != nil {
		return out, err
	}
	if out.SHA, err = run(tune.StrategySHA, "W1", "A"); err != nil {
		return out, err
	}

	// W1/A's regret comes from the grid, whose schedule always measures
	// the advised configuration at full size.
	row, err := tune.Regret(out.Grid)
	if err != nil {
		return out, err
	}
	out.RegretRows = append(out.RegretRows, row)
	// The other cells use successive halving, which may eliminate the
	// advised point before the full-size rung — the fallback measures it
	// through the identical trial path, outside the campaign's budget.
	for _, cell := range tuneRegretCells {
		res, err := run(tune.StrategySHA, cell[1], cell[0])
		if err != nil {
			return out, err
		}
		row, err := tune.RegretWithFallback(res)
		if err != nil {
			return out, err
		}
		out.RegretRows = append(out.RegretRows, row)
	}
	return out, nil
}

// RenderStrategies compares the three strategies on W1/A: what each found
// and what it spent, relative to the exhaustive grid's ground truth.
func (r TuneResult) RenderStrategies() *report.Table {
	t := &report.Table{
		Title: "Tuning strategies on W1, Machine A (grid = ground truth)",
		Header: []string{"strategy", "trials", "cycles spent", "% of grid spend",
			"best configuration", "best cycles", "vs grid optimum"},
	}
	gridBest := r.Grid.Best.WallCycles
	gridSpend := r.Grid.CyclesSpent
	for _, res := range []*tune.Result{r.Grid, r.Descent, r.SHA} {
		t.AddRow(res.Spec.Strategy, len(res.Records), report.Billions(res.CyclesSpent),
			report.Pct(res.CyclesSpent/gridSpend), res.Best.Key,
			report.Billions(res.Best.WallCycles),
			report.Pct((res.Best.WallCycles-gridBest)/gridBest))
	}
	return t
}

// RenderTop ranks the grid campaign's best configurations against the OS
// default.
func (r TuneResult) RenderTop() *report.Table {
	return report.TopConfigsTable("Top configurations, W1 on Machine A (exhaustive grid)",
		tune.TopConfigs(r.Grid.Records), 10, tune.DefaultCycles(r.Grid.Records))
}

// RenderMarginals aggregates the grid per knob value: each knob's marginal
// gain is the spread of its mean-vs-axis-best column.
func (r TuneResult) RenderMarginals() *report.Table {
	return report.KnobMarginalsTable("Per-knob marginals, W1 on Machine A (exhaustive grid)",
		tune.Marginals(r.Grid.Spec.Space, r.Grid.Records))
}

// RenderRegret is the flowchart-regret validation across machines and
// workloads.
func (r TuneResult) RenderRegret() *report.Table {
	return report.FlowchartRegretTable("Flowchart regret: core.Advise vs campaign optimum", r.RegretRows)
}

// tuneRecords converts a campaign's trials into the bench JSONL schema so
// numabench's sink, validator and summary tooling handle the tune
// experiment like any other. Campaign artifacts written by numatune use
// the richer repro/tune/v1 schema instead.
func tuneRecords(res *tune.Result) ([]Record, error) {
	m, err := tune.MachineFor(res.Spec.Machine)
	if err != nil {
		return nil, err
	}
	recs := make([]Record, 0, len(res.Records))
	for i := range res.Records {
		tr := res.Records[i]
		labels := map[string]string{
			"strategy": tr.Strategy,
			"workload": tr.Workload,
			"machine":  tr.Machine,
			"key":      tr.Key,
			"rung":     strconv.Itoa(tr.Rung),
			"frac":     strconv.FormatFloat(tr.Frac, 'g', -1, 64),
		}
		if tr.Objective != "" {
			labels["objective"] = tr.Objective
		}
		recs = append(recs, Record{
			Schema:  SchemaVersion,
			Cell:    fmt.Sprintf("%s#%03d", tr.Campaign, tr.Trial),
			Labels:  labels,
			Machine: m.Spec.Name,
			Config: CellConfig{
				Threads:   tr.Threads,
				Placement: tr.Point.Placement,
				Policy:    tr.Point.Policy,
				Allocator: tr.Point.Allocator,
				AutoNUMA:  tr.Point.AutoNUMA == "on",
				THP:       tr.Point.THP == "on",
				Seed:      tr.Seed,
			},
			Seed:       tr.Seed,
			WallCycles: tr.WallCycles,
			FreqGHz:    m.Spec.FreqGHz,
			Counters:   tr.Counters,
			Extra:      map[string]float64{"lar": tr.LAR, "frac": tr.Frac, "rung": float64(tr.Rung)},
			Breakdown:  tr.Breakdown,
		})
	}
	return recs, nil
}
