package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/span"
)

// The serve-adapt experiment (an extension beyond the paper) puts the
// online placement orchestrator under the open-loop serving workload: on
// each machine preset, the OS-default configuration serves the bursty
// arrival stream twice — once static, once with the orchestrator attached
// — and the result is the p999 delta attributable to the orchestrator's
// online moves, decomposed by the span-based blame join (which
// mechanism×initiator the tail cohort's service cycles went to) and
// audited by the orchestrator's per-tick decision journal.
//
// Span collection is always on for these cells (the blame join is the
// experiment's point); it is observation-only, so the measured latencies
// match an uninstrumented run bit for bit.

// serveAdaptConfigs are the two cell configurations per machine.
var serveAdaptConfigs = []string{"static", "adaptive"}

// serveAdaptMachines lists the machine presets the experiment sweeps.
var serveAdaptMachines = []string{"A", "B", "C"}

// ServeAdaptCell is one machine × config serving measurement.
type ServeAdaptCell struct {
	Machine string // preset letter ("A", "B", "C")
	Config  string // "static" or "adaptive"
	Out     *serve.Outcome
	// Stats/Journal hold the orchestrator's totals and per-tick decision
	// records; zero/nil for static cells.
	Stats   orchestrator.Stats
	Journal []orchestrator.Decision
	// Blame is the span-based tail attribution for this cell.
	Blame []span.BlameRow
}

// ServeAdaptResult holds the orchestrator-under-serving experiment.
type ServeAdaptResult struct {
	SLOLabels []string
	Cells     []ServeAdaptCell
	Records   []Record
	// Spans holds every cell's request-span tree (Cell-stamped). Unlike
	// the serve experiment, spans are always collected here.
	Spans []span.Span
}

// ServeAdapt runs the orchestrator-under-serving experiment at a scale.
// Serve options shape the stream, Adapt options the orchestrator.
func ServeAdapt(s Scale, o Options) (ServeAdaptResult, error) {
	out := ServeAdaptResult{SLOLabels: serve.SLOMultiples()}
	type cell struct {
		c   ServeAdaptCell
		rec Record
	}
	grid := len(serveAdaptMachines) * len(serveAdaptConfigs)
	cells, err := core.Collect(runner, grid, func(i int) (cell, error) {
		start := startCell()
		letter := serveAdaptMachines[i/len(serveAdaptConfigs)]
		config := serveAdaptConfigs[i%len(serveAdaptConfigs)]

		m := serveMachine(letter, true)
		m.Configure(machine.DefaultConfig(serveWorkers))
		sp := serveSpecFor(s, o.Serve, m.Spec.Name)
		sp.Arrival = serve.ArrivalBursty

		var orch *orchestrator.Orchestrator
		if config == "adaptive" {
			oc := orchestrator.DefaultConfig()
			if o.Adapt.Period > 0 {
				oc.Period = o.Adapt.Period
			}
			if o.Adapt.BudgetFrac > 0 {
				oc.BudgetFrac = o.Adapt.BudgetFrac
			}
			orch = orchestrator.New(oc)
			orch.Attach(m)
			defer orch.Detach()
		}

		so := serve.Run(m, sp)
		c := ServeAdaptCell{Machine: letter, Config: config, Out: so, Blame: so.Blame()}
		if orch != nil {
			c.Stats = orch.Stats()
			c.Journal = orch.Journal()
		}

		name := letter + "/" + config
		rec := finishCell(start, name,
			map[string]string{"machine": letter, "config": config, "arrival": sp.Arrival},
			m, so.Result.WallCycles)
		rec.Extra = serveExtra(so)
		rec.Extra["ticks"] = float64(c.Stats.Ticks)
		rec.Extra["thread_moves"] = float64(c.Stats.ThreadMoves)
		rec.Extra["page_moves"] = float64(c.Stats.PageMoves)
		rec.Extra["reweights"] = float64(c.Stats.Reweights)
		return cell{c, rec}, nil
	})
	if err != nil {
		return ServeAdaptResult{}, err
	}
	for _, c := range cells {
		out.Cells = append(out.Cells, c.c)
		out.Records = append(out.Records, c.rec)
		out.Spans = stampSpans(out.Spans, c.c.Machine+"/"+c.c.Config, c.c.Out.Spans)
	}
	return out, nil
}

// find returns the cell for one machine × config.
func (r ServeAdaptResult) find(mc, cf string) (ServeAdaptCell, bool) {
	for _, c := range r.Cells {
		if c.Machine == mc && c.Config == cf {
			return c, true
		}
	}
	return ServeAdaptCell{}, false
}

// RenderP999 is the headline table: per machine, the static versus
// adaptive tail latencies and the orchestrator activity behind the delta.
// A negative delta means the orchestrator's online moves shortened the
// p999 tail; a positive one means its migrations cost more than they
// recovered.
func (r ServeAdaptResult) RenderP999() *report.Table {
	t := &report.Table{
		Title: "Orchestrator under serving: p999 latency, static vs adaptive (bursty arrivals, cycles)",
		Header: []string{"machine", "p999 static", "p999 adaptive", "delta", "p99 static",
			"p99 adaptive", "ticks", "thread moves", "page moves"},
	}
	for _, mc := range serveAdaptMachines {
		st, ok1 := r.find(mc, "static")
		ad, ok2 := r.find(mc, "adaptive")
		if !ok1 || !ok2 {
			continue
		}
		delta := "-"
		if st.Out.Metrics.P999 > 0 {
			delta = fmt.Sprintf("%+.1f%%",
				100*(ad.Out.Metrics.P999-st.Out.Metrics.P999)/st.Out.Metrics.P999)
		}
		t.AddRow(mc,
			report.Cycles(st.Out.Metrics.P999), report.Cycles(ad.Out.Metrics.P999), delta,
			report.Cycles(st.Out.Metrics.P99), report.Cycles(ad.Out.Metrics.P99),
			ad.Stats.Ticks, ad.Stats.ThreadMoves, ad.Stats.PageMoves)
	}
	return t
}

// RenderBlame is the span-based tail attribution for every cell: which
// mechanism, driven by which initiator, the tail cohort's service cycles
// went to.
func (r ServeAdaptResult) RenderBlame() *report.Table {
	var cells []report.BlameCell
	for _, c := range r.Cells {
		cells = append(cells, report.BlameCell{
			Cell: c.Machine + "/" + c.Config,
			Rows: c.Blame,
		})
	}
	return report.BlameTable(
		"p999 blame: migration-family service cycles by mechanism and initiator", cells)
}

// RenderDecisions is the orchestrator's decision journal for the adaptive
// cells, restricted to ticks that planned actions (observe-only ticks are
// elided; the full journal rides in the Chrome trace as orch_decision
// events).
func (r ServeAdaptResult) RenderDecisions() *report.Table {
	var cells []report.DecisionsCell
	for _, mc := range serveAdaptMachines {
		ad, ok := r.find(mc, "adaptive")
		if !ok {
			continue
		}
		var acting []orchestrator.Decision
		for _, d := range ad.Journal {
			if len(d.Actions) > 0 {
				acting = append(acting, d)
			}
		}
		cells = append(cells, report.DecisionsCell{Cell: mc + "/adaptive", Decs: acting})
	}
	return report.DecisionsTable(
		"Orchestrator decision journal (action ticks only; observe-only ticks elided)", cells)
}
