package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/span"
	"repro/internal/trace"
	"repro/internal/tune"
)

// serveWorkers is the serving thread count of every cell, matching the
// figure drivers' 16-thread measurement baseline (and the c of the G/G/c
// queueing overlay).
const serveWorkers = 16

// ServeOptions are the numabench-facing overrides for the serve
// experiment; zero values defer to the Scale and the serve defaults.
type ServeOptions struct {
	// Requests overrides Scale.ServeRequests (the open-loop stream length).
	Requests int
	// Util is the offered utilization the arrival rate targets (0 = 0.7).
	Util float64
}

var serveOpts ServeOptions

// SetServeOptions overrides the serve experiment's stream length and
// offered load as a package-wide default.
//
// Deprecated: pass Options{Serve: ...} to Descriptor.Run instead; the
// global only applies when Run receives a zero ServeOptions.
func SetServeOptions(o ServeOptions) { serveOpts = o }

// serveArrivals are the two arrival processes each configuration serves.
var serveArrivals = []string{serve.ArrivalPoisson, serve.ArrivalBursty}

// ServeCell is one serving grid cell: a machine configuration facing one
// arrival process.
type ServeCell struct {
	Name    string // "default/poisson", "tuned/bursty", ...
	Config  string // "default" or "tuned"
	Arrival string
	Out     *serve.Outcome
}

// ServeResult is the open-loop serving experiment: the OS-default and
// paper-tuned configurations of Machine A each serving a Poisson and a
// bursty arrival stream at identical offered load, plus a WS latency
// campaign whose regret tests the throughput-derived flowchart against
// the p99 objective.
type ServeResult struct {
	MeanService float64 // calibrated per-request service time, cycles
	SLOLabels   []string
	Cells       []ServeCell
	// Regret compares core.Advise's configuration against the latency
	// campaign's best, both measured on the WS workload's p99.
	Regret   report.ServeRegretRow
	Campaign *tune.Result
	Records  []Record
	// Spans holds every cell's request-span tree (Cell-stamped), populated
	// only when SetCellSpans is on.
	Spans []span.Span
}

// serveSpec builds the shared serving spec for a scale: dataset dimensions
// follow the figure drivers, the stream length follows the scale (or the
// options override), and the arrival rate and SLO ladder anchor to the
// calibrated default-config service time so every cell faces the same
// offered load.
func serveSpec(s Scale, o ServeOptions) serve.Spec {
	return serveSpecFor(s, o, "Machine A")
}

// serveSpecFor is serveSpec anchored to a named machine's calibrated
// service time, so the serve-adapt sweep offers each machine a load
// proportional to its own speed.
func serveSpecFor(s Scale, o ServeOptions, machineName string) serve.Spec {
	req := s.ServeRequests
	if o.Requests > 0 {
		req = o.Requests
	}
	sp := serve.Spec{
		Requests: req,
		Warmup:   req / 16,
		Workers:  serveWorkers,
		Seed:     1,
		DataRows: s.AggRecords,
		DataCard: s.AggCardinality,
		JoinRows: s.JoinR,
		TPCHSF:   s.TPCHSF,
	}.Normalize()
	mean := serve.CalibratedMeanService(machineName, sp)
	sp.MeanGap = serve.GapFor(mean, sp.Workers, o.Util)
	sp.SLOs = serve.DefaultSLOs(mean)
	return sp
}

// serveMachine builds a serving cell's machine: always profiled (the tail
// attribution is the experiment's point) and always tracing (the p999
// correlation needs the event stream), independent of the global cell
// toggles. Both are observation-only, so the measured cycles match an
// uninstrumented run. withSpans additionally marks the machine for
// request-span collection (also observation-only).
func serveMachine(letter string, withSpans bool) *machine.Machine {
	m := machineFor(letter)
	o := machine.ObserveOptions{Profile: true, Spans: withSpans}
	if _, ok := m.Trace().(*trace.Recorder); !ok {
		o.Trace, o.SnapEvery = true, cellSnapEvery
	}
	m.Observe(o)
	return m
}

// Serve runs the open-loop serving experiment at a scale with the given
// options (zero values defer to the scale and serve defaults).
func Serve(s Scale, o ServeOptions) (ServeResult, error) {
	base := serveSpec(s, o)
	out := ServeResult{
		MeanService: serve.CalibratedMeanService("Machine A", base),
		SLOLabels:   serve.SLOMultiples(),
	}

	configs := []struct {
		name string
		cfg  machine.RunConfig
	}{
		{"default", machine.DefaultConfig(serveWorkers)},
		{"tuned", machine.TunedConfig(serveWorkers)},
	}
	type cell struct {
		sc  ServeCell
		rec Record
	}
	withSpans := cellSpans
	cells, err := core.Collect(runner, len(configs)*len(serveArrivals), func(i int) (cell, error) {
		start := startCell()
		c := configs[i/len(serveArrivals)]
		arrival := serveArrivals[i%len(serveArrivals)]
		m := serveMachine("A", withSpans)
		m.Configure(c.cfg)
		sp := base
		sp.Arrival = arrival
		o := serve.Run(m, sp)
		name := c.name + "/" + arrival
		rec := finishCell(start, name,
			map[string]string{"config": c.name, "arrival": arrival},
			m, o.Result.WallCycles)
		rec.Extra = serveExtra(o)
		return cell{ServeCell{Name: name, Config: c.name, Arrival: arrival, Out: o}, rec}, nil
	})
	if err != nil {
		return ServeResult{}, err
	}
	for _, c := range cells {
		out.Cells = append(out.Cells, c.sc)
		out.Records = append(out.Records, c.rec)
		out.Spans = stampSpans(out.Spans, c.sc.Name, c.sc.Out.Spans)
	}

	// The WS latency campaign: coordinate descent over the full knob
	// space, minimizing p99 instead of wall cycles. Its regret row is the
	// tentpole question — does the throughput-derived flowchart advice
	// also minimize the tail?
	res, err := tune.Run(tune.Spec{
		Strategy: tune.StrategyDescent, Space: tune.DefaultSpace(),
		Workload: "WS", Machine: "A", Threads: serveWorkers, Size: TuneSize(s),
	}, runner, nil, nil, nil)
	if err != nil {
		return ServeResult{}, err
	}
	out.Campaign = res
	recs, err := tuneRecords(res)
	if err != nil {
		return ServeResult{}, err
	}
	out.Records = append(out.Records, recs...)
	row, err := tune.RegretWithFallback(res)
	if err != nil {
		return ServeResult{}, err
	}
	out.Regret = report.ServeRegretRow{
		Machine:    row.Machine,
		Workload:   row.Workload,
		Objective:  "p99_latency",
		AdvisedKey: row.AdvisedKey,
		AdvisedP99: row.AdvisedCycles,
		BestKey:    row.BestKey,
		BestP99:    row.BestCycles,
	}
	return out, nil
}

// serveExtra flattens a serving outcome into the record's scalar outputs.
// Every value is finite (the serve metrics guarantee it), and SLO keys
// carry their ladder label so the summary tooling needs no side channel.
func serveExtra(o *serve.Outcome) map[string]float64 {
	mt := o.Metrics
	e := map[string]float64{
		"requests":     float64(mt.Requests),
		"mean_service": mt.MeanService,
		"mean_wait":    mt.MeanWait,
		"mean_latency": mt.MeanLatency,
		"p50":          mt.P50,
		"p90":          mt.P90,
		"p99":          mt.P99,
		"p999":         mt.P999,
		"makespan":     mt.Makespan,
		"rpbc":         mt.Throughput,
		"tail_count":   float64(o.Tail.Count),
		"setup_cycles": o.Setup,
	}
	labels := serve.SLOMultiples()
	for i, slo := range mt.SLOs {
		if i < len(labels) {
			e["slo_"+labels[i]] = slo.Attained
		}
	}
	return e
}

// RenderSummary is the per-cell latency summary with SLO attainment.
func (r ServeResult) RenderSummary() *report.Table {
	rows := make([]report.LatencyRow, 0, len(r.Cells))
	for _, c := range r.Cells {
		mt := c.Out.Metrics
		row := report.LatencyRow{
			Cell: c.Name, Arrival: c.Arrival, Requests: mt.Requests,
			MeanService: mt.MeanService, MeanLatency: mt.MeanLatency,
			P50: mt.P50, P99: mt.P99, P999: mt.P999,
		}
		for _, slo := range mt.SLOs {
			row.SLOs = append(row.SLOs, slo.Attained)
		}
		rows = append(rows, row)
	}
	return report.LatencySummaryTable(
		fmt.Sprintf("Open-loop serving on Machine A, %d workers (latency in cycles; SLOs at 5x/20x/100x the calibrated mean service %s)",
			serveWorkers, report.Cycles(r.MeanService)),
		r.SLOLabels, rows)
}

// RenderHistogram is the log2 latency distribution per cell.
func (r ServeResult) RenderHistogram() *report.Table {
	var rows []report.LatencyHistRow
	for _, c := range r.Cells {
		mt := c.Out.Metrics
		for _, hb := range mt.Hist {
			share := 0.0
			if mt.Requests > 0 {
				share = float64(hb.Count) / float64(mt.Requests)
			}
			rows = append(rows, report.LatencyHistRow{
				Cell: c.Name, Lo: hb.Lo, Hi: hb.Hi, Count: hb.Count, Share: share,
			})
		}
	}
	return report.LatencyHistogramTable("Serving latency histograms (power-of-two buckets)", rows)
}

// RenderTail is the p999 attribution: queueing share, profile-bucket
// shares and trace-event rates, tail vs all requests.
func (r ServeResult) RenderTail() *report.Table {
	var rows []report.TailRow
	for _, c := range r.Cells {
		tl := c.Out.Tail
		rows = append(rows, report.TailRow{
			Cell: c.Name, Component: tl.QueueWait.Name,
			All: tl.QueueWait.All, Tail: tl.QueueWait.Tail,
		})
		for _, cp := range tl.Buckets {
			rows = append(rows, report.TailRow{Cell: c.Name, Component: cp.Name, All: cp.All, Tail: cp.Tail})
		}
		for _, cp := range tl.Events {
			rows = append(rows, report.TailRow{Cell: c.Name, Component: cp.Name, All: cp.All, Tail: cp.Tail})
		}
	}
	return report.TailAttributionTable("p999 tail attribution (share of cycles / events per request)", rows)
}

// RenderRegret is the latency-flowchart validation row.
func (r ServeResult) RenderRegret() *report.Table {
	return report.LatencyRegretTable("Latency-flowchart regret: core.Advise vs p99-tuned optimum (WS, Machine A)",
		[]report.ServeRegretRow{r.Regret})
}
