package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
)

// ProfileCell is one configuration of the profile experiment with its full
// cycle attribution.
type ProfileCell struct {
	Name       string
	WallCycles float64
	Counters   machine.Counters
	Profile    *machine.Profile
}

// ProfileResult holds the profile experiment: W1 on Machine A under the OS
// default, under pinning alone (Table III's "modified" config), and under
// the paper's full tuned configuration — each with complete cycle
// attribution, so the Table III deltas come with the component breakdown
// that explains them.
type ProfileResult struct {
	Cells   []ProfileCell
	Records []Record
}

// profileSeed matches Table3's representative noisy draw, so the default
// cell exhibits the migration-heavy behaviour the paper profiles.
const profileSeed = 104

// Profile runs the three configurations with the cycle-attribution
// profiler attached (always on in this driver — attribution is its
// output). The pinned cell isolates what Sparse affinity alone buys
// (Table III); the tuned cell adds Interleave, tbbmalloc and daemons off
// (Figure 10), whose interleaving trades LAR for bandwidth.
func Profile(s Scale) (ProfileResult, error) {
	type spec struct {
		name string
		cfg  machine.RunConfig
	}
	base := baseConfig(16)
	defCfg := base
	defCfg.Placement = machine.PlaceNone
	defCfg.AutoNUMA = true // OS default keeps balancing on
	pinCfg := base
	pinCfg.Placement = machine.PlaceSparse
	tunedCfg := machine.TunedConfig(16)
	specs := []spec{
		{"default", defCfg},
		{"pinned", pinCfg},
		{"tuned", tunedCfg},
	}
	for i := range specs {
		specs[i].cfg.Seed = profileSeed
	}
	type cell struct {
		pc  ProfileCell
		rec Record
	}
	cells, err := core.Collect(runner, len(specs), func(i int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		m.Configure(specs[i].cfg)
		m.SetProfiling(true)
		res := runW1(m, s, datagen.MovingClusterDist).Result
		rec := finishCell(start, specs[i].name,
			map[string]string{
				"placement": specs[i].cfg.Placement.String(),
				"policy":    specs[i].cfg.Policy.String(),
				"allocator": specs[i].cfg.Allocator,
			}, m, res.WallCycles)
		return cell{ProfileCell{
			Name:       specs[i].name,
			WallCycles: res.WallCycles,
			Counters:   res.Counters,
			Profile:    m.Profile(),
		}, rec}, nil
	})
	if err != nil {
		return ProfileResult{}, err
	}
	out := ProfileResult{}
	for _, c := range cells {
		out.Cells = append(out.Cells, c.pc)
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// RenderTable3Extended renders Table III extended: the paper's perf-counter
// rows plus per-component attributed cycles, with percent changes of the
// pinned and tuned cells against the default.
func (r ProfileResult) RenderTable3Extended() *report.Table {
	t := &report.Table{
		Title: "Table III extended: counters and attributed cycles, W1 Machine A",
		Header: []string{"metric", "default", "pinned", "tuned",
			"pinned vs default", "tuned vs default"},
	}
	def, pin, tun := r.Cells[0], r.Cells[1], r.Cells[2]
	pct := func(a, b float64) string {
		if a == 0 {
			return "n/a"
		}
		return report.Pct((b - a) / a)
	}
	crow := func(name string, f func(machine.Counters) uint64) {
		a, b, c := f(def.Counters), f(pin.Counters), f(tun.Counters)
		t.AddRow(name, a, b, c, pct(float64(a), float64(b)), pct(float64(a), float64(c)))
	}
	crow("thread migrations", func(c machine.Counters) uint64 { return c.ThreadMigrations })
	crow("cache misses", func(c machine.Counters) uint64 { return c.CacheMisses })
	crow("tlb misses", func(c machine.Counters) uint64 { return c.TLBMisses })
	crow("local memory accesses", func(c machine.Counters) uint64 { return c.LocalAccesses })
	crow("remote memory accesses", func(c machine.Counters) uint64 { return c.RemoteAccesses })
	crow("minor faults", func(c machine.Counters) uint64 { return c.MinorFaults })
	crow("page migrations", func(c machine.Counters) uint64 { return c.PageMigrations })
	t.AddRow("local access ratio",
		fmt.Sprintf("%.3f", def.Counters.LAR()),
		fmt.Sprintf("%.3f", pin.Counters.LAR()),
		fmt.Sprintf("%.3f", tun.Counters.LAR()),
		pct(def.Counters.LAR(), pin.Counters.LAR()),
		pct(def.Counters.LAR(), tun.Counters.LAR()))
	t.AddRow("wall cycles (G)",
		report.Billions(def.WallCycles), report.Billions(pin.WallCycles),
		report.Billions(tun.WallCycles),
		pct(def.WallCycles, pin.WallCycles), pct(def.WallCycles, tun.WallCycles))
	// The attribution rows: the component cycles behind the counter deltas.
	dTot, pTot, uTot := def.Profile.Totals(), pin.Profile.Totals(), tun.Profile.Totals()
	for _, b := range machine.Buckets() {
		if dTot[b] == 0 && pTot[b] == 0 && uTot[b] == 0 {
			continue
		}
		t.AddRow(b.String()+" (Gcycles)",
			report.Billions(dTot[b]), report.Billions(pTot[b]), report.Billions(uTot[b]),
			pct(dTot[b], pTot[b]), pct(dTot[b], uTot[b]))
	}
	return t
}

// RenderBreakdown renders the percentage-stacked component breakdown of
// the three configurations.
func (r ProfileResult) RenderBreakdown() *report.Table {
	cols := make([]report.BreakdownColumn, len(r.Cells))
	for i, c := range r.Cells {
		cols[i] = report.BreakdownColumn{Name: c.Name, Profile: c.Profile}
	}
	return report.BreakdownTable("Cycle breakdown (% of attributed cycles)", cols...)
}

// RenderMatrices renders each cell's node access matrix, numastat-style.
func (r ProfileResult) RenderMatrices() []*report.Table {
	out := make([]*report.Table, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = report.NodeMatrixTable("Node access matrix: "+c.Name, c.Profile)
	}
	return out
}
