package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/numaop"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/tpch"
)

// The numaware experiment stress-tests the paper's central thesis — that
// application-AGNOSTIC knobs (placement, policy, allocator, AutoNUMA,
// THP) capture most of the NUMA win — against application-AWARE
// operators from internal/numaop. Three join variants per machine:
//
//	agnostic-tuned — the flowchart's advice applied to the agnostic
//	                 operator: HashJoin under TunedConfig (Sparse +
//	                 Interleave + tbbmalloc, daemons off).
//	aware-untuned  — the NUMA-aware operator with every knob at the OS
//	                 default: MPSM under DefaultConfig (no pinning,
//	                 first touch, ptmalloc, AutoNUMA + THP on). The
//	                 operator's placement assumptions must survive
//	                 migrating threads.
//	aware-tuned    — MPSM with the knobs set to SUPPORT it: Sparse
//	                 pinning + FIRST TOUCH + tbbmalloc, daemons off.
//	                 Deliberately not the flowchart's Interleave: the
//	                 flowchart's advice is derived for operators that
//	                 don't manage placement, and Interleave would scatter
//	                 the chunks MPSM deliberately localizes — the exact
//	                 point where agnostic advice stops being enough.
//
// A storage sweep rides along: the TPC-H Q1 lineitem scan (Quickstep
// profile) under identical knobs with single-region vs per-node chunked
// storage, gating on the dram_remote_* share of the scan's cycles.

// numawareVariants are the join cell variants, in report order.
var numawareVariants = []string{"agnostic-tuned", "aware-untuned", "aware-tuned"}

// numawareMachines are the machine letters, in report order.
var numawareMachines = []string{"A", "B", "C"}

// NumawareJoinCell is one machine x variant join measurement.
type NumawareJoinCell struct {
	Machine  string
	Variant  string
	Wall     float64
	Build    float64
	Probe    float64
	LAR      float64
	RemoteSh float64 // dram_remote_* share of attributed cycles
	Matches  uint64
	Checksum uint64
	STuples  int
}

// NumawareStorageCell is one machine x storage-mode scan measurement.
type NumawareStorageCell struct {
	Machine  string
	Mode     string // "single" or "chunked"
	Wall     float64
	LAR      float64
	RemoteSh float64
	Rows     int
}

// NumawareResult holds the full experiment.
type NumawareResult struct {
	// Join[machine letter][variant name].
	Join map[string]map[string]NumawareJoinCell
	// Storage[machine letter][mode].
	Storage map[string]map[string]NumawareStorageCell
	Records []Record
}

// numawareJoinConfig returns the RunConfig for a join variant.
func numawareJoinConfig(variant string, threads int) machine.RunConfig {
	switch variant {
	case "agnostic-tuned":
		return machine.TunedConfig(threads)
	case "aware-untuned":
		cfg := machine.DefaultConfig(threads)
		cfg.Seed = 9 // same default-config seed Figure 8 uses
		return cfg
	case "aware-tuned":
		return w5TunedConfig(threads, false)
	}
	panic("experiments: unknown numaware variant " + variant)
}

// Numaware runs the aware-vs-agnostic sweep: 9 join cells (3 machines x
// 3 variants) plus 6 storage cells (3 machines x {single, chunked}).
// Profiling is attached to every cell regardless of the -profile flag —
// the verdict needs the dram_remote_* breakdown. Both join operators
// reset counters (and with them the profile) after their untimed setup,
// and RunQuery does the same, so every cell's profile covers exactly its
// measured phase.
func Numaware(s Scale) (NumawareResult, error) {
	tables := datagen.CachedJoin(s.JoinR, datagen.DefaultJoinRatio, 17)
	db := tpch.GenerateCached(s.TPCHSF, 41)

	const modes = 2 // storage: 0 = single, 1 = chunked
	joinCells := len(numawareMachines) * len(numawareVariants)
	total := joinCells + len(numawareMachines)*modes

	type cell struct {
		join    *NumawareJoinCell
		storage *NumawareStorageCell
		rec     Record
	}
	cells, err := core.Collect(runner, total, func(i int) (cell, error) {
		start := startCell()
		if i < joinCells {
			mc := numawareMachines[i/len(numawareVariants)]
			variant := numawareVariants[i%len(numawareVariants)]
			m := machineFor(mc)
			m.Observe(machine.ObserveOptions{Profile: true})
			m.Configure(numawareJoinConfig(variant, m.Spec.HardwareThreads()))
			var out query.JoinOutcome
			if variant == "agnostic-tuned" {
				out = query.HashJoin(m, query.JoinSpec{Tables: tables})
			} else {
				out = numaop.MPSMJoin(m, query.JoinSpec{Tables: tables})
			}
			jc := NumawareJoinCell{
				Machine:  mc,
				Variant:  variant,
				Wall:     out.Result.WallCycles,
				Build:    out.BuildCycles,
				Probe:    out.ProbeCycles,
				LAR:      out.Result.Counters.LAR(),
				RemoteSh: report.RemoteDRAMShare(m.Profile()),
				Matches:  out.Matches,
				Checksum: out.Checksum,
				STuples:  len(tables.S),
			}
			rec := finishCell(start, "join/"+mc+"/"+variant, map[string]string{
				"machine": mc, "variant": variant, "operator": operatorOf(variant),
			}, m, jc.Wall)
			rec.Extra = map[string]float64{
				"build_cycles":       jc.Build,
				"probe_cycles":       jc.Probe,
				"lar":                jc.LAR,
				"remote_cycle_share": jc.RemoteSh,
				"matches":            float64(jc.Matches),
				"tuples_per_kcycle":  float64(jc.STuples) / jc.Wall * 1e3,
			}
			return cell{join: &jc, rec: rec}, nil
		}

		si := i - joinCells
		mc := numawareMachines[si/modes]
		mode := "single"
		opts := tpch.StorageOptions{}
		if si%modes == 1 {
			mode = "chunked"
			opts.Chunked = true
		}
		m := machineFor(mc)
		m.Configure(w5TunedConfig(m.Spec.HardwareThreads(), false))
		e := tpch.NewEngineStorage(tpch.ProfileByName("Quickstep"), m, db, opts)
		m.Observe(machine.ObserveOptions{Profile: true})
		res := e.RunQuery(1) // resets counters+profile, then the full scan
		sc := NumawareStorageCell{
			Machine:  mc,
			Mode:     mode,
			Wall:     res.Wall,
			LAR:      m.Counters().LAR(),
			RemoteSh: report.RemoteDRAMShare(m.Profile()),
			Rows:     len(db.Lineitems),
		}
		rec := finishCell(start, "storage/"+mc+"/"+mode, map[string]string{
			"machine": mc, "storage": mode, "engine": "Quickstep", "query": "q1",
		}, m, sc.Wall)
		rec.Extra = map[string]float64{
			"lar":                sc.LAR,
			"remote_cycle_share": sc.RemoteSh,
			"rows":               float64(sc.Rows),
			"tuples_per_kcycle":  float64(sc.Rows) / sc.Wall * 1e3,
		}
		return cell{storage: &sc, rec: rec}, nil
	})
	if err != nil {
		return NumawareResult{}, err
	}

	out := NumawareResult{
		Join:    map[string]map[string]NumawareJoinCell{},
		Storage: map[string]map[string]NumawareStorageCell{},
	}
	for _, c := range cells {
		out.Records = append(out.Records, c.rec)
		if c.join != nil {
			if out.Join[c.join.Machine] == nil {
				out.Join[c.join.Machine] = map[string]NumawareJoinCell{}
			}
			out.Join[c.join.Machine][c.join.Variant] = *c.join
		}
		if c.storage != nil {
			if out.Storage[c.storage.Machine] == nil {
				out.Storage[c.storage.Machine] = map[string]NumawareStorageCell{}
			}
			out.Storage[c.storage.Machine][c.storage.Mode] = *c.storage
		}
	}

	// Cross-check: every variant must produce the same join answer.
	want := out.Join[numawareMachines[0]][numawareVariants[0]]
	for _, mc := range numawareMachines {
		for _, v := range numawareVariants {
			got := out.Join[mc][v]
			if got.Matches != want.Matches || got.Checksum != want.Checksum {
				return NumawareResult{}, fmt.Errorf(
					"experiments: join answers diverged: %s/%s got (%d, %d), want (%d, %d)",
					mc, v, got.Matches, got.Checksum, want.Matches, want.Checksum)
			}
		}
	}
	return out, nil
}

// operatorOf maps a variant to its operator label.
func operatorOf(variant string) string {
	if variant == "agnostic-tuned" {
		return "hashjoin"
	}
	return "mpsm"
}

// RenderJoin renders the 9-cell join grid.
func (r NumawareResult) RenderJoin() *report.Table {
	t := &report.Table{Title: "NUMA-aware vs agnostic join: MPSM sort-merge vs tuned hash join (W3 tables)"}
	t.Header = []string{"machine", "variant", "operator", "Gcycles", "tuples/kcycle", "LAR", "remote-cycle share", "build%", "probe%"}
	for _, mc := range numawareMachines {
		for _, v := range numawareVariants {
			c := r.Join[mc][v]
			t.AddRow(mc, v, operatorOf(v),
				report.Billions(c.Wall),
				fmt.Sprintf("%6.2f", float64(c.STuples)/c.Wall*1e3),
				fmt.Sprintf("%5.3f", c.LAR),
				fmt.Sprintf("%5.1f%%", c.RemoteSh*100),
				fmt.Sprintf("%4.1f%%", c.Build/c.Wall*100),
				fmt.Sprintf("%4.1f%%", c.Probe/c.Wall*100))
		}
	}
	return t
}

// RenderStorage renders the single-vs-chunked scan comparison.
func (r NumawareResult) RenderStorage() *report.Table {
	t := &report.Table{Title: "TPC-H Q1 scan (Quickstep): single-region vs per-node chunked storage, identical knobs"}
	t.Header = []string{"machine", "single remote share", "chunked remote share", "delta (pp)", "single Gcycles", "chunked Gcycles", "speedup"}
	for _, mc := range numawareMachines {
		s, c := r.Storage[mc]["single"], r.Storage[mc]["chunked"]
		t.AddRow(mc,
			fmt.Sprintf("%5.1f%%", s.RemoteSh*100),
			fmt.Sprintf("%5.1f%%", c.RemoteSh*100),
			fmt.Sprintf("%+5.1f", (c.RemoteSh-s.RemoteSh)*100),
			report.Billions(s.Wall),
			report.Billions(c.Wall),
			fmt.Sprintf("%5.2fx", s.Wall/c.Wall))
	}
	return t
}

// RenderVerdict renders the per-machine verdict on the "agnostic knobs
// suffice" thesis: how the aware operator fares against the flowchart-
// tuned agnostic one, with and without its own supporting knobs.
func (r NumawareResult) RenderVerdict() *report.Table {
	t := &report.Table{Title: "Verdict: where NUMA-aware operators beat the agnostic flowchart"}
	t.Header = []string{"machine", "aware-untuned vs agnostic-tuned", "aware-tuned vs agnostic-tuned", "verdict"}
	for _, mc := range numawareMachines {
		ag := r.Join[mc]["agnostic-tuned"].Wall
		un := r.Join[mc]["aware-untuned"].Wall
		tu := r.Join[mc]["aware-tuned"].Wall
		d1, d2 := ag/un, ag/tu
		verdict := "agnostic knobs suffice"
		switch {
		case d1 > 1.05:
			verdict = "aware wins even untuned"
		case d2 > 1.05:
			verdict = "aware wins, but needs its own knobs"
		case d2 >= 0.95:
			verdict = "parity"
		}
		t.AddRow(mc,
			fmt.Sprintf("%5.2fx", d1),
			fmt.Sprintf("%5.2fx", d2),
			verdict)
	}
	return t
}
