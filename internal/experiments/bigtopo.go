package experiments

import (
	"repro/internal/report"
	"repro/internal/tune"
)

// bigtopoCells are the machine x workload cells of the large-topology
// flowchart-regret study: the chiplet box D and the 16-node grid mesh E,
// each on the holistic aggregation (W1) and the hash join (W3). Both
// machines sit outside the paper's evaluation set, so the study asks
// whether the Figure 10 flowchart's advice still lands near the tuned
// optimum when the topology stops looking like anything it was built on.
var bigtopoCells = [][2]string{
	{"D", "W1"}, {"D", "W3"}, {"E", "W1"}, {"E", "W3"},
}

// BigTopoResult is the large-topology regret study: one successive-halving
// campaign per cell, each scored against the flowchart's advice.
type BigTopoResult struct {
	RegretRows []report.RegretRow // D/E x W1/W3, machine-major order
	Records    []Record
}

// BigTopo runs the flowchart-regret study on the large-topology machine
// presets. The campaigns dispatch through the shared trial runner exactly
// like the tune experiment, so artifacts stay byte-identical across runs.
func BigTopo(s Scale) (BigTopoResult, error) {
	size := TuneSize(s)
	var out BigTopoResult
	for _, cell := range bigtopoCells {
		res, err := tune.Run(tune.Spec{
			Strategy: tune.StrategySHA, Space: tune.DefaultSpace(),
			Workload: cell[1], Machine: cell[0], Size: size,
		}, runner, nil, nil, nil)
		if err != nil {
			return out, err
		}
		recs, err := tuneRecords(res)
		if err != nil {
			return out, err
		}
		out.Records = append(out.Records, recs...)
		row, err := tune.RegretWithFallback(res)
		if err != nil {
			return out, err
		}
		out.RegretRows = append(out.RegretRows, row)
	}
	return out, nil
}

// RenderRegret is the flowchart-regret table over the big topologies.
func (r BigTopoResult) RenderRegret() *report.Table {
	return report.FlowchartRegretTable(
		"Flowchart regret on large topologies: core.Advise vs campaign optimum", r.RegretRows)
}
