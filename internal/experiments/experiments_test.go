package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/vmm"
)

// calScale is the shared reproduction scale (see Cal), trimmed for test
// runtime on the TPC-H and Figure 3 axes.
var calScale = func() Scale {
	s := Cal
	s.TPCHSF = 0.002
	s.WarmRuns = 1
	s.Fig3Runs = 6
	return s
}()

func TestFig2Shapes(t *testing.T) {
	r, err := Fig2(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: tcmalloc fastest single-threaded (within measurement noise
	// of the runner-up), but degrades with threads.
	for _, other := range []string{"ptmalloc", "jemalloc", "Hoard", "supermalloc"} {
		if r.Seconds["tcmalloc"][0] >= r.Seconds[other][0]*1.02 {
			t.Errorf("tcmalloc 1T (%v) should beat %s (%v)", r.Seconds["tcmalloc"][0], other, r.Seconds[other][0])
		}
	}
	last := len(Fig2Threads) - 1
	if r.Seconds["tbbmalloc"][last] >= r.Seconds["tcmalloc"][last] {
		t.Error("tbbmalloc should beat tcmalloc at 16 threads")
	}
	if r.Seconds["Hoard"][last] >= r.Seconds["ptmalloc"][last] {
		t.Error("Hoard should beat ptmalloc at 16 threads")
	}
	if r.Seconds["supermalloc"][last] <= r.Seconds["tbbmalloc"][last]*2 {
		t.Error("supermalloc should be the worst scaler by a margin")
	}
	// Claim 2: mcmalloc's overhead explodes with threads; jemalloc stays low.
	if r.Overhead["mcmalloc"][last] < 3 {
		t.Errorf("mcmalloc overhead at 16T = %v, want >= 3", r.Overhead["mcmalloc"][last])
	}
	if r.Overhead["mcmalloc"][last] < r.Overhead["mcmalloc"][0]*1.5 {
		t.Errorf("mcmalloc overhead should grow with threads: %v", r.Overhead["mcmalloc"])
	}
	if r.Overhead["jemalloc"][last] > 1.6 {
		t.Errorf("jemalloc overhead = %v, should stay low", r.Overhead["jemalloc"][last])
	}
	if r.RenderTime() == nil || r.RenderOverhead() == nil {
		t.Fatal("render failed")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(calScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Relative) != calScale.Fig3Runs {
		t.Fatalf("got %d runs", len(r.Relative))
	}
	// Claim 3: unaffinitized runs fluctuate and even the best is slower.
	minR, maxR := r.Relative[0], r.Relative[0]
	for _, v := range r.Relative {
		if v < minR {
			minR = v
		}
		if v > maxR {
			maxR = v
		}
	}
	if minR < 1.05 {
		t.Errorf("best unaffinitized run (%vx) should still lose to Sparse", minR)
	}
	if maxR < minR*1.4 {
		t.Errorf("runs should fluctuate: min %v max %v", minR, maxR)
	}
	if r.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 4: pinning eliminates migrations, cuts cache misses and
	// remote accesses, and raises LAR.
	if r.Modified.ThreadMigrations != 0 {
		t.Errorf("Sparse migrations = %d, want 0", r.Modified.ThreadMigrations)
	}
	if r.Default.ThreadMigrations < 10 {
		t.Errorf("default migrations = %d, implausibly low", r.Default.ThreadMigrations)
	}
	if r.Modified.CacheMisses >= r.Default.CacheMisses {
		t.Error("pinning should cut cache misses")
	}
	if r.Modified.LAR() <= r.Default.LAR() {
		t.Errorf("pinning should raise LAR: %v vs %v", r.Modified.LAR(), r.Default.LAR())
	}
	if r.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestProfileShape(t *testing.T) {
	r, err := Profile(calScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3 {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	def, pin := r.Cells[0], r.Cells[1]
	// Table III directionally: pinning alone eliminates migrations, cuts
	// cache misses and remote accesses by double digits, and raises LAR.
	if pin.Counters.ThreadMigrations != 0 {
		t.Errorf("pinned migrations = %d, want 0", pin.Counters.ThreadMigrations)
	}
	if def.Counters.ThreadMigrations < 10 {
		t.Errorf("default migrations = %d, implausibly low", def.Counters.ThreadMigrations)
	}
	if float64(pin.Counters.CacheMisses) > 0.9*float64(def.Counters.CacheMisses) {
		t.Errorf("pinning should cut cache misses >=10%%: %d vs %d",
			pin.Counters.CacheMisses, def.Counters.CacheMisses)
	}
	if float64(pin.Counters.RemoteAccesses) > 0.9*float64(def.Counters.RemoteAccesses) {
		t.Errorf("pinning should cut remote accesses >=10%%: %d vs %d",
			pin.Counters.RemoteAccesses, def.Counters.RemoteAccesses)
	}
	if pin.Counters.LAR() <= def.Counters.LAR() {
		t.Errorf("pinning should raise LAR: %v vs %v", pin.Counters.LAR(), def.Counters.LAR())
	}
	// The attribution explains the deltas: the default pays for thread
	// migrations and AutoNUMA scanning; the pinned cell pays neither.
	dTot, pTot := def.Profile.Totals(), pin.Profile.Totals()
	if dTot[machine.BucketThreadMigration] == 0 || dTot[machine.BucketAutoNUMAScan] == 0 {
		t.Error("default cell should attribute thread-migration and AutoNUMA-scan cycles")
	}
	if pTot[machine.BucketThreadMigration] != 0 || pTot[machine.BucketAutoNUMAScan] != 0 {
		t.Error("pinned cell should attribute no migration or balancer cycles")
	}
	// Every cell: buckets reconcile with wall, matrix with counters.
	for _, c := range r.Cells {
		var sum float64
		for _, v := range c.Profile.Totals() {
			sum += v
		}
		wall := c.Profile.WallCycles()
		if diff := math.Abs(sum - wall); diff > 1e-6*wall {
			t.Errorf("%s: attributed %v != wall %v", c.Name, sum, wall)
		}
		var rows uint64
		for _, n := range c.Profile.MatrixRowSums() {
			rows += n
		}
		if rows != c.Counters.LocalAccesses+c.Counters.RemoteAccesses {
			t.Errorf("%s: matrix total %d != Local+Remote %d", c.Name,
				rows, c.Counters.LocalAccesses+c.Counters.RemoteAccesses)
		}
	}
	if r.RenderTable3Extended() == nil || r.RenderBreakdown() == nil {
		t.Fatal("render failed")
	}
	if len(r.RenderMatrices()) != 3 {
		t.Fatal("want one matrix per cell")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 5: Sparse wins below full subscription; ties at 16 threads.
	for _, dist := range r.Datasets {
		if r.Sparse[dist][0] >= r.Dense[dist][0] {
			t.Errorf("%s 2T: Sparse (%v) should beat Dense (%v)", dist, r.Sparse[dist][0], r.Dense[dist][0])
		}
		last := len(r.Threads) - 1
		ratio := r.Dense[dist][last] / r.Sparse[dist][last]
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s 16T: Dense and Sparse should converge, ratio %v", dist, ratio)
		}
	}
	if r.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestFig5aShape(t *testing.T) {
	r, err := Fig5a(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 6: AutoNUMA hurts; best overall is Interleave with it off.
	ftIdx, ilIdx := 0, 1
	// At this reduced scale the balancing tax is smaller than at full
	// scale (fewer scan passes per run); the full-scale run in
	// EXPERIMENTS.md shows the paper's ~1.6x.
	if r.OnCycles[ftIdx] <= r.OffCycles[ftIdx]*1.08 {
		t.Errorf("AutoNUMA should hurt First Touch: on=%v off=%v", r.OnCycles[ftIdx], r.OffCycles[ftIdx])
	}
	best := r.OffCycles[ilIdx]
	for i := range r.Policies {
		if r.OnCycles[i] < best || (i != ilIdx && r.OffCycles[i] < best) {
			t.Errorf("Interleave+off (%v) should be the fastest cell", best)
			break
		}
	}
	// Claim: LAR is not predictive — First Touch has the higher LAR yet
	// the default configuration loses to Interleave.
	if r.OnLAR[ftIdx] <= r.OnLAR[ilIdx] {
		t.Error("First Touch should have the higher LAR")
	}
	if r.OnCycles[ftIdx] <= r.OffCycles[ilIdx] {
		t.Error("...and still lose to Interleave with AutoNUMA off")
	}
}

func TestFig5cShape(t *testing.T) {
	r, err := Fig5c(calScale)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, a := range r.Allocators {
		idx[a] = i
	}
	// Claim 7: THP hurts the page-returning allocators, is ~neutral for
	// ptmalloc and Hoard.
	for _, bad := range []string{"jemalloc", "tcmalloc", "tbbmalloc"} {
		i := idx[bad]
		if r.On[i] <= r.Off[i]*1.03 {
			t.Errorf("THP should hurt %s: off=%v on=%v", bad, r.Off[i], r.On[i])
		}
	}
	for _, fine := range []string{"ptmalloc", "Hoard"} {
		i := idx[fine]
		if r.On[i] > r.Off[i]*1.1 {
			t.Errorf("THP should be near-neutral for %s: off=%v on=%v", fine, r.Off[i], r.On[i])
		}
	}
}

func TestFig5dShape(t *testing.T) {
	r, err := Fig5d(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 6 (cross-machine): disabling the daemons + Interleave helps on
	// every machine; Machine A gains the most, Machine B the least.
	gain := func(mc string) float64 {
		def := r.On[mc][0]   // First Touch, daemons on (the OS default)
		best := r.Off[mc][1] // Interleave, daemons off
		return (def - best) / def
	}
	gA, gB, gC := gain("A"), gain("B"), gain("C")
	if gA <= 0 || gB <= 0 || gC <= 0 {
		t.Errorf("tuning should help everywhere: A=%v B=%v C=%v", gA, gB, gC)
	}
	if gA <= gB {
		t.Errorf("Machine A (%v) should gain more than Machine B (%v)", gA, gB)
	}
}

func TestFig6W1Shape(t *testing.T) {
	r, err := Fig6W1(calScale, "A")
	if err != nil {
		t.Fatal(err)
	}
	// Claim 8: tbbmalloc + Interleave is the winning cell; the gain over
	// the ptmalloc default is substantial.
	def := r.Cell("ptmalloc", vmm.FirstTouch)
	tbb := r.Cell("tbbmalloc", vmm.Interleave)
	if tbb >= def {
		t.Errorf("tbbmalloc+IL (%v) should beat ptmalloc+FT (%v)", tbb, def)
	}
	if (def-tbb)/def < 0.25 {
		t.Errorf("W1 gain = %v, want > 25%%", (def-tbb)/def)
	}
	bestAlloc, _, _ := r.Best()
	if bestAlloc == "ptmalloc" {
		t.Error("the system default should not be the best allocator")
	}
}

func TestFig6W2MostlyPlacement(t *testing.T) {
	r, err := Fig6W2(calScale, "A")
	if err != nil {
		t.Fatal(err)
	}
	// Claim 8 (W2): gains come from Interleave, not the allocator.
	ptFT := r.Cell("ptmalloc", vmm.FirstTouch)
	ptIL := r.Cell("ptmalloc", vmm.Interleave)
	tbbIL := r.Cell("tbbmalloc", vmm.Interleave)
	placementGain := (ptFT - ptIL) / ptFT
	allocatorGain := (ptIL - tbbIL) / ptIL
	if placementGain < 0.1 {
		t.Errorf("W2 placement gain = %v, want > 10%%", placementGain)
	}
	if allocatorGain > placementGain {
		t.Errorf("W2 allocator gain (%v) should not exceed placement gain (%v)", allocatorGain, placementGain)
	}
}

func TestFig6W3Shape(t *testing.T) {
	r, err := Fig6W3(calScale, "A")
	if err != nil {
		t.Fatal(err)
	}
	def := r.Cell("ptmalloc", vmm.FirstTouch)
	tbb := r.Cell("tbbmalloc", vmm.Interleave)
	if (def-tbb)/def < 0.2 {
		t.Errorf("W3 gain = %v, want > 20%%", (def-tbb)/def)
	}
}

func TestFig6jShape(t *testing.T) {
	r, err := Fig6j(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 9: tbbmalloc stays best across dataset distributions.
	idx := map[string]int{}
	for i, a := range r.Allocators {
		idx[a] = i
	}
	for d := range r.Datasets {
		if r.Cycles[idx["tbbmalloc"]][d] >= r.Cycles[idx["ptmalloc"]][d] {
			t.Errorf("dataset %s: tbbmalloc should beat ptmalloc", r.Datasets[d])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	e, err := Fig7e(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 10: ART and B+tree are the fastest indexes overall; the Skip
	// List's join is the slowest.
	join := map[index.Kind]float64{}
	for i, k := range e.Kinds {
		join[k] = e.Join[i]
	}
	if join[index.SkipListKind] <= join[index.ARTKind] || join[index.SkipListKind] <= join[index.BTreeKind] {
		t.Errorf("Skip List (%v) should be slowest; ART %v, B+tree %v",
			join[index.SkipListKind], join[index.ARTKind], join[index.BTreeKind])
	}
	if e.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(calScale)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 11: every system gains on average; MySQL (single-threaded)
	// gains less than MonetDB (fully parallel).
	for _, sys := range r.Systems {
		if r.Mean(sys) <= 0 {
			t.Errorf("%s mean reduction = %v, want > 0", sys, r.Mean(sys))
		}
		if r.Max(sys) <= r.Mean(sys) {
			t.Errorf("%s max (%v) should exceed mean (%v)", sys, r.Max(sys), r.Mean(sys))
		}
	}
	if r.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestFig9Shape(t *testing.T) {
	s := calScale
	s.TPCHSF = 0.005 // enough rows for the allocator effect to register
	r, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 12: tbbmalloc reduces MonetDB's Q18 latency vs ptmalloc (the
	// paper reports -20%; our Q5 does not reproduce for per-thread-heap
	// allocators — see EXPERIMENTS.md deviations).
	idx := map[string]int{}
	for i, a := range r.Allocators {
		idx[a] = i
	}
	if r.Q18[idx["tbbmalloc"]] >= r.Q18[idx["ptmalloc"]] {
		t.Errorf("tbbmalloc (%v) should cut Q18 latency vs ptmalloc (%v)",
			r.Q18[idx["tbbmalloc"]], r.Q18[idx["ptmalloc"]])
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(calScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.AdvisedCycles >= r.DefaultCycles {
		t.Errorf("advised (%v) should beat default (%v)", r.AdvisedCycles, r.DefaultCycles)
	}
	// The advisor should land within 25% of the grid optimum.
	if r.AdvisedCycles > r.GridBestCycles*1.25 {
		t.Errorf("advised (%v) too far from grid best (%v)", r.AdvisedCycles, r.GridBestCycles)
	}
	if r.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestTable2Renders(t *testing.T) {
	tab := Table2()
	var sb strings.Builder
	tab.Render(&sb)
	for _, want := range []string{"Machine A", "Machine B", "Machine C"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table II missing %s", want)
		}
	}
}

func TestMachineForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	machineFor("Z")
}

func TestAblationShape(t *testing.T) {
	r, err := Ablate(calScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) < 5 {
		t.Fatalf("only %d ablations ran", len(r.Names))
	}
	full := r.Gain[0]
	if full <= 0.2 {
		t.Fatalf("full model headline gain = %v, want > 20%%", full)
	}
	// Each mechanism contributes: removing the AutoNUMA costs must shrink
	// the measured gain (the default config stops paying the daemon tax).
	for i, n := range r.Names {
		if n == "free AutoNUMA (no scan tax, free migrations)" {
			if r.Gain[i] >= full {
				t.Errorf("removing AutoNUMA costs should shrink the gain: %v vs %v", r.Gain[i], full)
			}
		}
	}
	if r.Render() == nil {
		t.Fatal("render failed")
	}
}

func TestPolicySensitivity(t *testing.T) {
	r, err := PolicySensitivity(calScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 8 {
		t.Fatalf("Machine A has 8 nodes, swept %d", len(r.Nodes))
	}
	// All Preferred variants concentrate traffic, so every one should be
	// slower than the Interleave baseline.
	m := machineFor("A")
	cfg := baseConfig(16)
	cfg.Policy = vmm.Interleave
	m.Configure(cfg)
	il := runW1(m, calScale, "MovingCluster").Result.WallCycles
	for i, n := range r.Nodes {
		if r.Cycles[i] <= il {
			t.Errorf("Preferred(node %d) = %v should lose to Interleave (%v)", n, r.Cycles[i], il)
		}
	}
}
