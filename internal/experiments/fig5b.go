package experiments

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/vmm"
)

// Fig5bSeriesResult holds the Figure 5b time series: periodic counter
// snapshots of W1 under each placement policy with AutoNUMA on, showing
// the local access ratio converging as the balancer migrates pages.
type Fig5bSeriesResult struct {
	Policies []vmm.Policy
	// Series[i] is the snapshot sequence for Policies[i].
	Series  [][]machine.Snapshot
	Records []Record
}

// Fig5bSeries runs W1 on Machine A once per placement policy with
// AutoNUMA on, sampling the counter state every cellSnapEvery simulated
// cycles. Where Fig5a reports the end-of-run local access ratio, this
// driver exposes its trajectory — the paper's Figure 5b story that
// AutoNUMA recovers locality over time for policies that start remote.
func Fig5bSeries(s Scale) (Fig5bSeriesResult, error) {
	out := Fig5bSeriesResult{Policies: fig5Policies}
	type cell struct {
		snaps []machine.Snapshot
		rec   Record
	}
	cells, err := core.Collect(runner, len(fig5Policies), func(i int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Policy = fig5Policies[i]
		cfg.AutoNUMA = true
		m.Configure(cfg)
		// Snapshots drive this figure, so sample regardless of -trace.
		m.Observe(machine.ObserveOptions{SnapEvery: cellSnapEvery})
		res := runW1(m, s, datagen.MovingClusterDist)
		rec := finishCell(start, cfg.Policy.String(),
			map[string]string{"policy": cfg.Policy.String()},
			m, res.Result.WallCycles)
		rec.Extra = map[string]float64{"lar": res.Result.Counters.LAR()}
		return cell{rec.Snapshots, rec}, nil
	})
	if err != nil {
		return Fig5bSeriesResult{}, err
	}
	for _, c := range cells {
		out.Series = append(out.Series, c.snaps)
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders the time series in long format: one row per sample.
func (r Fig5bSeriesResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 5b (time series): local access ratio over time, W1, Machine A, AutoNUMA on",
		Header: []string{"policy", "cycle (B)", "LAR"},
	}
	for i, p := range r.Policies {
		for _, snap := range r.Series[i] {
			t.AddRow(p.String(), report.Billions(snap.Cycle), snap.Counters.LAR())
		}
	}
	return t
}
