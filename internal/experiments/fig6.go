package experiments

import (
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/vmm"
)

// fig6Policies are the placement policies of the Figure 6 grids.
var fig6Policies = []vmm.Policy{vmm.FirstTouch, vmm.Interleave, vmm.Localalloc}

// Fig6Result is one allocator x policy grid for one workload on one
// machine (one subplot of Figure 6 or Figure 7a-d).
type Fig6Result struct {
	Title      string
	Machine    string
	Allocators []string
	Policies   []vmm.Policy
	// Cycles[allocator index][policy index].
	Cycles  [][]float64
	Records []Record
}

// sweepAllocPolicy runs the given workload for every allocator x policy
// cell, each on a fresh machine, dispatched through the grid runner.
func sweepAllocPolicy(title, mc string, threads int, run func(m *machine.Machine) float64) (Fig6Result, error) {
	out := Fig6Result{
		Title:      title,
		Machine:    mc,
		Allocators: alloc.WorkloadNames(),
		Policies:   fig6Policies,
	}
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, len(out.Allocators)*len(out.Policies), func(i int) (cell, error) {
		start := startCell()
		m := machineFor(mc)
		cfg := baseConfig(threads)
		if threads <= 0 {
			cfg.Threads = m.Spec.HardwareThreads()
		}
		cfg.Allocator = out.Allocators[i/len(out.Policies)]
		cfg.Policy = out.Policies[i%len(out.Policies)]
		m.Configure(cfg)
		w := run(m)
		return cell{w, finishCell(start, mc+"/"+cfg.Allocator+"/"+cfg.Policy.String(),
			map[string]string{
				"machine":   mc,
				"allocator": cfg.Allocator,
				"policy":    cfg.Policy.String(),
			}, m, w)}, nil
	})
	if err != nil {
		return Fig6Result{}, err
	}
	for i := range cells {
		out.Records = append(out.Records, cells[i].rec)
	}
	for i := 0; i < len(out.Allocators); i++ {
		row := make([]float64, len(out.Policies))
		for j := range row {
			row[j] = cells[i*len(out.Policies)+j].cycles
		}
		out.Cycles = append(out.Cycles, row)
	}
	return out, nil
}

// Fig6W1 produces Figure 6a/6b/6c: W1 across allocators and policies on
// the given machine ("A", "B" or "C").
func Fig6W1(s Scale, mc string) (Fig6Result, error) {
	return sweepAllocPolicy("Fig 6 W1 (holistic aggregation), Machine "+mc, mc, 0,
		func(m *machine.Machine) float64 {
			return runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		})
}

// Fig6W2 produces Figure 6d/6e/6f: W2 across allocators and policies.
func Fig6W2(s Scale, mc string) (Fig6Result, error) {
	return sweepAllocPolicy("Fig 6 W2 (distributive aggregation), Machine "+mc, mc, 0,
		func(m *machine.Machine) float64 {
			return runW2(m, s).Result.WallCycles
		})
}

// Fig6W3 produces Figure 6g/6h/6i: W3 across allocators and policies.
func Fig6W3(s Scale, mc string) (Fig6Result, error) {
	return sweepAllocPolicy("Fig 6 W3 (hash join), Machine "+mc, mc, 0,
		func(m *machine.Machine) float64 {
			return runW3(m, s).Result.WallCycles
		})
}

// Render renders one Figure 6 grid.
func (r Fig6Result) Render() *report.Table {
	t := &report.Table{Title: r.Title + " (billion cycles)"}
	t.Header = []string{"allocator"}
	for _, p := range r.Policies {
		t.Header = append(t.Header, p.String())
	}
	for i, name := range r.Allocators {
		cells := []any{name}
		for _, v := range r.Cycles[i] {
			cells = append(cells, report.Billions(v))
		}
		t.AddRow(cells...)
	}
	return t
}

// Best returns the fastest cell of the grid.
func (r Fig6Result) Best() (allocator string, policy vmm.Policy, cycles float64) {
	cycles = r.Cycles[0][0]
	allocator, policy = r.Allocators[0], r.Policies[0]
	for i := range r.Cycles {
		for j, v := range r.Cycles[i] {
			if v < cycles {
				cycles, allocator, policy = v, r.Allocators[i], r.Policies[j]
			}
		}
	}
	return allocator, policy, cycles
}

// Cell returns the grid cell for an allocator and policy.
func (r Fig6Result) Cell(allocator string, policy vmm.Policy) float64 {
	for i, a := range r.Allocators {
		if a != allocator {
			continue
		}
		for j, p := range r.Policies {
			if p == policy {
				return r.Cycles[i][j]
			}
		}
	}
	panic("experiments: unknown grid cell " + allocator)
}

// Fig6jResult holds Figure 6j: W1 on Machine A across allocators and
// dataset distributions (Interleave placement).
type Fig6jResult struct {
	Allocators []string
	Datasets   []datagen.Distribution
	Cycles     [][]float64 // [allocator][dataset]
	Records    []Record
}

// Fig6j varies the dataset distribution under each allocator.
func Fig6j(s Scale) (Fig6jResult, error) {
	out := Fig6jResult{Allocators: alloc.WorkloadNames(), Datasets: datagen.Distributions()}
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, len(out.Allocators)*len(out.Datasets), func(i int) (cell, error) {
		start := startCell()
		dist := out.Datasets[i%len(out.Datasets)]
		m := machineFor("A")
		cfg := baseConfig(16)
		cfg.Allocator = out.Allocators[i/len(out.Datasets)]
		cfg.Policy = vmm.Interleave
		m.Configure(cfg)
		w := runW1(m, s, dist).Result.WallCycles
		return cell{w, finishCell(start, cfg.Allocator+"/"+string(dist),
			map[string]string{"allocator": cfg.Allocator, "dataset": string(dist)},
			m, w)}, nil
	})
	if err != nil {
		return Fig6jResult{}, err
	}
	for i := range cells {
		out.Records = append(out.Records, cells[i].rec)
	}
	for i := 0; i < len(out.Allocators); i++ {
		row := make([]float64, len(out.Datasets))
		for j := range row {
			row[j] = cells[i*len(out.Datasets)+j].cycles
		}
		out.Cycles = append(out.Cycles, row)
	}
	return out, nil
}

// Render renders Figure 6j.
func (r Fig6jResult) Render() *report.Table {
	t := &report.Table{Title: "Fig 6j: W1 by dataset distribution and allocator, Machine A (billion cycles)"}
	t.Header = []string{"allocator"}
	for _, d := range r.Datasets {
		t.Header = append(t.Header, string(d))
	}
	for i, name := range r.Allocators {
		cells := []any{name}
		for _, v := range r.Cycles[i] {
			cells = append(cells, report.Billions(v))
		}
		t.AddRow(cells...)
	}
	return t
}
