package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/topology"
)

// Fig10Result validates the decision flowchart: the advisor's
// recommendation for a W1-like workload versus the measured optimum of the
// full configuration grid.
type Fig10Result struct {
	Recommendation core.Recommendation
	AdvisedCycles  float64
	DefaultCycles  float64
	GridBest       string
	GridBestCycles float64
	Records        []Record
}

// Fig10 runs W1 under the advised configuration, the OS default, and the
// Figure 6 grid's best cell, on Machine A. Records include the advised
// and default cells plus the full embedded Fig6W1 grid.
func Fig10(s Scale) (Fig10Result, error) {
	tr, err := core.WorkloadTraits("W1")
	if err != nil {
		return Fig10Result{}, err
	}
	rec := core.Advise(tr)
	out := Fig10Result{Recommendation: rec}

	cfgs := []machine.RunConfig{rec.Apply(16), machine.DefaultConfig(16)}
	cfgs[1].Seed = 9
	names := []string{"advised", "default"}
	type cell struct {
		cycles float64
		rec    Record
	}
	cells, err := core.Collect(runner, len(cfgs), func(i int) (cell, error) {
		start := startCell()
		m := machineFor("A")
		m.Configure(cfgs[i])
		w := runW1(m, s, datagen.MovingClusterDist).Result.WallCycles
		return cell{w, finishCell(start, names[i],
			map[string]string{"config": names[i]}, m, w)}, nil
	})
	if err != nil {
		return Fig10Result{}, err
	}
	out.AdvisedCycles, out.DefaultCycles = cells[0].cycles, cells[1].cycles
	out.Records = []Record{cells[0].rec, cells[1].rec}

	grid, err := Fig6W1(s, "A")
	if err != nil {
		return Fig10Result{}, err
	}
	bestAlloc, bestPol, bestCycles := grid.Best()
	out.GridBest = bestAlloc + " + " + bestPol.String()
	out.GridBestCycles = bestCycles
	out.Records = append(out.Records, grid.Records...)
	return out, nil
}

// Render renders the flowchart validation.
func (r Fig10Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 10: decision flowchart validation, W1, Machine A (billion cycles)",
		Header: []string{"configuration", "cycles", "vs default"},
	}
	t.AddRow("OS default", report.Billions(r.DefaultCycles), report.Pct(0))
	t.AddRow("advised ("+r.Recommendation.Allocator+" + "+r.Recommendation.Policy.String()+")",
		report.Billions(r.AdvisedCycles),
		report.Pct(core.Speedup(r.DefaultCycles, r.AdvisedCycles)))
	t.AddRow("grid best ("+r.GridBest+")",
		report.Billions(r.GridBestCycles),
		report.Pct(core.Speedup(r.DefaultCycles, r.GridBestCycles)))
	return t
}

// Table2 renders Table II: the simulated machine specifications.
func Table2() *report.Table {
	t := &report.Table{
		Title: "Table II: machine specifications (simulated)",
		Header: []string{"system", "nodes", "cores/threads", "LLC/node", "mem/node",
			"remote latency", "link GT/s"},
	}
	for _, spec := range machine.Specs() {
		topo := spec.Topo
		worst := 1.0
		for n := 0; n < topo.Nodes(); n++ {
			if l := topo.Latency(0, topology.NodeID(n)); l > worst {
				worst = l
			}
		}
		t.AddRow(spec.Name, topo.Nodes(),
			strconv.Itoa(spec.Cores())+"/"+strconv.Itoa(spec.HardwareThreads()),
			strconv.Itoa(spec.LLCBytesPerNode>>20)+"MiB",
			strconv.Itoa(int(spec.MemPerNodeBytes>>30))+"GiB",
			worst, topo.LinkBandwidthGTs())
	}
	return t
}
