package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/tpch"
	"repro/internal/vmm"
)

// w5TunedConfig is the configuration the paper used to speed up W5: First
// Touch placement, AutoNUMA and THP disabled, Sparse affinity, tbbmalloc.
func w5TunedConfig(threads int, keepTHP bool) machine.RunConfig {
	return machine.RunConfig{
		Threads:   threads,
		Placement: machine.PlaceSparse,
		Policy:    vmm.FirstTouch,
		Allocator: "tbbmalloc",
		AutoNUMA:  false,
		THP:       keepTHP, // the paper left THP on for DBMSx only
		Seed:      1,
	}
}

// Fig8Result holds Figure 8: per-query latency reduction of the tuned
// configuration over the OS default, for each database system.
type Fig8Result struct {
	Systems []string
	// Reduction[system][q-1] = (default - tuned) / default.
	Reduction map[string][]float64
	// DefaultWall and TunedWall keep the raw means for EXPERIMENTS.md.
	DefaultWall map[string][]float64
	TunedWall   map[string][]float64
	Records     []Record
}

// Fig8 runs all 22 TPC-H queries on the five engine profiles under the OS
// default and the tuned configuration, on Machine A. Cells are whole
// harness runs (one engine under one configuration measuring all queries
// in order): engine state persists across a harness's queries, so the
// harness is the smallest boundary that keeps results identical to a
// serial sweep. The database itself is built once and shared read-only.
func Fig8(s Scale) (Fig8Result, error) {
	db := tpch.GenerateCached(s.TPCHSF, 41)
	profiles := tpch.Profiles()
	type cell struct {
		walls []float64
		res   []tpch.QueryResult
		rec   Record
	}
	configs := 2 // 0 = OS default, 1 = tuned
	cells, err := core.Collect(runner, len(profiles)*configs, func(i int) (cell, error) {
		start := startCell()
		prof := profiles[i/configs]
		spec := machine.SpecA()
		var cfg machine.RunConfig
		which := "tuned"
		if i%configs == 0 {
			cfg = machine.DefaultConfig(spec.HardwareThreads())
			cfg.Seed = 9
			which = "default"
		} else {
			cfg = w5TunedConfig(spec.HardwareThreads(), prof.Name == "DBMSx")
		}
		h := tpch.NewHarness(spec, prof, cfg, db, s.WarmRuns)
		walls, res := h.MeasureAll()
		// The harness owns its machine (not built via machineFor), so W5
		// cells carry counters and config but no event trace.
		wall := 0.0
		for _, w := range walls {
			wall += w
		}
		rec := finishCell(start, prof.Name+"/"+which,
			map[string]string{"engine": prof.Name, "config": which},
			h.Engine.M, wall)
		rec.Extra = map[string]float64{}
		for q, w := range walls {
			rec.Extra["q"+strconv.Itoa(q+1)] = w
		}
		return cell{walls, res, rec}, nil
	})
	if err != nil {
		return Fig8Result{}, err
	}
	out := Fig8Result{
		Reduction:   map[string][]float64{},
		DefaultWall: map[string][]float64{},
		TunedWall:   map[string][]float64{},
	}
	for _, c := range cells {
		out.Records = append(out.Records, c.rec)
	}
	for p, prof := range profiles {
		out.Systems = append(out.Systems, prof.Name)
		def, tuned := cells[p*configs], cells[p*configs+1]
		for q := 0; q < tpch.NumQueries; q++ {
			if def.res[q].Check != tuned.res[q].Check {
				return Fig8Result{}, fmt.Errorf("experiments: %s Q%d answers diverged between configs", prof.Name, q+1)
			}
			out.Reduction[prof.Name] = append(out.Reduction[prof.Name],
				(def.walls[q]-tuned.walls[q])/def.walls[q])
		}
		out.DefaultWall[prof.Name] = def.walls
		out.TunedWall[prof.Name] = tuned.walls
	}
	return out, nil
}

// Render renders Figure 8.
func (r Fig8Result) Render() *report.Table {
	t := &report.Table{Title: "Fig 8: TPC-H query latency reduction, tuned vs default OS configuration, Machine A"}
	t.Header = []string{"query"}
	t.Header = append(t.Header, r.Systems...)
	for q := 0; q < tpch.NumQueries; q++ {
		cells := []any{"Q" + strconv.Itoa(q+1)}
		for _, sys := range r.Systems {
			cells = append(cells, report.Pct(r.Reduction[sys][q]))
		}
		t.AddRow(cells...)
	}
	avg := []any{"mean"}
	for _, sys := range r.Systems {
		avg = append(avg, report.Pct(r.Mean(sys)))
	}
	t.AddRow(avg...)
	return t
}

// Mean returns a system's average latency reduction across queries.
func (r Fig8Result) Mean(system string) float64 {
	var sum float64
	for _, v := range r.Reduction[system] {
		sum += v
	}
	return sum / float64(len(r.Reduction[system]))
}

// Max returns a system's best per-query latency reduction.
func (r Fig8Result) Max(system string) float64 {
	best := r.Reduction[system][0]
	for _, v := range r.Reduction[system] {
		if v > best {
			best = v
		}
	}
	return best
}

// Fig9Result holds Figure 9: MonetDB's Q5 and Q18 latency under each
// allocator (tuned OS configuration otherwise).
type Fig9Result struct {
	Allocators []string
	Q5         []float64
	Q18        []float64
	Records    []Record
}

// Fig9 varies the overriding allocator for MonetDB on queries 5 and 18.
// One cell per allocator: each builds its own harness and measures both
// queries in order on it.
func Fig9(s Scale) (Fig9Result, error) {
	db := tpch.GenerateCached(s.TPCHSF, 41)
	out := Fig9Result{Allocators: alloc.WorkloadNames()}
	prof := tpch.ProfileByName("MonetDB")
	type cell struct {
		q5, q18 float64
		rec     Record
	}
	cells, err := core.Collect(runner, len(out.Allocators), func(i int) (cell, error) {
		start := startCell()
		spec := machine.SpecA()
		cfg := w5TunedConfig(spec.HardwareThreads(), false)
		cfg.Allocator = out.Allocators[i]
		h := tpch.NewHarness(spec, prof, cfg, db, s.WarmRuns)
		q5, _ := h.Measure(5)
		q18, _ := h.Measure(18)
		rec := finishCell(start, cfg.Allocator,
			map[string]string{"engine": prof.Name, "allocator": cfg.Allocator},
			h.Engine.M, q5+q18)
		rec.Extra = map[string]float64{"q5": q5, "q18": q18}
		return cell{q5, q18, rec}, nil
	})
	if err != nil {
		return Fig9Result{}, err
	}
	for _, c := range cells {
		out.Q5 = append(out.Q5, c.q5)
		out.Q18 = append(out.Q18, c.q18)
		out.Records = append(out.Records, c.rec)
	}
	return out, nil
}

// Render renders Figure 9 (millions of cycles: simulator-scale TPC-H
// queries are far below the billion-cycle range of W1-W4).
func (r Fig9Result) Render() *report.Table {
	t := &report.Table{
		Title:  "Fig 9: TPC-H Q5/Q18 latency by allocator, MonetDB, Machine A (million cycles)",
		Header: []string{"allocator", "Q5", "Q18"},
	}
	for i, a := range r.Allocators {
		t.AddRow(a, r.Q5[i]/1e6, r.Q18[i]/1e6)
	}
	return t
}
