package query

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/vmm"
)

func testMachine(threads int) *machine.Machine {
	m := machine.NewB()
	m.Configure(machine.RunConfig{
		Threads:   threads,
		Placement: machine.PlaceSparse,
		Policy:    vmm.Interleave,
		Allocator: "tbbmalloc",
		Seed:      3,
	})
	return m
}

func TestHolisticAggregationCorrect(t *testing.T) {
	spec := AggregationSpec{
		Records:     datagen.MovingCluster(20000, 500, 1),
		Cardinality: 500,
		Holistic:    true,
	}
	out := Aggregate(testMachine(8), spec)
	wantGroups, wantSum := ReferenceAggregate(spec)
	if out.Groups != wantGroups {
		t.Errorf("groups = %d, want %d", out.Groups, wantGroups)
	}
	if out.Checksum != wantSum {
		t.Errorf("median checksum = %d, want %d", out.Checksum, wantSum)
	}
	if out.Result.WallCycles <= 0 {
		t.Error("no time charged")
	}
}

func TestDistributiveAggregationCorrect(t *testing.T) {
	spec := AggregationSpec{
		Records:     datagen.Zipfian(20000, 500, 0.5, 2),
		Cardinality: 500,
		Holistic:    false,
	}
	out := Aggregate(testMachine(8), spec)
	wantGroups, wantSum := ReferenceAggregate(spec)
	if out.Groups != wantGroups || out.Checksum != wantSum {
		t.Errorf("got (%d, %d), want (%d, %d)", out.Groups, out.Checksum, wantGroups, wantSum)
	}
	// W2's checksum is the record count: every record lands somewhere.
	if out.Checksum != 20000 {
		t.Errorf("count checksum = %d, want 20000", out.Checksum)
	}
}

func TestAggregationThreadCountInvariance(t *testing.T) {
	spec := AggregationSpec{
		Records:     datagen.Sequential(10000, 200),
		Cardinality: 200,
		Holistic:    true,
	}
	a := Aggregate(testMachine(2), spec)
	b := Aggregate(testMachine(16), spec)
	if a.Checksum != b.Checksum || a.Groups != b.Groups {
		t.Errorf("results must not depend on thread count: (%d,%d) vs (%d,%d)",
			a.Groups, a.Checksum, b.Groups, b.Checksum)
	}
}

func TestW1IsAllocationHeavierThanW2(t *testing.T) {
	recs := datagen.MovingCluster(20000, 500, 1)
	m1 := testMachine(8)
	Aggregate(m1, AggregationSpec{Records: recs, Cardinality: 500, Holistic: true})
	w1Allocs := m1.Alloc.Stats().Mallocs
	m2 := testMachine(8)
	Aggregate(m2, AggregationSpec{Records: recs, Cardinality: 500, Holistic: false})
	w2Allocs := m2.Alloc.Stats().Mallocs
	if w1Allocs < w2Allocs*2 {
		t.Errorf("W1 should allocate much more than W2: %d vs %d", w1Allocs, w2Allocs)
	}
}

func TestHashJoinCorrect(t *testing.T) {
	tables := datagen.Join(2000, 16, 4)
	out := HashJoin(testMachine(8), JoinSpec{Tables: tables})
	wantMatches, wantSum := ReferenceJoin(tables)
	if out.Matches != wantMatches {
		t.Errorf("matches = %d, want %d", out.Matches, wantMatches)
	}
	if out.Checksum != wantSum {
		t.Errorf("checksum = %d, want %d", out.Checksum, wantSum)
	}
	if wantMatches != uint64(len(tables.S)) {
		t.Fatalf("reference sanity: every S tuple matches, got %d of %d", wantMatches, len(tables.S))
	}
	if out.BuildCycles <= 0 || out.ProbeCycles <= 0 {
		t.Error("phase cycles must be positive")
	}
}

func TestHashJoinPhaseSplitInvariant(t *testing.T) {
	// The JoinOutcome contract: the build/probe phase split must account
	// for the outcome's total measured cycles (allowing float epsilon).
	// MPSM's half of this invariant lives in internal/numaop, which cannot
	// be imported from here without a cycle.
	tables := datagen.Join(2000, 16, 6)
	for _, threads := range []int{1, 8, 32} {
		out := HashJoin(testMachine(threads), JoinSpec{Tables: tables})
		sum := out.BuildCycles + out.ProbeCycles
		total := out.Result.WallCycles
		if total <= 0 {
			t.Fatalf("threads=%d: no time charged", threads)
		}
		if diff := sum - total; diff > 1e-6*total || diff < -1e-6*total {
			t.Errorf("threads=%d: BuildCycles+ProbeCycles = %v does not account for WallCycles = %v",
				threads, sum, total)
		}
		if out.BuildCycles <= 0 || out.ProbeCycles <= 0 {
			t.Errorf("threads=%d: phase cycles must be positive: build %v probe %v",
				threads, out.BuildCycles, out.ProbeCycles)
		}
	}
}

func TestJoinProbeDominates(t *testing.T) {
	// With |S| = 16|R| the probe phase should take most of the time.
	tables := datagen.Join(1000, 16, 9)
	out := HashJoin(testMachine(8), JoinSpec{Tables: tables})
	if out.ProbeCycles <= out.BuildCycles {
		t.Errorf("probe (%v) should dominate build (%v)", out.ProbeCycles, out.BuildCycles)
	}
}

func TestAllocatorAffectsW1Runtime(t *testing.T) {
	// The headline Figure 6 mechanism: on an allocation-heavy workload at
	// full thread count, tbbmalloc should beat ptmalloc.
	recs := datagen.MovingCluster(30000, 1000, 1)
	run := func(allocName string) float64 {
		m := machine.NewB()
		m.Configure(machine.RunConfig{
			Threads: 32, Placement: machine.PlaceSparse,
			Policy: vmm.Interleave, Allocator: allocName, Seed: 3,
		})
		return Aggregate(m, AggregationSpec{Records: recs, Cardinality: 1000, Holistic: true}).Result.WallCycles
	}
	pt := run("ptmalloc")
	tbb := run("tbbmalloc")
	if tbb >= pt {
		t.Errorf("tbbmalloc (%v) should beat ptmalloc (%v) on W1 at 32 threads", tbb, pt)
	}
}

func TestMedianOf(t *testing.T) {
	cases := []struct {
		in   []uint64
		want uint64
	}{
		{nil, 0},
		{[]uint64{5}, 5},
		{[]uint64{3, 1, 2}, 2},
		{[]uint64{4, 1, 3, 2}, 2}, // lower middle of even count
	}
	for _, c := range cases {
		if got := medianOf(c.in); got != c.want {
			t.Errorf("medianOf(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
