package query

import (
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/machine"
)

// IndexJoin executes W4: an index nested-loop join over the same dataset as
// W3. The index over R is pre-built (single writer, as a loaded database
// index would be), then all threads probe it with S, materializing matches
// into thread-local output buffers. Because the index is pre-built, the
// probe phase is allocation-light — which is why the paper sees smaller
// allocator gains here than in W3.
func IndexJoin(m *machine.Machine, kind index.Kind, tables datagen.JoinTables) JoinOutcome {
	r, s := tables.R, tables.S
	rAddr, setupR := LoadRecords(m, r)
	sAddr, setupS := LoadRecords(m, s)
	_ = rAddr
	m.ResetCounters()

	threads := m.Config().Threads
	idx := index.New(kind)
	build := m.Run(1, func(t *machine.Thread) {
		for i := range r {
			t.Read(rAddr+uint64(i)*recordBytes, recordBytes)
			idx.Insert(t, r[i].Key, r[i].Val)
		}
	})

	// Index lookups are read-only on the pre-built index, so the probe
	// runs under RunParallel with per-thread result accumulation.
	outs := make([]vec, threads)
	perMatches := make([]uint64, threads)
	perChecksum := make([]uint64, threads)
	probe := m.RunParallel(threads, func(t *machine.Thread) {
		n := len(s)
		lo, hi := n*t.ID()/threads, n*(t.ID()+1)/threads
		out := &outs[t.ID()]
		for i := lo; i < hi; i++ {
			t.Read(sAddr+uint64(i)*recordBytes, recordBytes)
			if rv, ok := idx.Lookup(t, s[i].Key); ok {
				out.push(t, rv)
				perMatches[t.ID()]++
				perChecksum[t.ID()] += rv + s[i].Val
			}
		}
	})
	var matches, checksum uint64
	for i := 0; i < threads; i++ {
		matches += perMatches[i]
		checksum += perChecksum[i]
	}

	res := probe
	res.WallCycles += build.WallCycles
	return JoinOutcome{
		Outcome: Outcome{
			Result:      res,
			SetupCycles: setupR + setupS,
			Matches:     matches,
			Checksum:    checksum,
		},
		BuildCycles: build.WallCycles,
		ProbeCycles: probe.WallCycles,
	}
}
