package query

import (
	"math"
	"sort"

	"repro/internal/datagen"
	"repro/internal/hashtable"
	"repro/internal/machine"
)

// recordBytes is the in-memory width of one (key, value) tuple.
const recordBytes = 16

// Outcome reports a workload execution: the simulator's measurement of the
// timed phases plus a checksum for correctness validation.
type Outcome struct {
	Result      machine.Result
	SetupCycles float64
	Groups      int
	Matches     uint64 // join workloads: result tuples
	Checksum    uint64
}

// LoadRecords writes recs into a fresh simulated array, single-threaded
// (the paper's datasets are generated before the measured run; under First
// Touch this places them on the loader's node, which is the central
// mechanism behind the placement-policy results). It returns the base
// address and the setup cycles.
func LoadRecords(m *machine.Machine, recs []datagen.Record) (base uint64, cycles float64) {
	res := m.Run(1, func(t *machine.Thread) {
		base = t.Malloc(uint64(len(recs)) * recordBytes)
		t.WriteRun(base, recordBytes, len(recs))
	})
	return base, res.WallCycles
}

// AggregationSpec describes an aggregation run (W1/W2).
type AggregationSpec struct {
	Records     []datagen.Record
	Cardinality int
	// Holistic selects W1 (MEDIAN over buffered values); false is W2
	// (COUNT, a running counter per group).
	Holistic bool
}

// tupleBytes is the size of one buffered tuple node in a group's chain
// (value + next pointer), individually heap-allocated as in the paper's
// holistic aggregation implementation.
const tupleBytes = 16

// group is the per-group aggregate state.
type group struct {
	creator   int    // thread that created the group (median-pass owner)
	countAddr uint64 // W2: 8-byte counter in simulated memory
	count     uint64
	// W1: each input tuple is buffered in its own allocation; the median
	// pass walks, reads and frees them. This is what makes W1 the paper's
	// allocation-heavy aggregation.
	tupleAddrs []uint64
	vals       []uint64
}

// Aggregate executes the hashtable-based aggregation workload and returns
// the timed result (build plus, for W1, the per-group median pass).
func Aggregate(m *machine.Machine, spec AggregationSpec) Outcome {
	dataAddr, setup := LoadRecords(m, spec.Records)
	m.ResetCounters()

	threads := m.Config().Threads
	var table *hashtable.Table
	groups := make([]*group, 0, spec.Cardinality)

	// The shared table is created by the first worker, as in the paper's
	// codelets; sizing at twice the cardinality keeps chains short.
	res := m.Run(threads, func(t *machine.Thread) {
		if t.ID() == 0 {
			table = hashtable.New(t, spec.Cardinality*2)
		}
	})
	buildAndFinalize := m.Run(threads, func(t *machine.Thread) {
		n := len(spec.Records)
		lo := n * t.ID() / threads
		hi := n * (t.ID() + 1) / threads
		for i := lo; i < hi; i++ {
			rec := spec.Records[i]
			t.Read(dataAddr+uint64(i)*recordBytes, recordBytes)
			gi, _ := table.GetOrPut(t, rec.Key, func() uint32 {
				g := &group{creator: t.ID()}
				if !spec.Holistic {
					g.countAddr = t.Malloc(8)
				}
				groups = append(groups, g)
				return uint32(len(groups) - 1)
			})
			g := groups[gi]
			t.Charge(25) // per-group latch
			if spec.Holistic {
				// Buffer the tuple for the median: one allocation per
				// input record.
				addr := t.Malloc(tupleBytes)
				g.tupleAddrs = append(g.tupleAddrs, addr)
				g.vals = append(g.vals, rec.Val)
				t.Write(addr, tupleBytes)
			} else {
				t.Read(g.countAddr, 8)
				t.Write(g.countAddr, 8)
				g.count++
			}
		}
		if spec.Holistic {
			// Second pass: medians, each thread finalizing the groups it
			// created. Under the moving-cluster input a group's tuples
			// were almost all buffered by their creator, so the pass is
			// local under First Touch — the paper's high measured LAR.
			for gi := range groups {
				g := groups[gi]
				if g.creator != t.ID() {
					continue
				}
				if len(g.tupleAddrs) == 0 {
					continue
				}
				for _, addr := range g.tupleAddrs {
					t.Read(addr, tupleBytes)
				}
				n := float64(len(g.tupleAddrs))
				t.Charge(12 * n * math.Log2(n+1)) // in-place sort
				for _, addr := range g.tupleAddrs {
					t.Free(addr, tupleBytes)
				}
			}
		}
	})

	out := Outcome{
		Result:      combine(res, buildAndFinalize),
		SetupCycles: setup,
		// table.Len counts distinct keys; the groups slice can hold
		// orphans from lost upsert races.
		Groups: table.Len(),
	}
	for _, g := range groups {
		if spec.Holistic {
			out.Checksum += medianOf(g.vals)
		} else {
			out.Checksum += g.count
		}
	}
	return out
}

// combine merges two phases of one measurement: wall times add (the phases
// are sequential), counters were accumulated machine-wide already.
func combine(a, b machine.Result) machine.Result {
	b.WallCycles += a.WallCycles
	return b
}

// medianOf returns the median (lower middle) of vals, used for checksums.
func medianOf(vals []uint64) uint64 {
	if len(vals) == 0 {
		return 0
	}
	s := make([]uint64, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// ReferenceAggregate computes the same aggregate in plain Go, for tests.
func ReferenceAggregate(spec AggregationSpec) (groups int, checksum uint64) {
	byKey := map[uint64][]uint64{}
	for _, r := range spec.Records {
		byKey[r.Key] = append(byKey[r.Key], r.Val)
	}
	for _, vals := range byKey { //rangecheck:ok commutative wrapping-add checksum
		if spec.Holistic {
			checksum += medianOf(vals)
		} else {
			checksum += uint64(len(vals))
		}
	}
	return len(byKey), checksum
}
