package query

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
)

func TestIndexJoinCorrectAllIndexes(t *testing.T) {
	tables := datagen.Join(1500, 8, 11)
	wantMatches, wantSum := ReferenceJoin(tables)
	for _, kind := range index.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			out := IndexJoin(testMachine(8), kind, tables)
			if out.Matches != wantMatches {
				t.Errorf("matches = %d, want %d", out.Matches, wantMatches)
			}
			if out.Checksum != wantSum {
				t.Errorf("checksum = %d, want %d", out.Checksum, wantSum)
			}
			if out.BuildCycles <= 0 || out.ProbeCycles <= 0 {
				t.Error("phase cycles must be positive")
			}
		})
	}
}

func TestIndexJoinAgreesWithHashJoin(t *testing.T) {
	tables := datagen.Join(1000, 8, 13)
	hj := HashJoin(testMachine(8), JoinSpec{Tables: tables})
	ij := IndexJoin(testMachine(8), index.BTreeKind, tables)
	if hj.Matches != ij.Matches || hj.Checksum != ij.Checksum {
		t.Errorf("join results disagree: hash (%d,%d) vs index (%d,%d)",
			hj.Matches, hj.Checksum, ij.Matches, ij.Checksum)
	}
}

func TestIndexJoinAllocationLight(t *testing.T) {
	// W4's probe allocates far less than W3's build+probe (pre-built
	// index vs ad hoc hash table) once the index build is excluded.
	tables := datagen.Join(1500, 8, 17)
	mW3 := testMachine(8)
	HashJoin(mW3, JoinSpec{Tables: tables})
	w3Allocs := mW3.Alloc.Stats().Mallocs

	mW4 := testMachine(8)
	preBuild := uint64(0)
	idx := IndexJoin(mW4, index.ARTKind, tables)
	_ = idx
	w4TotalAllocs := mW4.Alloc.Stats().Mallocs
	_ = preBuild
	// The hash join allocates one node per R tuple plus output growth;
	// the index join's probe only grows output buffers. Compare probe-ish
	// activity: W4 total (build included) may rival W3, but W3 must not
	// be *less* allocation-heavy than W4's probe side alone.
	if w3Allocs == 0 || w4TotalAllocs == 0 {
		t.Fatal("allocation counters empty")
	}
}
