// Package query implements the paper's query-processing workloads on the
// machine simulator: hashtable-based holistic aggregation (W1, MEDIAN),
// distributive aggregation (W2, COUNT), the non-partitioning hash join of
// Blanas et al. (W3), and the index nested-loop join (W4, in indexjoin.go)
// over the pluggable in-memory indexes.
//
// Each workload has a setup phase (loading the dataset into simulated
// memory, single-threaded, like the paper's generators) and a timed phase
// run on the configured thread count. Results carry both the simulator
// measurement and a checksum that tests validate against a plain Go
// reference implementation.
package query

import "repro/internal/machine"

// vec is a growable array of uint64 in simulated memory with doubling
// growth — the value buffer behind each aggregation group and each
// thread's join output. Growth reallocates through the machine's
// allocator and copies through the cache hierarchy, which is what makes
// W1 and W3 allocation-heavy.
type vec struct {
	addr uint64
	n    int
	cap  int
	vals []uint64 // Go-side shadow for checksums
}

const vecElem = 8

// push appends v, growing the simulated buffer when full.
func (b *vec) push(t *machine.Thread, v uint64) {
	if b.n == b.cap {
		newCap := b.cap * 2
		if newCap < 8 {
			newCap = 8
		}
		newAddr := t.Malloc(uint64(newCap) * vecElem)
		if b.n > 0 {
			t.Read(b.addr, uint64(b.n)*vecElem)
			t.Write(newAddr, uint64(b.n)*vecElem)
			t.Free(b.addr, uint64(b.cap)*vecElem)
		}
		b.addr = newAddr
		b.cap = newCap
	}
	t.Write(b.addr+uint64(b.n)*vecElem, vecElem)
	b.vals = append(b.vals, v)
	b.n++
}

// release frees the simulated buffer.
func (b *vec) release(t *machine.Thread) {
	if b.cap > 0 {
		t.Free(b.addr, uint64(b.cap)*vecElem)
		b.addr, b.n, b.cap, b.vals = 0, 0, 0, nil
	}
}
