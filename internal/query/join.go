package query

import (
	"repro/internal/datagen"
	"repro/internal/hashtable"
	"repro/internal/machine"
)

// JoinSpec describes a two-table equi-join (W3/W4): R is the primary
// (build) side, S the 16x larger foreign (probe) side.
type JoinSpec struct {
	Tables datagen.JoinTables
}

// JoinOutcome extends Outcome with the phase split the paper reports for
// index joins (build time vs join time).
type JoinOutcome struct {
	Outcome
	BuildCycles float64
	ProbeCycles float64
}

// HashJoin executes W3: a non-partitioning hash join. All threads build a
// shared hash table over R (allocation-heavy: one chain node per build
// tuple), then probe it with S, materializing matches into per-thread
// output buffers.
func HashJoin(m *machine.Machine, spec JoinSpec) JoinOutcome {
	r, s := spec.Tables.R, spec.Tables.S
	rAddr, setupR := LoadRecords(m, r)
	sAddr, setupS := LoadRecords(m, s)
	m.ResetCounters()

	threads := m.Config().Threads
	var table *hashtable.Table
	create := m.Run(threads, func(t *machine.Thread) {
		if t.ID() == 0 {
			table = hashtable.New(t, len(r)*2)
		}
	})

	build := m.Run(threads, func(t *machine.Thread) {
		n := len(r)
		lo, hi := n*t.ID()/threads, n*(t.ID()+1)/threads
		for i := lo; i < hi; i++ {
			t.Read(rAddr+uint64(i)*recordBytes, recordBytes)
			table.Put(t, r[i].Key, uint32(i))
		}
	})

	// The probe phase only reads the table's Go-side state (the build is
	// complete) and accumulates into per-thread slots, so it runs under
	// RunParallel: node groups may probe concurrently on the host.
	outs := make([]vec, threads)
	perMatches := make([]uint64, threads)
	perChecksum := make([]uint64, threads)
	probe := m.RunParallel(threads, func(t *machine.Thread) {
		n := len(s)
		lo, hi := n*t.ID()/threads, n*(t.ID()+1)/threads
		out := &outs[t.ID()]
		for i := lo; i < hi; i++ {
			t.Read(sAddr+uint64(i)*recordBytes, recordBytes)
			if ri, ok := table.Get(t, s[i].Key); ok {
				// Materialize the joined tuple into the thread-local
				// output buffer.
				out.push(t, uint64(ri))
				perMatches[t.ID()]++
				perChecksum[t.ID()] += r[ri].Val + s[i].Val
			}
		}
	})
	var matches, checksum uint64
	for i := 0; i < threads; i++ {
		matches += perMatches[i]
		checksum += perChecksum[i]
	}

	res := probe
	res.WallCycles += create.WallCycles + build.WallCycles
	return JoinOutcome{
		Outcome: Outcome{
			Result:      res,
			SetupCycles: setupR + setupS,
			Matches:     matches,
			Checksum:    checksum,
		},
		BuildCycles: create.WallCycles + build.WallCycles,
		ProbeCycles: probe.WallCycles,
	}
}

// ReferenceJoin computes the join result in plain Go, for tests.
func ReferenceJoin(tables datagen.JoinTables) (matches, checksum uint64) {
	byKey := make(map[uint64]uint64, len(tables.R))
	for _, r := range tables.R {
		byKey[r.Key] = r.Val
	}
	for _, s := range tables.S {
		if rv, ok := byKey[s.Key]; ok {
			matches++
			checksum += rv + s.Val
		}
	}
	return matches, checksum
}
