package machine

import (
	"sort"

	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vmm"
)

// ObserveOptions selects what a Machine records. The zero value observes
// nothing; set the fields for the instruments you want. One Observe call
// replaces the SetTrace/SetProfiling/StartSnapshots/ResetCounters setup
// dance and applies the pieces in the only order that composes correctly
// (instruments first, counter rescope last, so counters, snapshots and
// profile all describe the same window).
type ObserveOptions struct {
	// Trace attaches an event sink. With Sink nil a fresh trace.Recorder
	// is attached (retrieve it via Telemetry.Events or Machine.Trace).
	Trace bool
	// Sink is the event sink to attach; implies Trace when non-nil.
	Sink trace.Sink
	// Profile turns on 18-bucket cycle attribution (a fresh accumulation).
	Profile bool
	// SnapEvery, when positive, starts periodic counter snapshots at that
	// simulated-cycle cadence (a fresh series).
	SnapEvery float64
	// Spans marks the machine for request-level span collection: harnesses
	// that support it (internal/serve, the TPC-H CLI) check SpansEnabled and
	// assemble spans from telemetry. Spans imply Profile — span bucket
	// deltas come from the profiler — and are observation-only: the
	// simulated results are bit-identical with spans on or off.
	Spans bool
	// ResetCounters zeroes the counter profile after the instruments are
	// attached, so everything measures from the same origin.
	ResetCounters bool
}

// Observe configures the machine's instrumentation in one call and returns
// a read-only Telemetry view over it. Instruments only observe: a run with
// any combination of them attached is byte-identical to an uninstrumented
// run. Observe may be called again between phases to re-scope or extend
// what is recorded.
func (m *Machine) Observe(o ObserveOptions) *Telemetry {
	if o.Trace || o.Sink != nil {
		s := o.Sink
		if s == nil {
			s = trace.NewRecorder()
		}
		m.SetTrace(s)
	}
	if o.Spans {
		m.spans = true
		o.Profile = true
	}
	if o.Profile {
		m.SetProfiling(true)
	}
	if o.SnapEvery > 0 {
		m.StartSnapshots(o.SnapEvery)
	}
	if o.ResetCounters {
		m.ResetCounters()
	}
	return &Telemetry{m: m}
}

// SpansEnabled reports whether Observe was asked for request-level spans.
// The machine itself emits no spans; harnesses (internal/serve, the TPC-H
// CLI) read this to decide whether to assemble them from telemetry.
func (m *Machine) SpansEnabled() bool { return m.spans }

// Telemetry is a read-only view over one machine's live instrumentation:
// counters, snapshots, cycle attribution, trace events, and the
// contention/access state the placement daemon consumes. Every accessor
// copies, so holding or mutating returned values never perturbs the
// machine. Obtain one from Machine.Observe, or receive one inside a
// daemon callback (see SetDaemon).
type Telemetry struct {
	m *Machine
}

// Clock returns the machine's global virtual clock.
func (v *Telemetry) Clock() float64 { return v.m.clock }

// Counters returns the counter profile accumulated since the last reset.
func (v *Telemetry) Counters() Counters { return v.m.Counters() }

// LAR returns the current local access ratio.
func (v *Telemetry) LAR() float64 { return v.m.Counters().LAR() }

// Snapshots returns a copy of the periodic counter samples.
func (v *Telemetry) Snapshots() []Snapshot { return v.m.Snapshots() }

// Profile returns the accumulated cycle attribution, nil when profiling
// is off.
func (v *Telemetry) Profile() *Profile { return v.m.Profile() }

// ThreadBuckets returns a copy of one thread's per-bucket cycles, nil when
// profiling is off.
func (v *Telemetry) ThreadBuckets(id int) []float64 { return v.m.ThreadBuckets(id) }

// Events returns the recorded trace events when the attached sink is a
// *trace.Recorder (the Observe default), nil otherwise.
func (v *Telemetry) Events() []trace.Event {
	if r, ok := v.m.trace.(*trace.Recorder); ok {
		return r.Events
	}
	return nil
}

// NodeOccupancy returns a copy of the per-node memory-controller
// occupancy multipliers (1 = uncontended; queueing grows the multiplier,
// capped at 8). This is the modeled controller pressure the
// bandwidth-aware interleave policy weights against.
func (v *Telemetry) NodeOccupancy() []float64 {
	return append([]float64(nil), v.m.nodeMult...)
}

// LinkPressure returns the interconnect contention multiplier
// (1 = uncontended).
func (v *Telemetry) LinkPressure() float64 { return v.m.linkMult }

// ThreadNodeAccesses returns a copy of the per-thread × per-node DRAM
// access counts accumulated while a daemon is attached:
// row[t][n] counts DRAM accesses by thread t served by node n's memory.
// Nil when no daemon has been attached (the accounting only runs then).
func (v *Telemetry) ThreadNodeAccesses() [][]uint64 {
	if v.m.threadNodeAcc == nil {
		return nil
	}
	out := make([][]uint64, len(v.m.threadNodeAcc))
	for i, row := range v.m.threadNodeAcc {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}

// ThreadNode reports the node thread id currently runs on, and whether the
// thread exists and is still running. Only answers during a daemon window
// (between quanta, inside a SetDaemon callback); outside one it returns
// ok=false.
func (v *Telemetry) ThreadNode(id int) (topology.NodeID, bool) {
	t := v.m.threadByID(v.m.daemonThreads, id)
	if t == nil || t.done {
		return 0, false
	}
	return t.Node(), true
}

// Threads returns the number of workload threads in the current run during
// a daemon window, 0 outside one.
func (v *Telemetry) Threads() int { return len(v.m.daemonThreads) }

// NodeThreads returns how many running threads currently sit on each node
// during a daemon window, nil outside one. Together with
// Spec.CoresPerNode*Spec.ThreadsPerCore this tells a daemon whether a
// target node has free hardware contexts.
func (v *Telemetry) NodeThreads() []int {
	if v.m.daemonThreads == nil {
		return nil
	}
	out := make([]int, v.m.Spec.Topo.Nodes())
	for _, t := range v.m.daemonThreads {
		if !t.done {
			out[t.Node()]++
		}
	}
	return out
}

// HotPage is one sampled page from the access-sampling table: the page's
// address, the thread and node of its last sampled access, the consecutive
// same-thread sample count, and the page's current backing (home node,
// hugepage membership).
type HotPage struct {
	Addr   uint64
	Thread int
	Node   topology.NodeID
	Hits   int
	Home   topology.NodeID
	Huge   bool
}

// HotPages returns the current access samples sorted by address. Sampling
// runs when AutoNUMA is on or a daemon is attached (one access in 16 is
// sampled, exactly the feed the kernel's balancer uses). Unmapped sampled
// pages are omitted.
func (v *Telemetry) HotPages() []HotPage {
	m := v.m
	vpns := make([]uint64, 0, len(m.samples))
	for vpn := range m.samples { //rangecheck:ok keys sorted immediately below
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	out := make([]HotPage, 0, len(vpns))
	for _, vpn := range vpns {
		e := m.samples[vpn]
		addr := vpn << vmm.PageShift
		home, huge, ok := m.Mem.Locate(addr)
		if !ok {
			continue
		}
		out = append(out, HotPage{
			Addr:   addr,
			Thread: e.thread,
			Node:   e.node,
			Hits:   e.hits,
			Home:   home,
			Huge:   huge,
		})
	}
	return out
}

// Actuator is the placement-control surface a daemon uses to act on the
// machine: move a thread to a node, migrate pages, or reweight the
// interleave rotor. Actuation is only legal inside a daemon window (all
// workload threads parked between quanta); calls outside one panic.
// Every action pays the same modeled costs the kernel's own mechanisms
// pay (reschedule penalty, page copies, TLB shootdowns), charged to the
// affected threads.
type Actuator interface {
	// MigrateThread moves thread id to the least-loaded hardware context
	// on node to. Reports false when the thread does not exist, has
	// finished, or already runs on that node. The move overrides the
	// configured placement pinning — orchestration is explicit policy.
	MigrateThread(id int, to topology.NodeID) bool
	// MigratePages migrates the given page addresses to node to,
	// splitting hugepages as needed, and returns how many pages moved.
	// Addresses already on the target (or unmapped) are skipped; each
	// address's access sample is consumed either way.
	MigratePages(addrs []uint64, to topology.NodeID) int
	// SetInterleaveWeights installs per-node weights for the interleave
	// placement rotor (see vmm.Memory.SetInterleaveWeights); nil restores
	// unweighted round-robin. Affects future faults only.
	SetInterleaveWeights(w []float64)
}

// actuator implements Actuator against one machine.
type actuator struct {
	m *Machine
}

// window returns the parked thread set, panicking outside a daemon window.
func (a actuator) window() []*Thread {
	if a.m.daemonThreads == nil {
		panic("machine: Actuator used outside a daemon window")
	}
	return a.m.daemonThreads
}

func (a actuator) MigrateThread(id int, to topology.NodeID) bool {
	m := a.m
	threads := a.window()
	t := m.threadByID(threads, id)
	if t == nil || t.done {
		return false
	}
	if to < 0 || int(to) >= m.Spec.Topo.Nodes() || t.Node() == to {
		return false
	}
	per := m.Spec.CoresPerNode * m.Spec.ThreadsPerCore
	base := int(to) * per
	best := base
	for hw := base + 1; hw < base+per; hw++ {
		if m.hwLoad[hw] < m.hwLoad[best] {
			best = hw
		}
	}
	m.migrateThread(t, best, trace.InitOrchestrator)
	return true
}

func (a actuator) MigratePages(addrs []uint64, to topology.NodeID) int {
	m := a.m
	threads := a.window()
	if to < 0 || int(to) >= m.Spec.Topo.Nodes() {
		return 0
	}
	// Splits and migrations this call forces are the orchestrator's doing.
	defer m.Mem.SetInitiator(m.Mem.SetInitiator(trace.InitOrchestrator))
	alive := 0
	for _, t := range threads {
		if !t.done {
			alive++
		}
	}
	moved := 0
	for _, addr := range addrs {
		vpn := addr >> vmm.PageShift
		home, huge, ok := m.Mem.Locate(addr)
		if !ok || home == to {
			delete(m.samples, vpn)
			continue
		}
		if huge {
			m.Mem.SplitHuge(addr)
			if alive > 0 {
				m.chargeAll(threads, m.P.THPSplitCost/float64(alive), BucketTHPWork)
			}
		}
		if m.Mem.MigratePage(addr, to) {
			moved++
			// Same cost protocol as autoNUMAPass: the page copy stalls the
			// sampled accessor (everyone, when the accessor is unknown or
			// gone); the shootdown stalls every thread with a translation.
			accessor := m.threadByID(threads, m.samples[vpn].thread)
			if accessor != nil && !accessor.done {
				accessor.stall(m.P.AutoNUMAPageCost)
				m.profAdd(accessor, BucketPageMigration, m.P.AutoNUMAPageCost)
			} else if alive > 0 {
				m.chargeAll(threads, m.P.AutoNUMAPageCost/float64(alive), BucketPageMigration)
			}
			if alive > 0 {
				for _, t := range threads {
					if !t.done {
						t.tlb.InvalidatePage(vpn)
						t.stall(m.P.AutoNUMAShootdown / float64(alive))
						m.profAdd(t, BucketTLBShootdown, m.P.AutoNUMAShootdown/float64(alive))
					}
				}
			}
		}
		delete(m.samples, vpn)
	}
	return moved
}

func (a actuator) SetInterleaveWeights(w []float64) {
	a.window()
	a.m.Mem.SetInterleaveWeights(w)
}

// SetDaemon attaches fn as a placement daemon firing every period
// simulated cycles, between thread quanta — the same cadence discipline
// as AutoNUMA and khugepaged. The callback receives a read-only Telemetry
// view and an Actuator scoped to the window; a daemon that never actuates
// leaves the run byte-identical to one with no daemon attached (the
// observation-only invariant, tested like profiling's). Attaching also
// turns on access sampling and per-thread × node access accounting for
// Telemetry. period <= 0 defaults to one scheduler quantum. Pass fn nil
// to detach.
func (m *Machine) SetDaemon(period float64, fn func(*Telemetry, Actuator)) {
	if fn == nil {
		m.daemon = nil
		m.threadNodeAcc = nil
		return
	}
	if period <= 0 {
		period = m.P.Quantum
	}
	m.daemon = fn
	m.daemonPeriod = period
	m.nextDaemon = m.clock + period
	if m.threadNodeAcc == nil {
		m.threadNodeAcc = [][]uint64{}
	}
}

// noteThreadNode accumulates one DRAM access into the per-thread × node
// table behind Telemetry.ThreadNodeAccesses.
func (m *Machine) noteThreadNode(id int, home topology.NodeID) {
	m.growThreadNodeAcc(id)
	m.threadNodeAcc[id][home]++
}

// growThreadNodeAcc sizes the table through thread id. The scheduler
// pre-sizes at Run start so the hot path's writes (each on the thread's
// exclusive row) never append while node groups run concurrently.
func (m *Machine) growThreadNodeAcc(id int) {
	for id >= len(m.threadNodeAcc) {
		m.threadNodeAcc = append(m.threadNodeAcc, make([]uint64, m.Spec.Topo.Nodes()))
	}
}
