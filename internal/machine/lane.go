package machine

import (
	"sort"

	"repro/internal/trace"
)

// The round-based scheduler isolates everything a thread's quantum can
// touch outside its own NUMA node into effect buffers that are merged in a
// fixed order at the round boundary:
//
//   - counters, the DRAM contention window and AutoNUMA samples accumulate
//     per thread (Thread.counters, dramDelta, sampleDelta) and merge in
//     thread-id order;
//   - the last-writer directory and trace events buffer per node group in
//     a lane (below) and merge in node order;
//   - anything that cannot be buffered — demand faults, page placement,
//     allocator calls — parks the thread into the round's serial phase
//     (Thread.parkSerial), which runs after the merge against base state.
//
// Because the merge order is fixed and groups never touch shared mutable
// state while running, executing groups on one host core or many produces
// byte-identical simulations.

// lane is the per-node-group effect buffer for state that needs
// within-group read-your-writes semantics during a round: the last-writer
// line directory (coherence tracking is immediate inside a node's cache
// domain, round-granular across domains) and the group's trace events.
type lane struct {
	// epoch-tagged overlay over Machine.writerDir: entries written this
	// round live in dirVal, marked by dirEpoch == epoch and listed in
	// dirLog for the boundary merge. Reads fall through to the (frozen)
	// base directory.
	epoch    uint32
	dirVal   []uint32
	dirEpoch []uint32
	dirLog   []uint32

	events []trace.Event
}

// beginRound opens a fresh round for the lane: prior overlay entries
// expire by epoch bump, the write log and event buffer reset.
func (ln *lane) beginRound() {
	ln.epoch++
	if ln.epoch == 0 {
		// Epoch wrapped: stale marks from 2^32 rounds ago would alias the
		// new epoch, so clear them once.
		for i := range ln.dirEpoch {
			ln.dirEpoch[i] = 0
		}
		ln.epoch = 1
	}
	ln.dirLog = ln.dirLog[:0]
	ln.events = ln.events[:0]
}

// dirRead returns the directory entry at idx as this lane sees it: its
// own round-local write if present, the round-start base value otherwise.
func (ln *lane) dirRead(m *Machine, idx uint64) uint32 {
	if ln.dirEpoch[idx] == ln.epoch {
		return ln.dirVal[idx]
	}
	return m.writerDir[idx]
}

// dirWrite records a directory write in the lane's overlay.
func (ln *lane) dirWrite(idx uint64, v uint32) {
	if ln.dirEpoch[idx] != ln.epoch {
		ln.dirEpoch[idx] = ln.epoch
		ln.dirLog = append(ln.dirLog, uint32(idx))
	}
	ln.dirVal[idx] = v
}

// schedGroup is one round's worth of work for one NUMA node: the node's
// runnable threads (in thread-id order) and its lane. Groups are the unit
// RunParallel distributes across host cores.
type schedGroup struct {
	node    int
	threads []*Thread
	lane    *lane
}

// ensureLanes builds the per-node lanes and group shells on first use.
func (m *Machine) ensureLanes() {
	if m.lanes != nil {
		return
	}
	nodes := m.Spec.Topo.Nodes()
	m.lanes = make([]*lane, nodes)
	m.groupPool = make([]*schedGroup, nodes)
	for i := range m.lanes {
		m.lanes[i] = &lane{
			dirVal:   make([]uint32, len(m.writerDir)),
			dirEpoch: make([]uint32, len(m.writerDir)),
		}
		m.groupPool[i] = &schedGroup{node: i, lane: m.lanes[i]}
	}
}

// buildGroups partitions the runnable threads by current NUMA node into
// node-ascending groups (thread-id order within each) and opens a fresh
// lane round for every non-empty group.
func (m *Machine) buildGroups(runnable []*Thread) []*schedGroup {
	m.groups = m.groups[:0]
	for node := range m.lanes {
		var g *schedGroup
		for _, t := range runnable {
			if int(t.node) != node {
				continue
			}
			if g == nil {
				g = m.groupPool[node]
				g.threads = g.threads[:0]
				m.groups = append(m.groups, g)
			}
			g.threads = append(g.threads, t)
		}
		if g != nil {
			g.lane.beginRound()
		}
	}
	return m.groups
}

// runGroup executes one scheduling quantum for each thread of the group,
// in thread-id order, with effects routed into the group's lane. Threads
// that hit a serializing operation park with needSerial set and finish
// their quantum in the round's serial phase instead.
func (m *Machine) runGroup(g *schedGroup) {
	for _, t := range g.threads {
		t.quantumStart = t.cycles
		t.lane = g.lane
		t.resume <- struct{}{}
		<-t.parked
		t.lane = nil
		if !t.needSerial {
			m.finishQuantum(t, t.quantumStart)
		}
	}
}

// finishQuantum applies the scheduler's end-of-quantum accounting:
// oversubscribed contexts time-share, so wall time inflates by the
// context's load and each switch re-pollutes the private caches.
func (m *Machine) finishQuantum(t *Thread, start float64) {
	load := m.hwLoad[t.hw]
	if load < 1 {
		load = 1
	}
	t.wall += (t.cycles - start) * float64(load)
	if m.prof != nil && load > 1 {
		// The quantum's charges were attributed at their sources; the
		// inflation beyond them is time spent descheduled.
		m.prof.add(t.id, t.node, BucketTimeshare, (t.cycles-start)*float64(load-1))
	}
	if load > 1 {
		t.l1.Flush()
		t.tlb.Flush()
	}
}

// mergeLane publishes a lane's round effects into base state: directory
// writes in log order (lanes merge in node order, so a line written by two
// nodes in one round deterministically keeps the higher node's entry) and
// the group's trace events.
func (m *Machine) mergeLane(ln *lane) {
	for _, idx := range ln.dirLog {
		m.writerDir[idx] = ln.dirVal[idx]
	}
	if m.trace != nil {
		for i := range ln.events {
			m.trace.Emit(ln.events[i])
		}
	}
}

// mergeThreadDeltas folds one thread's round-local accumulators into the
// machine: counters, the contention window, and AutoNUMA samples (sorted
// by page so map order never leaks into the simulation).
func (m *Machine) mergeThreadDeltas(t *Thread) {
	m.counters.TLBMisses += t.counters.TLBMisses
	m.counters.CacheAccesses += t.counters.CacheAccesses
	m.counters.CacheMisses += t.counters.CacheMisses
	m.counters.LocalAccesses += t.counters.LocalAccesses
	m.counters.RemoteAccesses += t.counters.RemoteAccesses
	t.counters = Counters{}
	for i, v := range t.dramDelta {
		if v != 0 {
			m.dramWindow[i] += v
			t.dramDelta[i] = 0
		}
	}
	m.windowTotal += t.winDelta
	m.remoteWin += t.remoteDelta
	t.winDelta, t.remoteDelta = 0, 0
	if len(t.sampleDelta) > 0 {
		vpns := make([]uint64, 0, len(t.sampleDelta))
		for vpn := range t.sampleDelta { //rangecheck:ok keys sorted immediately below
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			m.samples[vpn] = t.sampleDelta[vpn]
			delete(t.sampleDelta, vpn)
		}
	}
}
