package machine

import (
	"reflect"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vmm"
)

// Cross-cutting sweeps and edge cases for the machine simulator.

func TestThreadScalingReducesWall(t *testing.T) {
	// The same total work split over more threads must shrink the
	// makespan (up to full subscription).
	wall := func(threads int) float64 {
		m := NewC()
		cfg := testConfig(threads)
		m.Configure(cfg)
		var base uint64
		m.Run(1, func(th *Thread) {
			base = t2Alloc(th, 16<<20)
		})
		return m.Run(threads, func(th *Thread) {
			n := uint64(16 << 20)
			lo := n * uint64(th.ID()) / uint64(threads)
			hi := n * uint64(th.ID()+1) / uint64(threads)
			for off := lo &^ 63; off < hi; off += 64 {
				th.Read(base+off, 8)
			}
		}).WallCycles
	}
	w1, w8, w64 := wall(1), wall(8), wall(64)
	if !(w64 < w8 && w8 < w1) {
		t.Errorf("scaling broken: 1T=%v 8T=%v 64T=%v", w1, w8, w64)
	}
	// Sublinear (contention and remote shares grow with threads) but
	// still substantial.
	if w1/w8 < 2.2 {
		t.Errorf("8 threads should cut the 1-thread wall substantially: %v vs %v", w1, w8)
	}
}

func t2Alloc(th *Thread, bytes uint64) uint64 {
	base := th.Malloc(bytes)
	for off := uint64(0); off < bytes; off += 4096 {
		th.Write(base+off, 8)
	}
	return base
}

func TestRemoteLatencyVisible(t *testing.T) {
	// Machine C's 2.1x remote latency: a thread scanning memory on its
	// own node must beat one scanning another node's memory.
	scan := func(owner int) float64 {
		m := NewC()
		cfg := testConfig(2)
		m.Configure(cfg)
		var base uint64
		m.Run(2, func(th *Thread) {
			if th.ID() == owner {
				base = t2Alloc(th, 8<<20)
			}
		})
		res := m.Run(2, func(th *Thread) {
			if th.ID() != 0 {
				return
			}
			for pass := 0; pass < 2; pass++ {
				for off := uint64(0); off < 8<<20; off += 64 {
					th.Read(base+off, 8)
				}
			}
		})
		return res.WallCycles
	}
	local := scan(0)  // thread 0 reads its own allocation
	remote := scan(1) // thread 0 reads thread 1's allocation
	if remote < local*1.3 {
		t.Errorf("remote scan (%v) should clearly exceed local (%v) on Machine C", remote, local)
	}
}

func TestMachineAHopGradient(t *testing.T) {
	// On the twisted ladder, reading from a 3-hop node costs more than
	// from a 1-hop node.
	topo := SpecA().Topo
	oneHop, threeHop := -1, -1
	for n := 1; n < 8; n++ {
		switch topo.Hops(0, topology.NodeID(n)) {
		case 1:
			if oneHop < 0 {
				oneHop = n
			}
		case 3:
			if threeHop < 0 {
				threeHop = n
			}
		}
	}
	if oneHop < 0 || threeHop < 0 {
		t.Fatal("expected both 1-hop and 3-hop nodes")
	}
	scanFrom := func(node int) float64 {
		m := NewA()
		cfg := testConfig(16)
		cfg.Policy = vmm.Preferred
		cfg.PreferredNode = topology.NodeID(node)
		m.Configure(cfg)
		var base uint64
		m.Run(1, func(th *Thread) { base = t2Alloc(th, 4<<20) })
		res := m.Run(1, func(th *Thread) { // runs on node 0
			for off := uint64(0); off < 4<<20; off += 64 {
				th.Read(base+off, 8)
			}
		})
		return res.WallCycles
	}
	near, far := scanFrom(oneHop), scanFrom(threeHop)
	if far <= near {
		t.Errorf("3-hop scan (%v) should exceed 1-hop scan (%v)", far, near)
	}
}

func TestZeroSizeAccessIsFree(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(1))
	res := m.Run(1, func(th *Thread) {
		base := th.Malloc(4096)
		before := th.Cycles()
		th.Read(base, 0)
		th.Write(base, 0)
		if th.Cycles() != before {
			t.Error("zero-size access charged cycles")
		}
	})
	_ = res
}

func TestCountersResetBetweenPhases(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(2))
	m.Run(2, scanBody(1<<20, 1))
	if m.Counters().CacheAccesses == 0 {
		t.Fatal("phase 1 recorded nothing")
	}
	m.ResetCounters()
	c := m.Counters()
	if c.CacheAccesses != 0 || c.MinorFaults != 0 || c.ThreadMigrations != 0 {
		t.Errorf("counters survived reset: %+v", c)
	}
}

// ---------------------------------------------------------------------------
// Scalar-vs-batched equivalence harness.
//
// refAccess is a line-for-line copy of the scalar access path as it stood
// before the batched engine (per-line fault, TLB set scan, division-based
// line tag, no caching between lines). The harness runs the same workload
// through refAccess loops and through the batched Run/Strided APIs across
// the full 15-config sweep and demands bit-identical results, counters,
// cycle profiles and trace streams.

// refAccess charges one scalar access the pre-batching way.
func refAccess(t *Thread, addr, size uint64, write bool) {
	if size == 0 {
		return
	}
	m := t.m
	line := uint64(m.Spec.LineSize)
	last := (addr + size - 1) &^ (line - 1)
	if t.lane == nil {
		m.current = t
	}
	for a := addr &^ (line - 1); a <= last; a += line {
		refAccessLine(t, a, write)
	}
	if t.lane == nil {
		m.current = nil
	}
	t.maybeYield()
}

func refAccessLine(t *Thread, a uint64, write bool) {
	m := t.m
	p := &m.P
	cost := 0.0
	var faultC, walkC float64
	vpn := a >> vmm.PageShift
	f := t.fault(a)
	node := t.node
	if f.Kind == vmm.MinorFault {
		cost += p.MinorFaultCycles
		faultC = p.MinorFaultCycles
		if f.HugeMapped {
			cost += p.THPFaultCycles
			faultC += p.THPFaultCycles
		}
	}
	if !t.tlb.Access(vpn, f.Huge) {
		t.counters.TLBMisses++
		if f.Huge {
			cost += p.WalkHugeCycles
			walkC = p.WalkHugeCycles
		} else {
			cost += p.WalkCycles
			walkC = p.WalkCycles
		}
	}
	lineTag := a / uint64(m.Spec.LineSize)
	if t.l1.Access(lineTag) {
		if write {
			t.noteWriter(lineTag)
		}
		t.cycles += cost + p.L1HitCycles
		if m.prof != nil {
			m.prof.access(t.id, node, faultC, walkC, 0, BucketL1Hit, p.L1HitCycles)
		}
		return
	}
	cohC := m.coherencePenalty(t, lineTag, write)
	cost += cohC
	t.counters.CacheAccesses++
	if m.llc[node].Access(lineTag) {
		t.cycles += cost + p.LLCHitCycles
		if m.prof != nil {
			m.prof.access(t.id, node, faultC, walkC, cohC, BucketLLCHit, p.LLCHitCycles)
		}
		return
	}
	t.counters.CacheMisses++
	home := f.Node
	dram := p.DRAMCycles * m.Spec.Topo.Latency(node, home) * m.nodeMult[home]
	if home != node {
		dram *= m.linkMult
		t.counters.RemoteAccesses++
	} else {
		t.counters.LocalAccesses++
	}
	t.lastVPN = vpn
	m.noteDRAM(home, t)
	t.cycles += cost + dram
	if m.prof != nil {
		m.prof.access(t.id, node, faultC, walkC, cohC,
			dramBucket(m.Spec.Topo.Hops(node, home)), dram)
		m.prof.dram(node, home)
	}
}

// accessOps abstracts how a workload body issues its accesses so the same
// body can run through the reference scalar path and the batched engine.
type accessOps struct {
	read         func(t *Thread, addr, size uint64)
	write        func(t *Thread, addr, size uint64)
	readRun      func(t *Thread, addr, elem uint64, count int)
	writeRun     func(t *Thread, addr, elem uint64, count int)
	readStrided  func(t *Thread, addr, elem, stride uint64, count int)
	writeStrided func(t *Thread, addr, elem, stride uint64, count int)
}

func scalarOps() accessOps {
	loop := func(write bool) func(t *Thread, addr, elem, stride uint64, count int) {
		return func(t *Thread, addr, elem, stride uint64, count int) {
			for i := 0; i < count; i++ {
				refAccess(t, addr+uint64(i)*stride, elem, write)
			}
		}
	}
	return accessOps{
		read:  func(t *Thread, addr, size uint64) { refAccess(t, addr, size, false) },
		write: func(t *Thread, addr, size uint64) { refAccess(t, addr, size, true) },
		readRun: func(t *Thread, addr, elem uint64, count int) {
			loop(false)(t, addr, elem, elem, count)
		},
		writeRun: func(t *Thread, addr, elem uint64, count int) {
			loop(true)(t, addr, elem, elem, count)
		},
		readStrided:  loop(false),
		writeStrided: loop(true),
	}
}

func batchedOps() accessOps {
	return accessOps{
		read:         func(t *Thread, addr, size uint64) { t.Read(addr, size) },
		write:        func(t *Thread, addr, size uint64) { t.Write(addr, size) },
		readRun:      func(t *Thread, addr, elem uint64, count int) { t.ReadRun(addr, elem, count) },
		writeRun:     func(t *Thread, addr, elem uint64, count int) { t.WriteRun(addr, elem, count) },
		readStrided:  (*Thread).ReadStrided,
		writeStrided: (*Thread).WriteStrided,
	}
}

// equivBody exercises every access shape: dense store and load runs, page-
// and sub-page strides, random scalar probes (pointer-chasing stand-in),
// cross-thread sharing for coherence, allocation and pure-CPU work.
func equivBody(ops accessOps, shared *uint64) func(*Thread) {
	const bufBytes = 1 << 20
	return func(t *Thread) {
		if t.ID() == 0 {
			*shared = t.Malloc(bufBytes)
			ops.writeRun(t, *shared, 64, bufBytes/64)
		}
		base := t.Malloc(bufBytes)
		ops.writeRun(t, base, 8, bufBytes/8)
		ops.readRun(t, base, 64, bufBytes/64)
		ops.readStrided(t, base, 8, 4096, bufBytes/4096)
		ops.writeStrided(t, base, 16, 192, 1024)
		rng := t.RNG()
		for i := 0; i < 512; i++ {
			off := rng.Uint64n(bufBytes/8) * 8
			ops.read(t, base+off, 8)
		}
		t.Charge(3000)
		if *shared != 0 {
			ops.writeRun(t, *shared, 8, 2048)
		}
		t.Free(base, bufBytes)
	}
}

// TestBatchedPathEquivalence is the old-vs-new harness: across the full
// configuration sweep, the batched engine must reproduce the reference
// scalar path bit for bit — results, counters, cycle attribution, and the
// complete trace event stream.
func TestBatchedPathEquivalence(t *testing.T) {
	for _, tc := range profileConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(ops accessOps) (Result, *Profile, []trace.Event) {
				m := tc.machine()
				m.Configure(tc.cfg)
				m.SetProfiling(true)
				rec := trace.NewRecorder()
				m.SetTrace(rec)
				var shared uint64
				res := m.Run(tc.threads, equivBody(ops, &shared))
				return res, m.Profile(), rec.Events
			}
			sRes, sProf, sEvents := run(scalarOps())
			bRes, bProf, bEvents := run(batchedOps())
			if !reflect.DeepEqual(sRes, bRes) {
				t.Errorf("results diverge:\nscalar:  %+v\nbatched: %+v", sRes, bRes)
			}
			if !reflect.DeepEqual(sProf, bProf) {
				t.Error("cycle profiles diverge")
			}
			if len(sEvents) != len(bEvents) {
				t.Fatalf("trace streams diverge: %d vs %d events", len(sEvents), len(bEvents))
			}
			for i := range sEvents {
				if sEvents[i] != bEvents[i] {
					t.Fatalf("trace event %d diverges:\nscalar:  %+v\nbatched: %+v",
						i, sEvents[i], bEvents[i])
				}
			}
		})
	}
}

func TestCoherenceTransferCharged(t *testing.T) {
	// A line written by a thread on one node costs extra when first read
	// from another node (dirty cache-to-cache transfer).
	m := NewB()
	m.Configure(testConfig(2))
	var base uint64
	m.Run(2, func(th *Thread) {
		if th.ID() == 0 {
			base = th.Malloc(4096)
			th.Write(base, 64)
		}
	})
	var withTransfer, without float64
	m.Run(2, func(th *Thread) {
		if th.ID() != 1 {
			return
		}
		c0 := th.Cycles()
		th.Read(base, 8) // dirty on node 0: transfer
		withTransfer = th.Cycles() - c0
		c1 := th.Cycles()
		th.Read(base+2048, 8) // clean line, same page
		without = th.Cycles() - c1
	})
	if withTransfer <= without {
		t.Errorf("dirty-line read (%v) should cost more than clean (%v)", withTransfer, without)
	}
}
