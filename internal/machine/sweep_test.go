package machine

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/vmm"
)

// Cross-cutting sweeps and edge cases for the machine simulator.

func TestThreadScalingReducesWall(t *testing.T) {
	// The same total work split over more threads must shrink the
	// makespan (up to full subscription).
	wall := func(threads int) float64 {
		m := NewC()
		cfg := testConfig(threads)
		m.Configure(cfg)
		var base uint64
		m.Run(1, func(th *Thread) {
			base = t2Alloc(th, 16<<20)
		})
		return m.Run(threads, func(th *Thread) {
			n := uint64(16 << 20)
			lo := n * uint64(th.ID()) / uint64(threads)
			hi := n * uint64(th.ID()+1) / uint64(threads)
			for off := lo &^ 63; off < hi; off += 64 {
				th.Read(base+off, 8)
			}
		}).WallCycles
	}
	w1, w8, w64 := wall(1), wall(8), wall(64)
	if !(w64 < w8 && w8 < w1) {
		t.Errorf("scaling broken: 1T=%v 8T=%v 64T=%v", w1, w8, w64)
	}
	// Sublinear (contention and remote shares grow with threads) but
	// still substantial.
	if w1/w8 < 2.2 {
		t.Errorf("8 threads should cut the 1-thread wall substantially: %v vs %v", w1, w8)
	}
}

func t2Alloc(th *Thread, bytes uint64) uint64 {
	base := th.Malloc(bytes)
	for off := uint64(0); off < bytes; off += 4096 {
		th.Write(base+off, 8)
	}
	return base
}

func TestRemoteLatencyVisible(t *testing.T) {
	// Machine C's 2.1x remote latency: a thread scanning memory on its
	// own node must beat one scanning another node's memory.
	scan := func(owner int) float64 {
		m := NewC()
		cfg := testConfig(2)
		m.Configure(cfg)
		var base uint64
		m.Run(2, func(th *Thread) {
			if th.ID() == owner {
				base = t2Alloc(th, 8<<20)
			}
		})
		res := m.Run(2, func(th *Thread) {
			if th.ID() != 0 {
				return
			}
			for pass := 0; pass < 2; pass++ {
				for off := uint64(0); off < 8<<20; off += 64 {
					th.Read(base+off, 8)
				}
			}
		})
		return res.WallCycles
	}
	local := scan(0)  // thread 0 reads its own allocation
	remote := scan(1) // thread 0 reads thread 1's allocation
	if remote < local*1.3 {
		t.Errorf("remote scan (%v) should clearly exceed local (%v) on Machine C", remote, local)
	}
}

func TestMachineAHopGradient(t *testing.T) {
	// On the twisted ladder, reading from a 3-hop node costs more than
	// from a 1-hop node.
	topo := SpecA().Topo
	oneHop, threeHop := -1, -1
	for n := 1; n < 8; n++ {
		switch topo.Hops(0, topology.NodeID(n)) {
		case 1:
			if oneHop < 0 {
				oneHop = n
			}
		case 3:
			if threeHop < 0 {
				threeHop = n
			}
		}
	}
	if oneHop < 0 || threeHop < 0 {
		t.Fatal("expected both 1-hop and 3-hop nodes")
	}
	scanFrom := func(node int) float64 {
		m := NewA()
		cfg := testConfig(16)
		cfg.Policy = vmm.Preferred
		cfg.PreferredNode = topology.NodeID(node)
		m.Configure(cfg)
		var base uint64
		m.Run(1, func(th *Thread) { base = t2Alloc(th, 4<<20) })
		res := m.Run(1, func(th *Thread) { // runs on node 0
			for off := uint64(0); off < 4<<20; off += 64 {
				th.Read(base+off, 8)
			}
		})
		return res.WallCycles
	}
	near, far := scanFrom(oneHop), scanFrom(threeHop)
	if far <= near {
		t.Errorf("3-hop scan (%v) should exceed 1-hop scan (%v)", far, near)
	}
}

func TestZeroSizeAccessIsFree(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(1))
	res := m.Run(1, func(th *Thread) {
		base := th.Malloc(4096)
		before := th.Cycles()
		th.Read(base, 0)
		th.Write(base, 0)
		if th.Cycles() != before {
			t.Error("zero-size access charged cycles")
		}
	})
	_ = res
}

func TestCountersResetBetweenPhases(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(2))
	m.Run(2, scanBody(1<<20, 1))
	if m.Counters().CacheAccesses == 0 {
		t.Fatal("phase 1 recorded nothing")
	}
	m.ResetCounters()
	c := m.Counters()
	if c.CacheAccesses != 0 || c.MinorFaults != 0 || c.ThreadMigrations != 0 {
		t.Errorf("counters survived reset: %+v", c)
	}
}

func TestCoherenceTransferCharged(t *testing.T) {
	// A line written by a thread on one node costs extra when first read
	// from another node (dirty cache-to-cache transfer).
	m := NewB()
	m.Configure(testConfig(2))
	var base uint64
	m.Run(2, func(th *Thread) {
		if th.ID() == 0 {
			base = th.Malloc(4096)
			th.Write(base, 64)
		}
	})
	var withTransfer, without float64
	m.Run(2, func(th *Thread) {
		if th.ID() != 1 {
			return
		}
		c0 := th.Cycles()
		th.Read(base, 8) // dirty on node 0: transfer
		withTransfer = th.Cycles() - c0
		c1 := th.Cycles()
		th.Read(base+2048, 8) // clean line, same page
		without = th.Cycles() - c1
	})
	if withTransfer <= without {
		t.Errorf("dirty-line read (%v) should cost more than clean (%v)", withTransfer, without)
	}
}
