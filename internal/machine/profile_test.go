package machine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/vmm"
)

// profileConfigs mirrors the configuration space the sweep tests exercise:
// all three machines, every placement and policy, daemons on and off,
// contended allocators, and oversubscription.
func profileConfigs() []struct {
	name    string
	machine func() *Machine
	cfg     RunConfig
	threads int
} {
	var out []struct {
		name    string
		machine func() *Machine
		cfg     RunConfig
		threads int
	}
	add := func(name string, mk func() *Machine, cfg RunConfig, threads int) {
		out = append(out, struct {
			name    string
			machine func() *Machine
			cfg     RunConfig
			threads int
		}{name, mk, cfg, threads})
	}
	add("A-default", NewA, DefaultConfig(16), 16)
	add("A-tuned", NewA, TunedConfig(16), 16)
	add("B-sparse-ft", NewB, testConfig(4), 4)
	add("C-sparse-ft", NewC, testConfig(8), 8)
	cfg := testConfig(4)
	cfg.Placement = PlaceDense
	add("B-dense", NewB, cfg, 4)
	cfg = testConfig(4)
	cfg.Policy = vmm.Interleave
	add("B-interleave", NewB, cfg, 4)
	cfg = testConfig(4)
	cfg.Policy = vmm.Preferred
	add("B-preferred", NewB, cfg, 4)
	cfg = testConfig(4)
	cfg.AutoNUMA = true
	add("A-autonuma", NewA, cfg, 4)
	cfg = testConfig(4)
	cfg.THP = true
	add("C-thp", NewC, cfg, 4)
	// Migration-heavy: OS-scheduled threads with a migration-prone seed.
	cfg = DefaultConfig(16)
	cfg.Seed = 3
	add("A-migratey", NewA, cfg, 16)
	// Oversubscription: 64 threads on Machine B's 32 contexts.
	cfg = testConfig(64)
	cfg.Placement = PlaceDense
	add("B-oversubscribed", NewB, cfg, 64)
	for _, name := range []string{"jemalloc", "tcmalloc", "tbbmalloc", "mcmalloc"} {
		cfg = testConfig(8)
		cfg.Allocator = name
		add("B-"+name, NewB, cfg, 8)
	}
	return out
}

// profileBody exercises every charge site: allocation (work + lock
// contention), demand faults, cache hits and misses at every level, shared
// writes (coherence), pure-CPU work, and frees (THP churn / splits).
func profileBody(shared *uint64) func(*Thread) {
	return func(t *Thread) {
		if t.ID() == 0 {
			*shared = t.Malloc(1 << 20)
			for off := uint64(0); off < 1<<20; off += 64 {
				t.Write(*shared+off, 8)
			}
		}
		base := t.Malloc(512 << 10)
		for pass := 0; pass < 2; pass++ {
			for off := uint64(0); off < 512<<10; off += 64 {
				t.Write(base+off, 8)
			}
		}
		t.Charge(5000)
		if *shared != 0 {
			for off := uint64(0); off < 256<<10; off += 64 {
				t.Read(*shared+off, 8)
			}
		}
		t.Free(base, 512<<10)
	}
}

// TestProfileAccountingComplete is the accounting-completeness invariant:
// for every configuration, each thread's bucket sum reconstructs its wall
// cycles, and the node access matrix agrees exactly with the Local/Remote
// perf counters.
func TestProfileAccountingComplete(t *testing.T) {
	for _, tc := range profileConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.machine()
			m.Configure(tc.cfg)
			m.SetProfiling(true)
			var shared uint64
			res := m.Run(tc.threads, profileBody(&shared))
			p := m.Profile()
			if p == nil {
				t.Fatal("Profile() == nil with profiling on")
			}
			if len(p.Threads) != tc.threads {
				t.Fatalf("profiled %d threads, ran %d", len(p.Threads), tc.threads)
			}
			// Per-thread: buckets sum to wall cycles. The bucket partition
			// sums in a different association order than the thread's single
			// running total, so allow relative float error.
			var maxWall float64
			for _, tb := range p.Threads {
				var sum float64
				for _, c := range tb.Buckets {
					sum += c
				}
				if diff := math.Abs(sum - tb.WallCycles); diff > 1e-6*math.Max(1, tb.WallCycles) {
					t.Errorf("thread %d: bucket sum %v != wall %v (diff %v)",
						tb.Thread, sum, tb.WallCycles, diff)
				}
				if tb.WallCycles > maxWall {
					maxWall = tb.WallCycles
				}
			}
			if maxWall != res.WallCycles {
				t.Errorf("max thread wall %v != result wall %v", maxWall, res.WallCycles)
			}
			// Matrix: diagonal counts local accesses, off-diagonal remote,
			// exactly (integers).
			var diag, offd uint64
			for i, row := range p.Matrix {
				for j, n := range row {
					if i == j {
						diag += n
					} else {
						offd += n
					}
				}
			}
			c := res.Counters
			if diag != c.LocalAccesses {
				t.Errorf("matrix diagonal %d != LocalAccesses %d", diag, c.LocalAccesses)
			}
			if offd != c.RemoteAccesses {
				t.Errorf("matrix off-diagonal %d != RemoteAccesses %d", offd, c.RemoteAccesses)
			}
			var rows uint64
			for _, r := range p.MatrixRowSums() {
				rows += r
			}
			if rows != c.LocalAccesses+c.RemoteAccesses {
				t.Errorf("matrix row sums %d != Local+Remote %d", rows, c.LocalAccesses+c.RemoteAccesses)
			}
			// Node breakdowns partition the same cycles as thread breakdowns.
			var threadTot, nodeTot float64
			for _, c := range p.Totals() {
				threadTot += c
			}
			for _, nb := range p.Nodes {
				for _, c := range nb.Buckets {
					nodeTot += c
				}
			}
			if diff := math.Abs(threadTot - nodeTot); diff > 1e-6*math.Max(1, threadTot) {
				t.Errorf("thread totals %v != node totals %v", threadTot, nodeTot)
			}
		})
	}
}

// TestProfilingIsObservationOnly: the same seed yields bit-identical
// results with profiling on and off — attribution must never perturb the
// simulation.
func TestProfilingIsObservationOnly(t *testing.T) {
	run := func(profiled bool) Result {
		m := NewA()
		cfg := DefaultConfig(8)
		cfg.Seed = 42
		m.Configure(cfg)
		m.SetProfiling(profiled)
		var shared uint64
		return m.Run(8, profileBody(&shared))
	}
	on, off := run(true), run(false)
	if on.WallCycles != off.WallCycles {
		t.Errorf("profiling changed wall cycles: on=%v off=%v", on.WallCycles, off.WallCycles)
	}
	if on.Counters != off.Counters {
		t.Errorf("profiling changed counters:\non:  %+v\noff: %+v", on.Counters, off.Counters)
	}
}

func TestProfileNilWhenOff(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(2))
	if m.Profiling() {
		t.Error("profiling should default off")
	}
	m.Run(2, scanBody(256<<10, 1))
	if p := m.Profile(); p != nil {
		t.Errorf("Profile() = %v with profiling off, want nil", p)
	}
}

func TestProfileResetAndDetach(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(2))
	m.SetProfiling(true)
	m.Run(2, scanBody(256<<10, 1))
	if m.Profile().WallCycles() == 0 {
		t.Fatal("no cycles attributed")
	}
	m.ResetProfile()
	if w := m.Profile().WallCycles(); w != 0 {
		t.Errorf("wall after reset = %v, want 0", w)
	}
	m.SetProfiling(false)
	if m.Profile() != nil {
		t.Error("Profile() should be nil after detach")
	}
}

func TestProfileSnapshotIsStable(t *testing.T) {
	// The exported Profile must not alias live accumulation state.
	m := NewB()
	m.Configure(testConfig(2))
	m.SetProfiling(true)
	m.Run(2, scanBody(256<<10, 1))
	p := m.Profile()
	before := p.WallCycles()
	m.Run(2, scanBody(256<<10, 1))
	if p.WallCycles() != before {
		t.Error("earlier Profile snapshot mutated by a later run")
	}
	if m.Profile().WallCycles() <= before {
		t.Error("second run attributed nothing")
	}
}

func TestBucketNames(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Buckets() {
		name := b.String()
		if name == "" || seen[name] {
			t.Errorf("bucket %d: bad or duplicate name %q", int(b), name)
		}
		seen[name] = true
	}
	if got := fmt.Sprint(Bucket(NumBuckets + 1)); got == "" {
		t.Error("out-of-range bucket should still format")
	}
}
