package machine

import (
	"fmt"

	"repro/internal/topology"
)

// Bucket classifies where a charged cycle went. Every cycle the simulator
// charges to a thread — compute, cache and DRAM stalls, kernel daemon
// taxes, allocator waits, scheduler penalties — lands in exactly one
// bucket, so a run's per-thread bucket sums reconstruct its wall time
// (the accounting-completeness invariant tested in profile_test.go).
type Bucket int

const (
	// BucketCompute is pure CPU work charged via Thread.Charge.
	BucketCompute Bucket = iota
	// BucketL1Hit is time served from the core-private L1.
	BucketL1Hit
	// BucketLLCHit is time served from the node's last-level cache.
	BucketLLCHit
	// BucketDRAMLocal is DRAM time served by the accessing thread's node.
	BucketDRAMLocal
	// BucketDRAMRemote1 is DRAM time served one interconnect hop away.
	BucketDRAMRemote1
	// BucketDRAMRemote2 is DRAM time served two hops away.
	BucketDRAMRemote2
	// BucketDRAMRemote3 is DRAM time served three or more hops away.
	BucketDRAMRemote3
	// BucketPageWalk is page-table walk time after TLB misses.
	BucketPageWalk
	// BucketFaultService is minor-fault service time (demand zeroing,
	// including the extra THP fault-path zeroing).
	BucketFaultService
	// BucketCoherence is cache-to-cache transfer time for lines dirty in
	// another node's cache.
	BucketCoherence
	// BucketAllocWork is allocator time excluding lock waits (size-class
	// lookup, refills, slab carving).
	BucketAllocWork
	// BucketAllocStall is allocator lock-contention wait time.
	BucketAllocStall
	// BucketThreadMigration is the reschedule penalty of thread moves.
	BucketThreadMigration
	// BucketPageMigration is page-copy time charged when AutoNUMA moves a
	// page toward its accessor.
	BucketPageMigration
	// BucketTLBShootdown is the shootdown stall paid by every running
	// thread when a mapped page migrates.
	BucketTLBShootdown
	// BucketAutoNUMAScan is the balancer's sampling tax: hint faults and
	// scan stalls charged each pass.
	BucketAutoNUMAScan
	// BucketTHPWork is hugepage management: khugepaged collapses, splits
	// (including pre-migration and unmap splits) and the kernel's THP
	// bookkeeping churn on allocator page returns.
	BucketTHPWork
	// BucketTimeshare is wall inflation from hardware-context
	// oversubscription: time spent runnable but descheduled while another
	// thread shared the context.
	BucketTimeshare

	// NumBuckets is the bucket count; Buckets() lists them in order.
	NumBuckets
)

// Buckets lists every attribution bucket in stable order.
func Buckets() []Bucket {
	bs := make([]Bucket, NumBuckets)
	for i := range bs {
		bs[i] = Bucket(i)
	}
	return bs
}

// String returns the bucket's stable name, used by the JSONL schema, the
// breakdown tables and the folded-stack exporter.
func (b Bucket) String() string {
	switch b {
	case BucketCompute:
		return "compute"
	case BucketL1Hit:
		return "l1_hit"
	case BucketLLCHit:
		return "llc_hit"
	case BucketDRAMLocal:
		return "dram_local"
	case BucketDRAMRemote1:
		return "dram_remote_1hop"
	case BucketDRAMRemote2:
		return "dram_remote_2hop"
	case BucketDRAMRemote3:
		return "dram_remote_3hop"
	case BucketPageWalk:
		return "page_walk"
	case BucketFaultService:
		return "fault_service"
	case BucketCoherence:
		return "coherence"
	case BucketAllocWork:
		return "alloc_work"
	case BucketAllocStall:
		return "alloc_stall"
	case BucketThreadMigration:
		return "thread_migration"
	case BucketPageMigration:
		return "page_migration"
	case BucketTLBShootdown:
		return "tlb_shootdown"
	case BucketAutoNUMAScan:
		return "autonuma_scan"
	case BucketTHPWork:
		return "thp_work"
	case BucketTimeshare:
		return "timeshare"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// dramBucket maps an interconnect hop distance to its DRAM bucket.
func dramBucket(hops int) Bucket {
	switch hops {
	case 0:
		return BucketDRAMLocal
	case 1:
		return BucketDRAMRemote1
	case 2:
		return BucketDRAMRemote2
	default:
		return BucketDRAMRemote3
	}
}

// ThreadBreakdown is one thread's cycle attribution: WallCycles is the
// thread's accumulated wall time across the profiled runs, Buckets the
// cycles charged per Bucket (indexed by the Bucket constants). The bucket
// sum equals WallCycles up to floating-point association error.
type ThreadBreakdown struct {
	Thread     int       `json:"thread"`
	WallCycles float64   `json:"wall_cycles"`
	Buckets    []float64 `json:"buckets"`
}

// NodeBreakdown is one NUMA node's cycle attribution: cycles charged to
// threads while they were running on this node.
type NodeBreakdown struct {
	Node    int       `json:"node"`
	Buckets []float64 `json:"buckets"`
}

// Profile is a machine's accumulated cycle attribution: where every
// charged cycle went, per thread and per NUMA node, plus a numastat-style
// access matrix. Obtain one from Machine.Profile after SetProfiling(true).
type Profile struct {
	// BucketNames gives the Buckets index order, so a serialized profile
	// is self-describing.
	BucketNames []string `json:"bucket_names"`
	// Threads has one entry per simulated thread id that ran.
	Threads []ThreadBreakdown `json:"threads"`
	// Nodes has one entry per NUMA node.
	Nodes []NodeBreakdown `json:"nodes"`
	// Matrix[i][j] counts DRAM accesses issued by threads running on node
	// i that were served by memory on node j (diagonal = local accesses).
	Matrix [][]uint64 `json:"matrix"`
}

// Totals sums the per-thread buckets into one machine-wide breakdown.
func (p *Profile) Totals() []float64 {
	tot := make([]float64, NumBuckets)
	for i := range p.Threads {
		for b, c := range p.Threads[i].Buckets {
			tot[b] += c
		}
	}
	return tot
}

// TotalsByName returns the machine-wide breakdown keyed by bucket name,
// the shape the JSONL records embed.
func (p *Profile) TotalsByName() map[string]float64 {
	out := make(map[string]float64, NumBuckets)
	for b, c := range p.Totals() {
		if c != 0 {
			out[Bucket(b).String()] = c
		}
	}
	return out
}

// WallCycles sums every thread's accumulated wall time.
func (p *Profile) WallCycles() float64 {
	var w float64
	for i := range p.Threads {
		w += p.Threads[i].WallCycles
	}
	return w
}

// MatrixRowSums returns per-source-node DRAM access totals (row sums of
// the access matrix).
func (p *Profile) MatrixRowSums() []uint64 {
	out := make([]uint64, len(p.Matrix))
	for i, row := range p.Matrix {
		for _, n := range row {
			out[i] += n
		}
	}
	return out
}

// profiler is the live accumulation state behind Machine.Profile. It only
// observes: recording never touches the RNG or the cycle arithmetic, so a
// profiled run is byte-identical to an unprofiled one.
type profiler struct {
	n       int // NUMA nodes
	threads []threadProf
	nodes   [][NumBuckets]float64
	matrix  []uint64 // n*n, row-major [from][to]
}

type threadProf struct {
	buckets [NumBuckets]float64
	wall    float64
}

func newProfiler(nodes int) *profiler {
	return &profiler{
		n:      nodes,
		nodes:  make([][NumBuckets]float64, nodes),
		matrix: make([]uint64, nodes*nodes),
	}
}

// thread returns thread id's accumulator, growing the table as needed.
func (pr *profiler) thread(id int) *threadProf {
	for id >= len(pr.threads) {
		pr.threads = append(pr.threads, threadProf{})
	}
	return &pr.threads[id]
}

// add charges c cycles to bucket b for thread id running on node.
func (pr *profiler) add(id int, node topology.NodeID, b Bucket, c float64) {
	if c == 0 {
		return
	}
	pr.thread(id).buckets[b] += c
	pr.nodes[node][b] += c
}

// access records one accessLine's component costs in a single call (the
// hot path pays one nil check, then this).
func (pr *profiler) access(id int, node topology.NodeID, faultC, walkC, cohC float64, hit Bucket, hitC float64) {
	tp := pr.thread(id)
	np := &pr.nodes[node]
	if faultC != 0 {
		tp.buckets[BucketFaultService] += faultC
		np[BucketFaultService] += faultC
	}
	if walkC != 0 {
		tp.buckets[BucketPageWalk] += walkC
		np[BucketPageWalk] += walkC
	}
	if cohC != 0 {
		tp.buckets[BucketCoherence] += cohC
		np[BucketCoherence] += cohC
	}
	tp.buckets[hit] += hitC
	np[hit] += hitC
}

// dram records a DRAM access in the node matrix.
func (pr *profiler) dram(from, to topology.NodeID) {
	pr.matrix[int(from)*pr.n+int(to)]++
}

// snapshot builds the exported Profile.
func (pr *profiler) snapshot() *Profile {
	p := &Profile{
		BucketNames: make([]string, NumBuckets),
		Threads:     make([]ThreadBreakdown, len(pr.threads)),
		Nodes:       make([]NodeBreakdown, pr.n),
		Matrix:      make([][]uint64, pr.n),
	}
	for b := range p.BucketNames {
		p.BucketNames[b] = Bucket(b).String()
	}
	for i := range pr.threads {
		tb := ThreadBreakdown{
			Thread:     i,
			WallCycles: pr.threads[i].wall,
			Buckets:    make([]float64, NumBuckets),
		}
		copy(tb.Buckets, pr.threads[i].buckets[:])
		p.Threads[i] = tb
	}
	for n := 0; n < pr.n; n++ {
		nb := NodeBreakdown{Node: n, Buckets: make([]float64, NumBuckets)}
		copy(nb.Buckets, pr.nodes[n][:])
		p.Nodes[n] = nb
		row := make([]uint64, pr.n)
		copy(row, pr.matrix[n*pr.n:(n+1)*pr.n])
		p.Matrix[n] = row
	}
	return p
}

// SetProfiling attaches (true) or detaches (false) the cycle-attribution
// profiler. Attaching starts a fresh accumulation. Like tracing, profiling
// only observes — simulated results are byte-identical either way — and
// with profiling off every hook reduces to one pointer compare.
//
// Deprecated: use Observe with ObserveOptions.Profile. SetProfiling
// remains as a thin wrapper (pass on=false directly to detach).
func (m *Machine) SetProfiling(on bool) {
	if !on {
		m.prof = nil
		m.wireAllocHooks()
		return
	}
	m.prof = newProfiler(m.Spec.Topo.Nodes())
	m.wireAllocHooks()
}

// Profiling reports whether cycle attribution is currently on.
func (m *Machine) Profiling() bool { return m.prof != nil }

// Profile returns the accumulated cycle attribution since SetProfiling
// (or ResetProfile), nil when profiling is off. The returned value is a
// snapshot; continuing the run does not mutate it.
func (m *Machine) Profile() *Profile {
	if m.prof == nil {
		return nil
	}
	return m.prof.snapshot()
}

// ThreadBuckets returns a copy of one thread's accumulated per-bucket
// cycles (indexed by the Bucket constants), nil when profiling is off.
// Unlike Profile it does not materialize node breakdowns or the access
// matrix, so callers can difference it around short work windows (e.g. one
// served request) cheaply. A thread that has not charged anything yet reads
// as all zeros; the call never mutates the profiler.
func (m *Machine) ThreadBuckets(id int) []float64 {
	if m.prof == nil {
		return nil
	}
	out := make([]float64, NumBuckets)
	if id >= 0 && id < len(m.prof.threads) {
		copy(out, m.prof.threads[id].buckets[:])
	}
	return out
}

// ResetProfile zeroes the accumulated attribution (between workload
// phases), keeping profiling on. No-op when profiling is off.
func (m *Machine) ResetProfile() {
	if m.prof != nil {
		m.prof = newProfiler(m.Spec.Topo.Nodes())
	}
}

// profAdd charges c cycles to bucket b for thread t at its current node;
// the cold-path attribution hook (daemons, scheduler, allocator).
func (m *Machine) profAdd(t *Thread, b Bucket, c float64) {
	if m.prof == nil {
		return
	}
	m.prof.add(t.id, m.nodeOf(t.hw), b, c)
}
