package machine

import (
	"repro/internal/cache"
	"repro/internal/topology"
	"repro/internal/vmm"
	"repro/internal/xrand"
)

// Thread is a simulated worker thread. Workload bodies use it for every
// interaction with the machine: memory access, allocation, and pure-CPU
// work. Threads are cooperative and the virtual-time interleaving is
// faithful to the quantum granularity. Under Machine.Run quanta execute
// one at a time on the host, so a body needs no synchronization of Go
// state; under Machine.RunParallel quanta of different NUMA nodes may
// execute concurrently and the body must confine cross-thread interaction
// to the simulated memory API.
type Thread struct {
	m    *Machine
	id   int
	hw   int             // hardware context index
	node topology.NodeID // NUMA node of hw, kept in sync by the scheduler

	l1  *cache.Cache
	tlb *cache.TLB
	rng *xrand.Rand

	cycles     float64 // virtual time consumed (work + stalls)
	wall       float64 // wall time, inflated by context oversubscription
	sliceBase  float64 // cycles at the start of the current quantum
	lastVPN    uint64  // most recent DRAM access page, for NUMA sampling
	migrations uint64

	// Round-local effect accumulators, merged by the scheduler at every
	// round boundary (see lane.go): perf counters, the DRAM contention
	// window (per home node, plus total and remote-share tallies), and
	// AutoNUMA access samples. sampleTick paces the 1-in-16 sampling of
	// this thread's DRAM accesses.
	counters    Counters
	dramDelta   []float64
	winDelta    float64
	remoteDelta float64
	sampleDelta map[uint64]sampleEntry
	sampleTick  uint64

	// lane is the node group's effect buffer while the thread runs the
	// concurrent phase of a round, nil in the serial phase and at
	// boundaries. quantumStart and needSerial carry a split quantum (one
	// that parked on a serializing operation) into the serial phase.
	lane         *lane
	quantumStart float64
	needSerial   bool

	resume chan struct{}
	parked chan struct{}
	done   bool
}

// ID returns the thread's index in [0, Threads).
func (t *Thread) ID() int { return t.id }

// Node returns the NUMA node the thread currently runs on.
func (t *Thread) Node() topology.NodeID { return t.node }

// RNG returns the thread's private deterministic random stream.
func (t *Thread) RNG() *xrand.Rand { return t.rng }

// Cycles returns the thread's consumed virtual time.
func (t *Thread) Cycles() float64 { return t.cycles }

// stall charges time to a parked thread (kernel daemon activity, thread
// migration). Parked threads are outside any quantum, so the cost must be
// applied to wall time directly as well as to the cycle account.
func (t *Thread) stall(cycles float64) {
	t.cycles += cycles
	t.wall += cycles
}

// parkSerial hands the thread from a round's concurrent phase to its
// serial phase: the scheduler resumes it, alone, after the round's lane
// effects have merged, so the operation that needed serialization (demand
// fault, allocator call, page-table mutation) runs against base state
// exactly as it would between quanta.
func (t *Thread) parkSerial() {
	t.needSerial = true
	t.parked <- struct{}{}
	<-t.resume
	// Serial phase: direct effects, and trace events from the VMM and
	// allocator stamp against this thread via Machine.current.
	t.m.current = t
}

// fault resolves the page backing address a. During the concurrent phase
// mapped pages are served from the read-only page table (vmm.Fault is
// pure for mapped pages, so the outcome is synthesized without touching
// VMM state); anything that would mutate the VMM — a demand fault, first
// touch placement, THP mapping — parks the thread into the serial phase
// and retakes the ordinary mutating path there.
func (t *Thread) fault(a uint64) vmm.Fault {
	m := t.m
	if t.lane != nil {
		if node, huge, ok := m.Mem.Locate(a); ok {
			return vmm.Fault{Node: node, Kind: vmm.Hit, Huge: huge}
		}
		t.parkSerial()
	}
	return m.Mem.Fault(a, t.node)
}

// noteWriter records that this thread's node last wrote lineTag, through
// the lane overlay during a round's concurrent phase.
func (t *Thread) noteWriter(lineTag uint64) {
	m := t.m
	idx := lineTag & uint64(len(m.writerDir)-1)
	v := uint32(lineTag>>16)<<8 | (uint32(t.node) + 1)
	if ln := t.lane; ln != nil {
		ln.dirWrite(idx, v)
	} else {
		m.writerDir[idx] = v
	}
}

// Charge accounts pure CPU work (hashing, comparisons, arithmetic) that
// touches no simulated memory.
func (t *Thread) Charge(cycles float64) {
	t.cycles += cycles
	if pr := t.m.prof; pr != nil {
		pr.add(t.id, t.node, BucketCompute, cycles)
	}
	t.maybeYield()
}

// Read simulates a load of size bytes at addr, walking TLB, L1, LLC and
// DRAM and charging the appropriate cycles.
func (t *Thread) Read(addr, size uint64) { t.access(addr, size, false) }

// Write simulates a store: the same walk as a load (write-allocate
// caches) plus ownership tracking in the machine's last-writer directory,
// so a later toucher on another node pays the cache-to-cache transfer.
func (t *Thread) Write(addr, size uint64) { t.access(addr, size, true) }

// ReadRun simulates count sequential loads of elem bytes each, laid out
// back to back from addr. It is exactly equivalent to
//
//	for i := 0; i < count; i++ { t.Read(addr+uint64(i)*elem, elem) }
//
// — same charged cycles, counters, trace events and yield points — but
// resolves the page fault once per page (or hugepage group) and the TLB
// set scan once per translation instead of once per element, so dense
// scans cost far less host time. Use it where the access pattern is a
// run; pointer-chasing code keeps the scalar Read/Write.
func (t *Thread) ReadRun(addr, elem uint64, count int) {
	t.accessRun(addr, elem, elem, count, false)
}

// WriteRun is the store analogue of ReadRun.
func (t *Thread) WriteRun(addr, elem uint64, count int) {
	t.accessRun(addr, elem, elem, count, true)
}

// ReadStrided simulates count loads of elem bytes spaced stride bytes
// apart, starting at addr: equivalent to
//
//	for i := 0; i < count; i++ { t.Read(addr+uint64(i)*stride, elem) }
//
// with the same batching as ReadRun. A strided run that revisits each
// page many times (stride < page size) still collapses its translation
// work; once stride exceeds the page size every element pays a fresh
// lookup, exactly like the scalar loop.
func (t *Thread) ReadStrided(addr, elem, stride uint64, count int) {
	t.accessRun(addr, elem, stride, count, false)
}

// WriteStrided is the store analogue of ReadStrided.
func (t *Thread) WriteStrided(addr, elem, stride uint64, count int) {
	t.accessRun(addr, elem, stride, count, true)
}

// Malloc allocates size bytes through the machine's configured allocator,
// charging the allocation cost to the thread. Allocator state is shared
// across the machine, so during a round's concurrent phase the call first
// parks into the serial phase.
func (t *Thread) Malloc(size uint64) uint64 {
	if t.lane != nil {
		t.parkSerial()
	}
	m := t.m
	m.current = t
	m.pendingLockWait = 0
	addr, cost := m.Alloc.Malloc(t, size)
	m.current = nil
	t.cycles += cost
	t.profAllocCost(cost)
	t.maybeYield()
	return addr
}

// Free releases an allocation (sized free), charging its cost.
func (t *Thread) Free(addr, size uint64) {
	if t.lane != nil {
		t.parkSerial()
	}
	m := t.m
	m.current = t
	m.pendingLockWait = 0
	cost := m.Alloc.Free(t, addr, size)
	m.current = nil
	t.cycles += cost
	t.profAllocCost(cost)
	t.maybeYield()
}

// profAllocCost attributes an allocator call's cost, splitting the
// lock-contention wait (accumulated by the lock-wait hook during the call)
// from the allocator's own work. Splits triggered inside the call charged
// the thread directly through UnmapRange and are attributed there.
func (t *Thread) profAllocCost(cost float64) {
	pr := t.m.prof
	if pr == nil {
		return
	}
	stall := t.m.pendingLockWait
	if stall > cost {
		stall = cost
	}
	pr.add(t.id, t.node, BucketAllocStall, stall)
	pr.add(t.id, t.node, BucketAllocWork, cost-stall)
}

// access charges one simulated memory access. Accesses confined to one
// cache line — the common case for the scalar pointer-chasing kernels —
// skip the run engine's batching state entirely.
func (t *Thread) access(addr, size uint64, write bool) {
	if size == 0 {
		return
	}
	m := t.m
	if addr&^(m.lineSize-1) != (addr+size-1)&^(m.lineSize-1) {
		t.accessRun(addr, size, 0, 1, write)
		return
	}
	// Mark the acting thread so trace events emitted along the serial
	// access path (faults, placements) are stamped with its cycle account.
	// During a round's concurrent phase Machine.current stays untouched:
	// the concurrent path emits no VMM events and stamps coherence events
	// explicitly.
	if t.lane == nil {
		m.current = t
	}
	t.accessLine(addr&^(m.lineSize-1), write)
	if t.lane == nil {
		m.current = nil
	}
	t.maybeYield()
}

// accessLine charges one line the scalar way: full fault resolution and
// TLB lookup, no cached translation. Kept in lockstep with the line body
// of accessRun (which adds the between-yield caching on top).
func (t *Thread) accessLine(a uint64, write bool) {
	m := t.m
	p := &m.P
	cost := 0.0
	var faultC, walkC float64
	vpn := a >> vmm.PageShift
	f := t.fault(a)
	node := t.node
	if f.Kind == vmm.MinorFault {
		cost += p.MinorFaultCycles
		faultC = p.MinorFaultCycles
		if f.HugeMapped {
			cost += p.THPFaultCycles
			faultC += p.THPFaultCycles
		}
	}
	if !t.tlb.Access(vpn, f.Huge) {
		t.counters.TLBMisses++
		if f.Huge {
			cost += p.WalkHugeCycles
			walkC = p.WalkHugeCycles
		} else {
			cost += p.WalkCycles
			walkC = p.WalkCycles
		}
	}
	lineTag := a >> m.lineShift
	if t.l1.Access(lineTag) {
		if write {
			t.noteWriter(lineTag)
		}
		t.cycles += cost + p.L1HitCycles
		if prof := m.prof; prof != nil {
			prof.access(t.id, node, faultC, walkC, 0, BucketL1Hit, p.L1HitCycles)
		}
		return
	}
	cohC := m.coherencePenalty(t, lineTag, write)
	cost += cohC
	t.counters.CacheAccesses++
	if m.llc[node].Access(lineTag) {
		t.cycles += cost + p.LLCHitCycles
		if prof := m.prof; prof != nil {
			prof.access(t.id, node, faultC, walkC, cohC, BucketLLCHit, p.LLCHitCycles)
		}
		return
	}
	t.counters.CacheMisses++
	home := f.Node
	dram := p.DRAMCycles * m.Spec.Topo.Latency(node, home) * m.nodeMult[home]
	if home != node {
		dram *= m.linkMult
		t.counters.RemoteAccesses++
	} else {
		t.counters.LocalAccesses++
	}
	t.lastVPN = vpn
	m.noteDRAM(home, t)
	t.cycles += cost + dram
	if prof := m.prof; prof != nil {
		prof.access(t.id, node, faultC, walkC, cohC,
			dramBucket(m.Spec.Topo.Hops(node, home)), dram)
		prof.dram(node, home)
	}
}

// accessRun is the memory-access engine behind Read/Write and the batched
// Run/Strided variants: count elements of elem bytes, stride bytes apart,
// each element one scalar access (line walk, then a yield check).
//
// The fast path caches the active translation between lines and elements:
// the fault outcome for the current page (or 2MiB group) and the TLB entry
// serving it. Both are guaranteed re-hits until the next yield — the
// scheduler only runs daemons (page/thread migration, hugepage splits, TLB
// flushes) between quanta, and a serial handoff counts as a yield — so the
// cache is dropped at every yield point and the charged costs stay
// bit-identical to the uncached walk.
func (t *Thread) accessRun(addr, elem, stride uint64, count int, write bool) {
	if elem == 0 || count <= 0 {
		return
	}
	m := t.m
	p := &m.P
	lineMask := m.lineSize - 1
	prof := m.prof
	quantum := p.Quantum

	// Translation cache, valid for vpns in [fLo, fHi] until the next yield.
	var (
		haveF    bool
		f        vmm.Fault
		fLo, fHi uint64
		ref      cache.TLBRef
	)
	// Line cache: when elem < lineSize consecutive elements land on the
	// same line, which is then a guaranteed L1 re-hit (it was touched by
	// the previous element and nothing else operates on the private L1
	// until the next yield).
	var (
		haveLine bool
		lastTag  uint64
		lastIdx  int
	)

	for i := 0; i < count; i++ {
		a0 := addr + uint64(i)*stride
		last := (a0 + elem - 1) &^ lineMask
		// Mark the acting thread so trace events emitted along the serial
		// access path (faults, placements) are stamped with its cycle
		// account; cleared before yielding so daemon work is stamped on
		// the global clock. The concurrent path leaves Machine.current
		// alone — it emits no VMM events and stamps coherence events
		// explicitly.
		if t.lane == nil {
			m.current = t
		}
		for a := a0 &^ lineMask; ; a += m.lineSize {
			node := t.node
			cost := 0.0
			// Component costs mirror the additions into cost so the
			// profiler can attribute them; the cost arithmetic itself is
			// untouched, keeping profiled runs bit-identical to unprofiled
			// ones.
			var faultC, walkC float64
			vpn := a >> vmm.PageShift
			if haveF && vpn >= fLo && vpn <= fHi {
				// Cached translation: the page is mapped (fault hit) and
				// the TLB entry was touched by the previous line, so the
				// lookup re-hits — unless this is a huge translation with
				// no 2MiB TLB array, where every line walks.
				if !ref.Repeat() {
					t.counters.TLBMisses++
					cost += p.WalkHugeCycles
					walkC = p.WalkHugeCycles
				}
			} else {
				wasLane := t.lane != nil
				f = t.fault(a)
				if wasLane && t.lane == nil {
					// The fault crossed into the serial phase: other
					// threads ran in between, so the cached line handle is
					// stale (dropping it is always safe — the uncached
					// walk charges identically).
					haveLine = false
				}
				node = t.node
				if f.Kind == vmm.MinorFault {
					cost += p.MinorFaultCycles
					faultC = p.MinorFaultCycles
					if f.HugeMapped {
						// THP fault: one fault maps 2MiB, but zeroing it
						// costs extra.
						cost += p.THPFaultCycles
						faultC += p.THPFaultCycles
					}
				}
				var hit bool
				hit, ref = t.tlb.AccessIndexed(vpn, f.Huge)
				if !hit {
					t.counters.TLBMisses++
					if f.Huge {
						cost += p.WalkHugeCycles
						walkC = p.WalkHugeCycles
					} else {
						cost += p.WalkCycles
						walkC = p.WalkCycles
					}
				}
				haveF = true
				if f.Huge {
					fLo = vpn &^ uint64(vmm.PagesPerHuge-1)
					fHi = fLo + vmm.PagesPerHuge - 1
				} else {
					fLo, fHi = vpn, vpn
				}
			}
			lineTag := a >> m.lineShift
			l1Hit := false
			if haveLine && lineTag == lastTag {
				t.l1.Repeat(lastIdx)
				l1Hit = true
			} else {
				var idx int
				l1Hit, idx = t.l1.AccessIndexed(lineTag)
				haveLine, lastTag, lastIdx = true, lineTag, idx
			}
			if l1Hit {
				// L1 hit: the line is already owned or shared by this core.
				if write {
					t.noteWriter(lineTag)
				}
				t.cycles += cost + p.L1HitCycles
				if prof != nil {
					prof.access(t.id, node, faultC, walkC, 0, BucketL1Hit, p.L1HitCycles)
				}
			} else {
				// Past L1, a line dirty in another node's cache costs a
				// transfer.
				cohC := m.coherencePenalty(t, lineTag, write)
				cost += cohC
				t.counters.CacheAccesses++
				if m.llc[node].Access(lineTag) {
					t.cycles += cost + p.LLCHitCycles
					if prof != nil {
						prof.access(t.id, node, faultC, walkC, cohC, BucketLLCHit, p.LLCHitCycles)
					}
				} else {
					t.counters.CacheMisses++
					home := f.Node
					dram := p.DRAMCycles * m.Spec.Topo.Latency(node, home) * m.nodeMult[home]
					if home != node {
						dram *= m.linkMult
						t.counters.RemoteAccesses++
					} else {
						t.counters.LocalAccesses++
					}
					t.lastVPN = vpn
					m.noteDRAM(home, t)
					t.cycles += cost + dram
					if prof != nil {
						prof.access(t.id, node, faultC, walkC, cohC,
							dramBucket(m.Spec.Topo.Hops(node, home)), dram)
						prof.dram(node, home)
					}
				}
			}
			if a == last {
				break
			}
		}
		if t.lane == nil {
			m.current = nil
		}
		// Inline maybeYield. Yielding parks the thread, and the scheduler
		// may run daemons (page migrations, hugepage splits/promotions, TLB
		// flushes and shootdowns) or move the thread before resuming it —
		// every cached handle is stale afterwards.
		if t.cycles-t.sliceBase >= quantum {
			t.sliceBase = t.cycles
			t.parked <- struct{}{}
			<-t.resume
			haveF = false
			haveLine = false
		}
	}
}
