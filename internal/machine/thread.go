package machine

import (
	"repro/internal/cache"
	"repro/internal/topology"
	"repro/internal/vmm"
	"repro/internal/xrand"
)

// Thread is a simulated worker thread. Workload bodies use it for every
// interaction with the machine: memory access, allocation, and pure-CPU
// work. Threads are cooperative — the scheduler runs exactly one at a time,
// so a body needs no synchronization of Go state, but the virtual-time
// interleaving is faithful to the quantum granularity.
type Thread struct {
	m  *Machine
	id int
	hw int // hardware context index

	l1  *cache.Cache
	tlb *cache.TLB
	rng *xrand.Rand

	cycles     float64 // virtual time consumed (work + stalls)
	wall       float64 // wall time, inflated by context oversubscription
	sliceBase  float64 // cycles at the start of the current quantum
	lastVPN    uint64  // most recent DRAM access page, for NUMA sampling
	migrations uint64

	resume chan struct{}
	parked chan struct{}
	done   bool
}

// ID returns the thread's index in [0, Threads).
func (t *Thread) ID() int { return t.id }

// Node returns the NUMA node the thread currently runs on.
func (t *Thread) Node() topology.NodeID { return t.m.nodeOf(t.hw) }

// RNG returns the thread's private deterministic random stream.
func (t *Thread) RNG() *xrand.Rand { return t.rng }

// Cycles returns the thread's consumed virtual time.
func (t *Thread) Cycles() float64 { return t.cycles }

// stall charges time to a parked thread (kernel daemon activity, thread
// migration). Parked threads are outside any quantum, so the cost must be
// applied to wall time directly as well as to the cycle account.
func (t *Thread) stall(cycles float64) {
	t.cycles += cycles
	t.wall += cycles
}

// Charge accounts pure CPU work (hashing, comparisons, arithmetic) that
// touches no simulated memory.
func (t *Thread) Charge(cycles float64) {
	t.cycles += cycles
	if pr := t.m.prof; pr != nil {
		pr.add(t.id, t.m.nodeOf(t.hw), BucketCompute, cycles)
	}
	t.maybeYield()
}

// Read simulates a load of size bytes at addr, walking TLB, L1, LLC and
// DRAM and charging the appropriate cycles.
func (t *Thread) Read(addr, size uint64) { t.access(addr, size, false) }

// Write simulates a store: the same walk as a load (write-allocate
// caches) plus ownership tracking in the machine's last-writer directory,
// so a later toucher on another node pays the cache-to-cache transfer.
func (t *Thread) Write(addr, size uint64) { t.access(addr, size, true) }

// Malloc allocates size bytes through the machine's configured allocator,
// charging the allocation cost to the thread.
func (t *Thread) Malloc(size uint64) uint64 {
	m := t.m
	m.current = t
	m.pendingLockWait = 0
	addr, cost := m.Alloc.Malloc(t, size)
	m.current = nil
	t.cycles += cost
	t.profAllocCost(cost)
	t.maybeYield()
	return addr
}

// Free releases an allocation (sized free), charging its cost.
func (t *Thread) Free(addr, size uint64) {
	m := t.m
	m.current = t
	m.pendingLockWait = 0
	cost := m.Alloc.Free(t, addr, size)
	m.current = nil
	t.cycles += cost
	t.profAllocCost(cost)
	t.maybeYield()
}

// profAllocCost attributes an allocator call's cost, splitting the
// lock-contention wait (accumulated by the lock-wait hook during the call)
// from the allocator's own work. Splits triggered inside the call charged
// the thread directly through UnmapRange and are attributed there.
func (t *Thread) profAllocCost(cost float64) {
	pr := t.m.prof
	if pr == nil {
		return
	}
	stall := t.m.pendingLockWait
	if stall > cost {
		stall = cost
	}
	node := t.m.nodeOf(t.hw)
	pr.add(t.id, node, BucketAllocStall, stall)
	pr.add(t.id, node, BucketAllocWork, cost-stall)
}

// access charges one simulated memory access, line by line.
func (t *Thread) access(addr, size uint64, write bool) {
	if size == 0 {
		return
	}
	m := t.m
	// Mark the acting thread so trace events emitted along the access path
	// (faults, placements, coherence transfers) are stamped with its cycle
	// account; cleared before yielding so daemon work is stamped on the
	// global clock.
	m.current = t
	line := uint64(m.Spec.LineSize)
	last := (addr + size - 1) &^ (line - 1)
	for a := addr &^ (line - 1); ; a += line {
		t.accessLine(a, write)
		if a == last {
			break
		}
	}
	m.current = nil
	t.maybeYield()
}

func (t *Thread) accessLine(a uint64, write bool) {
	m := t.m
	p := &m.P
	node := m.nodeOf(t.hw)
	cost := 0.0
	// Component costs mirror the additions into cost so the profiler can
	// attribute them; the cost arithmetic itself is untouched, keeping
	// profiled runs bit-identical to unprofiled ones.
	var faultC, walkC float64

	f := m.Mem.Fault(a, node)
	if f.Kind == vmm.MinorFault {
		cost += p.MinorFaultCycles
		faultC = p.MinorFaultCycles
		if f.HugeMapped {
			// THP fault: one fault maps 2MiB, but zeroing it costs extra.
			cost += p.THPFaultCycles
			faultC += p.THPFaultCycles
		}
	}
	vpn := a >> vmm.PageShift
	if !t.tlb.Access(vpn, f.Huge) {
		m.counters.TLBMisses++
		if f.Huge {
			cost += p.WalkHugeCycles
			walkC = p.WalkHugeCycles
		} else {
			cost += p.WalkCycles
			walkC = p.WalkCycles
		}
	}
	lineTag := a / uint64(m.Spec.LineSize)
	if t.l1.Access(lineTag) {
		// L1 hit: the line is already owned or shared by this core.
		if write {
			m.noteWriter(lineTag, node)
		}
		t.cycles += cost + p.L1HitCycles
		if m.prof != nil {
			m.prof.access(t.id, node, faultC, walkC, 0, BucketL1Hit, p.L1HitCycles)
		}
		return
	}
	// Past L1, a line dirty in another node's cache costs a transfer.
	cohC := m.coherencePenalty(lineTag, node, write)
	cost += cohC
	llc := m.llc[node]
	m.counters.CacheAccesses++
	if llc.Access(lineTag) {
		t.cycles += cost + p.LLCHitCycles
		if m.prof != nil {
			m.prof.access(t.id, node, faultC, walkC, cohC, BucketLLCHit, p.LLCHitCycles)
		}
		return
	}
	m.counters.CacheMisses++
	home := f.Node
	dram := p.DRAMCycles * m.Spec.Topo.Latency(node, home) * m.nodeMult[home]
	if home != node {
		dram *= m.linkMult
		m.counters.RemoteAccesses++
	} else {
		m.counters.LocalAccesses++
	}
	t.lastVPN = vpn
	m.noteDRAM(home, t)
	t.cycles += cost + dram
	if m.prof != nil {
		m.prof.access(t.id, node, faultC, walkC, cohC,
			dramBucket(m.Spec.Topo.Hops(node, home)), dram)
		m.prof.dram(node, home)
	}
}
