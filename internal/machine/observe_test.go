package machine

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// observeWorkload is the fixed workload the Observe-equivalence tests
// run: per-thread allocations with strided writes across pages, enough
// to fault pages, miss caches and stall the allocator.
func observeWorkload(m *Machine) {
	m.Run(4, func(th *Thread) {
		base := th.Malloc(1 << 18)
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 64; i++ {
				th.Write(base+uint64(i)*4096, 64)
			}
		}
		th.Read(base, 64)
		th.Free(base, 1<<18)
	})
}

func observeMachine() *Machine {
	m := NewB()
	cfg := DefaultConfig(4)
	cfg.AutoNUMA = true
	cfg.THP = true
	m.Configure(cfg)
	return m
}

// TestObserveSubsetsMatchSetters runs every subset of ObserveOptions
// {Trace, Profile, SnapEvery, Spans} against the equivalent deprecated
// setter sequence (SetTrace / SetProfiling / StartSnapshots; spans add
// profiling) and asserts both machines report identical telemetry — and,
// because instruments only observe, results bit-identical to the
// uninstrumented baseline.
func TestObserveSubsetsMatchSetters(t *testing.T) {
	base := observeMachine()
	observeWorkload(base)
	baseCtr := base.Counters()
	baseClock := base.Observe(ObserveOptions{}).Clock()

	const snapEvery = 50_000
	for mask := 0; mask < 16; mask++ {
		o := ObserveOptions{
			Trace:   mask&1 != 0,
			Profile: mask&2 != 0,
			Spans:   mask&8 != 0,
		}
		if mask&4 != 0 {
			o.SnapEvery = snapEvery
		}

		mo := observeMachine()
		tel := mo.Observe(o)
		observeWorkload(mo)

		md := observeMachine()
		if o.Trace {
			md.SetTrace(trace.NewRecorder())
		}
		if o.Profile || o.Spans {
			md.SetProfiling(true)
		}
		if o.SnapEvery > 0 {
			md.StartSnapshots(snapEvery)
		}
		observeWorkload(md)
		dtel := md.Observe(ObserveOptions{})

		// Bit-identical simulated results, against each other and the
		// uninstrumented baseline.
		if mo.Counters() != baseCtr || md.Counters() != baseCtr {
			t.Fatalf("mask %04b: counters diverged from baseline\nobserve: %+v\nsetters: %+v\nbase:    %+v",
				mask, mo.Counters(), md.Counters(), baseCtr)
		}
		if tel.Clock() != baseClock || dtel.Clock() != baseClock {
			t.Fatalf("mask %04b: clock diverged: observe %v, setters %v, base %v",
				mask, tel.Clock(), dtel.Clock(), baseClock)
		}

		// Identical telemetry per instrument.
		if got, want := len(tel.Events()), len(dtel.Events()); got != want {
			t.Errorf("mask %04b: %d events via Observe, %d via SetTrace", mask, got, want)
		}
		if o.Trace && len(tel.Events()) == 0 {
			t.Errorf("mask %04b: traced run recorded no events", mask)
		}
		if !o.Trace && tel.Events() != nil {
			t.Errorf("mask %04b: untraced run has events", mask)
		}
		po, pd := tel.Profile(), dtel.Profile()
		if (po == nil) != (pd == nil) {
			t.Fatalf("mask %04b: profile presence differs (observe %v, setters %v)", mask, po != nil, pd != nil)
		}
		if wantProf := o.Profile || o.Spans; (po != nil) != wantProf {
			t.Errorf("mask %04b: profile presence %v, want %v", mask, po != nil, wantProf)
		}
		if po != nil && !reflect.DeepEqual(po.Totals(), pd.Totals()) {
			t.Errorf("mask %04b: profile totals differ\nobserve: %v\nsetters: %v", mask, po.Totals(), pd.Totals())
		}
		if !reflect.DeepEqual(tel.Snapshots(), dtel.Snapshots()) {
			t.Errorf("mask %04b: snapshots differ (%d vs %d)", mask, len(tel.Snapshots()), len(dtel.Snapshots()))
		}
		if o.SnapEvery > 0 && len(tel.Snapshots()) == 0 {
			t.Errorf("mask %04b: snapshotting run took no snapshots", mask)
		}

		// SpansEnabled is the one flag with no deprecated equivalent: it
		// only marks the machine for harness-side collection.
		if mo.SpansEnabled() != o.Spans {
			t.Errorf("mask %04b: SpansEnabled = %v, want %v", mask, mo.SpansEnabled(), o.Spans)
		}
		if md.SpansEnabled() {
			t.Errorf("mask %04b: deprecated setters turned spans on", mask)
		}
	}
}

// TestInitiatorCoverage pins the initiator tags at the machine seam:
// scenarios with the OS scheduler, AutoNUMA, khugepaged and allocator
// contention active must record at least one event for each initiator
// the machine can drive (demand faults, OS migrations, AutoNUMA
// scans/migrations, khugepaged collapses, allocator stalls). The
// orchestrator initiator is pinned by the orchestrator package's own
// tests — attaching one here would be an import cycle.
func TestInitiatorCoverage(t *testing.T) {
	// Scenario 1: four threads hammering private 4MiB regions long enough
	// for several AutoNUMA passes (12M-cycle period) — demand faults from
	// small allocations, OS load balancing, AutoNUMA scans and page
	// migrations, allocator stalls.
	m := observeMachine()
	rec := trace.NewRecorder()
	m.Observe(ObserveOptions{Sink: rec})
	m.Run(4, func(th *Thread) {
		small := th.Malloc(64 << 10)
		for i := 0; i < 16; i++ {
			th.Write(small+uint64(i)*4096, 64)
		}
		base := th.Malloc(4 << 20)
		for th.Cycles() < 40_000_000 {
			for i := 0; i < 512; i++ {
				th.Write(base+uint64(i)*4096, 64)
			}
			th.Charge(500_000)
		}
		th.Free(base, 4<<20)
		th.Free(small, 64<<10)
	})

	// Scenario 2: with the THP fault path off (madvise-style) a base-page
	// carpet leaves khugepaged uniform 512-page groups to collapse.
	m2 := NewB()
	m2.Configure(DefaultConfig(1))
	m2.Mem.SetTHP(false)
	rec2 := trace.NewRecorder()
	m2.Observe(ObserveOptions{Sink: rec2})
	m2.Run(1, func(th *Thread) {
		base := th.Malloc(8 << 20)
		for i := 0; i < 2048; i++ {
			th.Write(base+uint64(i)*4096, 64)
		}
		for th.Cycles() < 10_000_000 {
			th.Charge(500_000)
		}
	})

	checks := []struct {
		rec  *trace.Recorder
		kind trace.Kind
		init trace.Initiator
	}{
		{rec, trace.PageFault, trace.InitDemand},
		{rec, trace.ThreadMigration, trace.InitOS},
		{rec, trace.AutoNUMAScan, trace.InitAutoNUMA},
		{rec, trace.PageMigration, trace.InitAutoNUMA},
		{rec, trace.AllocStall, trace.InitAlloc},
		{rec2, trace.HugeCollapse, trace.InitKhugepaged},
	}
	for _, c := range checks {
		if c.rec.CountBy(c.kind, c.init) == 0 {
			t.Errorf("no %s event with initiator %s recorded", c.kind, c.init)
		}
	}
	// No event may carry an initiator outside the declared set.
	for _, e := range append(rec.Events, rec2.Events...) {
		if e.Initiator < trace.InitDemand || e.Initiator > trace.InitAlloc {
			t.Errorf("event %s carries out-of-range initiator %d", e.Kind, e.Initiator)
		}
	}
}
