package machine

import (
	"testing"

	"repro/internal/trace"
)

// countSink is a trace sink with negligible cost, so traced benchmarks
// measure the access path's hook overhead rather than event storage.
type countSink struct{ n uint64 }

func (s *countSink) Emit(trace.Event) { s.n++ }

// benchAccessPath measures simulated accesses per host second through one
// warm 8MiB buffer on Machine B. kind selects the charging API; traced and
// profiled toggle the observation hooks the fast path hoists out of the
// inner loop.
func benchAccessPath(b *testing.B, kind string, traced, profiled bool) {
	m := NewB()
	m.Configure(testConfig(1))
	if profiled {
		m.SetProfiling(true)
	}
	if traced {
		m.SetTrace(&countSink{})
	}
	const bufBytes = 8 << 20
	const lines = bufBytes / 64
	var base uint64
	m.Run(1, func(t *Thread) {
		base = t.Malloc(bufBytes)
		t.WriteRun(base, 64, lines) // pre-fault so iterations measure the warm path
	})
	b.ResetTimer()
	m.Run(1, func(t *Thread) {
		for done := 0; done < b.N; {
			n := lines
			if b.N-done < n {
				n = b.N - done
			}
			switch kind {
			case "scalar":
				for j := 0; j < n; j++ {
					t.Read(base+uint64(j)*64, 8)
				}
			case "batched":
				t.ReadRun(base, 64, n)
			case "strided":
				// Page-strided probe: one line per 4KiB page, wrapping
				// through the buffer.
				left := n
				for left > 0 {
					c := bufBytes / 4096
					if c > left {
						c = left
					}
					t.ReadStrided(base, 8, 4096, c)
					left -= c
				}
			}
			done += n
		}
	})
}

func BenchmarkAccessPath(b *testing.B) {
	for _, kind := range []string{"scalar", "batched", "strided"} {
		for _, mode := range []struct {
			name             string
			traced, profiled bool
		}{
			{"plain", false, false},
			{"traced", true, false},
			{"profiled", false, true},
		} {
			b.Run(kind+"/"+mode.name, func(b *testing.B) {
				benchAccessPath(b, kind, mode.traced, mode.profiled)
			})
		}
	}
}

// BenchmarkAccessPathWriteRun isolates the store path (coherence directory
// updates on top of the load walk).
func BenchmarkAccessPathWriteRun(b *testing.B) {
	m := NewB()
	m.Configure(testConfig(1))
	const bufBytes = 8 << 20
	const lines = bufBytes / 64
	var base uint64
	m.Run(1, func(t *Thread) {
		base = t.Malloc(bufBytes)
		t.WriteRun(base, 64, lines)
	})
	b.ResetTimer()
	m.Run(1, func(t *Thread) {
		for done := 0; done < b.N; {
			n := lines
			if b.N-done < n {
				n = b.N - done
			}
			t.WriteRun(base, 64, n)
			done += n
		}
	})
}
