package machine

import (
	"sort"

	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vmm"
)

// runDaemons fires the kernel background mechanisms whose periods have
// elapsed on the virtual clock: AutoNUMA balancing and the THP promoter.
// Both run between thread quanta (all workload threads are parked), so
// mutating thread state here is safe.
func (m *Machine) runDaemons(threads []*Thread) {
	for m.clock >= m.nextBalance {
		m.nextBalance += m.P.AutoNUMAPeriod
		if m.cfg.AutoNUMA {
			m.autoNUMAPass(threads)
		}
	}
	for m.clock >= m.nextTHPScan {
		m.nextTHPScan += m.P.THPPeriod
		if m.cfg.THP {
			m.thpPass(threads)
		}
	}
	// The attached placement daemon (SetDaemon) runs last so it observes
	// the kernel mechanisms' effects for this boundary. daemonThreads
	// marks the open actuation window; the callback may detach the daemon,
	// which the loop condition honours.
	for m.daemon != nil && m.clock >= m.nextDaemon {
		m.nextDaemon += m.daemonPeriod
		m.daemonThreads = threads
		m.daemon(&Telemetry{m: m}, actuator{m: m})
		m.daemonThreads = nil
	}
}

// autoNUMAPass models one round of the kernel's NUMA balancing: hint-fault
// sampling stalls every running thread, pages whose last two sampled
// accesses came from the same remote thread are migrated toward it, and
// occasionally a thread itself is moved toward its dominant node.
// Migrations cost page copies and TLB shootdowns; AutoNUMA does not weigh
// those costs against the locality benefit — the paper's central criticism.
func (m *Machine) autoNUMAPass(threads []*Thread) {
	alive := 0
	for _, t := range threads {
		if !t.done {
			alive++
		}
	}
	if alive == 0 {
		return
	}
	// Every page event this pass forces (splits, migrations) is AutoNUMA's
	// doing, not the application's.
	defer m.Mem.SetInitiator(m.Mem.SetInitiator(trace.InitAutoNUMA))
	// Scan tax: the pass write-protects the ranges it scanned, so each
	// thread re-faults the hot pages it touches next and loses its
	// translations. The sampled-page set stands in for the scanned hot
	// set; the cap bounds a single pass's damage.
	hot := float64(len(m.samples))
	if hot > 4096 {
		hot = 4096
	}
	for _, t := range threads {
		if !t.done {
			t.stall(m.P.AutoNUMASampleCost + m.P.AutoNUMAHintFault*hot)
			m.profAdd(t, BucketAutoNUMAScan, m.P.AutoNUMASampleCost+m.P.AutoNUMAHintFault*hot)
			t.tlb.Flush()
		}
	}
	// Deterministic iteration order over the sample map.
	vpns := make([]uint64, 0, len(m.samples))
	for vpn := range m.samples { //rangecheck:ok keys sorted immediately below
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })

	migrated := 0
	for _, vpn := range vpns {
		if migrated >= m.P.AutoNUMAMaxMigrate {
			break
		}
		e := m.samples[vpn]
		if e.hits < 2 && !m.rng.Bernoulli(m.P.AutoNUMASharedLeak) {
			// The two-sample rule usually skips shared/cold pages, but the
			// kernel's sharing detection is imperfect: a fraction of hot
			// shared pages still migrate (and ping-pong) — the behaviour
			// the paper calls "improving locality at any cost".
			continue
		}
		addr := vpn << vmm.PageShift
		home, huge, ok := m.Mem.Locate(addr)
		if !ok || home == e.node {
			delete(m.samples, vpn)
			continue
		}
		// Huge pages must be split before they can migrate.
		if huge {
			m.Mem.SplitHuge(addr)
			m.chargeAll(threads, m.P.THPSplitCost/float64(alive), BucketTHPWork)
		}
		if m.Mem.MigratePage(addr, e.node) {
			migrated++
			// The page copy stalls the accessing thread; the shootdown
			// stalls everyone with a cached translation.
			if th := m.threadByID(threads, e.thread); th != nil && !th.done {
				th.stall(m.P.AutoNUMAPageCost)
				m.profAdd(th, BucketPageMigration, m.P.AutoNUMAPageCost)
			}
			for _, t := range threads {
				if !t.done {
					t.tlb.InvalidatePage(vpn)
					t.stall(m.P.AutoNUMAShootdown / float64(alive))
					m.profAdd(t, BucketTLBShootdown, m.P.AutoNUMAShootdown/float64(alive))
				}
			}
		}
		delete(m.samples, vpn)
	}
	if m.trace != nil {
		// One event per pass: Addr carries the pages migrated, Cost the
		// scan stall each running thread just paid.
		m.trace.Emit(trace.Event{
			Cycle:     m.clock,
			Kind:      trace.AutoNUMAScan,
			Initiator: trace.InitAutoNUMA,
			Thread:    -1,
			From:      -1,
			To:        -1,
			Addr:      uint64(migrated),
			Cost:      m.P.AutoNUMASampleCost + m.P.AutoNUMAHintFault*hot,
		})
	}

	// Task balancing: sometimes the daemon moves a whole thread toward the
	// node with the most traffic. Affinitized threads cannot be moved (the
	// balancer honours cpumasks), which is part of why pinning tames it.
	if m.cfg.Placement == PlaceNone && m.rng.Bernoulli(m.P.AutoNUMAThreadMove) {
		t := threads[m.rng.Intn(len(threads))]
		if !t.done {
			target := m.dominantNode()
			if target != t.Node() {
				per := m.Spec.CoresPerNode * m.Spec.ThreadsPerCore
				m.migrateThread(t, int(target)*per+m.rng.Intn(per), trace.InitAutoNUMA)
			}
		}
	}
}

// dominantNode returns the node with the most recent DRAM traffic.
func (m *Machine) dominantNode() topology.NodeID {
	best := 0
	for n := 1; n < len(m.dramWindow); n++ {
		if m.dramWindow[n] > m.dramWindow[best] {
			best = n
		}
	}
	return topology.NodeID(best)
}

func (m *Machine) threadByID(threads []*Thread, id int) *Thread {
	if id < 0 || id >= len(threads) {
		return nil
	}
	return threads[id]
}

func (m *Machine) chargeAll(threads []*Thread, cycles float64, b Bucket) {
	for _, t := range threads {
		if !t.done {
			t.stall(cycles)
			m.profAdd(t, b, cycles)
		}
	}
}

// thpPass models one khugepaged scan: eligible 512-page groups are
// collapsed into hugepages (up to the per-scan budget), briefly stalling
// the workload while pages are locked and copied.
func (m *Machine) thpPass(threads []*Thread) {
	alive := 0
	for _, t := range threads {
		if !t.done {
			alive++
		}
	}
	if alive == 0 {
		return
	}
	defer m.Mem.SetInitiator(m.Mem.SetInitiator(trace.InitKhugepaged))
	promoted := 0
	m.Mem.Reservations(func(r vmm.Range) {
		if promoted >= m.P.THPMaxPromote {
			return
		}
		m.Mem.HugeCandidates(r, func(base uint64) {
			if promoted >= m.P.THPMaxPromote {
				return
			}
			if m.Mem.PromoteHuge(base) {
				promoted++
				m.chargeAll(threads, m.P.THPPromoteCost/float64(alive), BucketTHPWork)
				// The collapse invalidates the 512 base translations.
				for _, t := range threads {
					if !t.done {
						t.tlb.InvalidatePage(base >> vmm.PageShift)
					}
				}
			}
		})
	})
}
