package machine

import "testing"

// pumpTo advances the machine's virtual clock and takes every due sample,
// the way the scheduler does between quanta.
func pumpTo(m *Machine, cycle float64) {
	m.clock = cycle
	m.pumpSnapshots()
}

// TestSnapshotThinningKeepsFirstStamp drives the snapshot series through
// several thinning rounds and checks the invariants the Fig 5b time series
// depends on: the first cadence tick is never dropped, stamps stay an
// arithmetic sequence at the current cadence (strictly increasing, no gap
// or overlap around a thinning round), and the series covers the whole run
// up to its cap. The pre-fix thinning kept the odd indices, which lost the
// series' very first sample on the first round.
func TestSnapshotThinningKeepsFirstStamp(t *testing.T) {
	const every = 10.0
	m := NewA()
	m.StartSnapshots(every)

	// Far enough for three thinning rounds (64 -> 32 at cadence 20, refill
	// to 64 -> 32 at 40, refill -> 32 at 80), one quantum at a time so the
	// pump sees both single-sample and multi-sample advances.
	const end = every * 64 * 8
	for c := every; c <= end; c += every {
		pumpTo(m, c)
	}

	snaps := m.Snapshots()
	if len(snaps) == 0 || len(snaps) > maxSnapshots {
		t.Fatalf("series length %d, want 1..%d", len(snaps), maxSnapshots)
	}
	if m.snapEvery <= every {
		t.Fatalf("cadence %v never doubled; the run did not thin", m.snapEvery)
	}
	if snaps[0].Cycle != every {
		t.Errorf("first stamp %v, want the first cadence tick %v", snaps[0].Cycle, every)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Cycle <= snaps[i-1].Cycle {
			t.Fatalf("stamps not strictly increasing at %d: %v after %v",
				i, snaps[i].Cycle, snaps[i-1].Cycle)
		}
		if got := snaps[i].Cycle - snaps[i-1].Cycle; got != m.snapEvery {
			t.Errorf("stamp spacing %v at %d, want the current cadence %v", got, i, m.snapEvery)
		}
	}
	// Coverage: the series reaches the end of the run (no sample is due
	// and unsampled) and the next sample is genuinely in the future.
	last := snaps[len(snaps)-1].Cycle
	if last < end-m.snapEvery {
		t.Errorf("last stamp %v leaves more than one cadence (%v) of the run uncovered (end %v)",
			last, m.snapEvery, end)
	}
	if m.nextSnap <= end {
		t.Errorf("nextSnap %v is not past the clock %v", m.nextSnap, end)
	}
}

// TestSnapshotsNotAliased pins the ownership contract of Snapshots: a
// series held by a caller must survive a snapshot restart (the pre-fix
// StartSnapshots truncated the shared backing array in place, so the next
// phase's samples clobbered the caller's copy), and mutating the returned
// slice must not write through into the machine.
func TestSnapshotsNotAliased(t *testing.T) {
	const every = 10.0
	m := NewA()
	m.StartSnapshots(every)
	pumpTo(m, 5*every)

	first := m.Snapshots()
	if len(first) != 5 {
		t.Fatalf("first series has %d samples, want 5", len(first))
	}
	saved := append([]Snapshot(nil), first...)

	// Restart and run a second phase over the shared storage's range.
	m.StartSnapshots(every)
	pumpTo(m, 12*every)

	for i := range first {
		if first[i] != saved[i] {
			t.Fatalf("caller-held series clobbered by restart at %d: %+v, want %+v",
				i, first[i], saved[i])
		}
	}
	second := m.Snapshots()
	if len(second) != 7 {
		t.Fatalf("second series has %d samples, want 7", len(second))
	}
	if second[0].Cycle != 6*every {
		t.Errorf("second series starts at %v, want %v", second[0].Cycle, 6*every)
	}

	// The returned slice is the caller's: writes must not reach the machine.
	second[0].Cycle = -1
	if got := m.Snapshots()[0].Cycle; got != 6*every {
		t.Errorf("mutating a returned series changed the machine's copy: %v", got)
	}
}
