package machine

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/topology"
	"repro/internal/trace"
)

// nodeOf maps a hardware context index to its NUMA node. Contexts are
// numbered node-major: node * coresPerNode * threadsPerCore + core *
// threadsPerCore + smt.
func (m *Machine) nodeOf(hw int) topology.NodeID {
	per := m.Spec.CoresPerNode * m.Spec.ThreadsPerCore
	return topology.NodeID(hw / per)
}

// initialHW returns thread i's starting hardware context under the
// configured placement strategy.
func (m *Machine) initialHW(i int) int {
	nodes := m.Spec.Topo.Nodes()
	per := m.Spec.CoresPerNode * m.Spec.ThreadsPerCore
	switch m.cfg.Placement {
	case PlaceSparse:
		// Round-robin across nodes first, then across contexts in a node.
		node := i % nodes
		slot := (i / nodes) % per
		return node*per + slot
	case PlaceDense:
		// Fill node 0 completely before node 1, and so on.
		return i % m.hwThreads
	default:
		// The OS initially balances across domains but without perfect
		// spreading; power-of-two-choices models its load balancer: pick
		// two random contexts, take the less loaded one.
		a := m.rng.Intn(m.hwThreads)
		b := m.rng.Intn(m.hwThreads)
		if m.hwLoad[b] < m.hwLoad[a] {
			return b
		}
		return a
	}
}

// Run executes body on n simulated threads under the active configuration
// and returns the run's result.
//
// The scheduler is a deterministic round-based loop: each round, every
// runnable thread executes one scheduling quantum, grouped by NUMA node
// (node-ascending, thread-id order within a node), and cross-thread
// effects merge at the round boundary — where the kernel daemons also
// fire on the global virtual clock. Under Run the groups themselves
// execute sequentially, so a body may share Go state across threads
// without synchronization, exactly as before; see RunParallel for the
// host-parallel variant and the contract it demands.
func (m *Machine) Run(n int, body func(t *Thread)) Result {
	return m.run(n, body, 1)
}

// RunParallel executes body exactly like Run, but different NUMA nodes'
// thread groups may execute their quanta concurrently on up to
// HostParallelism host cores. All simulated state a quantum touches is
// either private to its node group or buffered and merged in a fixed
// order at the round boundary (see lane.go), so the simulation is
// byte-identical to Run at any host parallelism and any GOMAXPROCS.
//
// The body must be parallel-safe: threads may interact only through the
// simulated memory API (Read/Write/runs, Malloc/Free, Charge), never
// through shared Go state. Bodies that share Go-side structures across
// threads — legal under Run's sequential contract — would race here.
func (m *Machine) RunParallel(n int, body func(t *Thread)) Result {
	return m.run(n, body, m.hostPar)
}

// run is the scheduler engine behind Run and RunParallel; par is the
// maximum number of node groups executed concurrently on the host.
func (m *Machine) run(n int, body func(t *Thread), par int) Result {
	if n <= 0 {
		n = m.cfg.Threads
	}
	nodes := m.Spec.Topo.Nodes()
	threads := make([]*Thread, n)
	for i := range threads {
		t := &Thread{
			m:           m,
			id:          i,
			hw:          m.initialHW(i),
			l1:          cache.New(m.Spec.L1BytesPerCore/m.Spec.LineSize, 8),
			tlb:         cache.NewTLB(m.Spec.TLB4KEntries, m.Spec.TLB2MEntries, 4),
			rng:         m.rng.Derive(uint64(i) + 1),
			dramDelta:   make([]float64, nodes),
			sampleDelta: make(map[uint64]sampleEntry),
			resume:      make(chan struct{}),
			parked:      make(chan struct{}),
		}
		t.node = m.nodeOf(t.hw)
		m.hwLoad[t.hw]++
		threads[i] = t
		go func() {
			<-t.resume
			body(t)
			t.done = true
			t.parked <- struct{}{}
		}()
	}
	m.active = n
	m.ensureLanes()
	// Grow-on-demand tables are pre-sized so no group worker ever appends
	// to shared storage mid-round.
	if m.prof != nil {
		m.prof.thread(n - 1)
	}
	if m.daemon != nil {
		m.growThreadNodeAcc(n - 1)
	}

	runnable := make([]*Thread, n)
	copy(runnable, threads)
	for len(runnable) > 0 {
		groups := m.buildGroups(runnable)
		w := par
		if w > len(groups) {
			w = len(groups)
		}
		if w <= 1 {
			for _, g := range groups {
				m.runGroup(g)
			}
		} else {
			ch := make(chan *schedGroup)
			var wg sync.WaitGroup
			wg.Add(w)
			for i := 0; i < w; i++ {
				go func() {
					defer wg.Done()
					for g := range ch {
						m.runGroup(g)
					}
				}()
			}
			for _, g := range groups {
				ch <- g
			}
			close(ch)
			wg.Wait()
		}
		// Round boundary. Publish lane effects in node order, then run the
		// serial continuations: threads that parked on a serializing
		// operation (demand fault, allocator call) finish their quantum
		// one at a time against base state, in thread-id order.
		for _, g := range groups {
			m.mergeLane(g.lane)
		}
		for _, t := range runnable {
			if !t.needSerial {
				continue
			}
			t.needSerial = false
			t.resume <- struct{}{}
			<-t.parked
			m.current = nil
			m.finishQuantum(t, t.quantumStart)
		}
		for _, t := range runnable {
			m.mergeThreadDeltas(t)
		}
		for _, t := range runnable {
			if t.wall > m.clock {
				m.clock = t.wall
			}
		}
		if m.windowTotal >= contentionWindow {
			m.refreshContention()
		}
		m.runDaemons(threads)
		m.pumpSnapshots()
		live := runnable[:0]
		for _, t := range runnable {
			if t.done {
				m.hwLoad[t.hw]--
				m.active--
				if m.prof != nil {
					m.prof.thread(t.id).wall += t.wall
				}
				continue
			}
			live = append(live, t)
		}
		runnable = live
		for _, t := range runnable {
			m.osSchedule(t)
		}
	}

	var res Result
	for _, t := range threads {
		if t.wall > res.WallCycles {
			res.WallCycles = t.wall
		}
		m.counters.ThreadMigrations += t.migrations
	}
	res.Counters = m.Counters()
	res.Alloc = m.Alloc.Stats()
	res.RSSBytes = m.Mem.MappedBytes()
	return res
}

// osSchedule applies the OS scheduler's migration behaviour to a thread
// that just finished a quantum. Only PlaceNone threads migrate; Sparse and
// Dense placements are pinned.
func (m *Machine) osSchedule(t *Thread) {
	if m.cfg.Placement != PlaceNone {
		return
	}
	if !m.rng.Bernoulli(m.migRate) {
		return
	}
	newHW := m.rng.Intn(m.hwThreads)
	if newHW == t.hw {
		return
	}
	m.migrateThread(t, newHW, trace.InitOS)
}

// migrateThread moves t to a new hardware context, invalidating its
// core-private state and charging the reschedule cost. by tags the traced
// event with the mechanism that decided the move (OS scheduler, AutoNUMA
// balancing, or the orchestrator's actuator).
func (m *Machine) migrateThread(t *Thread, newHW int, by trace.Initiator) {
	from := m.nodeOf(t.hw)
	m.hwLoad[t.hw]--
	t.hw = newHW
	t.node = m.nodeOf(newHW)
	m.hwLoad[newHW]++
	t.l1.Flush()
	t.tlb.Flush()
	t.stall(m.P.MigrationCycles)
	m.profAdd(t, BucketThreadMigration, m.P.MigrationCycles)
	t.migrations++
	if m.trace != nil {
		m.trace.Emit(trace.Event{
			Cycle:     t.cycles,
			Kind:      trace.ThreadMigration,
			Initiator: by,
			Thread:    int32(t.id),
			From:      int16(from),
			To:        int16(m.nodeOf(newHW)),
			Cost:      m.P.MigrationCycles,
		})
	}
}

// maybeYield parks the thread if its quantum is exhausted, handing control
// back to the scheduler loop.
func (t *Thread) maybeYield() {
	if t.cycles-t.sliceBase < t.m.P.Quantum {
		return
	}
	t.sliceBase = t.cycles
	t.parked <- struct{}{}
	<-t.resume
}
