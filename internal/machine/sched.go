package machine

import (
	"repro/internal/cache"
	"repro/internal/topology"
	"repro/internal/trace"
)

// nodeOf maps a hardware context index to its NUMA node. Contexts are
// numbered node-major: node * coresPerNode * threadsPerCore + core *
// threadsPerCore + smt.
func (m *Machine) nodeOf(hw int) topology.NodeID {
	per := m.Spec.CoresPerNode * m.Spec.ThreadsPerCore
	return topology.NodeID(hw / per)
}

// initialHW returns thread i's starting hardware context under the
// configured placement strategy.
func (m *Machine) initialHW(i int) int {
	nodes := m.Spec.Topo.Nodes()
	per := m.Spec.CoresPerNode * m.Spec.ThreadsPerCore
	switch m.cfg.Placement {
	case PlaceSparse:
		// Round-robin across nodes first, then across contexts in a node.
		node := i % nodes
		slot := (i / nodes) % per
		return node*per + slot
	case PlaceDense:
		// Fill node 0 completely before node 1, and so on.
		return i % m.hwThreads
	default:
		// The OS initially balances across domains but without perfect
		// spreading; power-of-two-choices models its load balancer: pick
		// two random contexts, take the less loaded one.
		a := m.rng.Intn(m.hwThreads)
		b := m.rng.Intn(m.hwThreads)
		if m.hwLoad[b] < m.hwLoad[a] {
			return b
		}
		return a
	}
}

// Run executes body on n simulated threads under the active configuration
// and returns the run's result. The scheduler is a deterministic
// least-wall-time-first cooperative loop: exactly one thread executes at a
// time; kernel daemons fire on the global virtual clock between quanta.
func (m *Machine) Run(n int, body func(t *Thread)) Result {
	if n <= 0 {
		n = m.cfg.Threads
	}
	threads := make([]*Thread, n)
	for i := range threads {
		t := &Thread{
			m:      m,
			id:     i,
			hw:     m.initialHW(i),
			l1:     cache.New(m.Spec.L1BytesPerCore/m.Spec.LineSize, 8),
			tlb:    cache.NewTLB(m.Spec.TLB4KEntries, m.Spec.TLB2MEntries, 4),
			rng:    m.rng.Derive(uint64(i) + 1),
			resume: make(chan struct{}),
			parked: make(chan struct{}),
		}
		t.node = m.nodeOf(t.hw)
		m.hwLoad[t.hw]++
		threads[i] = t
		go func() {
			<-t.resume
			body(t)
			t.done = true
			t.parked <- struct{}{}
		}()
	}
	m.active = n

	runnable := make([]*Thread, n)
	copy(runnable, threads)
	for len(runnable) > 0 {
		// Pick the thread with the smallest wall time: deterministic and a
		// decent stand-in for fair scheduling.
		best := 0
		for i, t := range runnable {
			if t.wall < runnable[best].wall {
				best = i
			}
		}
		t := runnable[best]
		start := t.cycles
		t.resume <- struct{}{}
		<-t.parked
		// Oversubscribed contexts time-share: wall time inflates by the
		// context's load, and each switch re-pollutes the private caches.
		load := m.hwLoad[t.hw]
		if load < 1 {
			load = 1
		}
		t.wall += (t.cycles - start) * float64(load)
		if m.prof != nil && load > 1 {
			// The quantum's charges were attributed at their sources; the
			// inflation beyond them is time spent descheduled.
			m.prof.add(t.id, m.nodeOf(t.hw), BucketTimeshare,
				(t.cycles-start)*float64(load-1))
		}
		if load > 1 {
			t.l1.Flush()
			t.tlb.Flush()
		}
		if t.wall > m.clock {
			m.clock = t.wall
		}
		m.runDaemons(threads)
		m.pumpSnapshots()
		if t.done {
			m.hwLoad[t.hw]--
			m.active--
			if m.prof != nil {
				m.prof.thread(t.id).wall += t.wall
			}
			runnable = append(runnable[:best], runnable[best+1:]...)
			continue
		}
		m.osSchedule(t)
	}

	var res Result
	for _, t := range threads {
		if t.wall > res.WallCycles {
			res.WallCycles = t.wall
		}
		m.counters.ThreadMigrations += t.migrations
	}
	res.Counters = m.Counters()
	res.Alloc = m.Alloc.Stats()
	res.RSSBytes = m.Mem.MappedBytes()
	return res
}

// osSchedule applies the OS scheduler's migration behaviour to a thread
// that just finished a quantum. Only PlaceNone threads migrate; Sparse and
// Dense placements are pinned.
func (m *Machine) osSchedule(t *Thread) {
	if m.cfg.Placement != PlaceNone {
		return
	}
	if !m.rng.Bernoulli(m.migRate) {
		return
	}
	newHW := m.rng.Intn(m.hwThreads)
	if newHW == t.hw {
		return
	}
	m.migrateThread(t, newHW, trace.InitOS)
}

// migrateThread moves t to a new hardware context, invalidating its
// core-private state and charging the reschedule cost. by tags the traced
// event with the mechanism that decided the move (OS scheduler, AutoNUMA
// balancing, or the orchestrator's actuator).
func (m *Machine) migrateThread(t *Thread, newHW int, by trace.Initiator) {
	from := m.nodeOf(t.hw)
	m.hwLoad[t.hw]--
	t.hw = newHW
	t.node = m.nodeOf(newHW)
	m.hwLoad[newHW]++
	t.l1.Flush()
	t.tlb.Flush()
	t.stall(m.P.MigrationCycles)
	m.profAdd(t, BucketThreadMigration, m.P.MigrationCycles)
	t.migrations++
	if m.trace != nil {
		m.trace.Emit(trace.Event{
			Cycle:     t.cycles,
			Kind:      trace.ThreadMigration,
			Initiator: by,
			Thread:    int32(t.id),
			From:      int16(from),
			To:        int16(m.nodeOf(newHW)),
			Cost:      m.P.MigrationCycles,
		})
	}
}

// maybeYield parks the thread if its quantum is exhausted, handing control
// back to the scheduler loop.
func (t *Thread) maybeYield() {
	if t.cycles-t.sliceBase < t.m.P.Quantum {
		return
	}
	t.sliceBase = t.cycles
	t.parked <- struct{}{}
	<-t.resume
}
