package machine

import (
	"repro/internal/topology"
)

// Spec is the hardware description of a simulated machine, mirroring
// Table II of the paper. Presets A, B and C reproduce the three evaluation
// machines; custom specs can model other boxes.
type Spec struct {
	Name           string
	Topo           *topology.Topology
	CoresPerNode   int
	ThreadsPerCore int // SMT contexts per core
	FreqGHz        float64

	// Cache geometry (per the paper's Table II; sizes in bytes).
	LLCBytesPerNode int
	L1BytesPerCore  int
	LineSize        int

	// TLB geometry: total 4KiB entries (L1+L2) and 2MiB entries per core.
	TLB4KEntries int
	TLB2MEntries int

	// Memory.
	MemPerNodeBytes uint64
	MemClockMHz     int

	Params Params
}

// HardwareThreads returns the machine's total hardware thread count.
func (s Spec) HardwareThreads() int {
	return s.Topo.Nodes() * s.CoresPerNode * s.ThreadsPerCore
}

// Cores returns the machine's total core count.
func (s Spec) Cores() int { return s.Topo.Nodes() * s.CoresPerNode }

// SpecA returns Machine A: 8x AMD Opteron 8220 (2 cores each, no SMT) in a
// twisted-ladder topology with small 2MiB LLCs, slow 800MHz memory and a
// 2GT/s interconnect. 16 hardware threads.
func SpecA() Spec {
	return Spec{
		Name:            "Machine A",
		Topo:            topology.MachineA(),
		CoresPerNode:    2,
		ThreadsPerCore:  1,
		FreqGHz:         2.8,
		LLCBytesPerNode: 2 << 20,
		L1BytesPerCore:  64 << 10,
		LineSize:        64,
		TLB4KEntries:    32 + 512,
		TLB2MEntries:    8,
		MemPerNodeBytes: 16 << 30,
		MemClockMHz:     800,
		Params:          paramsFor(2.8, 800, 2.0),
	}
}

// SpecB returns Machine B: 4x Intel Xeon E7520 (4 cores x 2 SMT each),
// fully connected with near-uniform latencies (1.1x remote). 32 hardware
// threads.
func SpecB() Spec {
	return Spec{
		Name:            "Machine B",
		Topo:            topology.MachineB(),
		CoresPerNode:    4,
		ThreadsPerCore:  2,
		FreqGHz:         2.1,
		LLCBytesPerNode: 18 << 20,
		L1BytesPerCore:  64 << 10,
		LineSize:        64,
		TLB4KEntries:    64 + 512,
		TLB2MEntries:    32,
		MemPerNodeBytes: 16 << 30,
		MemClockMHz:     1600,
		Params:          paramsFor(2.1, 1600, 4.8),
	}
}

// SpecC returns Machine C: 4x Intel Xeon E7-4850 v4 (8 cores x 2 SMT each),
// fully connected but with expensive remote access (2.1x) and large 40MiB
// LLCs. 64 hardware threads.
func SpecC() Spec {
	return Spec{
		Name:            "Machine C",
		Topo:            topology.MachineC(),
		CoresPerNode:    8,
		ThreadsPerCore:  2,
		FreqGHz:         2.1,
		LLCBytesPerNode: 40 << 20,
		L1BytesPerCore:  64 << 10,
		LineSize:        64,
		TLB4KEntries:    64 + 1536,
		TLB2MEntries:    32 + 1536,
		MemPerNodeBytes: 768 << 30,
		MemClockMHz:     2400,
		Params:          paramsFor(2.1, 2400, 8.0),
	}
}

// SpecD returns Machine D: a modern two-socket chiplet box — 8 sub-NUMA
// nodes of 8 cores x 2 SMT, large 32MiB LLC slices, DDR4-3200 and a 16GT/s
// package interconnect. 128 hardware threads. Not a paper machine; it
// extends the study to chiplet-era topologies (see topology.MachineD).
func SpecD() Spec {
	return Spec{
		Name:            "Machine D",
		Topo:            topology.MachineD(),
		CoresPerNode:    8,
		ThreadsPerCore:  2,
		FreqGHz:         2.45,
		LLCBytesPerNode: 32 << 20,
		L1BytesPerCore:  32 << 10,
		LineSize:        64,
		TLB4KEntries:    64 + 2048,
		TLB2MEntries:    64 + 2048,
		MemPerNodeBytes: 128 << 30,
		MemClockMHz:     3200,
		Params:          paramsFor(2.45, 3200, 16.0),
	}
}

// SpecE returns Machine E: a 16-node 4x4 grid mesh of small 4-core x 2 SMT
// tiles with 8MiB LLC slices — the many-domain regime where hop distance
// spans 0..6 and placement decisions dominate. 128 hardware threads. Not a
// paper machine (see topology.MachineE).
func SpecE() Spec {
	return Spec{
		Name:            "Machine E",
		Topo:            topology.MachineE(),
		CoresPerNode:    4,
		ThreadsPerCore:  2,
		FreqGHz:         2.2,
		LLCBytesPerNode: 8 << 20,
		L1BytesPerCore:  48 << 10,
		LineSize:        64,
		TLB4KEntries:    64 + 1024,
		TLB2MEntries:    32 + 1024,
		MemPerNodeBytes: 64 << 30,
		MemClockMHz:     2933,
		Params:          paramsFor(2.2, 2933, 25.0),
	}
}

// paramsFor derives machine-specific cost parameters from the CPU
// frequency, memory clock and interconnect bandwidth: DRAM latency in
// cycles scales with the CPU:memory clock ratio, and contention
// coefficients scale inversely with interconnect bandwidth.
func paramsFor(freqGHz float64, memClockMHz int, linkGTs float64) Params {
	p := DefaultParams()
	// A 2.4GHz-class core over DDR-1600 sees roughly 200 cycles to DRAM;
	// scale by clock ratio so Machine A's 800MHz memory hurts more.
	p.DRAMCycles = 200 * (freqGHz * 1000 / 2.1) / float64(memClockMHz) * (1600.0 / 1000)
	// Slower memory clocks queue sooner at the controller; the link factor
	// is folded into the pressure normalization (machine.refreshContention)
	// via the topology's GT/s rating.
	_ = linkGTs
	p.ControllerCoeff = 0.9 * 1600 / float64(memClockMHz)
	// How many concurrent access streams a controller absorbs before
	// queueing: DDR2-800 (Machine A) saturates on roughly one stream,
	// DDR3-1600 on two, DDR4-2400 on three.
	p.ControllerFree = float64(memClockMHz) / 800
	if p.ControllerFree < 1 {
		p.ControllerFree = 1
	}
	return p
}

// Specs returns the three paper machines in order.
func Specs() []Spec { return []Spec{SpecA(), SpecB(), SpecC()} }

// AllSpecs returns the paper machines plus the large-topology extensions
// D (8-node chiplet) and E (16-node grid mesh).
func AllSpecs() []Spec { return []Spec{SpecA(), SpecB(), SpecC(), SpecD(), SpecE()} }
