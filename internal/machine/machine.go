// Package machine is the NUMA hardware simulator: it composes a topology,
// simulated virtual memory, per-node last-level caches, per-thread L1
// caches and TLBs, a cooperative deterministic thread scheduler with OS
// migration behaviour, the kernel daemons the paper studies (AutoNUMA load
// balancing and Transparent Hugepages), and a pluggable memory allocator
// model.
//
// Workloads run as bodies over simulated Threads; every memory access walks
// the TLB -> L1 -> LLC -> DRAM path and is charged cycles that reflect the
// machine's NUMA latencies and the current memory-controller and
// interconnect contention. A Run returns wall cycles (the slowest thread's
// wall time) and the perf-counter profile the paper reports.
package machine

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/alloc"
	"repro/internal/cache"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vmm"
	"repro/internal/xrand"
)

// Placement is the thread placement strategy of Table IV.
type Placement int

const (
	// PlaceNone leaves threads to the OS scheduler, which migrates them.
	PlaceNone Placement = iota
	// PlaceSparse spreads threads across NUMA nodes first (maximizing
	// memory bandwidth), then across cores within a node.
	PlaceSparse
	// PlaceDense packs threads onto as few nodes as possible.
	PlaceDense
)

// String returns the paper's name for the strategy.
func (p Placement) String() string {
	switch p {
	case PlaceNone:
		return "None"
	case PlaceSparse:
		return "Sparse"
	case PlaceDense:
		return "Dense"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// RunConfig selects one point of the paper's parameter space (Table IV).
type RunConfig struct {
	Threads       int
	Placement     Placement
	Policy        vmm.Policy
	PreferredNode topology.NodeID
	Allocator     string // allocator name; "" means ptmalloc (system default)
	AutoNUMA      bool
	THP           bool
	Seed          uint64
}

// DefaultConfig returns the out-of-the-box OS configuration the paper
// measures against: OS-scheduled threads, First Touch placement, ptmalloc,
// AutoNUMA and THP enabled.
func DefaultConfig(threads int) RunConfig {
	return RunConfig{
		Threads:   threads,
		Placement: PlaceNone,
		Policy:    vmm.FirstTouch,
		Allocator: "ptmalloc",
		AutoNUMA:  true,
		THP:       true,
		Seed:      1,
	}
}

// TunedConfig returns the paper's recommended configuration (Figure 10):
// Sparse affinity, Interleave placement, AutoNUMA and THP off, tbbmalloc.
func TunedConfig(threads int) RunConfig {
	return RunConfig{
		Threads:   threads,
		Placement: PlaceSparse,
		Policy:    vmm.Interleave,
		Allocator: "tbbmalloc",
		AutoNUMA:  false,
		THP:       false,
		Seed:      1,
	}
}

// Counters is the simulated perf-counter profile of a run (Table III).
// The json tags define the field names used by the structured results
// records (see the experiments package's JSONL schema).
type Counters struct {
	ThreadMigrations uint64 `json:"thread_migrations"`
	CacheAccesses    uint64 `json:"cache_accesses"` // LLC lookups
	CacheMisses      uint64 `json:"cache_misses"`   // LLC misses
	TLBMisses        uint64 `json:"tlb_misses"`
	LocalAccesses    uint64 `json:"local_accesses"` // DRAM accesses served locally
	RemoteAccesses   uint64 `json:"remote_accesses"`
	MinorFaults      uint64 `json:"minor_faults"`
	PageMigrations   uint64 `json:"page_migrations"`
	HugePromotions   uint64 `json:"huge_promotions"`
	HugeSplits       uint64 `json:"huge_splits"`
}

// LAR returns the local access ratio: local / (local + remote).
func (c Counters) LAR() float64 {
	total := c.LocalAccesses + c.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(c.LocalAccesses) / float64(total)
}

// Result reports a completed Run.
type Result struct {
	WallCycles float64 // slowest thread's wall time
	Counters   Counters
	Alloc      alloc.Stats
	RSSBytes   uint64 // simulated resident set at the end of the run
}

// Seconds converts wall cycles to seconds at the machine's clock.
func (m *Machine) Seconds(cycles float64) float64 {
	return cycles / (m.Spec.FreqGHz * 1e9)
}

// Machine is one simulated NUMA system. Create with New, configure with
// Configure, and execute workload phases with Run. A Machine's memory and
// caches persist across Runs so multi-phase workloads (build then probe)
// keep their state; use ResetCounters between phases to scope profiles.
type Machine struct {
	Spec  Spec
	P     Params
	Mem   *vmm.Memory
	Alloc alloc.Allocator

	cfg RunConfig
	rng *xrand.Rand

	// Line geometry, precomputed from Spec.LineSize (a power of two) so the
	// access path shifts instead of dividing.
	lineSize  uint64
	lineShift uint

	llc []*cache.Cache

	hwThreads int
	hwLoad    []int

	// Contention state, recomputed on a window of DRAM accesses.
	dramWindow  []float64
	windowTotal float64
	remoteWin   float64
	nodeMult    []float64
	linkMult    float64

	// writerDir is a compact last-writer directory for cache lines: a
	// direct-mapped table of (line-tag-check | writer node) entries used
	// to charge cache-to-cache transfers when a thread touches a line
	// another node wrote (false/true sharing through shared allocators
	// and tables).
	writerDir []uint32

	// Access samples feeding the AutoNUMA daemon: vpn -> last accessor.
	samples     map[uint64]sampleEntry
	clock       float64
	nextBalance float64
	nextTHPScan float64

	active  int // threads still running
	current *Thread

	// Round-based scheduler state (see lane.go): per-node effect lanes,
	// the reusable group shells, and the host-core budget RunParallel may
	// spend on concurrent node groups.
	lanes     []*lane
	groupPool []*schedGroup
	groups    []*schedGroup
	hostPar   int

	counters Counters
	migRate  float64 // per-scheduling-event migration probability (PlaceNone)

	// Observability: the event sink (nil when tracing is off), the
	// periodic counter-snapshot series, and the span-collection marker
	// harnesses read via SpansEnabled; see trace.go and observe.go.
	trace     trace.Sink
	snapEvery float64
	nextSnap  float64
	snaps     []Snapshot
	spans     bool

	// Cycle attribution (nil when profiling is off); see profile.go.
	// pendingLockWait accumulates lock-contention waits reported by the
	// allocator hook during one Malloc/Free, so the caller can split the
	// returned cost into stall and work.
	prof            *profiler
	pendingLockWait float64

	// Placement daemon (nil when detached); see observe.go. daemonThreads
	// is the parked thread set during a daemon window (nil outside one,
	// which is how the Actuator enforces its scope); threadNodeAcc is the
	// per-thread x per-node DRAM access table Telemetry exposes, grown on
	// demand and accumulated only while a daemon is attached.
	daemon        func(*Telemetry, Actuator)
	daemonPeriod  float64
	nextDaemon    float64
	daemonThreads []*Thread
	threadNodeAcc [][]uint64
}

type sampleEntry struct {
	thread int
	node   topology.NodeID
	hits   int // consecutive samples by the same thread
}

// New builds a machine from a spec with the default configuration attached.
func New(spec Spec) *Machine {
	m := &Machine{
		Spec:      spec,
		P:         spec.Params,
		Mem:       vmm.New(spec.Topo, spec.MemPerNodeBytes),
		hwThreads: spec.HardwareThreads(),
	}
	if spec.LineSize <= 0 || spec.LineSize&(spec.LineSize-1) != 0 {
		panic(fmt.Sprintf("machine: LineSize %d is not a power of two", spec.LineSize))
	}
	m.lineSize = uint64(spec.LineSize)
	m.lineShift = uint(bits.TrailingZeros64(m.lineSize))
	m.llc = make([]*cache.Cache, spec.Topo.Nodes())
	for i := range m.llc {
		m.llc[i] = cache.New(spec.LLCBytesPerNode/spec.LineSize, 16)
	}
	m.hwLoad = make([]int, m.hwThreads)
	m.dramWindow = make([]float64, spec.Topo.Nodes())
	m.nodeMult = make([]float64, spec.Topo.Nodes())
	for i := range m.nodeMult {
		m.nodeMult[i] = 1
	}
	m.linkMult = 1
	m.writerDir = make([]uint32, 1<<16)
	m.samples = make(map[uint64]sampleEntry)
	m.hostPar = defaultHostParallelism
	m.Configure(DefaultConfig(spec.HardwareThreads()))
	return m
}

// defaultHostParallelism seeds every new Machine's host-core budget for
// RunParallel; CLIs set it once from -machine-parallel before building any
// machines.
var defaultHostParallelism = 1

// SetDefaultHostParallelism sets the host parallelism newly built Machines
// start with (the -machine-parallel flag). It must be called before the
// machines it should affect are built; values below 1 clamp to 1 (serial).
func SetDefaultHostParallelism(n int) {
	if n < 1 {
		n = 1
	}
	defaultHostParallelism = n
}

// SetHostParallelism sets this machine's host-core budget for RunParallel.
// Simulated results are byte-identical at any value; only host wall time
// changes. Values below 1 clamp to 1.
func (m *Machine) SetHostParallelism(n int) {
	if n < 1 {
		n = 1
	}
	m.hostPar = n
}

// HostParallelism returns the machine's host-core budget for RunParallel.
func (m *Machine) HostParallelism() int { return m.hostPar }

// NewA, NewB and NewC build the three paper machines.
func NewA() *Machine { return New(SpecA()) }

// NewB builds Machine B; see SpecB.
func NewB() *Machine { return New(SpecB()) }

// NewC builds Machine C; see SpecC.
func NewC() *Machine { return New(SpecC()) }

// NewD builds the chiplet extension Machine D; see SpecD.
func NewD() *Machine { return New(SpecD()) }

// NewE builds the grid-mesh extension Machine E; see SpecE.
func NewE() *Machine { return New(SpecE()) }

// Configure applies a run configuration: placement policy, allocator,
// kernel switches. Call before Run; reconfiguring between phases keeps
// memory contents but switches behaviour (as remounting OS knobs would).
func (m *Machine) Configure(cfg RunConfig) {
	if cfg.Threads <= 0 {
		cfg.Threads = m.hwThreads
	}
	if cfg.Allocator == "" {
		cfg.Allocator = "ptmalloc"
	}
	m.cfg = cfg
	m.rng = xrand.New(cfg.Seed)
	m.Mem.SetPolicy(cfg.Policy, cfg.PreferredNode)
	m.Mem.SetTHP(cfg.THP)
	m.Alloc = alloc.New(cfg.Allocator)
	m.Alloc.Attach(m, cfg.Threads)
	m.wireAllocHooks()
	m.nextBalance = m.clock + m.P.AutoNUMAPeriod
	m.nextTHPScan = m.clock + m.P.THPPeriod
	if m.daemon != nil {
		m.nextDaemon = m.clock + m.daemonPeriod
	}
	// The OS scheduler's appetite for migration varies run to run; sample
	// it log-uniformly from the configured range (Figure 3's variance).
	lo, hi := m.P.MigrateRateMin, m.P.MigrateRateMax
	u := m.rng.Float64()
	m.migRate = lo * math.Pow(hi/lo, u)
}

// Config returns the active run configuration.
func (m *Machine) Config() RunConfig { return m.cfg }

// Counters returns the profile accumulated since the last reset.
func (m *Machine) Counters() Counters {
	c := m.counters
	c.MinorFaults = m.Mem.MinorFaults
	c.PageMigrations = m.Mem.Migrations
	c.HugePromotions = m.Mem.Promotions
	c.HugeSplits = m.Mem.Splits
	return c
}

// ResetCounters zeroes the profile (between workload phases). When cycle
// attribution is on it is rescoped too, so counters, buckets and the node
// access matrix always describe the same phase.
func (m *Machine) ResetCounters() {
	m.counters = Counters{}
	m.Mem.MinorFaults = 0
	m.Mem.Migrations = 0
	m.Mem.Promotions = 0
	m.Mem.Splits = 0
	m.ResetProfile()
}

// Env implementation for the allocator models.

// Reserve implements alloc.Env.
func (m *Machine) Reserve(bytes uint64, owner topology.NodeID) vmm.Range {
	return m.Mem.Reserve(bytes, owner)
}

// UnmapRange implements alloc.Env; hugepage splits triggered by the unmap
// are charged to the thread whose allocator call caused them. With THP
// enabled, every page return additionally pays the kernel's THP
// bookkeeping (mapcount accounting, deferred-split queue) — the churn that
// makes page-returning allocators and THP a bad pairing (Figure 5c).
func (m *Machine) UnmapRange(base, bytes uint64) {
	before := m.Mem.Splits
	m.Mem.UnmapRange(base, bytes)
	if m.current == nil {
		return
	}
	if d := m.Mem.Splits - before; d > 0 {
		m.current.cycles += float64(d) * m.P.THPSplitCost
		m.profAdd(m.current, BucketTHPWork, float64(d)*m.P.THPSplitCost)
	}
	if m.cfg.THP {
		// The zone lock and deferred-split queue serialize concurrent
		// purgers, so the churn convoys with the active thread count.
		active := float64(m.active)
		if active < 1 {
			active = 1
		}
		m.current.cycles += m.P.THPChurnCycles * active
		m.profAdd(m.current, BucketTHPWork, m.P.THPChurnCycles*active)
	}
}

// Touch implements alloc.Env: eager page commitment.
func (m *Machine) Touch(base, bytes uint64, owner topology.NodeID) {
	end := base + bytes
	for a := base &^ uint64(vmm.PageSize-1); a < end; a += vmm.PageSize {
		m.Mem.Fault(a, owner)
	}
}

// Nodes implements alloc.Env.
func (m *Machine) Nodes() int { return m.Spec.Topo.Nodes() }

// coherencePenalty charges a cache-to-cache transfer when lineTag is dirty
// on another node. A read downgrades the line to shared (entry cleared); a
// write takes ownership. During a round's concurrent phase the directory
// is read and written through the thread's lane overlay (see lane.go), so
// cross-node ownership changes become visible at round granularity.
func (m *Machine) coherencePenalty(t *Thread, lineTag uint64, write bool) float64 {
	idx := lineTag & uint64(len(m.writerDir)-1)
	ln := t.lane
	var e uint32
	if ln != nil {
		e = ln.dirRead(m, idx)
	} else {
		e = m.writerDir[idx]
	}
	cost := 0.0
	if e != 0 && e>>8 == uint32(lineTag>>16) {
		owner := topology.NodeID(e&0xff) - 1
		if owner != t.node {
			cost = m.P.CoherenceCycles
			// Downgraded out of the owner's cache.
			if ln != nil {
				ln.dirWrite(idx, 0)
			} else {
				m.writerDir[idx] = 0
			}
			if m.trace != nil {
				ev := trace.Event{
					Cycle:  t.cycles,
					Kind:   trace.Coherence,
					Thread: int32(t.id),
					From:   int16(owner),
					To:     int16(t.node),
					Addr:   lineTag * uint64(m.Spec.LineSize),
					Cost:   cost,
				}
				if ln != nil {
					ln.events = append(ln.events, ev)
				} else {
					m.trace.Emit(ev)
				}
			}
		}
	}
	if write {
		t.noteWriter(lineTag)
	}
	return cost
}

// contentionWindow is the DRAM access count that triggers a contention
// refresh, checked at round boundaries once the threads' window deltas
// have merged.
const contentionWindow = 8192

// noteDRAM records a DRAM access for contention modelling and AutoNUMA
// sampling. Everything accumulates thread-locally (merged at the round
// boundary); only the daemon's pre-sized access table is written in
// place, on this thread's exclusive row.
func (m *Machine) noteDRAM(home topology.NodeID, t *Thread) {
	t.dramDelta[home]++
	t.winDelta++
	if home != t.node {
		t.remoteDelta++
	}
	t.sampleTick++
	if (m.cfg.AutoNUMA || m.daemon != nil) && t.sampleTick%16 == 0 {
		vpn := t.lastVPN
		e, ok := t.sampleDelta[vpn]
		if !ok {
			e = m.samples[vpn]
		}
		if e.thread == t.id {
			e.hits++
		} else {
			e = sampleEntry{thread: t.id, hits: 1}
		}
		e.node = t.node
		t.sampleDelta[vpn] = e
	}
	if m.daemon != nil {
		m.noteThreadNode(t.id, home)
	}
}

// refreshContention recomputes the controller and link multipliers from
// the access window. Pressure on a node is active threads times that
// node's share of DRAM traffic; a controller absorbs ControllerFree
// concurrent streams, beyond which queueing grows with the square root of
// the excess (memory controllers pipeline heavily, so saturation is
// sublinear), capped at 8x.
func (m *Machine) refreshContention() {
	active := float64(m.active)
	if active < 1 {
		active = 1
	}
	for n := range m.dramWindow {
		share := m.dramWindow[n] / m.windowTotal
		ratio := active * share / m.P.ControllerFree
		if ratio > 1 {
			mult := 1 + m.P.ControllerCoeff*(math.Sqrt(ratio)-1)
			if mult > 8 {
				mult = 8
			}
			m.nodeMult[n] = mult
		} else {
			m.nodeMult[n] = 1
		}
		m.dramWindow[n] /= 2 // exponential decay for smoothness
	}
	// Interconnect sharing: remote traffic rate normalized by the link
	// bandwidth (4.8 GT/s reference); the fabric absorbs a few concurrent
	// remote streams before queueing.
	remoteShare := m.remoteWin / m.windowTotal
	linkPressure := remoteShare * active * (4.8 / m.Spec.Topo.LinkBandwidthGTs())
	if linkPressure > 8 {
		m.linkMult = 1 + m.P.LinkCoeff*math.Log2(linkPressure/8)
	} else {
		m.linkMult = 1
	}
	m.windowTotal /= 2
	m.remoteWin /= 2
}
