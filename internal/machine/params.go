package machine

// Params holds every tunable coefficient of the simulator's cost model.
// Centralizing them here keeps calibration auditable: the experiment shapes
// in EXPERIMENTS.md are produced by exactly these numbers, and tests assert
// shapes rather than constants.
//
// All costs are in CPU cycles unless noted.
type Params struct {
	// CPU access costs.
	L1HitCycles  float64 // L1 data cache hit
	LLCHitCycles float64 // last-level cache hit
	DRAMCycles   float64 // row access on the local node, uncontended

	// TLB costs.
	WalkCycles     float64 // page-table walk after a 4KiB TLB miss
	WalkHugeCycles float64 // walk after a 2MiB TLB miss (one level shorter)

	// Paging costs.
	MinorFaultCycles float64 // demand-zero fault service

	// Scheduler costs.
	MigrationCycles float64 // context move: scheduler work + pipeline refill

	// Coherence: cost of fetching a line that is dirty in another node's
	// cache (remote cache-to-cache transfer + invalidation).
	CoherenceCycles float64

	// Contention model. Memory-controller pressure on a node is
	// activeThreads x (share of recent DRAM traffic hitting that node).
	// Pressure above ControllerFree queues accesses linearly.
	ControllerCoeff float64 // latency growth per unit of excess pressure
	ControllerFree  float64 // pressure absorbed without queueing
	// Interconnect: remote accesses additionally pay for link sharing,
	// scaled by the topology's link bandwidth (GT/s).
	LinkCoeff float64

	// AutoNUMA daemon.
	AutoNUMAPeriod     float64 // cycles between balancing passes
	AutoNUMASampleCost float64 // per-thread stall per pass (hint faults)
	AutoNUMAPageCost   float64 // cost of one page migration
	AutoNUMAMaxMigrate int     // pages migrated per pass
	AutoNUMAThreadMove float64 // probability of a thread move per pass
	AutoNUMAShootdown  float64 // TLB shootdown cost charged per migration
	AutoNUMASharedLeak float64 // chance a shared page slips past the two-sample rule
	AutoNUMAHintFault  float64 // minor-fault cost of tripping a sampling hint

	// THP daemon (khugepaged).
	THPPeriod      float64 // cycles between promotion scans
	THPPromoteCost float64 // cost of merging one 512-page group
	THPSplitCost   float64 // cost of splitting a huge page
	THPMaxPromote  int     // promotions per scan
	THPFaultCycles float64 // extra zeroing cost when faulting inside a promoted region
	THPChurnCycles float64 // kernel THP bookkeeping per page an allocator returns

	// Scheduling quantum for the cooperative round-robin (cycles).
	Quantum float64

	// OS scheduler (no affinity): per-run migration rate is sampled
	// log-uniformly from [MigrateRateMin, MigrateRateMax] per scheduling
	// event, reproducing the run-to-run variance of Figure 3.
	MigrateRateMin float64
	MigrateRateMax float64
}

// DefaultParams returns the calibrated coefficient set used by all
// experiments. See DESIGN.md section 4 for the model equations.
func DefaultParams() Params {
	return Params{
		L1HitCycles:  4,
		LLCHitCycles: 40,
		DRAMCycles:   200,

		WalkCycles:     90,
		WalkHugeCycles: 45,

		MinorFaultCycles: 1800,

		MigrationCycles: 12000,

		CoherenceCycles: 130,

		ControllerCoeff: 0.9,
		ControllerFree:  2.0,
		LinkCoeff:       0.25,

		AutoNUMAPeriod:     12_000_000,
		AutoNUMASampleCost: 20000,
		AutoNUMAPageCost:   30000,
		AutoNUMAMaxMigrate: 192,
		AutoNUMAThreadMove: 0.05,
		AutoNUMAShootdown:  1200,
		AutoNUMASharedLeak: 0.12,
		AutoNUMAHintFault:  1800,

		THPPeriod:      2_000_000,
		THPPromoteCost: 30000,
		THPSplitCost:   9000,
		THPMaxPromote:  64,
		THPFaultCycles: 350,
		THPChurnCycles: 2500,

		Quantum: 200_000,

		MigrateRateMin: 0.0005,
		MigrateRateMax: 0.9,
	}
}
