package machine

import "repro/internal/trace"

// Snapshot is one periodic sample of the counter profile, stamped with the
// virtual cycle it was due at. A series of snapshots turns end-of-run
// totals into time series (LAR over time, fault and migration bursts) —
// the raw material for Figure 5b-style plots.
type Snapshot struct {
	Cycle    float64  `json:"cycle"`
	Counters Counters `json:"counters"`
}

// SetTrace attaches an event sink to the machine and every layer under it
// (vmm placement events, allocator lock stalls). Pass nil to detach. With
// no sink attached every hook reduces to one pointer compare, so untraced
// runs pay nothing.
//
// Deprecated: use Observe with ObserveOptions.Trace/Sink, which composes
// all the instruments in one call. SetTrace remains as a thin wrapper.
func (m *Machine) SetTrace(s trace.Sink) {
	m.trace = s
	if s == nil {
		m.Mem.SetTrace(nil, nil)
	} else {
		m.Mem.SetTrace(s, m.traceNow)
	}
	m.wireAllocHooks()
}

// Trace returns the attached event sink, nil when tracing is off.
func (m *Machine) Trace() trace.Sink { return m.trace }

// traceNow supplies the virtual timestamp and acting thread for an event:
// the running thread's cycle account during a quantum, the machine's
// global clock (thread -1) for daemon work between quanta.
func (m *Machine) traceNow() (cycle float64, thread int32) {
	if t := m.current; t != nil {
		return t.cycles, int32(t.id)
	}
	return m.clock, -1
}

// wireAllocHooks re-installs the allocator lock-wait hook, which serves
// both the event trace and the cycle-attribution profiler; called whenever
// the sink, the profiler or the allocator changes (Configure rebuilds the
// allocator).
func (m *Machine) wireAllocHooks() {
	if m.Alloc == nil {
		return
	}
	h, ok := m.Alloc.(interface{ SetLockWaitHook(func(w float64)) })
	if !ok {
		return
	}
	if m.trace == nil && m.prof == nil {
		h.SetLockWaitHook(nil)
		return
	}
	h.SetLockWaitHook(func(w float64) {
		if m.prof != nil {
			m.pendingLockWait += w
		}
		if m.trace == nil {
			return
		}
		cyc, th := m.traceNow()
		m.trace.Emit(trace.Event{
			Cycle:     cyc,
			Kind:      trace.AllocStall,
			Initiator: trace.InitAlloc,
			Thread:    th,
			From:      -1,
			To:        -1,
			Cost:      w,
		})
	})
}

// maxSnapshots bounds the sample buffer; when it fills, the series is
// thinned deterministically (every other sample dropped, cadence doubled),
// so any run yields at most this many points regardless of length.
const maxSnapshots = 64

// StartSnapshots enables periodic counter snapshots every `every` simulated
// cycles, starting a fresh series. Samples are taken at scheduling points
// (between thread quanta), so each carries the counter state at the first
// scheduling event at or after its stamp. The new series gets its own
// backing storage: a slice previously obtained from Snapshots stays valid
// across a restart (phase rescoping, back-to-back serving phases).
//
// Deprecated: use Observe with ObserveOptions.SnapEvery. StartSnapshots
// remains as a thin wrapper.
func (m *Machine) StartSnapshots(every float64) {
	if every <= 0 {
		every = 1e8
	}
	m.snapEvery = every
	m.nextSnap = m.clock + every
	m.snaps = nil
}

// Snapshots returns a copy of the samples taken since StartSnapshots.
// Callers own the returned slice: neither further sampling nor a snapshot
// restart mutates it, and mutating it does not perturb the machine.
func (m *Machine) Snapshots() []Snapshot {
	return append([]Snapshot(nil), m.snaps...)
}

// pumpSnapshots takes due samples; the scheduler calls it between quanta.
func (m *Machine) pumpSnapshots() {
	if m.snapEvery <= 0 {
		return
	}
	for m.clock >= m.nextSnap {
		m.snaps = append(m.snaps, Snapshot{Cycle: m.nextSnap, Counters: m.Counters()})
		m.nextSnap += m.snapEvery
		if len(m.snaps) >= maxSnapshots {
			// Thin by keeping the EVEN indices: the first stamp of the
			// series (the first cadence tick) survives every round, and the
			// kept stamps stay uniformly spaced at the doubled cadence, so
			// re-anchoring off the last kept stamp continues the arithmetic
			// sequence without a gap or overlap.
			kept := m.snaps[:0]
			for i := 0; i < len(m.snaps); i += 2 {
				kept = append(kept, m.snaps[i])
			}
			m.snaps = kept
			m.snapEvery *= 2
			m.nextSnap = m.snaps[len(m.snaps)-1].Cycle + m.snapEvery
		}
	}
}
