package machine

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// parallelEquivBody is the RunParallel counterpart of equivBody: the same
// access shapes (dense runs, strides, random scalar probes, cross-node
// sharing, allocation, pure-CPU work) but with every cross-thread
// interaction confined to the simulated memory API — the shared buffer is
// allocated by a setup Run before the parallel phase and only its address
// crosses threads, read-only.
func parallelEquivBody(shared uint64) func(*Thread) {
	const bufBytes = 1 << 20
	return func(t *Thread) {
		base := t.Malloc(bufBytes)
		t.WriteRun(base, 8, bufBytes/8)
		t.ReadRun(base, 64, bufBytes/64)
		t.ReadStrided(base, 8, 4096, bufBytes/4096)
		t.WriteStrided(base, 16, 192, 1024)
		rng := t.RNG()
		for i := 0; i < 512; i++ {
			off := rng.Uint64n(bufBytes/8) * 8
			t.Read(base+off, 8)
		}
		t.Charge(3000)
		// Cross-node traffic: every thread reads and rewrites the head of
		// the shared region, exercising the coherence directory (and its
		// lane overlay) from concurrent node groups.
		t.ReadRun(shared, 8, 2048)
		t.WriteRun(shared, 8, 2048)
		t.Free(base, bufBytes)
	}
}

// runParallelOnce drives one full profiled+traced RunParallel execution at
// the given host parallelism and returns everything observable.
func runParallelOnce(mk func() *Machine, cfg RunConfig, threads, par int) (Result, *Profile, []trace.Event) {
	m := mk()
	m.Configure(cfg)
	m.SetProfiling(true)
	rec := trace.NewRecorder()
	m.SetTrace(rec)
	m.SetHostParallelism(par)
	var shared uint64
	m.Run(1, func(t *Thread) {
		shared = t.Malloc(1 << 20)
		t.WriteRun(shared, 64, (1<<20)/64)
	})
	res := m.RunParallel(threads, parallelEquivBody(shared))
	return res, m.Profile(), rec.Events
}

// TestRunParallelEquivalence is the tentpole's determinism proof at the
// engine level: across the full configuration sweep (all machines,
// placements, policies, allocators, daemons), RunParallel on four host
// workers must reproduce the single-worker execution bit for bit —
// result, counters, cycle attribution and the complete trace stream.
// The CLI-level counterpart (whole experiments byte-compared across
// -machine-parallel values) runs in CI's equivalence job.
func TestRunParallelEquivalence(t *testing.T) {
	for _, tc := range profileConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			sRes, sProf, sEvents := runParallelOnce(tc.machine, tc.cfg, tc.threads, 1)
			pRes, pProf, pEvents := runParallelOnce(tc.machine, tc.cfg, tc.threads, 4)
			if !reflect.DeepEqual(sRes, pRes) {
				t.Errorf("results diverge:\npar=1: %+v\npar=4: %+v", sRes, pRes)
			}
			if !reflect.DeepEqual(sProf, pProf) {
				t.Error("cycle profiles diverge")
			}
			if len(sEvents) != len(pEvents) {
				t.Fatalf("trace streams diverge: %d vs %d events", len(sEvents), len(pEvents))
			}
			for i := range sEvents {
				if sEvents[i] != pEvents[i] {
					t.Fatalf("trace event %d diverges:\npar=1: %+v\npar=4: %+v",
						i, sEvents[i], pEvents[i])
				}
			}
		})
	}
}

// TestRunParallelLargeTopologies drives the parallel engine on the big
// presets (D and E have 8 and 16 node groups, so rounds genuinely fan out
// past the worker count) and cross-checks against serial execution.
func TestRunParallelLargeTopologies(t *testing.T) {
	for _, mk := range []func() *Machine{NewD, NewE} {
		m := mk()
		t.Run(m.Spec.Name, func(t *testing.T) {
			threads := m.Spec.Topo.Nodes() * 2
			cfg := testConfig(threads)
			sRes, sProf, _ := runParallelOnce(mk, cfg, threads, 1)
			pRes, pProf, _ := runParallelOnce(mk, cfg, threads, 4)
			if !reflect.DeepEqual(sRes, pRes) {
				t.Errorf("results diverge:\npar=1: %+v\npar=4: %+v", sRes, pRes)
			}
			if !reflect.DeepEqual(sProf, pProf) {
				t.Error("cycle profiles diverge")
			}
		})
	}
}

// TestRunParallelRace exists for the race detector: it drives concurrent
// node groups through every effect path — access runs, coherence
// upgrades, serial handoffs (faults, allocator calls), daemons
// (AutoNUMA + THP via the tuned config's sampler), tracing and profiling
// — so `go test -race` proves the quantum workers share no unsynchronized
// state. Run it with GOMAXPROCS > 1 for real interleaving.
func TestRunParallelRace(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Log("GOMAXPROCS=1: workers cannot truly interleave; still checks the engine path")
	}
	for _, cfg := range []RunConfig{DefaultConfig(8), TunedConfig(8)} {
		m := NewB()
		m.Configure(cfg)
		m.SetProfiling(true)
		m.SetTrace(trace.NewRecorder())
		m.SetHostParallelism(4)
		var shared uint64
		m.Run(1, func(t *Thread) {
			shared = t.Malloc(1 << 20)
			t.WriteRun(shared, 64, (1<<20)/64)
		})
		m.RunParallel(8, parallelEquivBody(shared))
	}
}

// benchParallelBody is a memory-bound, fault- and allocation-light body:
// after the first round its quanta never serialize, which is the workload
// shape RunParallel accelerates.
func benchParallelBody(bases []uint64) func(*Thread) {
	const bufBytes = 1 << 20
	return func(t *Thread) {
		base := bases[t.ID()]
		for rep := 0; rep < 12; rep++ {
			t.ReadRun(base, 64, bufBytes/64)
			t.WriteStrided(base, 8, 4096, bufBytes/4096)
		}
	}
}

// BenchmarkMachineParallel measures the round engine across host-core
// budgets on one fixed simulated workload (Machine B, 8 threads over 4
// node groups). Run with -benchtime Nx: the simulated machine's state
// depends on total access count, so fixed iterations keep runs comparable.
//
//	serial     — the engine's inline path (par=1)
//	par4gomax1 — 4 workers pinned to one host core: the worker pool's pure
//	             scheduling overhead, host-independent (this is the ratio
//	             the bench gate tracks as machine_parallel_vs_serial)
//	par4       — 4 workers on the natural GOMAXPROCS: the actual speedup
//	             on this host, informational only
func BenchmarkMachineParallel(b *testing.B) {
	run := func(b *testing.B, par int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewB()
			m.Configure(testConfig(8))
			m.SetHostParallelism(par)
			bases := make([]uint64, 8)
			m.Run(8, func(t *Thread) {
				bases[t.ID()] = t.Malloc(1 << 20)
				t.WriteRun(bases[t.ID()], 64, (1<<20)/64)
			})
			m.RunParallel(8, benchParallelBody(bases))
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("par4gomax1", func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		run(b, 4)
	})
	b.Run("par4", func(b *testing.B) { run(b, 4) })
}
