package machine

import (
	"testing"

	"repro/internal/vmm"
)

// scanBody returns a body that allocates bytes of memory and scans it
// passes times, touching every cache line.
func scanBody(bytes uint64, passes int) func(*Thread) {
	return func(t *Thread) {
		base := t.Malloc(bytes)
		for p := 0; p < passes; p++ {
			for off := uint64(0); off < bytes; off += 64 {
				t.Write(base+off, 8)
			}
		}
		t.Free(base, bytes)
	}
}

func testConfig(threads int) RunConfig {
	return RunConfig{
		Threads:   threads,
		Placement: PlaceSparse,
		Policy:    vmm.FirstTouch,
		Allocator: "ptmalloc",
		Seed:      7,
	}
}

func TestRunBasics(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(4))
	res := m.Run(4, scanBody(1<<20, 2))
	if res.WallCycles <= 0 {
		t.Fatal("wall cycles must be positive")
	}
	c := res.Counters
	if c.LocalAccesses+c.RemoteAccesses == 0 {
		t.Fatal("no DRAM accesses recorded")
	}
	if c.MinorFaults == 0 {
		t.Fatal("no faults recorded")
	}
	// The large allocation was freed (and unmapped), so RSS should have
	// dropped back to at most the allocator's retained slack.
	if res.RSSBytes > 1<<20 {
		t.Fatalf("RSS = %d after freeing everything", res.RSSBytes)
	}
}

func TestRSSTracksLiveAllocations(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(2))
	res := m.Run(2, func(t *Thread) {
		base := t.Malloc(1 << 20)
		for off := uint64(0); off < 1<<20; off += 64 {
			t.Write(base+off, 8)
		}
		// Keep it live: RSS must reflect the touched pages.
	})
	if res.RSSBytes < 2<<20 {
		t.Fatalf("RSS = %d, want at least the 2MiB touched", res.RSSBytes)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		m := NewA()
		cfg := DefaultConfig(8)
		cfg.Seed = 42
		m.Configure(cfg)
		return m.Run(8, scanBody(256<<10, 2))
	}
	r1, r2 := run(), run()
	if r1.WallCycles != r2.WallCycles {
		t.Errorf("wall cycles differ across identical runs: %v vs %v", r1.WallCycles, r2.WallCycles)
	}
	if r1.Counters != r2.Counters {
		t.Errorf("counters differ across identical runs:\n%+v\n%+v", r1.Counters, r2.Counters)
	}
}

func TestSeedChangesOSSchedule(t *testing.T) {
	wall := func(seed uint64) float64 {
		m := NewA()
		cfg := DefaultConfig(16)
		cfg.Seed = seed
		m.Configure(cfg)
		return m.Run(16, scanBody(128<<10, 2)).WallCycles
	}
	if wall(1) == wall(2) {
		t.Error("different seeds should give different OS scheduling outcomes")
	}
}

func TestSparsePlacementSpreadsNodes(t *testing.T) {
	m := NewB() // 4 nodes, 8 contexts per node
	cfg := testConfig(4)
	m.Configure(cfg)
	seen := map[int]bool{}
	m.Run(4, func(t *Thread) { seen[int(t.Node())] = true })
	if len(seen) != 4 {
		t.Errorf("sparse placement of 4 threads should span 4 nodes, got %v", seen)
	}
}

func TestDensePlacementPacks(t *testing.T) {
	m := NewB()
	cfg := testConfig(8)
	cfg.Placement = PlaceDense
	m.Configure(cfg)
	seen := map[int]bool{}
	m.Run(8, func(t *Thread) { seen[int(t.Node())] = true })
	if len(seen) != 1 {
		t.Errorf("dense placement of 8 threads should fit one node (8 contexts), got %v", seen)
	}
}

func TestAffinityPreventsMigration(t *testing.T) {
	m := NewA()
	cfg := testConfig(8)
	m.Configure(cfg)
	res := m.Run(8, scanBody(512<<10, 3))
	if res.Counters.ThreadMigrations != 0 {
		t.Errorf("pinned threads migrated %d times", res.Counters.ThreadMigrations)
	}
}

func TestOSSchedulerMigrates(t *testing.T) {
	// With migration-heavy seeds the OS scheduler must move threads.
	migrated := false
	for seed := uint64(1); seed <= 10 && !migrated; seed++ {
		m := NewA()
		cfg := DefaultConfig(16)
		cfg.AutoNUMA = false
		cfg.THP = false
		cfg.Seed = seed
		m.Configure(cfg)
		res := m.Run(16, scanBody(512<<10, 3))
		migrated = res.Counters.ThreadMigrations > 0
	}
	if !migrated {
		t.Error("OS scheduler never migrated across 10 seeds")
	}
}

func TestFirstTouchIsLocalForPrivateData(t *testing.T) {
	m := NewB()
	cfg := testConfig(4)
	m.Configure(cfg)
	res := m.Run(4, scanBody(2<<20, 2)) // private allocations per thread
	if lar := res.Counters.LAR(); lar < 0.95 {
		t.Errorf("first-touch private scans should be nearly all local, LAR = %v", lar)
	}
}

func TestInterleaveLARMatchesNodeCount(t *testing.T) {
	m := NewB() // 4 nodes
	cfg := testConfig(4)
	cfg.Policy = vmm.Interleave
	m.Configure(cfg)
	res := m.Run(4, scanBody(2<<20, 2))
	lar := res.Counters.LAR()
	if lar < 0.15 || lar > 0.40 {
		t.Errorf("interleaved LAR should be near 1/4, got %v", lar)
	}
}

func TestAutoNUMAMigratesAndCosts(t *testing.T) {
	// One thread first-touches a shared region from node 0; threads on
	// other nodes then hammer it. AutoNUMA should migrate pages toward the
	// accessors — and the run with AutoNUMA enabled should pay for it.
	// Machine A's 2MiB LLC cannot hold the region, so every pass reaches
	// DRAM and feeds the balancer's samples.
	build := func(auto bool) Result {
		m := NewA()
		cfg := testConfig(4)
		cfg.AutoNUMA = auto
		m.Configure(cfg)
		// Suppress the daemon's task migration so the test isolates the
		// page-migration path (otherwise moving the thread to the data
		// fixes locality first, which is also valid balancer behaviour).
		m.P.AutoNUMAThreadMove = 0
		var base uint64
		m.Run(1, func(t *Thread) {
			base = t.Malloc(8 << 20)
			for off := uint64(0); off < 8<<20; off += 64 {
				t.Write(base+off, 8)
			}
		})
		m.ResetCounters()
		return m.Run(4, func(t *Thread) {
			if t.ID() != 1 {
				return
			}
			// A single remote thread re-scans the region repeatedly: the
			// two-sample rule sees stable remote ownership.
			for pass := 0; pass < 12; pass++ {
				for off := uint64(0); off < 8<<20; off += 64 {
					t.Read(base+off, 8)
				}
			}
		})
	}
	on := build(true)
	off := build(false)
	if on.Counters.PageMigrations == 0 {
		t.Error("AutoNUMA made no page migrations in a remote-dominant scan")
	}
	if off.Counters.PageMigrations != 0 {
		t.Error("pages migrated with AutoNUMA disabled")
	}
}

func TestTHPPromotesAndHelpsTLB(t *testing.T) {
	run := func(thp bool) Result {
		m := NewC()
		cfg := testConfig(4)
		cfg.THP = thp
		m.Configure(cfg)
		return m.Run(4, scanBody(32<<20, 6))
	}
	with := run(true)
	without := run(false)
	if with.Counters.HugePromotions == 0 {
		t.Fatal("THP never promoted in a large sequential scan")
	}
	if without.Counters.HugePromotions != 0 {
		t.Fatal("promotions happened with THP off")
	}
	if with.Counters.TLBMisses >= without.Counters.TLBMisses {
		t.Errorf("THP should cut TLB misses on big scans: with=%d without=%d",
			with.Counters.TLBMisses, without.Counters.TLBMisses)
	}
}

func TestOversubscriptionInflatesWall(t *testing.T) {
	// Each thread does the same work; with 2x oversubscription every
	// context time-shares two threads, so the makespan should roughly
	// double relative to a fully-fitting dense run of the same per-thread
	// work.
	m := NewB() // 32 hardware threads
	cfg := testConfig(32)
	cfg.Placement = PlaceDense
	m.Configure(cfg)
	fit := m.Run(32, scanBody(256<<10, 2)).WallCycles

	m2 := NewB()
	cfg2 := testConfig(64)
	cfg2.Placement = PlaceDense
	m2.Configure(cfg2)
	over := m2.Run(64, scanBody(256<<10, 2)).WallCycles
	if over < fit*1.5 {
		t.Errorf("2x oversubscribed wall (%v) should be well above fitting wall (%v)", over, fit)
	}
}

func TestContentionConcentrationHurts(t *testing.T) {
	// All threads hammering one node's memory (Preferred) must be slower
	// than spreading pages (Interleave) at full thread count.
	run := func(policy vmm.Policy) float64 {
		m := NewA()
		cfg := testConfig(16)
		cfg.Policy = policy
		m.Configure(cfg)
		var base uint64
		m.Run(1, func(t *Thread) {
			base = t.Malloc(8 << 20)
			for off := uint64(0); off < 8<<20; off += 4096 {
				t.Write(base+off, 8) // fault in all pages
			}
		})
		res := m.Run(16, func(t *Thread) {
			r := t.RNG()
			for i := 0; i < 20000; i++ {
				off := (r.Uint64n(8 << 20)) &^ 63
				t.Read(base+off, 8)
			}
		})
		return res.WallCycles
	}
	concentrated := run(vmm.Preferred) // everything on node 0
	spread := run(vmm.Interleave)
	if concentrated <= spread*1.2 {
		t.Errorf("one-node concentration (%v) should clearly exceed interleave (%v)", concentrated, spread)
	}
}

func TestChargePureCPU(t *testing.T) {
	m := NewB()
	m.Configure(testConfig(1))
	res := m.Run(1, func(t *Thread) { t.Charge(12345) })
	if res.WallCycles < 12345 {
		t.Errorf("wall %v should include charged work", res.WallCycles)
	}
}

func TestConfigDefaults(t *testing.T) {
	m := NewB()
	m.Configure(RunConfig{})
	cfg := m.Config()
	if cfg.Threads != m.Spec.HardwareThreads() {
		t.Errorf("zero threads should default to hardware threads, got %d", cfg.Threads)
	}
	if cfg.Allocator != "ptmalloc" {
		t.Errorf("empty allocator should default to ptmalloc, got %q", cfg.Allocator)
	}
}

func TestSecondsConversion(t *testing.T) {
	m := NewA() // 2.8 GHz
	if s := m.Seconds(2.8e9); s < 0.999 || s > 1.001 {
		t.Errorf("2.8e9 cycles at 2.8GHz = %v s, want 1", s)
	}
}

func TestPlacementString(t *testing.T) {
	for _, p := range []Placement{PlaceNone, PlaceSparse, PlaceDense} {
		if p.String() == "" {
			t.Error("empty placement name")
		}
	}
}

func TestSpecPresets(t *testing.T) {
	a, b, c := SpecA(), SpecB(), SpecC()
	if a.HardwareThreads() != 16 {
		t.Errorf("Machine A hardware threads = %d, want 16", a.HardwareThreads())
	}
	if b.HardwareThreads() != 32 {
		t.Errorf("Machine B hardware threads = %d, want 32", b.HardwareThreads())
	}
	if c.HardwareThreads() != 64 {
		t.Errorf("Machine C hardware threads = %d, want 64", c.HardwareThreads())
	}
	if a.Params.DRAMCycles <= c.Params.DRAMCycles {
		t.Error("Machine A's slow memory should cost more cycles than C's")
	}
}
