package serve

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/machine"
)

// tinySpec keeps unit-test runs fast: small datasets, short stream.
func tinySpec() Spec {
	return Spec{
		Requests: 160,
		Warmup:   16,
		Workers:  4,
		MeanGap:  800,
		Seed:     3,
		DataRows: 2000,
		DataCard: 64,
		JoinRows: 400,
		TPCHSF:   0.001,
	}.Normalize()
}

// TestArrivalsPositionIndependent pins the PR 1 pitfall to the serving
// stream: request i's content must depend only on (seed, i), never on how
// many requests precede or follow it, for both arrival processes. A
// shorter stream is therefore a strict prefix of a longer one.
func TestArrivalsPositionIndependent(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalBursty} {
		sp := tinySpec()
		sp.Arrival = arrival
		long := Arrivals(sp)
		short := sp
		short.Requests = 40
		got := Arrivals(short)
		if !reflect.DeepEqual(got, long[:40]) {
			t.Errorf("%s: 40-request stream is not a prefix of the 160-request stream", arrival)
		}
		for i := 1; i < len(long); i++ {
			if long[i].Arrival < long[i-1].Arrival {
				t.Fatalf("%s: arrivals not monotonic at %d", arrival, i)
			}
		}
		for i := range long {
			if long[i].Session >= uint64(sp.Sessions) {
				t.Fatalf("%s: session %d out of range at %d", arrival, long[i].Session, i)
			}
		}
	}
}

// TestArrivalsBurstyCompresses checks the bursty process actually changes
// the gap structure relative to Poisson under the same seed.
func TestArrivalsBurstyCompresses(t *testing.T) {
	sp := tinySpec()
	sp.Requests = 640
	pois := Arrivals(sp)
	sp.Arrival = ArrivalBursty
	bur := Arrivals(sp)
	same := 0
	for i := 1; i < len(pois); i++ {
		pg := pois[i].Arrival - pois[i-1].Arrival
		bg := bur[i].Arrival - bur[i-1].Arrival
		if pg == bg {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d gaps identical between poisson and bursty; burst modulation missing", same)
	}
}

// TestQueueSimFCFS hand-checks the G/G/c overlay: two servers, a burst of
// three simultaneous arrivals — the third must queue behind the faster
// server.
func TestQueueSimFCFS(t *testing.T) {
	reqs := []Request{{Arrival: 0}, {Arrival: 0}, {Arrival: 0}, {Arrival: 50}}
	svc := []perReq{{service: 10}, {service: 4}, {service: 8}, {service: 5}}
	lat, wait, makespan := queueSim(reqs, svc, 2)
	// r0 -> server0 [0,10); r1 -> server1 [0,4); r2 queues for server1,
	// runs [4,12); r3 arrives at 50, both idle, server0 runs [50,55).
	wantLat := []float64{10, 4, 12, 5}
	wantWait := []float64{0, 0, 4, 0}
	if !reflect.DeepEqual(lat, wantLat) {
		t.Errorf("latency %v, want %v", lat, wantLat)
	}
	if !reflect.DeepEqual(wait, wantWait) {
		t.Errorf("wait %v, want %v", wait, wantWait)
	}
	if makespan != 55 {
		t.Errorf("makespan %v, want 55", makespan)
	}
}

// TestRunWarmupOnly drives the all-warmup edge case: zero measured
// requests must yield defined (zero, finite) metrics and an empty tail,
// never NaN — these numbers land in JSON artifacts.
func TestRunWarmupOnly(t *testing.T) {
	sp := tinySpec()
	sp.Requests = 24
	sp.Warmup = 24
	sp.SLOs = []float64{1000, 10000}
	m := machine.New(machine.SpecA())
	m.Configure(machine.DefaultConfig(sp.Workers))
	out := Run(m, sp)
	mt := out.Metrics
	if mt.Requests != 0 {
		t.Fatalf("measured %d requests, want 0", mt.Requests)
	}
	for name, v := range map[string]float64{
		"p50": mt.P50, "p99": mt.P99, "p999": mt.P999,
		"mean_latency": mt.MeanLatency, "throughput": mt.Throughput,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
	if len(mt.SLOs) != 2 || mt.SLOs[0].Attained != 0 || mt.SLOs[1].Attained != 0 {
		t.Errorf("SLO rows %+v, want two zero-attainment rows", mt.SLOs)
	}
	if len(mt.Hist) != 0 {
		t.Errorf("histogram has %d buckets on empty measured set", len(mt.Hist))
	}
	if out.Tail.Count != 0 || len(out.Tail.Buckets) != 0 {
		t.Errorf("tail non-empty on empty measured set: %+v", out.Tail)
	}
}

// TestRunDeterministic runs the full serving pipeline twice on fresh
// machines and requires identical outcomes — the property the experiment
// driver's byte-identical artifacts rest on.
func TestRunDeterministic(t *testing.T) {
	sp := tinySpec()
	sp.SLOs = []float64{2000, 20000, 200000}
	run := func() *Outcome {
		m := machine.New(machine.SpecA())
		m.Configure(machine.DefaultConfig(sp.Workers))
		m.Observe(machine.ObserveOptions{Profile: true})
		return Run(m, sp)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ across identical runs:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.Tail, b.Tail) {
		t.Errorf("tail attribution differs across identical runs")
	}
	if a.Metrics.Requests != sp.Requests-sp.Warmup {
		t.Fatalf("measured %d, want %d", a.Metrics.Requests, sp.Requests-sp.Warmup)
	}
	if a.Metrics.P999 < a.Metrics.P99 || a.Metrics.P99 < a.Metrics.P50 {
		t.Errorf("percentiles not ordered: p50=%v p99=%v p999=%v",
			a.Metrics.P50, a.Metrics.P99, a.Metrics.P999)
	}
	if a.Metrics.MeanService <= 0 {
		t.Errorf("mean service %v, want > 0", a.Metrics.MeanService)
	}
	if len(a.Tail.Buckets) == 0 {
		t.Errorf("profiled run attributed no buckets")
	}
	sumHist := 0
	for _, hb := range a.Metrics.Hist {
		sumHist += hb.Count
	}
	if sumHist != a.Metrics.Requests {
		t.Errorf("histogram counts sum to %d, want %d", sumHist, a.Metrics.Requests)
	}
}

// TestCalibrationAndSLOs checks the calibration helpers: the memoized mean
// is stable, the derived gap offers the requested utilization, and the SLO
// ladder scales off the mean.
func TestCalibrationAndSLOs(t *testing.T) {
	sp := tinySpec()
	mean := CalibratedMeanService("Machine A", sp)
	if mean <= 0 || math.IsNaN(mean) {
		t.Fatalf("calibrated mean %v, want positive", mean)
	}
	if again := CalibratedMeanService("Machine A", sp); again != mean {
		t.Errorf("memoized calibration drifted: %v then %v", mean, again)
	}
	gap := GapFor(mean, 4, 0.5)
	if want := mean / 2; math.Abs(gap-want) > 1e-9 {
		t.Errorf("gap %v, want %v", gap, want)
	}
	slos := DefaultSLOs(mean)
	if len(slos) != len(SLOMultiples()) {
		t.Fatalf("%d SLOs vs %d labels", len(slos), len(SLOMultiples()))
	}
	for i := 1; i < len(slos); i++ {
		if slos[i] <= slos[i-1] {
			t.Errorf("SLO ladder not ascending: %v", slos)
		}
	}
}
