// Package serve builds the open-loop query-serving scenario: a
// deterministic arrival process (Poisson or bursty, drawn from xrand)
// dispatches a mixed stream of point lookups, index-join probes,
// aggregation windows and TPC-H scan fragments onto a simulated machine,
// and the package reports per-request latency percentiles, SLO attainment
// and a tail-cycle attribution.
//
// Unlike the closed-loop figure drivers, requests arrive on their own
// clock: the service phase measures each request's simulated service time
// on the machine (worker threads drain the stream round-robin), and a
// G/G/c FCFS queueing overlay combines the measured service times with the
// arrival process into per-request latency = queueing wait + service.
// Everything — arrivals, session ids, per-request parameters, service
// cycles, queueing — derives from the spec's seed, so all outputs are
// byte-identical across runs and across host parallelism.
package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/query"
	"repro/internal/span"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Arrival process names.
const (
	// ArrivalPoisson draws i.i.d. exponential inter-arrival gaps.
	ArrivalPoisson = "poisson"
	// ArrivalBursty modulates the Poisson gaps in blocks of requests: a
	// random fifth of the blocks arrive Burst times faster (compressed
	// gaps), the rest slightly slower, preserving open-loop pressure while
	// clustering arrivals the way production traffic does.
	ArrivalBursty = "bursty"
)

// Kind classifies one request of the serving mix.
type Kind int

// The serving mix's request kinds.
const (
	// PointLookup probes the ART index a handful of times (B-tree-backed
	// key/value reads).
	PointLookup Kind = iota
	// IndexJoin allocates a result buffer and joins a short probe-side
	// window against the index.
	IndexJoin
	// AggregateScan streams an aggregation window over the record array —
	// the bandwidth-bound tail-maker of the mix.
	AggregateScan
	// TPCHScan runs a TPC-H lineitem scan fragment through the columnar
	// engine's per-tuple cost model.
	TPCHScan

	numKinds
)

// String returns the kind's stable name, used in tables and labels.
func (k Kind) String() string {
	switch k {
	case PointLookup:
		return "point"
	case IndexJoin:
		return "join"
	case AggregateScan:
		return "agg"
	case TPCHScan:
		return "tpch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Mix is the request-kind mix as integer weights.
type Mix struct {
	Point int
	Join  int
	Agg   int
	TPCH  int
}

// DefaultMix is a lookup-heavy OLTP-ish mix with an analytic tail.
func DefaultMix() Mix { return Mix{Point: 60, Join: 25, Agg: 12, TPCH: 3} }

func (x Mix) total() int { return x.Point + x.Join + x.Agg + x.TPCH }

// pick maps a uniform draw in [0, total) onto a kind.
func (x Mix) pick(u uint64) Kind {
	if u < uint64(x.Point) {
		return PointLookup
	}
	u -= uint64(x.Point)
	if u < uint64(x.Join) {
		return IndexJoin
	}
	u -= uint64(x.Join)
	if u < uint64(x.Agg) {
		return AggregateScan
	}
	return TPCHScan
}

// Spec describes one serving run. Zero values get defaults from Normalize.
type Spec struct {
	// Requests is the open-loop stream length; Warmup leading requests are
	// served but excluded from every metric (cold caches, cold allocator).
	Requests int
	Warmup   int
	// Workers is the serving thread count (the c of the G/G/c queue).
	Workers int
	// Sessions is the simulated session-id space; each request belongs to
	// one session and touches that session's working set.
	Sessions int
	// Arrival selects the arrival process (ArrivalPoisson, ArrivalBursty);
	// MeanGap is the mean inter-arrival gap in simulated cycles, and Burst
	// the bursty process's gap-compression factor.
	Arrival string
	MeanGap float64
	Burst   float64
	// Mix weights the request kinds.
	Mix Mix
	// Seed derives every random stream of the run.
	Seed uint64
	// SLOs are latency targets in simulated cycles, ascending; the metrics
	// report the fraction of measured requests at or under each.
	SLOs []float64

	// Dataset dimensions: the aggregation table (DataRows x DataCard
	// groups), the join build side (JoinRows; probe side is the usual
	// 16x), and the TPC-H scale factor.
	DataRows int
	DataCard int
	JoinRows int
	TPCHSF   float64
}

// Normalize fills defaults; it is idempotent and Run applies it, so a
// zero-valued field never reaches the kernels.
func (sp Spec) Normalize() Spec {
	if sp.Requests <= 0 {
		sp.Requests = 256
	}
	if sp.Warmup < 0 {
		sp.Warmup = 0
	}
	if sp.Workers <= 0 {
		sp.Workers = 8
	}
	if sp.Sessions <= 0 {
		sp.Sessions = 2_000_000
	}
	if sp.Arrival != ArrivalBursty {
		sp.Arrival = ArrivalPoisson
	}
	if sp.MeanGap <= 0 {
		sp.MeanGap = 1000
	}
	if sp.Burst <= 1 {
		sp.Burst = 4
	}
	if sp.Mix.total() <= 0 {
		sp.Mix = DefaultMix()
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.DataRows <= 0 {
		sp.DataRows = 8192
	}
	if sp.DataCard <= 0 {
		sp.DataCard = 256
	}
	if sp.JoinRows <= 0 {
		sp.JoinRows = 1024
	}
	if sp.TPCHSF <= 0 {
		sp.TPCHSF = 0.001
	}
	return sp
}

// Request is one arrival of the open-loop stream.
type Request struct {
	Session uint64  // session id in [0, Sessions)
	Kind    Kind    // which kernel serves it
	Param   uint64  // the session's working-set selector
	Arrival float64 // arrival time in simulated cycles
}

// Bursty-arrival shape: requests are modulated in blocks of burstBlock;
// each block independently has probability burstProb of being hot (gaps
// divided by Spec.Burst); cold blocks stretch by burstStretch so the mean
// offered load stays near the Poisson process's.
const (
	burstBlock   = 32
	burstProb    = 0.2
	burstStretch = 1.2
	// burstLabel offsets the per-block derivation labels away from the
	// per-request labels so the two stream families never collide.
	burstLabel = uint64(1) << 40
	// spanSessionLabel and spanRequestLabel offset the span-id derivation
	// families the same way: session span ids derive from the session id,
	// request-tree span ids from the request index, and neither collides
	// with the arrival or burst streams.
	spanSessionLabel = uint64(2) << 40
	spanRequestLabel = uint64(3) << 40
)

// Arrivals generates the request stream. Every request derives its own
// RNG stream from the base seed via Derive(i) — a function of the seed
// material alone, not of how many values anything else consumed — so the
// stream is position-independent: request i's session, kind, parameter and
// gap are identical no matter what ran before (the PR 1 pitfall).
func Arrivals(sp Spec) []Request {
	sp = sp.Normalize()
	base := xrand.New(sp.Seed)
	reqs := make([]Request, sp.Requests)
	clock := 0.0
	for i := range reqs {
		r := base.Derive(uint64(i))
		gap := sp.MeanGap * r.ExpFloat64()
		if sp.Arrival == ArrivalBursty {
			block := uint64(i) / burstBlock
			if base.Derive(burstLabel+block).Float64() < burstProb {
				gap /= sp.Burst
			} else {
				gap *= burstStretch
			}
		}
		clock += gap
		sess := r.Uint64n(uint64(sp.Sessions))
		state := sess
		reqs[i] = Request{
			Session: sess,
			Kind:    sp.Mix.pick(r.Uint64n(uint64(sp.Mix.total()))),
			Param:   xrand.SplitMix64(&state), // session-affine working set
			Arrival: clock,
		}
	}
	return reqs
}

// Per-request kernel shapes, in simulated-memory operations.
const (
	reqRecordBytes = 16  // datagen.Record layout (key + value)
	pointProbes    = 4   // index lookups per point request
	joinProbes     = 12  // probe-side keys per join request
	joinBufBytes   = 256 // join request's short-lived result buffer
	aggWindow      = 192 // records streamed per aggregation request
	tpchWindow     = 96  // lineitem rows scanned per TPC-H request
)

// workset is the shared serving state: the loaded datasets, the pre-built
// index and the TPC-H engine, plus the setup cycles they cost.
type workset struct {
	recsBase uint64
	recRows  int
	tables   datagen.JoinTables
	idx      index.Index
	eng      *tpch.Engine
	liRows   int
	tpchCols []string
	setup    float64
}

// prepare loads the serving datasets into m's simulated memory. Loading is
// single-threaded (a restore/import), exactly like the figure drivers, so
// First Touch places everything on the loader's node — the serving phase
// then fights the same placement battle the paper's workloads do.
func prepare(m *machine.Machine, sp Spec) *workset {
	w := &workset{tpchCols: []string{"discount", "extendedprice", "quantity", "shipdate"}}
	recs := datagen.CachedGenerate(datagen.MovingClusterDist, sp.DataRows, sp.DataCard, 11)
	base, loadCycles := query.LoadRecords(m, recs)
	w.recsBase, w.recRows = base, len(recs)
	w.setup += loadCycles

	w.tables = datagen.CachedJoin(sp.JoinRows, datagen.DefaultJoinRatio, 17)
	w.idx = index.New(index.ARTKind)
	res := m.Run(1, func(t *machine.Thread) {
		for _, r := range w.tables.R {
			w.idx.Insert(t, r.Key, r.Val)
		}
	})
	w.setup += res.WallCycles

	db := tpch.GenerateCached(sp.TPCHSF, 7)
	w.eng = tpch.NewEngine(tpch.Profiles()[0], m, db) // MonetDB-style columnar
	w.liRows = len(db.Lineitems)
	w.setup += w.eng.LoadCycles()
	return w
}

// phaseWin is one per-operator phase of one request's service window, in
// the serving thread's cycle clock. Phases partition the service window.
type phaseWin struct {
	name           string
	startCy, endCy float64
	buckets        []float64 // phase profile-bucket delta, nil unprofiled
}

// phaseTracker stamps per-operator phase boundaries during serveOne. It
// only reads the thread's cycle account and profile buckets, so tracking
// is observation-only; a nil tracker (spans off) costs one pointer check
// per mark.
type phaseTracker struct {
	m      *machine.Machine
	t      *machine.Thread
	lastCy float64
	lastBk []float64
	out    []phaseWin
}

func (p *phaseTracker) begin(m *machine.Machine, t *machine.Thread) {
	p.m, p.t = m, t
	p.lastCy = t.Cycles()
	p.lastBk = m.ThreadBuckets(t.ID())
	p.out = p.out[:0]
}

// mark closes the phase that began at the previous mark (or at begin).
func (p *phaseTracker) mark(name string) {
	cy := p.t.Cycles()
	bk := p.m.ThreadBuckets(p.t.ID())
	var delta []float64
	if bk != nil && p.lastBk != nil {
		delta = make([]float64, len(bk))
		for i := range bk {
			delta[i] = bk[i] - p.lastBk[i]
		}
	}
	p.out = append(p.out, phaseWin{name: name, startCy: p.lastCy, endCy: cy, buckets: delta})
	p.lastCy, p.lastBk = cy, bk
}

// serveOne executes one request's kernel on the calling thread. No RNG is
// consumed at service time — every data-dependent choice comes from the
// request's precomputed Param — so the per-thread service stream depends
// only on which requests the thread serves. ph, when non-nil, records
// per-operator phase boundaries for span collection.
func (w *workset) serveOne(t *machine.Thread, rq *Request, ph *phaseTracker) {
	switch rq.Kind {
	case PointLookup:
		n := uint64(len(w.tables.R))
		for k := uint64(0); k < pointProbes; k++ {
			w.idx.Lookup(t, w.tables.R[(rq.Param+k*0x9e3779b97f4a7c15)%n].Key)
		}
		if ph != nil {
			ph.mark("probe")
		}
		t.Charge(40)
		if ph != nil {
			ph.mark("compute")
		}
	case IndexJoin:
		n := uint64(len(w.tables.S))
		buf := t.Malloc(joinBufBytes)
		if ph != nil {
			ph.mark("alloc")
		}
		out := uint64(0)
		for k := uint64(0); k < joinProbes; k++ {
			key := w.tables.S[(rq.Param+k*0xd1342543de82ef95)%n].Key
			if _, ok := w.idx.Lookup(t, key); ok {
				t.Write(buf+(out%(joinBufBytes/reqRecordBytes))*reqRecordBytes, reqRecordBytes)
				out++
			}
		}
		if ph != nil {
			ph.mark("probe")
		}
		t.Free(buf, joinBufBytes)
		t.Charge(90)
		if ph != nil {
			ph.mark("finish")
		}
	case AggregateScan:
		win := aggWindow
		if win > w.recRows {
			win = w.recRows
		}
		start := 0
		if w.recRows > win {
			start = int(rq.Param % uint64(w.recRows-win))
		}
		t.ReadRun(w.recsBase+uint64(start)*reqRecordBytes, reqRecordBytes, win)
		if ph != nil {
			ph.mark("scan")
		}
		t.Charge(1.5 * float64(win))
		if ph != nil {
			ph.mark("compute")
		}
	case TPCHScan:
		win := tpchWindow
		if win > w.liRows {
			win = w.liRows
		}
		start := 0
		if w.liRows > win {
			start = int(rq.Param % uint64(w.liRows-win))
		}
		for j := 0; j < win; j++ {
			w.eng.Scan(t, "lineitem", w.tpchCols, start+j)
		}
		if ph != nil {
			ph.mark("scan")
		}
	}
}

// perReq is one request's measured service window.
type perReq struct {
	thread  int
	startCy float64 // thread cycle account at service start
	endCy   float64
	service float64
	buckets []float64 // service-window profile-bucket deltas, nil unprofiled

	// Span-collection extras, populated only when the machine was marked
	// for spans: the service window on the machine's global clock (the
	// clock kernel-daemon events are stamped with), the perf-counter
	// window, and the per-operator phases.
	gStart, gEnd float64
	ctrDelta     machine.Counters
	phases       []phaseWin
}

// measureService drains the request stream on sp.Workers simulated threads
// (thread j serves requests j, j+c, j+2c, ...) and returns each request's
// service cycles plus, when profiling is on, its per-bucket attribution
// delta. The cooperative scheduler runs one thread at a time, so the
// shared index/engine state needs no synchronization and the measurement
// is deterministic. When the machine is marked for spans (Observe with
// Spans), each window additionally records its global-clock bounds,
// counter delta and per-operator phases — all read-only telemetry, so the
// simulated run is bit-identical either way.
func measureService(m *machine.Machine, w *workset, reqs []Request, workers int) ([]perReq, machine.Result) {
	svc := make([]perReq, len(reqs))
	withSpans := m.SpansEnabled()
	tel := m.Observe(machine.ObserveOptions{})
	res := m.Run(workers, func(t *machine.Thread) {
		id := t.ID()
		var ph *phaseTracker
		if withSpans {
			ph = &phaseTracker{}
		}
		for i := id; i < len(reqs); i += workers {
			before := m.ThreadBuckets(id)
			var c0 machine.Counters
			svc[i].thread = id
			svc[i].startCy = t.Cycles()
			if withSpans {
				svc[i].gStart = tel.Clock()
				c0 = tel.Counters()
				ph.begin(m, t)
			}
			w.serveOne(t, &reqs[i], ph)
			svc[i].endCy = t.Cycles()
			svc[i].service = svc[i].endCy - svc[i].startCy
			if withSpans {
				svc[i].gEnd = tel.Clock()
				svc[i].ctrDelta = counterDelta(c0, tel.Counters())
				svc[i].phases = append([]phaseWin(nil), ph.out...)
			}
			if after := m.ThreadBuckets(id); after != nil {
				for b := range after {
					after[b] -= before[b]
				}
				svc[i].buckets = after
			}
		}
	})
	return svc, res
}

// The telemetry-flattening helpers are shared with the TPC-H CLI through
// the span package; local names keep the assembly code short.
var (
	counterDelta = span.CounterDelta
	counterMap   = span.CounterMap
	bucketMap    = span.BucketMap
)

// queueSim is the G/G/c FCFS overlay: requests enter service in arrival
// order on the first of c servers to free up (ties to the lowest server
// id), so latency[i] = wait[i] + service[i] with wait[i] the queueing
// delay. makespan is the last completion time.
func queueSim(reqs []Request, svc []perReq, c int) (latency, wait []float64, makespan float64) {
	latency = make([]float64, len(reqs))
	wait = make([]float64, len(reqs))
	free := make([]float64, c)
	for i := range reqs {
		s := 0
		for j := 1; j < c; j++ {
			if free[j] < free[s] {
				s = j
			}
		}
		start := reqs[i].Arrival
		if free[s] > start {
			start = free[s]
		}
		wait[i] = start - reqs[i].Arrival
		done := start + svc[i].service
		latency[i] = done - reqs[i].Arrival
		free[s] = done
		if done > makespan {
			makespan = done
		}
	}
	return latency, wait, makespan
}

// SLOAttainment is one latency target and the fraction of measured
// requests that met it.
type SLOAttainment struct {
	Target   float64
	Attained float64
}

// HistBucket is one power-of-two latency bucket: [Lo, Hi) cycles. The
// Lo == 0 bucket collects sub-cycle latencies.
type HistBucket struct {
	Lo, Hi float64
	Count  int
}

// Metrics summarizes the measured (post-warmup) requests. Every field is
// finite; an empty measured set yields all zeros.
type Metrics struct {
	Requests    int
	MeanService float64
	MeanWait    float64
	MeanLatency float64
	P50         float64
	P90         float64
	P99         float64
	P999        float64
	Makespan    float64 // last completion, warmup included
	Throughput  float64 // measured requests per billion simulated cycles
	SLOs        []SLOAttainment
	Hist        []HistBucket
}

// percentile is the nearest-rank percentile of an ascending slice; 0 on
// empty input (never NaN — metrics land in JSON).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Component is one tail-attribution row: a metric over all measured
// requests versus over the p999 tail alone.
type Component struct {
	Name string
	All  float64
	Tail float64
}

// Tail is the p999 tail attribution: which profile buckets the slow
// requests' service cycles went to, how much of their latency was queueing
// rather than service, and which trace events co-occurred with them.
type Tail struct {
	// Threshold is the p999 latency; Count the number of measured requests
	// at or above it.
	Threshold float64
	Count     int
	// Buckets holds, per profile bucket with any weight, the bucket's
	// share of service-window cycles over all measured requests vs over
	// tail requests. Empty when the machine was not profiling.
	Buckets []Component
	// QueueWait is the queueing share of total latency, all vs tail.
	QueueWait Component
	// Events holds mean trace events per request by kind (events whose
	// emitting thread and cycle fall inside a request's service window),
	// all vs tail. Empty when no recorder was attached.
	Events []Component
}

// Outcome is one serving run's full result.
type Outcome struct {
	Spec    Spec
	Setup   float64        // dataset/index/engine load cycles (pre-reset)
	Result  machine.Result // the service phase's machine result
	Metrics Metrics
	Tail    Tail
	// Spans is the run's request-level span tree (session → request →
	// queue_wait/service → phase), populated only when the machine was
	// marked for spans (Observe with Spans). Warmup requests included;
	// MeasuredSpans filters them out.
	Spans []span.Span
}

// MeasuredSpans returns the span tree restricted to post-warmup requests
// (session spans are kept — they scope the whole run).
func (o *Outcome) MeasuredSpans() []span.Span {
	if o.Spec.Warmup == 0 {
		return o.Spans
	}
	out := make([]span.Span, 0, len(o.Spans))
	for _, s := range o.Spans {
		if s.Kind == span.KindSession || s.Seq >= o.Spec.Warmup {
			out = append(out, s)
		}
	}
	return out
}

// TailIDs returns the request-span ids of the p999 cohort: measured
// requests whose latency (the request span's duration) is at or above
// Metrics.P999. Empty when nothing was measured or spans are off.
func (o *Outcome) TailIDs() map[uint64]bool {
	tail := map[uint64]bool{}
	if o.Metrics.Requests == 0 {
		return tail
	}
	for _, s := range o.Spans {
		if s.Kind == span.KindRequest && s.Seq >= o.Spec.Warmup && s.Duration() >= o.Metrics.P999 {
			tail[s.ID] = true
		}
	}
	return tail
}

// Blame joins the measured service spans against their event windows and
// returns the per-mechanism×initiator tail attribution (see span.Blame).
func (o *Outcome) Blame() []span.BlameRow {
	return span.Blame(o.MeasuredSpans(), o.TailIDs())
}

// Run executes one serving run on an already-configured machine: dataset
// setup, counter/profile reset (the metrics scope to the service phase),
// the measured service drain, and the queueing overlay. It never fails:
// the spec is normalized and every metric is defined (as zero) even when
// warmup swallows all requests.
func Run(m *machine.Machine, sp Spec) *Outcome {
	sp = sp.Normalize()
	reqs := Arrivals(sp)
	w := prepare(m, sp)
	m.ResetCounters()

	evStart := 0
	rec, _ := m.Trace().(*trace.Recorder)
	if rec != nil {
		evStart = len(rec.Events)
	}
	svc, res := measureService(m, w, reqs, sp.Workers)
	latency, wait, makespan := queueSim(reqs, svc, sp.Workers)

	out := &Outcome{Spec: sp, Setup: w.setup, Result: res}
	measured := make([]int, 0, len(reqs))
	for i := sp.Warmup; i < len(reqs); i++ {
		measured = append(measured, i)
	}
	out.Metrics = computeMetrics(sp, svc, latency, wait, measured, makespan)
	var events []trace.Event
	if rec != nil {
		events = rec.Events[evStart:]
	}
	out.Tail = computeTail(svc, latency, wait, measured, out.Metrics.P999, events)
	if m.SpansEnabled() {
		out.Spans = buildSpans(sp, reqs, svc, latency, wait, events)
	}
	return out
}

// spanID draws sequential nonzero ids from a derived stream (see
// span.ID); ids are a function of the seed material alone.
var spanID = span.ID

// buildSpans assembles the run's span tree from already-collected
// telemetry: session spans (arrival clock, spanning first arrival to last
// completion), then per request — in arrival order — a request span
// (arrival clock; duration = latency), its queue_wait child, its service
// child (thread-cycle clock, with the global-clock window, bucket delta,
// counter window and in-window event counts) and the service span's
// per-operator phases. Everything is derived from svc/latency/wait and
// the recorded events; nothing touches the machine.
func buildSpans(sp Spec, reqs []Request, svc []perReq, latency, wait []float64, events []trace.Event) []span.Span {
	base := xrand.New(sp.Seed)

	// Per-thread request windows in service order — ascending both in the
	// thread-cycle clock (startCy) and the global clock (gStart), since
	// each thread serves its requests sequentially.
	byThread := map[int][]int{}
	for i := range svc {
		byThread[svc[i].thread] = append(byThread[svc[i].thread], i)
	}

	// Match each recorded event to the request window it fell inside.
	// Thread-stamped events carry the thread's cycle account; daemon
	// events (Thread == -1) carry the machine's global clock and stall
	// every thread, so they match the in-flight request on each thread
	// whose global window contains them.
	evCount := map[int]map[string]uint64{}
	record := func(i int, ev trace.Event) {
		mp := evCount[i]
		if mp == nil {
			mp = map[string]uint64{}
			evCount[i] = mp
		}
		mp[ev.Kind.String()+"/"+ev.Initiator.String()]++
	}
	for _, ev := range events {
		if ev.Thread >= 0 {
			wins := byThread[int(ev.Thread)]
			j := sort.Search(len(wins), func(k int) bool {
				return svc[wins[k]].startCy > ev.Cycle
			})
			if j == 0 {
				continue
			}
			if i := wins[j-1]; ev.Cycle < svc[i].endCy {
				record(i, ev)
			}
			continue
		}
		for _, wins := range byThread {
			j := sort.Search(len(wins), func(k int) bool {
				return svc[wins[k]].gStart > ev.Cycle
			})
			if j == 0 {
				continue
			}
			if i := wins[j-1]; ev.Cycle < svc[i].gEnd {
				record(i, ev)
			}
		}
	}

	// Session spans: one per distinct session id, in session-id order,
	// spanning its first arrival to its last completion.
	type sessWin struct{ start, end float64 }
	sessions := map[uint64]*sessWin{}
	for i := range reqs {
		end := reqs[i].Arrival + latency[i]
		w := sessions[reqs[i].Session]
		if w == nil {
			sessions[reqs[i].Session] = &sessWin{start: reqs[i].Arrival, end: end}
			continue
		}
		if reqs[i].Arrival < w.start {
			w.start = reqs[i].Arrival
		}
		if end > w.end {
			w.end = end
		}
	}
	sids := make([]uint64, 0, len(sessions))
	for sid := range sessions {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(a, b int) bool { return sids[a] < sids[b] })

	spans := make([]span.Span, 0, len(sids)+4*len(reqs))
	sessID := make(map[uint64]uint64, len(sids))
	for _, sid := range sids {
		id := spanID(base.Derive(spanSessionLabel + sid))
		sessID[sid] = id
		w := sessions[sid]
		spans = append(spans, span.Span{
			ID: id, Kind: span.KindSession, Name: "session",
			Seq: -1, Session: sid, Thread: -1,
			Start: w.start, End: w.end,
		})
	}

	for i := range reqs {
		r := base.Derive(spanRequestLabel + uint64(i))
		reqID, qwID, svcID := spanID(r), spanID(r), spanID(r)
		rq, sv := &reqs[i], &svc[i]
		name := rq.Kind.String()
		spans = append(spans,
			span.Span{
				ID: reqID, Parent: sessID[rq.Session],
				Kind: span.KindRequest, Name: name,
				Seq: i, Session: rq.Session, Thread: sv.thread,
				Start: rq.Arrival, End: rq.Arrival + latency[i],
			},
			span.Span{
				ID: qwID, Parent: reqID,
				Kind: span.KindQueueWait, Name: name,
				Seq: i, Session: rq.Session, Thread: sv.thread,
				Start: rq.Arrival, End: rq.Arrival + wait[i],
			},
			span.Span{
				ID: svcID, Parent: reqID,
				Kind: span.KindService, Name: name,
				Seq: i, Session: rq.Session, Thread: sv.thread,
				Start: sv.startCy, End: sv.endCy,
				GStart: sv.gStart, GEnd: sv.gEnd,
				Buckets:  bucketMap(sv.buckets),
				Events:   evCount[i],
				Counters: counterMap(sv.ctrDelta),
			})
		for _, p := range sv.phases {
			spans = append(spans, span.Span{
				ID: spanID(r), Parent: svcID,
				Kind: span.KindPhase, Name: p.name,
				Seq: i, Session: rq.Session, Thread: sv.thread,
				Start: p.startCy, End: p.endCy,
				Buckets: bucketMap(p.buckets),
			})
		}
	}
	return spans
}

func computeMetrics(sp Spec, svc []perReq, latency, wait []float64, measured []int, makespan float64) Metrics {
	mt := Metrics{Requests: len(measured), Makespan: makespan}
	if makespan > 0 {
		mt.Throughput = float64(len(measured)) / makespan * 1e9
	}
	if len(measured) == 0 {
		for _, slo := range sp.SLOs {
			mt.SLOs = append(mt.SLOs, SLOAttainment{Target: slo})
		}
		return mt
	}
	lats := make([]float64, 0, len(measured))
	for _, i := range measured {
		mt.MeanService += svc[i].service
		mt.MeanWait += wait[i]
		mt.MeanLatency += latency[i]
		lats = append(lats, latency[i])
	}
	n := float64(len(measured))
	mt.MeanService /= n
	mt.MeanWait /= n
	mt.MeanLatency /= n
	sort.Float64s(lats)
	mt.P50 = percentile(lats, 0.50)
	mt.P90 = percentile(lats, 0.90)
	mt.P99 = percentile(lats, 0.99)
	mt.P999 = percentile(lats, 0.999)
	for _, slo := range sp.SLOs {
		met := sort.SearchFloat64s(lats, math.Nextafter(slo, math.Inf(1)))
		mt.SLOs = append(mt.SLOs, SLOAttainment{Target: slo, Attained: float64(met) / n})
	}
	// Power-of-two latency histogram, TraceCostHistogram-style.
	const maxBucket = 60
	var hist [maxBucket + 1]int
	for _, l := range lats {
		b := 0
		if l >= 1 {
			b = int(math.Floor(math.Log2(l))) + 1
			if b > maxBucket {
				b = maxBucket
			}
		}
		hist[b]++
	}
	for b, cnt := range hist {
		if cnt == 0 {
			continue
		}
		hb := HistBucket{Count: cnt}
		if b > 0 {
			hb.Lo = math.Pow(2, float64(b-1))
			hb.Hi = math.Pow(2, float64(b))
		} else {
			hb.Hi = 1
		}
		mt.Hist = append(mt.Hist, hb)
	}
	return mt
}

func computeTail(svc []perReq, latency, wait []float64, measured []int, p999 float64, events []trace.Event) Tail {
	tl := Tail{Threshold: p999}
	if len(measured) == 0 {
		return tl
	}
	var tail []int
	for _, i := range measured {
		if latency[i] >= p999 {
			tail = append(tail, i)
		}
	}
	tl.Count = len(tail)

	// Profile-bucket shares of service-window cycles, all vs tail.
	share := func(set []int) ([]float64, bool) {
		sum := make([]float64, machine.NumBuckets)
		total := 0.0
		any := false
		for _, i := range set {
			if svc[i].buckets == nil {
				continue
			}
			any = true
			for b, c := range svc[i].buckets {
				sum[b] += c
				total += c
			}
		}
		if total > 0 {
			for b := range sum {
				sum[b] /= total
			}
		}
		return sum, any
	}
	allShare, okAll := share(measured)
	tailShare, _ := share(tail)
	if okAll {
		for b := 0; b < int(machine.NumBuckets); b++ {
			if allShare[b] == 0 && tailShare[b] == 0 {
				continue
			}
			tl.Buckets = append(tl.Buckets, Component{
				Name: machine.Bucket(b).String(),
				All:  allShare[b],
				Tail: tailShare[b],
			})
		}
	}

	// Queueing share of latency.
	waitShare := func(set []int) float64 {
		var w, l float64
		for _, i := range set {
			w += wait[i]
			l += latency[i]
		}
		if l == 0 {
			return 0
		}
		return w / l
	}
	tl.QueueWait = Component{Name: "queue_wait", All: waitShare(measured), Tail: waitShare(tail)}

	// Trace-event correlation: count events emitted inside each measured
	// request's service window, per kind. Windows are per-thread and
	// non-overlapping in thread-cycle order, so a binary search places
	// each event.
	if len(events) > 0 {
		byThread := map[int][]int{}
		for _, i := range measured {
			byThread[svc[i].thread] = append(byThread[svc[i].thread], i)
		}
		inTail := make(map[int]bool, len(tail))
		for _, i := range tail {
			inTail[i] = true
		}
		allCounts := make([]float64, len(trace.Kinds()))
		tailCounts := make([]float64, len(trace.Kinds()))
		matched := false
		for _, ev := range events {
			wins := byThread[int(ev.Thread)]
			if ev.Thread < 0 || len(wins) == 0 || int(ev.Kind) >= len(allCounts) {
				continue
			}
			// First window starting after the event, then step back one.
			j := sort.Search(len(wins), func(k int) bool {
				return svc[wins[k]].startCy > ev.Cycle
			})
			if j == 0 {
				continue
			}
			i := wins[j-1]
			if ev.Cycle >= svc[i].endCy {
				continue
			}
			matched = true
			allCounts[ev.Kind]++
			if inTail[i] {
				tailCounts[ev.Kind]++
			}
		}
		if matched {
			nAll := float64(len(measured))
			nTail := float64(len(tail))
			for _, k := range trace.Kinds() {
				if allCounts[k] == 0 && tailCounts[k] == 0 {
					continue
				}
				c := Component{Name: "event:" + k.String(), All: allCounts[k] / nAll}
				if nTail > 0 {
					c.Tail = tailCounts[k] / nTail
				}
				tl.Events = append(tl.Events, c)
			}
		}
	}
	return tl
}

// calRequests bounds the closed-loop calibration run's length.
const calRequests = 128

var (
	calMu   sync.Mutex
	calMemo = map[string]float64{}
)

// newMachineByName builds a fresh machine from its spec name ("Machine A",
// ...), so calibration can mirror a trial machine without aliasing it.
func newMachineByName(name string) *machine.Machine {
	for _, s := range machine.Specs() {
		if s.Name == name {
			return machine.New(s)
		}
	}
	panic("serve: unknown machine " + name)
}

// CalibratedMeanService measures the serving mix's mean closed-loop
// service time (cycles per request, no queueing) on a fresh
// default-configured machine of the named spec, memoized per (machine,
// workers, sizing). Campaign trials and the serve driver both anchor their
// arrival rate and SLO targets to this one number, so every configuration
// of a sweep faces the identical offered load.
func CalibratedMeanService(machineName string, sp Spec) float64 {
	sp = sp.Normalize()
	if sp.Requests > calRequests {
		sp.Requests = calRequests
	}
	key := fmt.Sprintf("%s/w%d/n%d/d%d.%d/j%d/sf%g/s%d", machineName, sp.Workers,
		sp.Requests, sp.DataRows, sp.DataCard, sp.JoinRows, sp.TPCHSF, sp.Seed)
	calMu.Lock()
	v, ok := calMemo[key]
	calMu.Unlock()
	if ok {
		return v
	}
	m := newMachineByName(machineName)
	m.Configure(machine.DefaultConfig(sp.Workers))
	reqs := Arrivals(sp)
	w := prepare(m, sp)
	m.ResetCounters()
	svc, _ := measureService(m, w, reqs, sp.Workers)
	total := 0.0
	for i := range svc {
		total += svc[i].service
	}
	mean := total / float64(len(svc))
	calMu.Lock()
	calMemo[key] = mean
	calMu.Unlock()
	return mean
}

// GapFor converts a calibrated mean service time into the open-loop mean
// inter-arrival gap that offers `util` utilization to `workers` servers
// (util <= 0 defaults to 0.7: loaded, but stable).
func GapFor(meanService float64, workers int, util float64) float64 {
	if util <= 0 {
		util = 0.7
	}
	if workers < 1 {
		workers = 1
	}
	return meanService / (float64(workers) * util)
}

// DefaultSLOs derives the standard latency targets from the calibrated
// mean service time: 5x (interactive), 20x (loaded) and 100x (batch).
func DefaultSLOs(meanService float64) []float64 {
	return []float64{5 * meanService, 20 * meanService, 100 * meanService}
}

// SLOMultiples labels DefaultSLOs in table headers.
func SLOMultiples() []string { return []string{"5x", "20x", "100x"} }

// tuneTPCHSF fixes the WS workload's TPC-H fragment size: campaigns vary
// only the tuner's Size axes, and the fragment stays a small constant of
// the mix either way.
const tuneTPCHSF = 0.001

// TuneSpec derives the WS tuning workload's serving spec from the tuner's
// sizing, on the machine the trial configured: workers follow the trial's
// thread count, the arrival rate and SLOs anchor to the calibrated
// default-config service time (identical for every point of a sweep), and
// the request count scales with the dataset.
func TuneSpec(m *machine.Machine, aggRecords, aggCard, joinR int) Spec {
	req := aggRecords / 32
	if req < 64 {
		req = 64
	}
	if req > 2048 {
		req = 2048
	}
	sp := Spec{
		Requests: req,
		Warmup:   req / 16,
		Workers:  m.Config().Threads,
		Seed:     m.Config().Seed,
		DataRows: aggRecords,
		DataCard: aggCard,
		JoinRows: joinR,
		TPCHSF:   tuneTPCHSF,
	}
	sp = sp.Normalize()
	mean := CalibratedMeanService(m.Spec.Name, sp)
	sp.MeanGap = GapFor(mean, sp.Workers, 0)
	sp.SLOs = DefaultSLOs(mean)
	return sp
}

// TuneObjective is the WS campaign objective: run the serving mix on the
// trial's machine and return its p99 latency in cycles (the quantity a
// latency campaign minimizes, where W1/W3 minimize wall cycles).
func TuneObjective(m *machine.Machine, aggRecords, aggCard, joinR int) float64 {
	return Run(m, TuneSpec(m, aggRecords, aggCard, joinR)).Metrics.P99
}
