// Package trace defines the simulator's cycle-stamped event stream: the
// observability layer beneath the perf-counter totals. The machine, vmm and
// allocator layers emit one Event per interesting mechanism firing — thread
// migrations, page faults and placements, hugepage mappings, collapses and
// splits, AutoNUMA scan passes and page migrations, allocator
// lock-contention stalls, and cache-coherence transfers — through a Sink
// that costs nothing when nil (every hook is guarded by a nil check).
//
// Because events are produced by the same deterministic simulation that
// produces the counters, a fixed seed yields a byte-identical event stream
// regardless of how many grid cells run concurrently around it: each
// simulated machine owns its sink, and events are appended in virtual-time
// execution order.
package trace

import "fmt"

// Kind classifies a simulator event.
type Kind uint8

const (
	// ThreadMigration: a thread moved to a new hardware context. Thread is
	// the mover, From/To its old and new NUMA nodes, Cost the reschedule
	// stall charged.
	ThreadMigration Kind = iota
	// PageFault: a 4KiB page was mapped by demand paging. Addr is the page
	// base, From the touching thread's node, To the node the page was
	// placed on.
	PageFault
	// HugeMap: the THP "always" fault path installed a whole 2MiB mapping.
	// Addr is the group base, From the toucher's node, To the placed node.
	HugeMap
	// PageMigration: a mapped page moved between nodes (AutoNUMA). Addr is
	// the page base, From/To the old and new homes.
	PageMigration
	// HugeCollapse: khugepaged merged 512 base pages into one hugepage.
	// Addr is the group base, To the backing node.
	HugeCollapse
	// HugeSplit: a hugepage was split back into base pages (partial unmap
	// or pre-migration). Addr is the group base, From the backing node.
	HugeSplit
	// AutoNUMAScan: one NUMA-balancing pass completed. Addr carries the
	// number of pages migrated by the pass, Cost the per-thread scan stall
	// it charged (sampling plus hint faults).
	AutoNUMAScan
	// AllocStall: an allocator lock-contention wait. Thread is the caller,
	// Cost the expected wait cycles.
	AllocStall
	// Coherence: a cache-to-cache transfer of a line dirty on another
	// node. Addr is the line base, From the owning node, To the accessor's
	// node, Cost the transfer cycles.
	Coherence
	// OrchDecision: one placement-orchestrator tick completed. Addr is the
	// tick number, Cost the modeled migration cost paid by the tick's
	// actions (0 for observe-only ticks). Always Initiator=InitOrchestrator.
	OrchDecision
	// OrchReweight: the orchestrator pushed (or cleared) interleave
	// weights. Addr is the tick number that decided it.
	OrchReweight

	numKinds
)

// Kinds lists every event kind in emission-stable order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// String returns the kind's stable name (used by exporters and tables).
func (k Kind) String() string {
	switch k {
	case ThreadMigration:
		return "thread_migration"
	case PageFault:
		return "page_fault"
	case HugeMap:
		return "huge_map"
	case PageMigration:
		return "page_migration"
	case HugeCollapse:
		return "huge_collapse"
	case HugeSplit:
		return "huge_split"
	case AutoNUMAScan:
		return "autonuma_scan"
	case AllocStall:
		return "alloc_stall"
	case Coherence:
		return "coherence"
	case OrchDecision:
		return "orch_decision"
	case OrchReweight:
		return "orch_reweight"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Initiator identifies which mechanism caused an event. Page migrations in
// particular are emitted by three different actors — AutoNUMA's balancing
// pass, khugepaged's collapse path, and the placement orchestrator's
// actuator — and the tag is what keeps them distinguishable in summaries
// and Chrome traces.
type Initiator uint8

const (
	// InitDemand: the application's own access path (demand faults, THP
	// fault-path mappings, coherence transfers).
	InitDemand Initiator = iota
	// InitOS: the OS scheduler's random rebalancing of threads.
	InitOS
	// InitAutoNUMA: the NUMA-balancing kernel daemon (scans, hint-fault
	// migrations, the splits they force, and its thread rebalancing).
	InitAutoNUMA
	// InitKhugepaged: the hugepage collapse daemon.
	InitKhugepaged
	// InitOrchestrator: the placement orchestrator's actuator (explicit
	// thread/page moves, splits it forces, decisions, reweights).
	InitOrchestrator
	// InitAlloc: the allocator layer (lock-contention stalls).
	InitAlloc

	numInitiators
)

// Initiators lists every initiator in emission-stable order.
func Initiators() []Initiator {
	is := make([]Initiator, numInitiators)
	for i := range is {
		is[i] = Initiator(i)
	}
	return is
}

// String returns the initiator's stable name (used by exporters and tables).
func (i Initiator) String() string {
	switch i {
	case InitDemand:
		return "demand"
	case InitOS:
		return "os"
	case InitAutoNUMA:
		return "autonuma"
	case InitKhugepaged:
		return "khugepaged"
	case InitOrchestrator:
		return "orchestrator"
	case InitAlloc:
		return "alloc"
	default:
		return fmt.Sprintf("initiator(%d)", int(i))
	}
}

// Event is one cycle-stamped simulator event. Cycle is virtual time: the
// running thread's clock during a quantum, the machine's global clock for
// daemon activity between quanta. Field semantics per kind are documented
// on the Kind constants; -1 marks a field that does not apply.
type Event struct {
	Cycle     float64
	Addr      uint64
	Cost      float64
	Kind      Kind
	Initiator Initiator // which mechanism caused the event
	Thread    int32     // emitting thread id, -1 for kernel daemons
	From      int16     // source NUMA node, -1 if n/a
	To        int16     // destination NUMA node, -1 if n/a
}

// Sink consumes events. Implementations must not retain pointers into the
// simulator; the Event value is self-contained.
type Sink interface {
	Emit(e Event)
}

// Recorder is the standard in-memory sink: it appends every event in
// emission order and keeps running per-kind totals so summaries need no
// second pass.
type Recorder struct {
	Events []Event

	counts   [numKinds]uint64
	costs    [numKinds]float64
	byCaller [numKinds][numInitiators]uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.Events = append(r.Events, e)
	if e.Kind < numKinds {
		r.counts[e.Kind]++
		r.costs[e.Kind] += e.Cost
		if e.Initiator < numInitiators {
			r.byCaller[e.Kind][e.Initiator]++
		}
	}
}

// Count returns how many events of kind k were recorded.
func (r *Recorder) Count(k Kind) uint64 {
	if k >= numKinds {
		return 0
	}
	return r.counts[k]
}

// TotalCost returns the summed Cost of all events of kind k.
func (r *Recorder) TotalCost(k Kind) float64 {
	if k >= numKinds {
		return 0
	}
	return r.costs[k]
}

// CountBy returns how many events of kind k were recorded with the given
// initiator tag.
func (r *Recorder) CountBy(k Kind, i Initiator) uint64 {
	if k >= numKinds || i >= numInitiators {
		return 0
	}
	return r.byCaller[k][i]
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.Events) }

// Reset drops all recorded events and totals, keeping the backing storage.
func (r *Recorder) Reset() {
	r.Events = r.Events[:0]
	r.counts = [numKinds]uint64{}
	r.costs = [numKinds]float64{}
	r.byCaller = [numKinds][numInitiators]uint64{}
}
