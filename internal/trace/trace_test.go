package trace

import "testing"

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if len(seen) != int(numKinds) {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(seen), numKinds)
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("out-of-range kind rendered %q", got)
	}
}

func TestRecorderCountsAndCosts(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: PageFault, Cycle: 10, Thread: 0})
	r.Emit(Event{Kind: PageFault, Cycle: 20, Thread: 1})
	r.Emit(Event{Kind: Coherence, Cycle: 30, Cost: 130})
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	if r.Count(PageFault) != 2 || r.Count(Coherence) != 1 || r.Count(HugeSplit) != 0 {
		t.Fatalf("counts wrong: fault=%d coherence=%d split=%d",
			r.Count(PageFault), r.Count(Coherence), r.Count(HugeSplit))
	}
	if r.TotalCost(Coherence) != 130 {
		t.Fatalf("TotalCost(Coherence) = %v, want 130", r.TotalCost(Coherence))
	}
	if len(r.Events) != 3 || r.Events[1].Cycle != 20 {
		t.Fatalf("event stream not preserved in order: %+v", r.Events)
	}
	r.Reset()
	if r.Len() != 0 || r.Count(PageFault) != 0 || r.TotalCost(Coherence) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}
