package datagen

import "repro/internal/memo"

// The experiment drivers regenerate identical datasets for every grid cell
// (same distribution, size, cardinality and seed), even though generation
// is deterministic and the records are read-only once built. These cached
// variants build each distinct dataset once per process and share it across
// cells — including cells running concurrently on the grid runner's worker
// pool. Callers must not mutate the returned slices.

type genKey struct {
	dist    Distribution
	n, card int
	seed    uint64
}

type joinKey struct {
	rSize, ratio int
	seed         uint64
}

var (
	genCache  memo.Table[genKey, []Record]
	joinCache memo.Table[joinKey, JoinTables]
)

// CachedGenerate is Generate memoized on (dist, n, cardinality, seed). The
// returned records are shared and must be treated as immutable.
func CachedGenerate(dist Distribution, n, cardinality int, seed uint64) []Record {
	return genCache.Get(genKey{dist, n, cardinality, seed}, func() []Record {
		return Generate(dist, n, cardinality, seed)
	})
}

// CachedJoin is Join memoized on (rSize, ratio, seed). The returned tables
// are shared and must be treated as immutable.
func CachedJoin(rSize, ratio int, seed uint64) JoinTables {
	return joinCache.Get(joinKey{rSize, ratio, seed}, func() JoinTables {
		return Join(rSize, ratio, seed)
	})
}

// CacheStats reports combined hits and misses of the dataset caches.
func CacheStats() (hits, misses uint64) {
	gh, gm := genCache.Stats()
	jh, jm := joinCache.Stats()
	return gh + jh, gm + jm
}

// ResetCache drops every cached dataset (used by tests and long-lived
// processes that want the memory back).
func ResetCache() {
	genCache.Reset()
	joinCache.Reset()
}
