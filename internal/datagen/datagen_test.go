package datagen

import (
	"testing"
	"testing/quick"
)

func TestMovingClusterProperties(t *testing.T) {
	const n, card = 10000, 1000
	recs := MovingCluster(n, card, 1)
	if len(recs) != n {
		t.Fatalf("len = %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Key >= card {
			t.Fatalf("record %d key %d out of domain", i, r.Key)
		}
	}
	// Early keys should be drawn from a low window, late keys from a high
	// window: the cluster moves.
	early, late := 0.0, 0.0
	for i := 0; i < 1000; i++ {
		early += float64(recs[i].Key)
		late += float64(recs[n-1-i].Key)
	}
	if late <= early*2 {
		t.Errorf("window should slide upward: early mean %v, late mean %v", early/1000, late/1000)
	}
}

func TestSequentialSegments(t *testing.T) {
	const n, card = 1000, 100
	recs := Sequential(n, card)
	// Keys must be non-decreasing and cover the cardinality.
	seen := map[uint64]int{}
	for i := 1; i < n; i++ {
		if recs[i].Key < recs[i-1].Key {
			t.Fatalf("keys must be non-decreasing at %d", i)
		}
	}
	for _, r := range recs {
		seen[r.Key]++
	}
	if len(seen) != card {
		t.Errorf("distinct keys = %d, want %d", len(seen), card)
	}
	for k, c := range seen {
		if c != n/card {
			t.Errorf("key %d has %d records, want %d", k, c, n/card)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, card = 50000, 1000
	recs := Zipfian(n, card, 0.5, 3)
	counts := map[uint64]int{}
	for _, r := range recs {
		if r.Key >= card {
			t.Fatalf("key %d out of domain", r.Key)
		}
		counts[r.Key]++
	}
	if counts[0] <= n/card {
		t.Errorf("rank-0 count %d should exceed uniform share %d", counts[0], n/card)
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, d := range Distributions() {
		recs := Generate(d, 100, 10, 1)
		if len(recs) != 100 {
			t.Errorf("%s: len = %d", d, len(recs))
		}
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("nope", 10, 10, 1)
}

func TestDeterminism(t *testing.T) {
	a := MovingCluster(1000, 100, 7)
	b := MovingCluster(1000, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical datasets")
		}
	}
	c := MovingCluster(1000, 100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds should differ")
	}
}

func TestJoinTables(t *testing.T) {
	jt := Join(1000, DefaultJoinRatio, 5)
	if len(jt.S) != 16*len(jt.R) {
		t.Fatalf("|S| = %d, want 16x|R| = %d", len(jt.S), 16*len(jt.R))
	}
	// R keys are a permutation of [0, rSize).
	seen := make([]bool, len(jt.R))
	for _, r := range jt.R {
		if r.Key >= uint64(len(jt.R)) || seen[r.Key] {
			t.Fatal("R keys must be unique and in range")
		}
		seen[r.Key] = true
	}
	// Every S key references an existing R key.
	for _, s := range jt.S {
		if s.Key >= uint64(len(jt.R)) {
			t.Fatalf("S key %d dangles", s.Key)
		}
	}
}

func TestJoinReferentialIntegrityProperty(t *testing.T) {
	f := func(sizeRaw uint8, seed uint64) bool {
		size := int(sizeRaw)%100 + 10
		jt := Join(size, 4, seed)
		for _, s := range jt.S {
			if s.Key >= uint64(size) {
				return false
			}
		}
		return len(jt.S) == 4*size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCachedGenerateSharesOneBuild(t *testing.T) {
	ResetCache()
	a := CachedGenerate(MovingClusterDist, 1000, 100, 11)
	b := CachedGenerate(MovingClusterDist, 1000, 100, 11)
	if &a[0] != &b[0] {
		t.Error("identical inputs should share one cached dataset")
	}
	c := CachedGenerate(MovingClusterDist, 1000, 100, 12)
	if &a[0] == &c[0] {
		t.Error("different seeds must not share a dataset")
	}
	fresh := Generate(MovingClusterDist, 1000, 100, 11)
	for i := range fresh {
		if a[i] != fresh[i] {
			t.Fatalf("cached dataset diverges from a fresh build at record %d", i)
		}
	}
	if hits, misses := CacheStats(); hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	ResetCache()
}

func TestCachedJoinSharesOneBuild(t *testing.T) {
	ResetCache()
	a := CachedJoin(500, DefaultJoinRatio, 17)
	b := CachedJoin(500, DefaultJoinRatio, 17)
	if &a.R[0] != &b.R[0] || &a.S[0] != &b.S[0] {
		t.Error("identical inputs should share one cached join dataset")
	}
	fresh := Join(500, DefaultJoinRatio, 17)
	for i := range fresh.R {
		if a.R[i] != fresh.R[i] {
			t.Fatalf("cached R diverges at %d", i)
		}
	}
	ResetCache()
}
