package datagen

import (
	"testing"
	"testing/quick"
)

func TestMovingClusterProperties(t *testing.T) {
	const n, card = 10000, 1000
	recs := MovingCluster(n, card, 1)
	if len(recs) != n {
		t.Fatalf("len = %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Key >= card {
			t.Fatalf("record %d key %d out of domain", i, r.Key)
		}
	}
	// Early keys should be drawn from a low window, late keys from a high
	// window: the cluster moves.
	early, late := 0.0, 0.0
	for i := 0; i < 1000; i++ {
		early += float64(recs[i].Key)
		late += float64(recs[n-1-i].Key)
	}
	if late <= early*2 {
		t.Errorf("window should slide upward: early mean %v, late mean %v", early/1000, late/1000)
	}
}

func TestSequentialSegments(t *testing.T) {
	const n, card = 1000, 100
	recs := Sequential(n, card)
	// Keys must be non-decreasing and cover the cardinality.
	seen := map[uint64]int{}
	for i := 1; i < n; i++ {
		if recs[i].Key < recs[i-1].Key {
			t.Fatalf("keys must be non-decreasing at %d", i)
		}
	}
	for _, r := range recs {
		seen[r.Key]++
	}
	if len(seen) != card {
		t.Errorf("distinct keys = %d, want %d", len(seen), card)
	}
	for k, c := range seen {
		if c != n/card {
			t.Errorf("key %d has %d records, want %d", k, c, n/card)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, card = 50000, 1000
	recs := Zipfian(n, card, 0.5, 3)
	counts := map[uint64]int{}
	for _, r := range recs {
		if r.Key >= card {
			t.Fatalf("key %d out of domain", r.Key)
		}
		counts[r.Key]++
	}
	if counts[0] <= n/card {
		t.Errorf("rank-0 count %d should exceed uniform share %d", counts[0], n/card)
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, d := range Distributions() {
		recs := Generate(d, 100, 10, 1)
		if len(recs) != 100 {
			t.Errorf("%s: len = %d", d, len(recs))
		}
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("nope", 10, 10, 1)
}

func TestDeterminism(t *testing.T) {
	a := MovingCluster(1000, 100, 7)
	b := MovingCluster(1000, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical datasets")
		}
	}
	c := MovingCluster(1000, 100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds should differ")
	}
}

func TestJoinTables(t *testing.T) {
	jt := Join(1000, DefaultJoinRatio, 5)
	if len(jt.S) != 16*len(jt.R) {
		t.Fatalf("|S| = %d, want 16x|R| = %d", len(jt.S), 16*len(jt.R))
	}
	// R keys are a permutation of [0, rSize).
	seen := make([]bool, len(jt.R))
	for _, r := range jt.R {
		if r.Key >= uint64(len(jt.R)) || seen[r.Key] {
			t.Fatal("R keys must be unique and in range")
		}
		seen[r.Key] = true
	}
	// Every S key references an existing R key.
	for _, s := range jt.S {
		if s.Key >= uint64(len(jt.R)) {
			t.Fatalf("S key %d dangles", s.Key)
		}
	}
}

func TestJoinReferentialIntegrityProperty(t *testing.T) {
	f := func(sizeRaw uint8, seed uint64) bool {
		size := int(sizeRaw)%100 + 10
		jt := Join(size, 4, seed)
		for _, s := range jt.S {
			if s.Key >= uint64(size) {
				return false
			}
		}
		return len(jt.S) == 4*size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
