// Package datagen generates the synthetic datasets of the paper's
// workloads: the Moving Cluster, Sequential and Zipfian key distributions
// used by the aggregation queries (W1, W2), and the two-table 1:16
// decision-support join dataset of Blanas et al. used by the join queries
// (W3, W4).
//
// All generators are deterministic in their seed. Sizes are parameters so
// tests run tiny datasets while benchmarks run simulator scale (the paper's
// 100M-row datasets, scaled down ~50x with cache ratios preserved — see
// DESIGN.md).
package datagen

import "repro/internal/xrand"

// Record is one key/value tuple.
type Record struct {
	Key uint64
	Val uint64
}

// Distribution names a dataset distribution from Table IV.
type Distribution string

// The aggregation dataset distributions of Section IV-B.
const (
	MovingClusterDist Distribution = "MovingCluster"
	SequentialDist    Distribution = "Sequential"
	ZipfDist          Distribution = "Zipf"
)

// Distributions lists the aggregation distributions in the paper's order.
func Distributions() []Distribution {
	return []Distribution{MovingClusterDist, SequentialDist, ZipfDist}
}

// Generate builds n records with the given group-by cardinality under the
// named distribution.
func Generate(dist Distribution, n, cardinality int, seed uint64) []Record {
	switch dist {
	case MovingClusterDist:
		return MovingCluster(n, cardinality, seed)
	case SequentialDist:
		return Sequential(n, cardinality)
	case ZipfDist:
		return Zipfian(n, cardinality, 0.5, seed)
	default:
		panic("datagen: unknown distribution " + string(dist))
	}
}

// MovingCluster draws keys from a window that slides gradually across the
// key domain, mimicking the locality drift of streaming and spatial
// workloads (the paper's default for W1).
func MovingCluster(n, cardinality int, seed uint64) []Record {
	r := xrand.New(seed)
	recs := make([]Record, n)
	window := cardinality / 10
	if window < 1 {
		window = 1
	}
	span := cardinality - window
	for i := range recs {
		start := 0
		if span > 0 && n > 1 {
			start = int(uint64(span) * uint64(i) / uint64(n-1))
		}
		recs[i] = Record{
			Key: uint64(start + r.Intn(window)),
			Val: r.Uint64() % 1000,
		}
	}
	return recs
}

// Sequential emits cardinality segments of equal length with incrementally
// increasing keys, mimicking transactional data (the paper's default for
// W3/W4 key order).
func Sequential(n, cardinality int) []Record {
	recs := make([]Record, n)
	if cardinality < 1 {
		cardinality = 1
	}
	segment := n / cardinality
	if segment < 1 {
		segment = 1
	}
	for i := range recs {
		key := uint64(i / segment)
		if key >= uint64(cardinality) {
			key = uint64(cardinality - 1)
		}
		recs[i] = Record{Key: key, Val: uint64(i) % 1000}
	}
	return recs
}

// Zipfian samples keys from a Zipf distribution with the given exponent
// (the paper uses e = 0.5 and defaults W2 to this dataset).
func Zipfian(n, cardinality int, exponent float64, seed uint64) []Record {
	r := xrand.New(seed)
	z := xrand.NewZipf(r, exponent, uint64(cardinality))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: z.Uint64(), Val: r.Uint64() % 1000}
	}
	return recs
}

// JoinTables is the Blanas-style decision-support join dataset: a primary
// table R of unique keys and a 16x larger foreign table S whose keys all
// reference R.
type JoinTables struct {
	R []Record // primary: Key is a unique id, Val a payload
	S []Record // foreign: Key references an R key
}

// DefaultJoinRatio is |S| / |R| in the paper's W3/W4 dataset.
const DefaultJoinRatio = 16

// Join generates R with rSize unique keys (shuffled) and S with
// rSize*ratio tuples whose keys reference R uniformly.
func Join(rSize, ratio int, seed uint64) JoinTables {
	r := xrand.New(seed)
	jt := JoinTables{
		R: make([]Record, rSize),
		S: make([]Record, rSize*ratio),
	}
	for i := range jt.R {
		jt.R[i] = Record{Key: uint64(i), Val: r.Uint64() % 1000}
	}
	r.Shuffle(len(jt.R), func(i, j int) { jt.R[i], jt.R[j] = jt.R[j], jt.R[i] })
	for i := range jt.S {
		jt.S[i] = Record{Key: r.Uint64n(uint64(rSize)), Val: r.Uint64() % 1000}
	}
	return jt
}
