// Package topology describes NUMA machine topologies: nodes, the
// interconnect links between them, hop distances and relative memory access
// latencies.
//
// A Topology is a static description consumed by the machine simulator; it
// carries no mutable state. The three machines evaluated by the paper
// (Table II and Figure 1) are available as presets: MachineA (an 8-node AMD
// "twisted ladder"), MachineB and MachineC (4-node fully connected Intel
// boxes with very different remote-access latency ratios).
package topology

import (
	"fmt"
	"strings"
)

// NodeID identifies a NUMA node within a topology.
type NodeID int

// Topology is an immutable description of a NUMA machine's node graph and
// its relative memory access latencies.
type Topology struct {
	name      string
	nodes     int
	links     [][]bool    // adjacency matrix
	hops      [][]int     // shortest-path hop counts
	latency   [][]float64 // relative access latency (local == 1.0)
	bandwidth float64     // per-link interconnect bandwidth, GT/s
}

// Config describes a topology to be built with New.
type Config struct {
	// Name is a human-readable label, e.g. "Machine A".
	Name string
	// Nodes is the number of NUMA nodes; must be >= 1.
	Nodes int
	// Links lists undirected interconnect links as node pairs.
	Links [][2]int
	// HopLatency maps hop count -> relative memory latency. Index 0 is
	// local access latency and must be 1.0. The table must cover the
	// topology's diameter.
	HopLatency []float64
	// LinkBandwidthGTs is the per-link interconnect bandwidth in
	// gigatransfers per second (Table II "Interconnect Bandwidth").
	LinkBandwidthGTs float64
}

// New validates cfg and builds a Topology, computing hop distances by BFS
// and latencies from the hop-latency table.
func New(cfg Config) (*Topology, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("topology %q: need at least one node, got %d", cfg.Name, cfg.Nodes)
	}
	if len(cfg.HopLatency) == 0 || cfg.HopLatency[0] != 1.0 {
		return nil, fmt.Errorf("topology %q: HopLatency[0] must be 1.0 (local access)", cfg.Name)
	}
	if cfg.LinkBandwidthGTs <= 0 {
		return nil, fmt.Errorf("topology %q: link bandwidth must be positive", cfg.Name)
	}
	t := &Topology{
		name:      cfg.Name,
		nodes:     cfg.Nodes,
		bandwidth: cfg.LinkBandwidthGTs,
	}
	t.links = make([][]bool, cfg.Nodes)
	for i := range t.links {
		t.links[i] = make([]bool, cfg.Nodes)
	}
	for _, l := range cfg.Links {
		a, b := l[0], l[1]
		if a < 0 || a >= cfg.Nodes || b < 0 || b >= cfg.Nodes {
			return nil, fmt.Errorf("topology %q: link (%d,%d) references unknown node", cfg.Name, a, b)
		}
		if a == b {
			return nil, fmt.Errorf("topology %q: self-link on node %d", cfg.Name, a)
		}
		t.links[a][b] = true
		t.links[b][a] = true
	}
	var err error
	t.hops, err = bfsAll(t.links)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", cfg.Name, err)
	}
	t.latency = make([][]float64, cfg.Nodes)
	for i := range t.latency {
		t.latency[i] = make([]float64, cfg.Nodes)
		for j := range t.latency[i] {
			h := t.hops[i][j]
			if h >= len(cfg.HopLatency) {
				return nil, fmt.Errorf("topology %q: hop latency table has %d entries but diameter needs %d",
					cfg.Name, len(cfg.HopLatency), h+1)
			}
			t.latency[i][j] = cfg.HopLatency[h]
		}
	}
	return t, nil
}

// MustNew is New but panics on error; intended for the package presets and
// tests with known-good configurations.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// bfsAll computes all-pairs shortest hop counts, verifying connectivity.
func bfsAll(links [][]bool) ([][]int, error) {
	n := len(links)
	hops := make([][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if links[u][v] && dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v, d := range dist {
			if d < 0 {
				return nil, fmt.Errorf("node %d unreachable from node %d", v, src)
			}
		}
		hops[src] = dist
	}
	return hops, nil
}

// Name returns the topology's human-readable label.
func (t *Topology) Name() string { return t.name }

// Nodes returns the number of NUMA nodes.
func (t *Topology) Nodes() int { return t.nodes }

// Linked reports whether nodes a and b share a direct interconnect link.
func (t *Topology) Linked(a, b NodeID) bool { return t.links[a][b] }

// Hops returns the minimum number of interconnect hops between two nodes
// (0 for a == b).
func (t *Topology) Hops(a, b NodeID) int { return t.hops[a][b] }

// Latency returns the relative memory access latency from a thread on node
// a to memory on node b, with local access normalized to 1.0.
func (t *Topology) Latency(a, b NodeID) float64 { return t.latency[a][b] }

// Diameter returns the maximum hop count between any pair of nodes.
func (t *Topology) Diameter() int {
	d := 0
	for i := 0; i < t.nodes; i++ {
		for j := 0; j < t.nodes; j++ {
			if t.hops[i][j] > d {
				d = t.hops[i][j]
			}
		}
	}
	return d
}

// LinkBandwidthGTs returns the per-link interconnect bandwidth in GT/s.
func (t *Topology) LinkBandwidthGTs() float64 { return t.bandwidth }

// Route returns a shortest path from a to b as a sequence of nodes,
// beginning with a and ending with b. Ties are broken toward lower node
// IDs so that routing is deterministic.
func (t *Topology) Route(a, b NodeID) []NodeID {
	path := []NodeID{a}
	cur := a
	for cur != b {
		next := NodeID(-1)
		for v := 0; v < t.nodes; v++ {
			if t.links[cur][v] && t.hops[v][b] == t.hops[cur][b]-1 {
				next = NodeID(v)
				break
			}
		}
		if next < 0 {
			// Unreachable by construction (New verifies connectivity).
			panic(fmt.Sprintf("topology %q: no route from %d to %d", t.name, a, b))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// String renders a compact summary, e.g. "Machine A: 8 nodes, diameter 3".
func (t *Topology) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d nodes, diameter %d, %.1f GT/s links", t.name, t.nodes, t.Diameter(), t.bandwidth)
	return sb.String()
}
