package topology

// Presets for the three machines evaluated in the paper (Figure 1 and
// Table II). The topology layer captures the node graph, relative latency
// table and interconnect bandwidth; core counts, cache and TLB geometry
// live with the machine simulator.

// MachineA returns the 8-node AMD Opteron "twisted ladder" topology.
//
// Each node has three HyperTransport links and the machine exhibits three
// distinct remote latencies (1, 2 and 3 hops at 1.2x, 1.4x and 1.6x local).
// We realize the twisted ladder as the 3-regular, diameter-3 hypercube
// wiring, which matches the paper's link count per node and its hop/latency
// structure exactly.
func MachineA() *Topology {
	var links [][2]int
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			x := a ^ b
			if x&(x-1) == 0 { // differ in exactly one bit
				links = append(links, [2]int{a, b})
			}
		}
	}
	return MustNew(Config{
		Name:             "Machine A",
		Nodes:            8,
		Links:            links,
		HopLatency:       []float64{1.0, 1.2, 1.4, 1.6},
		LinkBandwidthGTs: 2.0,
	})
}

// MachineB returns the 4-node fully connected Intel Xeon E7520 topology,
// whose remote accesses are only 1.1x local latency.
func MachineB() *Topology {
	return MustNew(Config{
		Name:             "Machine B",
		Nodes:            4,
		Links:            fullMesh(4),
		HopLatency:       []float64{1.0, 1.1},
		LinkBandwidthGTs: 4.8,
	})
}

// MachineC returns the 4-node fully connected Intel Xeon E7-4850 v4
// topology, whose remote accesses cost 2.1x local latency.
func MachineC() *Topology {
	return MustNew(Config{
		Name:             "Machine C",
		Nodes:            4,
		Links:            fullMesh(4),
		HopLatency:       []float64{1.0, 2.1},
		LinkBandwidthGTs: 8.0,
	})
}

// MachineD returns an 8-node chiplet topology modeled on a two-socket
// EPYC-class box: each socket is a 4-node fully connected on-package mesh
// (sub-NUMA domains one hop apart at near-local latency), and the sockets
// join through a single cross-package link between nodes 0 and 4. Crossing
// the package boundary costs 2.1x local, and reaching a non-gateway node of
// the remote socket adds an on-package hop on top (2.5x).
func MachineD() *Topology {
	links := fullMesh(4)
	for _, l := range fullMesh(4) {
		links = append(links, [2]int{l[0] + 4, l[1] + 4})
	}
	links = append(links, [2]int{0, 4})
	return MustNew(Config{
		Name:             "Machine D",
		Nodes:            8,
		Links:            links,
		HopLatency:       []float64{1.0, 1.28, 2.1, 2.5},
		LinkBandwidthGTs: 16.0,
	})
}

// MachineE returns a 16-node 4x4 grid mesh, the shape of a large mesh
// interconnect (or a multi-board fabric) where each node links only to its
// grid neighbours. The diameter is 6 hops and latency climbs gently but
// strictly with distance, so placement quality matters more than on any of
// the paper's three machines.
func MachineE() *Topology {
	var links [][2]int
	const side = 4
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				links = append(links, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < side {
				links = append(links, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return MustNew(Config{
		Name:             "Machine E",
		Nodes:            16,
		Links:            links,
		HopLatency:       []float64{1.0, 1.15, 1.35, 1.6, 1.9, 2.25, 2.65},
		LinkBandwidthGTs: 25.0,
	})
}

func fullMesh(n int) [][2]int {
	var links [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			links = append(links, [2]int{a, b})
		}
	}
	return links
}
