package topology

import "testing"

// allPresets returns every machine preset the repository ships.
func allPresets() []*Topology {
	return []*Topology{MachineA(), MachineB(), MachineC(), MachineD(), MachineE()}
}

// TestPresetStructuralProperties validates the invariants every preset's
// hop and latency matrices must satisfy: symmetry, a zero/unit diagonal,
// positive off-diagonal distances, the triangle inequality on latency,
// latency monotone (strictly) in hop distance, and a positive link
// bandwidth. A preset edit that breaks any of these would silently skew
// every experiment run on that machine.
func TestPresetStructuralProperties(t *testing.T) {
	for _, topo := range allPresets() {
		t.Run(topo.Name(), func(t *testing.T) {
			n := topo.Nodes()
			if topo.LinkBandwidthGTs() <= 0 {
				t.Errorf("link bandwidth %v, want > 0", topo.LinkBandwidthGTs())
			}
			for a := 0; a < n; a++ {
				if h := topo.Hops(NodeID(a), NodeID(a)); h != 0 {
					t.Errorf("Hops(%d,%d) = %d, want 0", a, a, h)
				}
				if l := topo.Latency(NodeID(a), NodeID(a)); l != 1.0 {
					t.Errorf("Latency(%d,%d) = %v, want 1.0", a, a, l)
				}
				for b := 0; b < n; b++ {
					ha, hb := topo.Hops(NodeID(a), NodeID(b)), topo.Hops(NodeID(b), NodeID(a))
					if ha != hb {
						t.Errorf("hop matrix asymmetric: (%d,%d)=%d vs (%d,%d)=%d", a, b, ha, b, a, hb)
					}
					la, lb := topo.Latency(NodeID(a), NodeID(b)), topo.Latency(NodeID(b), NodeID(a))
					if la != lb {
						t.Errorf("latency matrix asymmetric: (%d,%d)=%v vs (%d,%d)=%v", a, b, la, b, a, lb)
					}
					if a != b && (ha < 1 || la <= 1.0) {
						t.Errorf("remote pair (%d,%d): hops=%d latency=%v, want >=1 hop and >1.0x", a, b, ha, la)
					}
				}
			}
			// Triangle inequality: relaying through any intermediate node
			// must never be cheaper than the direct latency, or the
			// simulated interconnect would reward absurd routings.
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					for c := 0; c < n; c++ {
						direct := topo.Latency(NodeID(a), NodeID(c))
						relay := topo.Latency(NodeID(a), NodeID(b)) + topo.Latency(NodeID(b), NodeID(c))
						if direct > relay+1e-12 {
							t.Fatalf("triangle inequality violated: lat(%d,%d)=%v > lat(%d,%d)+lat(%d,%d)=%v",
								a, c, direct, a, b, b, c, relay)
						}
					}
				}
			}
			// Latency strictly monotone in hop distance: more hops must
			// cost strictly more, over every hop count the preset realizes.
			byHops := map[int]float64{}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					h := topo.Hops(NodeID(a), NodeID(b))
					l := topo.Latency(NodeID(a), NodeID(b))
					if prev, ok := byHops[h]; ok && prev != l {
						t.Fatalf("hop count %d maps to two latencies: %v and %v", h, prev, l)
					}
					byHops[h] = l
				}
			}
			for h := 1; h <= topo.Diameter(); h++ {
				lo, okLo := byHops[h-1]
				hi, okHi := byHops[h]
				if okLo && okHi && hi <= lo {
					t.Errorf("latency not strictly monotone: %d hops = %v, %d hops = %v", h-1, lo, h, hi)
				}
			}
		})
	}
}

// TestPresetShapes pins each preset's headline numbers so a preset edit
// is a conscious decision, not an accident.
func TestPresetShapes(t *testing.T) {
	cases := []struct {
		topo     *Topology
		nodes    int
		diameter int
	}{
		{MachineA(), 8, 3},
		{MachineB(), 4, 1},
		{MachineC(), 4, 1},
		{MachineD(), 8, 3},
		{MachineE(), 16, 6},
	}
	for _, c := range cases {
		if got := c.topo.Nodes(); got != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.topo.Name(), got, c.nodes)
		}
		if got := c.topo.Diameter(); got != c.diameter {
			t.Errorf("%s: diameter %d, want %d", c.topo.Name(), got, c.diameter)
		}
	}
}

// TestMachineDChipletStructure checks D's two-socket shape: on-package
// pairs are one hop, the only cross-package link is 0-4, and every
// cross-package route crosses it.
func TestMachineDChipletStructure(t *testing.T) {
	topo := MachineD()
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			samePkg := (a < 4) == (b < 4)
			h := topo.Hops(NodeID(a), NodeID(b))
			if samePkg && h != 1 {
				t.Errorf("on-package pair (%d,%d): %d hops, want 1", a, b, h)
			}
			if !samePkg && h < 2 && !(a == 0 && b == 4 || a == 4 && b == 0) {
				t.Errorf("cross-package pair (%d,%d): %d hops, want >= 2", a, b, h)
			}
		}
	}
	if !topo.Linked(0, 4) {
		t.Error("gateway link 0-4 missing")
	}
}
