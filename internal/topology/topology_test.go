package topology

import (
	"testing"
	"testing/quick"
)

func TestMachineAShape(t *testing.T) {
	a := MachineA()
	if a.Nodes() != 8 {
		t.Fatalf("Machine A nodes = %d, want 8", a.Nodes())
	}
	if a.Diameter() != 3 {
		t.Fatalf("Machine A diameter = %d, want 3", a.Diameter())
	}
	// Three links per node, like the Opteron's HyperTransport fabric.
	for i := 0; i < 8; i++ {
		deg := 0
		for j := 0; j < 8; j++ {
			if a.Linked(NodeID(i), NodeID(j)) {
				deg++
			}
		}
		if deg != 3 {
			t.Errorf("node %d degree = %d, want 3", i, deg)
		}
	}
	// Three distinct remote latencies.
	seen := map[float64]bool{}
	for j := 1; j < 8; j++ {
		seen[a.Latency(0, NodeID(j))] = true
	}
	for _, want := range []float64{1.2, 1.4, 1.6} {
		if !seen[want] {
			t.Errorf("Machine A missing remote latency %v (have %v)", want, seen)
		}
	}
}

func TestFullyConnectedMachines(t *testing.T) {
	for _, tc := range []struct {
		top    *Topology
		remote float64
	}{
		{MachineB(), 1.1},
		{MachineC(), 2.1},
	} {
		if tc.top.Nodes() != 4 {
			t.Fatalf("%s nodes = %d, want 4", tc.top.Name(), tc.top.Nodes())
		}
		if tc.top.Diameter() != 1 {
			t.Errorf("%s diameter = %d, want 1", tc.top.Name(), tc.top.Diameter())
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := 1.0
				if i != j {
					want = tc.remote
				}
				if got := tc.top.Latency(NodeID(i), NodeID(j)); got != want {
					t.Errorf("%s latency(%d,%d) = %v, want %v", tc.top.Name(), i, j, got, want)
				}
			}
		}
	}
}

func TestLatencySymmetry(t *testing.T) {
	for _, top := range []*Topology{MachineA(), MachineB(), MachineC()} {
		n := top.Nodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if top.Latency(NodeID(i), NodeID(j)) != top.Latency(NodeID(j), NodeID(i)) {
					t.Errorf("%s: latency not symmetric for (%d,%d)", top.Name(), i, j)
				}
				if top.Hops(NodeID(i), NodeID(j)) != top.Hops(NodeID(j), NodeID(i)) {
					t.Errorf("%s: hops not symmetric for (%d,%d)", top.Name(), i, j)
				}
			}
		}
	}
}

func TestLocalIsFastest(t *testing.T) {
	for _, top := range []*Topology{MachineA(), MachineB(), MachineC()} {
		n := top.Nodes()
		for i := 0; i < n; i++ {
			if top.Latency(NodeID(i), NodeID(i)) != 1.0 {
				t.Errorf("%s: local latency on node %d != 1.0", top.Name(), i)
			}
			for j := 0; j < n; j++ {
				if i != j && top.Latency(NodeID(i), NodeID(j)) <= 1.0 {
					t.Errorf("%s: remote latency (%d,%d) not above local", top.Name(), i, j)
				}
			}
		}
	}
}

func TestRouteProperties(t *testing.T) {
	top := MachineA()
	f := func(aRaw, bRaw uint8) bool {
		a := NodeID(aRaw % 8)
		b := NodeID(bRaw % 8)
		path := top.Route(a, b)
		if path[0] != a || path[len(path)-1] != b {
			return false
		}
		if len(path)-1 != top.Hops(a, b) {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if !top.Linked(path[i], path[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteDeterministic(t *testing.T) {
	top := MachineA()
	p1 := top.Route(0, 7)
	p2 := top.Route(0, 7)
	if len(p1) != len(p2) {
		t.Fatal("route lengths differ between calls")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("route is not deterministic")
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero nodes", Config{Name: "x", Nodes: 0, HopLatency: []float64{1}, LinkBandwidthGTs: 1}},
		{"bad local latency", Config{Name: "x", Nodes: 1, HopLatency: []float64{2}, LinkBandwidthGTs: 1}},
		{"no bandwidth", Config{Name: "x", Nodes: 1, HopLatency: []float64{1}}},
		{"self link", Config{Name: "x", Nodes: 2, Links: [][2]int{{0, 0}}, HopLatency: []float64{1, 1.5}, LinkBandwidthGTs: 1}},
		{"out of range link", Config{Name: "x", Nodes: 2, Links: [][2]int{{0, 5}}, HopLatency: []float64{1, 1.5}, LinkBandwidthGTs: 1}},
		{"disconnected", Config{Name: "x", Nodes: 3, Links: [][2]int{{0, 1}}, HopLatency: []float64{1, 1.5}, LinkBandwidthGTs: 1}},
		{"latency table too short", Config{Name: "x", Nodes: 3, Links: [][2]int{{0, 1}, {1, 2}}, HopLatency: []float64{1, 1.5}, LinkBandwidthGTs: 1}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSingleNode(t *testing.T) {
	top, err := New(Config{Name: "UMA", Nodes: 1, HopLatency: []float64{1}, LinkBandwidthGTs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if top.Diameter() != 0 || top.Latency(0, 0) != 1.0 {
		t.Error("single-node topology should be trivially local")
	}
}

func TestString(t *testing.T) {
	s := MachineA().String()
	if s == "" {
		t.Error("String() should not be empty")
	}
}
