package vmm

import (
	"testing"

	"repro/internal/topology"
)

// Failure-injection tests: the vmm's behaviour at and beyond capacity.

func TestCapacityFallbackPrefersNearNodes(t *testing.T) {
	m := New(topology.MachineA(), 4*PageSize) // 4 pages per node
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(16*PageSize, 0)
	// Node 0 fills after 4 faults; the fallback must then pick 1-hop
	// neighbours before farther nodes (on the Machine A hypercube, node
	// 0's neighbours are 1, 2 and 4).
	for i := uint64(0); i < 8; i++ {
		f := m.Fault(r.Base+i*PageSize, 0)
		if i < 4 {
			if f.Node != 0 {
				t.Fatalf("page %d on node %d, want 0", i, f.Node)
			}
			continue
		}
		if topology.MachineA().Hops(0, f.Node) != 1 {
			t.Fatalf("overflow page %d on node %d (hops %d), want a 1-hop neighbour",
				i, f.Node, topology.MachineA().Hops(0, f.Node))
		}
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	m := New(topology.MachineB(), PageSize) // one page per node
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(8*PageSize, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when all nodes are full")
		}
	}()
	for i := uint64(0); i < 8; i++ {
		m.Fault(r.Base+i*PageSize, 0)
	}
}

func TestMigrationRefusedWhenTargetFull(t *testing.T) {
	m := New(topology.MachineB(), PageSize)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(2*PageSize, 0)
	m.Fault(r.Base, 0)            // fills node 0
	m.Fault(r.Base+PageSize, 1)   // fills node 1
	if m.MigratePage(r.Base, 1) { // node 1 has no room
		t.Fatal("migration into a full node must be refused")
	}
}

func TestTHPFallsBackWhenNoRoomFor2MiB(t *testing.T) {
	m := New(topology.MachineB(), HugePageSize/2) // half a hugepage per node
	m.SetPolicy(FirstTouch, 0)
	m.SetTHP(true)
	r := m.Reserve(HugePageSize, 0)
	f := m.Fault(r.Base, 0)
	if f.HugeMapped {
		t.Fatal("THP fault must fall back to base pages when no node has 2MiB free")
	}
	if f.Kind != MinorFault {
		t.Fatal("fallback must still map the base page")
	}
}

func TestTHPFaultMapsWholeGroup(t *testing.T) {
	m := New(topology.MachineB(), 1<<30)
	m.SetPolicy(FirstTouch, 0)
	m.SetTHP(true)
	r := m.Reserve(2*HugePageSize, 2)
	f := m.Fault(r.Base+123, 3)
	if !f.HugeMapped || !f.Huge {
		t.Fatalf("expected a THP fault, got %+v", f)
	}
	// The whole 2MiB group is now mapped on the toucher's node.
	for off := uint64(0); off < HugePageSize; off += PageSize {
		node, huge, ok := m.Locate(r.Base + off)
		if !ok || !huge || node != 3 {
			t.Fatalf("page at +%d: node=%d huge=%v ok=%v", off, node, huge, ok)
		}
	}
	if m.MinorFaults != 1 {
		t.Fatalf("THP fault should count once, got %d", m.MinorFaults)
	}
	// Interleave places groups round-robin by group index.
	m2 := New(topology.MachineB(), 1<<30)
	m2.SetPolicy(Interleave, 0)
	m2.SetTHP(true)
	r2 := m2.Reserve(8*HugePageSize, 0)
	nodes := map[topology.NodeID]int{}
	for g := uint64(0); g < 8; g++ {
		f := m2.Fault(r2.Base+g*HugePageSize, 0)
		nodes[f.Node]++
	}
	for n, c := range nodes {
		if c != 2 {
			t.Errorf("interleaved THP: node %d got %d groups, want 2", n, c)
		}
	}
}

func TestTHPRespectsPartialGroups(t *testing.T) {
	m := New(topology.MachineB(), 1<<30)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(HugePageSize, 0)
	m.Fault(r.Base, 0) // base-page mapping while THP off
	m.SetTHP(true)
	f := m.Fault(r.Base+PageSize, 0)
	if f.HugeMapped {
		t.Fatal("a partially mapped group must not THP-fault")
	}
}

func TestUnmapReleasesHugeCapacity(t *testing.T) {
	m := New(topology.MachineB(), 1<<30)
	m.SetPolicy(FirstTouch, 0)
	m.SetTHP(true)
	r := m.Reserve(HugePageSize, 0)
	m.Fault(r.Base, 1)
	if m.NodeUsed(1) != HugePageSize {
		t.Fatalf("node 1 used = %d, want %d", m.NodeUsed(1), HugePageSize)
	}
	m.UnmapRange(r.Base, HugePageSize)
	if m.NodeUsed(1) != 0 {
		t.Fatalf("node 1 used = %d after unmap, want 0", m.NodeUsed(1))
	}
	if m.Mapped != 0 {
		t.Fatalf("mapped = %d after unmap", m.Mapped)
	}
}
