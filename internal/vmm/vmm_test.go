package vmm

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func newMem(t *testing.T) *Memory {
	t.Helper()
	return New(topology.MachineB(), 1<<30) // 4 nodes, 1 GiB each
}

func TestFirstTouchPlacesOnToucher(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(16*PageSize, 0)
	f := m.Fault(r.Base, 2)
	if f.Kind != MinorFault || f.Node != 2 {
		t.Fatalf("fault = %+v, want minor fault on node 2", f)
	}
	// Second access is a hit on the same node, even from another node.
	f = m.Fault(r.Base, 3)
	if f.Kind != Hit || f.Node != 2 {
		t.Fatalf("refault = %+v, want hit on node 2", f)
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(Interleave, 0)
	r := m.Reserve(8*PageSize, 0)
	counts := make([]int, 4)
	for i := uint64(0); i < 8; i++ {
		f := m.Fault(r.Base+i*PageSize, 1)
		counts[f.Node]++
	}
	for n, c := range counts {
		if c != 2 {
			t.Errorf("node %d got %d pages, want 2", n, c)
		}
	}
}

func TestInterleaveSeedsRotorFromToucher(t *testing.T) {
	// Regression: the interleave rotor used to start at node 0 regardless
	// of the faulting thread's node, so every toucher's first page piled
	// onto node 0. The rotor is now seeded from the toucher: the first
	// page of a (hugepage-aligned) reservation faulted from node n lands
	// on node n, and per-node totals are symmetric across touchers.
	for toucher := topology.NodeID(0); toucher < 4; toucher++ {
		m := newMem(t)
		m.SetPolicy(Interleave, 0)
		r := m.Reserve(8*PageSize, 0)
		if f := m.Fault(r.Base, toucher); f.Node != toucher {
			t.Errorf("first page touched from node %d placed on node %d, want %d",
				toucher, f.Node, toucher)
		}
		counts := make([]int, 4)
		for i := uint64(0); i < 8; i++ {
			n, _, ok := m.Locate(r.Base + i*PageSize)
			if !ok {
				m.Fault(r.Base+i*PageSize, toucher)
				n, _, _ = m.Locate(r.Base + i*PageSize)
			}
			counts[n]++
		}
		for n, c := range counts {
			if c != 2 {
				t.Errorf("toucher %d: node %d got %d pages, want 2", toucher, n, c)
			}
		}
	}
}

func TestWeightedInterleaveProportions(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(Interleave, 0)
	m.SetInterleaveWeights([]float64{2, 1, 1, 0})
	r := m.Reserve(16*PageSize, 0)
	counts := make([]int, 4)
	var seq []topology.NodeID
	for i := uint64(0); i < 16; i++ {
		f := m.Fault(r.Base+i*PageSize, 3)
		counts[f.Node]++
		seq = append(seq, f.Node)
	}
	if counts[0] != 8 || counts[1] != 4 || counts[2] != 4 || counts[3] != 0 {
		t.Fatalf("weighted counts = %v, want [8 4 4 0]", counts)
	}
	// Smooth WRR must not burst: every prefix of the placement sequence
	// keeps each node within one page of its proportional share.
	prefix := make([]float64, 4)
	for i, n := range seq {
		prefix[n]++
		k := float64(i + 1)
		for node, share := range []float64{0.5, 0.25, 0.25, 0} {
			if d := prefix[node] - k*share; d > 1 || d < -1 {
				t.Fatalf("after %d placements node %d has %.0f pages, share %.2f: %v",
					i+1, node, prefix[node], share, seq)
			}
		}
	}
	// Clearing the weights restores the toucher-seeded round-robin rotor.
	m.SetInterleaveWeights(nil)
	r2 := m.Reserve(PageSize, 0)
	if f := m.Fault(r2.Base, 2); f.Node != 2 {
		t.Fatalf("after clearing weights, first page from node 2 on node %d, want 2", f.Node)
	}
}

func TestWeightedInterleaveValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	m := newMem(t)
	mustPanic("wrong length", func() { m.SetInterleaveWeights([]float64{1, 2}) })
	mustPanic("negative", func() { m.SetInterleaveWeights([]float64{1, -1, 1, 1}) })
	mustPanic("all zero", func() { m.SetInterleaveWeights([]float64{0, 0, 0, 0}) })
	if m.InterleaveWeights() != nil {
		t.Error("rejected weights must not stick")
	}
}

func TestLocalallocUsesOwner(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(Localalloc, 0)
	r := m.Reserve(4*PageSize, 3)
	f := m.Fault(r.Base, 0) // touched by node 0, owned by node 3
	if f.Node != 3 {
		t.Fatalf("localalloc placed on node %d, want owner node 3", f.Node)
	}
}

func TestPreferredWithFallback(t *testing.T) {
	m := New(topology.MachineB(), 4*PageSize) // tiny nodes: 4 pages each
	m.SetPolicy(Preferred, 1)
	r := m.Reserve(8*PageSize, 0)
	var onPreferred, elsewhere int
	for i := uint64(0); i < 8; i++ {
		f := m.Fault(r.Base+i*PageSize, 0)
		if f.Node == 1 {
			onPreferred++
		} else {
			elsewhere++
		}
	}
	if onPreferred != 4 || elsewhere != 4 {
		t.Fatalf("preferred=%d elsewhere=%d, want 4 and 4", onPreferred, elsewhere)
	}
}

func TestReleaseFreesCapacity(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(16*PageSize, 0)
	for i := uint64(0); i < 16; i++ {
		m.Fault(r.Base+i*PageSize, 0)
	}
	if m.NodeUsed(0) != 16*PageSize {
		t.Fatalf("node 0 used = %d, want %d", m.NodeUsed(0), 16*PageSize)
	}
	m.Release(r)
	if m.NodeUsed(0) != 0 || m.Mapped != 0 {
		t.Fatalf("after release: used=%d mapped=%d, want 0,0", m.NodeUsed(0), m.Mapped)
	}
}

func TestUnmapRangePartial(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(8*PageSize, 0)
	for i := uint64(0); i < 8; i++ {
		m.Fault(r.Base+i*PageSize, 0)
	}
	m.UnmapRange(r.Base, 2*PageSize)
	if m.Mapped != 6 {
		t.Fatalf("mapped = %d, want 6", m.Mapped)
	}
	if _, _, ok := m.Locate(r.Base); ok {
		t.Error("unmapped page still located")
	}
	if _, _, ok := m.Locate(r.Base + 3*PageSize); !ok {
		t.Error("still-mapped page not located")
	}
}

func TestMigratePage(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(PageSize, 0)
	m.Fault(r.Base, 0)
	if !m.MigratePage(r.Base, 2) {
		t.Fatal("migration refused")
	}
	if n, _, _ := m.Locate(r.Base); n != 2 {
		t.Fatalf("page on node %d after migration, want 2", n)
	}
	if m.MigratePage(r.Base, 2) {
		t.Error("migration to same node should be a no-op")
	}
	if m.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", m.Migrations)
	}
	if m.NodeUsed(0) != 0 || m.NodeUsed(2) != PageSize {
		t.Error("capacity accounting wrong after migration")
	}
}

func touchHugeGroup(m *Memory, r Range, node topology.NodeID) {
	for i := uint64(0); i < PagesPerHuge; i++ {
		m.Fault(r.Base+i*PageSize, node)
	}
}

func TestPromoteAndSplitHuge(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(HugePageSize, 0)
	touchHugeGroup(m, r, 1)
	if !m.PromoteHuge(r.Base) {
		t.Fatal("promotion refused for eligible group")
	}
	if _, huge, _ := m.Locate(r.Base + 100*PageSize); !huge {
		t.Error("page in promoted group not huge")
	}
	if m.MigratePage(r.Base, 2) {
		t.Error("huge page must not migrate without a split")
	}
	if !m.SplitHuge(r.Base + 5*PageSize) {
		t.Fatal("split refused")
	}
	if _, huge, _ := m.Locate(r.Base); huge {
		t.Error("page still huge after split")
	}
	if m.Promotions != 1 || m.Splits != 1 {
		t.Errorf("promotions=%d splits=%d, want 1,1", m.Promotions, m.Splits)
	}
}

func TestPromoteRejectsMixedNodes(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(HugePageSize, 0)
	for i := uint64(0); i < PagesPerHuge; i++ {
		m.Fault(r.Base+i*PageSize, topology.NodeID(i%2)) // alternate nodes
	}
	if m.PromoteHuge(r.Base) {
		t.Fatal("promotion must require a single backing node")
	}
}

func TestPromoteRejectsPartiallyMapped(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(HugePageSize, 0)
	for i := uint64(0); i < PagesPerHuge-1; i++ {
		m.Fault(r.Base+i*PageSize, 0)
	}
	if m.PromoteHuge(r.Base) {
		t.Fatal("promotion must require all 512 pages mapped")
	}
}

func TestHugeCandidates(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(3*HugePageSize, 0)
	// Fully touch group 0 and 2; leave group 1 partial.
	for g := uint64(0); g < 3; g++ {
		limit := uint64(PagesPerHuge)
		if g == 1 {
			limit = 10
		}
		for i := uint64(0); i < limit; i++ {
			m.Fault(r.Base+g*HugePageSize+i*PageSize, 0)
		}
	}
	var got []uint64
	m.HugeCandidates(r, func(base uint64) { got = append(got, base) })
	if len(got) != 2 || got[0] != r.Base || got[1] != r.Base+2*HugePageSize {
		t.Fatalf("candidates = %v, want groups 0 and 2", got)
	}
}

func TestUnmapSplitsHuge(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(FirstTouch, 0)
	r := m.Reserve(HugePageSize, 0)
	touchHugeGroup(m, r, 0)
	m.PromoteHuge(r.Base)
	m.UnmapRange(r.Base, PageSize) // freeing part of a huge page forces a split
	if m.Splits != 1 {
		t.Fatalf("splits = %d, want 1 (allocator free inside hugepage)", m.Splits)
	}
}

func TestReservationsAreHugeAligned(t *testing.T) {
	m := newMem(t)
	r1 := m.Reserve(PageSize, 0)
	r2 := m.Reserve(PageSize, 0)
	if r1.Base%HugePageSize != 0 || r2.Base%HugePageSize != 0 {
		t.Error("reservations must be hugepage aligned")
	}
	if r1.End() > r2.Base {
		t.Error("reservations overlap")
	}
}

func TestFaultAccountingProperty(t *testing.T) {
	m := newMem(t)
	m.SetPolicy(Interleave, 0)
	r := m.Reserve(1024*PageSize, 0)
	faulted := map[uint64]bool{}
	f := func(pageRaw uint16, toucherRaw uint8) bool {
		page := uint64(pageRaw) % 1024
		addr := r.Base + page*PageSize
		before := m.MinorFaults
		res := m.Fault(addr, topology.NodeID(toucherRaw%4))
		if faulted[page] {
			return res.Kind == Hit && m.MinorFaults == before
		}
		faulted[page] = true
		return res.Kind == MinorFault && m.MinorFaults == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if m.Mapped != uint64(len(faulted)) {
		t.Errorf("mapped = %d, want %d", m.Mapped, len(faulted))
	}
}

func TestPanicsOnUnreservedAccess(t *testing.T) {
	m := newMem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unreserved access")
		}
	}()
	m.Fault(1<<40, 0)
}

func TestPolicyString(t *testing.T) {
	for _, p := range Policies() {
		if p.String() == "" {
			t.Errorf("policy %d has empty name", p)
		}
	}
	if FirstTouch.String() != "First Touch" {
		t.Errorf("got %q", FirstTouch.String())
	}
}
