// Package vmm simulates the kernel's virtual memory management for a NUMA
// machine: a single flat virtual address space, per-node physical capacity,
// demand paging with a configurable placement policy (First Touch,
// Interleave, Localalloc, Preferred), page migration, and transparent
// hugepage promotion and splitting.
//
// The vmm charges no costs itself — the machine layer translates vmm events
// (faults, migrations, remote placements) into cycles. This keeps the
// policy mechanics testable in isolation.
package vmm

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/trace"
)

// Page geometry. The simulator uses the same 4KiB base pages and 2MiB huge
// pages as the Linux systems in the paper.
const (
	PageShift     = 12
	PageSize      = 1 << PageShift // 4 KiB
	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift        // 2 MiB
	PagesPerHuge  = HugePageSize / PageSize   // 512
	hugeMask      = ^uint64(PagesPerHuge - 1) // vpn -> huge-group base
)

// Policy selects where newly faulted pages are placed, mirroring numactl.
type Policy int

const (
	// FirstTouch places each page on the node of the thread that first
	// touches it (the Linux default).
	FirstTouch Policy = iota
	// Interleave places pages round-robin across all nodes by page index.
	Interleave
	// Localalloc places pages on the node that performed the allocation
	// (the owner of the reservation), regardless of who touches first.
	Localalloc
	// Preferred places all pages on a single chosen node, falling back to
	// other nodes when it is full.
	Preferred
)

// String returns the policy name as the paper spells it.
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "First Touch"
	case Interleave:
		return "Interleave"
	case Localalloc:
		return "Localalloc"
	case Preferred:
		return "Preferred"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists all placement policies in the paper's order.
func Policies() []Policy { return []Policy{FirstTouch, Interleave, Localalloc, Preferred} }

// Range is a reserved region of virtual address space.
type Range struct {
	Base  uint64
	Bytes uint64
	// Owner is the NUMA node of the thread that made the reservation;
	// used by the Localalloc policy.
	Owner topology.NodeID
}

// End returns one past the last byte of the range.
func (r Range) End() uint64 { return r.Base + r.Bytes }

const (
	flagMapped = 1 << iota
	flagHuge
)

// entry is one page-table entry; kept small because the table is dense.
type entry struct {
	node  int8
	flags uint8
	owner int8 // reservation owner at fault time, for Localalloc
}

// FaultKind describes what a Fault call did.
type FaultKind int

const (
	// Hit means the page was already mapped.
	Hit FaultKind = iota
	// MinorFault means the page was mapped by this call.
	MinorFault
)

// Fault reports the outcome of an address access at the paging level.
type Fault struct {
	Node topology.NodeID
	Kind FaultKind
	Huge bool
	// HugeMapped is set when this fault installed a whole 2MiB mapping
	// (THP "always" fault path).
	HugeMapped bool
}

// Memory is the simulated VM subsystem for one machine.
type Memory struct {
	topo     *topology.Topology
	perNode  uint64 // capacity per node, bytes
	used     []uint64
	table    []entry
	nextBase uint64
	owners   []reservation // sorted by base; reservations never overlap

	policy    Policy
	preferred topology.NodeID
	thpAlways bool // THP "always": map whole 2MiB groups at fault time

	// Weighted interleave (nil when unweighted): per-node weights and the
	// smooth weighted-round-robin credit state that spreads placements
	// proportionally without bursts. Installed by SetInterleaveWeights.
	weights []float64
	credit  []float64

	// Counters for tests and the perf layer.
	Mapped      uint64 // pages currently mapped
	MinorFaults uint64
	Migrations  uint64 // page migrations
	Promotions  uint64 // hugepage promotions
	Splits      uint64 // hugepage splits

	// Trace hooks, attached by the machine layer. sink is nil unless
	// tracing is on; now supplies the virtual timestamp and the acting
	// thread id (-1 for kernel daemons) for each event. initiator tags
	// every emitted event with the mechanism driving the current call —
	// the zero value is trace.InitDemand (the application's own access
	// path); daemons and the orchestrator's actuator set it around their
	// passes via SetInitiator.
	sink      trace.Sink
	now       func() (cycle float64, thread int32)
	initiator trace.Initiator
}

type reservation struct {
	base, bytes uint64
	owner       topology.NodeID
}

// New creates a Memory over the given topology with perNodeBytes of
// physical capacity on every node.
func New(topo *topology.Topology, perNodeBytes uint64) *Memory {
	return &Memory{
		topo:    topo,
		perNode: perNodeBytes,
		used:    make([]uint64, topo.Nodes()),
	}
}

// SetPolicy selects the placement policy for subsequent faults. The
// preferred node is only consulted by the Preferred policy.
func (m *Memory) SetPolicy(p Policy, preferred topology.NodeID) {
	m.policy = p
	m.preferred = preferred
}

// Policy returns the active placement policy.
func (m *Memory) Policy() Policy { return m.policy }

// SetTrace attaches an event sink. now supplies the virtual cycle stamp
// and acting thread id for each event (the machine layer reads them from
// its scheduler state). A nil sink disables tracing; every emission site
// is guarded, so the disabled path costs one pointer compare.
func (m *Memory) SetTrace(sink trace.Sink, now func() (cycle float64, thread int32)) {
	m.sink = sink
	m.now = now
}

// SetInitiator tags subsequent emitted events with the given mechanism and
// returns the previous tag so callers can restore it. The machine layer
// brackets kernel-daemon passes and actuator calls with it; everything
// else runs under the zero value, trace.InitDemand.
func (m *Memory) SetInitiator(i trace.Initiator) trace.Initiator {
	prev := m.initiator
	m.initiator = i
	return prev
}

func (m *Memory) emit(kind trace.Kind, addr uint64, from, to topology.NodeID) {
	cyc, th := m.now()
	m.sink.Emit(trace.Event{
		Cycle:     cyc,
		Kind:      kind,
		Initiator: m.initiator,
		Thread:    th,
		From:      int16(from),
		To:        int16(to),
		Addr:      addr,
	})
}

// SetInterleaveWeights makes the Interleave policy bandwidth-aware:
// subsequent faults distribute pages across nodes in proportion to w
// (one non-negative weight per node, at least one positive) instead of
// round-robin by page index. The machine's placement daemon derives w
// from modeled memory-controller occupancy, steering new pages away from
// saturated controllers. Placement uses smooth weighted round-robin, so
// a 2:1:1:1 weighting emits no bursts, and the sequence is a pure
// function of fault order (deterministic). Pass nil to restore the
// unweighted rotor. Already-mapped pages are unaffected.
func (m *Memory) SetInterleaveWeights(w []float64) {
	if w == nil {
		m.weights, m.credit = nil, nil
		return
	}
	if len(w) != m.topo.Nodes() {
		panic(fmt.Sprintf("vmm: SetInterleaveWeights got %d weights for %d nodes", len(w), m.topo.Nodes()))
	}
	positive := false
	for _, x := range w {
		if x < 0 {
			panic("vmm: SetInterleaveWeights got a negative weight")
		}
		if x > 0 {
			positive = true
		}
	}
	if !positive {
		panic("vmm: SetInterleaveWeights needs at least one positive weight")
	}
	m.weights = append([]float64(nil), w...)
	m.credit = make([]float64, len(w))
}

// InterleaveWeights returns a copy of the active interleave weights, nil
// when the rotor is unweighted.
func (m *Memory) InterleaveWeights() []float64 {
	return append([]float64(nil), m.weights...)
}

// weightedNode advances the smooth weighted-round-robin rotor one step:
// every node gains its weight in credit, the richest node (lowest index
// on ties) is picked and pays back the total.
func (m *Memory) weightedNode() topology.NodeID {
	best := 0
	total := 0.0
	for i, w := range m.weights {
		m.credit[i] += w
		total += w
		if m.credit[i] > m.credit[best] {
			best = i
		}
	}
	m.credit[best] -= total
	return topology.NodeID(best)
}

// SetTHP toggles Transparent Hugepages "always" mode: faults inside a
// reservation that fully covers an untouched 2MiB-aligned group map the
// whole group as one hugepage (cheap zeroing per byte, coarse placement,
// and 2MiB of RSS for the first touched byte).
func (m *Memory) SetTHP(on bool) { m.thpAlways = on }

// Reserve claims bytes of virtual address space for an allocator owned by a
// thread on the given node. No physical memory is committed; pages fault in
// on first touch. The base is always page aligned.
func (m *Memory) Reserve(bytes uint64, owner topology.NodeID) Range {
	if bytes == 0 {
		bytes = PageSize
	}
	bytes = (bytes + PageSize - 1) &^ uint64(PageSize-1)
	// Keep reservations hugepage-aligned so THP promotion groups never
	// straddle two reservations.
	base := (m.nextBase + HugePageSize - 1) &^ uint64(HugePageSize-1)
	m.nextBase = base + bytes
	endVPN := (base + bytes) >> PageShift
	if uint64(len(m.table)) < endVPN {
		grown := make([]entry, endVPN+endVPN/4)
		copy(grown, m.table)
		m.table = grown
	}
	m.owners = append(m.owners, reservation{base: base, bytes: bytes, owner: owner})
	return Range{Base: base, Bytes: bytes, Owner: owner}
}

// Release unmaps every page of r and returns its physical memory. The
// virtual address range is not reused.
func (m *Memory) Release(r Range) {
	start := r.Base >> PageShift
	end := r.End() >> PageShift
	for vpn := start; vpn < end; vpn++ {
		m.unmapVPN(vpn)
	}
}

// UnmapRange returns the physical pages backing [base, base+bytes) to the
// OS, as allocators do with madvise(MADV_DONTNEED). Partial hugepages are
// split first, which is exactly the allocator/THP pathology the paper
// observes in Figure 5c.
func (m *Memory) UnmapRange(base, bytes uint64) {
	start := base >> PageShift
	end := (base + bytes + PageSize - 1) >> PageShift
	for vpn := start; vpn < end; vpn++ {
		m.unmapVPN(vpn)
	}
}

func (m *Memory) unmapVPN(vpn uint64) {
	if vpn >= uint64(len(m.table)) {
		return
	}
	e := &m.table[vpn]
	if e.flags&flagMapped == 0 {
		return
	}
	if e.flags&flagHuge != 0 {
		m.splitVPN(vpn)
	}
	e.flags = 0
	m.used[e.node] -= PageSize
	m.Mapped--
}

// Locate returns the node backing addr without faulting. ok is false when
// the page is not mapped.
func (m *Memory) Locate(addr uint64) (node topology.NodeID, huge, ok bool) {
	vpn := addr >> PageShift
	if vpn >= uint64(len(m.table)) {
		return 0, false, false
	}
	e := m.table[vpn]
	if e.flags&flagMapped == 0 {
		return 0, false, false
	}
	return topology.NodeID(e.node), e.flags&flagHuge != 0, true
}

// Fault resolves addr for an access by a thread on toucher, mapping the
// page according to the active policy if needed.
func (m *Memory) Fault(addr uint64, toucher topology.NodeID) Fault {
	vpn := addr >> PageShift
	if vpn >= uint64(len(m.table)) {
		// Access outside any reservation: treat as a bug in the caller.
		panic(fmt.Sprintf("vmm: access to unreserved address %#x", addr))
	}
	e := &m.table[vpn]
	if e.flags&flagMapped != 0 {
		return Fault{Node: topology.NodeID(e.node), Kind: Hit, Huge: e.flags&flagHuge != 0}
	}
	owner := m.ownerOf(addr)
	if m.thpAlways {
		if f, ok := m.hugeFault(vpn, toucher, owner); ok {
			return f
		}
	}
	target := m.placeFor(vpn, toucher, owner)
	target = m.withCapacity(target)
	e.node = int8(target)
	e.owner = int8(owner)
	e.flags = flagMapped
	m.used[target] += PageSize
	m.Mapped++
	m.MinorFaults++
	if m.sink != nil {
		m.emit(trace.PageFault, vpn<<PageShift, toucher, target)
	}
	return Fault{Node: target, Kind: MinorFault}
}

// hugeFault attempts the THP "always" fault path: if the 2MiB group around
// vpn is entirely unmapped and entirely inside one reservation, it maps
// the whole group as a hugepage on one node.
func (m *Memory) hugeFault(vpn uint64, toucher, owner topology.NodeID) (Fault, bool) {
	base := vpn & hugeMask
	if base+PagesPerHuge > uint64(len(m.table)) {
		return Fault{}, false
	}
	if !m.groupInOneReservation(base) {
		return Fault{}, false
	}
	for p := base; p < base+PagesPerHuge; p++ {
		if m.table[p].flags&flagMapped != 0 {
			return Fault{}, false
		}
	}
	// Placement at 2MiB granularity: interleave by group index, the
	// others by their usual rule.
	var target topology.NodeID
	switch m.policy {
	case Interleave:
		if m.weights != nil {
			target = m.weightedNode()
		} else {
			// Seeded from the toucher like the base-page rotor.
			target = topology.NodeID((base/PagesPerHuge + uint64(toucher)) % uint64(m.topo.Nodes()))
		}
	case Localalloc:
		target = owner
	case Preferred:
		target = m.preferred
	default:
		target = toucher
	}
	if m.used[target]+HugePageSize > m.perNode {
		target = m.withCapacity(target)
		if m.used[target]+HugePageSize > m.perNode {
			return Fault{}, false // no node has 2MiB free: fall back
		}
	}
	for p := base; p < base+PagesPerHuge; p++ {
		e := &m.table[p]
		e.node = int8(target)
		e.owner = int8(owner)
		e.flags = flagMapped | flagHuge
	}
	m.used[target] += HugePageSize
	m.Mapped += PagesPerHuge
	m.MinorFaults++ // one fault installs the whole mapping
	m.Promotions++
	if m.sink != nil {
		m.emit(trace.HugeMap, base<<PageShift, toucher, target)
	}
	return Fault{Node: target, Kind: MinorFault, Huge: true, HugeMapped: true}, true
}

// groupInOneReservation reports whether the 2MiB group starting at base
// (a vpn) lies entirely within a single reservation.
func (m *Memory) groupInOneReservation(base uint64) bool {
	addr := base << PageShift
	end := addr + HugePageSize
	for i := len(m.owners) - 1; i >= 0; i-- {
		r := m.owners[i]
		if addr >= r.base && addr < r.base+r.bytes {
			return end <= r.base+r.bytes
		}
	}
	return false
}

// placeFor applies the placement policy for a fresh fault.
func (m *Memory) placeFor(vpn uint64, toucher, owner topology.NodeID) topology.NodeID {
	switch m.policy {
	case Interleave:
		if m.weights != nil {
			return m.weightedNode()
		}
		// The rotor is seeded from the faulting thread's node (as Linux
		// seeds the interleave index from the faulting task), so pages
		// spread symmetrically no matter which node touches first instead
		// of every toucher starting its stride at node 0.
		return topology.NodeID((vpn + uint64(toucher)) % uint64(m.topo.Nodes()))
	case Localalloc:
		return owner
	case Preferred:
		return m.preferred
	default: // FirstTouch
		return toucher
	}
}

// withCapacity falls back to the nearest node with free capacity, like the
// kernel's zone fallback lists.
func (m *Memory) withCapacity(want topology.NodeID) topology.NodeID {
	if m.used[want]+PageSize <= m.perNode {
		return want
	}
	best := topology.NodeID(-1)
	bestHops := int(^uint(0) >> 1)
	for n := 0; n < m.topo.Nodes(); n++ {
		if m.used[n]+PageSize > m.perNode {
			continue
		}
		if h := m.topo.Hops(want, topology.NodeID(n)); h < bestHops {
			best, bestHops = topology.NodeID(n), h
		}
	}
	if best < 0 {
		panic("vmm: out of simulated physical memory on all nodes")
	}
	return best
}

// ownerOf finds the reservation owner for addr (linear scan is fine: the
// table is consulted only on faults, and reservations are few and appended
// in address order so we scan backwards to hit recent ones first).
func (m *Memory) ownerOf(addr uint64) topology.NodeID {
	for i := len(m.owners) - 1; i >= 0; i-- {
		r := m.owners[i]
		if addr >= r.base && addr < r.base+r.bytes {
			return r.owner
		}
	}
	return 0
}

// MigratePage moves the page containing addr to node to. It reports whether
// a migration happened (the page must be mapped, not huge, and not already
// there). Huge pages must be split before migration, as in Linux.
func (m *Memory) MigratePage(addr uint64, to topology.NodeID) bool {
	vpn := addr >> PageShift
	if vpn >= uint64(len(m.table)) {
		return false
	}
	e := &m.table[vpn]
	if e.flags&flagMapped == 0 || e.flags&flagHuge != 0 || topology.NodeID(e.node) == to {
		return false
	}
	if m.used[to]+PageSize > m.perNode {
		return false
	}
	from := topology.NodeID(e.node)
	m.used[e.node] -= PageSize
	m.used[to] += PageSize
	e.node = int8(to)
	m.Migrations++
	if m.sink != nil {
		m.emit(trace.PageMigration, vpn<<PageShift, from, to)
	}
	return true
}

// PromoteHuge attempts to merge the 512-page group containing addr into a
// single 2MiB page, as khugepaged does. All 512 base pages must be mapped
// on the same node and not already huge. It reports success.
func (m *Memory) PromoteHuge(addr uint64) bool {
	base := (addr >> PageShift) & hugeMask
	if base+PagesPerHuge > uint64(len(m.table)) {
		return false
	}
	node := int8(-1)
	for vpn := base; vpn < base+PagesPerHuge; vpn++ {
		e := m.table[vpn]
		if e.flags&flagMapped == 0 || e.flags&flagHuge != 0 {
			return false
		}
		if node < 0 {
			node = e.node
		} else if e.node != node {
			return false
		}
	}
	for vpn := base; vpn < base+PagesPerHuge; vpn++ {
		m.table[vpn].flags |= flagHuge
	}
	m.Promotions++
	if m.sink != nil {
		m.emit(trace.HugeCollapse, base<<PageShift, -1, topology.NodeID(node))
	}
	return true
}

// SplitHuge splits the huge page containing addr back into base pages. It
// reports whether a split happened.
func (m *Memory) SplitHuge(addr uint64) bool {
	return m.splitVPN(addr >> PageShift)
}

func (m *Memory) splitVPN(vpn uint64) bool {
	if vpn >= uint64(len(m.table)) {
		return false
	}
	if m.table[vpn].flags&flagHuge == 0 {
		return false
	}
	base := vpn & hugeMask
	for p := base; p < base+PagesPerHuge && p < uint64(len(m.table)); p++ {
		m.table[p].flags &^= flagHuge
	}
	m.Splits++
	if m.sink != nil {
		m.emit(trace.HugeSplit, base<<PageShift, topology.NodeID(m.table[base].node), -1)
	}
	return true
}

// HugeCandidates calls fn for the base address of every fully mapped,
// same-node, not-yet-huge 512-page group within r. The kernel's khugepaged
// uses the same eligibility rule.
func (m *Memory) HugeCandidates(r Range, fn func(baseAddr uint64)) {
	start := (r.Base >> PageShift) & hugeMask
	end := (r.End() + HugePageSize - 1) >> PageShift
	for group := start; group < end; group += PagesPerHuge {
		if group+PagesPerHuge > uint64(len(m.table)) {
			return
		}
		eligible := true
		node := int8(-1)
		for vpn := group; vpn < group+PagesPerHuge; vpn++ {
			e := m.table[vpn]
			if e.flags&flagMapped == 0 || e.flags&flagHuge != 0 {
				eligible = false
				break
			}
			if node < 0 {
				node = e.node
			} else if e.node != node {
				eligible = false
				break
			}
		}
		if eligible {
			fn(group << PageShift)
		}
	}
}

// Reservations calls fn for every reservation made so far, in address
// order. The THP daemon uses this to scan for promotion candidates.
func (m *Memory) Reservations(fn func(r Range)) {
	for _, res := range m.owners {
		fn(Range{Base: res.base, Bytes: res.bytes, Owner: res.owner})
	}
}

// NodeUsed returns the bytes mapped on node n.
func (m *Memory) NodeUsed(n topology.NodeID) uint64 { return m.used[n] }

// MappedBytes returns total mapped physical memory (the simulated RSS).
func (m *Memory) MappedBytes() uint64 { return m.Mapped * PageSize }

// Nodes returns the number of NUMA nodes.
func (m *Memory) Nodes() int { return m.topo.Nodes() }
