package index

import (
	"sort"

	"repro/internal/machine"
)

// btree is a cache-optimized B+tree in the spirit of the STX B+tree the
// paper evaluates: wide nodes sized to a few cache lines, values only in
// leaves, and a linked leaf level. One node kind means one hot allocator
// size class — the "many keys per node" profile the paper contrasts with
// ART.
type btree struct {
	order  int // max keys per node
	root   *bnode
	height int
	n      int
}

type bnode struct {
	addr uint64
	size uint64
	leaf bool
	keys []uint64
	vals []uint64 // leaves only
	kids []*bnode // inner only
	next *bnode   // leaf chain
}

// btreeOrder is the fanout: 32 keys x 16 bytes ~= 8 cache lines per node.
const btreeOrder = 32

func newBTree() *btree { return &btree{order: btreeOrder} }

func (b *btree) Name() string { return "B+tree" }
func (b *btree) Len() int     { return b.n }

// nodeSize is the simulated footprint of one node: header plus order
// (key, value-or-child) slots. Masstree reuses this tree with order 15.
func (b *btree) nodeSize() uint64 {
	return 16 + uint64(b.order)*16
}

// probeBytes is how much of a node a binary search actually touches: the
// header plus about three cache lines of keys and one child slot.
func (b *btree) probeBytes() uint64 {
	p := uint64(16 + 3*64)
	if p > b.nodeSize() {
		p = b.nodeSize()
	}
	return p
}

func (b *btree) newNode(t *machine.Thread, leaf bool) *bnode {
	n := &bnode{leaf: leaf, size: b.nodeSize()}
	n.addr = t.Malloc(n.size)
	t.Write(n.addr, 16) // header init
	return n
}

// searchCycles is the charge for a binary search within one node.
func searchCycles(keys int) float64 {
	c := 1.0
	for n := 1; n < keys; n <<= 1 {
		c++
	}
	return 4 * c
}

func (b *btree) Insert(t *machine.Thread, key, val uint64) {
	if b.root == nil {
		b.root = b.newNode(t, true)
		b.height = 1
	}
	// Descend, remembering the path for splits.
	path := make([]*bnode, 0, b.height)
	node := b.root
	for !node.leaf {
		t.Read(node.addr, b.probeBytes())
		t.Charge(searchCycles(len(node.keys)))
		path = append(path, node)
		node = node.kids[childIdx(node.keys, key)]
	}
	t.Read(node.addr, b.probeBytes())
	t.Charge(searchCycles(len(node.keys)))
	i := sort.Search(len(node.keys), func(j int) bool { return node.keys[j] >= key })
	if i < len(node.keys) && node.keys[i] == key {
		node.vals[i] = val
		t.Write(node.addr, 16)
		return
	}
	node.keys = append(node.keys, 0)
	node.vals = append(node.vals, 0)
	copy(node.keys[i+1:], node.keys[i:])
	copy(node.vals[i+1:], node.vals[i:])
	node.keys[i] = key
	node.vals[i] = val
	t.Write(node.addr, node.size/2) // shift half the node on average
	b.n++
	// Split upward while over capacity.
	for node != nil && len(node.keys) > b.order {
		parent := popPath(&path)
		node = b.split(t, node, parent)
	}
}

// childIdx returns which child of an inner node covers key: keys[i] is the
// smallest key of kids[i+1].
func childIdx(keys []uint64, key uint64) int {
	return sort.Search(len(keys), func(j int) bool { return keys[j] > key })
}

func popPath(path *[]*bnode) *bnode {
	p := *path
	if len(p) == 0 {
		return nil
	}
	last := p[len(p)-1]
	*path = p[:len(p)-1]
	return last
}

// split divides an over-full node, pushing the separator into parent (or a
// new root), and returns the parent for cascade checks (nil when done).
func (b *btree) split(t *machine.Thread, node, parent *bnode) *bnode {
	mid := len(node.keys) / 2
	right := b.newNode(t, node.leaf)
	var sep uint64
	if node.leaf {
		sep = node.keys[mid]
		right.keys = append(right.keys, node.keys[mid:]...)
		right.vals = append(right.vals, node.vals[mid:]...)
		node.keys = node.keys[:mid]
		node.vals = node.vals[:mid]
		right.next = node.next
		node.next = right
	} else {
		sep = node.keys[mid]
		right.keys = append(right.keys, node.keys[mid+1:]...)
		right.kids = append(right.kids, node.kids[mid+1:]...)
		node.keys = node.keys[:mid]
		node.kids = node.kids[:mid+1]
	}
	t.Write(node.addr, node.size)
	t.Write(right.addr, right.size)
	if parent == nil {
		newRoot := b.newNode(t, false)
		newRoot.keys = []uint64{sep}
		newRoot.kids = []*bnode{node, right}
		t.Write(newRoot.addr, 32)
		b.root = newRoot
		b.height++
		return nil
	}
	i := childIdx(parent.keys, sep)
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.kids = append(parent.kids, nil)
	copy(parent.kids[i+2:], parent.kids[i+1:])
	parent.kids[i+1] = right
	t.Write(parent.addr, parent.size/2)
	return parent
}

func (b *btree) Lookup(t *machine.Thread, key uint64) (uint64, bool) {
	node := b.root
	if node == nil {
		return 0, false
	}
	for !node.leaf {
		t.Read(node.addr, b.probeBytes())
		t.Charge(searchCycles(len(node.keys)))
		node = node.kids[childIdx(node.keys, key)]
	}
	t.Read(node.addr, b.probeBytes())
	t.Charge(searchCycles(len(node.keys)))
	i := sort.Search(len(node.keys), func(j int) bool { return node.keys[j] >= key })
	if i < len(node.keys) && node.keys[i] == key {
		return node.vals[i], true
	}
	return 0, false
}

// Scan walks leaves in key order starting at the first key >= from,
// calling fn until it returns false. Used by range queries and tests.
func (b *btree) Scan(t *machine.Thread, from uint64, fn func(key, val uint64) bool) {
	node := b.root
	if node == nil {
		return
	}
	for !node.leaf {
		t.Read(node.addr, node.size)
		node = node.kids[childIdx(node.keys, from)]
	}
	for node != nil {
		t.Read(node.addr, node.size)
		for i, k := range node.keys {
			if k < from {
				continue
			}
			if !fn(k, node.vals[i]) {
				return
			}
		}
		node = node.next
	}
}
