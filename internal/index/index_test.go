package index

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/vmm"
	"repro/internal/xrand"
)

func run1(t *testing.T, fn func(th *machine.Thread)) machine.Result {
	t.Helper()
	m := machine.NewB()
	m.Configure(machine.RunConfig{
		Threads:   1,
		Placement: machine.PlaceSparse,
		Policy:    vmm.FirstTouch,
		Allocator: "jemalloc",
		Seed:      1,
	})
	return m.Run(1, fn)
}

func TestAllIndexesInsertLookup(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run1(t, func(th *machine.Thread) {
				idx := New(kind)
				const n = 3000
				r := xrand.New(9)
				keys := r.Perm(n) // shuffled dense keys, like the join build
				for _, k := range keys {
					idx.Insert(th, uint64(k), uint64(k)*3)
				}
				if idx.Len() != n {
					t.Fatalf("Len = %d, want %d", idx.Len(), n)
				}
				for k := 0; k < n; k++ {
					v, ok := idx.Lookup(th, uint64(k))
					if !ok || v != uint64(k)*3 {
						t.Fatalf("Lookup(%d) = %d,%v want %d,true", k, v, ok, uint64(k)*3)
					}
				}
				if _, ok := idx.Lookup(th, n+100); ok {
					t.Fatal("found absent key")
				}
			})
		})
	}
}

func TestAllIndexesOverwrite(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run1(t, func(th *machine.Thread) {
				idx := New(kind)
				idx.Insert(th, 5, 10)
				idx.Insert(th, 5, 20)
				if idx.Len() != 1 {
					t.Fatalf("Len = %d after overwrite, want 1", idx.Len())
				}
				if v, _ := idx.Lookup(th, 5); v != 20 {
					t.Fatalf("Lookup = %d, want 20", v)
				}
			})
		})
	}
}

func TestAllIndexesSparseKeys(t *testing.T) {
	// Wide keys stress ART's byte decomposition and B+tree splits.
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run1(t, func(th *machine.Thread) {
				idx := New(kind)
				r := xrand.New(4)
				ref := map[uint64]uint64{}
				for i := 0; i < 2000; i++ {
					k := r.Uint64()
					ref[k] = k ^ 0xdead
					idx.Insert(th, k, k^0xdead)
				}
				for k, v := range ref {
					got, ok := idx.Lookup(th, k)
					if !ok || got != v {
						t.Fatalf("Lookup(%#x) = %#x,%v want %#x", k, got, ok, v)
					}
				}
			})
		})
	}
}

func TestIndexMatchesMapProperty(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run1(t, func(th *machine.Thread) {
				idx := New(kind)
				ref := map[uint64]uint64{}
				f := func(ops []uint16) bool {
					for _, op := range ops {
						k := uint64(op % 512)
						v := uint64(op)
						idx.Insert(th, k, v)
						ref[k] = v
						got, ok := idx.Lookup(th, k)
						if !ok || got != ref[k] {
							return false
						}
					}
					return len(ref) == idx.Len()
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
					t.Error(err)
				}
			})
		})
	}
}

func TestBTreeScanOrdered(t *testing.T) {
	run1(t, func(th *machine.Thread) {
		b := newBTree()
		r := xrand.New(2)
		for _, k := range r.Perm(500) {
			b.Insert(th, uint64(k), uint64(k))
		}
		var got []uint64
		b.Scan(th, 100, func(k, v uint64) bool {
			got = append(got, k)
			return len(got) < 50
		})
		if len(got) != 50 {
			t.Fatalf("scan returned %d keys", len(got))
		}
		for i, k := range got {
			if k != uint64(100+i) {
				t.Fatalf("scan[%d] = %d, want %d", i, k, 100+i)
			}
		}
	})
}

func TestARTUsesVariedSizeClasses(t *testing.T) {
	// ART's defining allocator profile: at least three distinct node
	// sizes requested while building over dense keys.
	m := machine.NewB()
	m.Configure(machine.RunConfig{Threads: 1, Placement: machine.PlaceSparse, Allocator: "jemalloc", Seed: 1})
	sizes := map[uint64]bool{}
	m.Run(1, func(th *machine.Thread) {
		idx := newART()
		for k := uint64(0); k < 2000; k++ {
			idx.Insert(th, k, k)
		}
		// Walk the tree and collect node sizes.
		var walk func(n *artNode)
		walk = func(n *artNode) {
			sizes[n.size] = true
			for _, c := range n.children {
				walk(c)
			}
		}
		walk(idx.root)
	})
	if len(sizes) < 3 {
		t.Errorf("ART should use several node size classes, got %v", sizes)
	}
}

func TestSkipListDeterministicBuild(t *testing.T) {
	build := func() int {
		s := newSkipList()
		var level int
		run1(t, func(th *machine.Thread) {
			for k := uint64(0); k < 1000; k++ {
				s.Insert(th, k, k)
			}
			level = s.level
		})
		return level
	}
	if build() != build() {
		t.Error("skip list towers must be deterministic")
	}
}

func TestLookupCostOrdering(t *testing.T) {
	// Figure 7e shape: ART and B+tree lookups should be cheaper than
	// Skip List pointer chasing at equal sizes.
	cost := func(kind Kind) float64 {
		var cycles float64
		run1(t, func(th *machine.Thread) {
			idx := New(kind)
			r := xrand.New(3)
			for _, k := range r.Perm(20000) {
				idx.Insert(th, uint64(k), uint64(k))
			}
			start := th.Cycles()
			for i := 0; i < 5000; i++ {
				idx.Lookup(th, uint64(r.Intn(20000)))
			}
			cycles = th.Cycles() - start
		})
		return cycles
	}
	art := cost(ARTKind)
	bt := cost(BTreeKind)
	sl := cost(SkipListKind)
	if art >= sl || bt >= sl {
		t.Errorf("ART (%v) and B+tree (%v) should beat Skip List (%v)", art, bt, sl)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("R-tree")
}
