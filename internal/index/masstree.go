package index

import "repro/internal/machine"

// masstree models Masstree for fixed 8-byte keys. Masstree is a trie of
// B+trees; with uint64 keys the structure collapses to a single B+tree
// layer, so we model exactly that: its characteristic 15-way border/
// interior nodes, plus the per-node version validation and permutation
// indirection of its optimistic concurrency protocol, which every
// traversal pays even uncontended.
type masstree struct {
	inner btree
}

// masstreeOrder is Masstree's 15-key node fanout.
const masstreeOrder = 15

// masstreeNodeOverhead is the extra charge per visited node: version
// check, permutation decode, and the double-read of the version word.
const masstreeNodeOverhead = 14

func newMasstree() *masstree {
	return &masstree{inner: btree{order: masstreeOrder}}
}

func (m *masstree) Name() string { return "Masstree" }
func (m *masstree) Len() int     { return m.inner.n }

func (m *masstree) Insert(t *machine.Thread, key, val uint64) {
	t.Charge(masstreeNodeOverhead * float64(m.inner.height+1))
	m.inner.Insert(t, key, val)
}

func (m *masstree) Lookup(t *machine.Thread, key uint64) (uint64, bool) {
	t.Charge(masstreeNodeOverhead * float64(m.inner.height+1))
	return m.inner.Lookup(t, key)
}
