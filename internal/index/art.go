package index

import (
	"encoding/binary"

	"repro/internal/machine"
)

// ART is an adaptive radix tree over big-endian 8-byte keys with the four
// classic node kinds (Node4/16/48/256) and lazy leaf expansion. The node
// kinds have very different footprints, so ART requests a wider variety of
// allocator size classes than the other indexes — the property the paper
// credits for its sensitivity to the allocator (Figure 7a).
type art struct {
	root *artNode
	n    int
}

type artKind uint8

const (
	artLeaf artKind = iota
	artNode4
	artNode16
	artNode48
	artNode256
)

// artNode is one radix node. Children are indexed by the next key byte;
// the representation switches as fanout grows, as in the original design.
type artNode struct {
	kind artKind
	addr uint64
	size uint64

	// Leaf payload.
	key uint64
	val uint64

	// Inner payload: child byte -> node. We keep a single map Go-side for
	// all kinds; the kind determines the simulated size and access cost.
	children map[byte]*artNode
}

// Simulated sizes per node kind, matching the C++ layouts.
func artSize(kind artKind) uint64 {
	switch kind {
	case artLeaf:
		return 24
	case artNode4:
		return 56 // header + 4 key bytes + 4 pointers
	case artNode16:
		return 160 // header + 16 key bytes + 16 pointers
	case artNode48:
		return 656 // header + 256-byte index + 48 pointers
	default:
		return 2064 // header + 256 pointers
	}
}

// kindFor returns the smallest node kind that fits n children.
func kindFor(n int) artKind {
	switch {
	case n <= 4:
		return artNode4
	case n <= 16:
		return artNode16
	case n <= 48:
		return artNode48
	default:
		return artNode256
	}
}

func newART() *art { return &art{} }

func (a *art) Name() string { return "ART" }
func (a *art) Len() int     { return a.n }

func keyBytes(key uint64) [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	return b
}

func newArtLeaf(t *machine.Thread, key, val uint64) *artNode {
	n := &artNode{kind: artLeaf, key: key, val: val, size: artSize(artLeaf)}
	n.addr = t.Malloc(n.size)
	t.Write(n.addr, n.size)
	return n
}

func newArtInner(t *machine.Thread) *artNode {
	n := &artNode{kind: artNode4, size: artSize(artNode4), children: map[byte]*artNode{}}
	n.addr = t.Malloc(n.size)
	t.Write(n.addr, n.size)
	return n
}

// grow upgrades a node to the next kind when its fanout exceeds the
// current representation: allocate the bigger node, copy, free the old.
func (n *artNode) grow(t *machine.Thread) {
	want := kindFor(len(n.children))
	if want <= n.kind {
		return
	}
	oldAddr, oldSize := n.addr, n.size
	n.kind = want
	n.size = artSize(want)
	n.addr = t.Malloc(n.size)
	t.Read(oldAddr, oldSize)
	t.Write(n.addr, n.size)
	t.Free(oldAddr, oldSize)
}

func (a *art) Insert(t *machine.Thread, key, val uint64) {
	kb := keyBytes(key)
	if a.root == nil {
		a.root = newArtLeaf(t, key, val)
		a.n++
		return
	}
	var parent *artNode
	var parentByte byte
	node := a.root
	for depth := 0; ; depth++ {
		t.Read(node.addr, headerBytes(node))
		if node.kind == artLeaf {
			if node.key == key {
				node.val = val
				t.Write(node.addr, 8)
				return
			}
			// Split: replace the leaf with a chain of inner nodes down to
			// the first differing byte (no path compression; the join
			// workload's dense keys keep this shallow).
			inner := newArtInner(t)
			ob := keyBytes(node.key)
			top := inner
			d := depth
			for d < 7 && ob[d] == kb[d] {
				next := newArtInner(t)
				top.children[ob[d]] = next
				t.Write(top.addr, 16)
				top = next
				d++
			}
			top.children[ob[d]] = node
			top.children[kb[d]] = newArtLeaf(t, key, val)
			t.Write(top.addr, 16)
			if parent == nil {
				a.root = inner
			} else {
				parent.children[parentByte] = inner
				t.Write(parent.addr, 16)
			}
			a.n++
			return
		}
		child, ok := node.children[kb[depth]]
		t.Charge(4) // child index lookup within the node
		if !ok {
			node.children[kb[depth]] = newArtLeaf(t, key, val)
			node.grow(t)
			t.Write(node.addr, 16)
			a.n++
			return
		}
		parent, parentByte = node, kb[depth]
		node = child
	}
}

func headerBytes(n *artNode) uint64 {
	if n.kind == artLeaf {
		return n.size
	}
	// Reading a child pointer touches the header and the index arrays but
	// not all 256 pointers; charge the representative prefix.
	switch n.kind {
	case artNode4, artNode16:
		return n.size
	default:
		return 72 // header + key-index byte + one pointer line
	}
}

func (a *art) Lookup(t *machine.Thread, key uint64) (uint64, bool) {
	kb := keyBytes(key)
	node := a.root
	for depth := 0; node != nil; depth++ {
		t.Read(node.addr, headerBytes(node))
		if node.kind == artLeaf {
			t.Charge(4)
			if node.key == key {
				return node.val, true
			}
			return 0, false
		}
		t.Charge(4)
		node = node.children[kb[depth]]
	}
	return 0, false
}
