// Package index provides the four in-memory indexes evaluated by the
// paper's index nested-loop join workload (W4): ART (an adaptive radix
// tree), Masstree (modelled as its B+tree core with per-node version
// handshakes), a cache-optimized B+tree, and a canonical Skip List.
//
// Every index stores its nodes in simulated memory through the machine's
// configured allocator, so node size-class variety (ART's four node kinds),
// per-level pointer chases (Skip List), and fanout (B+trees) translate into
// the allocator and placement effects Figure 7 reports.
//
// Indexes are pre-built single-threaded (W4 joins against a pre-built
// index); lookups are read-only and safe to run from many simulated
// threads concurrently.
package index

import (
	"fmt"

	"repro/internal/machine"
)

// Kind names an index implementation, spelled as the paper's figures do.
type Kind string

// The four index kinds of W4.
const (
	ARTKind      Kind = "ART"
	MasstreeKind Kind = "Masstree"
	BTreeKind    Kind = "B+tree"
	SkipListKind Kind = "Skip List"
)

// Kinds lists the index kinds in the paper's order.
func Kinds() []Kind { return []Kind{ARTKind, MasstreeKind, BTreeKind, SkipListKind} }

// Index is an ordered map from uint64 keys to uint64 values living in
// simulated memory.
type Index interface {
	// Name returns the index's display name.
	Name() string
	// Insert adds or overwrites key -> val, charging the inserting thread
	// for the traversal, node writes, and any node allocations. Inserts
	// must come from a single thread (pre-build phase).
	Insert(t *machine.Thread, key, val uint64)
	// Lookup returns the value for key, charging the traversal. Lookups
	// are read-only and may run from any number of threads.
	Lookup(t *machine.Thread, key uint64) (uint64, bool)
	// Len returns the number of stored keys.
	Len() int
}

// New constructs an index of the given kind. It panics on unknown kinds so
// experiment tables fail loudly.
func New(kind Kind) Index {
	switch kind {
	case ARTKind:
		return newART()
	case MasstreeKind:
		return newMasstree()
	case BTreeKind:
		return newBTree()
	case SkipListKind:
		return newSkipList()
	default:
		panic(fmt.Sprintf("index: unknown kind %q", kind))
	}
}
