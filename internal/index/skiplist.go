package index

import (
	"repro/internal/machine"
	"repro/internal/xrand"
)

// skiplist is the canonical probabilistic skip list: towers of forward
// pointers with geometric height. Every level step is a dependent pointer
// chase to a node allocated at insert time, so lookups scatter across the
// heap — the poor locality that keeps the skip list the slowest index in
// Figure 7e despite its simplicity.
type skiplist struct {
	maxLevel int
	head     *slNode // sentinel with maxLevel forwards
	level    int
	n        int
	rng      *xrand.Rand
}

type slNode struct {
	key, val uint64
	addr     uint64
	size     uint64
	next     []*slNode
}

const slMaxLevel = 24

func newSkipList() *skiplist {
	return &skiplist{
		maxLevel: slMaxLevel,
		head:     &slNode{next: make([]*slNode, slMaxLevel)},
		level:    1,
		rng:      xrand.New(0x5b1f),
	}
}

func (s *skiplist) Name() string { return "Skip List" }
func (s *skiplist) Len() int     { return s.n }

// nodeBytes is the simulated size of a node with the given tower height:
// key, value, and one forward pointer per level.
func slNodeBytes(levels int) uint64 { return 16 + 8*uint64(levels) }

// randomLevel draws a tower height with p = 1/2 per extra level.
func (s *skiplist) randomLevel() int {
	l := 1
	for l < s.maxLevel && s.rng.Bernoulli(0.5) {
		l++
	}
	return l
}

func (s *skiplist) Insert(t *machine.Thread, key, val uint64) {
	update := make([]*slNode, s.maxLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			t.Read(x.addr, 24) // key + level-i forward pointer
			t.Charge(2)
		}
		update[i] = x
	}
	if nxt := x.next[0]; nxt != nil && nxt.key == key {
		nxt.val = val
		t.Write(nxt.addr, 8)
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	node := &slNode{key: key, val: val, size: slNodeBytes(lvl), next: make([]*slNode, lvl)}
	node.addr = t.Malloc(node.size)
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	t.Write(node.addr, node.size)
	for i := 0; i < lvl; i++ {
		if update[i] != s.head {
			t.Write(update[i].addr, 8)
		}
	}
	s.n++
}

func (s *skiplist) Lookup(t *machine.Thread, key uint64) (uint64, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			t.Read(x.addr, 24)
			t.Charge(2)
		}
	}
	x = x.next[0]
	if x != nil {
		t.Read(x.addr, 24)
		t.Charge(2)
		if x.key == key {
			return x.val, true
		}
	}
	return 0, false
}
