package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOnce(t *testing.T) {
	var tab Table[int, int]
	builds := 0
	for i := 0; i < 5; i++ {
		if v := tab.Get(7, func() int { builds++; return 49 }); v != 49 {
			t.Fatalf("Get = %d, want 49", v)
		}
	}
	if builds != 1 {
		t.Errorf("builder ran %d times, want 1", builds)
	}
	if hits, misses := tab.Stats(); hits != 4 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 4/1", hits, misses)
	}
}

func TestGetDistinctKeys(t *testing.T) {
	var tab Table[string, int]
	a := tab.Get("a", func() int { return 1 })
	b := tab.Get("b", func() int { return 2 })
	if a != 1 || b != 2 {
		t.Errorf("got %d, %d; want 1, 2", a, b)
	}
}

func TestGetConcurrentSingleBuild(t *testing.T) {
	var tab Table[int, []int]
	var builds int64
	var wg sync.WaitGroup
	const callers = 32
	results := make([][]int, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = tab.Get(1, func() []int {
				atomic.AddInt64(&builds, 1)
				return []int{1, 2, 3}
			})
		}(c)
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("builder ran %d times under contention, want 1", builds)
	}
	for c := 1; c < callers; c++ {
		if &results[c][0] != &results[0][0] {
			t.Fatal("concurrent callers did not share the built value")
		}
	}
}

func TestReset(t *testing.T) {
	var tab Table[int, int]
	tab.Get(1, func() int { return 1 })
	tab.Reset()
	builds := 0
	tab.Get(1, func() int { builds++; return 1 })
	if builds != 1 {
		t.Error("Reset should drop cached entries")
	}
	if hits, misses := tab.Stats(); hits != 0 || misses != 1 {
		t.Errorf("stats after reset = %d/%d, want 0/1", hits, misses)
	}
}
