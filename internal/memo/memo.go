// Package memo provides a small concurrency-safe memoization table used to
// share deterministically generated, read-only artifacts (datasets, TPC-H
// databases) across experiment grid cells. Builders keyed by identical
// inputs run exactly once even under concurrent lookups; every other caller
// blocks until the first build finishes and then shares the result.
//
// Values handed out by a Table are shared: callers must treat them as
// immutable. That holds for the simulator's datasets, which are read-only
// after generation.
package memo

import "sync"

// Table memoizes values of type V by comparable key K.
type Table[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	hits    uint64
	misses  uint64
}

type entry[V any] struct {
	once sync.Once
	v    V
}

// Get returns the value for key, building it with build on first use. The
// build for a given key runs exactly once; concurrent callers for the same
// key wait for it rather than duplicating work.
func (t *Table[K, V]) Get(key K, build func() V) V {
	t.mu.Lock()
	e, ok := t.entries[key]
	if !ok {
		if t.entries == nil {
			t.entries = make(map[K]*entry[V])
		}
		e = &entry[V]{}
		t.entries[key] = e
		t.misses++
	} else {
		t.hits++
	}
	t.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}

// Stats reports cache hits and misses so far.
func (t *Table[K, V]) Stats() (hits, misses uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// Reset drops all cached entries and zeroes the stats, releasing the
// memory they held.
func (t *Table[K, V]) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
	t.hits, t.misses = 0, 0
}
