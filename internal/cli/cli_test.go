package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/span"
)

// TestFlagParity pins the shared flag names: both CLIs register this
// exact set, so renaming one here renames it everywhere.
func TestFlagParity(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	want := []string{"cpuprofile", "json", "machine-parallel", "memprofile", "spans", "trace", "validate"}
	var got []string
	fs.VisitAll(func(fl *flag.Flag) { got = append(got, fl.Name) })
	if len(got) != len(want) {
		t.Fatalf("registered flags %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered flags %v, want %v", got, want)
		}
	}
}

func testRecord(cell string) experiments.Record {
	return experiments.Record{
		Schema:     experiments.SchemaVersion,
		Experiment: "test",
		Cell:       cell,
	}
}

func TestAppendAndValidateJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	if err := AppendJSONL(path, []experiments.Record{testRecord("a")}); err != nil {
		t.Fatal(err)
	}
	// Append must extend, not truncate.
	if err := AppendJSONL(path, []experiments.Record{testRecord("b")}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("validated %d records, want 2", n)
	}
	if err := os.WriteFile(path, []byte(`{"bogus":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSONL(path); err == nil {
		t.Fatal("ValidateJSONL accepted a schemaless record")
	}
}

// TestWriteAndValidateSpans exercises the span JSONL plumbing and the
// schema-dispatching -validate path on both file types.
func TestWriteAndValidateSpans(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "s.jsonl")
	spans := []span.Span{
		{ID: 1, Kind: span.KindRequest, Name: "point", Seq: 0, Thread: 0, Start: 0, End: 10},
		{ID: 2, Parent: 1, Kind: span.KindService, Name: "point", Seq: 0, Thread: 0, Start: 2, End: 9},
	}
	if err := WriteSpans(spath, spans); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateSpansJSONL(spath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("validated %d spans, want 2", n)
	}

	// HandleValidate must dispatch by schema: a span file validates as
	// spans, a record file as records, and a span file fed to the record
	// reader would have failed — so a passing dispatch proves the sniff.
	rpath := filepath.Join(dir, "r.jsonl")
	if err := AppendJSONL(rpath, []experiments.Record{testRecord("a")}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{spath, rpath} {
		f := Flags{Validate: p}
		done, err := f.HandleValidate(os.Stdout)
		if !done || err != nil {
			t.Fatalf("HandleValidate(%s) = %v, %v", p, done, err)
		}
	}
	if _, err := ValidateSpansJSONL(rpath); err == nil {
		t.Fatal("ValidateSpansJSONL accepted a bench-record file")
	}
}

// TestAttachTraceAndTraceOf runs a tiny workload on a traced machine and
// checks the collected process carries events and snapshots.
func TestAttachTraceAndTraceOf(t *testing.T) {
	m := machine.NewB()
	cfg := machine.DefaultConfig(4)
	cfg.AutoNUMA = true
	m.Configure(cfg)
	AttachTrace(m)
	m.Run(4, func(th *machine.Thread) {
		base := th.Malloc(1 << 16)
		for i := 0; i < 200; i++ {
			th.Write(base+uint64(i)*64, 64)
		}
		th.Free(base, 1<<16)
	})
	tp, ok := TraceOf("cell", m)
	if !ok {
		t.Fatal("TraceOf found no events on a traced machine")
	}
	if tp.Name != "cell" || tp.FreqGHz != m.Spec.FreqGHz || len(tp.Events) == 0 {
		t.Fatalf("TraceOf = %+v", tp)
	}

	// An untraced machine yields nothing.
	m2 := machine.NewB()
	m2.Configure(machine.DefaultConfig(4))
	if _, ok := TraceOf("cell", m2); ok {
		t.Fatal("TraceOf reported a trace for an untraced machine")
	}
}

// TestRecordCollectors checks RecordTraces/RecordFolded use the id/cell
// naming the determinism tests pin down and skip unprofiled records.
func TestRecordCollectors(t *testing.T) {
	m := machine.NewB()
	m.Configure(machine.DefaultConfig(2))
	m.Observe(machine.ObserveOptions{Profile: true})
	m.Run(2, func(th *machine.Thread) { th.Charge(100) })
	res := &experiments.Result{Id: "exp", Records: []experiments.Record{
		{Cell: "plain"},
		{Cell: "profiled", Profile: m.Profile()},
	}}
	folded := RecordFolded(res)
	if len(folded) != 1 || folded[0].Name != "exp/profiled" {
		t.Fatalf("RecordFolded = %+v", folded)
	}
	if procs := RecordTraces(res); len(procs) != 0 {
		t.Fatalf("RecordTraces invented %d processes for untraced records", len(procs))
	}
}

// TestRecordTracesCarrySpans checks each traced cell's process carries
// exactly its own Cell-stamped spans, so the Chrome trace renders request
// lifelines next to that cell's machine events.
func TestRecordTracesCarrySpans(t *testing.T) {
	experiments.SetCellTracing(true)
	experiments.SetCellSpans(true)
	defer experiments.SetCellTracing(false)
	defer experiments.SetCellSpans(false)
	r, err := experiments.Serve(experiments.Tiny, experiments.ServeOptions{Requests: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spans) == 0 {
		t.Fatal("serve collected no spans")
	}
	res := &experiments.Result{Id: "serve", Records: r.Records, Spans: r.Spans}
	procs := RecordTraces(res)
	if len(procs) == 0 {
		t.Fatal("no traced processes")
	}
	total := 0
	for _, p := range procs {
		cell := strings.TrimPrefix(p.Name, "serve/")
		for _, s := range p.Spans {
			if s.Cell != cell {
				t.Fatalf("process %s carries span for cell %s", p.Name, s.Cell)
			}
		}
		total += len(p.Spans)
	}
	if total != len(r.Spans) {
		t.Fatalf("processes carry %d spans, result has %d", total, len(r.Spans))
	}
}

func TestWriteFoldedAndChromeTrace(t *testing.T) {
	m := machine.NewB()
	m.Configure(machine.DefaultConfig(2))
	m.Observe(machine.ObserveOptions{Profile: true})
	AttachTrace(m)
	m.Run(2, func(th *machine.Thread) {
		base := th.Malloc(4096)
		th.Write(base, 64)
		th.Free(base, 4096)
	})

	dir := t.TempDir()
	fp := filepath.Join(dir, "p.folded")
	if err := WriteFolded(fp, []report.FoldedProfile{{Name: "c", Profile: m.Profile()}}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "c;thread 0;") {
		t.Fatalf("folded output missing frames:\n%s", b)
	}

	tp, ok := TraceOf("c", m)
	if !ok {
		t.Fatal("no trace")
	}
	cp := filepath.Join(dir, "t.json")
	if err := WriteChromeTrace(cp, []report.TraceProcess{tp}); err != nil {
		t.Fatal(err)
	}
	if b, err = os.ReadFile(cp); err != nil || len(b) == 0 {
		t.Fatalf("chrome trace: %v, %d bytes", err, len(b))
	}
}

// TestStartHostProfiles exercises the pprof plumbing end to end.
func TestStartHostProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	stop, err := f.StartHostProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("%s: %v (size %v)", p, err, fi)
		}
	}

	// The zero value is a no-op pipeline.
	stop, err = (&Flags{}).StartHostProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
