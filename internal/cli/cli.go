// Package cli holds the flag handling and output plumbing shared by the
// benchmark commands (numabench, tpchbench): the structured JSONL sink
// and its validator, Chrome trace collection, folded-stack export, and
// host pprof profiles. Keeping it in one place guarantees the CLIs agree
// on flag names, help text and file formats.
package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/span"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/tune"
)

// snapshotEvery is the counter-snapshot cadence for traced machines, in
// simulated cycles — the same cadence internal/experiments uses for its
// traced grid cells, so counter tracks line up across the two CLIs.
const snapshotEvery = 1e5

// Flags are the output flags both benchmark CLIs share. Register installs
// them; the zero value means "off" for every feature.
type Flags struct {
	JSON       string // -json: JSONL append path
	Trace      string // -trace: Chrome trace-event output path
	Spans      string // -spans: request-span JSONL output path
	Validate   string // -validate: JSONL file to check, then exit
	CPUProfile string // -cpuprofile: host pprof CPU profile path
	MemProfile string // -memprofile: host pprof heap profile path

	// MachineParallel is -machine-parallel: the host-core budget each
	// simulated machine may use for its parallel-safe phases
	// (machine.RunParallel). Simulation output is byte-identical at any
	// value; only host wall time changes. Applied by ApplyMachineFlags.
	MachineParallel int
}

// Register installs the shared flags on fs with identical names and help
// text across commands.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "record simulator event traces and write a Chrome trace-event file")
	fs.StringVar(&f.Spans, "spans", "", "collect request spans and write them as repro/spans/v1 JSONL to this file")
	f.RegisterNoTrace(fs)
}

// RegisterNoTrace installs the shared flags except -trace, for commands
// whose artifacts carry no event stream (numatune: campaign records are
// fully deterministic, and a trace would change nothing but file size).
func (f *Flags) RegisterNoTrace(fs *flag.FlagSet) {
	fs.IntVar(&f.MachineParallel, "machine-parallel", 1,
		"host cores per simulated machine for node-parallel phases (0 = GOMAXPROCS); output is identical to -machine-parallel 1")
	fs.StringVar(&f.JSON, "json", "", "append one JSONL record per cell to this file")
	fs.StringVar(&f.Validate, "validate", "", "validate a JSONL results file against the schema and exit")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a host pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a host pprof heap profile to this file")
}

// ApplyMachineFlags applies the flags that configure the simulator
// process-globally. Call once after flag parsing, before any machine is
// built.
func (f *Flags) ApplyMachineFlags() {
	n := f.MachineParallel
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	machine.SetDefaultHostParallelism(n)
}

// HandleValidate runs the -validate action when requested: it sniffs the
// file's schema from its first line and checks it against the matching
// strict reader — experiment records (repro/bench/*), request spans
// (repro/spans/v1) or tune campaigns (repro/tune/v1) — then prints a
// one-line summary. It reports whether the flag was set (the command
// should exit afterwards).
func (f *Flags) HandleValidate(w *os.File) (bool, error) {
	if f.Validate == "" {
		return false, nil
	}
	schema, err := sniffSchema(f.Validate)
	if err != nil {
		return true, err
	}
	switch {
	case strings.HasPrefix(schema, "repro/spans/"):
		n, err := ValidateSpansJSONL(f.Validate)
		if err != nil {
			return true, err
		}
		fmt.Fprintf(w, "%s: %d spans, schema %s\n", f.Validate, n, span.Schema)
	case strings.HasPrefix(schema, "repro/tune/"):
		n, err := ValidateTuneJSONL(f.Validate)
		if err != nil {
			return true, err
		}
		fmt.Fprintf(w, "%s: %d trials, schema %s\n", f.Validate, n, tune.SchemaVersion)
	default:
		n, err := ValidateJSONL(f.Validate)
		if err != nil {
			return true, err
		}
		fmt.Fprintf(w, "%s: %d records, schema %s\n", f.Validate, n, experiments.SchemaVersion)
	}
	return true, nil
}

// sniffSchema reads the schema field off a JSONL file's first non-empty
// line, so -validate can dispatch to the right strict reader. An empty
// or schemaless first line returns "", which falls through to the
// experiment-record reader (whose error message names the schema).
func sniffSchema(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Schema string `json:"schema"`
		}
		// Ignore decode errors: the strict reader will report them better.
		_ = json.Unmarshal(line, &probe)
		return probe.Schema, nil
	}
	return "", sc.Err()
}

// StartHostProfiles starts the CPU profile when -cpuprofile is set and
// returns a stop function that finishes it and writes the heap profile
// when -memprofile is set. Call stop exactly once, after the workload.
func (f *Flags) StartHostProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	memPath := f.MemProfile
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// AppendJSONL appends records to path, creating the file if needed.
func AppendJSONL(path string, recs []experiments.Record) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := experiments.WriteJSONL(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateSpansJSONL checks a span artifact against the repro/spans/v1
// strict reader and returns the span count.
func ValidateSpansJSONL(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	spans, err := span.ReadJSONL(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return len(spans), nil
}

// WriteSpans appends request spans to path as repro/spans/v1 JSONL,
// creating the file if needed — the span counterpart of AppendJSONL.
func WriteSpans(path string, spans []span.Span) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := span.WriteJSONL(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateTuneJSONL checks a campaign artifact against the repro/tune/v1
// strict reader and returns the record count.
func ValidateTuneJSONL(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	recs, err := tune.ReadJSONL(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return len(recs), nil
}

// CacheSummary formats the dataset and TPC-H memo-cache counters in one
// line, so progress output shows long runs reuse generated data instead
// of rebuilding it per trial.
func CacheSummary() string {
	dh, dm := datagen.CacheStats()
	th, tm := tpch.GenCacheStats()
	return fmt.Sprintf("cache: datasets %d hits / %d builds, tpch %d hits / %d builds",
		dh, dm, th, tm)
}

// ValidateJSONL checks path against the strict schema reader and returns
// the record count.
func ValidateJSONL(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	recs, err := experiments.ReadJSONL(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return len(recs), nil
}

// AttachTrace wires an event recorder and periodic counter snapshots to a
// machine the caller built directly (the tpchbench path; experiment grid
// cells get theirs from SetCellTracing instead).
func AttachTrace(m *machine.Machine) {
	m.Observe(machine.ObserveOptions{Trace: true, SnapEvery: snapshotEvery})
}

// TraceOf reads the recorder and snapshots off a machine AttachTrace was
// called on, as one named Chrome trace process. ok is false when the
// machine has no recorder or recorded nothing.
func TraceOf(name string, m *machine.Machine) (tp report.TraceProcess, ok bool) {
	rec, has := m.Trace().(*trace.Recorder)
	if !has || len(rec.Events) == 0 {
		return report.TraceProcess{}, false
	}
	return report.TraceProcess{
		Name:      name,
		FreqGHz:   m.Spec.FreqGHz,
		Events:    rec.Events,
		Snapshots: m.Snapshots(),
	}, true
}

// RecordTraces collects the trace processes of an experiment result's
// records (populated when SetCellTracing was on), named id/cell. Spans
// collected for a cell ride on its process, so the Chrome trace shows
// request lifelines and flow arrows over the machine tracks.
func RecordTraces(res *experiments.Result) []report.TraceProcess {
	var procs []report.TraceProcess
	for i := range res.Records {
		rec := &res.Records[i]
		ev := rec.TraceEvents()
		if len(ev) == 0 {
			continue
		}
		var spans []span.Span
		for _, s := range res.Spans {
			if s.Cell == rec.Cell {
				spans = append(spans, s)
			}
		}
		procs = append(procs, report.TraceProcess{
			Name:      res.Id + "/" + rec.Cell,
			FreqGHz:   rec.FreqGHz,
			Events:    ev,
			Snapshots: rec.Snapshots,
			Spans:     spans,
		})
	}
	return procs
}

// RecordFolded collects the folded-stack profiles of an experiment
// result's records (populated when SetCellProfiling was on), named
// id/cell — the exact layout the determinism tests pin down.
func RecordFolded(res *experiments.Result) []report.FoldedProfile {
	var profs []report.FoldedProfile
	for i := range res.Records {
		rec := &res.Records[i]
		if rec.Profile == nil {
			continue
		}
		profs = append(profs, report.FoldedProfile{
			Name:    res.Id + "/" + rec.Cell,
			Profile: rec.Profile,
		})
	}
	return profs
}

// WriteChromeTrace writes the collected processes as one Chrome
// trace-event file loadable in Perfetto or speedscope.
func WriteChromeTrace(path string, procs []report.TraceProcess) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.ChromeTrace(f, procs...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFolded writes the collected profiles in folded-stack format, one
// frame line per (process, thread, component) — load directly into
// speedscope or flamegraph.pl.
func WriteFolded(path string, profs []report.FoldedProfile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.FoldedStacks(f, profs...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
