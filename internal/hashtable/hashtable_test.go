package hashtable

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/vmm"
)

// withThread runs fn on a single simulated thread of a small machine.
func withThread(t *testing.T, fn func(th *machine.Thread)) machine.Result {
	t.Helper()
	m := machine.NewB()
	m.Configure(machine.RunConfig{
		Threads:   1,
		Placement: machine.PlaceSparse,
		Policy:    vmm.FirstTouch,
		Allocator: "tbbmalloc",
		Seed:      1,
	})
	return m.Run(1, fn)
}

func TestPutGet(t *testing.T) {
	withThread(t, func(th *machine.Thread) {
		h := New(th, 1024)
		for k := uint64(0); k < 500; k++ {
			h.Put(th, k*7, uint32(k))
		}
		for k := uint64(0); k < 500; k++ {
			v, ok := h.Get(th, k*7)
			if !ok || v != uint32(k) {
				t.Errorf("Get(%d) = %d,%v want %d,true", k*7, v, ok, k)
			}
		}
		if _, ok := h.Get(th, 999999); ok {
			t.Error("found a key never inserted")
		}
		if h.Len() != 500 {
			t.Errorf("Len = %d, want 500", h.Len())
		}
	})
}

func TestGetOrPut(t *testing.T) {
	withThread(t, func(th *machine.Thread) {
		h := New(th, 64)
		v1, ins1 := h.GetOrPut(th, 42, func() uint32 { return 7 })
		if !ins1 || v1 != 7 {
			t.Fatalf("first GetOrPut = %d,%v", v1, ins1)
		}
		v2, ins2 := h.GetOrPut(th, 42, func() uint32 { return 8 })
		if ins2 || v2 != 7 {
			t.Fatalf("second GetOrPut = %d,%v, want existing 7", v2, ins2)
		}
	})
}

func TestMatchesMapSemantics(t *testing.T) {
	withThread(t, func(th *machine.Thread) {
		h := New(th, 128)
		ref := map[uint64]uint32{}
		f := func(keys []uint64) bool {
			for _, k := range keys {
				want := uint32(k % 1000)
				if _, ok := ref[k]; !ok {
					ref[k] = want
					h.Put(th, k, want)
				}
				got, ok := h.Get(th, k)
				if !ok || got != ref[k] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Error(err)
		}
	})
}

func TestForEachVisitsAll(t *testing.T) {
	withThread(t, func(th *machine.Thread) {
		h := New(th, 64)
		want := map[uint64]uint32{}
		for k := uint64(0); k < 200; k++ {
			h.Put(th, k, uint32(k*2))
			want[k] = uint32(k * 2)
		}
		got := map[uint64]uint32{}
		h.ForEach(th, func(k uint64, v uint32) { got[k] = v })
		if len(got) != len(want) {
			t.Fatalf("visited %d entries, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("key %d: got %d want %d", k, got[k], v)
			}
		}
	})
}

func TestCollisionChains(t *testing.T) {
	withThread(t, func(th *machine.Thread) {
		h := New(th, 1) // one bucket: everything chains
		for k := uint64(0); k < 50; k++ {
			h.Put(th, k, uint32(k))
		}
		for k := uint64(0); k < 50; k++ {
			if v, ok := h.Get(th, k); !ok || v != uint32(k) {
				t.Fatalf("chained Get(%d) = %d,%v", k, v, ok)
			}
		}
	})
}

func TestReleaseReturnsMemory(t *testing.T) {
	m := machine.NewB()
	m.Configure(machine.RunConfig{Threads: 1, Placement: machine.PlaceSparse, Allocator: "ptmalloc", Seed: 1})
	m.Run(1, func(th *machine.Thread) {
		h := New(th, 256)
		for k := uint64(0); k < 1000; k++ {
			h.Put(th, k, uint32(k))
		}
		h.Release(th)
	})
	stats := m.Alloc.Stats()
	if stats.LiveBytes != 0 {
		t.Errorf("live bytes after release = %d, want 0", stats.LiveBytes)
	}
}

func TestAccessesAreCharged(t *testing.T) {
	res := withThread(t, func(th *machine.Thread) {
		h := New(th, 4096)
		for k := uint64(0); k < 5000; k++ {
			h.Put(th, k, uint32(k))
		}
		for k := uint64(0); k < 5000; k++ {
			h.Get(th, k)
		}
	})
	if res.Counters.CacheAccesses == 0 {
		t.Error("hash table operations must reach the cache hierarchy")
	}
	if res.WallCycles < 5000*hashCycles {
		t.Error("wall cycles implausibly low for 10k table operations")
	}
}
