// Package hashtable provides the shared, concurrent chaining hash table
// used by the aggregation and hash-join workloads (W1-W3). It mirrors the
// paper's shared global table design: a bucket array in simulated memory
// with individually heap-allocated chain nodes, so every probe charges the
// accessing thread for the bucket and node cache lines it walks, and every
// insert exercises the configured memory allocator.
//
// The table's Go-side bookkeeping is plain data because the machine
// scheduler runs exactly one simulated thread at a time; concurrency costs
// (per-bucket CAS) are charged explicitly.
package hashtable

import (
	"repro/internal/machine"
)

const (
	bucketBytes = 8  // one head pointer per bucket
	nodeBytes   = 24 // key + value + next pointer

	hashCycles = 8 // one multiplicative hash
	casCycles  = 18
	cmpCycles  = 2
)

type node struct {
	key  uint64
	val  uint32
	next int32
	addr uint64
}

// Table is a chaining hash table from uint64 keys to uint32 values (the
// values are typically indexes into caller-managed arrays).
type Table struct {
	mask      uint64
	arrayAddr uint64
	heads     []int32
	nodes     []node
}

// New allocates a table with the given bucket count (rounded up to a power
// of two) through t's allocator, charging the array's first touches to t.
func New(t *machine.Thread, buckets int) *Table {
	n := 1
	for n < buckets {
		n <<= 1
	}
	h := &Table{
		mask:  uint64(n - 1),
		heads: make([]int32, n),
	}
	for i := range h.heads {
		h.heads[i] = -1
	}
	h.arrayAddr = t.Malloc(uint64(n) * bucketBytes)
	// Initialize the bucket array (empty-head sentinel writes). Like the
	// real implementations' constructor memset, this first-touches the
	// whole array on the creating thread's node — under First Touch the
	// shared table lands on one node, the placement pathology at the
	// heart of the paper's Figure 5/6 results.
	t.Write(h.arrayAddr, uint64(n)*bucketBytes)
	return h
}

// hash mixes the key; the cost is charged by the callers.
func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

func (h *Table) bucketOf(key uint64) uint64 { return hash(key) & h.mask }

// bucketAddr returns the simulated address of bucket b's head pointer.
func (h *Table) bucketAddr(b uint64) uint64 { return h.arrayAddr + b*bucketBytes }

// Get probes for key, charging the thread for the bucket and chain
// accesses. It returns the stored value and whether the key was present.
func (h *Table) Get(t *machine.Thread, key uint64) (uint32, bool) {
	t.Charge(hashCycles)
	b := h.bucketOf(key)
	t.Read(h.bucketAddr(b), bucketBytes)
	for i := h.heads[b]; i >= 0; i = h.nodes[i].next {
		n := &h.nodes[i]
		t.Read(n.addr, nodeBytes)
		t.Charge(cmpCycles)
		if n.key == key {
			return n.val, true
		}
	}
	return 0, false
}

// Put inserts key -> val without checking for duplicates (the hash-join
// build side relies on this: build keys are unique).
func (h *Table) Put(t *machine.Thread, key uint64, val uint32) {
	t.Charge(hashCycles)
	b := h.bucketOf(key)
	h.insert(t, b, key, val)
}

// GetOrPut returns the existing value for key, or inserts the value
// returned by mk and reports inserted=true. This is the aggregation
// upsert: probe, then a CAS-guarded chain push on miss.
//
// Every charged operation (Read, Malloc, mk's allocations) is a potential
// yield point where other simulated threads run, so the implementation is
// a real CAS-retry loop: after any yield it re-scans the chain prefix that
// appeared since, exactly as a lock-free table would after a failed CAS.
// If a racing thread inserted the key first, mk's result is abandoned (the
// caller must tolerate unreferenced results, as real upsert code tolerates
// losing the race after speculative allocation).
func (h *Table) GetOrPut(t *machine.Thread, key uint64, mk func() uint32) (val uint32, inserted bool) {
	t.Charge(hashCycles)
	b := h.bucketOf(key)
	t.Read(h.bucketAddr(b), bucketBytes)
	stop := int32(-1) // everything at/after this node has been scanned
	var v uint32
	made := false
	var addr uint64
	haveNode := false
	for {
		start := h.heads[b]
		for i := start; i >= 0 && i != stop; i = h.nodes[i].next {
			n := &h.nodes[i]
			t.Read(n.addr, nodeBytes)
			t.Charge(cmpCycles)
			if n.key == key {
				if haveNode {
					t.Free(addr, nodeBytes)
				}
				return n.val, false
			}
		}
		if h.heads[b] != start {
			// A reader yield let a racer extend the chain: rescan it.
			stop = start
			t.Charge(casCycles)
			continue
		}
		stop = start
		if !made {
			v = mk() // may yield inside its allocations
			made = true
		}
		if !haveNode {
			addr = t.Malloc(nodeBytes) // may yield
			haveNode = true
		}
		if h.heads[b] != stop {
			t.Charge(casCycles) // CAS failed; rescan the new prefix
			continue
		}
		// Commit the Go-side state before charging anything that could
		// yield: this is the linearization point.
		h.nodes = append(h.nodes, node{key: key, val: v, next: h.heads[b], addr: addr})
		h.heads[b] = int32(len(h.nodes) - 1)
		t.Write(addr, nodeBytes)
		t.Read(h.bucketAddr(b), bucketBytes)
		t.Write(h.bucketAddr(b), bucketBytes)
		t.Charge(casCycles)
		return v, true
	}
}

// insert pushes a fresh node at the head of bucket b. The chain link and
// head update commit before any further charges, so a yield inside Malloc
// or the trailing writes cannot lose a concurrent insert.
func (h *Table) insert(t *machine.Thread, b uint64, key uint64, val uint32) {
	addr := t.Malloc(nodeBytes)
	h.nodes = append(h.nodes, node{key: key, val: val, next: h.heads[b], addr: addr})
	h.heads[b] = int32(len(h.nodes) - 1)
	t.Write(addr, nodeBytes)
	// Concurrent head swap: read-modify-write with a CAS.
	t.Read(h.bucketAddr(b), bucketBytes)
	t.Write(h.bucketAddr(b), bucketBytes)
	t.Charge(casCycles)
}

// Len returns the number of stored entries.
func (h *Table) Len() int { return len(h.nodes) }

// Buckets returns the bucket count.
func (h *Table) Buckets() int { return len(h.heads) }

// ForEach calls fn for every (key, value) pair, charging sequential reads
// to t. Iteration order is bucket order, deterministic.
func (h *Table) ForEach(t *machine.Thread, fn func(key uint64, val uint32)) {
	for b := range h.heads {
		t.Read(h.bucketAddr(uint64(b)), bucketBytes)
		for i := h.heads[b]; i >= 0; i = h.nodes[i].next {
			n := &h.nodes[i]
			t.Read(n.addr, nodeBytes)
			fn(n.key, n.val)
		}
	}
}

// Release frees the node heap and the bucket array back to the allocator.
func (h *Table) Release(t *machine.Thread) {
	for i := range h.nodes {
		t.Free(h.nodes[i].addr, nodeBytes)
	}
	t.Free(h.arrayAddr, uint64(len(h.heads))*bucketBytes)
	h.nodes = nil
}
