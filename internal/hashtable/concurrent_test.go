package hashtable

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/vmm"
)

// These tests exercise the table under genuinely interleaved simulated
// threads (small quantum => frequent yields inside table operations),
// verifying the CAS-retry upsert's linearizability guarantees.

func contendedMachine(quantum float64) *machine.Machine {
	m := machine.NewB()
	m.Configure(machine.RunConfig{
		Threads:   16,
		Placement: machine.PlaceSparse,
		Policy:    vmm.Interleave,
		Allocator: "ptmalloc",
		Seed:      99,
	})
	m.P.Quantum = quantum // tiny quantum: yields mid-operation constantly
	return m
}

func TestGetOrPutNoDuplicatesUnderContention(t *testing.T) {
	m := contendedMachine(200)
	var table *Table
	m.Run(1, func(th *machine.Thread) { table = New(th, 256) })
	const distinct = 200
	inserted := make([]int, 16)
	m.Run(16, func(th *machine.Thread) {
		// Every thread upserts the same key set in different orders, so
		// almost every insert races.
		for i := 0; i < distinct; i++ {
			key := uint64((i*7+th.ID()*13)%distinct) * 3
			_, fresh := table.GetOrPut(th, key, func() uint32 { return uint32(key) })
			if fresh {
				inserted[th.ID()]++
			}
		}
	})
	if table.Len() != distinct {
		t.Fatalf("Len = %d, want %d (duplicate inserts under contention)", table.Len(), distinct)
	}
	total := 0
	for _, n := range inserted {
		total += n
	}
	if total != distinct {
		t.Fatalf("%d successful inserts reported, want %d", total, distinct)
	}
	// Every key resolves to the single winning value.
	m.Run(1, func(th *machine.Thread) {
		for i := 0; i < distinct; i++ {
			key := uint64(i) * 3
			v, ok := table.Get(th, key)
			if !ok || v != uint32(key) {
				t.Fatalf("Get(%d) = %d,%v", key, v, ok)
			}
		}
	})
}

func TestConcurrentPutDistinctKeysNoLoss(t *testing.T) {
	m := contendedMachine(150)
	var table *Table
	m.Run(1, func(th *machine.Thread) { table = New(th, 64) }) // heavy chaining
	const perThread = 100
	m.Run(16, func(th *machine.Thread) {
		for i := 0; i < perThread; i++ {
			table.Put(th, uint64(th.ID()*perThread+i), uint32(th.ID()))
		}
	})
	if table.Len() != 16*perThread {
		t.Fatalf("Len = %d, want %d (lost inserts)", table.Len(), 16*perThread)
	}
	m.Run(1, func(th *machine.Thread) {
		for k := uint64(0); k < 16*perThread; k++ {
			if v, ok := table.Get(th, k); !ok || int(v) != int(k)/perThread {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		}
	})
}

func TestUpsertRaceChargesRetries(t *testing.T) {
	// The losing side of an upsert race frees its speculative node; the
	// allocator must come back to zero live bytes once everything is
	// released.
	m := contendedMachine(200)
	var table *Table
	m.Run(1, func(th *machine.Thread) { table = New(th, 128) })
	m.Run(16, func(th *machine.Thread) {
		for i := 0; i < 50; i++ {
			table.GetOrPut(th, uint64(i), func() uint32 { return uint32(i) })
		}
	})
	m.Run(1, func(th *machine.Thread) { table.Release(th) })
	if live := m.Alloc.Stats().LiveBytes; live != 0 {
		t.Fatalf("live bytes after release = %d (leaked race-loser nodes)", live)
	}
}
