// Package numaop implements NUMA-aware query operators on the machine
// simulator: per-node chunked column storage (the Chapel multi-ddata
// design) and the massively-parallel sort-merge join of Albutiu et al.
// (MPSM). Where the rest of the repository treats NUMA as something the
// *configuration* fixes — placement, policy, allocator, AutoNUMA, THP —
// this package builds operators that are NUMA-aware by construction, so
// experiments can measure where the paper's application-agnostic knobs
// stop being enough (the `numaware` experiment).
//
// The storage design follows the Chapel multi-ddata chip (SNIPPETS.md
// §3): one storage chunk per NUMA domain instead of a single region,
// with worker scheduling matched to chunk affinity. Its documented
// pitfall — chunk-index arithmetic on the per-element access path made
// dsiAccess ~8x slower — dictates the API shape: addressing is resolved
// once per *extent* (Extents, ReadRange), never per element, and whole
// chunk extents are fed to the simulator's batched run API.
package numaop

import "repro/internal/machine"

// Extent is one contiguous piece of a chunked range: rows [Lo, Lo+Count)
// living back-to-back at Addr inside chunk Chunk. Extents carry resolved
// addresses so per-element code never recomputes chunk arithmetic.
type Extent struct {
	Chunk int
	Addr  uint64
	Lo    int
	Count int
}

// ChunkedColumn is a fixed-width column of Rows elements split into
// equally sized chunks, each chunk a separate simulated allocation —
// typically one per NUMA node, first-touched by a worker running there.
// The zero value is unusable; build with NewChunkedColumn, then have the
// loading workers allocate their chunks and record them with SetBase.
type ChunkedColumn struct {
	Width uint64 // element width, bytes
	Rows  int

	chunkRows int // rows per chunk; the last chunk may be short
	bases     []uint64
}

// NewChunkedColumn lays out a column of rows elements of width bytes over
// the given number of chunks. Chunk bases start unset (zero); the loader
// assigns them with SetBase after allocating each chunk on its node.
func NewChunkedColumn(width uint64, rows, chunks int) *ChunkedColumn {
	if chunks < 1 {
		chunks = 1
	}
	if chunks > rows && rows > 0 {
		chunks = rows
	}
	per := (rows + chunks - 1) / chunks
	if per < 1 {
		per = 1
	}
	return &ChunkedColumn{
		Width:     width,
		Rows:      rows,
		chunkRows: per,
		bases:     make([]uint64, chunks),
	}
}

// Chunks returns the chunk count.
func (c *ChunkedColumn) Chunks() int { return len(c.bases) }

// ChunkRange returns the global row range [lo, hi) stored in chunk ci.
func (c *ChunkedColumn) ChunkRange(ci int) (lo, hi int) {
	lo = ci * c.chunkRows
	hi = lo + c.chunkRows
	if hi > c.Rows {
		hi = c.Rows
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ChunkBytes returns the allocation size of chunk ci.
func (c *ChunkedColumn) ChunkBytes(ci int) uint64 {
	lo, hi := c.ChunkRange(ci)
	return uint64(hi-lo) * c.Width
}

// SetBase records the simulated base address of chunk ci, as allocated by
// the loading worker that first-touches it.
func (c *ChunkedColumn) SetBase(ci int, addr uint64) { c.bases[ci] = addr }

// Base returns the simulated base address of chunk ci.
func (c *ChunkedColumn) Base(ci int) uint64 { return c.bases[ci] }

// ChunkOf returns the chunk index holding row i. Like Addr this divides,
// so hot loops resolve it once per chunk (or per cursor window), not per
// element.
func (c *ChunkedColumn) ChunkOf(i int) int { return i / c.chunkRows }

// Addr resolves the address of row i — the scalar, point-access path. It
// performs the chunk-index division the Chapel chip warns about, so scans
// must not call it per element; they use Extents or ReadRange instead.
func (c *ChunkedColumn) Addr(i int) uint64 {
	ci := i / c.chunkRows
	return c.bases[ci] + uint64(i-ci*c.chunkRows)*c.Width
}

// Extents resolves rows [lo, hi) into chunk extents: all chunk-index
// arithmetic for the range happens here, once, and the returned extents
// carry ready-to-use addresses for the batched access path.
func (c *ChunkedColumn) Extents(lo, hi int) []Extent {
	if hi > c.Rows {
		hi = c.Rows
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	first := lo / c.chunkRows
	last := (hi - 1) / c.chunkRows
	out := make([]Extent, 0, last-first+1)
	for ci := first; ci <= last; ci++ {
		clo, chi := c.ChunkRange(ci)
		elo, ehi := lo, hi
		if elo < clo {
			elo = clo
		}
		if ehi > chi {
			ehi = chi
		}
		out = append(out, Extent{
			Chunk: ci,
			Addr:  c.bases[ci] + uint64(elo-clo)*c.Width,
			Lo:    elo,
			Count: ehi - elo,
		})
	}
	return out
}

// ReadRange charges sequential reads of rows [lo, hi): one batched
// ReadRun per chunk extent. This is the whole-chunk fast path scans use.
func (c *ChunkedColumn) ReadRange(t *machine.Thread, lo, hi int) {
	for _, e := range c.Extents(lo, hi) {
		t.ReadRun(e.Addr, c.Width, e.Count)
	}
}

// WriteRange is the store analogue of ReadRange.
func (c *ChunkedColumn) WriteRange(t *machine.Thread, lo, hi int) {
	for _, e := range c.Extents(lo, hi) {
		t.WriteRun(e.Addr, c.Width, e.Count)
	}
}
