package numaop

import (
	"math"
	"sort"

	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/query"
)

// recordBytes is the in-memory width of one (key, value) tuple, matching
// internal/query's layout so MPSM and HashJoin charge identical traffic
// per tuple touched.
const recordBytes = 16

// Work charges for the phases' CPU-side costs, alongside the memory
// traffic the access calls charge. The sort constant matches the
// repository's in-place sort idiom (12·n·log2(n+1), see query.Aggregate).
const (
	sortCyclesPerCmp    = 12 // in-place run sort
	partitionCyclesPer  = 3  // range computation + scatter bookkeeping
	kwayCyclesPerElem   = 4  // heap pop/push per element, scaled by log2(ways)
	mergeCyclesPerElem  = 2  // final linear merge-join pointer advance
	searchProbeOverhead = 8  // branch + compare around each binary-search probe
)

// MPSMJoin executes the massively-parallel sort-merge join of Albutiu et
// al. (arXiv:1207.0145) over the same tables HashJoin consumes, with the
// same result contract (match count, checksum over r.Val+s.Val).
//
// Structure, per the paper, with W = config threads as workers:
//
//	setup   — both tables are loaded into per-worker chunks (ChunkedColumn,
//	          one chunk per worker, each first-touched by its worker: under
//	          sparse pinning chunk w lands on node w%nodes; under OS-default
//	          placement the workers migrate and the layout decays — which is
//	          exactly the sensitivity the numaware experiment measures).
//	phase 1 — each worker sorts its R chunk in place: a NUMA-local run.
//	          R runs are never repartitioned; they stay on their node.
//	phase 2 — each worker range-partitions its S chunk: one pass computing
//	          each tuple's target range p = key·W/K and scattering into
//	          per-target staging buffers (local writes).
//	phase 3 — worker p gathers its S range: one sequential ReadRun per
//	          remote staging buffer, written into a worker-local partition
//	          (first touch), then sorted in place.
//	phase 4 — merge join: worker p visits every R run (staggered start
//	          (p+k)%W so workers fan out over different nodes), locates its
//	          key range inside the sorted run with O(log n) point probes,
//	          then scans the matching segment with ONE batched ReadRun —
//	          remote accesses are sequential by construction, never
//	          per-element. The W segments are k-way merged against the
//	          local sorted S partition in a single pass, and matches are
//	          materialized into a worker-local output buffer.
//
// BuildCycles covers phases 1–3 (sort + partition + gather), ProbeCycles
// phase 4 (merge), so JoinOutcome's phase-split invariant holds by
// construction: BuildCycles + ProbeCycles == Result.WallCycles.
func MPSMJoin(m *machine.Machine, spec query.JoinSpec) query.JoinOutcome {
	r, s := spec.Tables.R, spec.Tables.S
	w := m.Config().Threads
	if w < 1 {
		w = 1
	}

	// Key-range metadata (plain Go: partition bounds are computed from the
	// table statistics the generator fixes, not from simulated reads).
	var maxKey uint64
	for _, rec := range r {
		if rec.Key > maxKey {
			maxKey = rec.Key
		}
	}
	for _, rec := range s {
		if rec.Key > maxKey {
			maxKey = rec.Key
		}
	}
	k := maxKey + 1
	// loKey[p] is the smallest key belonging to range p; range p covers
	// [loKey[p], loKey[p+1]). Derived from target(key) = key·W/K.
	loKey := make([]uint64, w+1)
	for p := 0; p <= w; p++ {
		loKey[p] = (uint64(p)*k + uint64(w) - 1) / uint64(w)
	}
	loKey[w] = k

	rCol := NewChunkedColumn(recordBytes, len(r), w)
	sCol := NewChunkedColumn(recordBytes, len(s), w)

	// Every phase of MPSM confines cross-worker interaction to the
	// simulated memory API: the Go-side mirrors are indexed by worker id
	// (writes touch only the writer's slot) and read only the previous
	// phase's output, so each phase runs under RunParallel.
	//
	// Setup (untimed, like query.LoadRecords): every worker allocates and
	// first-touches its own chunk of both tables.
	setupRes := m.RunParallel(w, func(t *machine.Thread) {
		id := t.ID()
		for _, col := range []*ChunkedColumn{rCol, sCol} {
			if id >= col.Chunks() {
				continue
			}
			lo, hi := col.ChunkRange(id)
			if hi == lo {
				continue
			}
			col.SetBase(id, t.Malloc(col.ChunkBytes(id)))
			col.WriteRange(t, lo, hi)
		}
	})
	m.ResetCounters()

	// Go-side mirrors of the simulated chunks. runR[w] is worker w's R run
	// (sorted in phase 1); sPart[p] is worker p's gathered S range.
	runR := make([][]datagen.Record, w)
	for id := 0; id < rCol.Chunks(); id++ {
		lo, hi := rCol.ChunkRange(id)
		runR[id] = append([]datagen.Record(nil), r[lo:hi]...)
	}

	// Phase 1: NUMA-local run sorts of R.
	sortR := m.RunParallel(w, func(t *machine.Thread) {
		id := t.ID()
		if id >= rCol.Chunks() {
			return
		}
		lo, hi := rCol.ChunkRange(id)
		n := float64(hi - lo)
		if n == 0 {
			return
		}
		rCol.ReadRange(t, lo, hi)
		t.Charge(sortCyclesPerCmp * n * math.Log2(n+1))
		rCol.WriteRange(t, lo, hi)
		sortRun(runR[id])
	})

	// Phase 2: range-partition S. stage[w][p] holds worker w's tuples for
	// range p: Go mirror, staging base address, all written locally by w.
	stageTuples := make([][][]datagen.Record, w)
	stageAddr := make([][]uint64, w)
	partS := m.RunParallel(w, func(t *machine.Thread) {
		id := t.ID()
		stageTuples[id] = make([][]datagen.Record, w)
		stageAddr[id] = make([]uint64, w)
		if id >= sCol.Chunks() {
			return
		}
		lo, hi := sCol.ChunkRange(id)
		if hi == lo {
			return
		}
		sCol.ReadRange(t, lo, hi)
		t.Charge(partitionCyclesPer * float64(hi-lo))
		buckets := stageTuples[id]
		for _, rec := range s[lo:hi] {
			p := int(rec.Key * uint64(w) / k)
			buckets[p] = append(buckets[p], rec)
		}
		for p := 0; p < w; p++ {
			if cnt := len(buckets[p]); cnt > 0 {
				base := t.Malloc(uint64(cnt) * recordBytes)
				stageAddr[id][p] = base
				t.WriteRun(base, recordBytes, cnt)
			}
		}
	})

	// Phase 3: exchange. Worker p pulls its range from every staging
	// buffer — each pull ONE sequential ReadRun (remote when the producer
	// ran elsewhere) — into a local first-touched partition, then sorts.
	sPart := make([][]datagen.Record, w)
	partAddr := make([]uint64, w)
	gather := m.RunParallel(w, func(t *machine.Thread) {
		p := t.ID()
		total := 0
		for src := 0; src < w; src++ {
			total += len(stageTuples[src][p])
		}
		if total == 0 {
			return
		}
		partAddr[p] = t.Malloc(uint64(total) * recordBytes)
		part := make([]datagen.Record, 0, total)
		for i := 0; i < w; i++ {
			src := (p + i) % w
			tuples := stageTuples[src][p]
			if len(tuples) == 0 {
				continue
			}
			t.ReadRun(stageAddr[src][p], recordBytes, len(tuples))
			part = append(part, tuples...)
			t.Free(stageAddr[src][p], uint64(len(tuples))*recordBytes)
		}
		t.WriteRun(partAddr[p], recordBytes, total)
		n := float64(total)
		t.Charge(sortCyclesPerCmp * n * math.Log2(n+1))
		sortRun(part)
		sPart[p] = part
	})

	// Phase 4: merge join, matches accumulated per worker.
	perMatches := make([]uint64, w)
	perChecksum := make([]uint64, w)
	merge := m.RunParallel(w, func(t *machine.Thread) {
		p := t.ID()
		part := sPart[p]
		if len(part) == 0 {
			return
		}
		outBase := t.Malloc(uint64(len(part)) * recordBytes)

		// Visit every R run, staggered so concurrent workers start on
		// different nodes; collect each run's segment for range p.
		var segs [][]datagen.Record
		segTotal := 0
		for i := 0; i < w; i++ {
			src := (p + i) % w
			run := runR[src]
			if len(run) == 0 {
				continue
			}
			base, _ := rCol.ChunkRange(src)
			lb := lowerBound(t, rCol, base, run, loKey[p])
			ub := lowerBound(t, rCol, base, run, loKey[p+1])
			if ub == lb {
				continue
			}
			rCol.ReadRange(t, base+lb, base+ub)
			segs = append(segs, run[lb:ub])
			segTotal += ub - lb
		}

		// K-way merge of the segments (R keys are globally unique, so the
		// merged stream is strictly sorted), then one linear merge-join
		// pass against the sorted local S partition.
		t.Charge(kwayCyclesPerElem * float64(segTotal) * math.Log2(float64(len(segs))+1))
		merged := mergeRuns(segs, segTotal)
		t.Charge(mergeCyclesPerElem * float64(segTotal+len(part)))
		nOut := 0
		ri := 0
		for _, sv := range part {
			for ri < len(merged) && merged[ri].Key < sv.Key {
				ri++
			}
			if ri < len(merged) && merged[ri].Key == sv.Key {
				perMatches[p]++
				perChecksum[p] += merged[ri].Val + sv.Val
				nOut++
			}
		}
		if nOut > 0 {
			t.WriteRun(outBase, recordBytes, nOut)
		}
	})

	var matches, checksum uint64
	for p := 0; p < w; p++ {
		matches += perMatches[p]
		checksum += perChecksum[p]
	}
	res := merge
	res.WallCycles += sortR.WallCycles + partS.WallCycles + gather.WallCycles
	return query.JoinOutcome{
		Outcome: query.Outcome{
			Result:      res,
			SetupCycles: setupRes.WallCycles,
			Matches:     matches,
			Checksum:    checksum,
		},
		BuildCycles: sortR.WallCycles + partS.WallCycles + gather.WallCycles,
		ProbeCycles: merge.WallCycles,
	}
}

// lowerBound binary-searches the sorted run for the first index whose key
// is >= key, charging one point probe per step — O(log n) point accesses
// to locate a range, after which the segment is scanned with one batched
// ReadRun. base is the run's first global row in col.
func lowerBound(t *machine.Thread, col *ChunkedColumn, base int, run []datagen.Record, key uint64) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.Read(col.Addr(base+mid), recordBytes)
		t.Charge(searchProbeOverhead)
		if run[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortRun sorts records by (Key, Val) — a total order, so the result is
// deterministic even though sort.Slice is unstable.
func sortRun(recs []datagen.Record) {
	sort.Slice(recs, func(i, j int) bool { return less(recs[i], recs[j]) })
}

// mergeRuns merges sorted runs into one sorted slice of capacity total.
func mergeRuns(segs [][]datagen.Record, total int) []datagen.Record {
	switch len(segs) {
	case 0:
		return nil
	case 1:
		return segs[0]
	}
	out := make([]datagen.Record, 0, total)
	idx := make([]int, len(segs))
	for len(out) < total {
		best := -1
		for i, seg := range segs {
			if idx[i] >= len(seg) {
				continue
			}
			if best == -1 || less(seg[idx[i]], segs[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, segs[best][idx[best]])
		idx[best]++
	}
	return out
}

func less(a, b datagen.Record) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Val < b.Val
}
