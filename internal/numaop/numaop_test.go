package numaop

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/machine"
	"repro/internal/query"
	"repro/internal/vmm"
)

func machines() map[string]func() *machine.Machine {
	return map[string]func() *machine.Machine{
		"A": machine.NewA,
		"B": machine.NewB,
		"C": machine.NewC,
	}
}

// TestMPSMMatchesHashJoin is the subsystem's correctness anchor: across
// seeds and all three paper machines, MPSM must produce the identical
// match count and joined-key checksum as HashJoin and the plain-Go
// reference — under both the tuned sparse pinning and the OS-default
// migrating placement.
func TestMPSMMatchesHashJoin(t *testing.T) {
	for name, build := range map[string]func() *machine.Machine{"A": machine.NewA, "B": machine.NewB, "C": machine.NewC} {
		for _, seed := range []uint64{1, 7, 23} {
			tables := datagen.Join(1500, 16, seed)
			wantMatches, wantSum := query.ReferenceJoin(tables)

			for _, tuned := range []bool{false, true} {
				m := build()
				threads := m.Spec.HardwareThreads()
				if tuned {
					m.Configure(machine.RunConfig{
						Threads:   threads,
						Placement: machine.PlaceSparse,
						Policy:    vmm.FirstTouch,
						Allocator: "tbbmalloc",
						Seed:      3,
					})
				} // else: DefaultConfig — PlaceNone, migrating threads.

				got := MPSMJoin(m, query.JoinSpec{Tables: tables})
				if got.Matches != wantMatches || got.Checksum != wantSum {
					t.Errorf("machine %s seed %d tuned=%v: MPSM (%d, %d), want (%d, %d)",
						name, seed, tuned, got.Matches, got.Checksum, wantMatches, wantSum)
				}

				hm := build()
				hj := query.HashJoin(hm, query.JoinSpec{Tables: tables})
				if got.Matches != hj.Matches || got.Checksum != hj.Checksum {
					t.Errorf("machine %s seed %d tuned=%v: MPSM (%d, %d) != HashJoin (%d, %d)",
						name, seed, tuned, got.Matches, got.Checksum, hj.Matches, hj.Checksum)
				}
			}
		}
	}
}

// checkPhaseSplit asserts the JoinOutcome invariant: the phase split must
// account for the outcome's total measured cycles (exactly, but allow a
// relative epsilon for float addition order).
func checkPhaseSplit(t *testing.T, name string, out query.JoinOutcome) {
	t.Helper()
	sum := out.BuildCycles + out.ProbeCycles
	total := out.Result.WallCycles
	if total <= 0 {
		t.Fatalf("%s: no time charged", name)
	}
	if math.Abs(sum-total) > 1e-6*total {
		t.Errorf("%s: BuildCycles+ProbeCycles = %v does not account for WallCycles = %v",
			name, sum, total)
	}
	if out.BuildCycles <= 0 || out.ProbeCycles <= 0 {
		t.Errorf("%s: phase cycles must be positive: build %v probe %v",
			name, out.BuildCycles, out.ProbeCycles)
	}
}

// TestMPSMPhaseSplitInvariant covers the MPSM half of the JoinOutcome
// invariant (the HashJoin half lives in internal/query).
func TestMPSMPhaseSplitInvariant(t *testing.T) {
	tables := datagen.Join(1500, 16, 11)
	for name, build := range machines() {
		out := MPSMJoin(build(), query.JoinSpec{Tables: tables})
		checkPhaseSplit(t, "MPSM/"+name, out)
	}
}

// TestMPSMDeterministic pins byte-for-byte repeatability of the whole
// outcome, including cycle counts, across two fresh machines.
func TestMPSMDeterministic(t *testing.T) {
	tables := datagen.Join(1500, 16, 5)
	a := MPSMJoin(machine.NewB(), query.JoinSpec{Tables: tables})
	b := MPSMJoin(machine.NewB(), query.JoinSpec{Tables: tables})
	if a != b {
		t.Errorf("MPSM outcome not deterministic:\n  %+v\nvs\n  %+v", a, b)
	}
}

// TestMPSMThreadCountInvariance: the answer must not depend on worker
// count (the phase structure does, the result contract does not).
func TestMPSMThreadCountInvariance(t *testing.T) {
	tables := datagen.Join(1500, 16, 2)
	wantMatches, wantSum := query.ReferenceJoin(tables)
	for _, threads := range []int{1, 3, 8, 32} {
		m := machine.NewB()
		m.Configure(machine.RunConfig{
			Threads:   threads,
			Placement: machine.PlaceSparse,
			Policy:    vmm.FirstTouch,
			Allocator: "tbbmalloc",
			Seed:      3,
		})
		out := MPSMJoin(m, query.JoinSpec{Tables: tables})
		if out.Matches != wantMatches || out.Checksum != wantSum {
			t.Errorf("threads=%d: (%d, %d), want (%d, %d)",
				threads, out.Matches, out.Checksum, wantMatches, wantSum)
		}
	}
}

// TestChunkedColumnExtents pins the addressing contract: extents resolve
// once per chunk crossing, cover the range exactly, and agree with the
// scalar Addr fallback at every boundary.
func TestChunkedColumnExtents(t *testing.T) {
	c := NewChunkedColumn(16, 103, 4) // chunkRows = 26, last chunk short (25)
	if c.Chunks() != 4 {
		t.Fatalf("chunks = %d, want 4", c.Chunks())
	}
	for ci := 0; ci < 4; ci++ {
		c.SetBase(ci, uint64(0x1000*(ci+1)))
	}

	lo0, hi0 := c.ChunkRange(3)
	if lo0 != 78 || hi0 != 103 {
		t.Fatalf("ChunkRange(3) = [%d,%d), want [78,103)", lo0, hi0)
	}

	exts := c.Extents(20, 90)
	if len(exts) != 4 {
		t.Fatalf("Extents(20,90) = %d extents, want 4", len(exts))
	}
	covered := 0
	next := 20
	for _, e := range exts {
		if e.Lo != next {
			t.Errorf("extent gap: got Lo %d, want %d", e.Lo, next)
		}
		if e.Addr != c.Addr(e.Lo) {
			t.Errorf("extent addr %#x != Addr(%d) = %#x", e.Addr, e.Lo, c.Addr(e.Lo))
		}
		covered += e.Count
		next = e.Lo + e.Count
	}
	if covered != 70 || next != 90 {
		t.Errorf("extents cover %d rows ending at %d, want 70 ending at 90", covered, next)
	}

	if got := c.Extents(90, 20); got != nil {
		t.Errorf("inverted range should yield no extents, got %v", got)
	}
	if got := c.Extents(100, 200); len(got) != 1 || got[0].Count != 3 {
		t.Errorf("overlong range should clamp to tail, got %v", got)
	}
}

// TestChunkedReadRangeChargesBatched checks ReadRange goes through the
// batched path: it must charge identical cycles to hand-issued ReadRuns
// per extent, and strictly fewer host operations than per-element reads.
func TestChunkedReadRangeChargesBatched(t *testing.T) {
	build := func() (*machine.Machine, *ChunkedColumn) {
		m := machine.NewB()
		c := NewChunkedColumn(16, 4096, m.Nodes())
		m.Run(m.Nodes(), func(th *machine.Thread) {
			ci := th.ID()
			if ci >= c.Chunks() {
				return
			}
			lo, hi := c.ChunkRange(ci)
			c.SetBase(ci, th.Malloc(c.ChunkBytes(ci)))
			c.WriteRange(th, lo, hi)
		})
		m.ResetCounters()
		return m, c
	}

	m1, c1 := build()
	r1 := m1.Run(1, func(th *machine.Thread) { c1.ReadRange(th, 0, c1.Rows) })

	m2, c2 := build()
	r2 := m2.Run(1, func(th *machine.Thread) {
		for _, e := range c2.Extents(0, c2.Rows) {
			th.ReadRun(e.Addr, c2.Width, e.Count)
		}
	})
	if r1.WallCycles != r2.WallCycles {
		t.Errorf("ReadRange cycles %v != manual per-extent ReadRun cycles %v",
			r1.WallCycles, r2.WallCycles)
	}
}
