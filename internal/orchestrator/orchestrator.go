// Package orchestrator is an online adaptive placement daemon for the
// simulated NUMA machine: it runs at quantum boundaries (machine.SetDaemon),
// watches live telemetry — per-thread × node DRAM access deltas, the access
// samples behind AutoNUMA, and modeled memory-controller occupancy — and
// reactively migrates threads toward their dominant memory node, migrates
// hot remote pages toward their accessors, and reweights the interleave
// rotor away from saturated controllers (machine.Actuator).
//
// Unlike the kernel's AutoNUMA balancer (the paper's central criticism:
// "improving locality at any cost"), every action is gated by hysteresis
// and a migration-cost budget, so an oscillating access pattern cannot
// start a migration storm. Decisions are pure functions of simulated
// state: no RNG, no host time — a run with the orchestrator attached is
// deterministic, and one attached in DryRun mode is byte-identical to no
// daemon at all.
package orchestrator

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config tunes the orchestrator's feedback loop. The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Period is the daemon cadence in simulated cycles.
	Period float64
	// MinSamples is the minimum per-tick DRAM accesses a thread must show
	// before its traffic split is trusted.
	MinSamples uint64
	// DominanceMin is the share of a thread's per-tick DRAM traffic one
	// remote node must serve to count toward a migration streak.
	DominanceMin float64
	// StreakTicks is how many consecutive ticks the same remote node must
	// dominate before the thread migrates (the anti-oscillation gate).
	StreakTicks int
	// CooldownTicks blocks a just-migrated thread from moving again.
	CooldownTicks int
	// MaxThreadMoves and MaxPageMoves cap actuation per tick.
	MaxThreadMoves int
	MaxPageMoves   int
	// PageHitsMin is the consecutive-sample threshold for page migration
	// (2 mirrors the kernel's two-sample rule).
	PageHitsMin int
	// OccupancySkew is the max/min controller-occupancy ratio beyond which
	// the interleave rotor is reweighted toward idle controllers; weights
	// are cleared again when the skew subsides.
	OccupancySkew float64
	// WeightHysteresis is the relative change in some weight component
	// required before a new weighting is pushed (suppresses churn).
	WeightHysteresis float64
	// BudgetFrac is the migration-cost budget: modeled migration cycles
	// spent may not exceed this fraction of the elapsed simulated time
	// aggregated over running threads (one period with 16 threads running
	// is 16 periods of thread-time). The pool accrues per tick and banks
	// at most BudgetBankTicks periods.
	BudgetFrac      float64
	BudgetBankTicks int
	// ThreadMoveCost and PageMoveCost price actions against the budget;
	// Attach overwrites them with the machine's actual modeled costs.
	ThreadMoveCost float64
	PageMoveCost   float64
	// DryRun observes and plans but never actuates: the observation-only
	// mode the invariant tests pin.
	DryRun bool
}

// DefaultConfig returns the tuning used by the adapt experiment: one tick
// every quarter quantum-millionth (250k cycles), a 3-tick streak with an
// 8-tick cooldown, and a 5% migration budget.
func DefaultConfig() Config {
	return Config{
		Period:           250_000,
		MinSamples:       32,
		DominanceMin:     0.6,
		StreakTicks:      3,
		CooldownTicks:    8,
		MaxThreadMoves:   2,
		MaxPageMoves:     64,
		PageHitsMin:      2,
		OccupancySkew:    1.3,
		WeightHysteresis: 0.10,
		BudgetFrac:       0.05,
		BudgetBankTicks:  10,
		ThreadMoveCost:   12_000,
		PageMoveCost:     31_200,
	}
}

// Stats counts what the orchestrator did since New.
type Stats struct {
	Ticks       int
	ThreadMoves int // threads actually migrated
	PageMoves   int // pages actually migrated
	Reweights   int // interleave reweight pushes (including clears)
}

// ThreadEval is one thread's rule evaluation at one tick: the traffic the
// tick saw, which node dominated it, the hysteresis state after the tick,
// and the verdict — why the thread did or did not move.
type ThreadEval struct {
	Thread   int     `json:"thread"`
	Node     int     `json:"node"`      // current node, -1 when done/unknown
	Total    uint64  `json:"total"`     // tick's DRAM access delta
	DomNode  int     `json:"dom_node"`  // node dominating the delta, -1 if none
	DomShare float64 `json:"dom_share"` // its share of the delta
	Streak   int     `json:"streak"`    // streak after this tick
	Cooldown int     `json:"cooldown"`  // cooldown remaining after this tick
	// Verdict is one of: "move" (migration planned), "streaking" (dominant
	// but streak incomplete), "cooldown", "idle" (done or below MinSamples),
	// "local" (no qualifying remote dominance), "blocked-moves" (per-tick
	// cap), "blocked-budget", "blocked-capacity" (target node full).
	Verdict string `json:"verdict"`
}

// Action is one actuation a tick planned, priced at the modeled cost it
// paid against the budget pool.
type Action struct {
	// Kind is "thread_move", "page_move", "reweight" or "clear_weights".
	Kind   string  `json:"kind"`
	Thread int     `json:"thread"` // thread_move: the mover; else -1
	To     int     `json:"to"`     // target node; -1 for clear_weights
	Pages  int     `json:"pages"`  // page_move: batch size; else 0
	Cost   float64 `json:"cost"`   // modeled cycles charged to the pool
}

// Decision is one tick's journal record: the telemetry digest the tick
// observed, every rule evaluation, the actions planned with the budget
// they consumed, and the bank balance left. The journal is the audit trail
// behind the adapt experiments' decisions table and the Chrome-trace
// orchestrator overlay.
type Decision struct {
	Tick      int          `json:"tick"`
	Cycle     float64      `json:"cycle"` // machine clock at the tick (0 in plan-only tests)
	Alive     int          `json:"alive"`
	Accrued   float64      `json:"accrued"` // budget accrued this tick
	Spent     float64      `json:"spent"`   // modeled cost of this tick's actions
	Pool      float64      `json:"pool"`    // bank balance after accrual and spending
	Occupancy []float64    `json:"occupancy,omitempty"`
	Evals     []ThreadEval `json:"evals,omitempty"`
	Actions   []Action     `json:"actions,omitempty"`
	DryRun    bool         `json:"dry_run,omitempty"` // planned but not actuated
}

// Orchestrator is the adaptive placement daemon. Create with New, wire to
// a machine with Attach, and read Stats after the run.
type Orchestrator struct {
	cfg   Config
	m     *machine.Machine
	stats Stats

	prevAcc    [][]uint64 // last tick's cumulative thread×node access table
	streak     []int      // consecutive dominant ticks per thread
	streakNode []int      // the node being streaked toward
	cooldown   []int      // ticks left before a thread may move again
	pool       float64    // migration-cost budget pool, in cycles
	weights    []float64  // last pushed interleave weights (nil = cleared)
	journal    []Decision // one record per tick, in tick order
}

// New builds an orchestrator with the given config.
func New(cfg Config) *Orchestrator {
	return &Orchestrator{cfg: cfg}
}

// Stats returns the action counters accumulated so far.
func (o *Orchestrator) Stats() Stats { return o.stats }

// Journal returns a copy of the per-tick decision records accumulated so
// far, in tick order.
func (o *Orchestrator) Journal() []Decision {
	return append([]Decision(nil), o.journal...)
}

// Attach registers the orchestrator as m's placement daemon and prices
// its budget with the machine's actual migration cost parameters.
func (o *Orchestrator) Attach(m *machine.Machine) {
	o.m = m
	o.cfg.ThreadMoveCost = m.P.MigrationCycles
	o.cfg.PageMoveCost = m.P.AutoNUMAPageCost + m.P.AutoNUMAShootdown
	m.SetDaemon(o.cfg.Period, o.tick)
}

// Detach unregisters the daemon, leaving the machine as it was.
func (o *Orchestrator) Detach() {
	if o.m != nil {
		o.m.SetDaemon(0, nil)
		o.m = nil
	}
}

// observation is one tick's read of the machine, the pure input to plan.
// Tests construct these synthetically to drive plan without a machine.
type observation struct {
	Nodes int
	// Acc is the cumulative thread×node DRAM access table; plan diffs it
	// against the previous tick internally.
	Acc [][]uint64
	// ThreadNode[t] is thread t's current node, -1 when done or unknown.
	ThreadNode []int
	// NodeThreads counts running threads per node and Contexts the
	// hardware contexts per node; together they gate thread moves so the
	// orchestrator never oversubscribes a target node. Nil/zero disables
	// the guard.
	NodeThreads []int
	Contexts    int
	// Occupancy is the per-node controller contention multiplier.
	Occupancy []float64
	// HotPages are the current access samples (sorted by address).
	HotPages []machine.HotPage
}

// threadMove and pageMove are planned actions.
type threadMove struct {
	Thread int
	To     topology.NodeID
}

type pageMove struct {
	To    topology.NodeID
	Addrs []uint64
}

// actions is plan's output for one tick.
type actions struct {
	ThreadMoves []threadMove
	PageMoves   []pageMove
	// SetWeights pushes Weights to the interleave rotor when true
	// (Weights nil means clear back to unweighted).
	SetWeights bool
	Weights    []float64
}

// observe builds this tick's observation from live telemetry.
func (o *Orchestrator) observe(tel *machine.Telemetry) observation {
	n := o.m.Spec.Topo.Nodes()
	acc := tel.ThreadNodeAccesses()
	tn := make([]int, len(acc))
	for t := range tn {
		if node, ok := tel.ThreadNode(t); ok {
			tn[t] = int(node)
		} else {
			tn[t] = -1
		}
	}
	return observation{
		Nodes:       n,
		Acc:         acc,
		ThreadNode:  tn,
		NodeThreads: tel.NodeThreads(),
		Contexts:    o.m.Spec.CoresPerNode * o.m.Spec.ThreadsPerCore,
		Occupancy:   tel.NodeOccupancy(),
		HotPages:    tel.HotPages(),
	}
}

// plan turns one observation into gated actions, updating the hysteresis
// and budget state. It is deterministic and side-effect-free outside the
// orchestrator's own fields.
func (o *Orchestrator) plan(obs observation) actions {
	o.stats.Ticks++
	alive := 0
	for _, n := range obs.ThreadNode {
		if n >= 0 {
			alive++
		}
	}
	if alive < 1 {
		alive = 1
	}
	accrual := o.cfg.Period * o.cfg.BudgetFrac * float64(alive)
	o.pool += accrual
	if bank := float64(o.cfg.BudgetBankTicks) * accrual; o.pool > bank {
		o.pool = bank
	}
	dec := Decision{
		Tick:      o.stats.Ticks,
		Alive:     alive,
		Accrued:   accrual,
		Occupancy: append([]float64(nil), obs.Occupancy...),
		DryRun:    o.cfg.DryRun,
	}

	for len(o.streak) < len(obs.Acc) {
		o.streak = append(o.streak, 0)
		o.streakNode = append(o.streakNode, -1)
		o.cooldown = append(o.cooldown, 0)
	}

	var acts actions

	// Thread migration: a thread whose DRAM traffic this tick was served
	// DominanceMin-majority by one *remote* node starts (or continues) a
	// streak toward it; StreakTicks consecutive ticks trigger the move,
	// capacity permitting (a full target node blocks the move but keeps
	// the streak, so it fires when a context frees up).
	nodeLoad := append([]int(nil), obs.NodeThreads...)
	moves := 0
	for t := range obs.Acc {
		delta, total := o.accDelta(t, obs.Acc[t])
		ev := ThreadEval{Thread: t, Node: -1, DomNode: -1}
		// eval records the thread's verdict plus its post-tick hysteresis
		// state; every exit path of the gate chain below goes through it.
		eval := func(verdict string) {
			ev.Verdict = verdict
			ev.Streak, ev.Cooldown = o.streak[t], o.cooldown[t]
			dec.Evals = append(dec.Evals, ev)
		}
		if o.cooldown[t] > 0 {
			o.cooldown[t]--
			o.streak[t], o.streakNode[t] = 0, -1
			eval("cooldown")
			continue
		}
		cur := -1
		if t < len(obs.ThreadNode) {
			cur = obs.ThreadNode[t]
		}
		ev.Node, ev.Total = cur, total
		if cur < 0 || total < o.cfg.MinSamples {
			o.streak[t], o.streakNode[t] = 0, -1
			eval("idle")
			continue
		}
		dom, domCount := 0, uint64(0)
		for n, c := range delta {
			if c > domCount {
				dom, domCount = n, c
			}
		}
		ev.DomNode, ev.DomShare = dom, float64(domCount)/float64(total)
		if dom == cur || float64(domCount) < o.cfg.DominanceMin*float64(total) {
			o.streak[t], o.streakNode[t] = 0, -1
			eval("local")
			continue
		}
		if o.streakNode[t] == dom {
			o.streak[t]++
		} else {
			o.streak[t], o.streakNode[t] = 1, dom
		}
		if o.streak[t] < o.cfg.StreakTicks {
			eval("streaking")
			continue
		}
		if moves >= o.cfg.MaxThreadMoves {
			eval("blocked-moves")
			continue
		}
		if o.pool < o.cfg.ThreadMoveCost {
			eval("blocked-budget")
			continue
		}
		if nodeLoad != nil && obs.Contexts > 0 && dom < len(nodeLoad) && nodeLoad[dom] >= obs.Contexts {
			eval("blocked-capacity")
			continue
		}
		o.pool -= o.cfg.ThreadMoveCost
		acts.ThreadMoves = append(acts.ThreadMoves, threadMove{Thread: t, To: topology.NodeID(dom)})
		dec.Actions = append(dec.Actions, Action{
			Kind: "thread_move", Thread: t, To: dom, Cost: o.cfg.ThreadMoveCost,
		})
		if nodeLoad != nil && dom < len(nodeLoad) {
			nodeLoad[dom]++
			if cur < len(nodeLoad) {
				nodeLoad[cur]--
			}
		}
		o.streak[t], o.streakNode[t] = 0, -1
		o.cooldown[t] = o.cfg.CooldownTicks
		moves++
		eval("move")
	}

	// Page migration: hot pages (the kernel's two-sample rule, but only
	// ones whose sampled accessor still runs remotely from the page) move
	// toward the accessor's current node, hottest first, budget-capped.
	type cand struct {
		page   machine.HotPage
		target int
	}
	var cands []cand
	for _, p := range obs.HotPages {
		if p.Hits < o.cfg.PageHitsMin || p.Thread < 0 || p.Thread >= len(obs.ThreadNode) {
			continue
		}
		target := obs.ThreadNode[p.Thread]
		if target < 0 || target == int(p.Home) {
			continue
		}
		cands = append(cands, cand{page: p, target: target})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].page.Hits != cands[j].page.Hits {
			return cands[i].page.Hits > cands[j].page.Hits
		}
		return cands[i].page.Addr < cands[j].page.Addr
	})
	perTarget := map[int][]uint64{}
	var targets []int
	pages := 0
	for _, c := range cands {
		if pages >= o.cfg.MaxPageMoves || o.pool < o.cfg.PageMoveCost {
			break
		}
		o.pool -= o.cfg.PageMoveCost
		if _, ok := perTarget[c.target]; !ok {
			targets = append(targets, c.target)
		}
		perTarget[c.target] = append(perTarget[c.target], c.page.Addr)
		pages++
	}
	sort.Ints(targets)
	for _, tgt := range targets {
		acts.PageMoves = append(acts.PageMoves, pageMove{To: topology.NodeID(tgt), Addrs: perTarget[tgt]})
		dec.Actions = append(dec.Actions, Action{
			Kind: "page_move", Thread: -1, To: tgt, Pages: len(perTarget[tgt]),
			Cost: float64(len(perTarget[tgt])) * o.cfg.PageMoveCost,
		})
	}

	// Interleave reweighting: when controller occupancy skews past the
	// threshold, weight nodes by inverse occupancy so new pages land on
	// idle controllers; clear when balance returns. WeightHysteresis
	// suppresses pushes that barely differ from the installed weights.
	if len(obs.Occupancy) > 0 {
		lo, hi := obs.Occupancy[0], obs.Occupancy[0]
		for _, x := range obs.Occupancy[1:] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if lo > 0 && hi/lo >= o.cfg.OccupancySkew {
			w := make([]float64, len(obs.Occupancy))
			for i, x := range obs.Occupancy {
				w[i] = 1 / x
			}
			if o.weightsDiffer(w) {
				acts.SetWeights, acts.Weights = true, w
				o.weights = w
				dec.Actions = append(dec.Actions, Action{Kind: "reweight", Thread: -1, To: -1})
			}
		} else if o.weights != nil {
			acts.SetWeights, acts.Weights = true, nil
			o.weights = nil
			dec.Actions = append(dec.Actions, Action{Kind: "clear_weights", Thread: -1, To: -1})
		}
	}
	for _, a := range dec.Actions {
		dec.Spent += a.Cost
	}
	dec.Pool = o.pool
	o.journal = append(o.journal, dec)
	return acts
}

// accDelta returns thread t's per-node access delta since the last tick
// and its total, updating the stored cumulative row.
func (o *Orchestrator) accDelta(t int, row []uint64) ([]uint64, uint64) {
	for len(o.prevAcc) <= t {
		o.prevAcc = append(o.prevAcc, nil)
	}
	prev := o.prevAcc[t]
	delta := make([]uint64, len(row))
	var total uint64
	for n, c := range row {
		p := uint64(0)
		if n < len(prev) {
			p = prev[n]
		}
		delta[n] = c - p
		total += delta[n]
	}
	o.prevAcc[t] = append([]uint64(nil), row...)
	return delta, total
}

// weightsDiffer reports whether some component of w moved more than the
// hysteresis band relative to the installed weights.
func (o *Orchestrator) weightsDiffer(w []float64) bool {
	if o.weights == nil || len(o.weights) != len(w) {
		return true
	}
	for i := range w {
		ref := o.weights[i]
		if ref == 0 {
			if w[i] != 0 {
				return true
			}
			continue
		}
		d := (w[i] - ref) / ref
		if d < 0 {
			d = -d
		}
		if d > o.cfg.WeightHysteresis {
			return true
		}
	}
	return false
}

// tick is the daemon callback: observe, plan, and (unless DryRun) act.
// Each tick also lands in the decision journal and — when a trace sink is
// attached — emits one OrchDecision event (plus OrchReweight on weight
// pushes) so decisions line up with machine events on the same stream.
func (o *Orchestrator) tick(tel *machine.Telemetry, act machine.Actuator) {
	acts := o.plan(o.observe(tel))
	dec := &o.journal[len(o.journal)-1]
	dec.Cycle = tel.Clock()
	if !o.cfg.DryRun {
		for _, mv := range acts.ThreadMoves {
			if act.MigrateThread(mv.Thread, mv.To) {
				o.stats.ThreadMoves++
			}
		}
		for _, pm := range acts.PageMoves {
			o.stats.PageMoves += act.MigratePages(pm.Addrs, pm.To)
		}
		if acts.SetWeights {
			act.SetInterleaveWeights(acts.Weights)
			o.stats.Reweights++
		}
	}
	if s := o.m.Trace(); s != nil {
		s.Emit(trace.Event{
			Cycle: dec.Cycle, Kind: trace.OrchDecision, Initiator: trace.InitOrchestrator,
			Thread: -1, From: -1, To: -1, Addr: uint64(dec.Tick), Cost: dec.Spent,
		})
		if acts.SetWeights {
			s.Emit(trace.Event{
				Cycle: dec.Cycle, Kind: trace.OrchReweight, Initiator: trace.InitOrchestrator,
				Thread: -1, From: -1, To: -1, Addr: uint64(dec.Tick),
			})
		}
	}
}
