// Package orchestrator is an online adaptive placement daemon for the
// simulated NUMA machine: it runs at quantum boundaries (machine.SetDaemon),
// watches live telemetry — per-thread × node DRAM access deltas, the access
// samples behind AutoNUMA, and modeled memory-controller occupancy — and
// reactively migrates threads toward their dominant memory node, migrates
// hot remote pages toward their accessors, and reweights the interleave
// rotor away from saturated controllers (machine.Actuator).
//
// Unlike the kernel's AutoNUMA balancer (the paper's central criticism:
// "improving locality at any cost"), every action is gated by hysteresis
// and a migration-cost budget, so an oscillating access pattern cannot
// start a migration storm. Decisions are pure functions of simulated
// state: no RNG, no host time — a run with the orchestrator attached is
// deterministic, and one attached in DryRun mode is byte-identical to no
// daemon at all.
package orchestrator

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/topology"
)

// Config tunes the orchestrator's feedback loop. The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Period is the daemon cadence in simulated cycles.
	Period float64
	// MinSamples is the minimum per-tick DRAM accesses a thread must show
	// before its traffic split is trusted.
	MinSamples uint64
	// DominanceMin is the share of a thread's per-tick DRAM traffic one
	// remote node must serve to count toward a migration streak.
	DominanceMin float64
	// StreakTicks is how many consecutive ticks the same remote node must
	// dominate before the thread migrates (the anti-oscillation gate).
	StreakTicks int
	// CooldownTicks blocks a just-migrated thread from moving again.
	CooldownTicks int
	// MaxThreadMoves and MaxPageMoves cap actuation per tick.
	MaxThreadMoves int
	MaxPageMoves   int
	// PageHitsMin is the consecutive-sample threshold for page migration
	// (2 mirrors the kernel's two-sample rule).
	PageHitsMin int
	// OccupancySkew is the max/min controller-occupancy ratio beyond which
	// the interleave rotor is reweighted toward idle controllers; weights
	// are cleared again when the skew subsides.
	OccupancySkew float64
	// WeightHysteresis is the relative change in some weight component
	// required before a new weighting is pushed (suppresses churn).
	WeightHysteresis float64
	// BudgetFrac is the migration-cost budget: modeled migration cycles
	// spent may not exceed this fraction of the elapsed simulated time
	// aggregated over running threads (one period with 16 threads running
	// is 16 periods of thread-time). The pool accrues per tick and banks
	// at most BudgetBankTicks periods.
	BudgetFrac      float64
	BudgetBankTicks int
	// ThreadMoveCost and PageMoveCost price actions against the budget;
	// Attach overwrites them with the machine's actual modeled costs.
	ThreadMoveCost float64
	PageMoveCost   float64
	// DryRun observes and plans but never actuates: the observation-only
	// mode the invariant tests pin.
	DryRun bool
}

// DefaultConfig returns the tuning used by the adapt experiment: one tick
// every quarter quantum-millionth (250k cycles), a 3-tick streak with an
// 8-tick cooldown, and a 5% migration budget.
func DefaultConfig() Config {
	return Config{
		Period:           250_000,
		MinSamples:       32,
		DominanceMin:     0.6,
		StreakTicks:      3,
		CooldownTicks:    8,
		MaxThreadMoves:   2,
		MaxPageMoves:     64,
		PageHitsMin:      2,
		OccupancySkew:    1.3,
		WeightHysteresis: 0.10,
		BudgetFrac:       0.05,
		BudgetBankTicks:  10,
		ThreadMoveCost:   12_000,
		PageMoveCost:     31_200,
	}
}

// Stats counts what the orchestrator did since New.
type Stats struct {
	Ticks       int
	ThreadMoves int // threads actually migrated
	PageMoves   int // pages actually migrated
	Reweights   int // interleave reweight pushes (including clears)
}

// Orchestrator is the adaptive placement daemon. Create with New, wire to
// a machine with Attach, and read Stats after the run.
type Orchestrator struct {
	cfg   Config
	m     *machine.Machine
	stats Stats

	prevAcc    [][]uint64 // last tick's cumulative thread×node access table
	streak     []int      // consecutive dominant ticks per thread
	streakNode []int      // the node being streaked toward
	cooldown   []int      // ticks left before a thread may move again
	pool       float64    // migration-cost budget pool, in cycles
	weights    []float64  // last pushed interleave weights (nil = cleared)
}

// New builds an orchestrator with the given config.
func New(cfg Config) *Orchestrator {
	return &Orchestrator{cfg: cfg}
}

// Stats returns the action counters accumulated so far.
func (o *Orchestrator) Stats() Stats { return o.stats }

// Attach registers the orchestrator as m's placement daemon and prices
// its budget with the machine's actual migration cost parameters.
func (o *Orchestrator) Attach(m *machine.Machine) {
	o.m = m
	o.cfg.ThreadMoveCost = m.P.MigrationCycles
	o.cfg.PageMoveCost = m.P.AutoNUMAPageCost + m.P.AutoNUMAShootdown
	m.SetDaemon(o.cfg.Period, o.tick)
}

// Detach unregisters the daemon, leaving the machine as it was.
func (o *Orchestrator) Detach() {
	if o.m != nil {
		o.m.SetDaemon(0, nil)
		o.m = nil
	}
}

// observation is one tick's read of the machine, the pure input to plan.
// Tests construct these synthetically to drive plan without a machine.
type observation struct {
	Nodes int
	// Acc is the cumulative thread×node DRAM access table; plan diffs it
	// against the previous tick internally.
	Acc [][]uint64
	// ThreadNode[t] is thread t's current node, -1 when done or unknown.
	ThreadNode []int
	// NodeThreads counts running threads per node and Contexts the
	// hardware contexts per node; together they gate thread moves so the
	// orchestrator never oversubscribes a target node. Nil/zero disables
	// the guard.
	NodeThreads []int
	Contexts    int
	// Occupancy is the per-node controller contention multiplier.
	Occupancy []float64
	// HotPages are the current access samples (sorted by address).
	HotPages []machine.HotPage
}

// threadMove and pageMove are planned actions.
type threadMove struct {
	Thread int
	To     topology.NodeID
}

type pageMove struct {
	To    topology.NodeID
	Addrs []uint64
}

// actions is plan's output for one tick.
type actions struct {
	ThreadMoves []threadMove
	PageMoves   []pageMove
	// SetWeights pushes Weights to the interleave rotor when true
	// (Weights nil means clear back to unweighted).
	SetWeights bool
	Weights    []float64
}

// observe builds this tick's observation from live telemetry.
func (o *Orchestrator) observe(tel *machine.Telemetry) observation {
	n := o.m.Spec.Topo.Nodes()
	acc := tel.ThreadNodeAccesses()
	tn := make([]int, len(acc))
	for t := range tn {
		if node, ok := tel.ThreadNode(t); ok {
			tn[t] = int(node)
		} else {
			tn[t] = -1
		}
	}
	return observation{
		Nodes:       n,
		Acc:         acc,
		ThreadNode:  tn,
		NodeThreads: tel.NodeThreads(),
		Contexts:    o.m.Spec.CoresPerNode * o.m.Spec.ThreadsPerCore,
		Occupancy:   tel.NodeOccupancy(),
		HotPages:    tel.HotPages(),
	}
}

// plan turns one observation into gated actions, updating the hysteresis
// and budget state. It is deterministic and side-effect-free outside the
// orchestrator's own fields.
func (o *Orchestrator) plan(obs observation) actions {
	o.stats.Ticks++
	alive := 0
	for _, n := range obs.ThreadNode {
		if n >= 0 {
			alive++
		}
	}
	if alive < 1 {
		alive = 1
	}
	accrual := o.cfg.Period * o.cfg.BudgetFrac * float64(alive)
	o.pool += accrual
	if bank := float64(o.cfg.BudgetBankTicks) * accrual; o.pool > bank {
		o.pool = bank
	}

	for len(o.streak) < len(obs.Acc) {
		o.streak = append(o.streak, 0)
		o.streakNode = append(o.streakNode, -1)
		o.cooldown = append(o.cooldown, 0)
	}

	var acts actions

	// Thread migration: a thread whose DRAM traffic this tick was served
	// DominanceMin-majority by one *remote* node starts (or continues) a
	// streak toward it; StreakTicks consecutive ticks trigger the move,
	// capacity permitting (a full target node blocks the move but keeps
	// the streak, so it fires when a context frees up).
	nodeLoad := append([]int(nil), obs.NodeThreads...)
	moves := 0
	for t := range obs.Acc {
		delta, total := o.accDelta(t, obs.Acc[t])
		if o.cooldown[t] > 0 {
			o.cooldown[t]--
			o.streak[t], o.streakNode[t] = 0, -1
			continue
		}
		cur := -1
		if t < len(obs.ThreadNode) {
			cur = obs.ThreadNode[t]
		}
		if cur < 0 || total < o.cfg.MinSamples {
			o.streak[t], o.streakNode[t] = 0, -1
			continue
		}
		dom, domCount := 0, uint64(0)
		for n, c := range delta {
			if c > domCount {
				dom, domCount = n, c
			}
		}
		if dom == cur || float64(domCount) < o.cfg.DominanceMin*float64(total) {
			o.streak[t], o.streakNode[t] = 0, -1
			continue
		}
		if o.streakNode[t] == dom {
			o.streak[t]++
		} else {
			o.streak[t], o.streakNode[t] = 1, dom
		}
		if o.streak[t] < o.cfg.StreakTicks || moves >= o.cfg.MaxThreadMoves {
			continue
		}
		if o.pool < o.cfg.ThreadMoveCost {
			continue
		}
		if nodeLoad != nil && obs.Contexts > 0 && dom < len(nodeLoad) && nodeLoad[dom] >= obs.Contexts {
			continue
		}
		o.pool -= o.cfg.ThreadMoveCost
		acts.ThreadMoves = append(acts.ThreadMoves, threadMove{Thread: t, To: topology.NodeID(dom)})
		if nodeLoad != nil && dom < len(nodeLoad) {
			nodeLoad[dom]++
			if cur < len(nodeLoad) {
				nodeLoad[cur]--
			}
		}
		o.streak[t], o.streakNode[t] = 0, -1
		o.cooldown[t] = o.cfg.CooldownTicks
		moves++
	}

	// Page migration: hot pages (the kernel's two-sample rule, but only
	// ones whose sampled accessor still runs remotely from the page) move
	// toward the accessor's current node, hottest first, budget-capped.
	type cand struct {
		page   machine.HotPage
		target int
	}
	var cands []cand
	for _, p := range obs.HotPages {
		if p.Hits < o.cfg.PageHitsMin || p.Thread < 0 || p.Thread >= len(obs.ThreadNode) {
			continue
		}
		target := obs.ThreadNode[p.Thread]
		if target < 0 || target == int(p.Home) {
			continue
		}
		cands = append(cands, cand{page: p, target: target})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].page.Hits != cands[j].page.Hits {
			return cands[i].page.Hits > cands[j].page.Hits
		}
		return cands[i].page.Addr < cands[j].page.Addr
	})
	perTarget := map[int][]uint64{}
	var targets []int
	pages := 0
	for _, c := range cands {
		if pages >= o.cfg.MaxPageMoves || o.pool < o.cfg.PageMoveCost {
			break
		}
		o.pool -= o.cfg.PageMoveCost
		if _, ok := perTarget[c.target]; !ok {
			targets = append(targets, c.target)
		}
		perTarget[c.target] = append(perTarget[c.target], c.page.Addr)
		pages++
	}
	sort.Ints(targets)
	for _, tgt := range targets {
		acts.PageMoves = append(acts.PageMoves, pageMove{To: topology.NodeID(tgt), Addrs: perTarget[tgt]})
	}

	// Interleave reweighting: when controller occupancy skews past the
	// threshold, weight nodes by inverse occupancy so new pages land on
	// idle controllers; clear when balance returns. WeightHysteresis
	// suppresses pushes that barely differ from the installed weights.
	if len(obs.Occupancy) > 0 {
		lo, hi := obs.Occupancy[0], obs.Occupancy[0]
		for _, x := range obs.Occupancy[1:] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if lo > 0 && hi/lo >= o.cfg.OccupancySkew {
			w := make([]float64, len(obs.Occupancy))
			for i, x := range obs.Occupancy {
				w[i] = 1 / x
			}
			if o.weightsDiffer(w) {
				acts.SetWeights, acts.Weights = true, w
				o.weights = w
			}
		} else if o.weights != nil {
			acts.SetWeights, acts.Weights = true, nil
			o.weights = nil
		}
	}
	return acts
}

// accDelta returns thread t's per-node access delta since the last tick
// and its total, updating the stored cumulative row.
func (o *Orchestrator) accDelta(t int, row []uint64) ([]uint64, uint64) {
	for len(o.prevAcc) <= t {
		o.prevAcc = append(o.prevAcc, nil)
	}
	prev := o.prevAcc[t]
	delta := make([]uint64, len(row))
	var total uint64
	for n, c := range row {
		p := uint64(0)
		if n < len(prev) {
			p = prev[n]
		}
		delta[n] = c - p
		total += delta[n]
	}
	o.prevAcc[t] = append([]uint64(nil), row...)
	return delta, total
}

// weightsDiffer reports whether some component of w moved more than the
// hysteresis band relative to the installed weights.
func (o *Orchestrator) weightsDiffer(w []float64) bool {
	if o.weights == nil || len(o.weights) != len(w) {
		return true
	}
	for i := range w {
		ref := o.weights[i]
		if ref == 0 {
			if w[i] != 0 {
				return true
			}
			continue
		}
		d := (w[i] - ref) / ref
		if d < 0 {
			d = -d
		}
		if d > o.cfg.WeightHysteresis {
			return true
		}
	}
	return false
}

// tick is the daemon callback: observe, plan, and (unless DryRun) act.
func (o *Orchestrator) tick(tel *machine.Telemetry, act machine.Actuator) {
	acts := o.plan(o.observe(tel))
	if o.cfg.DryRun {
		return
	}
	for _, mv := range acts.ThreadMoves {
		if act.MigrateThread(mv.Thread, mv.To) {
			o.stats.ThreadMoves++
		}
	}
	for _, pm := range acts.PageMoves {
		o.stats.PageMoves += act.MigratePages(pm.Addrs, pm.To)
	}
	if acts.SetWeights {
		act.SetInterleaveWeights(acts.Weights)
		o.stats.Reweights++
	}
}
