package orchestrator

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// obsWith builds a synthetic two-node observation where thread 0 runs on
// node 0 and its per-tick traffic is served domShare-majority by node 1.
// The cumulative table is advanced internally across calls via prev.
func obsWith(prev [][]uint64, total, remote uint64) observation {
	acc := [][]uint64{{0, 0}}
	if len(prev) > 0 {
		acc[0][0], acc[0][1] = prev[0][0], prev[0][1]
	}
	acc[0][0] += total - remote
	acc[0][1] += remote
	return observation{
		Nodes:      2,
		Acc:        acc,
		ThreadNode: []int{0},
		Occupancy:  []float64{1, 1},
	}
}

func planner() *Orchestrator {
	cfg := DefaultConfig()
	cfg.StreakTicks = 3
	cfg.CooldownTicks = 4
	return New(cfg)
}

func TestPlanRequiresStreakBeforeMoving(t *testing.T) {
	o := planner()
	var obs observation
	for tick := 1; tick <= 3; tick++ {
		obs = obsWith(obs.Acc, 100, 90)
		acts := o.plan(obs)
		if tick < 3 && len(acts.ThreadMoves) != 0 {
			t.Fatalf("tick %d: moved before the streak completed: %+v", tick, acts)
		}
		if tick == 3 {
			if len(acts.ThreadMoves) != 1 || acts.ThreadMoves[0].To != 1 {
				t.Fatalf("tick 3: want one move to node 1, got %+v", acts.ThreadMoves)
			}
		}
	}
}

func TestPlanNoStormOnOscillation(t *testing.T) {
	// A thread whose dominant node flips every tick (node 1, local, node 1,
	// local, ...) never completes a streak: an oscillating access matrix
	// must produce zero migrations, however long it runs.
	o := planner()
	var obs observation
	for tick := 0; tick < 50; tick++ {
		if tick%2 == 0 {
			obs = obsWith(obs.Acc, 100, 90) // remote-dominant
		} else {
			obs = obsWith(obs.Acc, 100, 10) // local-dominant
		}
		if acts := o.plan(obs); len(acts.ThreadMoves) != 0 {
			t.Fatalf("tick %d: oscillating pattern caused a move: %+v", tick, acts)
		}
	}
}

func TestPlanAlternatingDominantNodeNeverMoves(t *testing.T) {
	// Dominance alternating between two remote nodes resets the streak
	// each tick, so it never reaches StreakTicks.
	o := planner()
	acc := [][]uint64{{0, 0, 0}}
	for tick := 0; tick < 50; tick++ {
		if tick%2 == 0 {
			acc[0][1] += 90
			acc[0][0] += 10
		} else {
			acc[0][2] += 90
			acc[0][0] += 10
		}
		obs := observation{
			Nodes:      3,
			Acc:        [][]uint64{{acc[0][0], acc[0][1], acc[0][2]}},
			ThreadNode: []int{0},
			Occupancy:  []float64{1, 1, 1},
		}
		if acts := o.plan(obs); len(acts.ThreadMoves) != 0 {
			t.Fatalf("tick %d: alternating dominant node caused a move: %+v", tick, acts)
		}
	}
}

func TestPlanCooldownBlocksRemigration(t *testing.T) {
	o := planner()
	var obs observation
	moves := 0
	// Persistently remote-dominant traffic: after the first move the
	// cooldown must hold the thread for CooldownTicks, then a fresh
	// streak is required again, so over 12 ticks at StreakTicks=3 and
	// CooldownTicks=4 at most 2 moves can fire.
	for tick := 0; tick < 12; tick++ {
		obs = obsWith(obs.Acc, 100, 90)
		moves += len(o.plan(obs).ThreadMoves)
	}
	if moves > 2 {
		t.Fatalf("cooldown failed: %d moves in 12 ticks", moves)
	}
	if moves == 0 {
		t.Fatal("persistent remote dominance never triggered a move")
	}
}

func TestPlanBudgetCapsPageMoves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreakTicks = 1
	cfg.MaxPageMoves = 1000
	o := New(cfg)
	// Each tick accrues Period*BudgetFrac cycles of budget per running
	// thread; with hot pages worth far more than the accrual, the plan
	// must stop at the pool, not at MaxPageMoves.
	pages := make([]machine.HotPage, 200)
	for i := range pages {
		pages[i] = machine.HotPage{Addr: uint64(i) << 12, Thread: 0, Hits: 3, Home: 1}
	}
	got := 0
	const ticks = 8
	for tick := 0; tick < ticks; tick++ {
		obs := observation{
			Nodes:      2,
			Acc:        [][]uint64{{0, 0}},
			ThreadNode: []int{0},
			Occupancy:  []float64{1, 1},
			HotPages:   pages,
		}
		for _, pm := range o.plan(obs).PageMoves {
			got += len(pm.Addrs)
		}
	}
	afford := int(ticks * cfg.Period * cfg.BudgetFrac / cfg.PageMoveCost)
	if got > afford {
		t.Fatalf("planned %d page moves over %d ticks, budget affords %d", got, ticks, afford)
	}
	if got == 0 {
		t.Fatalf("budget blocked every page move across %d ticks", ticks)
	}
}

func TestPlanReweightHysteresis(t *testing.T) {
	o := planner()
	obs := observation{
		Nodes:      2,
		Acc:        [][]uint64{},
		ThreadNode: []int{},
		Occupancy:  []float64{2, 1},
	}
	acts := o.plan(obs)
	if !acts.SetWeights || acts.Weights == nil {
		t.Fatalf("2x occupancy skew did not reweight: %+v", acts)
	}
	if acts.Weights[0] >= acts.Weights[1] {
		t.Fatalf("weights %v do not steer away from the loaded controller", acts.Weights)
	}
	// A barely different occupancy must not push again (hysteresis)...
	obs.Occupancy = []float64{2.05, 1}
	if acts := o.plan(obs); acts.SetWeights {
		t.Fatalf("re-pushed weights on a %v occupancy wiggle", obs.Occupancy)
	}
	// ...but returning to balance clears the weighting once.
	obs.Occupancy = []float64{1.05, 1}
	acts = o.plan(obs)
	if !acts.SetWeights || acts.Weights != nil {
		t.Fatalf("balanced occupancy did not clear weights: %+v", acts)
	}
	if acts := o.plan(obs); acts.SetWeights {
		t.Fatal("cleared weights twice")
	}
}

// remoteScanBody allocates per-thread buffers and scans them repeatedly;
// with FirstTouch everything is local, so this is just deterministic load
// for the invariant tests.
func remoteScanBody(bytes uint64) func(*machine.Thread) {
	return func(t *machine.Thread) {
		base := t.Malloc(bytes)
		for r := 0; r < 4; r++ {
			t.ReadRun(base, 64, int(bytes/64))
		}
	}
}

// TestDryRunIsObservationOnly pins the tentpole invariant: an attached
// daemon that never actuates is bit-identical to no daemon at all — same
// style as TestProfilingIsObservationOnly.
func TestDryRunIsObservationOnly(t *testing.T) {
	run := func(attach bool) machine.Result {
		m := machine.NewA()
		cfg := machine.DefaultConfig(8)
		cfg.Seed = 42
		m.Configure(cfg)
		if attach {
			oc := DefaultConfig()
			oc.DryRun = true
			o := New(oc)
			o.Attach(m)
			defer o.Detach()
		}
		return m.Run(8, remoteScanBody(512<<10))
	}
	on, off := run(true), run(false)
	if on.WallCycles != off.WallCycles {
		t.Errorf("dry-run daemon changed wall cycles: on=%v off=%v", on.WallCycles, off.WallCycles)
	}
	if on.Counters != off.Counters {
		t.Errorf("dry-run daemon changed counters:\non:  %+v\noff: %+v", on.Counters, off.Counters)
	}
}

// TestOrchestratorImprovesPathologicalPlacement builds the motivating
// scenario: Sparse-pinned threads spread over all nodes scanning a
// DRAM-resident dataset first-touched entirely on node 0, with kernel
// daemons off. The orchestrator should detect the remote dominance,
// migrate threads toward the data (capacity permitting) and raise LAR
// over the static run.
func TestOrchestratorImprovesPathologicalPlacement(t *testing.T) {
	// Machine B's 18MiB LLC rounds up to 32MiB effective capacity (the
	// cache model rounds sets to a power of two), so the dataset must
	// exceed 32MiB for the scan to reach DRAM at all.
	const bytes = 64 << 20
	run := func(attach bool) (machine.Result, Stats) {
		m := machine.NewB()
		cfg := machine.TunedConfig(8)
		cfg.Policy = 0 // FirstTouch
		cfg.Seed = 7
		m.Configure(cfg)
		// Phase 1: one loader thread first-touches the whole dataset on
		// its own node.
		var base uint64
		m.Run(1, func(t *machine.Thread) {
			base = t.Malloc(bytes)
			t.WriteRun(base, 64, bytes/64)
		})
		m.ResetCounters()
		var o *Orchestrator
		if attach {
			o = New(DefaultConfig())
			o.Attach(m)
			defer o.Detach()
		}
		// Phase 2: eight threads (Sparse spreads them 2 per node on B, so
		// six start remote from the data) scan the loader's memory.
		res := m.Run(8, func(t *machine.Thread) {
			for r := 0; r < 4; r++ {
				t.ReadRun(base, 64, bytes/64)
			}
		})
		var st Stats
		if o != nil {
			st = o.Stats()
		}
		return res, st
	}
	adaptive, st := run(true)
	static, _ := run(false)
	if st.Ticks == 0 {
		t.Fatal("orchestrator never ticked")
	}
	if st.ThreadMoves+st.PageMoves == 0 {
		t.Fatalf("orchestrator took no action on a pathological placement: %+v", st)
	}
	if adaptive.Counters.LAR() <= static.Counters.LAR() {
		t.Errorf("adaptive LAR %.3f not above static %.3f (stats %+v)",
			adaptive.Counters.LAR(), static.Counters.LAR(), st)
	}
	if adaptive.WallCycles >= static.WallCycles {
		t.Errorf("adaptive wall %.0f not below static %.0f (stats %+v)",
			adaptive.WallCycles, static.WallCycles, st)
	}
}

// TestJournalAndTraceEvents pins the decision journal against the trace
// overlay: one journal record per tick with its telemetry digest and rule
// evaluations, one OrchDecision event per tick tagged InitOrchestrator,
// one OrchReweight per weight push, and journal actions consistent with
// the orchestrator's stats.
func TestJournalAndTraceEvents(t *testing.T) {
	const bytes = 48 << 20
	m := machine.NewB()
	cfg := machine.TunedConfig(8)
	cfg.Policy = 0 // FirstTouch
	cfg.Seed = 7
	m.Configure(cfg)
	rec := trace.NewRecorder()
	m.Observe(machine.ObserveOptions{Sink: rec})
	var base uint64
	m.Run(1, func(th *machine.Thread) {
		base = th.Malloc(bytes)
		th.WriteRun(base, 64, bytes/64)
	})
	o := New(DefaultConfig())
	o.Attach(m)
	defer o.Detach()
	m.Run(8, func(th *machine.Thread) {
		for r := 0; r < 4; r++ {
			th.ReadRun(base, 64, bytes/64)
		}
	})
	st := o.Stats()
	j := o.Journal()

	if len(j) != st.Ticks {
		t.Fatalf("journal has %d records, stats counted %d ticks", len(j), st.Ticks)
	}
	var moves, pages, reweights int
	lastCycle := -1.0
	for i, d := range j {
		if d.Tick != i+1 {
			t.Errorf("journal record %d has tick %d", i, d.Tick)
		}
		if d.Cycle <= lastCycle {
			t.Errorf("tick %d cycle %v not after %v", i, d.Cycle, lastCycle)
		}
		lastCycle = d.Cycle
		if d.Alive <= 0 || len(d.Evals) == 0 {
			t.Errorf("tick %d missing telemetry digest: %+v", i, d)
		}
		for _, a := range d.Actions {
			switch a.Kind {
			case "thread_move":
				moves++
			case "page_move":
				pages += a.Pages
			case "reweight":
				reweights++
			}
		}
	}
	if moves != st.ThreadMoves {
		t.Errorf("journal plans %d thread moves, stats executed %d", moves, st.ThreadMoves)
	}
	if pages < st.PageMoves {
		t.Errorf("journal plans %d page moves, stats executed %d", pages, st.PageMoves)
	}
	if reweights != st.Reweights {
		t.Errorf("journal plans %d reweights, stats executed %d", reweights, st.Reweights)
	}

	// The trace overlay: every tick lands on the event stream tagged with
	// the orchestrator initiator, reweights doubly so.
	if got := rec.CountBy(trace.OrchDecision, trace.InitOrchestrator); got != uint64(st.Ticks) {
		t.Errorf("%d orch_decision events, want %d", got, st.Ticks)
	}
	if got := rec.CountBy(trace.OrchReweight, trace.InitOrchestrator); got != uint64(st.Reweights) {
		t.Errorf("%d orch_reweight events, want %d", got, st.Reweights)
	}
	if rec.Count(trace.OrchDecision) != rec.CountBy(trace.OrchDecision, trace.InitOrchestrator) {
		t.Error("orch_decision events with a non-orchestrator initiator")
	}
}
