package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterInsert(t *testing.T) {
	c := New(64, 4)
	if c.Access(42) {
		t.Fatal("first access must miss")
	}
	if !c.Access(42) {
		t.Fatal("second access must hit")
	}
}

func TestEntriesRounding(t *testing.T) {
	c := New(100, 4)
	if c.Entries() < 100 {
		t.Fatalf("entries = %d, want >= 100", c.Entries())
	}
	if c.Entries()%4 != 0 {
		t.Fatalf("entries = %d, not a multiple of ways", c.Entries())
	}
}

func TestLRUEviction(t *testing.T) {
	// Single set of 2 ways: tags that collide in set 0.
	c := New(2, 2)
	sets := c.Entries() / 2
	a, b, d := uint64(0), uint64(sets), uint64(2*sets) // same set
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now more recent than b
	c.Access(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a should survive (recently used)")
	}
	if c.Contains(b) {
		t.Error("b should be evicted (least recently used)")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(1024, 8)
	n := uint64(c.Entries())
	for i := uint64(0); i < n; i++ {
		c.Access(i)
	}
	c.ResetStats()
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < n; i++ {
			if !c.Access(i) {
				t.Fatalf("miss on resident working set at tag %d", i)
			}
		}
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	c := New(64, 4)
	n := uint64(c.Entries() * 8) // 8x capacity, sequential scan
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < n; i++ {
			c.Access(i)
		}
	}
	acc, miss := c.Stats()
	if float64(miss)/float64(acc) < 0.99 {
		t.Errorf("sequential over-capacity scan should thrash: %d/%d misses", miss, acc)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(64, 4)
	c.Access(7)
	if !c.Invalidate(7) {
		t.Fatal("invalidate should report residency")
	}
	if c.Contains(7) {
		t.Fatal("tag still resident after invalidate")
	}
	if c.Invalidate(7) {
		t.Fatal("second invalidate should report absence")
	}
}

func TestFlush(t *testing.T) {
	c := New(64, 4)
	for i := uint64(0); i < 32; i++ {
		c.Access(i)
	}
	c.Flush()
	for i := uint64(0); i < 32; i++ {
		if c.Contains(i) {
			t.Fatalf("tag %d survived flush", i)
		}
	}
}

func TestStatsCount(t *testing.T) {
	c := New(16, 2)
	for i := uint64(0); i < 10; i++ {
		c.Access(i % 5)
	}
	acc, miss := c.Stats()
	if acc != 10 {
		t.Errorf("accesses = %d, want 10", acc)
	}
	if miss != 5 {
		t.Errorf("misses = %d, want 5 (five distinct tags fit)", miss)
	}
}

func TestContainsMatchesAccessProperty(t *testing.T) {
	c := New(256, 4)
	f := func(tags []uint64) bool {
		for _, tag := range tags {
			c.Access(tag)
			if !c.Contains(tag) {
				return false // just-inserted tag must be resident
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	c := New(0, 0) // clamped to one entry, one way
	if c.Entries() < 1 {
		t.Fatal("cache must hold at least one entry")
	}
	c.Access(1)
	if !c.Access(1) {
		t.Fatal("single-entry cache should hit on repeat")
	}
	if c.Access(2); c.Access(1) {
		t.Fatal("single-entry cache must evict on conflict")
	}
}

// TestAccessIndexedEquivalence: an AccessIndexed-driven cache must evolve
// exactly like an Access-driven one over the same tag sequence, and the
// returned index must always point at the entry now holding the tag.
func TestAccessIndexedEquivalence(t *testing.T) {
	a, b := New(64, 4), New(64, 4)
	f := func(tags []uint64) bool {
		for _, tag := range tags {
			hitA := a.Access(tag)
			hitB, idx := b.AccessIndexed(tag)
			if hitA != hitB {
				return false
			}
			if b.entries[idx].tag != tag || b.entries[idx].stamp == 0 {
				return false
			}
		}
		accA, missA := a.Stats()
		accB, missB := b.Stats()
		return accA == accB && missA == missB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRepeatMatchesAccessHit: Repeat on an index from AccessIndexed must
// leave the cache in the same state as a hitting Access on the same tag.
func TestRepeatMatchesAccessHit(t *testing.T) {
	a, b := New(16, 2), New(16, 2)
	a.Access(9)
	b.Access(9)
	a.Access(9)
	_, idx := b.AccessIndexed(9)
	a.Access(9) // third touch via full lookup...
	b.Repeat(idx)
	// ...must equal the third touch via Repeat: same stats and same
	// eviction behaviour afterwards.
	accA, missA := a.Stats()
	accB, missB := b.Stats()
	if accA != accB || missA != missB {
		t.Fatalf("stats diverge: %d/%d vs %d/%d", accA, missA, accB, missB)
	}
	sets := a.Entries() / 2
	colliderA := uint64(9 + sets)
	a.Access(colliderA)
	b.Access(colliderA)
	a.Access(colliderA + uint64(sets))
	b.Access(colliderA + uint64(sets))
	if a.Contains(9) != b.Contains(9) {
		t.Error("recency after Repeat diverges from recency after Access hit")
	}
}

func TestRepeatAfterMissInsert(t *testing.T) {
	c := New(16, 2)
	hit, idx := c.AccessIndexed(3)
	if hit {
		t.Fatal("cold cache must miss")
	}
	c.Repeat(idx) // re-touch the freshly inserted entry
	acc, miss := c.Stats()
	if acc != 2 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 2 accesses 1 miss", acc, miss)
	}
	if !c.Contains(3) {
		t.Fatal("tag should be resident after insert+repeat")
	}
}

func TestTLBSmallPages(t *testing.T) {
	tlb := NewTLB(64, 32, 4)
	if tlb.Access(100, false) {
		t.Fatal("cold TLB must miss")
	}
	if !tlb.Access(100, false) {
		t.Fatal("warm TLB must hit")
	}
}

func TestTLBHugeReach(t *testing.T) {
	tlb := NewTLB(64, 32, 4)
	// 512 consecutive 4KiB pages inside one huge page: one huge entry
	// covers them all.
	tlb.Access(512*3, true) // first touch loads the huge entry
	hits := 0
	for vpn := uint64(512 * 3); vpn < 512*4; vpn++ {
		if tlb.Access(vpn, true) {
			hits++
		}
	}
	if hits != 512 {
		t.Fatalf("huge entry should cover all 512 pages, hit %d", hits)
	}
}

func TestTLBNoHugeArray(t *testing.T) {
	tlb := NewTLB(64, 0, 4)
	tlb.Access(7, true)
	if tlb.Access(7, true) {
		t.Fatal("without a 2MiB array, huge lookups always miss")
	}
	// Small side still works.
	tlb.Access(7, false)
	if !tlb.Access(7, false) {
		t.Fatal("small side should be unaffected")
	}
}

func TestTLBFlushAndInvalidate(t *testing.T) {
	tlb := NewTLB(64, 32, 4)
	tlb.Access(5, false)
	tlb.Access(512*2, true)
	tlb.Flush()
	if tlb.Access(5, false) {
		t.Fatal("flush must drop small entries")
	}
	if tlb.Access(512*2, true) {
		t.Fatal("flush must drop huge entries")
	}
	tlb.InvalidatePage(5)
	if tlb.Access(5, false) {
		t.Fatal("invalidated page must miss")
	}
}

func TestTLBStats(t *testing.T) {
	tlb := NewTLB(16, 8, 2)
	tlb.Access(1, false)
	tlb.Access(1, false)
	tlb.Access(1024, true)
	acc, miss := tlb.Stats()
	if acc != 3 || miss != 2 {
		t.Fatalf("stats = %d/%d, want 3 accesses 2 misses", acc, miss)
	}
}

func TestTLBRefRepeat(t *testing.T) {
	tlb := NewTLB(16, 8, 2)
	hit, ref := tlb.AccessIndexed(5, false)
	if hit {
		t.Fatal("cold lookup must miss")
	}
	if !ref.Repeat() {
		t.Fatal("repeat of a small-page translation must hit")
	}
	acc, miss := tlb.Stats()
	if acc != 2 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 2 accesses 1 miss", acc, miss)
	}
	// Huge translation through the 2MiB array.
	_, href := tlb.AccessIndexed(512*2, true)
	if !href.Repeat() {
		t.Fatal("repeat of a huge translation must hit when the array exists")
	}
}

func TestTLBRefNoHugeArray(t *testing.T) {
	tlb := NewTLB(16, 0, 2)
	hit, ref := tlb.AccessIndexed(512*2, true)
	if hit {
		t.Fatal("huge lookup without a 2MiB array must miss")
	}
	if ref.Repeat() {
		t.Fatal("zero ref must keep missing, like Access")
	}
	// The always-miss path must not touch any counters, matching Access's
	// early return.
	acc, miss := tlb.Stats()
	if acc != 0 || miss != 0 {
		t.Fatalf("stats = %d/%d, want untouched (0/0)", acc, miss)
	}
}
