package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterInsert(t *testing.T) {
	c := New(64, 4)
	if c.Access(42) {
		t.Fatal("first access must miss")
	}
	if !c.Access(42) {
		t.Fatal("second access must hit")
	}
}

func TestEntriesRounding(t *testing.T) {
	c := New(100, 4)
	if c.Entries() < 100 {
		t.Fatalf("entries = %d, want >= 100", c.Entries())
	}
	if c.Entries()%4 != 0 {
		t.Fatalf("entries = %d, not a multiple of ways", c.Entries())
	}
}

func TestLRUEviction(t *testing.T) {
	// Single set of 2 ways: tags that collide in set 0.
	c := New(2, 2)
	sets := c.Entries() / 2
	a, b, d := uint64(0), uint64(sets), uint64(2*sets) // same set
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now more recent than b
	c.Access(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a should survive (recently used)")
	}
	if c.Contains(b) {
		t.Error("b should be evicted (least recently used)")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(1024, 8)
	n := uint64(c.Entries())
	for i := uint64(0); i < n; i++ {
		c.Access(i)
	}
	c.ResetStats()
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < n; i++ {
			if !c.Access(i) {
				t.Fatalf("miss on resident working set at tag %d", i)
			}
		}
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	c := New(64, 4)
	n := uint64(c.Entries() * 8) // 8x capacity, sequential scan
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < n; i++ {
			c.Access(i)
		}
	}
	acc, miss := c.Stats()
	if float64(miss)/float64(acc) < 0.99 {
		t.Errorf("sequential over-capacity scan should thrash: %d/%d misses", miss, acc)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(64, 4)
	c.Access(7)
	if !c.Invalidate(7) {
		t.Fatal("invalidate should report residency")
	}
	if c.Contains(7) {
		t.Fatal("tag still resident after invalidate")
	}
	if c.Invalidate(7) {
		t.Fatal("second invalidate should report absence")
	}
}

func TestFlush(t *testing.T) {
	c := New(64, 4)
	for i := uint64(0); i < 32; i++ {
		c.Access(i)
	}
	c.Flush()
	for i := uint64(0); i < 32; i++ {
		if c.Contains(i) {
			t.Fatalf("tag %d survived flush", i)
		}
	}
}

func TestStatsCount(t *testing.T) {
	c := New(16, 2)
	for i := uint64(0); i < 10; i++ {
		c.Access(i % 5)
	}
	acc, miss := c.Stats()
	if acc != 10 {
		t.Errorf("accesses = %d, want 10", acc)
	}
	if miss != 5 {
		t.Errorf("misses = %d, want 5 (five distinct tags fit)", miss)
	}
}

func TestContainsMatchesAccessProperty(t *testing.T) {
	c := New(256, 4)
	f := func(tags []uint64) bool {
		for _, tag := range tags {
			c.Access(tag)
			if !c.Contains(tag) {
				return false // just-inserted tag must be resident
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	c := New(0, 0) // clamped to one entry, one way
	if c.Entries() < 1 {
		t.Fatal("cache must hold at least one entry")
	}
	c.Access(1)
	if !c.Access(1) {
		t.Fatal("single-entry cache should hit on repeat")
	}
	if c.Access(2); c.Access(1) {
		t.Fatal("single-entry cache must evict on conflict")
	}
}

func TestTLBSmallPages(t *testing.T) {
	tlb := NewTLB(64, 32, 4)
	if tlb.Access(100, false) {
		t.Fatal("cold TLB must miss")
	}
	if !tlb.Access(100, false) {
		t.Fatal("warm TLB must hit")
	}
}

func TestTLBHugeReach(t *testing.T) {
	tlb := NewTLB(64, 32, 4)
	// 512 consecutive 4KiB pages inside one huge page: one huge entry
	// covers them all.
	tlb.Access(512*3, true) // first touch loads the huge entry
	hits := 0
	for vpn := uint64(512 * 3); vpn < 512*4; vpn++ {
		if tlb.Access(vpn, true) {
			hits++
		}
	}
	if hits != 512 {
		t.Fatalf("huge entry should cover all 512 pages, hit %d", hits)
	}
}

func TestTLBNoHugeArray(t *testing.T) {
	tlb := NewTLB(64, 0, 4)
	tlb.Access(7, true)
	if tlb.Access(7, true) {
		t.Fatal("without a 2MiB array, huge lookups always miss")
	}
	// Small side still works.
	tlb.Access(7, false)
	if !tlb.Access(7, false) {
		t.Fatal("small side should be unaffected")
	}
}

func TestTLBFlushAndInvalidate(t *testing.T) {
	tlb := NewTLB(64, 32, 4)
	tlb.Access(5, false)
	tlb.Access(512*2, true)
	tlb.Flush()
	if tlb.Access(5, false) {
		t.Fatal("flush must drop small entries")
	}
	if tlb.Access(512*2, true) {
		t.Fatal("flush must drop huge entries")
	}
	tlb.InvalidatePage(5)
	if tlb.Access(5, false) {
		t.Fatal("invalidated page must miss")
	}
}

func TestTLBStats(t *testing.T) {
	tlb := NewTLB(16, 8, 2)
	tlb.Access(1, false)
	tlb.Access(1, false)
	tlb.Access(1024, true)
	acc, miss := tlb.Stats()
	if acc != 3 || miss != 2 {
		t.Fatalf("stats = %d/%d, want 3 accesses 2 misses", acc, miss)
	}
}
