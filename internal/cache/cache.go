// Package cache provides deterministic set-associative LRU cache models
// used by the machine simulator for per-core L1 data caches, per-node
// shared last-level caches, and per-core TLBs (with separate 4KiB and 2MiB
// entry arrays, matching Table II of the paper).
//
// The models are purely functional state machines: an Access either hits or
// misses and updates recency; the machine layer translates outcomes into
// cycles. All replacement decisions are deterministic (true LRU), so a
// simulation with a fixed seed is bit-for-bit reproducible.
package cache

// Cache is a set-associative cache with true LRU replacement. Capacity is
// expressed in entries (lines for a data cache, translations for a TLB);
// the caller decides what a tag means.
type Cache struct {
	ways     int
	setMask  uint64
	tags     []uint64
	valid    []bool
	stamp    []uint64
	tick     uint64
	accesses uint64
	misses   uint64
}

// New builds a cache with at least the requested number of entries and the
// given associativity. The set count is rounded up to a power of two, so
// the effective capacity may slightly exceed entries. ways must be >= 1; an
// entries value below ways is raised to ways (one set).
func New(entries, ways int) *Cache {
	if ways < 1 {
		ways = 1
	}
	if entries < ways {
		entries = ways
	}
	sets := 1
	for sets*ways < entries {
		sets <<= 1
	}
	n := sets * ways
	return &Cache{
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		stamp:   make([]uint64, n),
	}
}

// Entries returns the effective capacity in entries.
func (c *Cache) Entries() int { return len(c.tags) }

// Access looks up tag, inserting it (with LRU eviction) on a miss, and
// reports whether the lookup hit.
func (c *Cache) Access(tag uint64) bool {
	c.tick++
	c.accesses++
	set := int(tag&c.setMask) * c.ways
	var victim int
	var victimStamp uint64 = ^uint64(0)
	for i := set; i < set+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.tick
			return true
		}
		if !c.valid[i] {
			// Prefer an invalid way; stamp 0 loses every comparison
			// below only if no earlier invalid way was chosen, so pin it.
			if victimStamp != 0 {
				victim, victimStamp = i, 0
			}
			continue
		}
		if c.stamp[i] < victimStamp {
			victim, victimStamp = i, c.stamp[i]
		}
	}
	c.misses++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.stamp[victim] = c.tick
	return false
}

// Contains reports whether tag is resident without updating recency or
// counters.
func (c *Cache) Contains(tag uint64) bool {
	set := int(tag&c.setMask) * c.ways
	for i := set; i < set+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Invalidate removes tag if present, reporting whether it was resident.
func (c *Cache) Invalidate(tag uint64) bool {
	set := int(tag&c.setMask) * c.ways
	for i := set; i < set+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.valid[i] = false
			return true
		}
	}
	return false
}

// Flush invalidates every entry (used when a thread migrates and loses its
// core-private state).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Stats returns the cumulative access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }
