// Package cache provides deterministic set-associative LRU cache models
// used by the machine simulator for per-core L1 data caches, per-node
// shared last-level caches, and per-core TLBs (with separate 4KiB and 2MiB
// entry arrays, matching Table II of the paper).
//
// The models are purely functional state machines: an Access either hits or
// misses and updates recency; the machine layer translates outcomes into
// cycles. All replacement decisions are deterministic (true LRU), so a
// simulation with a fixed seed is bit-for-bit reproducible.
package cache

// way is one cache entry. A zero stamp marks the way invalid: stamps are
// assigned from the tick counter after it is incremented, so a resident
// entry always carries a stamp >= 1. Keeping tag and stamp adjacent (one
// struct array instead of three parallel slices) is what makes the lookup
// scan walk one contiguous region per set — the simulator's single hottest
// loop.
type way struct {
	tag   uint64
	stamp uint64
}

// Cache is a set-associative cache with true LRU replacement. Capacity is
// expressed in entries (lines for a data cache, translations for a TLB);
// the caller decides what a tag means.
type Cache struct {
	ways     int
	setMask  uint64
	entries  []way
	tick     uint64
	accesses uint64
	misses   uint64
}

// New builds a cache with at least the requested number of entries and the
// given associativity. The set count is rounded up to a power of two, so
// the effective capacity may slightly exceed entries. ways must be >= 1; an
// entries value below ways is raised to ways (one set).
func New(entries, ways int) *Cache {
	if ways < 1 {
		ways = 1
	}
	if entries < ways {
		entries = ways
	}
	sets := 1
	for sets*ways < entries {
		sets <<= 1
	}
	return &Cache{
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]way, sets*ways),
	}
}

// Entries returns the effective capacity in entries.
func (c *Cache) Entries() int { return len(c.entries) }

// Access looks up tag, inserting it (with LRU eviction) on a miss, and
// reports whether the lookup hit.
//
// Victim selection: invalid ways carry stamp 0 and therefore lose every
// comparison against resident stamps (>= 1), so the first invalid way wins;
// with all ways resident the minimum stamp (true LRU, first index on the
// impossible tie — stamps are unique) is evicted. This is decision-for-
// decision identical to scanning validity and recency separately.
func (c *Cache) Access(tag uint64) bool {
	c.tick++
	c.accesses++
	set := int(tag&c.setMask) * c.ways
	w := c.entries[set : set+c.ways]
	victim := 0
	victimStamp := ^uint64(0)
	for i := range w {
		e := &w[i]
		if e.stamp != 0 && e.tag == tag {
			e.stamp = c.tick
			return true
		}
		if e.stamp < victimStamp {
			victim, victimStamp = i, e.stamp
		}
	}
	c.misses++
	w[victim] = way{tag: tag, stamp: c.tick}
	return false
}

// AccessIndexed performs Access(tag) and additionally returns the absolute
// entry index now holding tag, so an immediately following re-access of the
// same tag can use Repeat instead of rescanning the set.
func (c *Cache) AccessIndexed(tag uint64) (hit bool, idx int) {
	c.tick++
	c.accesses++
	set := int(tag&c.setMask) * c.ways
	w := c.entries[set : set+c.ways]
	victim := 0
	victimStamp := ^uint64(0)
	for i := range w {
		e := &w[i]
		if e.stamp != 0 && e.tag == tag {
			e.stamp = c.tick
			return true, set + i
		}
		if e.stamp < victimStamp {
			victim, victimStamp = i, e.stamp
		}
	}
	c.misses++
	w[victim] = way{tag: tag, stamp: c.tick}
	return false, set + victim
}

// Repeat re-touches the entry at idx: state-identical to Access(tag)
// hitting that entry. The caller must guarantee that idx came from an
// AccessIndexed for the same tag with no intervening operations on this
// cache that could have evicted or moved the entry (the machine layer's
// batched access path guarantees this by invalidating its handles at every
// yield point).
func (c *Cache) Repeat(idx int) {
	c.tick++
	c.accesses++
	c.entries[idx].stamp = c.tick
}

// Contains reports whether tag is resident without updating recency or
// counters.
func (c *Cache) Contains(tag uint64) bool {
	set := int(tag&c.setMask) * c.ways
	for i := set; i < set+c.ways; i++ {
		e := &c.entries[i]
		if e.stamp != 0 && e.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes tag if present, reporting whether it was resident.
func (c *Cache) Invalidate(tag uint64) bool {
	set := int(tag&c.setMask) * c.ways
	for i := set; i < set+c.ways; i++ {
		e := &c.entries[i]
		if e.stamp != 0 && e.tag == tag {
			e.stamp = 0
			return true
		}
	}
	return false
}

// Flush invalidates every entry (used when a thread migrates and loses its
// core-private state).
func (c *Cache) Flush() {
	for i := range c.entries {
		c.entries[i].stamp = 0
	}
}

// Stats returns the cumulative access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }
