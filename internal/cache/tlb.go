package cache

// TLB models a core's translation lookaside buffer with separate entry
// arrays for 4KiB and 2MiB pages, as in Table II of the paper. A huge
// mapping covers 512x the address range per entry, which is the entire
// benefit Transparent Hugepages buys.
type TLB struct {
	small *Cache // tags are 4KiB virtual page numbers
	huge  *Cache // tags are 2MiB virtual page numbers
}

// NewTLB builds a TLB with the given 4KiB and 2MiB entry counts and
// associativity. A zero hugeEntries disables the huge array (accesses to
// huge pages then always miss the TLB's huge side and fall back to walks),
// mirroring machines without 2MiB TLB capacity.
func NewTLB(smallEntries, hugeEntries, ways int) *TLB {
	t := &TLB{small: New(smallEntries, ways)}
	if hugeEntries > 0 {
		t.huge = New(hugeEntries, ways)
	}
	return t
}

// Access looks up the translation for the page identified by vpn (a 4KiB
// virtual page number). If the backing mapping is huge, the lookup uses the
// 2MiB array keyed by the huge-page number. It reports a TLB hit.
func (t *TLB) Access(vpn uint64, huge bool) bool {
	if huge {
		if t.huge == nil {
			return false
		}
		return t.huge.Access(vpn >> 9) // 512 base pages per huge page
	}
	return t.small.Access(vpn)
}

// TLBRef is a repeatable-translation handle returned by AccessIndexed: it
// pins the cache array and entry index that served a lookup, so immediately
// repeated lookups of the same translation (consecutive lines of one page)
// can skip the set scan. A zero ref (nil cache) stands for the
// "no 2MiB array" miss path, where repeats also miss without state changes.
type TLBRef struct {
	c   *Cache
	idx int32
}

// Repeat re-touches the translation: state-identical to the Access call
// that produced the ref hitting the same entry. It reports a hit; a zero
// ref reports a miss (huge lookup with no huge array), matching Access.
// Valid only while no other operation has touched the owning cache.
func (r TLBRef) Repeat() bool {
	if r.c == nil {
		return false
	}
	r.c.Repeat(int(r.idx))
	return true
}

// AccessIndexed performs Access(vpn, huge) and returns a TLBRef for
// repeated lookups of the same translation. After a miss the ref points at
// the freshly inserted entry, so repeats are hits either way.
func (t *TLB) AccessIndexed(vpn uint64, huge bool) (bool, TLBRef) {
	if huge {
		if t.huge == nil {
			return false, TLBRef{}
		}
		hit, idx := t.huge.AccessIndexed(vpn >> 9)
		return hit, TLBRef{c: t.huge, idx: int32(idx)}
	}
	hit, idx := t.small.AccessIndexed(vpn)
	return hit, TLBRef{c: t.small, idx: int32(idx)}
}

// Flush drops all cached translations (context switch / migration).
func (t *TLB) Flush() {
	t.small.Flush()
	if t.huge != nil {
		t.huge.Flush()
	}
}

// InvalidatePage drops the translation for vpn in both arrays, as the
// kernel does when remapping (page migration, hugepage split/promote).
func (t *TLB) InvalidatePage(vpn uint64) {
	t.small.Invalidate(vpn)
	if t.huge != nil {
		t.huge.Invalidate(vpn >> 9)
	}
}

// Stats returns combined access and miss counts across both arrays.
func (t *TLB) Stats() (accesses, misses uint64) {
	a, m := t.small.Stats()
	if t.huge != nil {
		ha, hm := t.huge.Stats()
		a += ha
		m += hm
	}
	return a, m
}
