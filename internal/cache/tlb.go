package cache

// TLB models a core's translation lookaside buffer with separate entry
// arrays for 4KiB and 2MiB pages, as in Table II of the paper. A huge
// mapping covers 512x the address range per entry, which is the entire
// benefit Transparent Hugepages buys.
type TLB struct {
	small *Cache // tags are 4KiB virtual page numbers
	huge  *Cache // tags are 2MiB virtual page numbers
}

// NewTLB builds a TLB with the given 4KiB and 2MiB entry counts and
// associativity. A zero hugeEntries disables the huge array (accesses to
// huge pages then always miss the TLB's huge side and fall back to walks),
// mirroring machines without 2MiB TLB capacity.
func NewTLB(smallEntries, hugeEntries, ways int) *TLB {
	t := &TLB{small: New(smallEntries, ways)}
	if hugeEntries > 0 {
		t.huge = New(hugeEntries, ways)
	}
	return t
}

// Access looks up the translation for the page identified by vpn (a 4KiB
// virtual page number). If the backing mapping is huge, the lookup uses the
// 2MiB array keyed by the huge-page number. It reports a TLB hit.
func (t *TLB) Access(vpn uint64, huge bool) bool {
	if huge {
		if t.huge == nil {
			return false
		}
		return t.huge.Access(vpn >> 9) // 512 base pages per huge page
	}
	return t.small.Access(vpn)
}

// Flush drops all cached translations (context switch / migration).
func (t *TLB) Flush() {
	t.small.Flush()
	if t.huge != nil {
		t.huge.Flush()
	}
}

// InvalidatePage drops the translation for vpn in both arrays, as the
// kernel does when remapping (page migration, hugepage split/promote).
func (t *TLB) InvalidatePage(vpn uint64) {
	t.small.Invalidate(vpn)
	if t.huge != nil {
		t.huge.Invalidate(vpn >> 9)
	}
}

// Stats returns combined access and miss counts across both arrays.
func (t *TLB) Stats() (accesses, misses uint64) {
	a, m := t.small.Stats()
	if t.huge != nil {
		ha, hm := t.huge.Stats()
		a += ha
		m += hm
	}
	return a, m
}
