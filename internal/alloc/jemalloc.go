package alloc

import "repro/internal/vmm"

// jemalloc models Jason Evans' allocator: many arenas assigned to threads
// round-robin (so arena sharing is rare), deep thread-specific caches, and
// decay-based purging that returns dirty pages to the OS with 4KiB
// madvise calls — the behaviour that keeps its footprint low but breaks
// transparent hugepages apart (Figure 5c).
type jemalloc struct {
	base
	arenas  []*pool
	tcaches []*tcache
	index   *slabIndex
	purge   purger
	wait    float64
}

func newJemalloc() *jemalloc { return &jemalloc{} }

func (a *jemalloc) Name() string      { return "jemalloc" }
func (a *jemalloc) THPFriendly() bool { return false }

func (a *jemalloc) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	// Four arenas per thread is the spirit of jemalloc's "4 * ncpus"
	// default: effectively private arenas at every thread count we run.
	n := a.threads
	if n < 8 {
		n = 8
	}
	a.index = newSlabIndex()
	a.arenas = make([]*pool, n)
	for i := range a.arenas {
		a.arenas[i] = newPool(env, 4<<20, false) // 4MiB extents
		a.arenas[i].recycle = true
		a.arenas[i].id = i
		a.arenas[i].index = a.index
	}
	a.tcaches = make([]*tcache, a.threads)
	for i := range a.tcaches {
		a.tcaches[i] = newTcache(20, 48)
	}
	a.wait = contendedWait((a.threads+n-1)/n, 110)
	a.purge = purger{interval: 32}
}

func (a *jemalloc) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		return a.largeAlloc(size, t.Node()), 380
	}
	c := classFor(size)
	if addr, ok := a.tcaches[t.ID()].get(c); ok {
		return addr, 25
	}
	a.stats.SlowPaths++
	a.lockWait(a.wait)
	addr, src := a.arenas[t.ID()%len(a.arenas)].alloc(c, t.Node())
	cost := 25 + 110 + a.wait
	switch src {
	case srcBump:
		cost += 60 // slab bitmap update
	case srcNewSlab:
		cost += 60 + 2200 // extent allocation
	}
	return addr, cost
}

func (a *jemalloc) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 320
	}
	c := classFor(size)
	cost := 25.0
	if !a.tcaches[t.ID()].put(c, addr) {
		home := t.ID() % len(a.arenas)
		if id, ok := a.index.ownerOf(addr); ok {
			home = id // extents free back to their owning arena
		}
		a.arenas[home].put(c, addr)
		cost = 30 + 110 + a.wait
		a.lockWait(a.wait)
	}
	if a.purge.maybePurge(addr >> 12) {
		// Decay purge: return the object's page to the OS. Splits any
		// covering hugepage; the page refaults on reuse.
		a.env.UnmapRange(addr&^uint64(vmm.PageSize-1), vmm.PageSize)
		a.stats.Purges++
		cost += 240
	}
	return cost
}

var _ Allocator = (*jemalloc)(nil)
