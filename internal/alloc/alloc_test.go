package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/vmm"
)

// fakeEnv backs allocator tests with a real vmm but no cost accounting.
type fakeEnv struct {
	mem     *vmm.Memory
	touched uint64
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{mem: vmm.New(topology.MachineB(), 1<<32)}
}

func (e *fakeEnv) Reserve(bytes uint64, owner topology.NodeID) vmm.Range {
	return e.mem.Reserve(bytes, owner)
}

func (e *fakeEnv) UnmapRange(base, bytes uint64) { e.mem.UnmapRange(base, bytes) }

func (e *fakeEnv) Touch(base, bytes uint64, owner topology.NodeID) {
	for a := base &^ uint64(vmm.PageSize-1); a < base+bytes; a += vmm.PageSize {
		e.mem.Fault(a, owner)
		e.touched++
	}
}

func (e *fakeEnv) Nodes() int { return 4 }

type fakeThread struct {
	id   int
	node topology.NodeID
}

func (t fakeThread) ID() int               { return t.id }
func (t fakeThread) Node() topology.NodeID { return t.node }

func TestClassSizes(t *testing.T) {
	if ClassSize(0) == 0 {
		t.Error("zero-byte request must round up")
	}
	for _, size := range []uint64{1, 8, 16, 17, 100, 1000, 4096, 30000, LargeThreshold} {
		cs := ClassSize(size)
		if cs < size {
			t.Errorf("ClassSize(%d) = %d, smaller than request", size, cs)
		}
		if cs > 2*size && size >= 16 {
			t.Errorf("ClassSize(%d) = %d, more than 2x fragmentation", size, cs)
		}
	}
	// Large sizes round to pages.
	if cs := ClassSize(LargeThreshold + 1); cs%vmm.PageSize != 0 {
		t.Errorf("large ClassSize = %d, not page aligned", cs)
	}
}

func TestClassSizesMonotonic(t *testing.T) {
	for i := 1; i < len(classSizes); i++ {
		if classSizes[i] <= classSizes[i-1] {
			t.Fatalf("class sizes not strictly increasing at %d", i)
		}
	}
}

func TestContendedWait(t *testing.T) {
	if contendedWait(1, 100) != 0 {
		t.Error("single sharer must not wait")
	}
	w2, w4, w8 := contendedWait(2, 100), contendedWait(4, 100), contendedWait(8, 100)
	if !(w2 < w4 && w4 < w8) {
		t.Errorf("wait must grow with sharers: %v %v %v", w2, w4, w8)
	}
	if w8/w4 < 2 {
		t.Errorf("wait growth should be superlinear: w8/w4 = %v", w8/w4)
	}
	if contendedWait(1000, 100) > 100*60+1 {
		t.Error("wait must be capped")
	}
}

// allocFreeRoundTrip exercises every allocator with a mixed workload and
// checks the invariants that matter: no overlapping live allocations,
// stable stats accounting, and address reuse after free.
func TestAllAllocatorsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			env := newFakeEnv()
			a := New(name)
			a.Attach(env, 4)
			type obj struct{ addr, size uint64 }
			live := make(map[uint64]obj) // base addr -> obj
			threads := []fakeThread{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
			sizes := []uint64{16, 24, 100, 500, 4000, 40000}
			var seq []obj
			for i := 0; i < 2000; i++ {
				th := threads[i%4]
				size := sizes[i%len(sizes)]
				addr, cycles := a.Malloc(th, size)
				if cycles <= 0 {
					t.Fatalf("malloc cost must be positive, got %v", cycles)
				}
				// Live allocations must not overlap.
				end := addr + ClassSize(size)
				for _, o := range live {
					oEnd := o.addr + ClassSize(o.size)
					if addr < oEnd && o.addr < end {
						t.Fatalf("overlap: new [%#x,%#x) with live [%#x,%#x)", addr, end, o.addr, oEnd)
					}
				}
				live[addr] = obj{addr, size}
				seq = append(seq, obj{addr, size})
				if i%3 == 2 { // free the oldest live allocation
					o := seq[0]
					seq = seq[1:]
					if _, ok := live[o.addr]; ok {
						delete(live, o.addr)
						if c := a.Free(threads[(i+1)%4], o.addr, o.size); c <= 0 {
							t.Fatalf("free cost must be positive, got %v", c)
						}
					}
				}
			}
			st := a.Stats()
			if st.Mallocs != 2000 {
				t.Errorf("mallocs = %d, want 2000", st.Mallocs)
			}
			if st.Frees == 0 {
				t.Error("no frees recorded")
			}
			if st.LiveBytes > st.PeakLiveBytes {
				t.Error("live exceeds peak")
			}
		})
	}
}

func TestAddressReuse(t *testing.T) {
	env := newFakeEnv()
	a := New("tbbmalloc")
	a.Attach(env, 1)
	th := fakeThread{0, 0}
	addr1, _ := a.Malloc(th, 64)
	a.Free(th, addr1, 64)
	addr2, _ := a.Malloc(th, 64)
	if addr1 != addr2 {
		t.Errorf("LIFO free list should reuse the freed address: %#x vs %#x", addr1, addr2)
	}
}

func TestFastPathCheaperThanSlow(t *testing.T) {
	for _, name := range WorkloadNames() {
		env := newFakeEnv()
		a := New(name)
		a.Attach(env, 16)
		th := fakeThread{0, 0}
		_, coldCost := a.Malloc(th, 64) // first call: new slab, slow path
		addr, _ := a.Malloc(th, 64)
		a.Free(th, addr, 64)
		_, warmCost := a.Malloc(th, 64) // reuse: fast path
		if warmCost >= coldCost {
			t.Errorf("%s: warm malloc (%v) should be cheaper than cold (%v)", name, warmCost, coldCost)
		}
	}
}

// perOpCost runs a mixed growth+churn pattern (as the Figure 2a
// microbenchmark does) and returns mean cycles per operation.
func perOpCost(name string, threads int) float64 {
	env := newFakeEnv()
	a := New(name)
	a.Attach(env, threads)
	total := 0.0
	ops := 0
	ths := make([]fakeThread, threads)
	for i := range ths {
		ths[i] = fakeThread{i, topology.NodeID(i % 4)}
	}
	type obj struct {
		addr, size uint64
		tid        int
	}
	var window []obj
	const iters = 6000
	for i := 0; i < iters; i++ {
		th := ths[i%threads]
		size := uint64(16 + (i%12)*40)
		addr, c := a.Malloc(th, size)
		total += c
		ops++
		window = append(window, obj{addr, size, th.id})
		// Hold a deep per-thread working set so growth phases hit the
		// slow path, then churn the oldest entries.
		if len(window) > threads*80 {
			o := window[0]
			window = window[1:]
			total += a.Free(ths[o.tid], o.addr, o.size)
			ops++
		}
	}
	return total / float64(ops)
}

func TestScalingOrdering(t *testing.T) {
	// Expected Figure 2a ordering at 16 threads: tbbmalloc and Hoard
	// cheapest per op, ptmalloc/tcmalloc/supermalloc clearly pricier.
	tbb := perOpCost("tbbmalloc", 16)
	hoardCost := perOpCost("Hoard", 16)
	jem := perOpCost("jemalloc", 16)
	pt := perOpCost("ptmalloc", 16)
	tcm := perOpCost("tcmalloc", 16)
	sm := perOpCost("supermalloc", 16)
	if !(tbb < pt && hoardCost < pt) {
		t.Errorf("tbb (%v) and Hoard (%v) should beat ptmalloc (%v) at 16 threads", tbb, hoardCost, pt)
	}
	if !(jem < pt) {
		t.Errorf("jemalloc (%v) should beat ptmalloc (%v) at 16 threads", jem, pt)
	}
	if !(tbb < tcm && tbb < sm) {
		t.Errorf("tbbmalloc (%v) should beat tcmalloc (%v) and supermalloc (%v) at 16 threads", tbb, tcm, sm)
	}
	if !(pt < sm) {
		t.Errorf("supermalloc (%v) should be the worst scaler, ptmalloc was %v", sm, pt)
	}
}

func TestSingleThreadTcmallocFastest(t *testing.T) {
	tcm := perOpCost("tcmalloc", 1)
	for _, other := range []string{"ptmalloc", "jemalloc", "Hoard", "supermalloc"} {
		if c := perOpCost(other, 1); tcm >= c {
			t.Errorf("tcmalloc single-thread (%v) should beat %s (%v)", tcm, other, c)
		}
	}
}

func TestContentionGrowsWithThreads(t *testing.T) {
	for _, name := range []string{"ptmalloc", "tcmalloc", "supermalloc"} {
		c1, c16 := perOpCost(name, 1), perOpCost(name, 16)
		if c16 < c1*1.2 {
			t.Errorf("%s: per-op cost should degrade with threads: 1T=%v 16T=%v", name, c1, c16)
		}
	}
	// The scalable allocators should degrade much less.
	for _, name := range []string{"tbbmalloc", "Hoard"} {
		c1, c16 := perOpCost(name, 1), perOpCost(name, 16)
		if c16 > c1*2 {
			t.Errorf("%s: should scale well: 1T=%v 16T=%v", name, c1, c16)
		}
	}
}

func TestTHPFriendliness(t *testing.T) {
	friendly := map[string]bool{
		"ptmalloc": true, "Hoard": true, "supermalloc": true, "mcmalloc": true,
		"jemalloc": false, "tcmalloc": false, "tbbmalloc": false,
	}
	for name, want := range friendly {
		if got := New(name).THPFriendly(); got != want {
			t.Errorf("%s THPFriendly = %v, want %v", name, got, want)
		}
	}
}

func TestPurgersReturnPages(t *testing.T) {
	env := newFakeEnv()
	a := New("jemalloc")
	a.Attach(env, 1)
	th := fakeThread{0, 0}
	// Allocate a page-spanning batch, then free it: the sweep crosses
	// pages, so the decay-based purger fires.
	var addrs []uint64
	for i := 0; i < 2000; i++ {
		addr, _ := a.Malloc(th, 256)
		env.mem.Fault(addr, 0) // user touches the object
		addrs = append(addrs, addr)
	}
	for _, addr := range addrs {
		a.Free(th, addr, 256)
	}
	if a.Stats().Purges == 0 {
		t.Error("jemalloc should purge pages under a page-sweeping free pattern")
	}
}

func TestPurgerSkipsHotPage(t *testing.T) {
	env := newFakeEnv()
	a := New("jemalloc")
	a.Attach(env, 1)
	th := fakeThread{0, 0}
	// Back-to-back churn of one object never cools its page, so the
	// decay purger must not fire (engine-style buffer reuse).
	for i := 0; i < 500; i++ {
		addr, _ := a.Malloc(th, 64)
		a.Free(th, addr, 64)
	}
	if p := a.Stats().Purges; p != 0 {
		t.Errorf("hot-page churn purged %d pages, want 0", p)
	}
}

func TestMcmallocEagerCommit(t *testing.T) {
	lazy := newFakeEnv()
	la := New("tbbmalloc")
	la.Attach(lazy, 8)
	eager := newFakeEnv()
	ea := New("mcmalloc")
	ea.Attach(eager, 8)
	for i := 0; i < 200; i++ {
		th := fakeThread{i % 8, topology.NodeID(i % 4)}
		la.Malloc(th, uint64(16+(i%10)*200))
		ea.Malloc(th, uint64(16+(i%10)*200))
	}
	if eager.mem.MappedBytes() <= lazy.mem.MappedBytes() {
		t.Errorf("mcmalloc eager commit should map more: %d vs %d",
			eager.mem.MappedBytes(), lazy.mem.MappedBytes())
	}
}

func TestUnknownAllocatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bogus")
}

func TestLargeAllocationLifecycle(t *testing.T) {
	env := newFakeEnv()
	a := New("ptmalloc")
	a.Attach(env, 1)
	th := fakeThread{0, 0}
	addr, _ := a.Malloc(th, 1<<20)
	env.Touch(addr, 1<<20, 0)
	mapped := env.mem.MappedBytes()
	if mapped < 1<<20 {
		t.Fatalf("mapped = %d after touching 1MiB", mapped)
	}
	a.Free(th, addr, 1<<20)
	if env.mem.MappedBytes() >= mapped {
		t.Error("large free should unmap its pages")
	}
}

func TestMallocAlignmentProperty(t *testing.T) {
	env := newFakeEnv()
	a := New("jemalloc")
	a.Attach(env, 2)
	f := func(sizeRaw uint16, tidRaw uint8) bool {
		size := uint64(sizeRaw)%8192 + 1
		th := fakeThread{int(tidRaw) % 2, 0}
		addr, _ := a.Malloc(th, size)
		return addr%16 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
