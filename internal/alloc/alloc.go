// Package alloc provides behavioural models of the seven dynamic memory
// allocators the paper evaluates: ptmalloc, jemalloc, tcmalloc, Hoard,
// tbbmalloc, supermalloc and mcmalloc.
//
// Each model implements the structural properties that drive the paper's
// results — thread caches, arena assignment and locking, central heaps,
// slab retention, eager commitment, and (un)friendliness to Transparent
// Hugepages — on top of the simulated virtual memory. A Malloc returns both
// a simulated address and the cycle cost of the operation, including any
// expected lock wait given the thread count sharing the lock; the machine
// layer charges the cycles to the calling thread.
//
// The models are deliberately analytic about contention (expected waits as
// a function of sharers) so that simulations are deterministic, while the
// placement consequences (which node a reused object's page lives on) are
// fully mechanistic through the vmm.
package alloc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/topology"
	"repro/internal/vmm"
)

// Env is the slice of the machine an allocator may use: reserving address
// space, returning pages to the OS, and eagerly committing pages.
type Env interface {
	// Reserve claims virtual address space; pages fault in on first touch.
	Reserve(bytes uint64, owner topology.NodeID) vmm.Range
	// UnmapRange returns whole pages to the OS (madvise(DONTNEED)).
	UnmapRange(base, bytes uint64)
	// Touch commits the pages covering [base, base+bytes) as if written by
	// a thread on the given node (used by eagerly-committing allocators).
	Touch(base, bytes uint64, owner topology.NodeID)
	// Nodes returns the NUMA node count.
	Nodes() int
}

// ThreadInfo identifies the calling simulated thread.
type ThreadInfo interface {
	ID() int
	Node() topology.NodeID
}

// Stats captures an allocator's activity for the microbenchmark and tests.
type Stats struct {
	Mallocs        uint64
	Frees          uint64
	LiveBytes      uint64 // requested bytes currently live
	PeakLiveBytes  uint64
	SlowPaths      uint64 // central/arena refills
	LockWaitCycles float64
	Purges         uint64 // pages returned to the OS
}

// Allocator is a dynamic memory allocator model.
type Allocator interface {
	// Name returns the allocator's name as used in the paper's figures.
	Name() string
	// Attach binds the allocator to a machine for a run with the given
	// number of worker threads. It must be called before Malloc.
	Attach(env Env, threads int)
	// Malloc allocates size bytes for thread t, returning the simulated
	// address and the operation's cycle cost.
	Malloc(t ThreadInfo, size uint64) (addr uint64, cycles float64)
	// Free releases an allocation made by Malloc (sized free), returning
	// the operation's cycle cost.
	Free(t ThreadInfo, addr, size uint64) (cycles float64)
	// THPFriendly reports whether the allocator coexists well with
	// Transparent Hugepages (Figure 5c's dividing line).
	THPFriendly() bool
	// Stats returns cumulative counters.
	Stats() Stats
}

// Names lists the allocators in the paper's order. The first entry,
// ptmalloc, is the system default.
func Names() []string {
	return []string{"ptmalloc", "jemalloc", "tcmalloc", "Hoard", "tbbmalloc", "mcmalloc", "supermalloc"}
}

// WorkloadNames lists the allocators used in the workload experiments
// (Figures 5c, 6, 7): mcmalloc and supermalloc are dropped after the
// microbenchmark for poor overhead and scalability, as in the paper.
func WorkloadNames() []string {
	return []string{"ptmalloc", "jemalloc", "tcmalloc", "Hoard", "tbbmalloc"}
}

// New constructs an allocator model by name. It panics on unknown names so
// that experiment tables fail loudly.
func New(name string) Allocator {
	switch name {
	case "ptmalloc":
		return newPtmalloc()
	case "jemalloc":
		return newJemalloc()
	case "tcmalloc":
		return newTcmalloc()
	case "Hoard", "hoard":
		return newHoard()
	case "tbbmalloc":
		return newTbbmalloc()
	case "supermalloc":
		return newSupermalloc()
	case "mcmalloc":
		return newMcmalloc()
	default:
		panic(fmt.Sprintf("alloc: unknown allocator %q", name))
	}
}

// Size classes shared by the models: fine-grained at small sizes, then
// geometric up to the large-object threshold.
var classSizes = buildClasses()

// LargeThreshold is the size above which allocations bypass thread caches
// and are served directly from page-granular reservations.
const LargeThreshold = 32 << 10

func buildClasses() []uint64 {
	var cs []uint64
	for s := uint64(16); s <= 256; s += 16 {
		cs = append(cs, s)
	}
	for s := uint64(320); s <= LargeThreshold; s = s * 5 / 4 {
		cs = append(cs, (s+63)&^uint64(63))
	}
	if cs[len(cs)-1] != LargeThreshold {
		cs = append(cs, LargeThreshold)
	}
	return cs
}

// classFor returns the smallest class index whose size fits size.
// Sizes above LargeThreshold have no class; callers must check first.
func classFor(size uint64) int {
	return sort.Search(len(classSizes), func(i int) bool { return classSizes[i] >= size })
}

// ClassSize returns the rounded allocation size for a requested size,
// which is what the allocator actually carves (internal fragmentation).
func ClassSize(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	if size > LargeThreshold {
		// Large allocations round to whole pages.
		return (size + vmm.PageSize - 1) &^ uint64(vmm.PageSize-1)
	}
	return classSizes[classFor(size)]
}

// NumClasses returns the number of small size classes.
func NumClasses() int { return len(classSizes) }

// contendedWait returns the expected wait to acquire a lock shared by
// `sharers` threads issuing allocation bursts. The superlinear exponent
// models convoy formation: beyond a couple of competitors, waiters queue
// behind waiters, so observed waits grow faster than linearly (this is what
// makes ptmalloc and tcmalloc fall off in Figure 2a). The wait is capped to
// keep pathological configurations finite.
func contendedWait(sharers int, holdCycles float64) float64 {
	if sharers <= 1 {
		return 0
	}
	x := float64(sharers - 1)
	w := holdCycles * 0.4 * math.Pow(x, 1.4)
	if maxW := holdCycles * 30; w > maxW {
		w = maxW
	}
	return w
}
