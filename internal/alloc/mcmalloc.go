package alloc

// mcmalloc models the many-core malloc of Umayabara and Yamana: per-thread
// pools with dedicated homogeneous slabs for frequently used size classes,
// filled by *batched* kernel requests (fewer mmap calls, eagerly committed
// memory). Batching scales with the thread count — the design's answer to
// contention — which is precisely why its memory overhead explodes as
// threads rise (Figure 2b) while its speed stays competitive.
type mcmalloc struct {
	base
	heaps      []*pool
	index      *slabIndex
	globalWait float64
}

func newMcmalloc() *mcmalloc { return &mcmalloc{} }

func (a *mcmalloc) Name() string      { return "mcmalloc" }
func (a *mcmalloc) THPFriendly() bool { return true }

func (a *mcmalloc) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	// Slab batches grow with the thread count to keep kernel-call rates
	// flat; eager commitment is what the batched mmap costs in RSS.
	slab := uint64(64<<10) * uint64(a.threads)
	if slab > 4<<20 {
		slab = 4 << 20
	}
	a.index = newSlabIndex()
	a.heaps = make([]*pool, a.threads)
	for i := range a.heaps {
		a.heaps[i] = newPool(env, slab, true)
		a.heaps[i].id = i
		a.heaps[i].index = a.index
	}
	// Infrequent classes share size-segregated global pools.
	a.globalWait = contendedWait(a.threads/4+1, 120)
}

func (a *mcmalloc) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		return a.largeAlloc(size, t.Node()), 400
	}
	c := classFor(size)
	addr, src := a.heaps[t.ID()].alloc(c, t.Node())
	switch src {
	case srcFreeList:
		return addr, 20
	case srcBump:
		return addr, 20 + 45
	}
	// Fresh slab: one batched kernel request covers many future
	// allocations, the design's whole point.
	a.stats.SlowPaths++
	a.lockWait(a.globalWait)
	return addr, 20 + 45 + 2600 + a.globalWait
}

func (a *mcmalloc) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 330
	}
	home := t.ID()
	if id, ok := a.index.ownerOf(addr); ok {
		home = id
	}
	a.heaps[home].put(classFor(size), addr)
	return 30
}

var _ Allocator = (*mcmalloc)(nil)
