package alloc

// ptmalloc models the glibc default allocator: a small set of shared
// arenas, each protected by a mutex, fronted by a shallow per-thread cache
// (tcache, 7 entries per bin). With more threads than arenas the arena
// mutexes convoy, which is why the paper finds the system default lagging.
// It retains and coalesces freed chunks (low footprint, THP friendly).
type ptmalloc struct {
	base
	arenas  []*pool
	tcaches []*tcache
	sharers int
	wait    float64 // precomputed expected arena-lock wait
}

func newPtmalloc() *ptmalloc { return &ptmalloc{} }

func (a *ptmalloc) Name() string      { return "ptmalloc" }
func (a *ptmalloc) THPFriendly() bool { return true }

// ptmalloc's 64-bit arena limit heuristic caps useful arena concurrency;
// the paper's machines all ended up arena-bound at high thread counts.
const ptmallocMaxArenas = 8

func (a *ptmalloc) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	n := threads
	if n > ptmallocMaxArenas {
		n = ptmallocMaxArenas
	}
	a.arenas = make([]*pool, n)
	for i := range a.arenas {
		a.arenas[i] = newPool(env, 4<<20, false) // sbrk heaps grow in large steps
		a.arenas[i].recycle = true
	}
	a.tcaches = make([]*tcache, a.threads)
	for i := range a.tcaches {
		// Shallow bins and a small total budget: ptmalloc's tcache only
		// absorbs short bursts before the arena mutex is back in play.
		a.tcaches[i] = newTcache(3, 16)
	}
	a.sharers = (a.threads + n - 1) / n
	a.wait = contendedWait(a.sharers, 160)
}

func (a *ptmalloc) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		// mmap path: syscall plus brk/mmap lock shared by everyone.
		w := contendedWait(a.threads, 60)
		a.lockWait(w)
		return a.largeAlloc(size, t.Node()), 450 + w
	}
	c := classFor(size)
	if addr, ok := a.tcaches[t.ID()].get(c); ok {
		return addr, 30
	}
	a.stats.SlowPaths++
	a.lockWait(a.wait)
	addr, src := a.arenas[t.ID()%len(a.arenas)].alloc(c, t.Node())
	cost := 30 + 160 + a.wait
	switch src {
	case srcBump:
		cost += 100 // top-of-heap split
	case srcNewSlab:
		cost += 100 + 2500 // brk/mmap extension
	}
	return addr, cost
}

func (a *ptmalloc) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 350
	}
	c := classFor(size)
	if a.tcaches[t.ID()].put(c, addr) {
		return 25
	}
	// Bin full: the chunk goes back to the arena that owns the address;
	// cross-thread frees contend on the same mutex.
	a.lockWait(a.wait)
	a.arenas[t.ID()%len(a.arenas)].put(c, addr)
	return 40 + 160 + a.wait
}

var _ Allocator = (*ptmalloc)(nil)
