package alloc

// supermalloc models Kuszmaul's allocator: homogeneous chunks per size
// class tracked by a giant sparse lookup table, with hardware transactional
// memory (falling back to mutexes) synchronizing the shared structures.
// HTM elides some contention but every operation still coordinates through
// shared state, so multi-threaded scaling is the worst of the group — the
// reason the paper drops it after the microbenchmark. Footprint stays low
// (chunks are tightly packed, the lookup table is mostly uncommitted).
type supermalloc struct {
	base
	chunks *pool
	wait   float64
}

func newSupermalloc() *supermalloc { return &supermalloc{} }

func (a *supermalloc) Name() string      { return "supermalloc" }
func (a *supermalloc) THPFriendly() bool { return true }

func (a *supermalloc) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	a.chunks = newPool(env, 2<<20, false) // homogeneous 2MiB chunks
	a.chunks.recycle = true
	// Per-chunk locks shard contention a little; HTM elides roughly half
	// the remaining conflicts.
	sharers := a.threads
	a.wait = contendedWait(sharers, 260) * 0.55
}

func (a *supermalloc) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		return a.largeAlloc(size, t.Node()), 420
	}
	a.stats.SlowPaths++
	a.lockWait(a.wait)
	addr, src := a.chunks.alloc(classFor(size), t.Node())
	cost := 35 + 130 + a.wait // prefetch-while-waiting keeps the CS short
	switch src {
	case srcBump:
		cost += 70
	case srcNewSlab:
		cost += 70 + 2000
	}
	return addr, cost
}

func (a *supermalloc) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 340
	}
	a.lockWait(a.wait)
	a.chunks.put(classFor(size), addr)
	return 35 + 110 + a.wait
}

var _ Allocator = (*supermalloc)(nil)
