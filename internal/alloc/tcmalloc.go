package alloc

import "repro/internal/vmm"

// tcmalloc models Google's thread-caching malloc: the fastest fast path of
// the group (15 cycles through the per-thread cache), but refills and
// flushes go through central per-class free lists whose locks are shared by
// every thread. Refills move objects in batches, so the central lock is
// amortized — yet with rising thread counts the central path convoys, which
// is exactly the fall-off Figure 2a shows beyond one thread. Its
// ReleaseToSystem behaviour madvises 4KiB spans away (THP unfriendly).
type tcmalloc struct {
	base
	central *pool
	tcaches []*tcache
	purge   purger
	wait    float64
}

// tcmallocBatch objects move between a thread cache and the central list
// per refill/flush, amortizing the central lock.
const tcmallocBatch = 8

func newTcmalloc() *tcmalloc { return &tcmalloc{} }

func (a *tcmalloc) Name() string      { return "tcmalloc" }
func (a *tcmalloc) THPFriendly() bool { return false }

func (a *tcmalloc) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	a.central = newPool(env, 4<<20, false) // page-heap spans
	a.central.recycle = true
	a.tcaches = make([]*tcache, a.threads)
	for i := range a.tcaches {
		a.tcaches[i] = newTcache(2*tcmallocBatch, 256)
	}
	// Central list locks are per size class, but a hot workload hammers a
	// handful of classes, so effectively every thread shares them.
	a.wait = contendedWait(a.threads, 300)
	a.purge = purger{interval: 48}
}

func (a *tcmalloc) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		// Large spans come from the page heap, one global lock.
		w := contendedWait(a.threads, 150)
		a.lockWait(w)
		return a.largeAlloc(size, t.Node()), 420 + w
	}
	c := classFor(size)
	tc := a.tcaches[t.ID()]
	if addr, ok := tc.get(c); ok {
		return addr, 12 // the cheapest fast path of the group
	}
	// Refill: take a batch from the central list under its lock; one
	// object is returned, the rest prime the cache.
	a.stats.SlowPaths++
	a.lockWait(a.wait)
	addr, src := a.central.alloc(c, t.Node())
	cost := 15 + 200 + a.wait + float64(tcmallocBatch)*12
	if src == srcNewSlab {
		cost += 2400 // page heap span fetch
	}
	for i := 1; i < tcmallocBatch; i++ {
		extra, _ := a.central.alloc(c, t.Node())
		if !tc.put(c, extra) {
			a.central.put(c, extra)
			break
		}
	}
	return addr, cost
}

func (a *tcmalloc) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 380
	}
	c := classFor(size)
	tc := a.tcaches[t.ID()]
	cost := 14.0
	if !tc.put(c, addr) {
		// Cache over capacity: flush a batch back to the central list.
		a.central.put(c, addr)
		for i := 1; i < tcmallocBatch; i++ {
			extra, ok := tc.get(c)
			if !ok {
				break
			}
			a.central.put(c, extra)
		}
		cost = 18 + 200 + a.wait + float64(tcmallocBatch)*10
		a.lockWait(a.wait)
	}
	if a.purge.maybePurge(addr >> 12) {
		a.env.UnmapRange(addr&^uint64(vmm.PageSize-1), vmm.PageSize)
		a.stats.Purges++
		cost += 260
	}
	return cost
}

var _ Allocator = (*tcmalloc)(nil)
