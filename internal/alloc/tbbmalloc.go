package alloc

import "repro/internal/vmm"

// tbbmalloc models the Intel TBB scalable allocator: per-thread memory
// pools with no locking on the hot path; frees of another thread's object
// enqueue onto the owner's lock-free return list. This is the best scaler
// in the paper's microbenchmark and the workload winner in Figure 6, at
// the cost of a bigger footprint (pools trade memory for speed) and poor
// THP behaviour (it returns 4KiB blocks to the OS).
type tbbmalloc struct {
	base
	heaps []*pool
	index *slabIndex
	purge purger
}

func newTbbmalloc() *tbbmalloc { return &tbbmalloc{} }

func (a *tbbmalloc) Name() string      { return "tbbmalloc" }
func (a *tbbmalloc) THPFriendly() bool { return false }

func (a *tbbmalloc) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	a.index = newSlabIndex()
	a.heaps = make([]*pool, a.threads)
	for i := range a.heaps {
		// Big per-thread slabs: tbbmalloc accepts extra memory consumption
		// as a deliberate trade for allocation speed.
		a.heaps[i] = newPool(env, 4<<20, false)
		a.heaps[i].id = i
		a.heaps[i].index = a.index
	}
	a.purge = purger{interval: 32}
}

func (a *tbbmalloc) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		return a.largeAlloc(size, t.Node()), 360
	}
	c := classFor(size)
	addr, src := a.heaps[t.ID()].alloc(c, t.Node())
	switch src {
	case srcFreeList:
		return addr, 18
	case srcBump:
		return addr, 18 + 40 // bump inside the thread's own slab, no lock
	}
	a.stats.SlowPaths++
	return addr, 18 + 40 + 1700 // fresh 1MiB slab from the OS
}

func (a *tbbmalloc) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 300
	}
	// Same-thread frees are a push onto a private list; a foreign chunk
	// goes back to its owner's heap through the lock-free return queue.
	cost := 20.0
	home := t.ID()
	if id, ok := a.index.ownerOf(addr); ok && id != home {
		home = id
		cost = 40 // remote-free enqueue
	}
	a.heaps[home].put(classFor(size), addr)
	if a.purge.maybePurge(addr >> 12) {
		a.env.UnmapRange(addr&^uint64(vmm.PageSize-1), vmm.PageSize)
		a.stats.Purges++
		cost += 220
	}
	return cost
}

var _ Allocator = (*tbbmalloc)(nil)
