package alloc

import (
	"repro/internal/topology"
	"repro/internal/vmm"
)

// pool is the building block shared by the allocator models: a bump-carved
// slab area with per-size-class free lists. A pool stands for a ptmalloc
// arena, a jemalloc arena, a tcmalloc central heap, a Hoard thread heap, or
// a tbbmalloc per-thread memory pool, depending on how the model wires
// pools to threads.
type pool struct {
	env       Env
	slabBytes uint64
	eager     bool // commit whole slabs on reservation (mcmalloc batching)
	recycle   bool // serve a class from larger-class free chunks (coalescing)

	// id/index support ownership-aware frees: per-thread-heap allocators
	// return a freed chunk to the heap that carved its slab, not to the
	// freeing thread's heap.
	id    int
	index *slabIndex

	free     [][]uint64 // per-class LIFO free lists
	cur      vmm.Range
	curOff   uint64
	reserved uint64 // total address space carved by this pool
}

func newPool(env Env, slabBytes uint64, eager bool) *pool {
	return &pool{
		env:       env,
		slabBytes: slabBytes,
		eager:     eager,
		free:      make([][]uint64, len(classSizes)),
	}
}

// slabIndex maps 2MiB-granular address ranges to the owning pool id, so a
// cross-thread free can find the chunk's home heap (Hoard's superblock
// ownership, tbbmalloc's return lists, jemalloc's extent arenas).
type slabIndex struct {
	owner map[uint64]int
}

func newSlabIndex() *slabIndex { return &slabIndex{owner: map[uint64]int{}} }

const slabGranuleShift = 21 // 2MiB, the reservation alignment

func (si *slabIndex) register(r vmm.Range, id int) {
	for g := r.Base >> slabGranuleShift; g <= (r.End()-1)>>slabGranuleShift; g++ {
		si.owner[g] = id
	}
}

// ownerOf returns the pool id owning addr's slab.
func (si *slabIndex) ownerOf(addr uint64) (int, bool) {
	id, ok := si.owner[addr>>slabGranuleShift]
	return id, ok
}

// allocSrc says which path served a pool allocation; costs differ by an
// order of magnitude between them.
type allocSrc int

const (
	srcFreeList allocSrc = iota // popped a previously freed chunk
	srcBump                     // carved from the current slab
	srcNewSlab                  // had to reserve a fresh slab (mmap)
)

// alloc returns an address for class c and the path that served it. owner
// is the requesting thread's node, used as the reservation owner for
// Localalloc placement.
func (p *pool) alloc(c int, owner topology.NodeID) (addr uint64, src allocSrc) {
	if l := p.free[c]; len(l) > 0 {
		addr = l[len(l)-1]
		p.free[c] = l[:len(l)-1]
		return addr, srcFreeList
	}
	if p.recycle {
		// Approximate chunk splitting/coalescing: a freed chunk of a larger
		// class can serve this class (the tail is wasted until the chunk
		// returns to its home list on free). This is what keeps arena
		// allocators' footprints near peak live when the size mix shifts.
		for rc := c + 1; rc < len(p.free) && rc <= c+12; rc++ {
			if l := p.free[rc]; len(l) > 0 {
				addr = l[len(l)-1]
				p.free[rc] = l[:len(l)-1]
				return addr, srcFreeList
			}
		}
	}
	return p.carve(classSizes[c], owner)
}

// carve bump-allocates size bytes, reserving a fresh slab when the current
// one is exhausted.
func (p *pool) carve(size uint64, owner topology.NodeID) (uint64, allocSrc) {
	size = (size + 15) &^ uint64(15)
	src := srcBump
	if p.cur.Bytes == 0 || p.curOff+size > p.cur.Bytes {
		slab := p.slabBytes
		if size > slab {
			slab = size
		}
		p.cur = p.env.Reserve(slab, owner)
		p.curOff = 0
		p.reserved += p.cur.Bytes
		if p.index != nil {
			p.index.register(p.cur, p.id)
		}
		if p.eager {
			p.env.Touch(p.cur.Base, p.cur.Bytes, owner)
		}
		src = srcNewSlab
	}
	addr := p.cur.Base + p.curOff
	p.curOff += size
	return addr, src
}

// put returns an address to class c's free list.
func (p *pool) put(c int, addr uint64) {
	p.free[c] = append(p.free[c], addr)
}

// tcache is a per-thread cache of freed objects with a bounded depth per
// size class and a bounded total object count, like ptmalloc's tcache or
// tcmalloc's thread cache. Hits bypass all locks; the total cap is what
// forces spills back to the shared structures when many classes are hot.
type tcache struct {
	bins  [][]uint64
	depth int
	cap   int
	count int
}

func newTcache(depth, totalCap int) *tcache {
	return &tcache{bins: make([][]uint64, len(classSizes)), depth: depth, cap: totalCap}
}

func (tc *tcache) get(c int) (uint64, bool) {
	if l := tc.bins[c]; len(l) > 0 {
		addr := l[len(l)-1]
		tc.bins[c] = l[:len(l)-1]
		tc.count--
		return addr, true
	}
	return 0, false
}

// put caches addr in class c, reporting false when the bin or the cache as
// a whole is full.
func (tc *tcache) put(c int, addr uint64) bool {
	if len(tc.bins[c]) >= tc.depth || tc.count >= tc.cap {
		return false
	}
	tc.bins[c] = append(tc.bins[c], addr)
	tc.count++
	return true
}

// base carries the bookkeeping every allocator model shares.
type base struct {
	env        Env
	threads    int
	stats      Stats
	onLockWait func(w float64)
}

// SetLockWaitHook installs a callback invoked with every lock-contention
// wait the model charges (the machine layer uses it to emit AllocStall
// trace events). Promoted to every allocator through embedding; a nil hook
// costs nothing.
func (b *base) SetLockWaitHook(fn func(w float64)) { b.onLockWait = fn }

// lockWait records an expected lock-contention wait: it accumulates into
// the run's Stats and feeds the hook when one is attached.
func (b *base) lockWait(w float64) {
	b.stats.LockWaitCycles += w
	if b.onLockWait != nil && w > 0 {
		b.onLockWait(w)
	}
}

func (b *base) Attach(env Env, threads int) {
	if threads < 1 {
		threads = 1
	}
	b.env = env
	b.threads = threads
}

func (b *base) Stats() Stats { return b.stats }

func (b *base) onMalloc(size uint64) {
	b.stats.Mallocs++
	b.stats.LiveBytes += size
	if b.stats.LiveBytes > b.stats.PeakLiveBytes {
		b.stats.PeakLiveBytes = b.stats.LiveBytes
	}
}

func (b *base) onFree(size uint64) {
	b.stats.Frees++
	if b.stats.LiveBytes >= size {
		b.stats.LiveBytes -= size
	} else {
		b.stats.LiveBytes = 0
	}
}

// largeAlloc handles allocations above LargeThreshold: a dedicated
// page-granular reservation, unmapped in full on free (as mmap-threshold
// objects are).
func (base *base) largeAlloc(size uint64, owner topology.NodeID) uint64 {
	r := base.env.Reserve(ClassSize(size), owner)
	return r.Base
}

func (base *base) largeFree(addr, size uint64) {
	base.env.UnmapRange(addr, ClassSize(size))
	base.stats.Purges += ClassSize(size) / vmm.PageSize
}

// purger implements the 4KiB-granular page-return behaviour (decay-based
// madvise DONTNEED) of THP-unfriendly allocators: every intervalth free of
// a *cooling* page returns it to the OS, which splits a covering hugepage
// and forces a refault on reuse — the Figure 5c pathology. A page that is
// freed repeatedly back-to-back is hot (its decay timer keeps resetting),
// so it is never purged; this matters for engine-style alloc/free churn of
// a single buffer.
type purger struct {
	interval uint64
	count    uint64
	// recent is a direct-mapped recency table of freed pages: a page seen
	// here recently is hot (its decay timer keeps resetting) and is never
	// purged. Steady-state buffer churn cycles through a small page set
	// and stays entirely inside this window.
	recent [256]uint64
}

// maybePurge reports whether the free of an object on the given page
// should purge it.
func (p *purger) maybePurge(page uint64) bool {
	if p.interval == 0 {
		return false
	}
	slot := &p.recent[page&255]
	if *slot == page+1 {
		return false // hot page: the decay timer keeps resetting
	}
	*slot = page + 1
	p.count++
	return p.count%p.interval == 0
}
