package alloc

// hoard models the Hoard allocator: per-thread heaps made of fixed-size
// superblocks, with a global heap ("the hoard") that absorbs mostly-empty
// superblocks and hands them to other heaps. Nearly all operations stay on
// the owning heap, so it scales well (Figure 2a); superblock granularity
// retains freed memory per thread and class, which costs footprint
// (Figure 2b). Hoard retains rather than madvises, so it coexists fine
// with transparent hugepages.
type hoard struct {
	base
	heaps      []*pool
	index      *slabIndex
	globalWait float64
	importTick uint64
}

// hoardImportEvery models how often a new-superblock request escalates to
// the global hoard lock instead of carving fresh memory locally.
const hoardImportEvery = 16

func newHoard() *hoard { return &hoard{} }

func (a *hoard) Name() string      { return "Hoard" }
func (a *hoard) THPFriendly() bool { return true }

func (a *hoard) Attach(env Env, threads int) {
	a.base.Attach(env, threads)
	a.index = newSlabIndex()
	a.heaps = make([]*pool, a.threads)
	for i := range a.heaps {
		a.heaps[i] = newPool(env, 4<<20, false) // 64KiB superblocks carved from 4MiB OS chunks
		a.heaps[i].id = i
		a.heaps[i].index = a.index
	}
	a.globalWait = contendedWait(a.threads, 60)
}

func (a *hoard) Malloc(t ThreadInfo, size uint64) (uint64, float64) {
	a.onMalloc(size)
	if size > LargeThreshold {
		return a.largeAlloc(size, t.Node()), 400
	}
	c := classFor(size)
	addr, src := a.heaps[t.ID()].alloc(c, t.Node())
	switch src {
	case srcFreeList:
		return addr, 24
	case srcBump:
		return addr, 24 + 55 // next slot in the current superblock
	}
	// New superblock: usually fresh local memory; occasionally an import
	// from the global hoard under its lock.
	a.stats.SlowPaths++
	cost := 22 + 55 + 1800.0
	a.importTick++
	if a.importTick%hoardImportEvery == 0 {
		cost += 60 + a.globalWait
		a.lockWait(a.globalWait)
	}
	return addr, cost
}

func (a *hoard) Free(t ThreadInfo, addr, size uint64) float64 {
	a.onFree(size)
	if size > LargeThreshold {
		a.largeFree(addr, size)
		return 340
	}
	// Frees return to the owning superblock's heap; cross-thread frees
	// lock the superblock, a fine-grained lock charged as a flat premium.
	home := t.ID()
	cost := 30.0
	if id, ok := a.index.ownerOf(addr); ok && id != home {
		home = id
		cost = 55
	}
	a.heaps[home].put(classFor(size), addr)
	return cost
}

var _ Allocator = (*hoard)(nil)
