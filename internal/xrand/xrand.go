// Package xrand provides small, fast, deterministic random number
// generators and samplers used throughout the simulator.
//
// The simulator must be bit-for-bit reproducible across runs and across
// platforms for a given seed, so all stochastic behaviour (scheduler
// migrations, dataset generation, AutoNUMA sampling, ...) is driven by the
// generators in this package rather than math/rand. The core generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors.
package xrand

import "math"

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used to seed other generators and to derive independent streams
// from a single user-provided seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo-random generator. The zero value is not
// valid; construct with New.
type Rand struct {
	s [4]uint64
	// seed0 is the first state word as initialized by New, frozen so that
	// Derive stays a function of the seed material alone, no matter how far
	// the stream has advanced since construction.
	seed0 uint64
}

// New returns a generator derived deterministically from seed. Distinct
// seeds yield independent-looking streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// Guard against the (impossible via splitmix64, but cheap to prevent)
	// all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.seed0 = r.s[0]
	return &r
}

// Derive returns a new generator whose stream is a deterministic function
// of r's seed material and the given stream label. It does not perturb r,
// and the result is independent of how many values r has produced: deriving
// the same label from the same-seeded generator always yields the same
// stream, which is what makes derived streams safe to hand out from code
// whose own consumption order may change (e.g. parallel grid cells).
func (r *Rand) Derive(label uint64) *Rand {
	sm := r.seed0 ^ (label * 0xd1342543de82ef95)
	return New(SplitMix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection for exactness.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}
