package xrand

import (
	"math"
	"sort"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(k+1)^s, matching the Zipfian datasets used by the paper (the W2
// aggregation dataset uses exponent 0.5, which is why this sampler supports
// the full range s > 0 rather than only s > 1).
//
// Sampling is by inversion against a precomputed CDF table: exact, O(log n)
// per draw, and O(n) memory. The cardinalities used by the workloads (around
// one million groups in the paper, less at simulator scale) make the table
// cost negligible next to the datasets themselves.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0.
// It panics if n == 0 or s <= 0.
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	if s <= 0 {
		panic("xrand: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += math.Exp(-s * math.Log(float64(k+1)))
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{r: r, cdf: cdf}
}

// Uint64 returns a Zipf-distributed value in [0, n).
func (z *Zipf) Uint64() uint64 {
	u := z.r.Float64()
	return uint64(sort.SearchFloat64s(z.cdf, u))
}

// N returns the size of the sampler's support.
func (z *Zipf) N() uint64 { return uint64(len(z.cdf)) }
