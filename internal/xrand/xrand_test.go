package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestDeriveIndependent(t *testing.T) {
	r := New(7)
	d1 := r.Derive(1)
	d2 := r.Derive(2)
	d1Again := r.Derive(1)
	if d1.Uint64() != d1Again.Uint64() {
		t.Fatal("Derive is not deterministic")
	}
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different labels collide suspiciously")
	}
}

func TestDerivePositionIndependent(t *testing.T) {
	// Regression test: Derive's contract is that the derived stream is a
	// function of the parent's *seed material* and the label only. The old
	// implementation read the parent's live state word, so deriving after
	// consuming values silently produced a different stream — which would
	// break reproducibility as soon as consumption order changed (e.g.
	// cells running in nondeterministic order on a worker pool).
	fresh := New(7)
	want := fresh.Derive(42)

	advanced := New(7)
	for i := 0; i < 1000; i++ {
		advanced.Uint64()
	}
	advanced.Float64()
	advanced.Intn(17)
	got := advanced.Derive(42)

	for i := 0; i < 1000; i++ {
		if w, g := want.Uint64(), got.Uint64(); w != g {
			t.Fatalf("derived stream depends on parent position: diverged at step %d (%d vs %d)", i, w, g)
		}
	}
}

func TestDeriveDoesNotPerturbParent(t *testing.T) {
	a, b := New(5), New(5)
	a.Derive(1)
	a.Derive(2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Derive perturbed the parent stream at step %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, trials = 10, 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("mean = %v, want about 1", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.02 {
		t.Errorf("empirical p = %v, want about 0.3", p)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 0.5, 1000)
	const n = 200000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		v := z.Uint64()
		if v >= 1000 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be the most frequent and clearly above uniform share.
	if counts[0] <= n/1000 {
		t.Errorf("rank 0 count %d not above uniform share %d", counts[0], n/1000)
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d) should dominate rank 500 (%d)", counts[0], counts[500])
	}
}

func TestZipfHighExponentConcentrates(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 2.0, 100)
	const n = 50000
	top := 0
	for i := 0; i < n; i++ {
		if z.Uint64() == 0 {
			top++
		}
	}
	if float64(top)/n < 0.5 {
		t.Errorf("with s=2, rank 0 share = %v, want > 0.5", float64(top)/n)
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for _, tc := range []struct {
		s float64
		n uint64
	}{{0, 10}, {-1, 10}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%v, %v): expected panic", tc.s, tc.n)
				}
			}()
			NewZipf(r, tc.s, tc.n)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 0.5, 1<<20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= z.Uint64()
	}
	_ = sink
}
