package tpch

import (
	"sort"

	"repro/internal/machine"
)

// Q12: shipping modes and order priority. MAIL/SHIP lineitems received in
// 1994 that were committed late, split by priority class.
func (e *Engine) q12() int64 {
	db := e.DB
	const mail, ship = 2, 5
	lo := int32(MkDate(1994, 1, 1))
	hi := int32(MkDate(1995, 1, 1))
	var highMail, lowMail, highShip, lowShip int64
	cols := []string{"orderkey", "shipmode", "receiptdate", "commitdate", "shipdate"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		var hm, lm, hs, ls int64
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			if (l.ShipMode != mail && l.ShipMode != ship) ||
				l.ReceiptDate < lo || l.ReceiptDate >= hi ||
				l.CommitDate >= l.ReceiptDate || l.ShipDate >= l.CommitDate {
				continue
			}
			e.Scan(t, "orders", []string{"orderkey", "orderpriority"}, int(l.OrderKey))
			high := db.Orders[l.OrderKey].OrderPriority <= 1 // URGENT or HIGH
			switch {
			case l.ShipMode == mail && high:
				hm++
			case l.ShipMode == mail:
				lm++
			case high:
				hs++
			default:
				ls++
			}
		}
		highMail += hm
		lowMail += lm
		highShip += hs
		lowShip += ls
		mergeCharge(t, 4)
	})
	return highMail*1000 + lowMail*100 + highShip*10 + lowShip
}

// Q13: customer order-count distribution, excluding special-request
// comments.
func (e *Engine) q13() int64 {
	db := e.DB
	counts := make([]int32, len(db.Customers))
	e.Par(len(db.Orders), func(t *machine.Thread, lo, hi int) {
		local := map[uint64]int32{}
		for i := lo; i < hi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "custkey", "comment"}, i)
			o := &db.Orders[i]
			if o.SpecialFlag {
				continue
			}
			local[uint64(o.CustKey)]++
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			counts[k] += v
		}
		mergeCharge(t, len(local))
	})
	// Histogram of counts (including zero-order customers: the left join).
	hist := map[int32]int64{}
	for i := range db.Customers {
		hist[counts[i]]++
	}
	var check int64
	for c, n := range hist { //rangecheck:ok commutative wrapping-add checksum
		check += int64(c)*n + n
	}
	return check
}

// Q14: promotion effect. Share of September-1995 revenue from PROMO parts.
func (e *Engine) q14() int64 {
	db := e.DB
	lo := int32(MkDate(1995, 9, 1))
	hi := lo + 30
	var promo, total int64
	cols := []string{"partkey", "shipdate", "extendedprice", "discount"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		var lp, lt int64
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			if l.ShipDate < lo || l.ShipDate >= hi {
				continue
			}
			e.Scan(t, "part", []string{"partkey", "type"}, int(l.PartKey))
			lt += l.Revenue()
			if TypeSyl1(int(db.Parts[l.PartKey].TypeID)) == 3 { // PROMO
				lp += l.Revenue()
			}
		}
		promo += lp
		total += lt
		mergeCharge(t, 2)
	})
	return promo/10000 + total/10000
}

// Q15: top supplier by quarterly revenue.
func (e *Engine) q15() int64 {
	db := e.DB
	lo := int32(MkDate(1996, 1, 1))
	hi := lo + 90
	rev := map[uint64]int64{}
	cols := []string{"suppkey", "shipdate", "extendedprice", "discount"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		local := map[uint64]int64{}
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			if l.ShipDate >= lo && l.ShipDate < hi {
				local[uint64(l.SuppKey)] += l.Revenue()
			}
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			rev[k] += v
		}
		mergeCharge(t, len(local))
	})
	var maxRev int64
	for _, v := range rev { //rangecheck:ok max reduction, order-independent
		if v > maxRev {
			maxRev = v
		}
	}
	var check int64
	for k, v := range rev { //rangecheck:ok commutative wrapping-add checksum
		if v == maxRev {
			check += int64(k) + v/10000
		}
	}
	return check
}

// Q16: parts/supplier relationship. Distinct suppliers per (brand, type,
// size) bucket, excluding a brand, a type prefix, and complained-about
// suppliers.
func (e *Engine) q16() int64 {
	db := e.DB
	const excludeBrand = 19 // Brand#45
	sizes := map[int8]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	type bucket struct {
		brand int8
		typ   int16
		size  int8
		supp  int32
	}
	distinct := map[bucket]bool{}
	psCols := []string{"partkey", "suppkey"}
	e.Par(len(db.PartSupps), func(t *machine.Thread, lo, hi int) {
		local := map[bucket]bool{}
		for i := lo; i < hi; i++ {
			e.Scan(t, "partsupp", psCols, i)
			ps := &db.PartSupps[i]
			e.Scan(t, "part", []string{"partkey", "brand", "type", "size"}, int(ps.PartKey))
			p := &db.Parts[ps.PartKey]
			if p.Brand == excludeBrand || !sizes[p.Size] {
				continue
			}
			if TypeSyl1(int(p.TypeID)) == 2 && TypeSyl2of(int(p.TypeID)) == 0 { // MEDIUM POLISHED%
				continue
			}
			e.Scan(t, "supplier", []string{"suppkey", "comment"}, int(ps.SuppKey))
			if db.Suppliers[ps.SuppKey].ComplaintFlag {
				continue
			}
			local[bucket{p.Brand, p.TypeID, p.Size, ps.SuppKey}] = true
		}
		for k := range local { //rangecheck:ok set union, order-independent
			distinct[k] = true
		}
		mergeCharge(t, len(local))
	})
	return int64(len(distinct))
}

// TypeSyl2of extracts syllable-2 of a type id.
func TypeSyl2of(typeID int) int {
	return (typeID / len(TypeSyllable3)) % len(TypeSyllable2)
}

// Q17: small-quantity-order revenue. Lineitems under 20% of a part's
// average quantity, for one brand/container.
func (e *Engine) q17() int64 {
	db := e.DB
	const brand = 7                      // Brand#23
	container := int8(ContainerOf(2, 0)) // MED CASE (size MED, kind CASE)
	partOK := make([]bool, len(db.Parts))
	e.Par(len(db.Parts), func(t *machine.Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Scan(t, "part", []string{"partkey", "brand", "container"}, i)
			p := &db.Parts[i]
			partOK[i] = p.Brand == brand && p.Container == container
		}
	})
	type qa struct{ qty, n int64 }
	avg := map[uint64]*qa{}
	e.Par(len(db.Lineitems), func(t *machine.Thread, lo, hi int) {
		local := map[uint64]*qa{}
		for i := lo; i < hi; i++ {
			e.Scan(t, "lineitem", []string{"partkey", "quantity"}, i)
			l := &db.Lineitems[i]
			if !partOK[l.PartKey] {
				continue
			}
			a := local[uint64(l.PartKey)]
			if a == nil {
				a = &qa{}
				local[uint64(l.PartKey)] = a
			}
			a.qty += int64(l.Quantity)
			a.n++
		}
		for k, v := range local { //rangecheck:ok commutative += merge into qa
			g := avg[k]
			if g == nil {
				g = &qa{}
				avg[k] = g
			}
			g.qty += v.qty
			g.n += v.n
		}
		mergeCharge(t, len(local))
	})
	var sum int64
	e.Par(len(db.Lineitems), func(t *machine.Thread, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			e.Scan(t, "lineitem", []string{"partkey", "quantity", "extendedprice"}, i)
			l := &db.Lineitems[i]
			a := avg[uint64(l.PartKey)]
			if a == nil || a.n == 0 {
				continue
			}
			// quantity < 0.2 * avg(quantity)
			if int64(l.Quantity)*a.n*5 < a.qty {
				local += l.ExtendedPrice
			}
		}
		sum += local
		mergeCharge(t, 1)
	})
	return sum / 7 / 100
}

// Q18: large-volume customers. Orders whose lineitems total over 300
// units, top 100 by total price.
func (e *Engine) q18() int64 {
	db := e.DB
	type row struct {
		order int32
		price int64
		qty   int64
	}
	var rows []row
	e.Par(len(db.Orders), func(t *machine.Thread, lo, hi int) {
		var local []row
		for i := lo; i < hi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "custkey", "orderdate", "totalprice"}, i)
			start := int(db.OrderLineStart[i])
			var qty int64
			for j, l := range db.LineitemsOf(i) {
				e.Scan(t, "lineitem", []string{"orderkey", "quantity"}, start+j)
				qty += int64(l.Quantity)
			}
			if qty > 300 {
				local = append(local, row{db.Orders[i].OrderKey, db.Orders[i].TotalPrice, qty})
			}
		}
		rows = append(rows, local...)
		mergeCharge(t, len(local))
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].price != rows[j].price {
			return rows[i].price > rows[j].price
		}
		return rows[i].order < rows[j].order
	})
	if len(rows) > 100 {
		rows = rows[:100]
	}
	var check int64
	for _, r := range rows {
		check += r.qty + r.price/10000
	}
	return check
}

// Q19: discounted revenue over three disjunctive brand/container/quantity
// predicate blocks.
func (e *Engine) q19() int64 {
	db := e.DB
	var sum int64
	cols := []string{"partkey", "quantity", "shipmode", "shipinstruct", "extendedprice", "discount"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			// shipmode in (AIR, REG AIR) and shipinstruct = DELIVER IN PERSON
			if (l.ShipMode != 0 && l.ShipMode != 4) || l.ShipInstruct != 1 {
				continue
			}
			e.Scan(t, "part", []string{"partkey", "brand", "container", "size"}, int(l.PartKey))
			p := &db.Parts[l.PartKey]
			kind := int(p.Container) % len(ContainerKind)
			csize := int(p.Container) / len(ContainerKind)
			q := int64(l.Quantity)
			ok := false
			switch {
			case p.Brand == 1 && csize == 0 && (kind == 0 || kind == 1 || kind == 4 || kind == 5) &&
				q >= 1 && q <= 11 && p.Size <= 5:
				ok = true // Brand#12, SM containers
			case p.Brand == 7 && csize == 2 && (kind == 2 || kind == 1 || kind == 4 || kind == 5) &&
				q >= 10 && q <= 20 && p.Size <= 10:
				ok = true // Brand#23, MED containers
			case p.Brand == 13 && csize == 1 && (kind == 0 || kind == 1 || kind == 4 || kind == 5) &&
				q >= 20 && q <= 30 && p.Size <= 15:
				ok = true // Brand#34, LG containers
			}
			if ok {
				local += l.Revenue()
			}
		}
		sum += local
		mergeCharge(t, 1)
	})
	return sum / 10000
}

// Q20: potential part promotion. CANADA suppliers holding excess stock of
// forest-colored parts relative to 1994 shipments.
func (e *Engine) q20() int64 {
	db := e.DB
	const canada = 3
	const forest = 23 // color id
	lo := int32(MkDate(1994, 1, 1))
	hi := int32(MkDate(1995, 1, 1))
	partOK := make([]bool, len(db.Parts))
	e.Par(len(db.Parts), func(t *machine.Thread, plo, phi int) {
		for i := plo; i < phi; i++ {
			e.Scan(t, "part", []string{"partkey", "name"}, i)
			partOK[i] = db.Parts[i].HasColor(forest)
		}
	})
	// Shipped quantity per (part, supp) in 1994.
	shipped := map[uint64]int64{}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		local := map[uint64]int64{}
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", []string{"partkey", "suppkey", "shipdate", "quantity"}, i)
			l := &db.Lineitems[i]
			if l.ShipDate < lo || l.ShipDate >= hi || !partOK[l.PartKey] {
				continue
			}
			local[uint64(l.PartKey)<<32|uint64(l.SuppKey)] += int64(l.Quantity)
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			shipped[k] += v
		}
		mergeCharge(t, len(local))
	})
	qualifying := map[int32]bool{}
	e.Par(len(db.PartSupps), func(t *machine.Thread, plo, phi int) {
		local := map[int32]bool{}
		for i := plo; i < phi; i++ {
			e.Scan(t, "partsupp", []string{"partkey", "suppkey", "availqty"}, i)
			ps := &db.PartSupps[i]
			if !partOK[ps.PartKey] {
				continue
			}
			e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(ps.SuppKey))
			if db.Suppliers[ps.SuppKey].NationKey != canada {
				continue
			}
			q := shipped[uint64(ps.PartKey)<<32|uint64(ps.SuppKey)]
			if int64(ps.AvailQty)*2 > q {
				local[ps.SuppKey] = true
			}
		}
		for k := range local { //rangecheck:ok set union, order-independent
			qualifying[k] = true
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for k := range qualifying { //rangecheck:ok commutative wrapping-add checksum
		check += int64(k)
	}
	return check + int64(len(qualifying))<<20
}

// Q21: suppliers who kept orders waiting. SAUDI ARABIA suppliers whose
// lineitem was the only late one in a multi-supplier F order.
func (e *Engine) q21() int64 {
	db := e.DB
	const saudi = 20
	waits := map[int32]int64{}
	e.Par(len(db.Orders), func(t *machine.Thread, olo, ohi int) {
		local := map[int32]int64{}
		for i := olo; i < ohi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "orderstatus"}, i)
			if db.Orders[i].OrderStatus != 0 { // F
				continue
			}
			start := int(db.OrderLineStart[i])
			lines := db.LineitemsOf(i)
			for j := range lines {
				e.Scan(t, "lineitem", []string{"orderkey", "suppkey", "receiptdate", "commitdate"}, start+j)
			}
			// For each late line by a Saudi supplier, require another
			// supplier's line in the order and no other supplier late.
			for j := range lines {
				l := &lines[j]
				if l.ReceiptDate <= l.CommitDate {
					continue
				}
				e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(l.SuppKey))
				if db.Suppliers[l.SuppKey].NationKey != saudi {
					continue
				}
				otherSupp, otherLate := false, false
				for k := range lines {
					if lines[k].SuppKey == l.SuppKey {
						continue
					}
					otherSupp = true
					if lines[k].ReceiptDate > lines[k].CommitDate {
						otherLate = true
						break
					}
				}
				if otherSupp && !otherLate {
					local[l.SuppKey]++
				}
			}
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			waits[k] += v
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for k, v := range waits { //rangecheck:ok commutative wrapping-add checksum
		check += int64(k) + v*7
	}
	return check
}

// Q22: global sales opportunity. Customers from seven country codes with
// above-average positive balances and no orders.
func (e *Engine) q22() int64 {
	db := e.DB
	codes := map[int32]bool{6: true, 7: true, 8: true, 9: true, 18: true, 22: true, 24: true}
	// Average positive balance over customers in the code set.
	var balSum, balN int64
	e.Par(len(db.Customers), func(t *machine.Thread, lo, hi int) {
		var s, n int64
		for i := lo; i < hi; i++ {
			e.Scan(t, "customer", []string{"custkey", "phone", "acctbal"}, i)
			c := &db.Customers[i]
			if codes[c.NationKey] && c.AcctBal > 0 {
				s += c.AcctBal
				n++
			}
		}
		balSum += s
		balN += n
		mergeCharge(t, 2)
	})
	hasOrder := make([]bool, len(db.Customers))
	e.Par(len(db.Orders), func(t *machine.Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "custkey"}, i)
			hasOrder[db.Orders[i].CustKey] = true
		}
	})
	var avg int64
	if balN > 0 {
		avg = balSum / balN
	}
	var count, total int64
	e.Par(len(db.Customers), func(t *machine.Thread, lo, hi int) {
		var c, s int64
		for i := lo; i < hi; i++ {
			e.Scan(t, "customer", []string{"custkey", "phone", "acctbal"}, i)
			cust := &db.Customers[i]
			if codes[cust.NationKey] && cust.AcctBal > avg && !hasOrder[i] {
				c++
				s += cust.AcctBal
			}
		}
		count += c
		total += s
		mergeCharge(t, 2)
	})
	return count + total/100
}
