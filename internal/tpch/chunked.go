package tpch

// Per-node chunked column storage, following the Chapel multi-ddata
// design (SNIPPETS.md §3): every table is split into one chunk per NUMA
// node, each chunk a separate allocation first-touched by a loader
// worker running on that node. Queries then schedule workers onto the
// chunk their node owns (ParTable) and scan whole chunk extents through
// the batched access path (ScanBlocks).
//
// The design's documented pitfall — recomputing the chunk index from the
// element index inside the access hot loop made Chapel's dsiAccess ~8x
// slower — shapes both access paths here: ScanBlocks resolves chunk
// arithmetic once per extent via numaop.ChunkedColumn.Extents, and the
// scalar Scan path amortizes it through a per-thread cursor that caches
// the current chunk's adjusted base addresses.

import (
	"repro/internal/machine"
	"repro/internal/numaop"
)

// StorageOptions selects the engine's storage layout.
type StorageOptions struct {
	// Chunked splits every table into one chunk per NUMA node, loaded in
	// parallel with one first-touching worker per node, instead of the
	// default single region loaded by one thread.
	Chunked bool
}

// NewEngineStorage loads db into m's simulated memory under the given
// profile and storage layout. StorageOptions{} reproduces NewEngine's
// single-region behaviour bit for bit.
func NewEngineStorage(prof Profile, m *machine.Machine, db *DB, opts StorageOptions) *Engine {
	e := &Engine{Prof: prof, M: m, DB: db, tables: map[string]*tableMem{}}
	names, counts := tableOrder(db)
	if opts.Chunked {
		e.chunked = true
		e.cursors = make([]scanCursor, 256)
		e.loadChunked(names, counts)
	} else {
		e.loadSingle(names, counts)
	}
	e.allocTick = make([]uint64, 256)
	e.ring = make([]chunk, 64)
	return e
}

// Chunked reports whether the engine uses per-node chunked storage.
func (e *Engine) Chunked() bool { return e.chunked }

// loadChunked loads every table as one chunk per NUMA node: the layout
// is fixed up front, then one worker per node allocates and page-touches
// its node's chunk of every column (under sparse pinning worker i runs
// on node i, so first touch places chunk i there; under OS-default
// placement the loader threads migrate and the layout decays — the
// sensitivity the numaware experiment measures).
func (e *Engine) loadChunked(names []string, counts map[string]int) {
	m := e.M
	nodes := m.Nodes()
	for _, name := range names {
		rows := counts[name]
		widths := columnWidths[name]
		cols := sortedCols(widths)
		tm := &tableMem{
			rows:     rows,
			colBase:  map[string]uint64{},
			layout:   numaop.NewChunkedColumn(1, rows, nodes),
			colNames: cols,
		}
		if e.Prof.Columnar {
			tm.colChunk = map[string]*numaop.ChunkedColumn{}
			for _, col := range cols {
				w := widths[col]
				tm.rowWidth += w
				tm.colChunk[col] = numaop.NewChunkedColumn(w, rows, nodes)
			}
		} else {
			for _, col := range cols {
				tm.rowWidth += widths[col]
			}
			tm.rowChunk = numaop.NewChunkedColumn(tm.rowWidth, rows, nodes)
		}
		e.tables[name] = tm
	}
	res := m.Run(nodes, func(t *machine.Thread) {
		ci := t.ID()
		for _, name := range names {
			tm := e.tables[name]
			if ci >= tm.layout.Chunks() {
				continue
			}
			lo, hi := tm.layout.ChunkRange(ci)
			if hi == lo {
				continue
			}
			n := hi - lo
			if e.Prof.Columnar {
				for _, col := range tm.colNames {
					cc := tm.colChunk[col]
					base := t.Malloc(cc.ChunkBytes(ci))
					cc.SetBase(ci, base)
					touchPages(t, base, cc.Width, n)
				}
			} else {
				rc := tm.rowChunk
				base := t.Malloc(rc.ChunkBytes(ci))
				rc.SetBase(ci, base)
				touchPages(t, base, rc.Width, n)
			}
		}
	})
	e.loadCycles = res.WallCycles
}

// touchPages first-touches a freshly allocated chunk of n elements of the
// given width, one write per 4KiB page — the same import cost model the
// single-region loader charges.
func touchPages(t *machine.Thread, base, width uint64, n int) {
	step := int(4096 / width)
	if step < 1 {
		step = 1
	}
	t.WriteStrided(base, width, uint64(step)*width, (n+step-1)/step)
}

// scanCursor caches one thread's current chunk window for the scalar
// Scan path: while row i stays within [lo, hi) the access is a plain
// base + i*width, with the chunk division paid once per window switch.
// bases hold the chunk base minus lo*width (wrapping uint64 arithmetic,
// exact on re-add), so the hot path needs no subtraction either.
type scanCursor struct {
	table   string
	lo, hi  int
	rowBase uint64
	bases   map[string]uint64
}

// cursor returns t's scan cursor positioned on the chunk holding row i
// of table, refilling it on a table or chunk switch.
func (e *Engine) cursor(t *machine.Thread, table string, tm *tableMem, i int) *scanCursor {
	cur := &e.cursors[t.ID()&255]
	if cur.table == table && i >= cur.lo && i < cur.hi {
		return cur
	}
	ci := tm.layout.ChunkOf(i)
	lo, hi := tm.layout.ChunkRange(ci)
	cur.table, cur.lo, cur.hi = table, lo, hi
	if e.Prof.Columnar {
		if cur.bases == nil {
			cur.bases = make(map[string]uint64, len(tm.colNames))
		}
		for _, col := range tm.colNames {
			cc := tm.colChunk[col]
			cur.bases[col] = cc.Base(ci) - uint64(lo)*cc.Width
		}
	} else {
		cur.rowBase = tm.rowChunk.Base(ci) - uint64(lo)*tm.rowWidth
	}
	return cur
}

// ParTable runs fn over table's rows split across the engine's workers.
// With single-region storage it is exactly Par(rows, fn). With chunked
// storage the split is affinity-matched: worker w serves chunk w%chunks —
// under sparse pinning the chunk its own node owns — and workers sharing
// a chunk sub-split its row range. When there are fewer workers than
// chunks (e.g. MySQL's single thread) it falls back to the even split.
func (e *Engine) ParTable(table string, fn func(t *machine.Thread, lo, hi int)) machine.Result {
	tm := e.tables[table]
	if !e.chunked {
		return e.Par(tm.rows, fn)
	}
	w := e.Prof.Workers(e.M.Config().Threads)
	if w < 1 {
		w = 1
	}
	c := tm.layout.Chunks()
	res := e.M.Run(w, func(t *machine.Thread) {
		var lo, hi int
		if w < c {
			lo, hi = tm.rows*t.ID()/w, tm.rows*(t.ID()+1)/w
		} else {
			ci := t.ID() % c
			clo, chi := tm.layout.ChunkRange(ci)
			span := chi - clo
			kn := (w - ci + c - 1) / c // workers sharing this chunk
			rank := t.ID() / c
			lo, hi = clo+span*rank/kn, clo+span*(rank+1)/kn
		}
		fn(t, lo, hi)
	})
	e.wall += res.WallCycles
	return res
}

// ScanBlocks scans rows [lo, hi) of table, invoking fn for each row.
// With single-region storage it is exactly the per-row Scan loop the
// queries always ran (scan, row body, scan, row body, ...). With chunked
// storage each chunk extent is read with ONE batched ReadRun per column
// — chunk arithmetic resolved once per extent, per the multi-ddata rule
// — before fn runs over the extent's rows.
func (e *Engine) ScanBlocks(t *machine.Thread, table string, cols []string, lo, hi int, fn func(i int)) {
	if !e.chunked {
		for i := lo; i < hi; i++ {
			e.Scan(t, table, cols, i)
			fn(i)
		}
		return
	}
	tm := e.tables[table]
	for _, ext := range tm.layout.Extents(lo, hi) {
		elo, ehi := ext.Lo, ext.Lo+ext.Count
		if e.Prof.Columnar {
			for _, c := range cols {
				tm.colChunk[c].ReadRange(t, elo, ehi)
			}
		} else {
			tm.rowChunk.ReadRange(t, elo, ehi)
		}
		t.Charge(e.Prof.TupleCycles * float64(ext.Count))
		e.maybeAllocN(t, ext.Count)
		for i := elo; i < ehi; i++ {
			fn(i)
		}
	}
}

// maybeAllocN advances t's bookkeeping-allocation tick by n rows at
// once, issuing exactly the allocations n maybeAlloc calls would — the
// batched counterpart used by ScanBlocks.
func (e *Engine) maybeAllocN(t *machine.Thread, n int) {
	if e.Prof.AllocEvery == 0 || n <= 0 {
		return
	}
	every := uint64(e.Prof.AllocEvery)
	tick := &e.allocTick[t.ID()&255]
	start := *tick
	*tick += uint64(n)
	for v := start + every - start%every; v <= *tick; v += every {
		e.allocOnce(t, v)
	}
}
