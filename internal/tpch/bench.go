package tpch

import "repro/internal/machine"

// Harness runs the W5 workload the way the paper measures it: the engine's
// data is loaded once, the first (cold) execution of each query is
// discarded, and the reported latency is the mean of the following warm
// runs.
type Harness struct {
	Engine *Engine
	// WarmRuns is how many measured executions follow the discarded cold
	// run (the paper uses five).
	WarmRuns int
}

// NewHarness builds a machine from spec, configures it, generates (or
// reuses) a database and loads it into a fresh engine with the default
// single-region storage.
func NewHarness(spec machine.Spec, prof Profile, cfg machine.RunConfig, db *DB, warmRuns int) *Harness {
	return NewHarnessStorage(spec, prof, cfg, db, warmRuns, StorageOptions{})
}

// NewHarnessStorage is NewHarness with an explicit storage layout
// (tpchbench -chunked).
func NewHarnessStorage(spec machine.Spec, prof Profile, cfg machine.RunConfig, db *DB, warmRuns int, opts StorageOptions) *Harness {
	m := machine.New(spec)
	m.Configure(cfg)
	if warmRuns < 1 {
		warmRuns = 1
	}
	return &Harness{Engine: NewEngineStorage(prof, m, db, opts), WarmRuns: warmRuns}
}

// Measure runs query q cold once plus WarmRuns warm executions and returns
// the mean warm wall cycles together with the (validated-identical) result.
func (h *Harness) Measure(q int) (meanWall float64, res QueryResult) {
	res = h.Engine.RunQuery(q) // cold
	var sum float64
	for i := 0; i < h.WarmRuns; i++ {
		r := h.Engine.RunQuery(q)
		if r.Check != res.Check {
			panic("tpch: query result changed between runs")
		}
		sum += r.Wall
	}
	return sum / float64(h.WarmRuns), res
}

// MeasureAll measures every query and returns mean warm wall cycles
// indexed by query number minus one.
func (h *Harness) MeasureAll() ([]float64, []QueryResult) {
	walls := make([]float64, NumQueries)
	results := make([]QueryResult, NumQueries)
	for q := 1; q <= NumQueries; q++ {
		walls[q-1], results[q-1] = h.Measure(q)
	}
	return walls, results
}
