// Package tpch implements the W5 workload: a TPC-H data generator
// (dbgen-lite), all 22 analytical queries as hand-built physical plans, and
// five database-engine profiles (MonetDB, PostgreSQL, MySQL, DBMSx,
// Quickstep) whose architectural differences — storage layout, intra-query
// parallelism, per-tuple interpretation overhead, allocation intensity —
// modulate how much the paper's OS/allocator tuning helps each system
// (Figure 8).
//
// The generator keeps TPC-H's schema, key relationships, value domains and
// predicate selectivities, while representing strings as enums and LIKE
// predicates as generated flags with the spec's selectivity (full text
// columns would only add bytes, not behaviour). Prices use cents as
// integers; dates are days since 1992-01-01.
package tpch

// Date arithmetic: days since 1992-01-01 (the TPC-H calendar start).
const (
	daysPerYear = 365
	// EndDate is 1998-12-31, the end of the TPC-H calendar.
	EndDate = 7 * daysPerYear
)

// MkDate converts a (year, month, day) in the TPC-H calendar to day units
// (months approximated at 30 days plus drift-free year starts; all query
// predicates use the same calendar so selectivities are preserved).
func MkDate(year, month, day int) int {
	return (year-1992)*daysPerYear + (month-1)*30 + (day - 1)
}

// YearOf returns the calendar year of a date.
func YearOf(date int) int { return 1992 + date/daysPerYear }

// Region and nation enums: the fixed TPC-H geography.
var RegionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// NationNames lists the 25 TPC-H nations; index is the nation key.
var NationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
	"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
	"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
	"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

// NationRegion maps nation key -> region key (per the TPC-H spec).
var NationRegion = []int{
	0, 1, 1, 1, 4,
	0, 3, 3, 2, 2,
	4, 4, 2, 4, 0,
	0, 0, 1, 2, 3,
	4, 2, 3, 3, 1,
}

// Market segments (c_mktsegment).
var Segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

// Order priorities (o_orderpriority).
var Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// Ship modes (l_shipmode).
var ShipModes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}

// Ship instructions (l_shipinstruct).
var ShipInstructs = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}

// Return flags (l_returnflag) and line statuses (l_linestatus).
var (
	ReturnFlags  = []string{"A", "N", "R"}
	LineStatuses = []string{"F", "O"}
)

// Part naming domains.
var (
	// Colors appear in p_name; 92 in the spec, the count is what matters
	// for Q9/Q20 selectivity (5 of 92 per part).
	NumColors = 92
	// Brands: "Brand#MN" with M,N in 1..5.
	NumBrands = 25
	// Types: 6 x 5 x 5 combinations ("STANDARD ANODIZED TIN", ...).
	TypeSyllable1 = []string{"ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD"}
	TypeSyllable2 = []string{"ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED"}
	TypeSyllable3 = []string{"BRASS", "COPPER", "NICKEL", "STEEL", "TIN"}
	// Containers: 5 x 8 combinations ("SM CASE", "LG BOX", ...).
	ContainerSize = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	ContainerKind = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
)

// NumTypes and NumContainers are the enum domain sizes.
var (
	NumTypes      = len(TypeSyllable1) * len(TypeSyllable2) * len(TypeSyllable3)
	NumContainers = len(ContainerSize) * len(ContainerKind)
)

// TypeOf builds a type id from syllable indexes.
func TypeOf(s1, s2, s3 int) int {
	return (s1*len(TypeSyllable2)+s2)*len(TypeSyllable3) + s3
}

// TypeSyl1 extracts syllable-1 (used by Q2's "%BRASS" style suffix match
// and Q14's "PROMO%" prefix match).
func TypeSyl1(typeID int) int { return typeID / (len(TypeSyllable2) * len(TypeSyllable3)) }

// TypeSyl3 extracts syllable-3.
func TypeSyl3(typeID int) int { return typeID % len(TypeSyllable3) }

// ContainerOf builds a container id.
func ContainerOf(size, kind int) int { return size*len(ContainerKind) + kind }

// Tables. Columns follow TPC-H names; money is in cents; percentages
// (discount, tax) are in hundredths (e.g. 6 = 0.06).

// Region is one row of REGION.
type Region struct {
	RegionKey int32
}

// Nation is one row of NATION.
type Nation struct {
	NationKey int32
	RegionKey int32
}

// Supplier is one row of SUPPLIER.
type Supplier struct {
	SuppKey   int32
	NationKey int32
	AcctBal   int64 // cents
	// ComplaintFlag models s_comment LIKE '%Customer%Complaints%' (Q16).
	ComplaintFlag bool
	// WaitFlag is unused by queries but kept for schema parity.
}

// Customer is one row of CUSTOMER.
type Customer struct {
	CustKey    int32
	NationKey  int32
	MktSegment int8
	AcctBal    int64 // cents
}

// Part is one row of PART.
type Part struct {
	PartKey     int32
	Brand       int8
	TypeID      int16
	Size        int8
	Container   int8
	RetailPrice int64
	// Colors are the 5 name words drawn from the color domain; Q9 and Q20
	// test membership.
	Colors [5]int8
}

// HasColor reports whether the part's name contains the color id.
func (p *Part) HasColor(c int) bool {
	for _, pc := range p.Colors {
		if int(pc) == c {
			return true
		}
	}
	return false
}

// PartSupp is one row of PARTSUPP.
type PartSupp struct {
	PartKey    int32
	SuppKey    int32
	AvailQty   int32
	SupplyCost int64 // cents
}

// Order is one row of ORDERS.
type Order struct {
	OrderKey      int32
	CustKey       int32
	OrderStatus   int8 // 0=F 1=O 2=P
	TotalPrice    int64
	OrderDate     int32
	OrderPriority int8
	ShipPriority  int8
	// SpecialFlag models o_comment NOT LIKE '%special%requests%' (Q13):
	// true means the comment DOES match (and Q13 excludes it).
	SpecialFlag bool
}

// Lineitem is one row of LINEITEM.
type Lineitem struct {
	OrderKey      int32
	PartKey       int32
	SuppKey       int32
	LineNumber    int8
	Quantity      int32
	ExtendedPrice int64 // cents
	Discount      int8  // hundredths
	Tax           int8  // hundredths
	ReturnFlag    int8
	LineStatus    int8
	ShipDate      int32
	CommitDate    int32
	ReceiptDate   int32
	ShipInstruct  int8
	ShipMode      int8
}

// Revenue returns extendedprice * (1 - discount) in cent-hundredths.
func (l *Lineitem) Revenue() int64 {
	return l.ExtendedPrice * int64(100-l.Discount)
}

// DB is a generated TPC-H database.
type DB struct {
	SF        float64
	Nations   []Nation
	Regions   []Region
	Suppliers []Supplier
	Customers []Customer
	Parts     []Part
	PartSupps []PartSupp
	Orders    []Order
	Lineitems []Lineitem

	// OrderLineIndex maps order position -> [start, end) in Lineitems
	// (lineitems are generated clustered by order, as dbgen emits them).
	OrderLineStart []int32
}

// LineitemsOf returns the lineitem range of the order at position i.
func (db *DB) LineitemsOf(i int) []Lineitem {
	start := db.OrderLineStart[i]
	end := int32(len(db.Lineitems))
	if i+1 < len(db.OrderLineStart) {
		end = db.OrderLineStart[i+1]
	}
	return db.Lineitems[start:end]
}
