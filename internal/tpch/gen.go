package tpch

import (
	"repro/internal/memo"
	"repro/internal/xrand"
)

// Base cardinalities at scale factor 1, per the TPC-H specification.
const (
	suppliersPerSF = 10_000
	customersPerSF = 150_000
	partsPerSF     = 200_000
	ordersPerSF    = 1_500_000
	suppsPerPart   = 4
)

// Generate builds a TPC-H database at the given scale factor,
// deterministically in the seed. Cardinality ratios, key relationships,
// value domains and the selectivities behind every query predicate follow
// the spec; free-text columns are represented by the flags and enums the
// queries actually test.
func Generate(sf float64, seed uint64) *DB {
	r := xrand.New(seed)
	db := &DB{SF: sf}

	db.Regions = make([]Region, len(RegionNames))
	for i := range db.Regions {
		db.Regions[i] = Region{RegionKey: int32(i)}
	}
	db.Nations = make([]Nation, len(NationNames))
	for i := range db.Nations {
		db.Nations[i] = Nation{NationKey: int32(i), RegionKey: int32(NationRegion[i])}
	}

	nSupp := scaled(suppliersPerSF, sf)
	db.Suppliers = make([]Supplier, nSupp)
	for i := range db.Suppliers {
		db.Suppliers[i] = Supplier{
			SuppKey:   int32(i),
			NationKey: int32(r.Intn(len(NationNames))),
			AcctBal:   int64(r.Intn(1_100_000)) - 100_000, // -999.99 .. 9999.99
			// s_comment LIKE '%Customer%Complaints%': ~5 per 10k suppliers.
			ComplaintFlag: r.Bernoulli(0.0005),
		}
	}

	nCust := scaled(customersPerSF, sf)
	db.Customers = make([]Customer, nCust)
	for i := range db.Customers {
		db.Customers[i] = Customer{
			CustKey:    int32(i),
			NationKey:  int32(r.Intn(len(NationNames))),
			MktSegment: int8(r.Intn(len(Segments))),
			AcctBal:    int64(r.Intn(1_100_000)) - 100_000,
		}
	}

	nPart := scaled(partsPerSF, sf)
	db.Parts = make([]Part, nPart)
	for i := range db.Parts {
		p := Part{
			PartKey:     int32(i),
			Brand:       int8(r.Intn(NumBrands)),
			TypeID:      int16(r.Intn(NumTypes)),
			Size:        int8(1 + r.Intn(50)),
			Container:   int8(r.Intn(NumContainers)),
			RetailPrice: int64(90_000 + r.Intn(120_000)),
		}
		for c := range p.Colors {
			p.Colors[c] = int8(r.Intn(NumColors))
		}
		db.Parts[i] = p
	}

	db.PartSupps = make([]PartSupp, 0, nPart*suppsPerPart)
	for i := 0; i < nPart; i++ {
		for j := 0; j < suppsPerPart; j++ {
			db.PartSupps = append(db.PartSupps, PartSupp{
				PartKey:    int32(i),
				SuppKey:    int32((i + j*(nSupp/suppsPerPart+1)) % nSupp),
				AvailQty:   int32(1 + r.Intn(9999)),
				SupplyCost: int64(100 + r.Intn(99_900)),
			})
		}
	}

	nOrders := scaled(ordersPerSF, sf)
	db.Orders = make([]Order, nOrders)
	db.OrderLineStart = make([]int32, nOrders)
	db.Lineitems = make([]Lineitem, 0, nOrders*4)
	for i := range db.Orders {
		orderDate := int32(r.Intn(EndDate - 151)) // room for ship/receipt
		o := Order{
			OrderKey:      int32(i),
			CustKey:       int32(r.Intn(nCust)),
			OrderDate:     orderDate,
			OrderPriority: int8(r.Intn(len(Priorities))),
			ShipPriority:  0,
			SpecialFlag:   r.Bernoulli(0.01), // '%special%requests%'
		}
		db.OrderLineStart[i] = int32(len(db.Lineitems))
		lines := 1 + r.Intn(7)
		var total int64
		allF := true
		for ln := 0; ln < lines; ln++ {
			qty := int32(1 + r.Intn(50))
			price := int64(90_000+r.Intn(120_000)) * int64(qty) / 10
			ship := orderDate + int32(1+r.Intn(121))
			l := Lineitem{
				OrderKey:      o.OrderKey,
				PartKey:       int32(r.Intn(nPart)),
				SuppKey:       int32(r.Intn(nSupp)),
				LineNumber:    int8(ln),
				Quantity:      qty,
				ExtendedPrice: price,
				Discount:      int8(r.Intn(11)), // 0.00 .. 0.10
				Tax:           int8(r.Intn(9)),  // 0.00 .. 0.08
				ShipDate:      ship,
				CommitDate:    orderDate + int32(30+r.Intn(61)),
				ReceiptDate:   ship + int32(1+r.Intn(30)),
				ShipInstruct:  int8(r.Intn(len(ShipInstructs))),
				ShipMode:      int8(r.Intn(len(ShipModes))),
			}
			// Return flag/status per spec: shipped long ago -> returned or
			// not (A/R), recent -> none (N); status F if shipped before
			// 1995-06-17.
			if int(l.ReceiptDate) <= MkDate(1995, 6, 17) {
				if r.Bernoulli(0.5) {
					l.ReturnFlag = 0 // A
				} else {
					l.ReturnFlag = 2 // R
				}
			} else {
				l.ReturnFlag = 1 // N
			}
			if int(l.ShipDate) <= MkDate(1995, 6, 17) {
				l.LineStatus = 0 // F
			} else {
				l.LineStatus = 1 // O
				allF = false
			}
			total += l.ExtendedPrice * int64(100-l.Discount) * int64(100+l.Tax) / 10_000
			db.Lineitems = append(db.Lineitems, l)
		}
		o.TotalPrice = total
		if allF {
			o.OrderStatus = 0
		} else {
			o.OrderStatus = 1
		}
		db.Orders[i] = o
	}
	return db
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 8 {
		n = 8
	}
	return n
}

// genKey identifies one generated database: TPC-H datasets are
// deterministic in (sf, seed) and read-only once loaded, so identical
// requests can share a single build.
type genKey struct {
	sf   float64
	seed uint64
}

var genCache memo.Table[genKey, *DB]

// GenerateCached is Generate memoized on (sf, seed): the experiment
// drivers ask for the same database once per grid cell, and concurrent
// cells on the grid runner's worker pool share one build instead of each
// regenerating it. The returned DB is shared and must be treated as
// immutable (the engines only read it).
func GenerateCached(sf float64, seed uint64) *DB {
	return genCache.Get(genKey{sf, seed}, func() *DB { return Generate(sf, seed) })
}

// ResetGenCache drops every cached database.
func ResetGenCache() { genCache.Reset() }

// GenCacheStats reports hits and misses of the database cache, so long
// runs can show databases are shared rather than regenerated per cell.
func GenCacheStats() (hits, misses uint64) { return genCache.Stats() }
