package tpch

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/vmm"
)

const testSF = 0.002

func testDB(t *testing.T) *DB {
	t.Helper()
	return Generate(testSF, 42)
}

func testCfg() machine.RunConfig {
	return machine.RunConfig{
		Threads:   8,
		Placement: machine.PlaceSparse,
		Policy:    vmm.Interleave,
		Allocator: "tbbmalloc",
		AutoNUMA:  false,
		THP:       false,
		Seed:      5,
	}
}

func newTestEngine(t *testing.T, prof Profile, db *DB) *Engine {
	t.Helper()
	m := machine.NewB()
	m.Configure(testCfg())
	return NewEngine(prof, m, db)
}

func TestGeneratorShape(t *testing.T) {
	db := testDB(t)
	if len(db.Nations) != 25 || len(db.Regions) != 5 {
		t.Fatal("geography tables must be fixed size")
	}
	if len(db.PartSupps) != len(db.Parts)*4 {
		t.Fatalf("partsupp = %d, want 4 per part", len(db.PartSupps))
	}
	if len(db.Lineitems) < len(db.Orders) {
		t.Fatal("at least one lineitem per order")
	}
	// Cardinality ratios follow the spec: 15 customers per supplier.
	if got := float64(len(db.Customers)) / float64(len(db.Suppliers)); got < 10 || got > 20 {
		t.Errorf("customer:supplier ratio = %v, want about 15", got)
	}
	// Referential integrity.
	for _, o := range db.Orders {
		if int(o.CustKey) >= len(db.Customers) {
			t.Fatal("dangling custkey")
		}
	}
	for i, l := range db.Lineitems {
		if int(l.OrderKey) >= len(db.Orders) || int(l.PartKey) >= len(db.Parts) || int(l.SuppKey) >= len(db.Suppliers) {
			t.Fatalf("lineitem %d dangles", i)
		}
		if l.ShipDate <= db.Orders[l.OrderKey].OrderDate {
			t.Fatalf("lineitem %d shipped before its order", i)
		}
		if l.ReceiptDate <= l.ShipDate {
			t.Fatalf("lineitem %d received before shipping", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := Generate(testSF, 7), Generate(testSF, 7)
	if len(a.Lineitems) != len(b.Lineitems) {
		t.Fatal("sizes differ")
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
}

func TestLineitemsOf(t *testing.T) {
	db := testDB(t)
	total := 0
	for i := range db.Orders {
		lines := db.LineitemsOf(i)
		if len(lines) < 1 || len(lines) > 7 {
			t.Fatalf("order %d has %d lines", i, len(lines))
		}
		for _, l := range lines {
			if l.OrderKey != db.Orders[i].OrderKey {
				t.Fatalf("order %d owns a foreign lineitem", i)
			}
		}
		total += len(lines)
	}
	if total != len(db.Lineitems) {
		t.Fatalf("clustered ranges cover %d of %d lineitems", total, len(db.Lineitems))
	}
}

func TestAllQueriesRunAndReturnWork(t *testing.T) {
	db := testDB(t)
	e := newTestEngine(t, ProfileByName("Quickstep"), db)
	for q := 1; q <= NumQueries; q++ {
		res := e.RunQuery(q)
		if res.Wall <= 0 {
			t.Errorf("Q%d charged no time", q)
		}
	}
}

func TestChecksumsEngineInvariant(t *testing.T) {
	// The same database must yield identical answers on every engine
	// profile — layout and parallelism change cost, never results.
	db := testDB(t)
	var base []int64
	for _, prof := range Profiles() {
		e := newTestEngine(t, prof, db)
		var checks []int64
		for q := 1; q <= NumQueries; q++ {
			checks = append(checks, e.RunQuery(q).Check)
		}
		if base == nil {
			base = checks
			continue
		}
		for q := 0; q < NumQueries; q++ {
			if checks[q] != base[q] {
				t.Errorf("%s Q%d check = %d, others got %d", prof.Name, q+1, checks[q], base[q])
			}
		}
	}
}

func TestChecksumsConfigInvariant(t *testing.T) {
	db := testDB(t)
	run := func(cfg machine.RunConfig) []int64 {
		m := machine.NewB()
		m.Configure(cfg)
		e := NewEngine(ProfileByName("MonetDB"), m, db)
		var checks []int64
		for q := 1; q <= NumQueries; q++ {
			checks = append(checks, e.RunQuery(q).Check)
		}
		return checks
	}
	tuned := run(testCfg())
	def := run(machine.DefaultConfig(8))
	for q := 0; q < NumQueries; q++ {
		if tuned[q] != def[q] {
			t.Errorf("Q%d result differs between configs: %d vs %d", q+1, tuned[q], def[q])
		}
	}
}

func TestSelectivitySanity(t *testing.T) {
	db := testDB(t)
	e := newTestEngine(t, ProfileByName("Quickstep"), db)
	// Q1 covers ~98% of lineitem: its checksum includes the row count, so
	// it must be large and positive.
	if c := e.RunQuery(1).Check; c <= int64(len(db.Lineitems)) {
		t.Errorf("Q1 checksum %d implausibly small", c)
	}
	// Q6: a narrow conjunctive filter must select something but far from
	// everything. Reconstruct the reference directly.
	var want int64
	lo, hi := int32(MkDate(1994, 1, 1)), int32(MkDate(1995, 1, 1))
	n := 0
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if l.ShipDate >= lo && l.ShipDate < hi && l.Discount >= 5 && l.Discount <= 7 && l.Quantity < 24 {
			want += l.ExtendedPrice * int64(l.Discount)
			n++
		}
	}
	if got := e.RunQuery(6).Check; got != want/100 {
		t.Errorf("Q6 = %d, reference %d", got, want/100)
	}
	if n == 0 || n > len(db.Lineitems)/5 {
		t.Errorf("Q6 selected %d of %d rows; selectivity off", n, len(db.Lineitems))
	}
	// Q13 counts every customer exactly once: checksum >= customer count.
	if c := e.RunQuery(13).Check; c < int64(len(db.Customers)) {
		t.Errorf("Q13 checksum %d below customer count", c)
	}
}

func TestReferenceQ12(t *testing.T) {
	db := testDB(t)
	e := newTestEngine(t, ProfileByName("MySQL"), db)
	var hm, lm, hs, ls int64
	lo, hi := int32(MkDate(1994, 1, 1)), int32(MkDate(1995, 1, 1))
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if (l.ShipMode != 2 && l.ShipMode != 5) || l.ReceiptDate < lo || l.ReceiptDate >= hi ||
			l.CommitDate >= l.ReceiptDate || l.ShipDate >= l.CommitDate {
			continue
		}
		high := db.Orders[l.OrderKey].OrderPriority <= 1
		switch {
		case l.ShipMode == 2 && high:
			hm++
		case l.ShipMode == 2:
			lm++
		case high:
			hs++
		default:
			ls++
		}
	}
	want := hm*1000 + lm*100 + hs*10 + ls
	if got := e.RunQuery(12).Check; got != want {
		t.Errorf("Q12 = %d, reference %d", got, want)
	}
}

func TestParallelEnginesFasterThanMySQL(t *testing.T) {
	db := testDB(t)
	my := newTestEngine(t, ProfileByName("MySQL"), db)
	monet := newTestEngine(t, ProfileByName("MonetDB"), db)
	myWall := my.RunQuery(1).Wall
	moWall := monet.RunQuery(1).Wall
	if moWall >= myWall {
		t.Errorf("MonetDB Q1 (%v) should beat single-threaded MySQL (%v)", moWall, myWall)
	}
}

func TestHarnessWarmRuns(t *testing.T) {
	db := testDB(t)
	h := NewHarness(machine.SpecB(), ProfileByName("Quickstep"), testCfg(), db, 2)
	wall, res := h.Measure(6)
	if wall <= 0 || res.Check == 0 {
		t.Fatalf("harness measure: wall=%v check=%d", wall, res.Check)
	}
}

func TestDateHelpers(t *testing.T) {
	if YearOf(MkDate(1995, 6, 17)) != 1995 {
		t.Error("YearOf(MkDate(1995,...)) != 1995")
	}
	if MkDate(1992, 1, 1) != 0 {
		t.Error("calendar must start at 1992-01-01")
	}
	if MkDate(1994, 1, 1) <= MkDate(1993, 12, 1) {
		t.Error("dates must be monotone")
	}
}

func TestTypeHelpers(t *testing.T) {
	id := TypeOf(0, 0, 3) // ECONOMY ANODIZED STEEL
	if TypeSyl1(id) != 0 || TypeSyl2of(id) != 0 || TypeSyl3(id) != 3 {
		t.Errorf("type round-trip broken for id %d", id)
	}
	if NumTypes != 150 {
		t.Errorf("NumTypes = %d, want 150", NumTypes)
	}
	if NumContainers != 40 {
		t.Errorf("NumContainers = %d, want 40", NumContainers)
	}
}

func TestProfileByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProfileByName("SQLite")
}

func newChunkedTestEngine(t *testing.T, prof Profile, db *DB) *Engine {
	t.Helper()
	m := machine.NewB()
	cfg := testCfg()
	cfg.Policy = vmm.FirstTouch // chunked placement relies on first touch
	m.Configure(cfg)
	return NewEngineStorage(prof, m, db, StorageOptions{Chunked: true})
}

func TestChunkedStorageChecksumInvariant(t *testing.T) {
	// Chunked per-node storage changes cost, never answers: every query's
	// checksum must match the single-region engine on a columnar and a
	// row-store profile.
	db := testDB(t)
	for _, name := range []string{"Quickstep", "MySQL"} {
		prof := ProfileByName(name)
		single := newTestEngine(t, prof, db)
		chunked := newChunkedTestEngine(t, prof, db)
		if !chunked.Chunked() || single.Chunked() {
			t.Fatal("storage mode flags wrong")
		}
		for q := 1; q <= NumQueries; q++ {
			sc := single.RunQuery(q).Check
			cc := chunked.RunQuery(q).Check
			if sc != cc {
				t.Errorf("%s Q%d: chunked check %d != single %d", name, q, cc, sc)
			}
		}
	}
}

func TestChunkedStorageDeterministic(t *testing.T) {
	db := testDB(t)
	run := func() []QueryResult {
		e := newChunkedTestEngine(t, ProfileByName("Quickstep"), db)
		var out []QueryResult
		for q := 1; q <= NumQueries; q++ {
			out = append(out, e.RunQuery(q))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("Q%d not deterministic: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}

func TestChunkedLoadIsParallelAcrossNodes(t *testing.T) {
	// The chunked loader runs one first-touching worker per node, so its
	// load phase should beat the single-threaded restore on a machine
	// where the database spans several chunks.
	db := testDB(t)
	prof := ProfileByName("Quickstep")
	single := newTestEngine(t, prof, db)
	chunked := newChunkedTestEngine(t, prof, db)
	if chunked.LoadCycles() >= single.LoadCycles() {
		t.Errorf("chunked load (%v cycles) should beat single-threaded load (%v cycles)",
			chunked.LoadCycles(), single.LoadCycles())
	}
}

func TestScanBlocksSingleModeIsScanLoop(t *testing.T) {
	// In single-region mode ScanBlocks must be bit-identical to the
	// per-row Scan loop the queries always ran — same cycles, same
	// allocator state — so converting queries to it cannot shift the
	// default path.
	db := testDB(t)
	prof := ProfileByName("Quickstep")
	cols := []string{"shipdate", "discount"}
	n := len(db.Lineitems)

	loop := newTestEngine(t, prof, db)
	loop.M.ResetCounters()
	rLoop := loop.M.Run(4, func(th *machine.Thread) {
		lo, hi := n*th.ID()/4, n*(th.ID()+1)/4
		for i := lo; i < hi; i++ {
			loop.Scan(th, "lineitem", cols, i)
		}
	})

	blocks := newTestEngine(t, prof, db)
	blocks.M.ResetCounters()
	rBlocks := blocks.M.Run(4, func(th *machine.Thread) {
		lo, hi := n*th.ID()/4, n*(th.ID()+1)/4
		blocks.ScanBlocks(th, "lineitem", cols, lo, hi, func(int) {})
	})

	if rLoop.WallCycles != rBlocks.WallCycles {
		t.Errorf("single-mode ScanBlocks cycles %v != Scan loop cycles %v",
			rBlocks.WallCycles, rLoop.WallCycles)
	}
	if rLoop.Counters != rBlocks.Counters {
		t.Errorf("single-mode ScanBlocks counters diverge from Scan loop:\n%+v\nvs\n%+v",
			rBlocks.Counters, rLoop.Counters)
	}
}
