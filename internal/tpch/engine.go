package tpch

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/numaop"
)

// Profile captures the architectural axes on which the five evaluated
// database systems differ. These are the properties that modulate how much
// the paper's application-agnostic tuning helps each engine in Figure 8.
type Profile struct {
	Name string
	// Columnar engines read only the referenced columns; row stores drag
	// the whole tuple through the cache hierarchy.
	Columnar bool
	// Workers returns the intra-query parallelism given the machine's
	// hardware threads. MySQL executes a query on one thread; PostgreSQL
	// caps its background workers; the in-memory engines use everything.
	Workers func(hwThreads int) int
	// TupleCycles is the per-tuple interpretation overhead (vectorized
	// engines amortize it; classic Volcano iterators pay per row).
	TupleCycles float64
	// AllocEvery issues one small bookkeeping allocation per N scanned
	// tuples (expression state, tuple copies); lower = more
	// allocator-sensitive. Zero disables.
	AllocEvery int
	// Materializes marks operator-at-a-time engines (MonetDB) that write
	// full intermediate results between operators.
	Materializes bool
}

// Profiles returns the five evaluated systems in the paper's order.
func Profiles() []Profile {
	return []Profile{
		{
			Name:     "MonetDB",
			Columnar: true,
			Workers:  func(hw int) int { return hw },
			// BAT-at-a-time execution: tiny per-tuple cost, but full
			// materialization between operators and lots of intermediate
			// buffer churn.
			TupleCycles:  6,
			AllocEvery:   6,
			Materializes: true,
		},
		{
			Name:     "PostgreSQL",
			Columnar: false,
			// Rigid parallel-worker planning: a few background workers at
			// best, and some plans run on the leader alone (the paper
			// blames exactly this for PostgreSQL's inconsistent gains).
			Workers:     func(hw int) int { return min(4, hw) },
			TupleCycles: 34,
			AllocEvery:  24,
		},
		{
			Name:        "MySQL",
			Columnar:    false,
			Workers:     func(hw int) int { return 1 },
			TupleCycles: 42,
			AllocEvery:  32,
		},
		{
			Name:        "DBMSx",
			Columnar:    true, // hybrid row/column store with columnar scans
			Workers:     func(hw int) int { return hw },
			TupleCycles: 10,
			AllocEvery:  16,
		},
		{
			Name:        "Quickstep",
			Columnar:    true,
			Workers:     func(hw int) int { return hw },
			TupleCycles: 8,
			AllocEvery:  96, // block-managed storage, few small allocations
		},
	}
}

// ProfileByName returns the named profile, panicking on unknown names.
func ProfileByName(name string) Profile {
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	panic("tpch: unknown engine " + name)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Column widths (bytes) for the scan cost model, by table and column.
var columnWidths = map[string]map[string]uint64{
	"lineitem": {
		"orderkey": 4, "partkey": 4, "suppkey": 4, "linenumber": 1,
		"quantity": 4, "extendedprice": 8, "discount": 1, "tax": 1,
		"returnflag": 1, "linestatus": 1, "shipdate": 4, "commitdate": 4,
		"receiptdate": 4, "shipinstruct": 1, "shipmode": 1,
	},
	"orders": {
		"orderkey": 4, "custkey": 4, "orderstatus": 1, "totalprice": 8,
		"orderdate": 4, "orderpriority": 1, "shippriority": 1, "comment": 8,
	},
	"customer": {
		"custkey": 4, "nationkey": 4, "mktsegment": 1, "acctbal": 8, "phone": 8,
	},
	"part": {
		"partkey": 4, "brand": 1, "type": 2, "size": 1, "container": 1,
		"retailprice": 8, "name": 16,
	},
	"partsupp": {
		"partkey": 4, "suppkey": 4, "availqty": 4, "supplycost": 8,
	},
	"supplier": {
		"suppkey": 4, "nationkey": 4, "acctbal": 8, "comment": 8,
	},
}

// tableMem is a table's simulated storage image: either one contiguous
// region per column/row layout (the default, matching the paper's
// engines) or per-node chunks (chunked.go).
type tableMem struct {
	rows     int
	rowWidth uint64
	rowBase  uint64            // row layout base (row stores)
	colBase  map[string]uint64 // per-column bases (column stores)

	// Chunked storage (nil in single-region mode). layout carries the
	// shared row->chunk geometry; every column of a table splits at the
	// same rows, so one layout serves them all.
	layout   *numaop.ChunkedColumn
	colChunk map[string]*numaop.ChunkedColumn
	rowChunk *numaop.ChunkedColumn
	colNames []string // sorted, for deterministic cursor refills
}

// Engine executes TPC-H queries on a machine under a profile.
type Engine struct {
	Prof Profile
	M    *machine.Machine
	DB   *DB

	tables     map[string]*tableMem
	allocTick  []uint64 // per-thread bookkeeping allocation counters
	ring       []chunk  // engine-wide intermediate buffers in flight
	ringPos    int
	loadCycles float64
	wall       float64 // accumulated wall cycles of the running query

	chunked bool         // per-node chunked storage (chunked.go)
	cursors []scanCursor // per-thread chunk cursors for scalar Scan
}

// chunk is one in-flight intermediate buffer.
type chunk struct {
	addr uint64
	size uint64
}

// NewEngine loads db into m's simulated memory under the given profile,
// with the default single-region storage. See NewEngineStorage for the
// per-node chunked layout.
func NewEngine(prof Profile, m *machine.Machine, db *DB) *Engine {
	return NewEngineStorage(prof, m, db, StorageOptions{})
}

// tableOrder returns the table names and row counts in sorted order:
// map iteration order would vary the allocation sequence run to run,
// perturbing simulated addresses and breaking bit-for-bit
// reproducibility.
func tableOrder(db *DB) (names []string, counts map[string]int) {
	counts = map[string]int{
		"lineitem": len(db.Lineitems),
		"orders":   len(db.Orders),
		"customer": len(db.Customers),
		"part":     len(db.Parts),
		"partsupp": len(db.PartSupps),
		"supplier": len(db.Suppliers),
	}
	names = make([]string, 0, len(counts))
	for name := range counts { //rangecheck:ok sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	return names, counts
}

// sortedCols returns a table's column names in sorted order (same
// map-order rationale as tableOrder).
func sortedCols(widths map[string]uint64) []string {
	cols := make([]string, 0, len(widths))
	for col := range widths { //rangecheck:ok sorted immediately below
		cols = append(cols, col)
	}
	sort.Strings(cols)
	return cols
}

// loadSingle loads the database as one contiguous region per column (or
// per row layout). Loading is single-threaded (a restore/import), so
// First Touch places the database on the loader's node — the starting
// point of the paper's placement story.
func (e *Engine) loadSingle(names []string, counts map[string]int) {
	m := e.M
	res := m.Run(1, func(t *machine.Thread) {
		for _, name := range names {
			rows := counts[name]
			widths := columnWidths[name]
			cols := sortedCols(widths)
			tm := &tableMem{rows: rows, colBase: map[string]uint64{}}
			for _, col := range cols {
				w := widths[col]
				tm.rowWidth += w
				if e.Prof.Columnar {
					base := t.Malloc(uint64(rows) * w)
					tm.colBase[col] = base
					step := int(4096 / w) // touch each page
					t.WriteStrided(base, w, uint64(step)*w, (rows+step-1)/step)
				}
			}
			if !e.Prof.Columnar {
				tm.rowBase = t.Malloc(uint64(rows) * tm.rowWidth)
				step := int(4096 / tm.rowWidth)
				if step < 1 {
					step = 1
				}
				t.WriteStrided(tm.rowBase, tm.rowWidth,
					uint64(step)*tm.rowWidth, (rows+step-1)/step)
			}
			e.tables[name] = tm
		}
	})
	e.loadCycles = res.WallCycles
}

// Scan charges one row's worth of reads for the given columns, plus the
// engine's per-tuple interpretation cost and occasional bookkeeping
// allocations. With chunked storage, point addressing goes through a
// per-thread cursor (chunked.go) so chunk-index arithmetic amortizes over
// the cursor's chunk window instead of recurring per element.
func (e *Engine) Scan(t *machine.Thread, table string, cols []string, i int) {
	tm := e.tables[table]
	if e.chunked {
		cur := e.cursor(t, table, tm, i)
		if e.Prof.Columnar {
			widths := columnWidths[table]
			for _, c := range cols {
				w := widths[c]
				t.Read(cur.bases[c]+uint64(i)*w, w)
			}
		} else {
			t.Read(cur.rowBase+uint64(i)*tm.rowWidth, tm.rowWidth)
		}
	} else if e.Prof.Columnar {
		widths := columnWidths[table]
		for _, c := range cols {
			w := widths[c]
			t.Read(tm.colBase[c]+uint64(i)*w, w)
		}
	} else {
		t.Read(tm.rowBase+uint64(i)*tm.rowWidth, tm.rowWidth)
	}
	t.Charge(e.Prof.TupleCycles)
	e.maybeAlloc(t)
}

// maybeAlloc issues the engine's bookkeeping allocation churn.
func (e *Engine) maybeAlloc(t *machine.Thread) {
	if e.Prof.AllocEvery == 0 {
		return
	}
	tick := &e.allocTick[t.ID()&255]
	*tick++
	if *tick%uint64(e.Prof.AllocEvery) == 0 {
		e.allocOnce(t, *tick)
	}
}

// allocOnce is one bookkeeping allocation at tick value tickVal: a
// vectorized intermediate buffer. Buffers flow between workers (exchange
// operators), so the thread freeing a buffer is rarely the one that
// allocated it — the cross-thread pattern that separates tbbmalloc from
// thread-cache designs at high parallelism.
func (e *Engine) allocOnce(t *machine.Thread, tickVal uint64) {
	size := uint64(512 << (tickVal % 3)) // 512B / 1KiB / 2KiB
	addr := t.Malloc(size)
	t.Write(addr, size)
	old := e.ring[e.ringPos]
	e.ring[e.ringPos] = chunk{addr: addr, size: size}
	e.ringPos = (e.ringPos + 1) % len(e.ring)
	if old.size > 0 {
		t.Free(old.addr, old.size)
	}
}

// Emit charges intermediate materialization for operator-at-a-time
// engines: the qualifying tuple is written to (and later re-read from) an
// intermediate buffer.
func (e *Engine) Emit(t *machine.Thread, buf *interBuf, width uint64) {
	if !e.Prof.Materializes {
		return
	}
	buf.push(t, width)
}

// interBuf models a materialized intermediate result: grows by doubling
// through the allocator, is re-read once, and freed.
type interBuf struct {
	addr uint64
	used uint64
	cap  uint64
}

func (b *interBuf) push(t *machine.Thread, width uint64) {
	if b.used+width > b.cap {
		newCap := b.cap * 2
		if newCap < 4096 {
			newCap = 4096
		}
		na := t.Malloc(newCap)
		if b.used > 0 {
			t.Read(b.addr, b.used)
			t.Write(na, b.used)
			t.Free(b.addr, b.cap)
		}
		b.addr, b.cap = na, newCap
	}
	t.Write(b.addr+b.used, width)
	b.used += width
}

// release re-reads the buffer (the downstream operator consuming it) and
// frees it.
func (b *interBuf) release(t *machine.Thread) {
	if b.cap == 0 {
		return
	}
	t.Read(b.addr, b.used)
	t.Free(b.addr, b.cap)
	b.addr, b.used, b.cap = 0, 0, 0
}

// Par runs fn over [0, n) split across the engine's workers, adds the
// phase's wall time to the current query's total, and returns the run
// result.
func (e *Engine) Par(n int, fn func(t *machine.Thread, lo, hi int)) machine.Result {
	w := e.Prof.Workers(e.M.Config().Threads)
	if w < 1 {
		w = 1
	}
	res := e.M.Run(w, func(t *machine.Thread) {
		lo := n * t.ID() / w
		hi := n * (t.ID() + 1) / w
		fn(t, lo, hi)
	})
	e.wall += res.WallCycles
	return res
}

// Serial runs fn on one thread (plan steps with no parallelism), counting
// its wall time toward the current query.
func (e *Engine) Serial(fn func(t *machine.Thread)) machine.Result {
	res := e.M.Run(1, fn)
	e.wall += res.WallCycles
	return res
}

// LoadCycles returns the (untimed) load-phase cost, for diagnostics.
func (e *Engine) LoadCycles() float64 { return e.loadCycles }
