package tpch

import (
	"sort"

	"repro/internal/hashtable"
	"repro/internal/machine"
)

// QueryResult is one query execution: simulated wall cycles plus an
// integer checksum of the query's answer. Checksums are commutative sums,
// so they are identical across engines, thread counts and configurations —
// tests rely on that to validate the plans.
type QueryResult struct {
	Query int
	Wall  float64
	Check int64
}

// NumQueries is the TPC-H query count.
const NumQueries = 22

// RunQuery executes TPC-H query q (1-22) and returns its result.
func (e *Engine) RunQuery(q int) QueryResult {
	e.M.ResetCounters()
	e.wall = 0
	fns := [NumQueries]func() int64{
		e.q1, e.q2, e.q3, e.q4, e.q5, e.q6, e.q7, e.q8, e.q9, e.q10,
		e.q11, e.q12, e.q13, e.q14, e.q15, e.q16, e.q17, e.q18, e.q19,
		e.q20, e.q21, e.q22,
	}
	if q < 1 || q > NumQueries {
		panic("tpch: query number out of range")
	}
	check := fns[q-1]()
	return QueryResult{Query: q, Wall: e.wall, Check: check}
}

// mergeCharge charges the cost of merging a per-thread partial result of n
// entries into the shared result (latch + copy).
func mergeCharge(t *machine.Thread, n int) { t.Charge(30 + 4*float64(n)) }

// Q1: pricing summary report. Full lineitem scan, six (returnflag,
// linestatus) groups, five aggregates each.
func (e *Engine) q1() int64 {
	db := e.DB
	cutoff := int32(MkDate(1998, 9, 2))
	cols := []string{"shipdate", "returnflag", "linestatus", "quantity", "extendedprice", "discount", "tax"}
	type agg struct{ qty, price, disc, charge, count int64 }
	var global [6]agg
	e.ParTable("lineitem", func(t *machine.Thread, lo, hi int) {
		var local [6]agg
		var inter interBuf
		e.ScanBlocks(t, "lineitem", cols, lo, hi, func(i int) {
			l := &db.Lineitems[i]
			if l.ShipDate > cutoff {
				return
			}
			g := &local[l.ReturnFlag*2+l.LineStatus]
			g.qty += int64(l.Quantity)
			g.price += l.ExtendedPrice
			g.disc += l.Revenue()
			g.charge += l.Revenue() * int64(100+l.Tax)
			g.count++
			e.Emit(t, &inter, 24)
		})
		inter.release(t)
		for i := range global {
			global[i].qty += local[i].qty
			global[i].price += local[i].price
			global[i].disc += local[i].disc
			global[i].charge += local[i].charge
			global[i].count += local[i].count
		}
		mergeCharge(t, 6)
	})
	var check int64
	for _, g := range global {
		check += g.qty + g.price/100 + g.disc/10000 + g.charge/1000000 + g.count
	}
	return check
}

// Q2: minimum-cost supplier. Parts of a size/type in a region, minimum
// supply cost over partsupp x supplier x nation x region.
func (e *Engine) q2() int64 {
	db := e.DB
	const size, region = 15, 3 // EUROPE
	wantSyl3 := 4              // TIN suffix match "%TIN"
	partCols := []string{"partkey", "size", "type"}
	var table *hashtable.Table
	e.Serial(func(t *machine.Thread) { table = hashtable.New(t, len(db.Parts)/16+16) })
	e.Par(len(db.Parts), func(t *machine.Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Scan(t, "part", partCols, i)
			p := &db.Parts[i]
			if int(p.Size) == size && TypeSyl3(int(p.TypeID)) == wantSyl3 {
				table.Put(t, uint64(p.PartKey), uint32(i))
			}
		}
	})
	minCost := map[uint64]int64{}
	psCols := []string{"partkey", "suppkey", "supplycost"}
	e.Par(len(db.PartSupps), func(t *machine.Thread, lo, hi int) {
		local := map[uint64]int64{}
		for i := lo; i < hi; i++ {
			e.Scan(t, "partsupp", psCols, i)
			ps := &db.PartSupps[i]
			if _, ok := table.Get(t, uint64(ps.PartKey)); !ok {
				continue
			}
			e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(ps.SuppKey))
			s := &db.Suppliers[ps.SuppKey]
			if NationRegion[s.NationKey] != region {
				continue
			}
			k := uint64(ps.PartKey)
			if c, ok := local[k]; !ok || ps.SupplyCost < c {
				local[k] = ps.SupplyCost
			}
		}
		for k, v := range local { //rangecheck:ok commutative min-merge
			if c, ok := minCost[k]; !ok || v < c {
				minCost[k] = v
			}
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for k, v := range minCost { //rangecheck:ok commutative wrapping-add checksum
		check += int64(k) + v
	}
	return check
}

// Q3: shipping priority. BUILDING customers, unshipped orders, top revenue.
func (e *Engine) q3() int64 {
	db := e.DB
	const segment = 1 // BUILDING
	date := int32(MkDate(1995, 3, 15))
	custOK := make([]bool, len(db.Customers))
	e.Par(len(db.Customers), func(t *machine.Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Scan(t, "customer", []string{"custkey", "mktsegment"}, i)
			custOK[i] = db.Customers[i].MktSegment == segment
		}
	})
	var orders *hashtable.Table
	e.Serial(func(t *machine.Thread) { orders = hashtable.New(t, len(db.Orders)/4+16) })
	e.Par(len(db.Orders), func(t *machine.Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "custkey", "orderdate", "shippriority"}, i)
			o := &db.Orders[i]
			if o.OrderDate < date && custOK[o.CustKey] {
				orders.Put(t, uint64(o.OrderKey), uint32(i))
			}
		}
	})
	revenue := map[uint64]int64{}
	e.Par(len(db.Lineitems), func(t *machine.Thread, lo, hi int) {
		local := map[uint64]int64{}
		for i := lo; i < hi; i++ {
			e.Scan(t, "lineitem", []string{"orderkey", "shipdate", "extendedprice", "discount"}, i)
			l := &db.Lineitems[i]
			if l.ShipDate <= date {
				continue
			}
			if _, ok := orders.Get(t, uint64(l.OrderKey)); ok {
				local[uint64(l.OrderKey)] += l.Revenue()
			}
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			revenue[k] += v
		}
		mergeCharge(t, len(local))
	})
	check := topSum(revenue, 10)
	return check
}

// topSum sums the top-n values of m (descending, ties by key for
// determinism).
func topSum(m map[uint64]int64, n int) int64 {
	type kv struct {
		k uint64
		v int64
	}
	all := make([]kv, 0, len(m))
	for k, v := range m { //rangecheck:ok entries sorted immediately below
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if len(all) > n {
		all = all[:n]
	}
	var s int64
	for _, e := range all {
		s += e.v
	}
	return s
}

// Q4: order priority checking. Orders in a quarter with at least one late
// lineitem, counted by priority.
func (e *Engine) q4() int64 {
	db := e.DB
	lo := int32(MkDate(1993, 7, 1))
	hi := lo + 90
	var counts [5]int64
	e.Par(len(db.Orders), func(t *machine.Thread, olo, ohi int) {
		var local [5]int64
		for i := olo; i < ohi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "orderdate", "orderpriority"}, i)
			o := &db.Orders[i]
			if o.OrderDate < lo || o.OrderDate >= hi {
				continue
			}
			start := int(db.OrderLineStart[i])
			for j, l := range db.LineitemsOf(i) {
				e.Scan(t, "lineitem", []string{"orderkey", "commitdate", "receiptdate"}, start+j)
				if l.CommitDate < l.ReceiptDate {
					local[o.OrderPriority]++
					break
				}
			}
		}
		for i, v := range local {
			counts[i] += v
		}
		mergeCharge(t, 5)
	})
	var check int64
	for i, c := range counts {
		check += int64(i+1) * c
	}
	return check
}

// Q5: local supplier volume. Revenue in ASIA where customer and supplier
// share a nation, grouped by nation.
func (e *Engine) q5() int64 {
	db := e.DB
	const region = 2 // ASIA
	lo := int32(MkDate(1994, 1, 1))
	hi := int32(MkDate(1995, 1, 1))
	nationRev := map[uint64]int64{}
	e.Par(len(db.Orders), func(t *machine.Thread, olo, ohi int) {
		local := map[uint64]int64{}
		for i := olo; i < ohi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "custkey", "orderdate"}, i)
			o := &db.Orders[i]
			if o.OrderDate < lo || o.OrderDate >= hi {
				continue
			}
			e.Scan(t, "customer", []string{"custkey", "nationkey"}, int(o.CustKey))
			cn := db.Customers[o.CustKey].NationKey
			if NationRegion[cn] != region {
				continue
			}
			start := int(db.OrderLineStart[i])
			for j, l := range db.LineitemsOf(i) {
				e.Scan(t, "lineitem", []string{"suppkey", "extendedprice", "discount"}, start+j)
				e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(l.SuppKey))
				if db.Suppliers[l.SuppKey].NationKey == cn {
					local[uint64(cn)] += l.Revenue()
				}
			}
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			nationRev[k] += v
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for k, v := range nationRev { //rangecheck:ok commutative wrapping-add checksum
		check += int64(k) + v/10000
	}
	return check
}

// Q6: forecasting revenue change. Pure lineitem scan with tight
// range predicates.
func (e *Engine) q6() int64 {
	db := e.DB
	lo := int32(MkDate(1994, 1, 1))
	hi := int32(MkDate(1995, 1, 1))
	var revenue int64
	cols := []string{"shipdate", "discount", "quantity", "extendedprice"}
	e.ParTable("lineitem", func(t *machine.Thread, llo, lhi int) {
		var local int64
		e.ScanBlocks(t, "lineitem", cols, llo, lhi, func(i int) {
			l := &db.Lineitems[i]
			if l.ShipDate >= lo && l.ShipDate < hi && l.Discount >= 5 && l.Discount <= 7 && l.Quantity < 24 {
				local += l.ExtendedPrice * int64(l.Discount)
			}
		})
		revenue += local
		mergeCharge(t, 1)
	})
	return revenue / 100
}

// Q7: volume shipping. FRANCE <-> GERMANY flows by supplier nation and
// year.
func (e *Engine) q7() int64 {
	db := e.DB
	const fr, de = 6, 7
	lo := int32(MkDate(1995, 1, 1))
	hi := int32(MkDate(1996, 12, 31))
	vol := map[uint64]int64{}
	cols := []string{"orderkey", "suppkey", "shipdate", "extendedprice", "discount"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		local := map[uint64]int64{}
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			if l.ShipDate < lo || l.ShipDate > hi {
				continue
			}
			e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(l.SuppKey))
			sn := db.Suppliers[l.SuppKey].NationKey
			if sn != fr && sn != de {
				continue
			}
			e.Scan(t, "orders", []string{"orderkey", "custkey"}, int(l.OrderKey))
			o := &db.Orders[l.OrderKey]
			e.Scan(t, "customer", []string{"custkey", "nationkey"}, int(o.CustKey))
			cn := db.Customers[o.CustKey].NationKey
			if (sn == fr && cn == de) || (sn == de && cn == fr) {
				key := uint64(sn)<<32 | uint64(YearOf(int(l.ShipDate)))
				local[key] += l.Revenue()
			}
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			vol[k] += v
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for k, v := range vol { //rangecheck:ok commutative wrapping-add checksum
		check += int64(k&0xffff) + v/10000
	}
	return check
}

// Q8: national market share of BRAZIL for a part type in AMERICA, by year.
func (e *Engine) q8() int64 {
	db := e.DB
	const region, brazil = 1, 2        // AMERICA, BRAZIL
	wantType := int16(TypeOf(0, 0, 3)) // ECONOMY ANODIZED STEEL
	lo := int32(MkDate(1995, 1, 1))
	hi := int32(MkDate(1996, 12, 31))
	partOK := make([]bool, len(db.Parts))
	e.Par(len(db.Parts), func(t *machine.Thread, plo, phi int) {
		for i := plo; i < phi; i++ {
			e.Scan(t, "part", []string{"partkey", "type"}, i)
			partOK[i] = db.Parts[i].TypeID == wantType
		}
	})
	type share struct{ num, den int64 }
	byYear := map[int]*share{}
	cols := []string{"orderkey", "partkey", "suppkey", "extendedprice", "discount"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		local := map[int]*share{}
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			if !partOK[l.PartKey] {
				continue
			}
			e.Scan(t, "orders", []string{"orderkey", "custkey", "orderdate"}, int(l.OrderKey))
			o := &db.Orders[l.OrderKey]
			if o.OrderDate < lo || o.OrderDate > hi {
				continue
			}
			e.Scan(t, "customer", []string{"custkey", "nationkey"}, int(o.CustKey))
			if NationRegion[db.Customers[o.CustKey].NationKey] != region {
				continue
			}
			y := YearOf(int(o.OrderDate))
			s := local[y]
			if s == nil {
				s = &share{}
				local[y] = s
			}
			s.den += l.Revenue()
			e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(l.SuppKey))
			if db.Suppliers[l.SuppKey].NationKey == brazil {
				s.num += l.Revenue()
			}
		}
		for y, s := range local { //rangecheck:ok commutative += merge of num/den
			g := byYear[y]
			if g == nil {
				g = &share{}
				byYear[y] = g
			}
			g.num += s.num
			g.den += s.den
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for y, s := range byYear { //rangecheck:ok commutative wrapping-add checksum
		check += int64(y) + s.num/10000 + s.den/10000
	}
	return check
}

// Q9: product-type profit for parts whose name contains "green", by
// supplier nation and year.
func (e *Engine) q9() int64 {
	db := e.DB
	const green = 17 // color id
	partOK := make([]bool, len(db.Parts))
	e.Par(len(db.Parts), func(t *machine.Thread, plo, phi int) {
		for i := plo; i < phi; i++ {
			e.Scan(t, "part", []string{"partkey", "name"}, i)
			partOK[i] = db.Parts[i].HasColor(green)
		}
	})
	profit := map[uint64]int64{}
	cols := []string{"orderkey", "partkey", "suppkey", "quantity", "extendedprice", "discount"}
	e.Par(len(db.Lineitems), func(t *machine.Thread, llo, lhi int) {
		local := map[uint64]int64{}
		for i := llo; i < lhi; i++ {
			e.Scan(t, "lineitem", cols, i)
			l := &db.Lineitems[i]
			if !partOK[l.PartKey] {
				continue
			}
			// Find the partsupp row for (part, supp): dbgen clusters the
			// four candidate suppliers per part.
			var cost int64
			base := int(l.PartKey) * suppsPerPart
			for j := 0; j < suppsPerPart; j++ {
				e.Scan(t, "partsupp", []string{"partkey", "suppkey", "supplycost"}, base+j)
				if db.PartSupps[base+j].SuppKey == l.SuppKey {
					cost = db.PartSupps[base+j].SupplyCost
					break
				}
			}
			e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(l.SuppKey))
			e.Scan(t, "orders", []string{"orderkey", "orderdate"}, int(l.OrderKey))
			nation := db.Suppliers[l.SuppKey].NationKey
			year := YearOf(int(db.Orders[l.OrderKey].OrderDate))
			amount := l.Revenue()/100 - cost*int64(l.Quantity)
			local[uint64(nation)<<32|uint64(year)] += amount
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			profit[k] += v
		}
		mergeCharge(t, len(local))
	})
	var check int64
	for k, v := range profit { //rangecheck:ok commutative wrapping-add checksum
		check += int64(k&0xffff) + v/1000
	}
	return check
}

// Q10: returned-item reporting. Customer revenue from returned lineitems
// in a quarter, top 20 customers.
func (e *Engine) q10() int64 {
	db := e.DB
	lo := int32(MkDate(1993, 10, 1))
	hi := lo + 90
	custRev := map[uint64]int64{}
	e.Par(len(db.Orders), func(t *machine.Thread, olo, ohi int) {
		local := map[uint64]int64{}
		for i := olo; i < ohi; i++ {
			e.Scan(t, "orders", []string{"orderkey", "custkey", "orderdate"}, i)
			o := &db.Orders[i]
			if o.OrderDate < lo || o.OrderDate >= hi {
				continue
			}
			start := int(db.OrderLineStart[i])
			for j, l := range db.LineitemsOf(i) {
				e.Scan(t, "lineitem", []string{"orderkey", "returnflag", "extendedprice", "discount"}, start+j)
				if l.ReturnFlag == 2 { // R
					local[uint64(o.CustKey)] += l.Revenue()
				}
			}
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			custRev[k] += v
		}
		mergeCharge(t, len(local))
	})
	return topSum(custRev, 20) / 10000
}

// Q11: important stock identification. GERMANY partsupp value above a
// scale-adjusted fraction of the total.
func (e *Engine) q11() int64 {
	db := e.DB
	const germany = 7
	value := map[uint64]int64{}
	var total int64
	cols := []string{"partkey", "suppkey", "availqty", "supplycost"}
	e.Par(len(db.PartSupps), func(t *machine.Thread, lo, hi int) {
		local := map[uint64]int64{}
		var localTotal int64
		for i := lo; i < hi; i++ {
			e.Scan(t, "partsupp", cols, i)
			ps := &db.PartSupps[i]
			e.Scan(t, "supplier", []string{"suppkey", "nationkey"}, int(ps.SuppKey))
			if db.Suppliers[ps.SuppKey].NationKey != germany {
				continue
			}
			v := ps.SupplyCost * int64(ps.AvailQty)
			local[uint64(ps.PartKey)] += v
			localTotal += v
		}
		for k, v := range local { //rangecheck:ok commutative += merge
			value[k] += v
		}
		total += localTotal
		mergeCharge(t, len(local))
	})
	// Threshold fraction 0.0001 / SF, as in the spec.
	threshold := int64(float64(total) * 0.0001 / db.SF)
	var check int64
	for k, v := range value { //rangecheck:ok threshold fixed before loop; commutative add
		if v > threshold {
			check += int64(k) + v/10000
		}
	}
	return check
}
