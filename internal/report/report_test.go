package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	t.AddRow("alpha", 1)
	t.AddRow("beta", 2.5)
	t.AddRow("gamma, delta", "x\"y")
	return t
}

func TestRenderAligned(t *testing.T) {
	var sb strings.Builder
	sample().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line starts at the same offset.
	if !strings.HasPrefix(lines[1], "  name") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestRenderCSVQuoting(t *testing.T) {
	var sb strings.Builder
	sample().RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"gamma, delta"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"x""y"`) {
		t.Errorf("quote not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestNoTitle(t *testing.T) {
	tab := &Table{Header: []string{"a"}}
	tab.AddRow("b")
	var sb strings.Builder
	tab.Render(&sb)
	if strings.Contains(sb.String(), "==") {
		t.Error("untitled table should not render a title bar")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.125); got != "+12.5%" {
		t.Errorf("Pct(0.125) = %q", got)
	}
	if got := Pct(-0.04); got != "-4.0%" {
		t.Errorf("Pct(-0.04) = %q", got)
	}
}

func TestBillions(t *testing.T) {
	if got := Billions(2.5e9); got != "2.500" {
		t.Errorf("Billions = %q", got)
	}
}
