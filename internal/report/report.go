// Package report renders experiment results as aligned text tables, CSV
// and JSON, plus the trace exporters (Chrome trace-event JSON and
// event-cost histograms) built on internal/trace.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (float64s formatted as %.3f, everything
// else with %v). When the table has a header and the row's arity differs
// from it, AddRow reports an error; the row is still appended, so callers
// that ignore the error keep the historical (misaligned) rendering rather
// than silently losing data.
func (t *Table) AddRow(cells ...any) error {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
	if len(t.Header) > 0 && len(cells) != len(t.Header) {
		return fmt.Errorf("report: table %q row %d has %d cells, header has %d",
			t.Title, len(t.Rows)-1, len(cells), len(t.Header))
	}
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (quoted only when needed).
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// RenderJSON writes the table as one JSON object: {"title", "header",
// "rows"}, with rows as arrays of pre-formatted strings. The output is
// deterministic for a given table and ends with a newline.
func (t *Table) RenderJSON(w io.Writer) error {
	doc := struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Title: t.Title, Header: t.Header, Rows: t.Rows}
	if doc.Header == nil {
		doc.Header = []string{}
	}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Pct formats a fraction as a signed percentage, e.g. 0.125 -> "+12.5%".
func Pct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}

// Billions formats cycles as billions with 3 decimals, as the paper's
// "Runtime CPU Cycles (Billions)" axes do.
func Billions(cycles float64) string {
	return fmt.Sprintf("%.3f", cycles/1e9)
}
