package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/orchestrator"
	"repro/internal/span"
	"repro/internal/trace"
)

// goldenTable is a fixed table exercising every formatting path: floats,
// ints, strings, and a cell needing CSV quoting.
func goldenTable() *Table {
	t := &Table{
		Title:  "golden: render formats",
		Header: []string{"name", "cycles", "note"},
	}
	t.AddRow("plain", 1234.5678, "ok")
	t.AddRow("quoted", 2.0, "a,b \"c\"")
	t.AddRow("int", 42, "")
	return t
}

// goldenEvents is a fixed event stream covering duration events, instant
// events, node fields, the AutoNUMA pages payload, a daemon thread, and
// one event per initiator tag (the initiator regression: demand, os,
// autonuma, khugepaged, orchestrator, alloc must all render).
func goldenEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.ThreadMigration, Cycle: 1000, Thread: 3, From: 0, To: 2, Cost: 12000, Initiator: trace.InitOS},
		{Kind: trace.PageFault, Cycle: 2048, Addr: 0x4000, Thread: 1, From: 1, To: 1, Initiator: trace.InitDemand},
		{Kind: trace.PageMigration, Cycle: 3_000_000, Addr: 0x8000, Thread: -1, From: 0, To: 1, Cost: 2600, Initiator: trace.InitAutoNUMA},
		{Kind: trace.HugeCollapse, Cycle: 4_000_000, Addr: 0x200000, Thread: -1, From: -1, To: 1, Cost: 5000, Initiator: trace.InitKhugepaged},
		{Kind: trace.AutoNUMAScan, Cycle: 5_000_000, Addr: 17, Thread: -1, From: -1, To: -1, Cost: 250_000, Initiator: trace.InitAutoNUMA},
		{Kind: trace.AllocStall, Cycle: 6_000_000, Thread: 0, From: -1, To: -1, Cost: 64, Initiator: trace.InitAlloc},
		{Kind: trace.Coherence, Cycle: 7_000_000, Addr: 0x1fc0, Thread: 2, From: 3, To: 0, Cost: 130, Initiator: trace.InitDemand},
		{Kind: trace.OrchDecision, Cycle: 8_000_000, Addr: 3, Thread: -1, From: -1, To: -1, Cost: 12000, Initiator: trace.InitOrchestrator},
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file
// instead when UPDATE_GOLDEN=1.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenTable().Render(&buf)
	checkGolden(t, "table.txt", buf.Bytes())
}

func TestRenderCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenTable().RenderCSV(&buf)
	checkGolden(t, "table.csv", buf.Bytes())
}

func TestRenderJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTable().RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.json", buf.Bytes())
}

// goldenSpans is a fixed request-span tree: one session owning one
// request with its queue-wait, service and phase children, exercising the
// lifeline tracks, flow arrows and counter args of the Chrome exporter.
func goldenSpans() []span.Span {
	return []span.Span{
		{ID: 0xa1, Kind: span.KindSession, Name: "session", Seq: -1, Session: 7, Thread: -1, Start: 100, End: 9000},
		{ID: 0xb2, Parent: 0xa1, Kind: span.KindRequest, Name: "join", Seq: 0, Session: 7, Thread: 2, Start: 100, End: 5100},
		{ID: 0xb3, Parent: 0xb2, Kind: span.KindQueueWait, Name: "join", Seq: 0, Session: 7, Thread: 2, Start: 100, End: 600},
		{ID: 0xb4, Parent: 0xb2, Kind: span.KindService, Name: "join", Seq: 0, Session: 7, Thread: 2,
			Start: 2000, End: 6500, GStart: 41000, GEnd: 45500,
			Buckets:  map[string]float64{"page_migration": 1200},
			Events:   map[string]uint64{"page_migration/autonuma": 2},
			Counters: map[string]uint64{"remote_accesses": 31}},
		{ID: 0xb5, Parent: 0xb4, Kind: span.KindPhase, Name: "probe", Seq: 0, Session: 7, Thread: 2, Start: 2000, End: 6000},
	}
}

// goldenDecisions is a fixed two-tick journal: an observe-only tick and a
// tick that moves a thread, a page batch and pushes weights.
func goldenDecisions() []orchestrator.Decision {
	return []orchestrator.Decision{
		{Tick: 0, Cycle: 1_000_000, Alive: 4, Accrued: 5000, Pool: 5000,
			Evals: []orchestrator.ThreadEval{
				{Thread: 0, Node: 0, Verdict: "local"},
				{Thread: 1, Node: 0, Verdict: "streaking"},
			}},
		{Tick: 1, Cycle: 2_000_000, Alive: 4, Accrued: 5000, Spent: 4200, Pool: 5800,
			Evals: []orchestrator.ThreadEval{
				{Thread: 0, Node: 0, Verdict: "local"},
				{Thread: 1, Node: 0, DomNode: 1, DomShare: 0.9, Verdict: "move"},
			},
			Actions: []orchestrator.Action{
				{Kind: "thread_move", Thread: 1, To: 1, Cost: 1200},
				{Kind: "page_move", Thread: -1, To: 1, Pages: 64, Cost: 3000},
				{Kind: "reweight", Thread: -1, To: -1},
			}},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := ChromeTrace(&buf,
		TraceProcess{Name: "Machine A", FreqGHz: 2.1, Events: goldenEvents(), Spans: goldenSpans()},
		TraceProcess{Name: "Machine B", FreqGHz: 2.1, Events: nil})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.json", buf.Bytes())
}

func TestDecisionsTableGolden(t *testing.T) {
	var buf bytes.Buffer
	DecisionsTable("golden: decisions",
		[]DecisionsCell{{Cell: "A/adaptive", Decs: goldenDecisions()}}).Render(&buf)
	checkGolden(t, "decisions.txt", buf.Bytes())
}

func TestBlameTableGolden(t *testing.T) {
	rows := span.Blame(goldenSpans(), map[uint64]bool{0xb2: true})
	var buf bytes.Buffer
	BlameTable("golden: tail blame",
		[]BlameCell{{Cell: "A/adaptive", Rows: rows}}).Render(&buf)
	checkGolden(t, "blame.txt", buf.Bytes())
}

func TestTraceSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	TraceSummary(goldenEvents()).Render(&buf)
	checkGolden(t, "trace_summary.txt", buf.Bytes())
}

func TestTraceCostHistogramGolden(t *testing.T) {
	var buf bytes.Buffer
	TraceCostHistogram(goldenEvents()).Render(&buf)
	checkGolden(t, "trace_hist.txt", buf.Bytes())
}
