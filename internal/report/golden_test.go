package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// goldenTable is a fixed table exercising every formatting path: floats,
// ints, strings, and a cell needing CSV quoting.
func goldenTable() *Table {
	t := &Table{
		Title:  "golden: render formats",
		Header: []string{"name", "cycles", "note"},
	}
	t.AddRow("plain", 1234.5678, "ok")
	t.AddRow("quoted", 2.0, "a,b \"c\"")
	t.AddRow("int", 42, "")
	return t
}

// goldenEvents is a fixed event stream covering duration events, instant
// events, node fields, the AutoNUMA pages payload and a daemon thread.
func goldenEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.ThreadMigration, Cycle: 1000, Thread: 3, From: 0, To: 2, Cost: 12000},
		{Kind: trace.PageFault, Cycle: 2048, Addr: 0x4000, Thread: 1, From: 1, To: 1},
		{Kind: trace.AutoNUMAScan, Cycle: 5_000_000, Addr: 17, Thread: -1, From: -1, To: -1, Cost: 250_000},
		{Kind: trace.AllocStall, Cycle: 6_000_000, Thread: 0, From: -1, To: -1, Cost: 64},
		{Kind: trace.Coherence, Cycle: 7_000_000, Addr: 0x1fc0, Thread: 2, From: 3, To: 0, Cost: 130},
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file
// instead when UPDATE_GOLDEN=1.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenTable().Render(&buf)
	checkGolden(t, "table.txt", buf.Bytes())
}

func TestRenderCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenTable().RenderCSV(&buf)
	checkGolden(t, "table.csv", buf.Bytes())
}

func TestRenderJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTable().RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.json", buf.Bytes())
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := ChromeTrace(&buf,
		TraceProcess{Name: "Machine A", FreqGHz: 2.1, Events: goldenEvents()},
		TraceProcess{Name: "Machine B", FreqGHz: 2.1, Events: nil})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.json", buf.Bytes())
}

func TestTraceSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	TraceSummary(goldenEvents()).Render(&buf)
	checkGolden(t, "trace_summary.txt", buf.Bytes())
}

func TestTraceCostHistogramGolden(t *testing.T) {
	var buf bytes.Buffer
	TraceCostHistogram(goldenEvents()).Render(&buf)
	checkGolden(t, "trace_hist.txt", buf.Bytes())
}
