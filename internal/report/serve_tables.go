package report

import "fmt"

// This file renders the open-loop serving surfaces: per-cell latency
// summaries with SLO attainment, latency histograms, and the p999 tail
// attribution. Row structs are plain data so internal/serve and the
// experiment driver can feed them without this package knowing about
// either.

// Cycles formats a raw cycle quantity (latencies live in the 1e3..1e7
// range, far below the Billions scale used for wall times).
func Cycles(c float64) string { return fmt.Sprintf("%.0f", c) }

// LatencyRow is one serving cell's latency summary.
type LatencyRow struct {
	Cell        string
	Arrival     string
	Requests    int
	MeanService float64
	MeanLatency float64
	P50         float64
	P99         float64
	P999        float64
	// SLO attainment fractions, aligned with the table's SLO labels.
	SLOs []float64
}

// LatencySummaryTable renders per-cell percentiles and SLO attainment.
// sloLabels names the targets (e.g. "5x", "20x", "100x" of the calibrated
// mean service time); every row must carry len(sloLabels) attainments.
func LatencySummaryTable(title string, sloLabels []string, rows []LatencyRow) *Table {
	hdr := []string{"cell", "arrival", "requests", "mean svc", "mean lat", "p50", "p99", "p999"}
	for _, l := range sloLabels {
		hdr = append(hdr, "slo "+l)
	}
	t := &Table{Title: title, Header: hdr}
	for _, r := range rows {
		cells := []any{r.Cell, r.Arrival, r.Requests, Cycles(r.MeanService),
			Cycles(r.MeanLatency), Cycles(r.P50), Cycles(r.P99), Cycles(r.P999)}
		for i := range sloLabels {
			if i < len(r.SLOs) {
				cells = append(cells, Pct(r.SLOs[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// LatencyHistRow is one power-of-two latency bucket of one cell.
type LatencyHistRow struct {
	Cell   string
	Lo, Hi float64
	Count  int
	Share  float64 // fraction of the cell's measured requests
}

// LatencyHistogramTable renders the log2 latency distribution per cell.
func LatencyHistogramTable(title string, rows []LatencyHistRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"cell", "latency bucket (cycles)", "requests", "share"},
	}
	for _, r := range rows {
		t.AddRow(r.Cell, fmt.Sprintf("[%.0f, %.0f)", r.Lo, r.Hi), r.Count, Pct(r.Share))
	}
	return t
}

// TailRow is one attribution component of one cell: a metric over all
// measured requests versus over the p999 tail alone. Components cover the
// profile buckets (share of service cycles), the queueing share of
// latency, and per-request trace-event rates.
type TailRow struct {
	Cell      string
	Component string
	All       float64
	Tail      float64
}

// TailAttributionTable renders the all-vs-tail comparison. The delta
// column (tail - all, in points of the metric) is the signal: components
// over-represented in the tail explain it.
func TailAttributionTable(title string, rows []TailRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"cell", "component", "all requests", "p999 tail", "delta"},
	}
	for _, r := range rows {
		t.AddRow(r.Cell, r.Component, fmt.Sprintf("%.4f", r.All),
			fmt.Sprintf("%.4f", r.Tail), fmt.Sprintf("%+.4f", r.Tail-r.All))
	}
	return t
}

// ServeRegretRow is one cell of the latency-flowchart validation: the
// p99 achieved by the throughput-derived advice versus the latency
// campaign's optimum.
type ServeRegretRow struct {
	Machine    string
	Workload   string
	Objective  string
	AdvisedKey string
	AdvisedP99 float64
	BestKey    string
	BestP99    float64
}

// Regret is the relative p99 penalty of following the flowchart instead
// of the latency-tuned optimum.
func (r ServeRegretRow) Regret() float64 {
	if r.BestP99 == 0 {
		return 0
	}
	return (r.AdvisedP99 - r.BestP99) / r.BestP99
}

// LatencyRegretTable mirrors FlowchartRegretTable for latency objectives,
// formatting the objective in raw cycles (p99 values sit orders of
// magnitude below the Billions scale wall times use).
func LatencyRegretTable(title string, rows []ServeRegretRow) *Table {
	t := &Table{
		Title: title,
		Header: []string{"machine", "workload", "objective", "advised configuration",
			"advised", "optimum configuration", "optimum", "regret"},
	}
	for _, r := range rows {
		t.AddRow(r.Machine, r.Workload, r.Objective, r.AdvisedKey, Cycles(r.AdvisedP99),
			r.BestKey, Cycles(r.BestP99), Pct(r.Regret()))
	}
	return t
}
